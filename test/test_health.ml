(* Tests for the streaming health engine: hysteresis latching (one
   incident per excursion, re-arm below 80% of the threshold), the
   pending -> firing -> resolved lifecycle with for-durations, absence
   staleness, multi-window SLO burn and its monotone response to the
   violation rate, responders actually acting (budget tightening,
   self-healing recalibration), and the fleet incident rollup staying
   byte-identical across job counts. *)
open Psbox_engine
module System = Psbox_kernel.System
module Budget = Psbox_budget.Budget
module Health = Psbox_health.Health
module Fleet = Psbox_fleet.Fleet
module Tm = Psbox_telemetry.Metrics
module W = Psbox_workloads.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fired_count eng rule =
  List.assoc_opt rule (Health.incident_counts eng) |> Option.value ~default:0

(* Drive an engine by hand: a probe reads from a mutable cell, eval_now
   consumes one value per call. Time never advances, which is fine for
   every rule kind except rate_of_change (tested on the grid below). *)
let drive_threshold ?for_windows ~limit values =
  Tm.with_fresh_store (fun () ->
      let sim = Sim.create () in
      let eng = Health.create sim () in
      let cell = ref None in
      Health.add_rule eng
        (Health.threshold ~name:"t" ?for_windows
           (Health.Probe ("p", fun () -> !cell))
           limit);
      List.iter
        (fun v ->
          cell := Some v;
          Health.eval_now eng)
        values;
      eng)

(* ------------------------------------------------------------------ *)
(* qcheck: hysteresis latches — for any value sequence, the engine files
   exactly as many incidents as the reference latch automaton (fire on
   v > limit while armed, re-arm on v < 0.8 * limit), and with a
   for-duration of 1 every opened incident also fires.                  *)

let arbitrary_values =
  QCheck.make
    ~print:(fun vs ->
      String.concat ";" (List.map (Printf.sprintf "%.2f") vs))
    QCheck.Gen.(list_size (5 -- 60) (float_range 0.0 20.0))

let prop_hysteresis_once_per_excursion =
  QCheck.Test.make ~name:"threshold fires once per excursion" ~count:200
    arbitrary_values (fun values ->
      let limit = 10.0 in
      let expected =
        let armed = ref true and fired = ref 0 in
        List.iter
          (fun v ->
            if !armed then begin
              if v > limit then begin
                incr fired;
                armed := false
              end
            end
            else if v < 0.8 *. limit then armed := true)
          values;
        !fired
      in
      let eng = drive_threshold ~limit values in
      fired_count eng "t" = expected
      && List.for_all
           (fun i -> i.Health.i_fired_s <> None)
           (Health.incidents eng))

(* ------------------------------------------------------------------ *)
(* for-duration: a breach must hold for [for_windows] consecutive
   evaluations; a retreat while pending resolves without firing.        *)

let test_for_windows_gate () =
  let eng =
    drive_threshold ~for_windows:3 ~limit:10.0
      [ 12.0; 12.0; 5.0; 12.0; 12.0; 12.0; 12.0 ]
  in
  let incs = Health.incidents eng in
  check_int "two incidents opened" 2 (List.length incs);
  let first = List.nth incs 0 and second = List.nth incs 1 in
  check_bool "first retreated before firing" true (first.Health.i_fired_s = None);
  check_bool "first resolved" true (first.Health.i_resolved_s <> None);
  check_bool "second fired" true (second.Health.i_fired_s <> None);
  check_int "one fired" 1 (fired_count eng "t")

(* A signal gap is no evidence either way: an open incident rides it out. *)
let test_missing_signal_holds_state () =
  Tm.with_fresh_store (fun () ->
      let sim = Sim.create () in
      let eng = Health.create sim () in
      let cell = ref None in
      Health.add_rule eng
        (Health.threshold ~name:"t" (Health.Probe ("p", fun () -> !cell)) 10.0);
      cell := Some 12.0;
      Health.eval_now eng;
      cell := None;
      Health.eval_now eng;
      Health.eval_now eng;
      check_int "still open through the gap" 1
        (List.length (Health.open_incidents eng));
      cell := Some 1.0;
      Health.eval_now eng;
      check_int "resolves once data returns" 0
        (List.length (Health.open_incidents eng)))

(* ------------------------------------------------------------------ *)
(* absence: a metric that stops moving (or never registers) breaches
   after stale_windows evaluations and resolves as soon as it moves.    *)

let test_absence_staleness () =
  Tm.with_fresh_store (fun () ->
      let sim = Sim.create () in
      let eng = Health.create sim () in
      let hb = Tm.counter "heartbeat" in
      Health.add_rule eng
        (Health.absence ~name:"dead" ~stale_windows:3 "heartbeat");
      for _ = 1 to 5 do
        Tm.incr hb;
        Health.eval_now eng
      done;
      check_int "alive while moving" 0 (List.length (Health.incidents eng));
      for _ = 1 to 3 do
        Health.eval_now eng
      done;
      check_int "stale fires" 1 (fired_count eng "dead");
      Tm.incr hb;
      Health.eval_now eng;
      check_int "movement resolves" 0
        (List.length (Health.open_incidents eng)))

let test_absence_never_registered () =
  Tm.with_fresh_store (fun () ->
      let sim = Sim.create () in
      let eng = Health.create sim () in
      Health.add_rule eng (Health.absence ~name:"dead" ~stale_windows:2 "ghost");
      Health.eval_now eng;
      Health.eval_now eng;
      check_int "unregistered metric is stale" 1 (fired_count eng "dead"))

(* ------------------------------------------------------------------ *)
(* SLO burn: drive the cumulative counters by hand.                     *)

let run_burn ~bads =
  Tm.with_fresh_store (fun () ->
      let sim = Sim.create () in
      let eng = Health.create sim ~period:(Time.ms 10) () in
      let bad = Tm.counter "bad" and total = Tm.counter "total" in
      Health.add_rule eng
        (Health.slo_burn ~name:"burn" ~bad:"bad" ~total:"total" ~slo:0.1
           ~short_windows:2 ~long_windows:4 ~factor:2.0 ());
      (* counters advance just before each grid evaluation, so incident
         timestamps index the evaluation that saw the breach *)
      List.iteri
        (fun k b ->
          Tm.add bad b;
          Tm.add total 10.0;
          Sim.run_until sim (Time.ms (10 * (k + 1))))
        bads;
      Health.stop eng;
      eng)

let test_slo_burn_lifecycle () =
  (* 5 warmup evals (needs long_windows + 1 samples), then a sustained
     violation burst, then quiet: one incident, fired and resolved. *)
  let bads =
    List.init 5 (fun _ -> 0.0)
    @ List.init 8 (fun _ -> 5.0)
    @ List.init 8 (fun _ -> 0.0)
  in
  let eng = run_burn ~bads in
  check_int "one incident" 1 (List.length (Health.incidents eng));
  check_int "fired" 1 (fired_count eng "burn");
  check_int "resolved" 0 (List.length (Health.open_incidents eng))

let test_burn_rate_zero_guard () =
  check_bool "zero total" true (Health.burn_rate ~bad:3.0 ~total:0.0 ~slo:0.1 = 0.0);
  check_bool "zero slo" true (Health.burn_rate ~bad:3.0 ~total:10.0 ~slo:0.0 = 0.0);
  check_bool "burn" true
    (Float.abs (Health.burn_rate ~bad:3.0 ~total:10.0 ~slo:0.1 -. 3.0) < 1e-12)

(* qcheck: the burn rate is monotone in the violation rate — add extra bad
   events anywhere in the sequence and the rule can only fire sooner (or
   equally), never later, and never go from firing to silent. *)
let arbitrary_burn_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "base=[%s] extra=[%s]"
        (String.concat ";" (List.map (Printf.sprintf "%.1f") a))
        (String.concat ";" (List.map (Printf.sprintf "%.1f") b)))
    QCheck.Gen.(
      let* n = 8 -- 40 in
      let* base = list_repeat n (float_range 0.0 4.0) in
      let* extra = list_repeat n (float_range 0.0 4.0) in
      return (base, extra))

let first_fire eng =
  List.find_map (fun i -> i.Health.i_fired_s) (Health.incidents eng)

let prop_burn_monotone_in_violation_rate =
  QCheck.Test.make ~name:"slo burn monotone in violation rate" ~count:100
    arbitrary_burn_pair (fun (base, extra) ->
      let eng_lo = run_burn ~bads:base in
      let eng_hi = run_burn ~bads:(List.map2 ( +. ) base extra) in
      (* per-window burn is pointwise >= under a pointwise-larger bad
         stream (totals equal), so if the smaller stream ever fires, the
         larger one fires no later *)
      match (first_fire eng_lo, first_fire eng_hi) with
      | None, _ -> true
      | Some _, None -> false
      | Some t_lo, Some t_hi -> t_hi <= t_lo)

(* ------------------------------------------------------------------ *)
(* rate_of_change needs real timestamps: run it on the evaluation grid. *)

let test_rate_of_change_on_grid () =
  Tm.with_fresh_store (fun () ->
      let sim = Sim.create () in
      let eng = Health.create sim ~period:(Time.ms 10) () in
      let g = Tm.gauge "level" in
      Health.add_rule eng
        (Health.rate_of_change ~name:"spike" (Health.Metric "level")
           ~per_second:100.0);
      Tm.set g 0.0;
      Sim.run_until sim (Time.ms 10);
      (* +10 over 10 ms = 1000/s: breach *)
      Tm.set g 10.0;
      Sim.run_until sim (Time.ms 20);
      check_int "derivative breach fired" 1 (fired_count eng "spike");
      (* flat signal: derivative 0 < 80 clears the latch *)
      Sim.run_until sim (Time.ms 30);
      check_int "flat resolves" 0 (List.length (Health.open_incidents eng));
      Health.stop eng)

(* The grid is demand-armed: no rules, no events; stop cancels the tick. *)
let test_demand_armed_grid () =
  Tm.with_fresh_store (fun () ->
      let sim = Sim.create () in
      let eng = Health.create sim ~period:(Time.ms 10) () in
      Sim.run_until sim (Time.ms 100);
      check_int "no rules, no evals" 0 (Health.evals eng);
      Health.add_rule eng
        (Health.threshold ~name:"t" (Health.Probe ("p", fun () -> Some 0.0)) 1.0);
      Sim.run_until sim (Time.ms 150);
      check_int "five grid evals" 5 (Health.evals eng);
      Health.stop eng;
      Sim.run_until sim (Time.ms 300);
      check_int "stopped engine never evaluates" 5 (Health.evals eng))

(* ------------------------------------------------------------------ *)
(* Responders act: a firing incident tightens the budget envelope.      *)

let test_tighten_responder () =
  Tm.with_fresh_store (fun () ->
      let sys = System.create ~cores:1 () in
      let a = System.new_app sys ~name:"a" in
      ignore
        (W.spawn sys ~app:a ~name:"spin"
           (W.forever (fun () -> [ W.Compute (Time.ms 2) ])));
      System.start sys;
      let ctl = Budget.create sys () in
      Budget.set_cap ctl ~app:a.System.app_id ~watts:2.0;
      System.run_for sys (Time.ms 100);
      let cap0 = Budget.effective_cap_w ctl ~app:a.System.app_id in
      let eng = Health.create (System.sim sys) () in
      let trip = ref false in
      Health.add_rule eng
        (Health.threshold ~name:"over"
           (Health.Probe ("p", fun () -> Some (if !trip then 5.0 else 0.0)))
           1.0);
      Health.on_firing eng ~rule:"over"
        (Health.Responder.tighten_budget ctl ~app:a.System.app_id);
      trip := true;
      System.run_for sys (Time.ms 100);
      let cap1 = Budget.effective_cap_w ctl ~app:a.System.app_id in
      check_bool
        (Printf.sprintf "cap ratcheted once (%.3f -> %.3f)" cap0 cap1)
        true
        (Float.abs (cap1 -. (0.9 *. cap0)) < 1e-9);
      check_int "hysteresis: fired once, acted once" 1 (fired_count eng "over");
      Health.stop eng;
      Budget.stop ctl;
      System.shutdown sys)

let test_budget_tighten_direct () =
  Tm.with_fresh_store (fun () ->
      let sys = System.create ~cores:1 () in
      let a = System.new_app sys ~name:"a" in
      System.start sys;
      let ctl = Budget.create sys () in
      Budget.set_cap ctl ~app:a.System.app_id ~watts:2.0;
      Budget.tighten ctl ~app:a.System.app_id;
      Budget.tighten ctl ~app:a.System.app_id;
      System.run_for sys (Time.ms 60);
      let cap = Budget.effective_cap_w ctl ~app:a.System.app_id in
      check_bool
        (Printf.sprintf "two steps of 0.9 (%.3f)" cap)
        true
        (Float.abs (cap -. (2.0 *. 0.81)) < 1e-9);
      check_bool "bad factor rejected" true
        (try
           Budget.tighten ~factor:1.5 ctl ~app:a.System.app_id;
           false
         with Invalid_argument _ -> true);
      Budget.stop ctl;
      System.shutdown sys)

(* ------------------------------------------------------------------ *)
(* Self-healing estimation, end to end: inject drift, the incident fires
   once per rail, the responder hot-swaps a refit, post-swap MAPE is back
   under the drift threshold.                                           *)

let test_self_heal_recovers () =
  let report, eng =
    Health.Self_heal.run ~windows:60 ~perturb_pct:12.0 ()
  in
  check_int "one fired incident per rail" 3
    report.Health.Self_heal.sh_incidents_fired;
  check_int "every rail hot-swapped" 3 report.Health.Self_heal.sh_swaps;
  check_bool
    (Printf.sprintf "post-swap MAPE %.2f%% < 5%%"
       report.Health.Self_heal.sh_post_max_mape_pct)
    true
    (report.Health.Self_heal.sh_post_max_mape_pct < 5.0);
  List.iter
    (fun rh ->
      check_bool (rh.Health.Self_heal.rh_rail ^ " drifted before") true
        (rh.Health.Self_heal.rh_pre_mape_pct > 5.0);
      check_bool (rh.Health.Self_heal.rh_rail ^ " healed after") true
        (rh.Health.Self_heal.rh_post_mape_pct
        < rh.Health.Self_heal.rh_pre_mape_pct))
    report.Health.Self_heal.sh_rails;
  check_int "drift incidents in the log" 3 (fired_count eng "model.drift")

let test_self_heal_clean_run_silent () =
  let report, eng = Health.Self_heal.run ~windows:40 () in
  check_int "no incidents without drift" 0
    report.Health.Self_heal.sh_incidents_fired;
  check_int "no swaps" 0 report.Health.Self_heal.sh_swaps;
  check_int "empty log" 0 (List.length (Health.incidents eng))

(* ------------------------------------------------------------------ *)
(* Fleet rollup: with health on, the per-device incident logs reduce into
   fleet incident rates, byte-identically across job counts.            *)

let test_fleet_incident_rollup_jobs_invariant () =
  let s1 = Fleet.run ~jobs:1 ~health:true ~scenario:"budget" ~devices:12 ~seed:7 () in
  let s4 = Fleet.run ~jobs:4 ~health:true ~scenario:"budget" ~devices:12 ~seed:7 () in
  Alcotest.(check string)
    "fleet JSON byte-identical across jobs" (Fleet.json_string s1)
    (Fleet.json_string s4);
  check_bool "cap-violation incidents surfaced" true
    (List.mem_assoc "cap.violation" s1.Fleet.s_incident_rates)

let test_fleet_health_off_unchanged () =
  let plain = Fleet.run ~jobs:1 ~scenario:"budget" ~devices:6 ~seed:7 () in
  check_bool "no incident rates without health" true
    (plain.Fleet.s_incident_rates = [])

(* ------------------------------------------------------------------ *)
(* Default pack shape and incident-log JSON stability.                  *)

let test_default_pack_rules () =
  Tm.with_fresh_store (fun () ->
      let sys = System.create ~cores:1 () in
      let rules = Health.default_pack sys in
      let names = List.map Health.rule_name rules in
      check_bool "drift rule per rail" true (List.mem "model.drift" names);
      check_bool "cap burn rule" true (List.mem "cap.violation" names);
      check_bool "dead-metric rule" true (List.mem "telemetry.dead" names);
      System.shutdown sys)

let test_json_deterministic () =
  let mk () =
    drive_threshold ~limit:10.0 [ 12.0; 12.0; 1.0; 15.0; 1.0 ]
  in
  let j1 = Health.json (mk ()) and j2 = Health.json (mk ()) in
  Alcotest.(check string) "same drive, same bytes" j1 j2;
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "fired counts present" true (contains j1 "\"fired\"");
  check_bool "incident rows present" true (contains j1 "\"rule\": \"t\"")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_hysteresis_once_per_excursion;
    QCheck_alcotest.to_alcotest prop_burn_monotone_in_violation_rate;
    Alcotest.test_case "for-windows gate" `Quick test_for_windows_gate;
    Alcotest.test_case "missing signal holds state" `Quick
      test_missing_signal_holds_state;
    Alcotest.test_case "absence staleness" `Quick test_absence_staleness;
    Alcotest.test_case "absence of unregistered metric" `Quick
      test_absence_never_registered;
    Alcotest.test_case "slo burn lifecycle" `Quick test_slo_burn_lifecycle;
    Alcotest.test_case "burn-rate zero guard" `Quick test_burn_rate_zero_guard;
    Alcotest.test_case "rate-of-change on the grid" `Quick
      test_rate_of_change_on_grid;
    Alcotest.test_case "demand-armed grid" `Quick test_demand_armed_grid;
    Alcotest.test_case "tighten responder" `Quick test_tighten_responder;
    Alcotest.test_case "budget tighten direct" `Quick
      test_budget_tighten_direct;
    Alcotest.test_case "self-heal recovers from drift" `Slow
      test_self_heal_recovers;
    Alcotest.test_case "self-heal silent on clean run" `Quick
      test_self_heal_clean_run_silent;
    Alcotest.test_case "fleet incident rollup jobs-invariant" `Slow
      test_fleet_incident_rollup_jobs_invariant;
    Alcotest.test_case "fleet without health unchanged" `Quick
      test_fleet_health_off_unchanged;
    Alcotest.test_case "default pack rules" `Quick test_default_pack_rules;
    Alcotest.test_case "incident-log JSON deterministic" `Quick
      test_json_deterministic;
  ]
