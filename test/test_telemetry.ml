(* Tests for the telemetry library (metrics registry, structured tracing,
   Chrome-trace export) and its simulator instrumentation.

   The registry is process-global and other suites in this binary also feed
   it, so every counter assertion here works on deltas against uniquely
   named metrics, never on absolute values of shared ones. *)
open Psbox_engine
module Telemetry = Psbox_telemetry
module Tm = Telemetry.Metrics
module Tt = Telemetry.Tracing
module Fig3 = Psbox_experiments.Fig3
module Report = Psbox_experiments.Report
module Common = Psbox_experiments.Common

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let value name = Option.value ~default:0.0 (Tm.find name)

(* ---- registry ------------------------------------------------------ *)

let test_counter_gauge () =
  let c = Tm.counter "test.reg.count" in
  Tm.incr c;
  Tm.incr c;
  Tm.add c 3.0;
  check_float "counter" 5.0 (Tm.counter_value c);
  check_bool "same cell by name" true
    (Tm.counter "test.reg.count" == c);
  let g = Tm.gauge "test.reg.depth" in
  Tm.set g 7.0;
  Tm.set g 2.0;
  check_float "gauge tracks last" 2.0 (Tm.gauge_value g);
  let m = Tm.gauge "test.reg.depth_max" in
  Tm.set_max m 3.0;
  Tm.set_max m 9.0;
  Tm.set_max m 4.0;
  check_float "set_max keeps max" 9.0 (Tm.gauge_value m);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Telemetry.Metrics: \"test.reg.count\" is already a counter")
    (fun () -> ignore (Tm.gauge "test.reg.count"))

let test_snapshot_determinism () =
  ignore (Tm.counter "test.snap.b");
  ignore (Tm.counter "test.snap.a");
  let s1 = Tm.snapshot () in
  let s2 = Tm.snapshot () in
  check_bool "snapshot is reproducible" true (s1 = s2);
  (* metrics are sorted by name (bucket rows of one histogram stay in edge
     order, so only the counter/gauge rows are globally ordered) *)
  let names = List.map fst (Tm.values ()) in
  check_bool "values sorted by name" true (List.sort compare names = names);
  let index n =
    let rec go i = function
      | [] -> -1
      | (n', _) :: _ when n' = n -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 s1
  in
  check_bool "snapshot rows follow name order" true
    (index "test.snap.a" < index "test.snap.b");
  let d1 = Tm.dump_string () in
  let d2 = Tm.dump_string () in
  check_bool "dump is reproducible" true (d1 = d2);
  (* values () carries counters and gauges but never histogram rows *)
  ignore (Tm.histogram "test.snap.hist" ~edges:[| 1.0; 2.0 |]);
  check_bool "values skips histograms" true
    (List.for_all
       (fun (n, _) -> not (String.length n >= 14 && String.sub n 0 14 = "test.snap.hist"))
       (Tm.values ()))

let test_histogram_edges () =
  let h = Tm.histogram "test.hist.lat" ~edges:[| 1.0; 10.0; 100.0 |] in
  (* boundary values land in the bucket whose edge they equal (v <= edge) *)
  List.iter (Tm.observe h) [ 0.5; 1.0; 1.1; 10.0; 99.9; 100.0; 100.1; 5000.0 ];
  Alcotest.(check (array int))
    "per-bucket counts" [| 2; 2; 2; 2 |] (Tm.bucket_counts h);
  let rows = Tm.snapshot () in
  let row n = List.assoc n rows in
  Alcotest.(check string) "cumulative le=1" "2" (row "test.hist.lat{le=1}");
  Alcotest.(check string) "cumulative le=10" "4" (row "test.hist.lat{le=10}");
  Alcotest.(check string) "cumulative le=100" "6" (row "test.hist.lat{le=100}");
  Alcotest.(check string) "overflow" "8" (row "test.hist.lat{le=+inf}");
  (* percentile rows: rank interpolated linearly inside the holding
     bucket; ranks landing in the overflow bucket report the last finite
     edge *)
  Alcotest.(check string) "p50 interpolated" "10" (row "test.hist.lat.p50");
  Alcotest.(check string) "p95 from overflow" "100" (row "test.hist.lat.p95");
  Alcotest.(check string) "p99 from overflow" "100" (row "test.hist.lat.p99");
  (match Tm.quantile h 0.5 with
  | Some v -> Alcotest.(check (float 1e-9)) "quantile 0.5" 10.0 v
  | None -> Alcotest.fail "quantile on non-empty histogram");
  Alcotest.(check bool)
    "quantile of empty histogram" true
    (Tm.quantile (Tm.histogram "test.hist.empty" ~edges:[| 1.0 |]) 0.5 = None);
  Alcotest.check_raises "edges must increase"
    (Invalid_argument "Telemetry.Metrics.histogram: edges must increase")
    (fun () -> ignore (Tm.histogram "test.hist.bad" ~edges:[| 2.0; 1.0 |]))

let test_disabled_is_noop () =
  let c = Tm.counter "test.off.count" in
  Telemetry.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled true)
    (fun () ->
      Tm.incr c;
      Tm.add c 10.0;
      check_float "no update while disabled" 0.0 (Tm.counter_value c));
  Tm.incr c;
  check_float "updates resume" 1.0 (Tm.counter_value c)

(* ---- tracing ------------------------------------------------------- *)

let with_recording f =
  Tt.clear ();
  Tt.start ();
  Fun.protect ~finally:(fun () -> Tt.stop (); Tt.clear ()) f

let test_tracing_armed_only () =
  Tt.clear ();
  check_bool "not recording by default" false (Tt.recording ());
  Tt.span ~track:"t" ~lane:"l" ~name:"dropped" ~start:0 ~stop:1 ();
  check_int "nothing buffered before start" 0 (Tt.length ());
  with_recording (fun () ->
      Tt.span ~track:"t" ~lane:"l" ~name:"kept" ~start:0 ~stop:5 ();
      check_int "buffered once armed" 1 (Tt.length ()));
  check_int "clear drops the buffer" 0 (Tt.length ())

let test_tracing_cap () =
  with_recording (fun () ->
      Tt.set_limit 3;
      Fun.protect
        ~finally:(fun () -> Tt.set_limit 2_000_000)
        (fun () ->
          for i = 1 to 5 do
            Tt.instant ~track:"t" ~lane:"l" ~name:"e" (i * 10)
          done;
          check_int "capped" 3 (Tt.length ());
          check_int "drop count" 2 (Tt.dropped ())))

let test_chrome_roundtrip () =
  let events =
    with_recording (fun () ->
        Tt.span ~track:"kernel.cfs" ~lane:"core0" ~name:"app1"
          ~args:[ ("weight", 1.5) ] ~start:1_000 ~stop:4_500 ();
        Tt.instant ~track:"kernel.cfs" ~lane:"quota" ~name:"throttle app1" 5_000;
        Tt.sample ~track:"engine.sim" ~name:"sim.queue_depth" 6_000 42.0;
        Tt.events ())
  in
  check_int "three events recorded" 3 (List.length events);
  let text = Telemetry.Chrome_trace.to_string events in
  (match Telemetry.Chrome_trace.validate text with
  | Ok n -> check_int "validate counts data events" 3 n
  | Error e -> Alcotest.failf "exported trace invalid: %s" e);
  match Telemetry.Json.parse text with
  | Error e -> Alcotest.failf "exported trace does not parse: %s" e
  | Ok json -> (
      match Telemetry.Json.member "traceEvents" json with
      | Some (Telemetry.Json.Arr items) ->
          let field name j =
            match Telemetry.Json.member name j with
            | Some v -> v
            | None -> Alcotest.failf "event missing %s" name
          in
          let spans =
            List.filter
              (fun j -> field "ph" j = Telemetry.Json.Str "X")
              items
          in
          check_int "one complete event" 1 (List.length spans);
          let s = List.hd spans in
          check_bool "ts in microseconds" true
            (field "ts" s = Telemetry.Json.Num 1.0);
          check_bool "dur in microseconds" true
            (field "dur" s = Telemetry.Json.Num 3.5);
          check_bool "span args survive" true
            (match Telemetry.Json.member "args" s with
            | Some a -> Telemetry.Json.member "weight" a
                        = Some (Telemetry.Json.Num 1.5)
            | None -> false);
          (* process/thread metadata announces track and lane names *)
          let metas =
            List.filter
              (fun j -> field "ph" j = Telemetry.Json.Str "M")
              items
          in
          check_bool "track metadata present" true
            (List.exists
               (fun j ->
                 field "name" j = Telemetry.Json.Str "process_name"
                 && (match Telemetry.Json.member "args" j with
                    | Some a -> Telemetry.Json.member "name" a
                                = Some (Telemetry.Json.Str "kernel.cfs")
                    | None -> false))
               metas)
      | _ -> Alcotest.fail "no traceEvents array")

let test_export_deterministic () =
  let record () =
    with_recording (fun () ->
        Tt.span ~track:"a" ~lane:"x" ~name:"s1" ~start:10 ~stop:20 ();
        Tt.span ~track:"b" ~lane:"y" ~name:"s2" ~start:15 ~stop:25 ();
        Tt.events ())
  in
  let t1 = Telemetry.Chrome_trace.to_string (record ()) in
  let t2 = Telemetry.Chrome_trace.to_string (record ()) in
  Alcotest.(check string) "same events, same bytes" t1 t2

(* ---- simulator instrumentation ------------------------------------- *)

let test_sim_counters () =
  let fired0 = value "sim.events_fired" in
  let sched0 = value "sim.events_scheduled" in
  let canc0 = value "sim.events_cancelled" in
  let lbl0 = value "sim.events.test.tick" in
  let sim = Sim.create () in
  let hits = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule_at sim (Time.ms i) (fun () -> incr hits))
  done;
  ignore
    (Sim.schedule_at sim ~label:(Sim.label "test.tick") (Time.ms 50)
       (fun () -> incr hits));
  let doomed = Sim.schedule_at sim (Time.ms 60) (fun () -> incr hits) in
  Sim.cancel sim doomed;
  Sim.run_until sim (Time.ms 100);
  check_int "callbacks ran" 11 !hits;
  check_float "fired delta" 11.0 (value "sim.events_fired" -. fired0);
  check_float "scheduled delta" 12.0 (value "sim.events_scheduled" -. sched0);
  check_float "cancelled delta" 1.0 (value "sim.events_cancelled" -. canc0);
  check_float "labelled source counted" 1.0
    (value "sim.events.test.tick" -. lbl0)

(* The shipped experiments must not change when telemetry is off: the
   instrumentation only observes. Byte-compare a rendered fig3(b) report
   between an enabled and a disabled run. *)
let render_fig3b () =
  let b, series = Fig3.run_b () in
  let report =
    {
      Report.id = "fig3b";
      title = "telemetry identity probe";
      items =
        [
          (* no command-id column: Accel ids come from a process-global
             counter, so they differ between any two runs in one binary *)
          Report.table
            ~headers:[ "kind"; "start"; "finish" ]
            (List.map
               (fun (_, kind, s, f) ->
                 [
                   kind;
                   Common.fmt_ms ~dp:2 ~tight:true (s *. 1e3);
                   Common.fmt_ms ~dp:2 ~tight:true (f *. 1e3);
                 ])
               b.Fig3.commands);
          Report.chart ~label:"GPU power" series;
        ];
    }
  in
  Format.asprintf "%a" Report.render report

let test_experiment_identical_when_disabled () =
  let with_telemetry = render_fig3b () in
  Telemetry.set_enabled false;
  let without =
    Fun.protect
      ~finally:(fun () -> Telemetry.set_enabled true)
      render_fig3b
  in
  Alcotest.(check string) "byte-identical output" with_telemetry without

(* ---- Trace.close_span diagnostics (engine) -------------------------- *)

let test_close_span_message () =
  let tr = Trace.spans () in
  Trace.open_span tr 0 "running";
  Alcotest.check_raises "names the tag"
    (Invalid_argument
       "Trace.close_span: no open span with tag \"ghost\" (1 span(s) open)")
    (fun () ->
      Trace.close_span ~pp:(fun fmt s -> Format.fprintf fmt "%S" s) tr 10
        "ghost");
  Alcotest.check_raises "says when no printer is given"
    (Invalid_argument
       "Trace.close_span: no open span with tag <no printer given> (1 \
        span(s) open)")
    (fun () -> Trace.close_span tr 10 "ghost");
  check_bool "original span untouched" true (Trace.is_open tr "running");
  Alcotest.(check (option int)) "open_since" (Some 0)
    (Trace.open_since tr "running")

let suite =
  [
    Alcotest.test_case "registry: counters and gauges" `Quick test_counter_gauge;
    Alcotest.test_case "registry: snapshot determinism" `Quick
      test_snapshot_determinism;
    Alcotest.test_case "registry: histogram bucket edges" `Quick
      test_histogram_edges;
    Alcotest.test_case "registry: disabled is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "tracing: records only when armed" `Quick
      test_tracing_armed_only;
    Alcotest.test_case "tracing: buffer cap counts drops" `Quick
      test_tracing_cap;
    Alcotest.test_case "chrome: span/instant/sample round-trip" `Quick
      test_chrome_roundtrip;
    Alcotest.test_case "chrome: export is deterministic" `Quick
      test_export_deterministic;
    Alcotest.test_case "sim: event-loop counters are exact" `Quick
      test_sim_counters;
    Alcotest.test_case "experiments: byte-identical with telemetry off" `Quick
      test_experiment_identical_when_disabled;
    Alcotest.test_case "trace: close_span names the missing tag" `Quick
      test_close_span_message;
  ]
