let () =
  Alcotest.run "psbox"
    [
      ("engine", Test_engine.suite);
      ("hw", Test_hw.suite);
      ("cfs", Test_cfs.suite);
      ("smp", Test_smp.suite);
      ("accel_driver", Test_accel_driver.suite);
      ("net_sched", Test_net_sched.suite);
      ("meter", Test_meter.suite);
      ("psbox", Test_psbox.suite);
      ("vstate", Test_vstate.suite);
      ("accounting", Test_accounting.suite);
      ("sidechannel", Test_sidechannel.suite);
      ("workloads", Test_workloads.suite);
      ("integration", Test_integration.suite);
      ("extensions", Test_extensions.suite);
      ("random", Test_random.suite);
      ("misc", Test_misc.suite);
      ("system", Test_system.suite);
      ("budget", Test_budget.suite);
      ("telemetry", Test_telemetry.suite);
      ("audit", Test_audit.suite);
      ("fleet", Test_fleet.suite);
      ("model", Test_model.suite);
      ("health", Test_health.suite);
    ]
