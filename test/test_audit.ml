(* The joule audit's load-bearing invariant: attributed joules per rail
   sum to the kernel's O(1) energy ledger bit-for-bit — for arbitrary
   workloads, across psbox balloon churn — and a balloon'd app's blame
   stays on the balloon owner, never on neighbours. *)
open Psbox_engine
module System = Psbox_kernel.System
module Audit = Psbox_audit.Audit
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload

let bits = Int64.bits_of_float

let gen_ops ~gpu =
  QCheck.Gen.(
    list_size (1 -- 12)
      (oneof
         ([
            map (fun ms -> `Compute (1 + ms)) (0 -- 8);
            map (fun ms -> `Sleep (1 + ms)) (0 -- 8);
          ]
         @ if gpu then [ map (fun ms -> `Gpu (1 + ms)) (0 -- 4) ] else [])))

let to_script ops =
  let ops =
    List.map
      (function
        | `Compute ms -> W.Compute (Time.ms ms)
        | `Sleep ms -> W.Sleep (Time.ms ms)
        | `Gpu ms ->
            W.Gpu_batch [ W.spec ~kind:"k" ~work_s:(float_of_int ms /. 1e3) () ])
      ops
  in
  W.forever (fun () -> ops)

let arbitrary_scenario =
  QCheck.make
    ~print:(fun (a, b, enter_ms, leave_ms) ->
      Printf.sprintf "tasks=%d/%d enter=%dms leave=%dms" (List.length a)
        (List.length b) enter_ms leave_ms)
    QCheck.Gen.(
      quad (gen_ops ~gpu:true) (gen_ops ~gpu:true) (10 -- 200) (210 -- 400))

(* Conservation, bit-for-bit, for random workloads with random psbox
   enter/leave points: on every rail, the blame rows folded in canonical
   order equal the audit total equal the kernel ledger — as the same
   doubles, not approximately. The idle-floor remainder row makes the
   fold exact; the residue it absorbed must stay negligible, so the
   invariant is not satisfied vacuously. *)
let prop_conservation =
  QCheck.Test.make
    ~name:"random workloads attribute exactly to the ledger, per rail"
    ~count:30 arbitrary_scenario
    (fun (ops_a, ops_b, enter_ms, leave_ms) ->
      let sys = System.create ~cores:2 ~gpu:true ~wifi:true () in
      let audit = Audit.attach sys in
      let a = System.new_app sys ~name:"a" in
      let b = System.new_app sys ~name:"b" in
      ignore (W.spawn sys ~app:a ~name:"a0" ~core:0 (to_script ops_a));
      ignore (W.spawn sys ~app:b ~name:"b0" ~core:1 (to_script ops_b));
      System.start sys;
      let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Gpu ] in
      System.run_for sys (Time.ms enter_ms);
      Psbox.enter box;
      System.run_for sys (Time.ms (leave_ms - enter_ms));
      Psbox.leave box;
      System.run_for sys (Time.ms 100);
      let conserved =
        match Audit.check audit with
        | Ok () -> true
        | Error msg ->
            Printf.eprintf "audit check: %s\n" msg;
            false
      in
      let exact_and_tight =
        List.for_all
          (fun rail ->
            let total = Audit.rail_total audit ~rail in
            let ledger = System.rail_energy_j sys ~name:rail in
            let folded =
              List.fold_left
                (fun acc r -> acc +. r.Audit.r_j)
                0.0
                (Audit.rows audit ~rail)
            in
            bits total = bits ledger
            && bits folded = bits ledger
            && Float.abs (Audit.residue audit ~rail) <= 1e-9 *. (1.0 +. total))
          (Audit.rails audit)
      in
      Psbox.destroy box;
      System.shutdown sys;
      conserved && exact_and_tight)

let test_conservation_property () =
  match
    QCheck.Test.check_exn prop_conservation
  with
  | () -> ()
  | exception QCheck.Test.Test_fail (name, msgs) ->
      Alcotest.failf "%s: %s" name (String.concat "; " msgs)

(* A deterministic co-run still exercises every cause at least once and
   conserves bit-exactly: Active and Shared_rail while both apps compute,
   Lingering / Dvfs_transition on the GPU's autosuspend countdown,
   Idle_floor everywhere. *)
let test_causes_and_totals () =
  let sys = System.create ~cores:2 ~gpu:true () in
  let audit = Audit.attach sys in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  let gpu_work _ =
    [ W.Gpu_batch [ W.spec ~kind:"k" ~work_s:0.004 () ]; W.Sleep (Time.ms 2) ]
  in
  ignore (W.spawn sys ~app:a ~name:"a0" ~core:0 (W.repeat 20 gpu_work));
  (* b joins the GPU late: a's opening batches run solo (Active), the
     overlap then shares the rail (Shared_rail) *)
  ignore
    (W.spawn sys ~app:b ~name:"b0" ~core:1
       (W.repeat 20 (fun i ->
            if i = 0 then W.Sleep (Time.ms 30) :: gpu_work i else gpu_work i)));
  System.start sys;
  System.run_for sys (Time.sec 1);
  (match Audit.check audit with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "conservation violated: %s" msg);
  Alcotest.(check (list string))
    "audited rails" [ "cpu"; "gpu" ] (Audit.rails audit);
  let causes rail =
    Audit.rows audit ~rail
    |> List.filter (fun r -> r.Audit.r_j > 0.0)
    |> List.map (fun r -> Audit.cause_label r.Audit.r_cause)
    |> List.sort_uniq compare
  in
  let gpu_causes = causes "gpu" in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " present on gpu") true (List.mem c gpu_causes))
    [ "active"; "shared-rail"; "idle-floor" ];
  (* the 200 ms autosuspend countdown after the last command, at an
     elevated OPP first: lingering power states, blamed on the last user *)
  Alcotest.(check bool)
    "a lingering state appears on gpu" true
    (List.mem "lingering" gpu_causes || List.mem "dvfs-transition" gpu_causes);
  Alcotest.(check bool)
    "gpu drew energy" true
    (Audit.rail_total audit ~rail:"gpu" > 0.0);
  System.shutdown sys

(* Insulation: while app a holds a GPU balloon, everything the device
   draws — including the lingering tail after its last command — is
   blamed on a. The neighbour never appears on the GPU rail at all. *)
let test_balloon_blame_insulation () =
  let sys = System.create ~cores:2 ~gpu:true () in
  let audit = Audit.attach sys in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  ignore
    (W.spawn sys ~app:a ~name:"a0" ~core:0
       (W.repeat 10 (fun _ ->
            [ W.Gpu_batch [ W.spec ~kind:"k" ~work_s:0.005 () ] ])));
  (* the neighbour computes on the CPU only *)
  ignore
    (W.spawn sys ~app:b ~name:"b0" ~core:1
       (W.repeat 50 (fun _ -> [ W.Compute (Time.ms 4); W.Sleep (Time.ms 2) ])));
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Gpu ] in
  System.run_for sys (Time.ms 10);
  Psbox.enter box;
  System.run_for sys (Time.ms 200);
  Psbox.leave box;
  (* let the GPU's shared-rail tail (elevated OPP, then the autosuspend
     countdown) play out after the balloon closed *)
  System.run_for sys (Time.ms 400);
  let gpu_rows = Audit.rows audit ~rail:"gpu" in
  let blamed_b =
    List.filter (fun r -> r.Audit.r_app = b.System.app_id) gpu_rows
  in
  Alcotest.(check int)
    "neighbour has no blame on the balloon'd GPU" 0 (List.length blamed_b);
  let a_j cause =
    List.fold_left
      (fun acc r ->
        if r.Audit.r_app = a.System.app_id && r.Audit.r_cause = cause then
          acc +. r.Audit.r_j
        else acc)
      0.0 gpu_rows
  in
  Alcotest.(check bool) "a has active GPU blame" true (a_j Audit.Active > 0.0);
  Alcotest.(check bool)
    "the tail is a's, not nobody's" true
    (a_j Audit.Lingering +. a_j Audit.Dvfs_transition > 0.0);
  (* the psbox snapshot captured the stay: active joules were billed *)
  let stay = Psbox.stay_blame box in
  Alcotest.(check bool)
    "stay_blame has active joules" true
    (match List.assoc_opt "active" stay with Some j -> j > 0.0 | None -> false);
  Psbox.destroy box;
  System.shutdown sys

(* The audit is a pure observer: with it attached, the rail's power
   history and the machine ledger match a run without it, byte for
   byte. *)
let test_pure_observer () =
  let run audited =
    let sys = System.create ~cores:2 ~gpu:true () in
    if audited then ignore (Audit.attach sys : Audit.t);
    let a = System.new_app sys ~name:"a" in
    ignore
      (W.spawn sys ~app:a ~name:"a0" ~core:0
         (W.repeat 15 (fun _ ->
              [
                W.Compute (Time.ms 3);
                W.Gpu_batch [ W.spec ~kind:"k" ~work_s:0.002 () ];
              ])));
    System.start sys;
    System.run_for sys (Time.ms 500);
    let e = System.live_energy_j sys in
    let per_rail = System.rail_energy_table sys in
    System.shutdown sys;
    (e, per_rail)
  in
  let e0, rails0 = run false in
  let e1, rails1 = run true in
  Alcotest.(check bool) "machine ledger identical" true (bits e0 = bits e1);
  Alcotest.(check bool)
    "per-rail ledgers identical" true
    (List.for_all2
       (fun (n0, j0) (n1, j1) -> n0 = n1 && bits j0 = bits j1)
       rails0 rails1)

let suite =
  [
    Alcotest.test_case "random workloads: per-rail bit-exact conservation"
      `Slow test_conservation_property;
    Alcotest.test_case "co-run exercises the full cause taxonomy" `Quick
      test_causes_and_totals;
    Alcotest.test_case "balloon blame insulation + stay_blame" `Quick
      test_balloon_blame_insulation;
    Alcotest.test_case "audit is a pure observer" `Quick test_pure_observer;
  ]
