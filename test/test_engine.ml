(* Unit and property tests for the discrete-event engine. *)
open Psbox_engine

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Time ---------------------------------------------------------- *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "sec" 1_000_000_000 (Time.sec 1);
  check_int "of_sec_f" 1_500_000_000 (Time.of_sec_f 1.5);
  check_float "to_sec_f" 0.25 (Time.to_sec_f (Time.ms 250));
  check_float "to_us_f" 2.5 (Time.to_us_f 2_500);
  check_float "to_ms_f" 1.5 (Time.to_ms_f 1_500_000)

(* ---- Heap ---------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
  let out = List.init 10 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] out;
  check_bool "empty after" true (Heap.is_empty h)

let test_heap_interleaved () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 3;
  Heap.push h 1;
  check_int "pop min" 1 (Option.get (Heap.pop h));
  Heap.push h 0;
  check_int "peek" 0 (Option.get (Heap.peek h));
  check_int "size" 2 (Heap.size h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* ---- Sim ----------------------------------------------------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.schedule_at sim 30 (note "c"));
  ignore (Sim.schedule_at sim 10 (note "a"));
  ignore (Sim.schedule_at sim 10 (note "b"));
  (* same-instant events fire in scheduling order *)
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim 10 (fun () -> fired := true) in
  Sim.cancel sim h;
  check_bool "cancelled" true (Sim.cancelled sim h);
  Sim.run sim;
  check_bool "did not fire" false !fired

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim (i * 10) (fun () -> incr count))
  done;
  Sim.run_until sim 30;
  check_int "three fired" 3 !count;
  check_int "clock at limit" 30 (Sim.now sim);
  Sim.run_until sim 100;
  check_int "all fired" 5 !count

let test_sim_past_raises () =
  let sim = Sim.create () in
  Sim.run_until sim 100;
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: 50ns is before now (100ns)")
    (fun () -> ignore (Sim.schedule_at sim 50 (fun () -> ())))

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule_at sim 10 (fun () ->
         log := Sim.now sim :: !log;
         ignore (Sim.schedule_after sim 5 (fun () -> log := Sim.now sim :: !log))));
  Sim.run sim;
  Alcotest.(check (list int)) "nested times" [ 10; 15 ] (List.rev !log)

(* ---- Rng ----------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 50 (fun _ -> Rng.int c 1_000_000) in
  check_bool "streams differ" true (xs <> ys)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let rng = Rng.create ~seed in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in bounds" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let x = Rng.float rng 3.0 in
      x >= 0.0 && x < 3.0)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:11 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng ~mu:5.0 ~sigma:2.0) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  check_bool "mean close" true (Float.abs (m -. 5.0) < 0.1);
  check_bool "sd close" true (Float.abs (sd -. 2.0) < 0.1)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:13 in
  let xs = Array.init 20_000 (fun _ -> Rng.exponential rng ~mean:4.0) in
  check_bool "mean close" true (Float.abs (Stats.mean xs -. 4.0) < 0.2);
  check_bool "nonnegative" true (Array.for_all (fun x -> x >= 0.0) xs)

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:17 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

(* ---- Timeline ------------------------------------------------------ *)

let test_timeline_values () =
  let tl = Timeline.create ~initial:1.0 () in
  Timeline.set tl 100 2.0;
  Timeline.set tl 200 3.0;
  check_float "before first" 1.0 (Timeline.value_at tl 50);
  check_float "at bp" 2.0 (Timeline.value_at tl 100);
  check_float "mid" 2.0 (Timeline.value_at tl 150);
  check_float "after last" 3.0 (Timeline.value_at tl 500)

let test_timeline_integrate () =
  let tl = Timeline.create ~initial:1.0 () in
  Timeline.set tl (Time.sec 1) 3.0;
  (* 1 W for 1 s then 3 W for 1 s *)
  check_float "energy" 4.0 (Timeline.integrate tl 0 (Time.sec 2));
  (* 0.5 s at 1 W + 0.5 s at 3 W *)
  check_float "partial" 2.0 (Timeline.integrate tl (Time.ms 500) (Time.of_sec_f 1.5));
  check_float "mean" 2.0 (Timeline.mean tl 0 (Time.sec 2))

let test_timeline_same_instant_overwrite () =
  let tl = Timeline.create ~initial:0.0 () in
  Timeline.set tl 10 5.0;
  Timeline.set tl 10 7.0;
  check_float "overwritten" 7.0 (Timeline.value_at tl 10)

let test_timeline_monotonic_guard () =
  let tl = Timeline.create () in
  Timeline.set tl 100 1.0;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timeline.set: 50ns is before last breakpoint 100ns")
    (fun () -> Timeline.set tl 50 2.0)

let test_timeline_samples () =
  let tl = Timeline.create ~initial:1.0 () in
  Timeline.set tl 100 2.0;
  let s = Timeline.samples tl ~period:50 ~from:0 ~until:200 in
  Alcotest.(check int) "count" 5 (Array.length s);
  check_float "s0" 1.0 (snd s.(0));
  check_float "s2" 2.0 (snd s.(2));
  check_float "s4" 2.0 (snd s.(4))

let prop_timeline_integral_additive =
  QCheck.Test.make ~name:"integral is additive over adjacent windows" ~count:200
    QCheck.(list (pair (int_bound 1000) (float_range 0.0 10.0)))
    (fun changes ->
      let tl = Timeline.create ~initial:1.0 () in
      let t = ref 0 in
      List.iter
        (fun (dt, v) ->
          t := !t + dt + 1;
          Timeline.set tl !t (Float.abs v))
        changes;
      let hi = !t + 100 in
      let mid = hi / 2 in
      let whole = Timeline.integrate tl 0 hi in
      let parts = Timeline.integrate tl 0 mid +. Timeline.integrate tl mid hi in
      Float.abs (whole -. parts) < 1e-9)

let prop_timeline_integral_nonneg =
  QCheck.Test.make ~name:"integral of nonnegative values is nonnegative"
    ~count:200
    QCheck.(list (pair (int_bound 1000) (float_range 0.0 5.0)))
    (fun changes ->
      let tl = Timeline.create ~initial:0.5 () in
      let t = ref 0 in
      List.iter
        (fun (dt, v) ->
          t := !t + dt + 1;
          Timeline.set tl !t (Float.abs v))
        changes;
      Timeline.integrate tl 0 (!t + 50) >= 0.0)

let test_timeline_map_intervals () =
  let tl = Timeline.create ~initial:1.0 () in
  Timeline.set tl 100 2.0;
  Timeline.set tl 200 3.0;
  let parts = Timeline.map_intervals tl ~from:50 ~until:250 ~f:(fun a b v -> (a, b, v)) in
  Alcotest.(check int) "three parts" 3 (List.length parts);
  let a, b, v = List.hd parts in
  check_int "first start" 50 a;
  check_int "first stop" 100 b;
  check_float "first value" 1.0 v

(* ---- Stats --------------------------------------------------------- *)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "mean" 3.0 (Stats.mean xs);
  check_float "median" 3.0 (Stats.median xs);
  check_float "min" 1.0 (Stats.min xs);
  check_float "max" 5.0 (Stats.max xs);
  check_float "sum" 15.0 (Stats.sum xs);
  check_float "stddev" (sqrt 2.5) (Stats.stddev xs)

let test_stats_percentile () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  check_float "p0" 0.0 (Stats.percentile xs 0.0);
  check_float "p50" 50.0 (Stats.percentile xs 50.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0);
  check_float "p95" 95.0 (Stats.percentile xs 95.0)

let test_stats_histogram () =
  let xs = [| 0.0; 0.1; 0.9; 1.0 |] in
  let h = Stats.histogram xs ~bins:2 in
  check_int "bin0" 2 h.Stats.counts.(0);
  check_int "bin1" 2 h.Stats.counts.(1)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean is between min and max" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let m = Stats.mean a in
      m >= Stats.min a -. 1e-9 && m <= Stats.max a +. 1e-9)

(* ---- Trace --------------------------------------------------------- *)

let test_trace_events () =
  let tr = Trace.events () in
  Trace.emit tr 10 "a";
  Trace.emit tr 20 "b";
  Alcotest.(check int) "count" 2 (Trace.count tr);
  Alcotest.(check (list (pair int string))) "order" [ (10, "a"); (20, "b") ]
    (Trace.to_list tr)

let test_trace_spans () =
  let tr = Trace.spans () in
  Trace.open_span tr 0 "x";
  Trace.open_span tr 5 "y";
  Trace.close_span tr 10 "x";
  Trace.close_span tr 20 "y";
  let spans = Trace.to_spans tr in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  check_int "x duration" 10 (Trace.total_duration tr (fun t -> t = "x"));
  check_int "y duration" 15 (Trace.total_duration tr (fun t -> t = "y"))

let test_trace_double_open () =
  let tr = Trace.spans () in
  Trace.open_span tr 0 "x";
  Alcotest.check_raises "double open"
    (Invalid_argument "Trace.open_span: tag already open") (fun () ->
      Trace.open_span tr 5 "x")

let test_trace_close_all () =
  let tr = Trace.spans () in
  Trace.open_span tr 0 1;
  Trace.open_span tr 2 2;
  Trace.close_all tr 10;
  Alcotest.(check int) "both closed" 2 (List.length (Trace.to_spans tr));
  Alcotest.(check bool) "none open" false (Trace.is_open tr 1)

let test_trace_overlaps () =
  let s1 = { Trace.start = 0; stop = 10; tag = () } in
  let s2 = { Trace.start = 5; stop = 15; tag = () } in
  let s3 = { Trace.start = 10; stop = 20; tag = () } in
  check_bool "overlap" true (Trace.overlaps s1 s2);
  check_bool "touching is not overlap" false (Trace.overlaps s1 s3)

(* ---- Bus ----------------------------------------------------------- *)

let test_bus_order_and_unsubscribe () =
  let bus = Bus.create () in
  let log = ref [] in
  let s1 = Bus.subscribe bus (fun x -> log := ("a", x) :: !log) in
  let _s2 = Bus.subscribe bus (fun x -> log := ("b", x) :: !log) in
  Bus.publish bus 1;
  Alcotest.(check (list (pair string int)))
    "subscription order" [ ("a", 1); ("b", 1) ] (List.rev !log);
  check_int "two subscribers" 2 (Bus.subscriber_count bus);
  Bus.unsubscribe s1;
  Bus.unsubscribe s1;
  (* idempotent *)
  check_bool "inactive" false (Bus.active s1);
  check_int "one left" 1 (Bus.subscriber_count bus);
  log := [];
  Bus.publish bus 2;
  Alcotest.(check (list (pair string int))) "only b" [ ("b", 2) ] (List.rev !log)

let test_bus_unsubscribe_mid_publish () =
  let bus = Bus.create () in
  let log = ref [] in
  let s2 = ref None in
  ignore
    (Bus.subscribe bus (fun x ->
         log := ("a", x) :: !log;
         match !s2 with Some s -> Bus.unsubscribe s | None -> ()));
  s2 := Some (Bus.subscribe bus (fun x -> log := ("b", x) :: !log));
  Bus.publish bus 1;
  (* b was unsubscribed by a's handler before delivery reached it *)
  Alcotest.(check (list (pair string int))) "b skipped" [ ("a", 1) ] (List.rev !log)

let test_bus_subscribe_mid_publish () =
  let bus = Bus.create () in
  let log = ref [] in
  ignore
    (Bus.subscribe bus (fun x ->
         log := ("a", x) :: !log;
         if x = 1 then ignore (Bus.subscribe bus (fun y -> log := ("late", y) :: !log))));
  Bus.publish bus 1;
  Alcotest.(check (list (pair string int)))
    "late subscriber misses in-flight event" [ ("a", 1) ] (List.rev !log);
  log := [];
  Bus.publish bus 2;
  check_int "late subscriber sees the next one" 2 (List.length !log)

(* ---- Sim cancellation bookkeeping ----------------------------------- *)

let test_sim_pending_excludes_cancelled () =
  let sim = Sim.create () in
  let h1 = Sim.schedule_at sim 10 (fun () -> ()) in
  let _h2 = Sim.schedule_at sim 20 (fun () -> ()) in
  let _h3 = Sim.schedule_at sim 30 (fun () -> ()) in
  check_int "three live" 3 (Sim.pending sim);
  Sim.cancel sim h1;
  check_int "cancelled excluded immediately" 2 (Sim.pending sim);
  Sim.cancel sim h1;
  (* double cancel must not double-count *)
  check_int "idempotent cancel" 2 (Sim.pending sim);
  Sim.run sim;
  check_int "drained" 0 (Sim.pending sim)

let test_sim_bulk_reap () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let handles =
    Array.init 200 (fun i ->
        Sim.schedule_at sim ((i + 1) * 10) (fun () -> incr fired))
  in
  check_int "all queued" 200 (Sim.queue_length sim);
  for i = 0 to 149 do
    Sim.cancel sim handles.(i)
  done;
  check_int "live count exact" 50 (Sim.pending sim);
  check_bool "tombstones reaped in bulk" true (Sim.queue_length sim < 200);
  ignore (Sim.schedule_at sim 5_000 (fun () -> ()));
  Sim.run sim;
  check_int "survivors still fire" 50 !fired;
  check_int "empty" 0 (Sim.queue_length sim)

(* Handle staleness: once an event fires, its pooled slot is recycled and
   every outstanding handle to it goes stale — cancel/cancelled on the old
   handle must not touch the slot's new occupant. *)
let test_sim_stale_handle_no_ops () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let h1 = Sim.schedule_at sim 10 (fun () -> incr fired) in
  Sim.run_until sim 20;
  check_int "first fired" 1 !fired;
  check_bool "fired handle reads done" false (Sim.cancelled sim h1);
  (* with pooling on, the next event reuses h1's slot index *)
  ignore (Sim.schedule_at sim 30 (fun () -> incr fired));
  Sim.cancel sim h1;
  (* stale cancel: a no-op *)
  check_int "recycled occupant unaffected" 1 (Sim.pending sim);
  Sim.cancel sim Sim.none;
  (* none: also a no-op *)
  Sim.run sim;
  check_int "recycled occupant fired" 2 !fired

let test_sim_schedule_every () =
  let sim = Sim.create () in
  let fires = ref [] in
  let p = Sim.schedule_every sim 10 (fun () -> fires := Sim.now sim :: !fires) in
  Sim.run_until sim 35;
  Alcotest.(check (list int)) "fires every period" [ 10; 20; 30 ] (List.rev !fires);
  check_bool "not stopped" false (Sim.periodic_stopped p);
  Sim.cancel_every p;
  check_bool "stopped" true (Sim.periodic_stopped p);
  check_int "in-flight occurrence cancelled" 0 (Sim.pending sim);
  Sim.run_until sim 100;
  check_int "no more fires" 3 (List.length !fires);
  Sim.cancel_every p (* idempotent *)

let test_sim_schedule_every_start () =
  let sim = Sim.create () in
  let fires = ref [] in
  let p =
    Sim.schedule_every sim ~start:5 10 (fun () -> fires := Sim.now sim :: !fires)
  in
  Sim.run_until sim 26;
  Alcotest.(check (list int)) "offset start" [ 5; 15; 25 ] (List.rev !fires);
  Sim.cancel_every p

let test_sim_schedule_every_rearms_before_body () =
  (* The body schedules work for its own instant; because the timer re-armed
     first, that work still runs before the next tick. *)
  let sim = Sim.create () in
  let log = ref [] in
  let p =
    Sim.schedule_every sim 10 (fun () ->
        log := `Tick (Sim.now sim) :: !log;
        ignore (Sim.schedule_after sim 0 (fun () -> log := `After (Sim.now sim) :: !log)))
  in
  Sim.run_until sim 20;
  Sim.cancel_every p;
  Alcotest.(check bool) "tick then same-instant work, twice" true
    (List.rev !log = [ `Tick 10; `After 10; `Tick 20; `After 20 ])

(* ---- Heap maintenance ----------------------------------------------- *)

let test_heap_filter_in_place () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 9; 3; 7; 1; 8; 2; 6; 4; 5; 0 ];
  Heap.filter_in_place h ~keep:(fun x -> x mod 2 = 0);
  check_int "evens kept" 5 (Heap.size h);
  let rec drain acc =
    match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list int)) "still a heap" [ 0; 2; 4; 6; 8 ] (drain [])

let prop_heap_filter_keeps_order =
  QCheck.Test.make ~name:"filter_in_place preserves heap order" ~count:200
    QCheck.(pair (list int) (int_bound 10))
    (fun (xs, k) ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let keep x = abs x mod 11 >= k in
      Heap.filter_in_place h ~keep;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare (List.filter keep xs))

let prop_heap_model =
  (* Random interleaving of pushes and pops, checked against a sorted-list
     model of the same operations. *)
  QCheck.Test.make ~name:"heap matches a sorted-list model" ~count:200
    QCheck.(list (pair bool int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            Heap.push h x;
            model := List.sort compare (x :: !model);
            Heap.size h = List.length !model
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some y, m :: rest ->
                model := rest;
                y = m
            | _ -> false)
        ops)

(* ---- Timeline prefix sums and compaction ----------------------------- *)

(* Reference integrator: a plain walk over the step function, the way
   [integrate] worked before the prefix-sum refactor. *)
let naive_integrate bps ~initial t0 t1 =
  let points =
    (0, initial) :: bps
    |> List.filter (fun (bt, _) -> bt < t1)
  in
  let rec walk acc = function
    | [] -> acc
    | (bt, v) :: rest ->
        let stop = match rest with (bt', _) :: _ -> min bt' t1 | [] -> t1 in
        let start = max bt t0 in
        let acc =
          if stop > start then acc +. (v *. Time.to_sec_f (stop - start)) else acc
        in
        walk acc rest
  in
  walk 0.0 points

let prop_timeline_matches_naive =
  QCheck.Test.make ~name:"prefix-sum integrate matches naive walk" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 40) (pair (int_bound 1000) (float_range 0.0 10.0)))
        (int_bound 20_000) (int_bound 20_000))
    (fun (changes, a, b) ->
      let initial = 1.5 in
      let tl = Timeline.create ~initial () in
      let t = ref 0 in
      let bps =
        List.map
          (fun (dt, v) ->
            t := !t + dt + 1;
            Timeline.set tl !t v;
            (!t, v))
          changes
      in
      (* [set] at an existing instant overwrites, so dedup the reference the
         same way (our generator always advances time; keep it anyway) *)
      let t0 = min a b and t1 = max a b in
      let exact = Timeline.integrate tl t0 t1 in
      let naive = naive_integrate bps ~initial t0 t1 in
      Float.abs (exact -. naive) <= 1e-9 *. Float.max 1.0 (Float.abs naive))

let test_timeline_energy_at () =
  let tl = Timeline.create ~initial:2.0 () in
  Timeline.set tl (Time.sec 1) 4.0;
  check_float "origin" 0.0 (Timeline.energy_at tl 0);
  check_float "first segment" 2.0 (Timeline.energy_at tl (Time.sec 1));
  check_float "across breakpoint" 6.0 (Timeline.energy_at tl (Time.sec 2));
  check_float "difference is integrate" 4.0
    (Timeline.energy_at tl (Time.sec 2) -. Timeline.energy_at tl (Time.sec 1))

let test_timeline_compact () =
  let tl = Timeline.create ~initial:0.0 () in
  for i = 1 to 10 do
    Timeline.set tl (Time.sec i) (float_of_int i)
  done;
  check_int "11 breakpoints" 11 (Timeline.length tl);
  let tail = Timeline.integrate tl (Time.sec 6) (Time.sec 10) in
  let e8 = Timeline.energy_at tl (Time.sec 8) in
  let dropped = Timeline.compact tl ~before:(Time.sec 6) in
  check_int "dropped" 6 dropped;
  check_int "dropped counter" 6 (Timeline.dropped tl);
  check_int "retained" 5 (Timeline.length tl);
  (* inside the retained horizon everything stays exact, including the
     absolute energy origin *)
  check_float "energy origin stable" e8 (Timeline.energy_at tl (Time.sec 8));
  check_float "retained window exact" tail
    (Timeline.integrate tl (Time.sec 6) (Time.sec 10));
  check_float "value at horizon" 6.0 (Timeline.value_at tl (Time.sec 6));
  (* pre-horizon queries degrade to the oldest retained value, as documented *)
  check_float "pre-horizon degrades" 6.0 (Timeline.value_at tl (Time.sec 2))

let test_timeline_retention () =
  let tl = Timeline.create ~initial:0.0 ~retention:(Time.sec 2) () in
  for i = 1 to 100 do
    Timeline.set tl (Time.ms (i * 100)) (float_of_int (i mod 7))
  done;
  (* 10 s of history at 100 ms per breakpoint, 2 s retention: far fewer than
     101 breakpoints retained, and recent integrals still exact *)
  check_bool "history bounded" true (Timeline.length tl < 50);
  check_bool "something dropped" true (Timeline.dropped tl > 0);
  let exact_recent =
    let rec sum i acc =
      if i > 99 then acc
      else sum (i + 1) (acc +. (float_of_int (i mod 7) *. 0.1))
    in
    sum 91 0.0
  in
  check_bool "recent window exact" true
    (Float.abs (Timeline.integrate tl (Time.ms 9_100) (Time.sec 10) -. exact_recent)
    < 1e-9)

(* ---- Timing wheel --------------------------------------------------- *)

(* Walk one element through every layer of a tiny wheel (granule 16 ns,
   4 slots per level, 2 levels, span 256 ns): ready heap, level-0 slot,
   level-1 slot (cascades down on reach), overflow list (cascades back in
   when the wheel runs dry). *)
let test_wheel_cascade_boundaries () =
  let w =
    Wheel.create ~granularity_bits:4 ~wheel_bits:2 ~levels:2 ~dummy:0
      ~cmp:compare ~time:(fun x -> x) ()
  in
  check_int "granule" 16 (Wheel.granule w);
  check_int "level-0 span" 64 (Wheel.level_span w 0);
  check_int "wheel span" 256 (Wheel.wheel_span w);
  List.iter (Wheel.push w) [ 5; 20; 100; 1000 ];
  check_int "size" 4 (Wheel.size w);
  check_int "current granule sits in the ready heap" 1 (Wheel.ready_count w);
  check_int "beyond the top level overflows" 1 (Wheel.overflow_count w);
  check_int "pop 5" 5 (Option.get (Wheel.pop w));
  check_int "pop 20" 20 (Option.get (Wheel.pop w));
  check_int "cursor advanced to 20's granule" 16 (Wheel.cursor w);
  (* 100 lives in a level-1 slot: popping it forces a cascade to level 0 *)
  check_int "pop 100 (level-1 cascade)" 100 (Option.get (Wheel.pop w));
  check_int "cursor at 100's granule" 96 (Wheel.cursor w);
  (* the wheel is now dry: peeking cascades the overflow list back in *)
  check_int "peek 1000" 1000 (Option.get (Wheel.peek w));
  check_int "overflow rehomed" 0 (Wheel.overflow_count w);
  check_int "cursor jumped to 1000's granule floor" 992 (Wheel.cursor w);
  check_int "pop 1000" 1000 (Option.get (Wheel.pop w));
  check_bool "empty after" true (Wheel.is_empty w);
  (* granule-boundary placement: the last ns of the current granule is
     ready, the first ns of the next granule is not *)
  let c = Wheel.cursor w in
  Wheel.push w (c + 15);
  Wheel.push w (c + 16);
  check_int "below cursor+granule is ready" 1 (Wheel.ready_count w);
  Wheel.clear w;
  check_bool "clear empties" true (Wheel.is_empty w);
  check_int "clear rewinds the cursor" 0 (Wheel.cursor w);
  Alcotest.check_raises "negative time rejected"
    (Invalid_argument "Wheel.push: negative time") (fun () ->
      Wheel.push w (-1))

(* Heap and wheel must realise the exact same (time, seq) total order:
   interpret a random program of schedule/cancel/run_until ops against
   both backends and require identical fire sequences, firing clocks,
   observed pending counts, and final clocks. Far-future schedules (the
   [* 2_000_000] arm) push events past the wheel's 19.5 h horizon, so the
   overflow cascade is on the tested path. *)
let prop_backends_agree =
  QCheck.Test.make ~name:"heap and wheel realise the same schedule"
    ~count:100
    QCheck.(list (triple (int_bound 3) (int_bound 200_000_000) bool))
    (fun ops ->
      let trace backend =
        let sim = Sim.create ~backend () in
        let log = ref [] in
        let handles = ref [] in
        let k = ref 0 in
        List.iter
          (fun (op, dt, far) ->
            match op with
            | 0 | 3 ->
                incr k;
                let id = !k in
                let dt = if far && op = 0 then dt * 2_000_000 else dt in
                handles :=
                  Sim.schedule_after sim dt (fun () ->
                      log := (id, Sim.now sim) :: !log)
                  :: !handles
            | 1 -> (
                match !handles with
                | h :: rest when far ->
                    Sim.cancel sim h;
                    handles := rest
                | _ -> ())
            | _ ->
                Sim.run_until sim (Sim.now sim + dt);
                log := (-1, Sim.now sim) :: !log;
                log := (-2, Sim.pending sim) :: !log)
          ops;
        Sim.run sim;
        (List.rev !log, Sim.now sim, Sim.pending sim)
      in
      trace `Heap = trace `Wheel)

(* Slot pooling must be invisible: a pooled sim and a fresh-handles sim
   (pooling off — every event allocates its own record, the pre-pool
   behavior) must realise identical (id, time) fire orders, pending counts
   and cancelled-query answers under random schedule / cancel / stale-
   cancel / reap interleavings. Ops 1 and 2 cancel live and {e retired}
   handles respectively, so cancel-after-recycle staleness is on the
   tested path; 150+-event programs cross the bulk-reap threshold. *)
let prop_pooling_invisible =
  QCheck.Test.make ~name:"pooled and fresh-handle sims realise the same schedule"
    ~count:100
    QCheck.(list (pair (int_bound 4) (int_bound 50_000_000)))
    (fun ops ->
      let trace pooling =
        let sim = Sim.create ~pooling () in
        let log = ref [] in
        let live = ref [] and old = ref [] in
        let k = ref 0 in
        List.iter
          (fun (op, dt) ->
            match op with
            | 0 | 3 ->
                incr k;
                let id = !k in
                let h =
                  Sim.schedule_after sim (dt mod 5_000_000) (fun () ->
                      log := (id, Sim.now sim) :: !log)
                in
                live := h :: !live
            | 1 -> (
                match !live with
                | h :: rest ->
                    Sim.cancel sim h;
                    live := rest;
                    old := h :: !old
                | [] -> ())
            | 2 -> (
                (* stale or double cancel, plus a cancelled query *)
                match !old with
                | h :: _ ->
                    Sim.cancel sim h;
                    log := ((if Sim.cancelled sim h then -3 else -4), 0) :: !log
                | [] -> ())
            | _ ->
                Sim.run_until sim (Sim.now sim + dt);
                log := (-1, Sim.now sim) :: !log;
                log := (-2, Sim.pending sim) :: !log)
          ops;
        Sim.run sim;
        (List.rev !log, Sim.now sim, Sim.pending sim)
      in
      trace true = trace false)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ("time units", `Quick, test_time_units);
    ("heap order", `Quick, test_heap_order);
    ("heap interleaved", `Quick, test_heap_interleaved);
    ("sim same-instant FIFO", `Quick, test_sim_ordering);
    ("sim cancel", `Quick, test_sim_cancel);
    ("sim run_until", `Quick, test_sim_run_until);
    ("sim rejects the past", `Quick, test_sim_past_raises);
    ("sim nested scheduling", `Quick, test_sim_nested_schedule);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng gaussian moments", `Quick, test_rng_gaussian_moments);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    ("timeline values", `Quick, test_timeline_values);
    ("timeline integrate", `Quick, test_timeline_integrate);
    ("timeline same-instant overwrite", `Quick, test_timeline_same_instant_overwrite);
    ("timeline monotonic guard", `Quick, test_timeline_monotonic_guard);
    ("timeline samples", `Quick, test_timeline_samples);
    ("timeline map_intervals", `Quick, test_timeline_map_intervals);
    ("stats basics", `Quick, test_stats_basics);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats histogram", `Quick, test_stats_histogram);
    ("trace events", `Quick, test_trace_events);
    ("trace spans", `Quick, test_trace_spans);
    ("trace double open", `Quick, test_trace_double_open);
    ("trace close_all", `Quick, test_trace_close_all);
    ("trace overlaps", `Quick, test_trace_overlaps);
    ("bus order and unsubscribe", `Quick, test_bus_order_and_unsubscribe);
    ("bus unsubscribe mid-publish", `Quick, test_bus_unsubscribe_mid_publish);
    ("bus subscribe mid-publish", `Quick, test_bus_subscribe_mid_publish);
    ("sim pending excludes cancelled", `Quick, test_sim_pending_excludes_cancelled);
    ("sim bulk tombstone reap", `Quick, test_sim_bulk_reap);
    ("sim stale handles no-op", `Quick, test_sim_stale_handle_no_ops);
    ("sim schedule_every", `Quick, test_sim_schedule_every);
    ("sim schedule_every start", `Quick, test_sim_schedule_every_start);
    ("sim schedule_every re-arms first", `Quick, test_sim_schedule_every_rearms_before_body);
    ("heap filter_in_place", `Quick, test_heap_filter_in_place);
    ("wheel cascade boundaries", `Quick, test_wheel_cascade_boundaries);
    ("timeline energy_at", `Quick, test_timeline_energy_at);
    ("timeline compact", `Quick, test_timeline_compact);
    ("timeline retention", `Quick, test_timeline_retention);
    qcheck prop_heap_sorts;
    qcheck prop_heap_filter_keeps_order;
    qcheck prop_heap_model;
    qcheck prop_timeline_matches_naive;
    qcheck prop_rng_int_bounds;
    qcheck prop_rng_float_bounds;
    qcheck prop_timeline_integral_additive;
    qcheck prop_timeline_integral_nonneg;
    qcheck prop_stats_mean_bounds;
    qcheck prop_backends_agree;
    qcheck prop_pooling_invisible;
  ]
