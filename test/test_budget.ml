(* Tests for the power-budget control plane: the CFS quota and driver rate
   gates it actuates, cap convergence and graceful degradation, envelope
   squeezing, admission ordering, and the auto-wired live splitters it
   measures through. *)
open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Accel_driver = Psbox_kernel.Accel_driver
module Split = Psbox_accounting.Split
module Budget = Psbox_budget.Budget
module W = Psbox_workloads.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spin sys app =
  ignore
    (W.spawn sys ~app ~name:"spin"
       (W.forever (fun () -> [ W.Compute (Time.ms 2); W.Count ("units", 1.0) ])))

let rate sys app span =
  let u0 = System.counter app "units" in
  System.run_for sys span;
  (System.counter app "units" -. u0) /. Time.to_sec_f span

(* The CFS quota alone halves a solo app's runtime: weight-based shares
   could never do this (a lone app always gets the whole core). *)
let test_quota_caps_solo_app () =
  let sys = System.create ~cores:1 () in
  let a = System.new_app sys ~name:"a" in
  spin sys a;
  System.start sys;
  let free = rate sys a (Time.sec 1) in
  Smp.set_quota (System.smp sys) ~app:a.System.app_id (Some 0.5);
  System.run_for sys (Time.ms 100);
  let capped = rate sys a (Time.sec 1) in
  let share = capped /. free in
  check_bool
    (Printf.sprintf "half runtime (%.2f)" share)
    true
    (share > 0.45 && share < 0.55);
  Smp.set_quota (System.smp sys) ~app:a.System.app_id None;
  System.run_for sys (Time.ms 100);
  let restored = rate sys a (Time.sec 1) in
  check_bool "restored" true (restored /. free > 0.95);
  System.shutdown sys

(* A cap converges: the capped tenant's windowed mean lands within 10% of
   the cap, deterministically, and the co-runner keeps its throughput. *)
let test_cap_converges () =
  let sys =
    System.create ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  spin sys a;
  spin sys b;
  System.start sys;
  System.run_for sys (Time.ms 200);
  let b_free = rate sys b (Time.sec 1) in
  let ctl = Budget.create sys () in
  Budget.set_cap ctl ~app:a.System.app_id ~watts:0.9;
  System.run_for sys (Time.sec 2);
  let meas = Budget.measured_w ctl ~app:a.System.app_id in
  check_bool
    (Printf.sprintf "within 10%% of cap (%.3f W)" meas)
    true
    (Float.abs (meas -. 0.9) /. 0.9 < 0.10);
  let b_capped = rate sys b (Time.sec 1) in
  check_bool "neighbor unaffected" true
    (Float.abs (b_capped -. b_free) /. b_free < 0.02);
  Budget.stop ctl;
  check_bool "quota released on stop" true
    (Smp.quota (System.smp sys) ~app:a.System.app_id = None);
  System.shutdown sys

(* A cap below the attributable floor pins the throttle at its floor; the
   app degrades gracefully instead of starving. *)
let test_cap_below_idle_floor () =
  let sys =
    System.create ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  spin sys a;
  spin sys b;
  System.start sys;
  let ctl = Budget.create sys () in
  (* even never running would attribute ~0 W, but any progress at all
     draws more than 1 mW -- unreachable *)
  Budget.set_cap ctl ~app:a.System.app_id ~watts:0.001;
  System.run_for sys (Time.sec 2);
  check_bool "throttle at floor" true
    (Budget.throttle ctl ~app:a.System.app_id <= 0.02 +. 1e-9);
  let a_rate = rate sys a (Time.sec 1) in
  check_bool "still makes progress" true (a_rate > 0.0);
  Budget.stop ctl;
  System.shutdown sys

(* Raising a cap mid-run relaxes the throttle back up; a generous cap
   releases the actuators entirely. *)
let test_cap_raised_mid_run () =
  let sys =
    System.create ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  spin sys a;
  spin sys b;
  System.start sys;
  let ctl = Budget.create sys () in
  Budget.set_cap ctl ~app:a.System.app_id ~watts:0.5;
  System.run_for sys (Time.sec 2);
  let thr_tight = Budget.throttle ctl ~app:a.System.app_id in
  let rate_tight = rate sys a (Time.sec 1) in
  check_bool "tight cap throttles" true (thr_tight < 0.5);
  Budget.set_cap ctl ~app:a.System.app_id ~watts:10.0;
  System.run_for sys (Time.sec 2);
  check_bool "throttle fully relaxed" true
    (Budget.throttle ctl ~app:a.System.app_id = 1.0);
  check_bool "quota released" true
    (Smp.quota (System.smp sys) ~app:a.System.app_id = None);
  let rate_free = rate sys a (Time.sec 1) in
  check_bool "throughput recovers" true (rate_free > rate_tight *. 1.5);
  Budget.stop ctl;
  System.shutdown sys

(* Two apps sharing one accelerator rail: capping one squeezes only its
   attributed share of that rail; the other keeps its throughput. *)
let test_accel_rail_shared () =
  let sys =
    System.create ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ~gpu:true ()
  in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  let render app =
    ignore
      (W.spawn sys ~app ~name:"render"
         (W.forever (fun () ->
              [
                W.Compute (Time.us 200);
                W.Gpu_batch [ W.spec ~kind:"draw" ~work_s:1.0e-3 () ];
                W.Count ("batches", 1.0);
              ])))
  in
  render a;
  render b;
  System.start sys;
  System.run_for sys (Time.ms 500);
  let ctl = Budget.create sys () in
  (* an unreachable cap measures without throttling *)
  Budget.set_cap ctl ~app:a.System.app_id ~watts:100.0;
  System.run_for sys (Time.sec 1);
  let free = Budget.measured_w ctl ~app:a.System.app_id in
  check_bool "draws on the accel rail" true (free > 0.0);
  let b0 = System.counter b "batches" in
  Budget.set_cap ctl ~app:a.System.app_id ~watts:(free /. 3.0);
  System.run_for sys (Time.sec 2);
  let capped = Budget.measured_w ctl ~app:a.System.app_id in
  check_bool
    (Printf.sprintf "attributed draw drops (%.3f -> %.3f W)" free capped)
    true
    (capped < free /. 2.0);
  check_bool "accel gate armed" true
    (Accel_driver.rate (System.gpu sys) ~app:a.System.app_id <> None);
  check_bool "co-renderer keeps going" true
    (System.counter b "batches" -. b0 > 0.0);
  Budget.stop ctl;
  check_bool "gate released on stop" true
    (Accel_driver.rate (System.gpu sys) ~app:a.System.app_id = None);
  System.shutdown sys

(* An envelope squeezes harder as it is spent: the effective cap after
   heavy use is lower than at the start. *)
let test_envelope_squeezes () =
  let sys =
    System.create ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let a = System.new_app sys ~name:"a" in
  spin sys a;
  System.start sys;
  let ctl = Budget.create sys () in
  (* ~2.5 W draw against a 10 J / 10 s envelope (1 W average) *)
  Budget.set_envelope ctl ~app:a.System.app_id ~joules:10.0
    ~horizon:(Time.sec 10);
  let cap0 = Budget.effective_cap_w ctl ~app:a.System.app_id in
  System.run_for sys (Time.sec 3);
  let cap3 = Budget.effective_cap_w ctl ~app:a.System.app_id in
  check_bool
    (Printf.sprintf "cap declines after overspend (%.2f -> %.2f W)" cap0 cap3)
    true
    (cap3 < cap0);
  check_bool "throttled" true (Budget.throttle ctl ~app:a.System.app_id < 1.0);
  Budget.stop ctl;
  System.shutdown sys

(* Admission: FIFO queue, strict head-first drain (no sneaking past a
   large waiter), rejection of what can never fit. *)
let test_admission_ordering () =
  let sys = System.create () in
  let ctl = Budget.create sys ~machine_budget_w:3.0 () in
  let order = ref [] in
  let note name () = order := name :: !order in
  check_bool "A fits" true
    (Budget.admit ctl ~app:1 ~watts:2.0 () = Budget.Admitted);
  check_bool "B fits" true
    (Budget.admit ctl ~app:2 ~watts:0.9 () = Budget.Admitted);
  check_bool "C queues" true
    (Budget.admit ctl ~app:3 ~watts:1.5 ~on_admit:(note "C") ~queue:true ()
    = Budget.Queued);
  check_bool "D queues behind C" true
    (Budget.admit ctl ~app:4 ~watts:0.2 ~on_admit:(note "D") ~queue:true ()
    = Budget.Queued);
  check_bool "E rejected" true
    (Budget.admit ctl ~app:5 ~watts:5.0 () = Budget.Rejected);
  (try
     ignore (Budget.admit ctl ~app:1 ~watts:0.1 ());
     Alcotest.fail "duplicate admit should raise"
   with Invalid_argument _ -> ());
  (* 0.9 W freed: not enough for C at the head, and D must not sneak by *)
  Budget.release ctl ~app:2;
  check_bool "C still queued" false (Budget.admitted ctl ~app:3);
  check_bool "D held behind C" false (Budget.admitted ctl ~app:4);
  check_int "two waiting" 2 (Budget.queued ctl);
  (* 2 W more freed: C drains first, then D *)
  Budget.release ctl ~app:1;
  check_bool "C admitted" true (Budget.admitted ctl ~app:3);
  check_bool "D admitted" true (Budget.admitted ctl ~app:4);
  check_bool "admitted in arrival order" true (List.rev !order = [ "C"; "D" ]);
  check_int "queue drained" 0 (Budget.queued ctl);
  Budget.stop ctl;
  System.shutdown sys

(* The auto-wired CPU splitter attributes the whole rail while anyone is
   running -- its total matches the rail's own energy meter. *)
let test_live_cpu_attribution_total () =
  let sys =
    System.create ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  spin sys a;
  spin sys b;
  System.start sys;
  System.run_for sys (Time.ms 100);
  let from = System.now sys in
  let lv = Split.live_cpu (System.smp sys) ~from in
  System.run_for sys (Time.sec 1);
  let until = System.now sys in
  let attributed = Split.total_attributed (Split.live_read lv ~until) in
  let rail = Psbox_hw.Cpu.rail (System.cpu sys) in
  let metered =
    Timeline.integrate (Psbox_hw.Power_rail.timeline rail) from until
  in
  check_bool
    (Printf.sprintf "full rail attributed (%.3f vs %.3f J)" attributed metered)
    true
    (Float.abs (attributed -. metered) /. metered < 0.01);
  Split.live_detach lv;
  System.shutdown sys

let suite =
  [
    Alcotest.test_case "quota caps a solo app" `Quick test_quota_caps_solo_app;
    Alcotest.test_case "cap converges within 10%" `Quick test_cap_converges;
    Alcotest.test_case "cap below idle floor degrades gracefully" `Quick
      test_cap_below_idle_floor;
    Alcotest.test_case "cap raised mid-run relaxes" `Quick
      test_cap_raised_mid_run;
    Alcotest.test_case "two apps share one accel rail" `Quick
      test_accel_rail_shared;
    Alcotest.test_case "envelope squeezes as it is spent" `Quick
      test_envelope_squeezes;
    Alcotest.test_case "admission drains head-first" `Quick
      test_admission_ordering;
    Alcotest.test_case "live_cpu attributes the full rail" `Quick
      test_live_cpu_attribution_total;
  ]
