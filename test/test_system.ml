(* Tests for the System assembly (presets, rails, counters) and psbox
   pay-as-you-go cycling. *)
open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_presets () =
  let am57 = System.am57 () in
  check_bool "am57 gpu" true (System.has_gpu am57);
  check_bool "am57 dsp" true (System.has_dsp am57);
  check_bool "am57 no wifi" false (System.has_wifi am57);
  check_int "am57 rails" 3 (List.length (System.rails am57));
  let bbb = System.bbb () in
  check_bool "bbb wifi" true (System.has_wifi bbb);
  check_int "bbb cores" 1 (Psbox_kernel.Smp.cores (System.smp bbb));
  let phone = System.phone () in
  check_bool "phone display" true (System.has_display phone);
  check_bool "phone gps" true (System.has_gps phone);
  check_int "phone rails" 5 (List.length (System.rails phone))

let test_missing_device_raises () =
  let sys = System.create () in
  Alcotest.check_raises "no gpu" (Invalid_argument "System.gpu: no GPU")
    (fun () -> ignore (System.gpu sys));
  Alcotest.check_raises "no dsp" (Invalid_argument "System.dsp: no DSP")
    (fun () -> ignore (System.dsp sys));
  Alcotest.check_raises "no wifi" (Invalid_argument "System.net: no WiFi")
    (fun () -> ignore (System.net sys))

let test_app_registry_and_counters () =
  let sys = System.create () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  check_bool "distinct ids" true (a.System.app_id <> b.System.app_id);
  check_int "registry" 2 (List.length (System.apps sys));
  check_bool "lookup" true (System.app_by_id sys a.System.app_id = Some a);
  check_bool "missing lookup" true (System.app_by_id sys 999 = None);
  System.bump a "x" 1.5;
  System.bump a "x" 2.5;
  Alcotest.(check (float 1e-9)) "counter sums" 4.0 (System.counter a "x");
  Alcotest.(check (float 1e-9)) "absent counter" 0.0 (System.counter a "y")

let test_run_for_advances_clock () =
  let sys = System.create () in
  System.start sys;
  let t0 = System.now sys in
  System.run_for sys (Time.ms 123);
  check_int "advanced" (t0 + Time.ms 123) (System.now sys)

(* Pay-as-you-go: many short enter/leave cycles must keep working, with
   energy observable in each session and no residue across sessions. *)
let test_pay_as_you_go_cycles () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 4); W.Sleep (Time.ms 1) ])));
  let noisy = System.new_app sys ~name:"noisy" in
  ignore
    (W.spawn sys ~app:noisy ~name:"n" ~core:1
       (W.forever (fun () -> [ W.Compute (Time.ms 5) ])));
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  let readings = ref [] in
  for _ = 1 to 50 do
    System.run_for sys (Time.ms 7);
    Psbox.enter box;
    System.run_for sys (Time.ms 20);
    readings := Psbox.read_mj box :: !readings;
    Psbox.leave box
  done;
  System.shutdown sys;
  let rs = Array.of_list !readings in
  check_int "all sessions observed" 50 (Array.length rs);
  check_bool "every session accumulated energy" true
    (Array.for_all (fun mj -> mj > 0.0) rs);
  (* early sessions ramp the psbox's private DVFS state; once warmed, the
     readings must be stable across sessions (no cross-session residue).
     readings are newest-first. *)
  let late = Array.sub rs 0 30 in
  let lo = Stats.min late and hi = Stats.max late in
  check_bool
    (Printf.sprintf "warmed sessions stable (%.2f..%.2f mJ)" lo hi)
    true
    (hi < 1.5 *. lo)

let test_power_bus_and_ledger () =
  let sys = System.am57 () in
  let transitions = ref 0 in
  ignore
    (Psbox_engine.Bus.subscribe (System.power_bus sys) (fun _ -> incr transitions));
  let a = System.new_app sys ~name:"a" in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 4); W.Sleep (Time.ms 1) ])));
  System.start sys;
  System.run_for sys (Time.sec 2);
  check_bool "rail transitions forwarded machine-wide" true (!transitions > 0);
  (* the O(1) bus-fed ledger agrees with exact per-rail integration *)
  let now = System.now sys in
  let exact =
    List.fold_left
      (fun acc r -> acc +. Psbox_hw.Power_rail.energy_j r ~from:0 ~until:now)
      0.0 (System.rails sys)
  in
  check_bool
    (Printf.sprintf "ledger matches integrals (%.6f vs %.6f J)"
       (System.live_energy_j sys) exact)
    true
    (Float.abs (System.live_energy_j sys -. exact) < 1e-6);
  check_bool "live power positive" true (System.live_power_w sys > 0.0);
  System.shutdown sys

let test_system_every () =
  let sys = System.create () in
  let fires = ref 0 in
  let p = System.every sys (Time.ms 100) (fun () -> incr fires) in
  System.run_for sys (Time.ms 550);
  check_int "five fires" 5 !fires;
  Psbox_engine.Sim.cancel_every p;
  System.run_for sys (Time.ms 500);
  check_int "stopped" 5 !fires

let suite =
  [
    ("platform presets", `Quick, test_presets);
    ("missing device raises", `Quick, test_missing_device_raises);
    ("app registry and counters", `Quick, test_app_registry_and_counters);
    ("run_for advances clock", `Quick, test_run_for_advances_clock);
    ("pay-as-you-go cycling", `Quick, test_pay_as_you_go_cycles);
    ("power bus and energy ledger", `Quick, test_power_bus_and_ledger);
    ("System.every periodic", `Quick, test_system_every);
  ]
