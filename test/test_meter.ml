(* Tests for the metering library: samples, DAQ, clock sync, model fit. *)
open Psbox_engine
open Psbox_meter

let check_float e = Alcotest.(check (float e))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_sample_energy () =
  let s =
    [|
      Sample.make 0 1.0;
      Sample.make (Time.sec 1) 3.0;
      Sample.make (Time.sec 2) 3.0;
    |]
  in
  (* rectangle rule: 1 W for 1 s + 3 W for 1 s *)
  check_float 1e-9 "energy J" 4.0 (Sample.energy_j s);
  check_float 1e-9 "energy mJ" 4000.0 (Sample.energy_mj s);
  check_float 1e-9 "mean W" 2.0 (Sample.mean_w s)

let test_sample_between () =
  let s = Array.init 10 (fun i -> Sample.make (i * 100) (float_of_int i)) in
  let w = Sample.between s ~from:250 ~until:650 in
  check_int "window" 4 (Array.length w);
  check_float 1e-9 "first" 3.0 w.(0).Sample.watts

let test_daq_capture () =
  let sim = Sim.create () in
  let rail = Psbox_hw.Power_rail.create sim ~name:"r" ~idle_w:1.0 in
  Sim.run_until sim (Time.ms 5);
  Psbox_hw.Power_rail.set_power rail 2.0;
  Sim.run_until sim (Time.ms 10);
  let daq = Daq.create ~rate_hz:1000 () in
  check_int "period" (Time.ms 1) (Daq.period daq);
  let s = Daq.capture daq rail ~from:0 ~until:(Time.ms 10) in
  check_int "11 samples" 11 (Array.length s);
  check_float 1e-9 "before step" 1.0 s.(4).Sample.watts;
  check_float 1e-9 "after step" 2.0 s.(6).Sample.watts

let test_daq_noise_reproducible () =
  let sim = Sim.create () in
  let rail = Psbox_hw.Power_rail.create sim ~name:"r" ~idle_w:1.0 in
  Sim.run_until sim (Time.ms 10);
  let mk () = Daq.create ~rate_hz:1000 ~noise_w:0.05 ~rng:(Rng.create ~seed:3) () in
  let a = Daq.capture (mk ()) rail ~from:0 ~until:(Time.ms 10) in
  let b = Daq.capture (mk ()) rail ~from:0 ~until:(Time.ms 10) in
  check_bool "noisy" true (Array.exists (fun s -> s.Sample.watts <> 1.0) a);
  check_bool "deterministic given seed" true (a = b);
  check_bool "never negative" true (Array.for_all (fun s -> s.Sample.watts >= 0.0) a)

let test_clock_sync_estimates () =
  let c = Clock_sync.create ~offset:(Time.us 1700) ~skew_ppm:35.0 () in
  let rng = Rng.create ~seed:5 in
  let est = Clock_sync.sync c ~rng ~pulses:64 ~interval:(Time.ms 10) ~jitter:(Time.us 2) in
  check_bool "offset close" true
    (abs (est.Clock_sync.offset - Time.us 1700) < Time.us 10);
  check_bool "skew close" true (Float.abs (est.Clock_sync.skew_ppm -. 35.0) < 5.0);
  let err = Clock_sync.residual_error c est ~at:(Time.sec 1) in
  check_bool "residual under 10us" true (err < Time.us 10)

let test_clock_sync_roundtrip () =
  let c = Clock_sync.create () in
  let t = Time.ms 123 in
  check_bool "roundtrip" true (abs (Clock_sync.to_target c (Clock_sync.to_daq c t) - t) <= 1)

let test_model_meter_fit () =
  (* ground truth: P = 0.3 + 2.0*u1 + 0.5*u2 *)
  let rng = Rng.create ~seed:9 in
  let obs =
    List.init 60 (fun _ ->
        let u1 = Rng.float rng 1.0 and u2 = Rng.float rng 1.0 in
        ([| u1; u2 |], 0.3 +. (2.0 *. u1) +. (0.5 *. u2)))
  in
  let m = Model_meter.fit obs in
  check_float 1e-6 "intercept" 0.3 (Model_meter.intercept m);
  check_float 1e-6 "beta1" 2.0 (Model_meter.coeffs m).(0);
  check_float 1e-6 "beta2" 0.5 (Model_meter.coeffs m).(1);
  check_float 1e-6 "rmse" 0.0 (Model_meter.rmse m obs);
  check_float 1e-6 "predict" 1.55 (Model_meter.predict m [| 0.5; 0.5 |])

let test_model_meter_noisy_fit () =
  let rng = Rng.create ~seed:10 in
  let obs =
    List.init 500 (fun _ ->
        let u = Rng.float rng 1.0 in
        ([| u |], 1.0 +. (3.0 *. u) +. Rng.gaussian rng ~mu:0.0 ~sigma:0.05))
  in
  let m = Model_meter.fit obs in
  check_bool "slope close" true (Float.abs ((Model_meter.coeffs m).(0) -. 3.0) < 0.05);
  check_bool "rmse near noise floor" true (Model_meter.rmse m obs < 0.07)

let test_model_meter_degenerate () =
  Alcotest.check_raises "not enough obs"
    (Invalid_argument "Model_meter.fit: not enough observations") (fun () ->
      ignore (Model_meter.fit [ ([| 1.0 |], 1.0) ]))

let test_daq_monitor () =
  let sim = Sim.create () in
  let rail = Psbox_hw.Power_rail.create sim ~name:"r" ~idle_w:1.0 in
  let m = Daq.monitor ~from:(Sim.now sim) rail in
  ignore (Sim.schedule_at sim (Time.sec 1) (fun () -> Psbox_hw.Power_rail.set_power rail 3.0));
  ignore (Sim.schedule_at sim (Time.sec 2) (fun () -> Psbox_hw.Power_rail.set_power rail 2.0));
  Sim.run_until sim (Time.sec 3);
  check_float 1e-9 "monitor matches exact integral"
    (Psbox_hw.Power_rail.energy_j rail ~from:0 ~until:(Time.sec 3))
    (Daq.monitor_energy_j m ~until:(Time.sec 3));
  check_int "transitions" 2 (Daq.monitor_transitions m);
  check_float 1e-9 "peak" 3.0 (Daq.monitor_peak_w m);
  Daq.monitor_detach m;
  ignore (Sim.schedule_at sim (Time.sec 4) (fun () -> Psbox_hw.Power_rail.set_power rail 10.0));
  Sim.run_until sim (Time.sec 5);
  (* detached: keeps integrating at the last level it saw, blind to the 10 W step *)
  check_float 1e-9 "frozen after detach" 10.0 (Daq.monitor_energy_j m ~until:(Time.sec 5))

let test_sensor_hub_attach () =
  let sim = Sim.create () in
  let src = Psbox_hw.Power_rail.create sim ~name:"cpu" ~idle_w:0.5 in
  let hub = Sensor_hub.create sim () in
  (* machine-style shared bus carrying both the source rail and the hub's
     own rail, to exercise the self-feedback filter *)
  let bus = Bus.create () in
  ignore (Bus.subscribe (Psbox_hw.Power_rail.transitions src) (Bus.publish bus));
  ignore
    (Bus.subscribe (Psbox_hw.Power_rail.transitions (Sensor_hub.rail hub)) (Bus.publish bus));
  Sensor_hub.attach hub bus ~samples_per_event:1000 ();
  check_bool "attached" true (Sensor_hub.attached hub);
  ignore (Sim.schedule_at sim (Time.ms 1) (fun () -> Psbox_hw.Power_rail.set_power src 2.0));
  ignore (Sim.schedule_at sim (Time.ms 50) (fun () -> Psbox_hw.Power_rail.set_power src 0.5));
  Sim.run_until sim (Time.sec 1);
  (* one batch per source transition; the hub's own rail toggles did not
     re-trigger it *)
  check_int "two batches" 2000 (Sensor_hub.processed hub);
  check_int "drained" 0 (Sensor_hub.backlog hub);
  Sensor_hub.detach hub;
  check_bool "detached" false (Sensor_hub.attached hub);
  ignore (Sim.schedule_at sim (Time.ms 1100) (fun () -> Psbox_hw.Power_rail.set_power src 2.0));
  Sim.run_until sim (Time.sec 2);
  check_int "no batch after detach" 2000 (Sensor_hub.processed hub)

let test_model_meter_collector () =
  let sim = Sim.create () in
  let rail = Psbox_hw.Power_rail.create sim ~name:"r" ~idle_w:1.0 in
  let u = ref 0.0 in
  let c =
    Model_meter.collector
      (Psbox_hw.Power_rail.transitions rail)
      ~initial_w:(Psbox_hw.Power_rail.power rail)
      ~utils:(fun () -> [| !u |])
  in
  let step at util =
    ignore
      (Sim.schedule_at sim at (fun () ->
           u := util;
           Psbox_hw.Power_rail.set_power rail (1.0 +. (3.0 *. util))))
  in
  List.iteri
    (fun i util -> step (Time.ms ((i + 1) * 100)) util)
    [ 0.2; 0.7; 0.4; 0.9; 0.1 ];
  Sim.run_until sim (Time.sec 1);
  check_int "one observation per transition" 5 (Model_meter.observation_count c);
  let m = Model_meter.fit_collected c in
  check_float 1e-6 "intercept recovered" 1.0 (Model_meter.intercept m);
  check_float 1e-6 "slope recovered" 3.0 (Model_meter.coeffs m).(0);
  Model_meter.collector_detach c;
  ignore (Sim.schedule_at sim (Time.ms 1100) (fun () -> Psbox_hw.Power_rail.set_power rail 9.0));
  Sim.run_until sim (Time.sec 2);
  check_int "no observation after detach" 5 (Model_meter.observation_count c)

let suite =
  [
    ("sample energy", `Quick, test_sample_energy);
    ("sample between", `Quick, test_sample_between);
    ("daq capture", `Quick, test_daq_capture);
    ("daq noise reproducible", `Quick, test_daq_noise_reproducible);
    ("daq live monitor", `Quick, test_daq_monitor);
    ("sensor hub bus attach", `Quick, test_sensor_hub_attach);
    ("clock sync estimates", `Quick, test_clock_sync_estimates);
    ("clock sync roundtrip", `Quick, test_clock_sync_roundtrip);
    ("model meter exact fit", `Quick, test_model_meter_fit);
    ("model meter noisy fit", `Quick, test_model_meter_noisy_fit);
    ("model meter degenerate input", `Quick, test_model_meter_degenerate);
    ("model meter bus collector", `Quick, test_model_meter_collector);
  ]
