(* Fleet subsystem: seed derivation, mergeable telemetry exports,
   domain isolation, and the byte-determinism contracts (jobs-invariance,
   1-device fleet == direct device run). *)

module Rng = Psbox_engine.Rng
module Tm = Psbox_telemetry.Metrics
module Fleet = Psbox_fleet.Fleet

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng.derive *)

let test_derive_deterministic () =
  Alcotest.(check int)
    "same (seed, i) -> same child"
    (Rng.derive ~seed:42 7) (Rng.derive ~seed:42 7);
  Alcotest.(check bool)
    "distinct indices -> distinct children" true
    (Rng.derive ~seed:42 0 <> Rng.derive ~seed:42 1);
  Alcotest.(check bool)
    "distinct seeds -> distinct children" true
    (Rng.derive ~seed:1 0 <> Rng.derive ~seed:2 0)

let test_derive_order_independent () =
  (* Deriving child i must not depend on whether other children were
     derived first — it is a pure function, not a stream. *)
  let alone = Rng.derive ~seed:9 5 in
  for i = 0 to 4 do ignore (Rng.derive ~seed:9 i : int) done;
  Alcotest.(check int) "derive 5 after deriving 0..4" alone
    (Rng.derive ~seed:9 5)

let test_derive_negative_rejected () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.derive: index must be non-negative")
    (fun () -> ignore (Rng.derive ~seed:0 (-1) : int))

let prop_derive_no_nearby_collisions =
  QCheck.Test.make ~name:"derive: no collisions among first 64 children"
    ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      for i = 0 to 63 do
        let c = Rng.derive ~seed i in
        if Hashtbl.mem seen c then ok := false;
        Hashtbl.replace seen c ()
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Metrics export / merge *)

let fresh f = Tm.with_fresh_store f

let test_export_merge_counters () =
  let a =
    fresh (fun () ->
        Tm.add (Tm.counter "fleet.test.c") 3.0;
        Tm.export ())
  in
  let b =
    fresh (fun () ->
        Tm.add (Tm.counter "fleet.test.c") 4.0;
        Tm.add (Tm.counter "fleet.test.only_b") 1.0;
        Tm.export ())
  in
  let m = Tm.merge a b in
  let value name =
    match List.assoc name m with
    | Tm.Counter_v v -> v
    | _ -> Alcotest.fail (name ^ ": expected a counter")
  in
  Alcotest.(check (float 1e-9)) "counters sum" 7.0 (value "fleet.test.c");
  Alcotest.(check (float 1e-9)) "one-sided key kept" 1.0
    (value "fleet.test.only_b");
  let names = List.map fst m in
  Alcotest.(check (list string)) "merge output stays sorted"
    (List.sort compare names) names

let test_export_merge_gauges () =
  let a =
    fresh (fun () ->
        Tm.set (Tm.gauge "fleet.test.g") 2.5;
        Tm.export ())
  in
  let b =
    fresh (fun () ->
        Tm.set (Tm.gauge "fleet.test.g") 1.25;
        Tm.export ())
  in
  (match List.assoc "fleet.test.g" (Tm.merge a b) with
  | Tm.Gauge_v v -> Alcotest.(check (float 1e-9)) "gauges max" 2.5 v
  | _ -> Alcotest.fail "expected a gauge")

let test_export_merge_histograms () =
  let edges = [| 1.0; 10.0 |] in
  let observing xs =
    fresh (fun () ->
        let h = Tm.histogram "fleet.test.h" ~edges in
        List.iter (Tm.observe h) xs;
        Tm.export ())
  in
  let a = observing [ 0.5; 5.0 ] and b = observing [ 5.0; 50.0 ] in
  match List.assoc "fleet.test.h" (Tm.merge a b) with
  | Tm.Histogram_v { edges = e; counts; sum } ->
      Alcotest.(check (array (float 1e-9))) "edges preserved" edges e;
      Alcotest.(check (array int)) "buckets summed" [| 1; 2; 1 |] counts;
      Alcotest.(check (float 1e-9)) "sums added" 60.5 sum
  | _ -> Alcotest.fail "expected a histogram"

let test_merge_mismatched_edges_rejected () =
  (* The handle registry already rejects re-registering a name with
     different edges, so a mismatch can only arrive from an export built
     elsewhere (another process, a file). Construct the exports directly. *)
  let mk e =
    [ ("fleet.test.bad",
       Tm.Histogram_v { edges = [| e |]; counts = [| 1; 0 |]; sum = 1.0 }) ]
  in
  let a = mk 1.0 and b = mk 2.0 in
  Alcotest.check_raises "mismatched edges"
    (Invalid_argument
       "Telemetry.Metrics.merge: \"fleet.test.bad\" has mismatched \
        histogram edges")
    (fun () -> ignore (Tm.merge a b : Tm.export))

let test_merge_mismatched_kinds_rejected () =
  let a = [ ("fleet.test.kind", Tm.Counter_v 1.0) ]
  and b = [ ("fleet.test.kind", Tm.Gauge_v 1.0) ] in
  Alcotest.check_raises "mismatched kinds"
    (Invalid_argument
       "Telemetry.Metrics.merge: \"fleet.test.kind\" has mismatched kinds")
    (fun () -> ignore (Tm.merge a b : Tm.export))

let test_fresh_store_isolates () =
  (* Work done under with_fresh_store must not leak into the enclosing
     store, and the enclosing store's values must be restored intact. *)
  let c = Tm.counter "fleet.test.outer" in
  Tm.add c 2.0;
  let inner =
    fresh (fun () ->
        Alcotest.(check (option (float 1e-9)))
          "outer metric invisible inside" None (Tm.find "fleet.test.outer");
        Tm.add (Tm.counter "fleet.test.inner") 5.0;
        Tm.export ())
  in
  Alcotest.(check (float 1e-9)) "outer value survives" 2.0
    (Tm.counter_value c);
  Alcotest.(check (option (float 1e-9)))
    "inner metric did not leak" None (Tm.find "fleet.test.inner");
  Alcotest.(check bool) "inner export captured it" true
    (List.mem_assoc "fleet.test.inner" inner)

(* Satellite 2's required test: two concurrent domains bumping the
   same-named counter each see only their own increments. *)
let test_two_domains_do_not_interleave () =
  let barrier = Atomic.make 0 in
  let device n () =
    Tm.with_fresh_store (fun () ->
        let c = Tm.counter "fleet.test.shared_name" in
        Atomic.incr barrier;
        (* Wait until both domains exist and have registered the counter,
           so the increments below genuinely overlap in time. *)
        while Atomic.get barrier < 2 do Domain.cpu_relax () done;
        for _ = 1 to n do Tm.incr c done;
        Tm.counter_value c)
  in
  let d1 = Domain.spawn (device 1000) and d2 = Domain.spawn (device 777) in
  let v1 = Domain.join d1 and v2 = Domain.join d2 in
  Alcotest.(check (float 1e-9)) "domain 1 sees only its own" 1000.0 v1;
  Alcotest.(check (float 1e-9)) "domain 2 sees only its own" 777.0 v2

(* ------------------------------------------------------------------ *)
(* Fleet byte-determinism *)

let device_bytes d = Format.asprintf "%a" Fleet.pp_device d

let fleet_bytes ?jobs ~scenario ~devices ~seed () =
  Fleet.json_string (Fleet.run ?jobs ~scenario ~devices ~seed ())

let test_params_pure () =
  let p = Fleet.params_of ~scenario:"budget" ~fleet_seed:42 3 in
  let p' = Fleet.params_of ~scenario:"budget" ~fleet_seed:42 3 in
  Alcotest.(check bool) "params_of is pure" true (p = p');
  Alcotest.(check bool) "cores in range" true
    (p.Fleet.p_cores = 1 || p.Fleet.p_cores = 2);
  Alcotest.(check bool) "idle scale in range" true
    (p.Fleet.p_idle_scale >= 0.85 && p.Fleet.p_idle_scale <= 1.15)

let test_unknown_scenario_rejected () =
  Alcotest.(check bool) "raises on unknown scenario" true
    (try
       ignore (Fleet.run_device ~scenario:"nope" ~fleet_seed:1 0);
       false
     with Invalid_argument _ -> true)

(* Satellite 3: a 1-device fleet byte-equals the corresponding
   single-System run — the pool and reduction add nothing. *)
let prop_one_device_fleet_equals_direct =
  QCheck.Test.make ~name:"1-device fleet == direct run_device" ~count:4
    QCheck.(int_bound 10_000)
    (fun seed ->
      let direct = Fleet.run_device ~scenario:"budget" ~fleet_seed:seed 0 in
      let via_fleet =
        Fleet.run_devices ~scenario:"budget" ~devices:1 ~seed ()
      in
      Array.length via_fleet = 1
      && String.equal (device_bytes direct) (device_bytes via_fleet.(0)))

(* Satellite 3: jobs 1 and jobs 4 produce byte-identical reports. *)
let prop_jobs_invariant =
  QCheck.Test.make ~name:"fleet JSON: jobs 1 == jobs 4" ~count:3
    QCheck.(int_bound 10_000)
    (fun seed ->
      let seq = fleet_bytes ~jobs:1 ~scenario:"budget" ~devices:5 ~seed ()
      and par = fleet_bytes ~jobs:4 ~scenario:"budget" ~devices:5 ~seed () in
      String.equal seq par)

let test_repeat_runs_byte_equal () =
  let a = fleet_bytes ~jobs:1 ~scenario:"steady" ~devices:3 ~seed:7 ()
  and b = fleet_bytes ~jobs:1 ~scenario:"steady" ~devices:3 ~seed:7 () in
  Alcotest.(check string) "same (scenario, seed, devices) -> same bytes" a b

let test_device_runs_in_any_order () =
  (* Re-simulating one device in isolation reproduces its slice of a
     larger fleet — devices share no state. *)
  let all = Fleet.run_devices ~scenario:"budget" ~devices:4 ~seed:11 () in
  let alone = Fleet.run_device ~scenario:"budget" ~fleet_seed:11 2 in
  Alcotest.(check string) "device 2 alone == device 2 of 4"
    (device_bytes all.(2)) (device_bytes alone)

let test_summary_shape () =
  let s = Fleet.run ~scenario:"mixed" ~devices:4 ~seed:3 () in
  Alcotest.(check int) "device count" 4 s.Fleet.s_devices;
  Alcotest.(check bool) "violation rate in [0,1]" true
    (s.Fleet.s_violation_rate >= 0.0 && s.Fleet.s_violation_rate <= 1.0);
  let share = List.fold_left (fun a (_, f) -> a +. f) 0.0 s.Fleet.s_cause_share in
  Alcotest.(check (float 1e-6)) "cause shares sum to 1" 1.0 share;
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "dist ordered" true
        (d.Fleet.min <= d.Fleet.p50
        && d.Fleet.p50 <= d.Fleet.p95
        && d.Fleet.p95 <= d.Fleet.p99
        && d.Fleet.p99 <= d.Fleet.max))
    s.Fleet.s_energy

let suite =
  [
    Alcotest.test_case "derive: deterministic" `Quick test_derive_deterministic;
    Alcotest.test_case "derive: order-independent" `Quick
      test_derive_order_independent;
    Alcotest.test_case "derive: negative index rejected" `Quick
      test_derive_negative_rejected;
    qcheck prop_derive_no_nearby_collisions;
    Alcotest.test_case "merge: counters sum" `Quick test_export_merge_counters;
    Alcotest.test_case "merge: gauges max" `Quick test_export_merge_gauges;
    Alcotest.test_case "merge: histograms bucket-merge" `Quick
      test_export_merge_histograms;
    Alcotest.test_case "merge: mismatched edges rejected" `Quick
      test_merge_mismatched_edges_rejected;
    Alcotest.test_case "merge: mismatched kinds rejected" `Quick
      test_merge_mismatched_kinds_rejected;
    Alcotest.test_case "with_fresh_store isolates" `Quick
      test_fresh_store_isolates;
    Alcotest.test_case "two domains don't interleave metrics" `Quick
      test_two_domains_do_not_interleave;
    Alcotest.test_case "params_of is pure" `Quick test_params_pure;
    Alcotest.test_case "unknown scenario rejected" `Quick
      test_unknown_scenario_rejected;
    qcheck prop_one_device_fleet_equals_direct;
    qcheck prop_jobs_invariant;
    Alcotest.test_case "repeat runs byte-equal" `Quick
      test_repeat_runs_byte_equal;
    Alcotest.test_case "device isolation across fleet sizes" `Quick
      test_device_runs_in_any_order;
    Alcotest.test_case "summary shape" `Quick test_summary_shape;
  ]
