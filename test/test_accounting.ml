(* Tests for the prior-art accounting heuristics. *)
open Psbox_engine
module Usage = Psbox_accounting.Usage
module Split = Psbox_accounting.Split

let check_float e = Alcotest.(check (float e))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let span app start stop share = { Usage.app; start; stop; share }

let flat_tl w =
  let tl = Timeline.create ~initial:w () in
  tl

let test_segments_sweep () =
  let usages = [ span 1 0 100 0.5; span 2 50 150 0.5 ] in
  let segs = Usage.segments usages ~from:0 ~until:200 in
  check_int "four segments" 4 (List.length segs);
  let s2 = List.nth segs 1 in
  check_int "overlap start" 50 s2.Usage.t0;
  check_int "overlap end" 100 s2.Usage.t1;
  check_int "two sharers" 2 (List.length s2.Usage.shares);
  let s4 = List.nth segs 3 in
  Alcotest.(check (list (pair int (float 0.0)))) "gap empty" [] s4.Usage.shares

let test_segments_clipping () =
  let usages = [ span 1 (-50) 1000 1.0 ] in
  let segs = Usage.segments usages ~from:0 ~until:100 in
  check_int "one segment" 1 (List.length segs);
  let s = List.hd segs in
  check_int "clipped start" 0 s.Usage.t0;
  check_int "clipped end" 100 s.Usage.t1

let test_usage_split_proportional () =
  (* 10 W rail; app1 uses 2x the share of app2 over the same interval *)
  let tl = flat_tl 10.0 in
  let usages = [ span 1 0 Time.(sec 1) 0.5; span 2 0 Time.(sec 1) 0.25 ] in
  let r = Split.usage_split tl usages ~from:0 ~until:(Time.sec 1) in
  check_float 1e-9 "app1 gets 2/3" (10.0 *. 2.0 /. 3.0) (List.assoc 1 r);
  check_float 1e-9 "app2 gets 1/3" (10.0 /. 3.0) (List.assoc 2 r);
  check_float 1e-9 "conserves busy energy" 10.0 (Split.total_attributed r)

let test_usage_split_ignores_idle () =
  let tl = flat_tl 10.0 in
  let usages = [ span 1 0 (Time.ms 500) 1.0 ] in
  let r = Split.usage_split tl usages ~from:0 ~until:(Time.sec 1) in
  check_float 1e-9 "only the busy half attributed" 5.0 (Split.total_attributed r)

let test_even_split () =
  let tl = flat_tl 6.0 in
  let usages = [ span 1 0 Time.(sec 1) 0.9; span 2 0 Time.(sec 1) 0.1 ] in
  let r = Split.even_split tl usages ~from:0 ~until:(Time.sec 1) in
  check_float 1e-9 "even regardless of share" 3.0 (List.assoc 1 r);
  check_float 1e-9 "even regardless of share (2)" 3.0 (List.assoc 2 r)

let test_last_entity_tail () =
  let tl = flat_tl 2.0 in
  (* app1 active 0..0.5s, then nobody: the tail goes to app1 *)
  let usages = [ span 1 0 (Time.ms 500) 1.0 ] in
  let r = Split.last_entity tl usages ~from:0 ~until:(Time.sec 1) in
  check_float 1e-9 "app1 charged busy + tail" 2.0 (List.assoc 1 r)

let test_last_entity_handoff () =
  let tl = flat_tl 2.0 in
  let usages = [ span 1 0 (Time.ms 200) 1.0; span 2 (Time.ms 600) (Time.ms 800) 1.0 ] in
  let r = Split.last_entity tl usages ~from:0 ~until:(Time.sec 1) in
  (* app1: 0..200 busy + 200..600 tail = 1.2 J; app2: 600..800 + 800..1000 = 0.8 J *)
  check_float 1e-9 "app1" 1.2 (List.assoc 1 r);
  check_float 1e-9 "app2" 0.8 (List.assoc 2 r)

let test_shared_baseline () =
  let tl = flat_tl 5.0 in
  let usages = [ span 1 0 Time.(sec 1) 0.75; span 2 0 Time.(sec 1) 0.25 ] in
  let r = Split.shared_baseline tl ~idle_w:1.0 usages ~from:0 ~until:(Time.sec 1) in
  (* baseline 1 J split evenly (0.5 each); dynamic 4 J split 3:1 *)
  check_float 1e-9 "app1" 3.5 (List.assoc 1 r);
  check_float 1e-9 "app2" 1.5 (List.assoc 2 r)

let test_windowed_by_count () =
  let tl = flat_tl 4.0 in
  (* within one 100 ms window, app1 issues 3 requests, app2 one *)
  let usages =
    [
      span 1 0 (Time.ms 10) 1.0;
      span 1 (Time.ms 20) (Time.ms 30) 1.0;
      span 1 (Time.ms 40) (Time.ms 50) 1.0;
      span 2 (Time.ms 60) (Time.ms 70) 1.0;
    ]
  in
  let r = Split.windowed_by_count tl usages ~from:0 ~until:(Time.ms 100) in
  check_float 1e-9 "3/4 by count" 0.3 (List.assoc 1 r);
  check_float 1e-9 "1/4 by count" 0.1 (List.assoc 2 r)

let prop_attribution_bounded =
  QCheck.Test.make ~name:"usage_split never attributes more than rail energy"
    ~count:200
    QCheck.(
      list
        (quad (int_bound 3) (int_bound 1000) (int_bound 1000)
           (float_range 0.05 1.0)))
    (fun raw ->
      let usages =
        List.map
          (fun (app, start, len, share) ->
            span (app + 1) start (start + len + 1) share)
          raw
      in
      let tl = flat_tl 3.0 in
      let hi = 3000 in
      let total_rail = Timeline.integrate tl 0 hi in
      let check f =
        Split.total_attributed (f tl usages ~from:0 ~until:hi)
        <= total_rail +. 1e-9
      in
      check Split.usage_split && check Split.even_split
      && check Split.last_entity
      && check (Split.windowed_by_count ?window:None))

let test_live_split_matches_offline () =
  (* Drive one scenario through both paths: the offline segment sweep over
     the recorded usage trace, and the online bus-fed splitter receiving the
     same share changes as they happen. *)
  let sim = Sim.create () in
  let rail = Psbox_hw.Power_rail.create sim ~name:"dev" ~idle_w:1.0 in
  let lv = Split.live rail ~from:0 in
  let at t f = ignore (Sim.schedule_at sim t f) in
  at (Time.sec 1) (fun () -> Split.live_set_share lv ~at:(Sim.now sim) ~app:1 0.5);
  at (Time.ms 1500) (fun () -> Psbox_hw.Power_rail.set_power rail 3.0);
  at (Time.sec 2) (fun () -> Split.live_set_share lv ~at:(Sim.now sim) ~app:2 1.0);
  at (Time.ms 2500) (fun () -> Psbox_hw.Power_rail.set_power rail 2.0);
  at (Time.sec 3) (fun () -> Split.live_set_share lv ~at:(Sim.now sim) ~app:1 0.0);
  at (Time.sec 4) (fun () -> Split.live_set_share lv ~at:(Sim.now sim) ~app:2 0.0);
  Sim.run_until sim (Time.sec 5);
  let usages =
    [ span 1 (Time.sec 1) (Time.sec 3) 0.5; span 2 (Time.sec 2) (Time.sec 4) 1.0 ]
  in
  let offline =
    Split.usage_split (Psbox_hw.Power_rail.timeline rail) usages ~from:0
      ~until:(Time.sec 5)
  in
  let online = Split.live_read lv ~until:(Time.sec 5) in
  check_int "same apps" (List.length offline) (List.length online);
  List.iter2
    (fun (a, e) (a', e') ->
      check_int "app" a a';
      check_float 1e-9 (Printf.sprintf "app %d energy" a) e e')
    offline online;
  (* the idle [0,1) second is attributed to nobody on both paths *)
  check_bool "idle unattributed" true
    (Split.total_attributed online
    < Psbox_hw.Power_rail.energy_j rail ~from:0 ~until:(Time.sec 5) -. 0.5);
  Split.live_detach lv

let suite =
  [
    ("segments sweep", `Quick, test_segments_sweep);
    ("segments clipping", `Quick, test_segments_clipping);
    ("usage split proportional", `Quick, test_usage_split_proportional);
    ("usage split ignores idle", `Quick, test_usage_split_ignores_idle);
    ("even split", `Quick, test_even_split);
    ("last entity gets the tail", `Quick, test_last_entity_tail);
    ("last entity handoff", `Quick, test_last_entity_handoff);
    ("shared baseline", `Quick, test_shared_baseline);
    ("windowed by count", `Quick, test_windowed_by_count);
    ("live split matches offline", `Quick, test_live_split_matches_offline);
    QCheck_alcotest.to_alcotest prop_attribution_bounded;
  ]
