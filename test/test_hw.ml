(* Tests for the hardware models: rails, DVFS, CPU, accelerator, WiFi. *)
open Psbox_engine
open Psbox_hw

let check_float = Alcotest.(check (float 1e-6))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Power_rail ---------------------------------------------------- *)

let test_rail_energy () =
  let sim = Sim.create () in
  let rail = Power_rail.create sim ~name:"r" ~idle_w:0.5 in
  Sim.run_until sim (Time.sec 1);
  Power_rail.set_power rail 2.0;
  Sim.run_until sim (Time.sec 2);
  Power_rail.set_power rail 0.5;
  Sim.run_until sim (Time.sec 3);
  (* 1s @ 0.5 + 1s @ 2.0 + 1s @ 0.5 *)
  check_float "energy" 3.0 (Power_rail.energy_j rail ~from:0 ~until:(Time.sec 3));
  check_float "now" 0.5 (Power_rail.power rail);
  Alcotest.(check string) "name" "r" (Power_rail.name rail)

(* ---- Dvfs ---------------------------------------------------------- *)

let opps =
  [|
    { Dvfs.freq_mhz = 100; core_w = 0.1; uncore_w = 0.1 };
    { Dvfs.freq_mhz = 200; core_w = 0.2; uncore_w = 0.2 };
    { Dvfs.freq_mhz = 400; core_w = 0.4; uncore_w = 0.4 };
  |]

let test_dvfs_performance_pins_top () =
  let sim = Sim.create () in
  let d =
    Dvfs.create sim ~opps ~governor:Dvfs.Performance
      ~get_util:(fun () -> 0.0)
      ()
  in
  check_int "top opp" 2 (Dvfs.opp_index d)

let test_dvfs_ondemand_ramp_and_decay () =
  let sim = Sim.create () in
  let util = ref 1.0 in
  let changes = ref 0 in
  let d =
    Dvfs.create sim
      ~opps
      ~governor:(Dvfs.Ondemand { up_threshold = 0.8; sampling = Time.ms 10 })
      ~get_util:(fun () -> !util)
      ()
  in
  ignore (Bus.subscribe (Dvfs.changes d) (fun _ -> incr changes));
  check_int "starts lowest" 0 (Dvfs.opp_index d);
  Sim.run_until sim (Time.ms 15);
  check_int "jumps to top under load" 2 (Dvfs.opp_index d);
  util := 0.0;
  Sim.run_until sim (Time.ms 25);
  check_int "decays one step" 1 (Dvfs.opp_index d);
  Sim.run_until sim (Time.ms 35);
  check_int "decays to bottom" 0 (Dvfs.opp_index d);
  Dvfs.stop d

let test_dvfs_freeze () =
  let sim = Sim.create () in
  let d =
    Dvfs.create sim ~opps
      ~governor:(Dvfs.Ondemand { up_threshold = 0.8; sampling = Time.ms 10 })
      ~get_util:(fun () -> 1.0)
      ()
  in
  Dvfs.freeze d;
  Sim.run_until sim (Time.ms 50);
  check_int "frozen at bottom" 0 (Dvfs.opp_index d);
  check_bool "frozen" true (Dvfs.frozen d);
  Dvfs.thaw d;
  Sim.run_until sim (Time.ms 65);
  check_int "ramps after thaw" 2 (Dvfs.opp_index d);
  Dvfs.stop d

let test_dvfs_set_opp () =
  let sim = Sim.create () in
  let d =
    Dvfs.create sim ~opps ~governor:Dvfs.Userspace
      ~get_util:(fun () -> 1.0)
      ()
  in
  Dvfs.set_opp d 1;
  check_int "set" 1 (Dvfs.opp_index d);
  Dvfs.set_opp d 99;
  check_int "clamped" 2 (Dvfs.opp_index d)

(* ---- Cpu ----------------------------------------------------------- *)

let test_cpu_power_model () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~governor:Dvfs.Performance ~cores:2 () in
  let rail = Cpu.rail cpu in
  check_float "idle" 0.3 (Power_rail.power rail);
  Cpu.set_core_busy cpu ~core:0 true;
  (* idle + uncore + 1 core at the top OPP (1.0 core, 1.2 uncore) *)
  check_float "one busy" 2.5 (Power_rail.power rail);
  Cpu.set_core_busy cpu ~core:1 true;
  check_float "two busy: shared uncore not doubled" 3.5 (Power_rail.power rail);
  Cpu.set_core_busy cpu ~core:0 false;
  Cpu.set_core_busy cpu ~core:1 false;
  check_float "idle again" 0.3 (Power_rail.power rail);
  Cpu.stop cpu

let test_cpu_busy_accounting () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~governor:Dvfs.Performance ~cores:2 () in
  Cpu.set_core_busy cpu ~core:0 true;
  Sim.run_until sim (Time.sec 1);
  Cpu.set_core_busy cpu ~core:1 true;
  Sim.run_until sim (Time.sec 2);
  check_float "busy core-seconds" 3.0 (Cpu.busy_core_seconds cpu);
  check_float "active seconds" 2.0 (Cpu.active_seconds cpu);
  check_int "busy cores" 2 (Cpu.busy_cores cpu);
  Cpu.stop cpu

let test_cpu_idempotent_busy () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~governor:Dvfs.Performance ~cores:1 () in
  Cpu.set_core_busy cpu ~core:0 true;
  Sim.run_until sim (Time.sec 1);
  Cpu.set_core_busy cpu ~core:0 true;
  Sim.run_until sim (Time.sec 2);
  check_float "no double counting" 2.0 (Cpu.busy_core_seconds cpu);
  Cpu.stop cpu

(* ---- Accel --------------------------------------------------------- *)

let mk_accel ?autosuspend sim =
  Accel.create sim ~name:"acc" ~units:2 ~governor:Dvfs.Performance
    ~idle_w:0.1 ?autosuspend ()

let test_accel_execution () =
  let sim = Sim.create () in
  let dev = mk_accel sim in
  let done_ids = ref [] in
  Accel.set_on_complete dev (fun c -> done_ids := c.Accel.id :: !done_ids);
  let c1 = Accel.command ~app:1 ~kind:"k" ~work_s:0.010 () in
  Accel.submit dev c1;
  check_int "in flight" 1 (Accel.in_flight dev);
  Sim.run_until sim (Time.ms 20);
  check_int "completed" 1 (List.length !done_ids);
  check_bool "start recorded" true (c1.Accel.started_at <> None);
  check_bool "finish recorded" true (c1.Accel.finished_at <> None);
  Accel.stop dev

let test_accel_overlap_and_queueing () =
  let sim = Sim.create () in
  let dev = mk_accel sim in
  let c1 = Accel.command ~app:1 ~kind:"a" ~work_s:0.010 () in
  let c2 = Accel.command ~app:2 ~kind:"b" ~work_s:0.010 () in
  let c3 = Accel.command ~app:3 ~kind:"c" ~work_s:0.010 () in
  Accel.submit dev c1;
  Accel.submit dev c2;
  Accel.submit dev c3;
  (* 2 units: c1 and c2 run concurrently, c3 waits *)
  check_int "busy units" 2 (Accel.busy_units dev);
  Sim.run_until sim (Time.ms 12);
  check_bool "c1 done" true (c1.Accel.finished_at <> None);
  check_bool "c3 started after a unit freed" true (c3.Accel.started_at <> None);
  Sim.run_until sim (Time.ms 30);
  check_bool "all done" true (c3.Accel.finished_at <> None);
  (* c1 and c2 overlapped *)
  let s2 = Option.get c2.Accel.started_at and f1 = Option.get c1.Accel.finished_at in
  check_bool "overlap" true (s2 < f1);
  Accel.stop dev

let test_accel_power () =
  let sim = Sim.create () in
  let dev = mk_accel sim in
  let rail = Accel.rail dev in
  check_float "idle" 0.1 (Power_rail.power rail);
  let c = Accel.command ~app:1 ~kind:"k" ~work_s:0.010 ~intensity:2.0 () in
  Accel.submit dev c;
  (* idle + uncore(top 0.18) + 1 unit x intensity 2.0 x core 0.40 *)
  check_float "active" (0.1 +. 0.18 +. 0.8) (Power_rail.power rail);
  Sim.run_until sim (Time.ms 20);
  check_float "idle after" 0.1 (Power_rail.power rail);
  Accel.stop dev

let test_accel_autosuspend_and_resume () =
  let sim = Sim.create () in
  let dev = mk_accel ~autosuspend:(Time.ms 50) sim in
  let c = Accel.command ~app:1 ~kind:"k" ~work_s:0.001 () in
  Accel.submit dev c;
  Sim.run_until sim (Time.ms 10);
  check_bool "not suspended yet" false (Accel.suspended dev);
  Sim.run_until sim (Time.ms 100);
  check_bool "suspended after idle" true (Accel.suspended dev);
  check_bool "suspend power below idle"
    true
    (Power_rail.power (Accel.rail dev) < 0.1);
  let c2 = Accel.command ~app:1 ~kind:"k" ~work_s:0.001 () in
  Accel.submit dev c2;
  check_bool "resumes" false (Accel.suspended dev);
  Sim.run_until sim (Time.ms 200);
  check_bool "c2 completed after resume delay" true (c2.Accel.finished_at <> None);
  (* resume delay of 5 ms must show in the start time *)
  check_bool "resume delay paid" true
    (Option.get c2.Accel.started_at - c2.Accel.submitted_at >= Time.ms 5);
  Accel.stop dev

let test_accel_freq_scales_duration () =
  let sim = Sim.create () in
  let dev =
    Accel.create sim ~name:"slow" ~units:1 ~governor:Dvfs.Userspace ~idle_w:0.1 ()
  in
  (* Userspace governor starts at the lowest OPP: 200 MHz vs 532 top *)
  let c = Accel.command ~app:1 ~kind:"k" ~work_s:0.010 () in
  Accel.submit dev c;
  Sim.run_until sim (Time.ms 80);
  let dur = Option.get c.Accel.finished_at - Option.get c.Accel.started_at in
  (* 10 ms of work at 200/532 speed ~ 26.6 ms *)
  check_bool "slowed by low clock" true (dur > Time.ms 20 && dur < Time.ms 35);
  Accel.stop dev

let test_accel_busy_unit_seconds () =
  let sim = Sim.create () in
  let dev = mk_accel sim in
  let c = Accel.command ~app:1 ~kind:"k" ~work_s:0.010 ~units:2 () in
  Accel.submit dev c;
  Sim.run_until sim (Time.ms 50);
  check_float "unit-seconds" 0.020 (Accel.busy_unit_seconds dev);
  check_float "active seconds" 0.010 (Accel.active_seconds dev);
  Accel.stop dev

(* ---- Wifi ---------------------------------------------------------- *)

let test_wifi_transmit_and_tail () =
  let sim = Sim.create () in
  let nic = Wifi.create sim ~tail:(Time.ms 80) () in
  let rail = Wifi.rail nic in
  check_float "power-save" 0.03 (Power_rail.power rail);
  let sent = ref 0 in
  Wifi.set_on_sent nic (fun _ -> incr sent);
  Wifi.transmit nic (Wifi.packet ~app:1 ~socket:1 ~bytes:10_000 ());
  check_bool "awake while tx" true (Wifi.awake nic);
  check_bool "tx power" true (Power_rail.power rail > 0.5);
  Sim.run_until sim (Time.ms 10);
  check_int "sent" 1 !sent;
  check_bool "still awake (tail)" true (Wifi.awake nic);
  check_float "awake idle" 0.25 (Power_rail.power rail);
  Sim.run_until sim (Time.ms 200);
  check_bool "asleep after tail" false (Wifi.awake nic);
  check_float "power-save again" 0.03 (Power_rail.power rail)

let test_wifi_serializes () =
  let sim = Sim.create () in
  let nic = Wifi.create sim () in
  let p1 = Wifi.packet ~app:1 ~socket:1 ~bytes:50_000 () in
  let p2 = Wifi.packet ~app:2 ~socket:2 ~bytes:50_000 () in
  Wifi.transmit nic p1;
  Wifi.transmit nic p2;
  Sim.run_until sim (Time.sec 1);
  let f1 = Option.get p1.Wifi.air_end and s2 = Option.get p2.Wifi.air_start in
  check_bool "no overlap on air" true (s2 >= f1)

let test_wifi_power_state_roundtrip () =
  let sim = Sim.create () in
  let nic = Wifi.create sim () in
  Wifi.set_mode_adapt nic false;
  Wifi.set_tx_level nic 0;
  let st = Wifi.power_state nic in
  Wifi.set_tx_level nic 2;
  Wifi.restore_power_state nic st;
  check_int "level restored" 0 (Wifi.tx_level nic);
  check_bool "asleep restored" false (Wifi.awake nic);
  ignore sim

let test_wifi_mode_adaptation () =
  let sim = Sim.create () in
  let nic = Wifi.create sim () in
  (* sustained traffic must raise the mode; silence must drop it *)
  let rec burst n =
    if n > 0 then
      Wifi.transmit nic (Wifi.packet ~app:1 ~socket:1 ~bytes:60_000 ())
    |> fun () -> burst (n - 1)
  in
  burst 30;
  Sim.run_until sim (Time.ms 400);
  check_int "hot mode under load" 2 (Wifi.tx_level nic);
  Sim.run_until sim (Time.sec 2);
  Wifi.transmit nic (Wifi.packet ~app:1 ~socket:1 ~bytes:100 ());
  Sim.run_until sim (Time.sec 3);
  check_int "cool mode after silence" 0 (Wifi.tx_level nic)

let test_wifi_mac_switch_resets_assoc () =
  let sim = Sim.create () in
  let nic = Wifi.create sim ~virtual_macs:false () in
  Wifi.switch_mac nic ~mac:1;
  check_bool "lost association" false (Wifi.associated nic);
  let p = Wifi.packet ~app:1 ~socket:1 ~bytes:1000 () in
  Wifi.transmit nic p;
  Sim.run_until sim (Time.ms 10);
  check_bool "stalled while reassociating" true (p.Wifi.air_start = None);
  Sim.run_until sim (Time.ms 300);
  check_bool "sent after reassociation" true (p.Wifi.air_end <> None)

let test_wifi_virtual_mac_switch_free () =
  let sim = Sim.create () in
  let nic = Wifi.create sim ~virtual_macs:true () in
  Wifi.switch_mac nic ~mac:1;
  check_bool "stays associated" true (Wifi.associated nic);
  ignore sim

let suite =
  [
    ("rail energy", `Quick, test_rail_energy);
    ("dvfs performance pins top", `Quick, test_dvfs_performance_pins_top);
    ("dvfs ondemand ramp/decay", `Quick, test_dvfs_ondemand_ramp_and_decay);
    ("dvfs freeze/thaw", `Quick, test_dvfs_freeze);
    ("dvfs set_opp clamps", `Quick, test_dvfs_set_opp);
    ("cpu power model", `Quick, test_cpu_power_model);
    ("cpu busy accounting", `Quick, test_cpu_busy_accounting);
    ("cpu idempotent busy", `Quick, test_cpu_idempotent_busy);
    ("accel executes commands", `Quick, test_accel_execution);
    ("accel overlap and queueing", `Quick, test_accel_overlap_and_queueing);
    ("accel power", `Quick, test_accel_power);
    ("accel autosuspend/resume", `Quick, test_accel_autosuspend_and_resume);
    ("accel frequency scales duration", `Quick, test_accel_freq_scales_duration);
    ("accel busy unit-seconds", `Quick, test_accel_busy_unit_seconds);
    ("wifi transmit and tail", `Quick, test_wifi_transmit_and_tail);
    ("wifi serializes the air", `Quick, test_wifi_serializes);
    ("wifi power-state roundtrip", `Quick, test_wifi_power_state_roundtrip);
    ("wifi mode adaptation", `Quick, test_wifi_mode_adaptation);
    ("wifi mac switch resets association", `Quick, test_wifi_mac_switch_resets_assoc);
    ("wifi virtual mac switch is free", `Quick, test_wifi_virtual_mac_switch_free);
  ]
