(* Tests for the counter-driven power models: least-squares recovery of
   known coefficients, held-out model-check error and its monotone response
   to injected perturbation, drift-alarm latching (once per excursion),
   deterministic calibration search, and model-priced admission. *)
open Psbox_engine
module System = Psbox_kernel.System
module W = Psbox_workloads.Workload
module Budget = Psbox_budget.Budget
module Model = Psbox_model.Model
module Fit = Model.Fit
module Tm = Psbox_telemetry.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* qcheck: fitting synthetic counter traces generated from a known linear
   model recovers the coefficients within tolerance.                     *)

let gen_synthetic =
  QCheck.Gen.(
    let coeff = float_range 0.05 2.0 in
    let* dim = 2 -- 6 in
    let* coeffs = array_repeat dim coeff in
    (* windows: dt fixed, each residency a random fraction of the window *)
    let* rows =
      list_repeat 30
        (array_repeat (dim - 1) (float_range 0.0 0.05))
    in
    return (coeffs, rows))

let arbitrary_synthetic =
  QCheck.make
    ~print:(fun (coeffs, rows) ->
      Printf.sprintf "dim=%d rows=%d" (Array.length coeffs) (List.length rows))
    gen_synthetic

let prop_lstsq_recovers =
  QCheck.Test.make ~name:"lstsq recovers known linear model" ~count:50
    arbitrary_synthetic (fun (coeffs, rows) ->
      let dim = Array.length coeffs in
      let obs =
        List.map
          (fun resid ->
            let f = Array.make dim 0.05 in
            Array.blit resid 0 f 1 (dim - 1);
            let y = ref 0.0 in
            Array.iteri (fun i v -> y := !y +. (coeffs.(i) *. v)) f;
            (f, !y))
          rows
      in
      let fitted = Fit.lstsq obs in
      Array.for_all2
        (fun c c' -> Float.abs (c -. c') < 1e-4)
        coeffs fitted)

(* An all-zero feature column (an OPP never visited) must not blow up the
   solve: its coefficient pins to ~0 and the fit stays exact elsewhere. *)
let test_lstsq_zero_column () =
  let rows =
    List.init 20 (fun i ->
        let x = float_of_int (i + 1) /. 20.0 in
        ([| 0.05; x; 0.0 |], (0.3 *. 0.05) +. (1.5 *. x)))
  in
  let c = Fit.lstsq rows in
  check_bool "idle coeff" true (Float.abs (c.(0) -. 0.3) < 1e-3);
  check_bool "active coeff" true (Float.abs (c.(1) -. 1.5) < 1e-3);
  check_bool "zero column pinned" true (Float.abs c.(2) < 1e-3)

(* ------------------------------------------------------------------ *)
(* model-check: held-out accuracy, and error monotone in perturbation    *)

let run_check ?(perturb_pct = 0.0) () =
  Model.Check.run ~window:(Time.ms 50) ~windows:20 ~perturb_pct ()

let test_check_validates_within_tolerance () =
  let r = run_check () in
  check_bool "three rails modelled" true
    (List.length r.Model.Check.c_rails = 3);
  check_bool
    (Printf.sprintf "held-out MAPE %.4f%% within 5%%"
       r.Model.Check.c_max_mape_pct)
    true
    (r.Model.Check.c_max_mape_pct <= 5.0);
  check_int "no drift alarm on a faithful model" 0
    r.Model.Check.c_drift_alarms

let test_check_error_monotone_in_perturbation () =
  let mape p = (run_check ~perturb_pct:p ()).Model.Check.c_max_mape_pct in
  let e0 = mape 0.0 and e1 = mape 2.0 and e2 = mape 8.0 and e3 = mape 20.0 in
  check_bool
    (Printf.sprintf "monotone: %.3f < %.3f < %.3f < %.3f" e0 e1 e2 e3)
    true
    (e0 < e1 && e1 < e2 && e2 < e3)

(* A uniformly perturbed model keeps every rail's windowed MAPE above the
   threshold for the whole run: the latch must fire exactly once per rail
   (one excursion each), not once per window. *)
let test_drift_alarm_once_per_excursion () =
  let r = run_check ~perturb_pct:10.0 () in
  check_int "one alarm per rail-excursion" 3 r.Model.Check.c_drift_alarms

(* Driving the MAPE over the threshold twice, with a clean recovery in
   between, must raise exactly two alarms: the latch re-arms only after
   the error falls below the hysteresis floor. *)
let test_drift_alarm_rearms_after_recovery () =
  let sys = System.create ~cores:1 () in
  let a = System.new_app sys ~name:"a" in
  ignore
    (W.spawn sys ~app:a ~name:"spin"
       (W.forever (fun () -> [ W.Compute (Time.ms 2) ])));
  System.start sys;
  let rc = Model.Recorder.start sys ~window:(Time.ms 10) () in
  System.run_for sys (Time.ms 300);
  let traces = Model.Recorder.stop rc in
  let good = List.map (Fit.fit ~kind:Fit.Per_opp) traces in
  (* the estimator's own windowed MAPE is what we perturb: swap the rail
     model under it by scaling predictions via a wrapper model list *)
  let bad = List.map (fun m -> Fit.perturb m 25.0) good in
  let run_with models span =
    let est =
      Model.Estimator.start sys ~models ~window:(Time.ms 10) ~mape_window:4
        ~drift_threshold_pct:5.0 ()
    in
    System.run_for sys span;
    Model.Estimator.stop est;
    Model.Estimator.alarms est
  in
  (* first excursion: bad model, MAPE ~25% for many windows -> 1 alarm *)
  let a1 = run_with bad (Time.ms 300) in
  check_int "first excursion latches once" 1 a1;
  (* recovery: good model -> 0 alarms *)
  let a2 = run_with good (Time.ms 300) in
  check_int "faithful model raises none" 0 a2;
  (* second excursion with a fresh estimator fires again *)
  let a3 = run_with bad (Time.ms 300) in
  check_int "second excursion latches once" 1 a3;
  System.shutdown sys

(* ------------------------------------------------------------------ *)
(* Calibration search                                                    *)

let test_search_recovers_quadratic_minimum () =
  let dims =
    [
      { Model.Calibrate.d_name = "x"; d_lo = 0.0; d_hi = 2.0 };
      { Model.Calibrate.d_name = "y"; d_lo = 0.0; d_hi = 2.0 };
    ]
  in
  let objective p =
    ((p.(0) -. 0.3) ** 2.0) +. ((p.(1) -. 1.2) ** 2.0)
  in
  let best, err = Model.Calibrate.search ~seed:7 ~dims ~objective () in
  check_bool
    (Printf.sprintf "minimum found (%.3f, %.3f) err %.5f" best.(0) best.(1) err)
    true
    (Float.abs (best.(0) -. 0.3) < 0.05 && Float.abs (best.(1) -. 1.2) < 0.05);
  (* pure in the seed: same inputs, same output *)
  let best', err' = Model.Calibrate.search ~seed:7 ~dims ~objective () in
  check_bool "deterministic" true (best = best' && err = err');
  let best'', _ = Model.Calibrate.search ~seed:8 ~dims ~objective () in
  check_bool "seed-sensitive" true (best <> best'')

(* Calibrating hardware parameters against a recorded reference trace:
   deterministic in the seed, and the searched parameters beat the
   mid-box starting point by a wide margin. *)
let test_calibrate_trace_improves_on_center () =
  let sys = System.create ~cores:1 () in
  let a = System.new_app sys ~name:"a" in
  ignore
    (W.spawn sys ~app:a ~name:"mix"
       (W.forever (fun () -> [ W.Compute (Time.ms 2); W.Sleep (Time.ms 3) ])));
  System.start sys;
  let rc = Model.Recorder.start sys ~window:(Time.ms 20) () in
  System.run_for sys (Time.sec 1);
  let traces = Model.Recorder.stop rc in
  System.shutdown sys;
  let trace = List.hd traces in
  let cal, err = Model.Calibrate.calibrate_trace ~seed:5 trace in
  let center =
    {
      Fit.f_rail = trace.Model.Trace.tr_rail;
      f_kind = Fit.Per_opp;
      f_names = trace.Model.Trace.tr_names;
      f_coeffs =
        Array.map
          (fun n -> if n = "dt_s" then 1.5 else 2.0)
          trace.Model.Trace.tr_names;
    }
  in
  let center_rmse = (Fit.validate center trace).Fit.e_rmse_w in
  check_bool
    (Printf.sprintf "calibrated RMSE %.4f W beats center %.4f W" err
       center_rmse)
    true
    (err < center_rmse /. 4.0);
  let cal', err' = Model.Calibrate.calibrate_trace ~seed:5 trace in
  check_bool "deterministic in the seed" true
    (cal.Fit.f_coeffs = cal'.Fit.f_coeffs && err = err')

(* ------------------------------------------------------------------ *)
(* Model-priced admission                                                *)

let test_admission_model_pricing () =
  let sys = System.create () in
  let ctl = Budget.create sys ~machine_budget_w:3.0 () in
  Budget.set_admission_estimate ctl
    (Some (fun app -> if app = 1 then Some 0.5 else None));
  check_bool "admitted" true
    (Budget.admit ctl ~app:1 ~watts:2.0 () = Budget.Admitted);
  (match Budget.reservation ctl ~app:1 with
  | Some (d, e) ->
      check_bool "declared stays the contract" true (d = 2.0);
      check_bool "charged the modeled draw" true (e = 0.5)
  | None -> Alcotest.fail "no reservation for app 1");
  (* an oracle with no history for the app falls back to declared watts *)
  check_bool "fallback admitted" true
    (Budget.admit ctl ~app:2 ~watts:2.0 () = Budget.Admitted);
  (match Budget.reservation ctl ~app:2 with
  | Some (d, e) -> check_bool "charged as declared" true (d = 2.0 && e = 2.0)
  | None -> Alcotest.fail "no reservation for app 2");
  (* 2.5 W of 3.0 effectively reserved: 1.0 W declared would not fit, but
     its 0.4 W modeled draw does *)
  Budget.set_admission_estimate ctl
    (Some (fun app -> if app = 3 then Some 0.4 else None));
  check_bool "modeled pricing admits what declared pricing would refuse" true
    (Budget.admit ctl ~app:3 ~watts:1.0 () = Budget.Admitted);
  let overdecl =
    Tm.gauge_value (Tm.gauge "budget.admission.overdeclared_w")
  in
  check_bool
    (Printf.sprintf "overdeclared gauge %.2f W" overdecl)
    true
    (Float.abs (overdecl -. 2.1) < 1e-9);
  Budget.stop ctl;
  System.shutdown sys

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lstsq_recovers;
    Alcotest.test_case "lstsq pins an all-zero column to 0" `Quick
      test_lstsq_zero_column;
    Alcotest.test_case "model-check: held-out MAPE within 5%" `Slow
      test_check_validates_within_tolerance;
    Alcotest.test_case "model-check: error monotone in perturbation" `Slow
      test_check_error_monotone_in_perturbation;
    Alcotest.test_case "drift alarm fires once per excursion" `Slow
      test_drift_alarm_once_per_excursion;
    Alcotest.test_case "drift latch re-arms after recovery" `Quick
      test_drift_alarm_rearms_after_recovery;
    Alcotest.test_case "calibration search finds the minimum, deterministically"
      `Quick test_search_recovers_quadratic_minimum;
    Alcotest.test_case "calibrate_trace beats the mid-box start" `Slow
      test_calibrate_trace_improves_on_center;
    Alcotest.test_case "admission priced against the modeled draw" `Quick
      test_admission_model_pricing;
  ]
