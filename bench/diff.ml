(* Compare the two most recent BENCH_<date>.json snapshots in the current
   directory and fail (exit 1) if any benchmark regressed by more than 20%.
   The failure message names each regressed benchmark and by how much.

   The snapshot format is the fixed, line-oriented JSON that
   [bench/main.ml --json] writes, so a scanf-grade parser is enough — no
   JSON dependency. Lines without an "ns_per_run" key (e.g. the
   "event_counts" rows) are skipped, and a metric present in only one
   snapshot is reported as NEW/GONE rather than failing the diff. With
   fewer than two snapshots there is nothing to compare and the tool exits
   0, so it can sit on the smoke path from the first commit.

   Run with:  make bench-diff  (or  dune exec bench/diff.exe) *)

let threshold_pct = 20.0

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

(* ...{ "name": "<name>", "<key>": <float> }... *)
let parse_kv line ~key =
  match find_sub line "\"name\": \"" 0 with
  | None -> None
  | Some i -> (
      let start = i + 9 in
      let sep = "\", \"" ^ key ^ "\": " in
      match find_sub line sep start with
      | None -> None
      | Some j ->
          let name = String.sub line start (j - start) in
          let vstart = j + String.length sep in
          let rest = String.sub line vstart (String.length line - vstart) in
          let num =
            String.to_seq rest
            |> Seq.take_while (fun c ->
                   (c >= '0' && c <= '9') || c = '.' || c = '-' || c = 'e')
            |> String.of_seq
          in
          (try Some (name, float_of_string num) with Failure _ -> None))

let parse_line line = parse_kv line ~key:"ns_per_run"

(* events_per_sec rows: simulated-event throughput, compared
   informationally (throughput tracks how much work the scheduler does per
   run — a shift flags an architecture change, not a perf regression) *)
let parse_eps_line line = parse_kv line ~key:"events_per_sec"

(* allocations rows: minor words allocated per simulated event — gated
   like ns_per_run, because GC pressure is a regression dimension of its
   own (an allocation creep shows up as tail latency long before it moves
   the mean). Benches that fire no events carry 0 and stay 0. *)
let parse_alloc_line line = parse_kv line ~key:"minor_words_per_event"

(* below this absolute growth (minor words per event) a percentage is GC
   accounting jitter, not a regression — e.g. 0.1 -> 0.2 w/event is +100%
   but meaningless *)
let alloc_floor_words = 1.0

(* audit.* rows of the event_counts section: attributed joules, compared
   informationally (energy shifts are workload changes, not perf
   regressions, so they never fail the diff) *)
let parse_audit_line line =
  match parse_kv line ~key:"count" with
  | Some (name, _) as row
    when String.length name >= 6 && String.sub name 0 6 = "audit." ->
      row
  | _ -> None

(* model.* rows of the event_counts section: counter-model estimates and
   residuals (watt gauges, MAPE percentages, drift alarms), compared
   informationally — model error drifting across snapshots flags a
   hardware-model or estimator change, not a perf regression *)
let parse_model_line line =
  match parse_kv line ~key:"count" with
  | Some (name, _) as row
    when String.length name >= 6 && String.sub name 0 6 = "model." ->
      row
  | _ -> None

(* health.* rows of the event_counts section: incident-lifecycle counts
   (evaluations, pending/firing/resolved incidents, responder actions),
   compared informationally — an incident-count shift flags a rule or
   threshold change, not a perf regression *)
let parse_health_line line =
  match parse_kv line ~key:"count" with
  | Some (name, _) as row
    when String.length name >= 7 && String.sub name 0 7 = "health." ->
      row
  | _ -> None

let load_with parse path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       match parse (input_line ic) with
       | Some row -> rows := row :: !rows
       | None -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

let load path = load_with parse_line path

let () =
  let snapshots =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare (* BENCH_<yyyy-mm-dd> sorts chronologically *)
  in
  match List.rev snapshots with
  | newer :: older :: _ ->
      let base = load older and cur = load newer in
      Printf.printf "bench-diff: %s -> %s (threshold %.0f%%)\n" older newer
        threshold_pct;
      let regressions = ref [] and compared = ref 0 in
      List.iter
        (fun (name, ns) ->
          match List.assoc_opt name base with
          | None -> Printf.printf "  NEW    %-52s %12.0f ns\n" name ns
          | Some ns0 ->
              incr compared;
              let pct =
                if ns0 > 0.0 then (ns -. ns0) /. ns0 *. 100.0 else 0.0
              in
              let tag =
                if pct > threshold_pct then begin
                  regressions := (name, pct) :: !regressions;
                  "REGRESS"
                end
                else if pct < -.threshold_pct then "IMPROVE"
                else "ok"
              in
              Printf.printf "  %-8s%-52s %12.0f ns  %+6.1f%%\n" tag name ns pct)
        cur;
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name cur) then
            Printf.printf "  GONE   %s\n" name)
        base;
      (let alloc_base = load_with parse_alloc_line older
       and alloc_cur = load_with parse_alloc_line newer in
       if alloc_cur <> [] then begin
         Printf.printf "allocation per simulated event (gated):\n";
         List.iter
           (fun (name, w) ->
             match List.assoc_opt name alloc_base with
             | None ->
                 Printf.printf "  NEW    %-52s %12.2f w/ev\n" name w
             | Some w0 ->
                 incr compared;
                 let pct =
                   if w0 > 0.0 then (w -. w0) /. w0 *. 100.0
                   else if w > 0.0 then 100.0
                   else 0.0
                 in
                 let tag =
                   if pct > threshold_pct && w -. w0 > alloc_floor_words
                   then begin
                     regressions := (name ^ " [alloc]", pct) :: !regressions;
                     "REGRESS"
                   end
                   else if pct < -.threshold_pct then "IMPROVE"
                   else "ok"
                 in
                 Printf.printf "  %-8s%-52s %12.2f w/ev  %+6.1f%%\n" tag name
                   w pct)
           alloc_cur
       end);
      (let eps_base = load_with parse_eps_line older
       and eps_cur = load_with parse_eps_line newer in
       if eps_cur <> [] then begin
         Printf.printf "simulated-event throughput (informational):\n";
         List.iter
           (fun (name, v) ->
             match List.assoc_opt name eps_base with
             | None -> Printf.printf "  NEW    %-52s %12.0f ev/s\n" name v
             | Some v0 ->
                 let ratio = if v0 > 0.0 then v /. v0 else 0.0 in
                 Printf.printf "  %-8s%-52s %12.0f ev/s  %5.2fx\n"
                   (if ratio > 1.05 then "faster"
                    else if ratio < 0.95 then "slower"
                    else "ok")
                   name v ratio)
           eps_cur
       end);
      (let audit_base = load_with parse_audit_line older
       and audit_cur = load_with parse_audit_line newer in
       if audit_cur <> [] then begin
         Printf.printf "audit totals (informational):\n";
         List.iter
           (fun (name, j) ->
             match List.assoc_opt name audit_base with
             | None -> Printf.printf "  NEW    %-52s %14.3f J\n" name j
             | Some j0 ->
                 let pct = if j0 > 0.0 then (j -. j0) /. j0 *. 100.0 else 0.0 in
                 Printf.printf "  %-8s%-52s %14.3f J  %+6.1f%%\n"
                   (if Float.abs pct > 1.0 then "shift" else "ok")
                   name j pct)
           audit_cur
       end);
      (let model_base = load_with parse_model_line older
       and model_cur = load_with parse_model_line newer in
       if model_cur <> [] then begin
         Printf.printf "counter-model estimates (informational):\n";
         List.iter
           (fun (name, v) ->
             match List.assoc_opt name model_base with
             | None -> Printf.printf "  NEW    %-52s %14.6f\n" name v
             | Some v0 ->
                 let delta = v -. v0 in
                 Printf.printf "  %-8s%-52s %14.6f  %+10.6f\n"
                   (if Float.abs delta > 1e-6 then "shift" else "ok")
                   name v delta)
           model_cur
       end);
      (let health_base = load_with parse_health_line older
       and health_cur = load_with parse_health_line newer in
       if health_cur <> [] then begin
         Printf.printf "health incident counts (informational):\n";
         List.iter
           (fun (name, v) ->
             match List.assoc_opt name health_base with
             | None -> Printf.printf "  NEW    %-52s %14.0f\n" name v
             | Some v0 ->
                 let delta = v -. v0 in
                 Printf.printf "  %-8s%-52s %14.0f  %+6.0f\n"
                   (if Float.abs delta > 0.5 then "shift" else "ok")
                   name v delta)
           health_cur
       end);
      (match List.rev !regressions with
      | [] ->
          Printf.printf "bench-diff: %d benchmarks within threshold\n" !compared
      | rs ->
          Printf.printf "bench-diff: %d of %d benchmarks regressed >%.0f%%:\n"
            (List.length rs) !compared threshold_pct;
          List.iter
            (fun (name, pct) -> Printf.printf "  - %s: %+.1f%%\n" name pct)
            rs;
          exit 1)
  | _ ->
      print_endline
        "bench-diff: fewer than two BENCH_*.json snapshots, nothing to compare"
