(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation on
   the simulator (the same registry the CLI uses) and prints them in paper
   order — workload generation, parameter choice, baselines and rendering
   all live in Psbox_experiments.

   Part 2 microbenchmarks the kernel-path operations behind those results
   with Bechamel: one Test.make per table/figure (a reduced cell of that
   experiment) plus the core primitives (scheduler second, balloon cycle,
   temporal-balloon cycle, DTW, exact energy integration, accounting
   sweep). *)

open Bechamel
open Toolkit
module Registry = Psbox_experiments.Registry
module Report = Psbox_experiments.Report
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload
module T = Psbox_engine.Time
module Telemetry = Psbox_telemetry
module Audit = Psbox_audit.Audit
module Fleet = Psbox_fleet.Fleet
module Model = Psbox_model.Model

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every table and figure                            *)

let regenerate () =
  print_endline "=====================================================";
  print_endline " psbox reproduction: all paper tables and figures";
  print_endline "=====================================================";
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      let r = e.Registry.e_run () in
      Report.print r;
      Printf.printf "  (%s regenerated in %.2fs wall)\n\n%!" e.Registry.e_id
        (Unix.gettimeofday () -. t0))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks                                     *)

(* One simulated scheduler second: 2 CPU-bound apps on 2 cores. *)
let bench_sched_second () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  let spin app core =
    ignore
      (W.spawn sys ~app ~name:"spin" ~core
         (W.forever (fun () -> [ W.Compute (T.ms 5) ])))
  in
  spin a 0;
  spin b 1;
  System.start sys;
  System.run_for sys (T.sec 1);
  System.shutdown sys

(* One spatial-balloon cycle (fig6/fig7/fig8 inner loop). *)
let bench_balloon_cycle () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  List.iter
    (fun (app, core) ->
      ignore
        (W.spawn sys ~app ~name:"w" ~core
           (W.forever (fun () -> [ W.Compute (T.ms 5) ]))))
    [ (a, 0); (a, 1); (b, 0); (b, 1) ];
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.enter box;
  System.run_for sys (T.ms 100);
  ignore (Psbox.read_mj box);
  Psbox.leave box;
  System.shutdown sys

(* One temporal-balloon cycle on the GPU (fig6 row 3 / contention). *)
let bench_temporal_balloon () =
  let sys = System.create ~cores:2 ~gpu:true () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  List.iter
    (fun app ->
      ignore
        (W.spawn sys ~app ~name:"g" ~core:0
           (W.forever
              (fun () -> [ W.Gpu_batch [ W.spec ~kind:"k" ~work_s:0.002 () ] ]))))
    [ a; b ];
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Gpu ] in
  Psbox.enter box;
  System.run_for sys (T.ms 100);
  ignore (Psbox.read_mj box);
  Psbox.leave box;
  System.shutdown sys

(* One NIC balloon cycle (fig6 row 4 / fig8d). *)
let bench_nic_balloon () =
  let sys = System.bbb () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  List.iter
    (fun app ->
      ignore
        (W.spawn sys ~app ~name:"n" ~core:0
           (W.forever (fun () -> [ W.Send { socket = 1; bytes = 8_000 } ]))))
    [ a; b ];
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Wifi ] in
  Psbox.enter box;
  System.run_for sys (T.ms 100);
  ignore (Psbox.read_mj box);
  Psbox.leave box;
  System.shutdown sys

(* DTW on 140-point traces (sidechan's classifier inner loop). *)
let dtw_a = Array.init 140 (fun i -> sin (0.1 *. float_of_int i))
let dtw_b = Array.init 140 (fun i -> sin (0.12 *. float_of_int i) +. 0.1)
let bench_dtw () = ignore (Psbox_sidechannel.Dtw.distance ~band:80 dtw_a dtw_b)

(* Exact energy integration over a 10k-breakpoint rail (every meter read). *)
let big_timeline =
  let tl = Psbox_engine.Timeline.create ~initial:1.0 () in
  for i = 1 to 10_000 do
    Psbox_engine.Timeline.set tl (i * 1000) (float_of_int (i land 7))
  done;
  tl

let bench_integrate () =
  ignore (Psbox_engine.Timeline.integrate big_timeline 0 10_000_000)

(* Accounting sweep over 2k usage spans (fig6 'prior approach' columns). *)
let usages =
  List.init 2_000 (fun i ->
      {
        Psbox_accounting.Usage.app = i mod 3;
        start = i * 5_000;
        stop = (i * 5_000) + 4_000;
        share = 0.5;
      })

let bench_usage_split () =
  ignore
    (Psbox_accounting.Split.usage_split big_timeline usages ~from:0
       ~until:10_000_000)

(* Budget-capped co-run: a tight cap forces the controller to throttle the
   app's GPU queue and NIC queue, exercising budget.ticks and the accel/net
   gate-wakeup paths that a free run never takes (their counters read 0 in
   snapshots otherwise). The GPU frames go in async (submission outruns the
   throttled gate, so gate wakeups actually fire) and the traffic is
   request/response (the RX path delivers bytes back). The second half of
   the slice runs the counter-model estimator and prices an admission
   against it, so the model.* gauges and the overdeclared_w cross-check
   ride along in the snapshot. *)
let bench_budget_capped () =
  let sys = System.create ~cores:2 ~gpu:true ~wifi:true () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  ignore
    (W.spawn sys ~app:a ~name:"g" ~core:0
       (W.forever
          (fun () ->
            [
              W.Gpu_async (W.spec ~kind:"k" ~work_s:0.002 ());
              W.Request
                { socket = 1; tx_bytes = 3_000; rx_bytes = 12_000;
                  rtt = T.ms 2 };
            ])));
  ignore
    (W.spawn sys ~app:b ~name:"c" ~core:1
       (W.forever (fun () -> [ W.Compute (T.ms 5) ])));
  System.start sys;
  let ctl = Psbox_budget.Budget.create sys () in
  Psbox_budget.Budget.set_cap ctl ~app:a.System.app_id ~watts:0.05;
  (* let the control loop converge before fitting, so fit and estimation
     both see the throttled steady state *)
  System.run_for sys (T.ms 100);
  let rc = Model.Recorder.start sys ~window:(T.ms 25) () in
  System.run_for sys (T.ms 150);
  let models =
    List.map (Model.Fit.fit ~kind:Model.Fit.Per_opp) (Model.Recorder.stop rc)
  in
  let est = Model.Estimator.start sys ~models ~window:(T.ms 25) () in
  Psbox_budget.Budget.set_machine_budget ctl (Some 3.0);
  Psbox_budget.Budget.set_admission_estimate ctl
    (Some (fun app -> Model.Estimator.app_est_w est ~app));
  System.run_for sys (T.ms 75);
  ignore (Psbox_budget.Budget.admit ctl ~app:a.System.app_id ~watts:2.0 ());
  System.run_for sys (T.ms 75);
  Model.Estimator.stop est;
  Psbox_budget.Budget.stop ctl;
  System.shutdown sys

(* An 8-device budget-scenario fleet shard, sequential: full per-device
   System + heterogeneity sampling + capped co-run + reduction into the
   fleet summary. Sequential so the number is per-device simulation cost,
   not domain-spawn overhead. *)
let bench_fleet_shard () =
  ignore
    (Fleet.run ~jobs:1 ~scenario:"budget" ~devices:8 ~seed:42 ()
      : Fleet.summary)

(* One list drives both the Bechamel tests and the events/sec pass, so the
   two sections of the JSON snapshot use identical names. *)
let bench_cases =
  [
    ("fig6+fig8: scheduler second (2 cores)", bench_sched_second);
    ("fig6+fig7: spatial balloons, 100ms slice", bench_balloon_cycle);
    ("fig6+contention: GPU temporal balloons, 100ms slice",
     bench_temporal_balloon);
    ("fig6+fig8d: NIC balloons, 100ms slice", bench_nic_balloon);
    ("budget: capped co-run, 400ms slice", bench_budget_capped);
    ("sidechan: DTW, 140-point traces", bench_dtw);
    ("meter: integrate 10k-breakpoint rail", bench_integrate);
    ("fig6 prior: usage-split sweep, 2k spans", bench_usage_split);
    (* last: a fleet shard allocates dozens of Systems and grows the major
       heap, which would tax the allocation-heavy benches after it *)
    ("fleet: 8-device budget shard, sequential", bench_fleet_shard);
  ]

let tests =
  Test.make_grouped ~name:"psbox"
    (List.map
       (fun (name, fn) -> Test.make ~name (Staged.stage fn))
       bench_cases)

(* The tick-storm win as a first-class number: simulator events fired per
   wall second while each benchmark runs. Measured over one run outside
   Bechamel (the global fired counter would count its warmup runs too).

   The same measured run yields the GC dimension: minor words allocated,
   words promoted to the major heap and major collections, plus minor
   words per simulated event — the regression-gated number (bench/diff.exe
   fails on >20% growth). A [Gc.full_major] before each case keeps one
   case's floating garbage from billing its major collections to the
   next. *)
type alloc = {
  a_minor : float;
  a_promoted : float;
  a_majors : int;
  a_per_event : float;
}

let events_and_allocs () =
  let fired = Telemetry.Metrics.counter "sim.events_fired" in
  List.map
    (fun (name, fn) ->
      Gc.full_major ();
      let f0 = Telemetry.Metrics.counter_value fired in
      let s0 = Gc.quick_stat () in
      let m0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      fn ();
      let dt = Unix.gettimeofday () -. t0 in
      let m1 = Gc.minor_words () in
      let s1 = Gc.quick_stat () in
      let df = Telemetry.Metrics.counter_value fired -. f0 in
      let minor = m1 -. m0 in
      let alloc =
        {
          a_minor = minor;
          a_promoted = s1.Gc.promoted_words -. s0.Gc.promoted_words;
          a_majors = s1.Gc.major_collections - s0.Gc.major_collections;
          a_per_event = (if df > 0.0 then minor /. df else 0.0);
        }
      in
      ( ("psbox/" ^ name, if dt > 0.0 then df /. dt else 0.0),
        ("psbox/" ^ name, alloc) ))
    bench_cases
  |> List.split

(* Fleet throughput at the recommended domain count: devices simulated per
   wall second, the number sharding exists to raise. Rides along in the
   events_per_sec section of the JSON (informational in bench/diff.exe).
   On a single-CPU host this is roughly the sequential rate minus
   domain-spawn overhead. *)
let fleet_throughput () =
  let jobs = Domain.recommended_domain_count () in
  let devices = 64 in
  let t0 = Unix.gettimeofday () in
  (* health on: the engine's health.* incident-lifecycle counters ride
     along in the event_counts section, where bench/diff.exe compares
     incident counts across snapshots informationally *)
  ignore
    (Fleet.run ~jobs ~health:true ~scenario:"budget" ~devices ~seed:42 ()
      : Fleet.summary);
  let dt = Unix.gettimeofday () -. t0 in
  ( Printf.sprintf "psbox/fleet: devices/sec, %d devices @ jobs=%d" devices
      jobs,
    if dt > 0.0 then float_of_int devices /. dt else 0.0 )

let microbench () =
  print_endline "=====================================================";
  print_endline " Bechamel microbenchmarks (simulator kernel paths)";
  print_endline "=====================================================";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  (* Three full passes, keeping each benchmark's minimum estimate: on a
     shared box, scheduling noise and frequency drift are strictly
     additive, so run-to-run estimates swing by 20%+ and the minimum is
     the honest location estimate. One pass would make the bench-diff
     wall-time gate fire on quiet-day vs busy-day snapshots. *)
  let passes = 3 in
  let best = Hashtbl.create 32 in
  for _ = 1 to passes do
    let raw = Benchmark.all cfg instances tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name v ->
        match Analyze.OLS.estimates v with
        | Some [ ns ] -> (
            match Hashtbl.find_opt best name with
            | Some ns0 when ns0 <= ns -> ()
            | _ -> Hashtbl.replace best name ns)
        | _ -> ())
      results
  done;
  let rows = Hashtbl.fold (fun name ns acc -> (name, ns) :: acc) best [] in
  let rows = List.sort compare rows in
  List.map
    (fun (name, ns) ->
      let pretty =
        if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-52s %s/run (min of %d)\n%!" name pretty passes;
      (name, ns))
    rows

(* Machine-readable results, so perf regressions are diffable across
   commits: BENCH_<yyyy-mm-dd>.json in the current directory. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json rows eps allocs =
  let tm = Unix.localtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let path = Printf.sprintf "BENCH_%s.json" date in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"date\": \"%s\",\n  \"unit\": \"ns/run\",\n  \"benchmarks\": [\n" date;
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    { \"name\": \"%s\", \"ns_per_run\": %.3f }%s\n"
        (json_escape name) ns
        (if i = List.length rows - 1 then "" else ","))
    rows;
  (* Simulated-event throughput per benchmark: its own key, so
     bench/diff.ml compares these rows informationally (throughput shifts
     flag scheduler work, they never fail the diff). *)
  output_string oc "  ],\n  \"events_per_sec\": [\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    { \"name\": \"%s\", \"events_per_sec\": %.0f }%s\n"
        (json_escape name) v
        (if i = List.length eps - 1 then "" else ","))
    eps;
  (* GC pressure per benchmark, from the same measured run as the
     events_per_sec rows. "minor_words_per_event" sits directly after the
     name so bench/diff.ml's adjacent-key parser picks it up — it is the
     gated number; the raw words/collections ride along for forensics. *)
  output_string oc "  ],\n  \"allocations\": [\n";
  List.iteri
    (fun i (name, a) ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"minor_words_per_event\": %.3f, \
         \"minor_words\": %.0f, \"promoted_words\": %.0f, \
         \"major_collections\": %d }%s\n"
        (json_escape name) a.a_per_event a.a_minor a.a_promoted a.a_majors
        (if i = List.length allocs - 1 then "" else ","))
    allocs;
  (* Per-subsystem telemetry accumulated over the whole bench run: how many
     events each kernel path handled while producing the numbers above. The
     key is "count", not "ns_per_run", so bench/diff.ml skips these rows. *)
  let counts = Telemetry.Metrics.values () in
  output_string oc "  ],\n  \"event_counts\": [\n";
  List.iteri
    (fun i (name, v) ->
      (* audit.* counters are attributed joules, not event counts: keep
         their fractional part so bench/diff.ml can compare energy totals
         across snapshots. Other fractional values (watt/percent gauges
         like budget.*.measured_w or model.rail.*.est_w) keep six decimals
         too — %.0f would truncate a 0.07 W reading to a dead-looking 0. *)
      let fmt_count =
        if String.length name >= 6 && String.sub name 0 6 = "audit." then
          Printf.sprintf "%.6f" v
        else if Float.is_integer v then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6f" v
      in
      Printf.fprintf oc "    { \"name\": \"%s\", \"count\": %s }%s\n"
        (json_escape name) fmt_count
        (if i = List.length counts - 1 then "" else ","))
    counts;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d benchmarks, %d event counters)\n%!" path
    (List.length rows) (List.length counts)

let () =
  let argv = Array.to_list Sys.argv in
  let json = List.mem "--json" argv in
  let micro_only = List.mem "--micro-only" argv in
  List.iter
    (fun a ->
      match a with
      | "--json" | "--micro-only" -> ()
      | "--sched=heap" -> Psbox_engine.Sim.set_default_backend `Heap
      | "--sched=wheel" -> Psbox_engine.Sim.set_default_backend `Wheel
      | "--pool=on" -> Psbox_engine.Sim.set_default_pooling true
      | "--pool=off" -> Psbox_engine.Sim.set_default_pooling false
      | a when a = Sys.argv.(0) -> ()
      | a ->
          Printf.eprintf
            "unknown flag %s (known: --json --micro-only --sched=heap|wheel \
             --pool=on|off)\n"
            a;
          exit 2)
    argv;
  (* auditing on, as everywhere: its counters (attributed joules per rail
     and per cause) ride along in the event_counts section of the JSON
     snapshot, where bench/diff.exe compares them across runs *)
  Audit.enable ();
  if not micro_only then regenerate ();
  let rows = microbench () in
  let eps, allocs = events_and_allocs () in
  let eps = eps @ [ fleet_throughput () ] in
  print_endline "  simulated-event throughput (one run each):";
  List.iter
    (fun (name, v) -> Printf.printf "  %-52s %12.0f events/s\n" name v)
    eps;
  print_endline "  GC pressure (same run):";
  List.iter
    (fun (name, a) ->
      Printf.printf
        "  %-52s %10.0f minor w  %8.0f promoted  %3d majors  %8.2f w/event\n"
        name a.a_minor a.a_promoted a.a_majors a.a_per_event)
    allocs;
  if json then write_json rows eps allocs
