(* Telemetry overhead probe: times the same simulated scheduler-second
   with the metrics registry enabled and disabled, interleaved A/B/A/B so
   machine drift hits both sides. Reports the delta of the per-side
   minima — on a noisy box single-shot bechamel comparisons can swing by
   more than the instrumentation costs, and this isolates the cost
   directly. *)
module System = Psbox_kernel.System
module W = Psbox_workloads.Workload
module T = Psbox_engine.Time

let sched_second () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  let spin app core =
    ignore
      (W.spawn sys ~app ~name:"spin" ~core
         (W.forever (fun () -> [ W.Compute (T.ms 5) ])))
  in
  spin a 0; spin b 1;
  System.start sys;
  System.run_for sys (T.sec 1);
  System.shutdown sys

let time n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do f () done;
  (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6

let () =
  let n = 400 in
  ignore (time 50 sched_second); (* warmup *)
  let on1 = time n sched_second in
  Psbox_telemetry.set_enabled false;
  let off1 = time n sched_second in
  Psbox_telemetry.set_enabled true;
  let on2 = time n sched_second in
  Psbox_telemetry.set_enabled false;
  let off2 = time n sched_second in
  Psbox_telemetry.set_enabled true;
  Printf.printf "on: %.1f / %.1f us   off: %.1f / %.1f us   overhead: %+.1f%%\n"
    on1 on2 off1 off2
    ((min on1 on2 -. min off1 off2) /. min off1 off2 *. 100.0)
