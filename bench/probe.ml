(* Instrumentation overhead probe: times the same simulated
   scheduler-second with a layer enabled and disabled, interleaved
   A/B/A/B so machine drift hits both sides. Reports the delta of the
   per-side minima — on a noisy box single-shot bechamel comparisons can
   swing by more than the instrumentation costs, and this isolates the
   cost directly. Probes three layers the same way: the telemetry metrics
   registry, the joule-audit attribution ledger, and the event-slot pool
   (pooling off = a fresh record per event, the pre-pool allocation
   behavior — so this delta is the measured win of slot recycling). *)
module System = Psbox_kernel.System
module Audit = Psbox_audit.Audit
module W = Psbox_workloads.Workload
module T = Psbox_engine.Time

let sched_second () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  let spin app core =
    ignore
      (W.spawn sys ~app ~name:"spin" ~core
         (W.forever (fun () -> [ W.Compute (T.ms 5) ])))
  in
  spin a 0; spin b 1;
  System.start sys;
  System.run_for sys (T.sec 1);
  System.shutdown sys

let time n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do f () done;
  (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6

(* Interleave [n]-run timings with the layer on and off, twice each;
   the overhead is the delta of the per-side minima. *)
let probe ~label ~n ~set =
  set true;
  let on1 = time n sched_second in
  set false;
  let off1 = time n sched_second in
  set true;
  let on2 = time n sched_second in
  set false;
  let off2 = time n sched_second in
  set true;
  Printf.printf
    "%-9s on: %.1f / %.1f us   off: %.1f / %.1f us   overhead: %+.1f%%\n"
    label on1 on2 off1 off2
    ((min on1 on2 -. min off1 off2) /. min off1 off2 *. 100.0)

let () =
  let n = 400 in
  ignore (time 50 sched_second); (* warmup *)
  probe ~label:"telemetry" ~n ~set:Psbox_telemetry.set_enabled;
  (* audit: attach/detach is per-machine at boot, so toggling the enable
     flag cleanly gates whole runs; reset drops bookkeeping between
     phases so thousands of probe machines don't accumulate *)
  probe ~label:"audit" ~n ~set:(fun b ->
      if b then Audit.enable () else Audit.disable ();
      Audit.reset ());
  (* inverted sense: "overhead" here is the cost of NOT pooling *)
  probe ~label:"no-pool" ~n ~set:(fun b ->
      Psbox_engine.Sim.set_default_pooling (not b))
