(* psbox-sim: run the paper's experiments from the command line.

   Usage:
     psbox_sim list                    enumerate experiment ids
     psbox_sim [run] <id> ...          run one or more experiments
     psbox_sim all                     run everything, in paper order
     psbox_sim trace-check <file>      validate an exported Chrome trace

     psbox_sim fleet                   simulate a device population

   Telemetry options (on `run`, `all`, and the default command):
     --seed INT         override every experiment's built-in seed
     --trace-out FILE   record a structured trace of the run and export it
                        as Chrome trace-event JSON (chrome://tracing)
     --metrics          print the deterministic metrics snapshot afterwards
     --audit-out FILE   write the joule-audit report (per-app per-cause
                        attribution, bit-exactly conserved per rail)
     --flame-out FILE   write folded stacks (rail;app;subsystem;cause uJ)
                        for standard flamegraph tools

   The joule audit itself is always on: it is a pure observer, and
   `audit-check` plus the byte-identical experiment outputs prove it. *)

open Cmdliner
module Registry = Psbox_experiments.Registry
module Report = Psbox_experiments.Report
module Telemetry = Psbox_telemetry
module Audit = Psbox_audit.Audit
module Fleet = Psbox_fleet.Fleet
module Health = Psbox_health.Health
module System = Psbox_kernel.System

let list_cmd =
  let doc = "List the available experiments (one per paper table/figure)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-12s %s\n" e.Registry.e_id e.Registry.e_title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let trace_out_arg =
  let doc =
    "Record a structured trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (load it in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "After the run, print the telemetry metrics snapshot (sorted by name, \
     byte-reproducible for a given run)."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_out_arg =
  let doc =
    "After the run, write the metrics snapshot to $(docv) in the \
     OpenMetrics/Prometheus text exposition format (sorted names, # TYPE \
     lines, cumulative histogram _bucket/_sum/_count rows; \
     byte-reproducible for a given run)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let health_out_arg =
  let doc =
    "Attach a streaming health engine (the default rule pack: model drift, \
     cap-violation SLO burn, dead-metric absence, audit conservation) to \
     every machine the run builds, observe-only, and write the merged \
     incident log to $(docv) as deterministic JSON."
  in
  Arg.(
    value & opt (some string) None & info [ "health-out" ] ~docv:"FILE" ~doc)

let audit_out_arg =
  let doc =
    "Write the joule-audit report to $(docv): per-app per-cause energy \
     attribution for every machine the run built, with per-rail sums that \
     match the kernel energy ledger bit-for-bit (verify with \
     $(b,audit-check))."
  in
  Arg.(value & opt (some string) None & info [ "audit-out" ] ~docv:"FILE" ~doc)

let sched_arg =
  let backends = [ ("heap", `Heap); ("wheel", `Wheel) ] in
  let doc =
    "Event-queue implementation: $(b,wheel) (hierarchical timing wheel, \
     the default) or $(b,heap) (the reference binary heap). Both realise \
     the same total event order, so experiment output is byte-identical \
     under either (verified by $(b,make sched-smoke))."
  in
  Arg.(
    value
    & opt (enum backends) (Psbox_engine.Sim.default_backend ())
    & info [ "sched" ] ~docv:"SCHED" ~doc)

let pool_arg =
  let modes = [ ("on", true); ("off", false) ] in
  let doc =
    "Event-slot pooling: $(b,on) (the default; events recycle \
     generation-stamped slot records through a free list, so the steady \
     state event loop does not allocate) or $(b,off) (a fresh record per \
     event — the pre-pool baseline for A/B allocation measurements). \
     Output is byte-identical either way (verified by the pool leg of \
     $(b,make sched-smoke))."
  in
  Arg.(
    value
    & opt (enum modes) (Psbox_engine.Sim.default_pooling ())
    & info [ "pool" ] ~docv:"on|off" ~doc)

(* Evaluated before any command body runs (cmdliner applies term arguments
   left to right), so wrapping a command term in [with_pool] gives it the
   --pool flag without threading one more parameter through its run
   function. *)
let with_pool t =
  Term.(
    const (fun () r -> r)
    $ (const Psbox_engine.Sim.set_default_pooling $ pool_arg)
    $ t)

let seed_arg =
  let doc =
    "Override every selected experiment's built-in seed with $(docv). Each \
     experiment normally uses its own default seed; one --seed value pins \
     them all, so two invocations with the same --seed (and experiment \
     list) are byte-identical."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"INT" ~doc)

let flame_out_arg =
  let doc =
    "Write folded stacks ($(i,rail;app;subsystem;cause microjoules), one \
     per line) to $(docv), consumable by standard flamegraph tools \
     (flamegraph.pl, inferno, speedscope)."
  in
  Arg.(value & opt (some string) None & info [ "flame-out" ] ~docv:"FILE" ~doc)

let with_formatter_to path f =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  f fmt;
  Format.pp_print_flush fmt ();
  close_out oc

let run_ids sched seed trace_out metrics metrics_out audit_out flame_out
    health_out ids =
  Psbox_engine.Sim.set_default_backend sched;
  (* Auditing is the default: a pure observer whose cost the probe bench
     bounds. Report mode (which retains every machine for the final
     report) is only armed when a report was actually requested. *)
  Audit.enable ();
  if audit_out <> None || flame_out <> None then Audit.set_report_mode true;
  (* Health rides along only on request: an on-boot hook gives every
     machine the run builds an observe-only engine with the default rule
     pack (registered after Audit.enable so the conservation probe finds
     the ledger). *)
  let health_engines = ref [] in
  if health_out <> None then
    System.on_boot (fun sys ->
        let eng = Health.create (System.sim sys) () in
        Health.add_rules eng (Health.default_pack sys);
        health_engines := eng :: !health_engines);
  (match trace_out with
  | Some _ ->
      Telemetry.Tracing.clear ();
      Telemetry.Tracing.start ()
  | None -> ());
  let run_one id =
    match Registry.find id with
    | Some e -> Report.print (e.Registry.e_run ?seed ())
    | None ->
        Printf.eprintf "unknown experiment %S; try `psbox_sim list`\n" id;
        exit 2
  in
  List.iter run_one ids;
  (match trace_out with
  | Some path ->
      Telemetry.Tracing.stop ();
      let events = Telemetry.Tracing.events () in
      Telemetry.Chrome_trace.write path events;
      Printf.printf "trace: wrote %d events to %s" (List.length events) path;
      (match Telemetry.Tracing.dropped () with
      | 0 -> print_newline ()
      | n -> Printf.printf " (%d dropped at the buffer cap)\n" n)
  | None -> ());
  (match audit_out with
  | Some path ->
      (* verify conservation before writing: a report that fails its own
         invariant must not be produced silently *)
      List.iter
        (fun a ->
          match Audit.check a with
          | Ok () -> ()
          | Error msg ->
              Printf.eprintf "audit: conservation violated: %s\n" msg;
              exit 1)
        (Audit.instances ());
      with_formatter_to path Audit.write_report;
      Printf.printf "audit: wrote report for %d system(s) to %s\n"
        (List.length (Audit.instances ()))
        path
  | None -> ());
  (match flame_out with
  | Some path ->
      with_formatter_to path Audit.write_flame;
      Printf.printf "audit: wrote folded stacks to %s\n" path
  | None -> ());
  (match health_out with
  | Some path ->
      List.iter Health.stop !health_engines;
      let logs = List.rev_map Health.json !health_engines in
      let oc = open_out path in
      output_string oc "[\n";
      List.iteri
        (fun i log ->
          if i > 0 then output_string oc ",\n";
          output_string oc log)
        logs;
      output_string oc "]\n";
      close_out oc;
      Printf.printf "health: wrote incident log for %d system(s) to %s\n"
        (List.length logs) path
  | None -> ());
  (match metrics_out with
  | Some path ->
      Telemetry.Openmetrics.write path (Telemetry.Metrics.export ());
      Printf.printf "metrics: wrote OpenMetrics exposition to %s\n" path
  | None -> ());
  if metrics then begin
    print_endline "== telemetry metrics ==";
    print_string (Telemetry.Metrics.dump_string ())
  end

let run_cmd =
  let doc = "Run specific experiments by id." in
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"experiment id")
  in
  Cmd.v (Cmd.info "run" ~doc)
    (with_pool
       Term.(
         const run_ids $ sched_arg $ seed_arg $ trace_out_arg $ metrics_arg
         $ metrics_out_arg $ audit_out_arg $ flame_out_arg $ health_out_arg
         $ ids))

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run sched seed trace_out metrics metrics_out audit_out flame_out
      health_out =
    run_ids sched seed trace_out metrics metrics_out audit_out flame_out
      health_out
      (List.map (fun e -> e.Registry.e_id) Registry.all)
  in
  Cmd.v (Cmd.info "all" ~doc)
    (with_pool
       Term.(
         const run $ sched_arg $ seed_arg $ trace_out_arg $ metrics_arg
         $ metrics_out_arg $ audit_out_arg $ flame_out_arg $ health_out_arg))

let fleet_cmd =
  let doc =
    "Simulate a fleet of heterogeneous devices and reduce their results \
     into population-level distributions."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Instantiates $(b,--devices) independent device simulations, each a \
         full machine plus workload scenario under its own splitmix-derived \
         seed and heterogeneity sample (rail idle floor, core count, \
         governor trip point, workload intensity, cap), sharded over \
         $(b,--jobs) OCaml domains with work stealing. Per-device results \
         (energy per app, cap violations, joule-audit cause totals, \
         telemetry exports) merge into fleet distributions.";
      `P
        "The report is deterministic in (scenario, seed, devices) alone: \
         byte-identical across repeated runs and across $(b,--jobs) values.";
    ]
  in
  let devices_arg =
    let doc = "Number of devices to simulate." in
    Arg.(value & opt int 64 & info [ "devices" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains to shard across (default: the machine's recommended \
       domain count). $(b,--jobs 1) runs sequentially with byte-identical \
       output."
    in
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "jobs" ] ~docv:"J" ~doc)
  in
  let fleet_seed_arg =
    let doc = "Fleet seed; every per-device seed derives from it." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc)
  in
  let scenario_arg =
    let doc =
      Printf.sprintf "Workload scenario: %s."
        (String.concat ", " Fleet.scenario_ids)
    in
    Arg.(value & opt string "budget" & info [ "scenario" ] ~docv:"ID" ~doc)
  in
  let fleet_out_arg =
    let doc = "Write the fleet report as deterministic JSON to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "fleet-out" ] ~docv:"FILE" ~doc)
  in
  let health_arg =
    let doc =
      "Attach the observe-only health engine (default rule pack) to every \
       device and reduce the per-device incident logs into fleet incident \
       rates (fired incidents per rule per 1000 devices, in the JSON \
       report and the per-device rows)."
    in
    Arg.(value & flag & info [ "health" ] ~doc)
  in
  let run sched devices jobs seed scenario fleet_out health =
    Psbox_engine.Sim.set_default_backend sched;
    if not (List.mem scenario Fleet.scenario_ids) then begin
      Printf.eprintf "unknown scenario %S; available: %s\n" scenario
        (String.concat ", " Fleet.scenario_ids);
      exit 2
    end;
    if devices < 0 || jobs < 1 then begin
      Printf.eprintf "fleet: --devices must be >= 0 and --jobs >= 1\n";
      exit 2
    end;
    let summary = Fleet.run ~jobs ~health ~scenario ~devices ~seed () in
    Printf.printf
      "fleet: %d device(s), scenario %s, seed %d, %d job(s)\n" devices
      scenario seed jobs;
    Printf.printf "  violation rate %.1f%%  total J p50=%.3f p99=%.3f\n"
      (summary.Fleet.s_violation_rate *. 100.0)
      summary.Fleet.s_total.Fleet.p50 summary.Fleet.s_total.Fleet.p99;
    List.iter
      (fun (cls, d) ->
        Printf.printf "  %-12s p50=%.3f p95=%.3f p99=%.3f J\n" cls
          d.Fleet.p50 d.Fleet.p95 d.Fleet.p99)
      summary.Fleet.s_energy;
    List.iter
      (fun (rule, rate) ->
        Printf.printf "  incident %-24s %.1f per 1000 devices\n" rule rate)
      summary.Fleet.s_incident_rates;
    match fleet_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Fleet.json_string summary);
        close_out oc;
        Printf.printf "fleet: wrote JSON report to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "fleet" ~doc ~man)
    (with_pool
       Term.(
         const run $ sched_arg $ devices_arg $ jobs_arg $ fleet_seed_arg
         $ scenario_arg $ fleet_out_arg $ health_arg))

let trace_check_cmd =
  let doc =
    "Validate a Chrome trace-event JSON file (as written by --trace-out): it \
     must parse and contain at least one event. Exits non-zero otherwise."
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"trace file")
  in
  let run file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    match Telemetry.Chrome_trace.validate text with
    | Ok 0 ->
        Printf.eprintf "trace-check: %s parses but contains no events\n" file;
        exit 1
    | Ok n ->
        Printf.printf "trace-check: %s ok (%d events)\n" file n
    | Error msg ->
        Printf.eprintf "trace-check: %s invalid: %s\n" file msg;
        exit 1
  in
  Cmd.v (Cmd.info "trace-check" ~doc) Term.(const run $ file)

(* Re-fold an --audit-out report and verify its conservation claims from
   the outside: the rows of each rail block, summed top to bottom, must
   reproduce both the attributed total and the kernel ledger value
   bit-for-bit ([%.17g] round-trips doubles exactly). *)
let audit_check_cmd =
  let doc =
    "Validate a joule-audit report (as written by --audit-out): per rail, \
     the rows re-folded in file order must equal the attributed total and \
     the kernel energy ledger bit-for-bit. Exits non-zero otherwise."
  in
  let file =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"audit file")
  in
  let run file =
    let bits = Int64.bits_of_float in
    let fail line msg =
      Printf.eprintf "audit-check: %s:%d: %s\n" file line msg;
      exit 1
    in
    let folds : (string, float) Hashtbl.t = Hashtbl.create 8 in
    let kv line tok key =
      match String.index_opt tok '=' with
      | Some i when String.sub tok 0 i = key -> (
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          match float_of_string_opt v with
          | Some f -> f
          | None -> fail line (Printf.sprintf "bad %s value %S" key v))
      | _ -> fail line (Printf.sprintf "expected %s=..." key)
    in
    let rails_checked = ref 0 and rows_seen = ref 0 in
    let ic = open_in file in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         let n = !lineno in
         match String.split_on_char ' ' line with
         | "system" :: _ -> Hashtbl.reset folds
         | [ "rail"; rail; "subsystem"; _ ] -> Hashtbl.replace folds rail 0.0
         | "row" :: rail :: _app :: _sub :: cause :: j :: rest ->
             if Audit.cause_of_label cause = None then
               fail n (Printf.sprintf "unknown cause %S" cause);
             (match rest with [] | [ "residual" ] -> () | _ -> fail n "bad row");
             let j =
               match float_of_string_opt j with
               | Some f -> f
               | None -> fail n (Printf.sprintf "bad joule value %S" j)
             in
             (match Hashtbl.find_opt folds rail with
             | Some acc -> Hashtbl.replace folds rail (acc +. j)
             | None -> fail n (Printf.sprintf "row before rail header %S" rail));
             incr rows_seen
         | "railsum" :: rail :: attributed :: ledger :: _ ->
             let attributed = kv n attributed "attributed" in
             let ledger = kv n ledger "ledger" in
             let folded =
               match Hashtbl.find_opt folds rail with
               | Some acc -> acc
               | None -> fail n (Printf.sprintf "railsum before rail %S" rail)
             in
             if bits folded <> bits attributed then
               fail n
                 (Printf.sprintf
                    "rail %s: re-folded rows %.17g <> attributed %.17g" rail
                    folded attributed);
             if bits attributed <> bits ledger then
               fail n
                 (Printf.sprintf
                    "rail %s: attributed %.17g <> kernel ledger %.17g" rail
                    attributed ledger);
             Hashtbl.remove folds rail;
             incr rails_checked
         | [] | [ "" ] -> ()
         | first :: _ when String.length first > 0 && first.[0] = '#' -> ()
         | _ -> fail n (Printf.sprintf "unrecognized line %S" line)
       done
     with End_of_file -> close_in ic);
    if !rails_checked = 0 then begin
      Printf.eprintf "audit-check: %s contains no rail blocks\n" file;
      exit 1
    end;
    Printf.printf
      "audit-check: %s ok (%d rails, %d rows, per-rail sums bit-exact)\n" file
      !rails_checked !rows_seen
  in
  Cmd.v (Cmd.info "audit-check" ~doc) Term.(const run $ file)

let model_check_cmd =
  let doc =
    "Fit counter-driven power models on one seed, validate on another, and \
     report per-rail MAPE/RMSE as deterministic JSON."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the reference scenario (2 cores, GPU, WiFi; phased mixed and \
         bursty apps) under $(b,--seed), records windowed power-state \
         residency counters against the kernel energy ledger, and fits one \
         per-OPP and one aggregate linear model per rail by least squares. \
         It then re-runs the scenario under $(b,--val-seed) with the online \
         estimator attached and reports each rail's held-out MAPE and RMSE, \
         plus how many drift alarms the estimator raised.";
      `P
        "With $(b,--perturb) the fitted coefficients are deliberately \
         scaled before validation; the drift detector is expected to fire \
         ($(b,--expect-drift) turns that into the exit criterion).";
    ]
  in
  let seed_a =
    let doc = "Seed for the fitting (training) run." in
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"INT" ~doc)
  in
  let seed_b =
    let doc = "Seed for the held-out validation run." in
    Arg.(value & opt int 23 & info [ "val-seed" ] ~docv:"INT" ~doc)
  in
  let window_ms =
    let doc = "Observation window in milliseconds." in
    Arg.(value & opt int 50 & info [ "window-ms" ] ~docv:"MS" ~doc)
  in
  let windows =
    let doc = "Number of windows per run." in
    Arg.(value & opt int 40 & info [ "windows" ] ~docv:"N" ~doc)
  in
  let perturb =
    let doc =
      "Scale the fitted coefficients by (1 + $(docv)/100) before validating \
       — an injected model error, for exercising the drift detector."
    in
    Arg.(value & opt float 0.0 & info [ "perturb" ] ~docv:"PCT" ~doc)
  in
  let max_mape =
    let doc =
      "Fail (exit 1) if any rail's per-OPP validation MAPE exceeds $(docv) \
       percent."
    in
    Arg.(value & opt (some float) None & info [ "max-mape" ] ~docv:"PCT" ~doc)
  in
  let expect_drift =
    let doc =
      "Fail (exit 1) unless the online drift detector raised at least one \
       alarm during validation."
    in
    Arg.(value & flag & info [ "expect-drift" ] ~doc)
  in
  let model_out =
    let doc = "Write the JSON report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "model-out" ] ~docv:"FILE" ~doc)
  in
  let self_heal =
    let doc =
      "Close the loop: run validation with the health engine's drift rule \
       and the online recalibration responder attached, hot-swapping a \
       refitted model under the estimator when drift fires. The report \
       becomes the self-heal report; $(b,--max-mape) then gates the \
       post-swap held-out MAPE and $(b,--expect-drift) requires at least \
       one fired incident and one model swap."
    in
    Arg.(value & flag & info [ "self-heal" ] ~doc)
  in
  let run sched seed_a seed_b window_ms windows perturb max_mape expect_drift
      model_out self_heal =
    Psbox_engine.Sim.set_default_backend sched;
    if window_ms <= 0 || windows <= 0 then begin
      Printf.eprintf "model-check: --window-ms and --windows must be positive\n";
      exit 2
    end;
    Audit.enable ();
    if self_heal then begin
      let report, _eng =
        Health.Self_heal.run ~fit_seed:seed_a ~val_seed:seed_b
          ~window:(Psbox_engine.Time.ms window_ms) ~windows
          ~perturb_pct:perturb ()
      in
      let json = Health.Self_heal.json report in
      (match model_out with
      | Some path ->
          let oc = open_out path in
          output_string oc json;
          close_out oc;
          Printf.printf "model-check: wrote self-heal report to %s\n" path
      | None -> print_string json);
      let failed = ref false in
      (match max_mape with
      | Some cap when report.Health.Self_heal.sh_post_max_mape_pct > cap ->
          Printf.eprintf
            "model-check: post-swap MAPE %.3f%% exceeds --max-mape %.3f%%\n"
            report.Health.Self_heal.sh_post_max_mape_pct cap;
          failed := true
      | _ -> ());
      if
        expect_drift
        && (report.Health.Self_heal.sh_incidents_fired = 0
           || report.Health.Self_heal.sh_swaps = 0)
      then begin
        Printf.eprintf
          "model-check: --expect-drift but no incident fired or no model \
           swapped (perturb %.1f%%)\n"
          perturb;
        failed := true
      end;
      if !failed then exit 1
    end
    else begin
    let report =
      Psbox_model.Model.Check.run ~fit_seed:seed_a ~val_seed:seed_b
        ~window:(Psbox_engine.Time.ms window_ms) ~windows ~perturb_pct:perturb
        ()
    in
    let json = Psbox_model.Model.Check.json report in
    (match model_out with
    | Some path ->
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Printf.printf "model-check: wrote report to %s\n" path
    | None -> print_string json);
    let failed = ref false in
    (match max_mape with
    | Some cap when report.Psbox_model.Model.Check.c_max_mape_pct > cap ->
        Printf.eprintf "model-check: max rail MAPE %.3f%% exceeds --max-mape %.3f%%\n"
          report.Psbox_model.Model.Check.c_max_mape_pct cap;
        failed := true
    | _ -> ());
    if expect_drift && report.Psbox_model.Model.Check.c_drift_alarms = 0 then begin
      Printf.eprintf
        "model-check: --expect-drift but no drift alarm fired (perturb %.1f%%)\n"
        perturb;
      failed := true
    end;
    if !failed then exit 1
    end
  in
  Cmd.v
    (Cmd.info "model-check" ~doc ~man)
    (with_pool
       Term.(
         const run $ sched_arg $ seed_a $ seed_b $ window_ms $ windows
         $ perturb $ max_mape $ expect_drift $ model_out $ self_heal))

let health_check_cmd =
  let doc =
    "Run the drift-injection self-healing demo and emit the deterministic \
     incident log as JSON."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Fits ground-truth power models on $(b,--seed), perturbs their \
         coefficients by $(b,--perturb) percent, then re-runs the reference \
         scenario under $(b,--val-seed) with the perturbed estimator, the \
         health engine's default rule pack, and the online recalibration \
         responder. The drift incident fires once per drifted rail, the \
         responder recalibrates from the live recorder trace and hot-swaps \
         the refit under the estimator, and the incident resolves when the \
         MAPE gauge clears the hysteresis margin.";
      `P
        "stdout (or $(b,--health-out)) is the engine's incident log: every \
         incident's open/fire/resolve timestamps, peak signal value and \
         per-rule fired counts — byte-reproducible for given seeds.";
    ]
  in
  let seed_a =
    let doc = "Seed for the fitting (ground truth) run." in
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"INT" ~doc)
  in
  let seed_b =
    let doc = "Seed for the monitored validation run." in
    Arg.(value & opt int 23 & info [ "val-seed" ] ~docv:"INT" ~doc)
  in
  let window_ms =
    let doc = "Observation window in milliseconds." in
    Arg.(value & opt int 50 & info [ "window-ms" ] ~docv:"MS" ~doc)
  in
  let windows =
    let doc = "Number of windows per run." in
    Arg.(value & opt int 60 & info [ "windows" ] ~docv:"N" ~doc)
  in
  let perturb =
    let doc =
      "Scale the fitted coefficients by (1 + $(docv)/100) before the \
       monitored run — the injected drift."
    in
    Arg.(value & opt float 0.0 & info [ "perturb" ] ~docv:"PCT" ~doc)
  in
  let drift_threshold =
    let doc = "Drift rule threshold on the rail MAPE gauges, in percent." in
    Arg.(value & opt float 5.0 & info [ "drift-threshold" ] ~docv:"PCT" ~doc)
  in
  let max_mape =
    let doc =
      "Fail (exit 1) if the worst rail's post-swap held-out MAPE exceeds \
       $(docv) percent."
    in
    Arg.(value & opt (some float) None & info [ "max-mape" ] ~docv:"PCT" ~doc)
  in
  let expect_heal =
    let doc =
      "Fail (exit 1) unless at least one drift incident fired and at least \
       one model was hot-swapped."
    in
    Arg.(value & flag & info [ "expect-heal" ] ~doc)
  in
  let health_out =
    let doc = "Write the incident log JSON to $(docv) instead of stdout." in
    Arg.(
      value & opt (some string) None & info [ "health-out" ] ~docv:"FILE" ~doc)
  in
  let report_out =
    let doc = "Also write the self-heal report JSON to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  let run sched seed_a seed_b window_ms windows perturb drift_threshold
      max_mape expect_heal health_out report_out =
    Psbox_engine.Sim.set_default_backend sched;
    if window_ms <= 0 || windows <= 0 then begin
      Printf.eprintf
        "health-check: --window-ms and --windows must be positive\n";
      exit 2
    end;
    Audit.enable ();
    let report, eng =
      Health.Self_heal.run ~fit_seed:seed_a ~val_seed:seed_b
        ~window:(Psbox_engine.Time.ms window_ms) ~windows ~perturb_pct:perturb
        ~drift_threshold_pct:drift_threshold ()
    in
    let log = Health.json eng in
    (match health_out with
    | Some path ->
        let oc = open_out path in
        output_string oc log;
        close_out oc;
        Printf.printf "health-check: wrote incident log to %s\n" path
    | None -> print_string log);
    (match report_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Health.Self_heal.json report);
        close_out oc;
        Printf.printf "health-check: wrote self-heal report to %s\n" path
    | None -> ());
    let failed = ref false in
    (match max_mape with
    | Some cap when report.Health.Self_heal.sh_post_max_mape_pct > cap ->
        Printf.eprintf
          "health-check: post-swap MAPE %.3f%% exceeds --max-mape %.3f%%\n"
          report.Health.Self_heal.sh_post_max_mape_pct cap;
        failed := true
    | _ -> ());
    if
      expect_heal
      && (report.Health.Self_heal.sh_incidents_fired = 0
         || report.Health.Self_heal.sh_swaps = 0)
    then begin
      Printf.eprintf
        "health-check: --expect-heal but no incident fired or no model \
         swapped (perturb %.1f%%)\n"
        perturb;
      failed := true
    end;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "health-check" ~doc ~man)
    (with_pool
       Term.(
         const run $ sched_arg $ seed_a $ seed_b $ window_ms $ windows
         $ perturb $ drift_threshold $ max_mape $ expect_heal $ health_out
         $ report_out))

(* Default command: bare experiment ids work without the `run` subcommand
   (`psbox_sim --trace-out t.json budget`). *)
let default_term =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run sched seed trace_out metrics metrics_out audit_out flame_out
      health_out ids =
    match ids with
    | [] -> `Help (`Pager, None)
    | ids ->
        run_ids sched seed trace_out metrics metrics_out audit_out flame_out
          health_out ids;
        `Ok ()
  in
  Term.(
    ret
      (with_pool
         (const run $ sched_arg $ seed_arg $ trace_out_arg $ metrics_arg
        $ metrics_out_arg $ audit_out_arg $ flame_out_arg $ health_out_arg
        $ ids)))

let () =
  let doc = "psbox reproduction: the paper's experiments on the simulator" in
  let info = Cmd.info "psbox_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term info
          [
            list_cmd; run_cmd; all_cmd; fleet_cmd; trace_check_cmd;
            audit_check_cmd; model_check_cmd; health_check_cmd;
          ]))
