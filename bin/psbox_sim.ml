(* psbox-sim: run the paper's experiments from the command line.

   Usage:
     psbox_sim list                    enumerate experiment ids
     psbox_sim [run] <id> ...          run one or more experiments
     psbox_sim all                     run everything, in paper order
     psbox_sim trace-check <file>      validate an exported Chrome trace

   Telemetry options (on `run`, `all`, and the default command):
     --trace-out FILE   record a structured trace of the run and export it
                        as Chrome trace-event JSON (chrome://tracing)
     --metrics          print the deterministic metrics snapshot afterwards *)

open Cmdliner
module Registry = Psbox_experiments.Registry
module Report = Psbox_experiments.Report
module Telemetry = Psbox_telemetry

let list_cmd =
  let doc = "List the available experiments (one per paper table/figure)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-12s %s\n" e.Registry.e_id e.Registry.e_title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let trace_out_arg =
  let doc =
    "Record a structured trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (load it in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "After the run, print the telemetry metrics snapshot (sorted by name, \
     byte-reproducible for a given run)."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let run_ids trace_out metrics ids =
  (match trace_out with
  | Some _ ->
      Telemetry.Tracing.clear ();
      Telemetry.Tracing.start ()
  | None -> ());
  let run_one id =
    match Registry.find id with
    | Some e -> Report.print (e.Registry.e_run ())
    | None ->
        Printf.eprintf "unknown experiment %S; try `psbox_sim list`\n" id;
        exit 2
  in
  List.iter run_one ids;
  (match trace_out with
  | Some path ->
      Telemetry.Tracing.stop ();
      let events = Telemetry.Tracing.events () in
      Telemetry.Chrome_trace.write path events;
      Printf.printf "trace: wrote %d events to %s" (List.length events) path;
      (match Telemetry.Tracing.dropped () with
      | 0 -> print_newline ()
      | n -> Printf.printf " (%d dropped at the buffer cap)\n" n)
  | None -> ());
  if metrics then begin
    print_endline "== telemetry metrics ==";
    print_string (Telemetry.Metrics.dump_string ())
  end

let run_cmd =
  let doc = "Run specific experiments by id." in
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"experiment id")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run_ids $ trace_out_arg $ metrics_arg $ ids)

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run trace_out metrics =
    run_ids trace_out metrics (List.map (fun e -> e.Registry.e_id) Registry.all)
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ trace_out_arg $ metrics_arg)

let trace_check_cmd =
  let doc =
    "Validate a Chrome trace-event JSON file (as written by --trace-out): it \
     must parse and contain at least one event. Exits non-zero otherwise."
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"trace file")
  in
  let run file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    match Telemetry.Chrome_trace.validate text with
    | Ok 0 ->
        Printf.eprintf "trace-check: %s parses but contains no events\n" file;
        exit 1
    | Ok n ->
        Printf.printf "trace-check: %s ok (%d events)\n" file n
    | Error msg ->
        Printf.eprintf "trace-check: %s invalid: %s\n" file msg;
        exit 1
  in
  Cmd.v (Cmd.info "trace-check" ~doc) Term.(const run $ file)

(* Default command: bare experiment ids work without the `run` subcommand
   (`psbox_sim --trace-out t.json budget`). *)
let default_term =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run trace_out metrics ids =
    match ids with
    | [] -> `Help (`Pager, None)
    | ids ->
        run_ids trace_out metrics ids;
        `Ok ()
  in
  Term.(ret (const run $ trace_out_arg $ metrics_arg $ ids))

let () =
  let doc = "psbox reproduction: the paper's experiments on the simulator" in
  let info = Cmd.info "psbox_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term info
          [ list_cmd; run_cmd; all_cmd; trace_check_cmd ]))
