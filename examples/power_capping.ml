(* Power capping: the budget control plane end to end.

   Two tenants spin on a dual-core machine; halfway through we cap one of
   them and watch the controller walk its attributed draw down onto the
   cap while the neighbour keeps its throughput.

   Run with:  dune exec examples/power_capping.exe *)

open Psbox_engine
module System = Psbox_kernel.System
module W = Psbox_workloads.Workload
module Budget = Psbox_budget.Budget

let () =
  let sys =
    System.create ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let greedy = System.new_app sys ~name:"greedy" in
  let polite = System.new_app sys ~name:"polite" in
  let spin app name =
    ignore
      (W.spawn sys ~app ~name
         (W.forever (fun () -> [ W.Compute (Time.ms 2); W.Count ("units", 1.0) ])))
  in
  spin greedy "spin-greedy";
  spin polite "spin-polite";
  System.start sys;

  (* Admission first: declare demand against the machine's budget. *)
  let ctl = Budget.create sys ~machine_budget_w:3.0 () in
  let verdict = function
    | Budget.Admitted -> "admitted"
    | Budget.Queued -> "queued"
    | Budget.Rejected -> "rejected"
  in
  Printf.printf "admit greedy @ 1.8 W: %s\n"
    (verdict (Budget.admit ctl ~app:greedy.System.app_id ~watts:1.8 ()));
  Printf.printf "admit polite @ 1.0 W: %s\n"
    (verdict (Budget.admit ctl ~app:polite.System.app_id ~watts:1.0 ()));
  Printf.printf "remaining machine budget: %.1f W\n\n" (Budget.remaining_w ctl);

  (* Let both run free for a second... *)
  System.run_for sys (Time.sec 1);
  let rate app =
    let u0 = System.counter app "units" in
    fun () -> System.counter app "units" -. u0
  in
  let g_free = rate greedy and p_free = rate polite in
  System.run_for sys (Time.sec 1);
  Printf.printf "uncapped:  greedy %4.0f units/s   polite %4.0f units/s\n"
    (g_free ()) (p_free ());

  (* ...then hold greedy to its declared 0.9 W cap. *)
  Budget.set_cap ctl ~app:greedy.System.app_id ~watts:0.9;
  System.run_for sys (Time.sec 1) (* convergence *);
  let g_cap = rate greedy and p_cap = rate polite in
  System.run_for sys (Time.sec 1);
  Printf.printf "capped:    greedy %4.0f units/s   polite %4.0f units/s\n\n"
    (g_cap ()) (p_cap ());
  Printf.printf "greedy windowed mean %.3f W against a %.2f W cap (throttle %.2f)\n"
    (Budget.measured_w ctl ~app:greedy.System.app_id)
    (Budget.effective_cap_w ctl ~app:greedy.System.app_id)
    (Budget.throttle ctl ~app:greedy.System.app_id);

  Budget.stop ctl;
  System.shutdown sys
