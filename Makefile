# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json bench-diff trace-smoke audit-smoke \
	sched-smoke fleet-smoke model-smoke health-smoke smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --micro-only --json

# Compare the latest two BENCH_<date>.json snapshots; fails on a >20%
# regression. A no-op (exit 0) with fewer than two snapshots.
bench-diff:
	dune exec bench/diff.exe

# Run one experiment with the trace recorder armed, then validate the
# exported Chrome trace (parses, >0 events) with the CLI's own checker.
trace-smoke:
	dune exec bin/psbox_sim.exe -- --trace-out _build/trace-smoke.json budget
	dune exec bin/psbox_sim.exe -- trace-check _build/trace-smoke.json

# Run the multi-rail budget co-run with the joule audit armed, then verify
# the report's conservation claims from the outside: audit-check re-folds
# every rail's rows and requires bit-equality with the attributed total
# and the kernel energy ledger.
audit-smoke:
	dune exec bin/psbox_sim.exe -- --audit-out _build/audit-smoke.txt \
		--flame-out _build/flame-smoke.txt budget
	dune exec bin/psbox_sim.exe -- audit-check _build/audit-smoke.txt

# Run every experiment under both event-queue backends and require the
# outputs to be byte-identical: the timing wheel must realise the exact
# (time, seq) total order of the reference binary heap. A third leg turns
# event-slot pooling off (a fresh record per event) and requires the same
# bytes again: handle recycling must be invisible in the output.
sched-smoke:
	dune exec bin/psbox_sim.exe -- all --sched heap > _build/sched-heap.txt
	dune exec bin/psbox_sim.exe -- all --sched wheel > _build/sched-wheel.txt
	cmp _build/sched-heap.txt _build/sched-wheel.txt
	dune exec bin/psbox_sim.exe -- all --pool off > _build/sched-nopool.txt
	cmp _build/sched-wheel.txt _build/sched-nopool.txt
	@echo "sched-smoke: heap/wheel/no-pool outputs byte-identical"

# Run a small fleet sequentially and sharded over 4 domains, and require
# the two JSON reports to be byte-identical: the work-stealing pool and
# the mergeable-snapshot reduction must be invisible in the output.
fleet-smoke:
	dune exec bin/psbox_sim.exe -- fleet --devices 24 --jobs 1 --seed 42 \
		--scenario budget --fleet-out _build/fleet-j1.json
	dune exec bin/psbox_sim.exe -- fleet --devices 24 --jobs 4 --seed 42 \
		--scenario budget --fleet-out _build/fleet-j4.json
	cmp _build/fleet-j1.json _build/fleet-j4.json
	@echo "fleet-smoke: jobs 1 and jobs 4 fleet JSON byte-identical"

# Fit counter-driven power models on one seed and validate on another:
# every rail's held-out MAPE must stay within 5%, and a deliberately
# perturbed model must trip the online drift detector.
model-smoke:
	dune exec bin/psbox_sim.exe -- model-check --max-mape 5 \
		--model-out _build/model-smoke.json
	dune exec bin/psbox_sim.exe -- model-check --perturb 10 --expect-drift \
		> /dev/null
	@echo "model-smoke: held-out MAPE within 5%, drift alarm fires under perturbation"

# Drift-inject a 12% coefficient error, run the health engine's default
# rule pack with the recalibration responder, and require: the incident
# log byte-stable across two runs, the drift incident fired and the model
# hot-swapped (--expect-heal), and the post-swap held-out MAPE back under
# the 5% gate.
health-smoke:
	dune exec bin/psbox_sim.exe -- health-check --perturb 12 --expect-heal \
		--max-mape 5 --health-out _build/health-smoke-1.json
	dune exec bin/psbox_sim.exe -- health-check --perturb 12 \
		--health-out _build/health-smoke-2.json
	cmp _build/health-smoke-1.json _build/health-smoke-2.json
	@echo "health-smoke: drift fired, model hot-swapped, post-swap MAPE < 5%, log byte-stable"

# Fast end-to-end confidence: full build, the whole test suite, one reduced
# experiment driven through the real CLI, a validated trace export, a
# bit-exactly conserved joule audit, and heap/wheel output equality.
smoke:
	dune build
	dune runtest
	dune exec bin/psbox_sim.exe -- run fig3
	$(MAKE) trace-smoke
	$(MAKE) audit-smoke
	$(MAKE) sched-smoke
	$(MAKE) fleet-smoke
	$(MAKE) model-smoke
	$(MAKE) health-smoke
	dune exec bench/diff.exe

clean:
	dune clean
