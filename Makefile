# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --micro-only --json

# Fast end-to-end confidence: full build, the whole test suite, and one
# reduced experiment driven through the real CLI.
smoke:
	dune build
	dune runtest
	dune exec bin/psbox_sim.exe -- run fig3

clean:
	dune clean
