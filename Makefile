# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json bench-diff smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --micro-only --json

# Compare the latest two BENCH_<date>.json snapshots; fails on a >20%
# regression. A no-op (exit 0) with fewer than two snapshots.
bench-diff:
	dune exec bench/diff.exe

# Fast end-to-end confidence: full build, the whole test suite, and one
# reduced experiment driven through the real CLI.
smoke:
	dune build
	dune runtest
	dune exec bin/psbox_sim.exe -- run fig3
	dune exec bench/diff.exe

clean:
	dune clean
