(* Power debugging: mapping timestamped psbox samples to software phases.

   The motivation of §2.1: apps need power at fine temporal granularity to
   attribute it to short-lived activities. Every psbox reading carries a
   standard-clock timestamp, so an app can mark its phase boundaries and
   integrate its own power per phase — here a pipeline of decode, detect
   and encode phases with very different power profiles.

   Run with:  dune exec examples/power_debugging.exe *)

open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload
module Sample = Psbox_meter.Sample

type phase_mark = { name : string; start : Time.t; stop : Time.t }

let () =
  let sys = System.create ~cores:2 () in
  let app = System.new_app sys ~name:"pipeline" in
  let marks = ref [] in
  let opened = ref None in
  let mark name = W.Effect (fun () -> opened := Some (name, System.now sys)) in
  let close () =
    W.Effect
      (fun () ->
        match !opened with
        | Some (name, start) ->
            marks := { name; start; stop = System.now sys } :: !marks;
            opened := None
        | None -> ())
  in
  (* decode: light, bursty; detect: heavy twin-threaded burst (via a helper
     thread the app spawns up front); encode: medium with stalls *)
  let helper_busy = ref false in
  ignore
    (W.spawn sys ~app ~name:"helper" ~core:1
       (W.forever (fun () ->
            if !helper_busy then [ W.Compute (Time.ms 5) ]
            else [ W.Sleep (Time.ms 2) ])));
  ignore
    (W.spawn sys ~app ~name:"main" ~core:0
       (W.repeat 8 (fun _ ->
            [
              mark "decode"; W.Compute (Time.ms 4); W.Sleep (Time.ms 4); close ();
              mark "detect";
              W.Effect (fun () -> helper_busy := true);
              W.Compute (Time.ms 12);
              W.Effect (fun () -> helper_busy := false);
              close ();
              mark "encode"; W.Compute (Time.ms 6); W.Sleep (Time.ms 2); close ();
            ])));
  System.start sys;
  let box = Psbox.create sys ~app:app.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.enter box;
  W.run_until_idle sys ~apps:[ app ] ~timeout:(Time.sec 5);
  let samples = Psbox.sample box in
  Psbox.leave box;

  (* Fold the timestamped samples into per-phase energy. *)
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun m ->
      let window = Sample.between samples ~from:m.start ~until:m.stop in
      let mj = Sample.energy_mj window in
      let dur, acc =
        match Hashtbl.find_opt tbl m.name with Some x -> x | None -> (0.0, 0.0)
      in
      Hashtbl.replace tbl m.name
        (dur +. Time.to_ms_f (m.stop - m.start), acc +. mj))
    !marks;
  Printf.printf "%-8s %10s %12s %10s\n" "phase" "time" "energy" "mean power";
  List.iter
    (fun name ->
      match Hashtbl.find_opt tbl name with
      | Some (ms, mj) ->
          Printf.printf "%-8s %7.1f ms %9.2f mJ %7.2f W\n" name ms mj (mj /. ms)
      | None -> ())
    [ "decode"; "detect"; "encode" ];
  Printf.printf
    "\nthe detect phase lights up both cores (high power); decode/encode are \
     single-core with stalls — visible only because samples are timestamped \
     against the app's own clock.\n";
  System.shutdown sys
