examples/quickstart.ml: Array Format Printf Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_meter Psbox_workloads Time
