examples/sidechannel_demo.mli:
