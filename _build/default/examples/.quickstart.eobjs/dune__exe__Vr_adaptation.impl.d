examples/vr_adaptation.ml: Array Format List Printf Psbox_core Psbox_engine Psbox_kernel Psbox_workloads Stats Time
