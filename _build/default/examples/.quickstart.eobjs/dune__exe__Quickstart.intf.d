examples/quickstart.mli:
