examples/phone_hud.mli:
