examples/power_debugging.ml: Hashtbl List Printf Psbox_core Psbox_engine Psbox_kernel Psbox_meter Psbox_workloads Time
