examples/offload_decision.ml: Printf Psbox_core Psbox_engine Psbox_kernel Psbox_workloads Time
