examples/power_debugging.mli:
