examples/vr_adaptation.mli:
