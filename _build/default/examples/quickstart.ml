(* Quickstart: the paper's Listing 1, end to end.

   Builds a two-core machine, runs a power-aware app next to a noisy
   neighbour, and shows the psbox API: create, enter, sample, read, leave.

   Run with:  dune exec examples/quickstart.exe *)

open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload

let () =
  (* A dual-core machine (the paper's platform (a), CPU only). *)
  let sys = System.create ~cores:2 () in

  (* Our power-aware app: bursts of compute with small stalls. *)
  let me = System.new_app sys ~name:"me" in
  ignore
    (W.spawn sys ~app:me ~name:"worker" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 8); W.Sleep (Time.ms 2) ])));

  (* A noisy neighbour we do not control. *)
  let neighbour = System.new_app sys ~name:"neighbour" in
  ignore
    (W.spawn sys ~app:neighbour ~name:"noise" ~core:1
       (W.forever (fun () -> [ W.Compute (Time.ms 30); W.Sleep (Time.ms 10) ])));

  System.start sys;
  System.run_for sys (Time.ms 200);

  (* Listing 1: create a power sandbox bound to the CPU ... *)
  let box = Psbox.create sys ~app:me.System.app_id ~hw:[ Psbox.Cpu ] in

  (* ... enter it ... *)
  Psbox.enter box;
  System.run_for sys (Time.ms 500);

  (* ... continuous collection of power samples (timestamped, 10 us) ... *)
  let samples = Psbox.sample box in
  Printf.printf "collected %d timestamped samples; first: %s\n"
    (Array.length samples)
    (Format.asprintf "%a" Psbox_meter.Sample.pp samples.(0));

  (* ... one-time query of accumulated energy ... *)
  let mj = Psbox.read_mj box in
  Printf.printf "my energy over 500 ms in the box: %.1f mJ (%.2f W average)\n"
    mj
    (mj /. 500.0);

  (* ... and leave. *)
  Psbox.leave box;

  (* The neighbour's burning never polluted the observation: it appears as
     idle power. Compare with the raw rail over the same window: *)
  let rail = Psbox_hw.Cpu.rail (System.cpu sys) in
  Printf.printf "raw shared-rail draw right now: %.2f W (both apps entangled)\n"
    (Psbox_hw.Power_rail.power rail);
  Printf.printf
    "exclusive hardware time granted to my psbox: %.0f ms of balloons\n"
    (Psbox.exclusive_us box /. 1e3);
  System.shutdown sys;
  print_endline "quickstart ok"
