(* The paper's end-to-end use case (§6.4): a VR app whose rendering task
   periodically observes its own power through a psbox and trades fidelity
   for power, while a gesture-recognition task with input-dependent load
   runs alongside.

   Run with:  dune exec examples/vr_adaptation.exe *)

open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Vr_app = Psbox_workloads.Vr_app

let () =
  let budget_w = 0.45 in
  let sys = System.create ~cores:2 ~cpu_idle_w:0.06 () in

  (* The gesture task: processes camera frames; its cost follows the number
     of hand contours in the input, so its power impact varies. *)
  let vr = System.new_app sys ~name:"vr" in
  ignore (Vr_app.gesture sys ~frames:1_000_000 vr);

  (* The rendering task: animates water waves at a fidelity level it adapts
     from its psbox observations ("pay as you go": it enters the box for a
     short observation window each cycle and leaves again). *)
  let render = System.new_app sys ~name:"render" in
  let box = Psbox.create sys ~app:render.System.app_id ~hw:[ Psbox.Cpu ] in
  let ctl, _task = Vr_app.rendering sys render ~psbox:box ~budget_w ~frames:1_000_000 () in

  System.start sys;
  Printf.printf "budget: %.0f mW; fidelity starts at %d\n\n" (budget_w *. 1e3)
    (Vr_app.fidelity ctl);
  Printf.printf "%-10s %-14s %-8s\n" "time" "observed" "fidelity";
  for _ = 1 to 16 do
    System.run_for sys (Time.ms 500);
    match List.rev (Vr_app.observations ctl) with
    | (t, w, fid) :: _ ->
        Printf.printf "%-10s %8.0f mW    %d\n"
          (Format.asprintf "%a" Time.pp t)
          (w *. 1e3) fid
    | [] -> ()
  done;
  let watts = List.map (fun (_, w, _) -> w) (Vr_app.observations ctl) in
  let arr = Array.of_list watts in
  Printf.printf
    "\nover the run: mean %.0f mW, max %.0f mW — the controller holds the \
     budget without ever being misled by the gesture task's power.\n"
    (Stats.mean arr *. 1e3)
    (Stats.max arr *. 1e3);
  System.shutdown sys
