(* The power side channel of §2.5, and psbox closing it.

   A victim browser opens one of ten websites; an attacker app running a
   light GPU workload watches power and infers the site with a DTW
   nearest-neighbour classifier. Without psbox the attacker effectively
   observes the shared GPU rail; with psbox as the only way to observe
   power it sees just its own sandboxed view.

   Run with:  dune exec examples/sidechannel_demo.exe *)

module Sidechan = Psbox_experiments.Sidechan
module Websites = Psbox_workloads.Websites

let () =
  print_endline "training the attacker on solo traces of 10 sites...";
  let report, r = Sidechan.run ~trials_per_site:3 () in
  Psbox_experiments.Report.print report;
  Printf.printf
    "\nsummary: the attacker identifies the victim's website %.0f%% of the \
     time from shared power (%.1fx better than guessing), but only %.0f%% \
     from inside its own psbox — the victim's GPU activity is masked to \
     idle power.\n"
    (r.Sidechan.success_no_psbox *. 100.0)
    (r.Sidechan.success_no_psbox /. r.Sidechan.random_guess)
    (r.Sidechan.success_psbox *. 100.0)
