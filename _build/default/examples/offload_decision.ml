(* Comparative power drives actions (§2.1): a MAUI/CloneCloud-style
   offloading decision made from psbox observations.

   The app can process a work item locally (CPU burst) or offload it over
   WiFi (small upload, remote compute, download the result). It measures the
   energy of each strategy inside its psbox — bound to CPU *and* WiFi, so
   both verticals are covered — then commits to the cheaper one. Because the
   observations are insulated, the decision holds even while a noisy
   neighbour hammers the CPU.

   Run with:  dune exec examples/offload_decision.exe *)

open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload

type strategy = Local | Offload

let () =
  let sys = System.create ~cores:2 ~wifi:true () in
  let app = System.new_app sys ~name:"worker" in
  let items_done = ref 0 in
  let strategy = ref Local in
  (* one work item under each strategy *)
  let item () =
    match !strategy with
    | Local ->
        [ W.Compute (Time.ms 24); W.Effect (fun () -> incr items_done) ]
    | Offload ->
        [
          W.Compute (Time.ms 2) (* serialize *);
          W.Request
            { socket = 1; tx_bytes = 30_000; rx_bytes = 4_000; rtt = Time.ms 35 };
          W.Compute (Time.ms 1) (* deserialize *);
          W.Effect (fun () -> incr items_done);
        ]
  in
  ignore (W.spawn sys ~app ~name:"worker" ~core:0 (W.forever item));

  (* a noisy neighbour that would wreck a naive shared-rail measurement *)
  let noisy = System.new_app sys ~name:"noisy" in
  ignore
    (W.spawn sys ~app:noisy ~name:"n" ~core:1
       (W.forever (fun () -> [ W.Compute (Time.ms 30); W.Sleep (Time.ms 5) ])));

  System.start sys;
  System.run_for sys (Time.ms 300);

  let box = Psbox.create sys ~app:app.System.app_id ~hw:[ Psbox.Cpu; Psbox.Wifi ] in

  (* measure energy-per-item for a strategy over a short psbox session *)
  let measure s =
    strategy := s;
    System.run_for sys (Time.ms 100) (* flush the pipeline *);
    Psbox.enter box;
    let n0 = !items_done in
    let t0 = System.now sys in
    System.run_for sys (Time.sec 2);
    let mj = Psbox.read_mj box in
    let items = !items_done - n0 in
    Psbox.leave box;
    let per_item = if items > 0 then mj /. float_of_int items else infinity in
    Printf.printf "%-8s %3d items in %.1fs, %7.1f mJ total -> %6.2f mJ/item\n"
      (match s with Local -> "local" | Offload -> "offload")
      items
      (Time.to_sec_f (System.now sys - t0))
      mj per_item;
    per_item
  in
  print_endline "measuring both strategies inside the psbox:";
  let local_cost = measure Local in
  let offload_cost = measure Offload in
  let winner = if local_cost <= offload_cost then Local else Offload in
  strategy := winner;
  Printf.printf "\ncommitting to %s (%.2f vs %.2f mJ/item)\n"
    (match winner with Local -> "LOCAL compute" | Offload -> "OFFLOAD")
    local_cost offload_cost;

  (* run at full speed outside the box; the decision remains valid because
     the vertical environment was preserved *)
  let n0 = !items_done in
  System.run_for sys (Time.sec 4);
  Printf.printf "ran outside the psbox at full speed: %d items in 4 s\n"
    (!items_done - n0);
  System.shutdown sys
