(* A phone-flavoured scenario beyond the paper's prototypes: a navigation
   app holds a psbox over CPU + GPU + WiFi + display + GPS at once, watches
   a "sustained high power" event through a sensor hub (the §8 offloading
   story), and reacts by dimming its map surface.

   Run with:  dune exec examples/phone_hud.exe *)

open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Power_events = Psbox_core.Power_events
module Display = Psbox_hw.Display
module Gps = Psbox_hw.Gps
module Sensor_hub = Psbox_meter.Sensor_hub
module W = Psbox_workloads.Workload

let () =
  let sys = System.phone () in
  let nav = System.new_app sys ~name:"nav" in
  let downloader = System.new_app sys ~name:"downloader" in

  (* The navigation app: periodic route computation + map rendering. *)
  ignore
    (W.spawn sys ~app:nav ~name:"route" ~core:0
       (W.forever (fun () ->
            [
              W.Compute (Time.ms 6);
              W.Gpu_batch [ W.spec ~kind:"map-tile" ~work_s:0.004 ~units:2 () ];
              W.Sleep (Time.ms 20);
            ])));
  Gps.subscribe (System.gps sys) ~app:nav.System.app_id;
  let brightness = ref 0.9 in
  let redraw () =
    Display.set_surface (System.display sys) ~app:nav.System.app_id
      ~pixels:1_800_000 ~luminance:!brightness
  in
  redraw ();

  (* A background bulk download competing for the NIC and the display. *)
  ignore (Psbox_workloads.Wifi_apps.wget sys ~kb:1_000_000 downloader);
  Display.set_surface (System.display sys) ~app:downloader.System.app_id
    ~pixels:200_000 ~luminance:1.0;

  System.start sys;
  System.run_for sys (Time.ms 200);

  (* One psbox over the app's whole vertical slice. *)
  let box =
    Psbox.create sys ~app:nav.System.app_id
      ~hw:[ Psbox.Cpu; Psbox.Gpu; Psbox.Wifi; Psbox.Display; Psbox.Gps ]
  in
  Psbox.enter box;

  (* A sensor hub evaluates the app's power predicate off the main CPU. *)
  let hub = Sensor_hub.create (System.sim sys) () in
  let dims = ref 0 in
  let sub =
    Power_events.subscribe ~hub sys box
      ~predicate:(Power_events.Above { watts = 1.2; lasting = Time.ms 15 })
      (fun _t ->
        if !brightness > 0.4 then begin
          brightness := !brightness -. 0.1;
          incr dims;
          redraw ()
        end)
  in

  let t0 = System.now sys in
  for i = 1 to 8 do
    System.run_for sys (Time.sec 1);
    let mj = Psbox.read_mj box in
    Printf.printf
      "t=%ds  my power so far: %7.1f mJ (%.2f W avg)  brightness %.1f  dims %d\n"
      i mj
      (mj /. 1e3 /. Time.to_sec_f (System.now sys - t0))
      !brightness !dims
  done;

  Printf.printf
    "\nGPS cold start, map tiles, my own WiFi and display pixels are all in \
     the observation; the downloader's transfer and its status-bar pixels \
     are not.\n";
  Printf.printf "sensor hub processed %d samples at %.1f mJ total\n"
    (Sensor_hub.processed hub)
    (Sensor_hub.energy_j hub ~from:t0 ~until:(System.now sys) *. 1e3);
  Power_events.cancel sub;
  Psbox.leave box;
  System.shutdown sys
