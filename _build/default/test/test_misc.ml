(* LTE model, report rendering, and API cross-consistency tests. *)
open Psbox_engine
module Lte = Psbox_hw.Lte
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload
module Report = Psbox_experiments.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float e = Alcotest.(check (float e))

(* ---- LTE ------------------------------------------------------------ *)

let test_lte_rrc_machine () =
  let sim = Sim.create () in
  let r = Lte.create sim () in
  check_bool "idle" true (Lte.state r = Lte.Idle);
  let sent = ref false in
  Lte.send r ~app:1 ~bytes:10_000 ~on_sent:(fun () -> sent := true);
  check_bool "promoting" true (Lte.state r = Lte.Promoting);
  Sim.run_until sim (Time.ms 2_500);
  check_bool "dch after promotion" true (Lte.state r = Lte.Dch);
  check_bool "transfer done" true !sent;
  check_int "bytes" 10_000 (Lte.sent_bytes r ~app:1);
  (* the tail: DCH for 5 s, FACH for 12 s, then idle — all network-timed *)
  Sim.run_until sim (Time.sec 8);
  check_bool "fach tail" true (Lte.state r = Lte.Fach);
  Sim.run_until sim (Time.sec 25);
  check_bool "idle again" true (Lte.state r = Lte.Idle)

let test_lte_power_levels () =
  let sim = Sim.create () in
  let r = Lte.create sim () in
  check_float 1e-9 "idle power" 0.02 (Psbox_hw.Power_rail.power (Lte.rail r));
  Lte.send r ~app:1 ~bytes:1_000 ~on_sent:(fun () -> ());
  check_float 1e-9 "promotion power" 0.45 (Psbox_hw.Power_rail.power (Lte.rail r));
  Sim.run_until sim (Time.ms 2_500);
  check_float 1e-9 "dch power" 1.0 (Psbox_hw.Power_rail.power (Lte.rail r))

let test_lte_traffic_holds_state () =
  let sim = Sim.create () in
  let r = Lte.create sim () in
  (* chatter every 3 s keeps the radio out of idle indefinitely *)
  let rec ping n =
    if n > 0 then
      Lte.send r ~app:2 ~bytes:500 ~on_sent:(fun () ->
          ignore (Sim.schedule_after sim (Time.sec 3) (fun () -> ping (n - 1))))
  in
  ping 10;
  Sim.run_until sim (Time.sec 30);
  check_bool "never idle under chatter" true (Lte.state r <> Lte.Idle);
  check_int "all pings sent" 5_000 (Lte.sent_bytes r ~app:2)

let test_lte_swing_demonstrated () =
  let _, res = Psbox_experiments.Lte_case.run () in
  check_bool
    (Printf.sprintf "uncontrollable state swings the cost (%.1f%%)"
       res.Psbox_experiments.Lte_case.swing_pct)
    true
    (Float.abs res.Psbox_experiments.Lte_case.swing_pct > 15.0)

(* ---- Report rendering ------------------------------------------------ *)

let render r = Format.asprintf "%a" Report.render r

(* substring search *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let test_report_table_renders () =
  let r =
    {
      Report.id = "x";
      title = "demo";
      items =
        [
          Report.table ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ];
          Report.Text "note";
        ];
    }
  in
  let s = render r in
  check_bool "has title" true (contains s "== x: demo ==");
  check_bool "has header row" true (contains s "| a   | bb |");
  check_bool "has data" true (contains s "| 333 | 4  |");
  check_bool "has note" true (contains s "note")

let test_report_chart_renders () =
  let series =
    {
      Report.s_name = "power";
      s_points = List.init 100 (fun i -> (float_of_int i /. 100.0, sin (float_of_int i)));
      s_unit = "W";
    }
  in
  let r =
    { Report.id = "c"; title = "chart"; items = [ Report.chart ~label:"L" [ series ] ] }
  in
  let s = render r in
  check_bool "sparkline present" true (contains s "power");
  check_bool "range present" true (contains s "W over")

let test_report_series_of_samples_downsamples () =
  let samples =
    Array.init 10_000 (fun i ->
        Psbox_meter.Sample.make (i * 1000) (float_of_int (i mod 5)))
  in
  let s = Report.series_of_samples ~name:"s" samples in
  check_bool "downsampled" true (List.length s.Report.s_points <= 240)

(* ---- API cross-consistency ------------------------------------------ *)

(* read_mj (exact integration) and sample (resampled train) must agree. *)
let test_read_and_sample_agree () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 7); W.Sleep (Time.ms 3) ])));
  let b = System.new_app sys ~name:"b" in
  ignore
    (W.spawn sys ~app:b ~name:"t" ~core:1
       (W.forever (fun () -> [ W.Compute (Time.ms 9); W.Sleep (Time.ms 2) ])));
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.enter box;
  System.run_for sys (Time.sec 1);
  let exact = Psbox.read_mj box in
  let sampled = Psbox_meter.Sample.energy_mj (Psbox.sample box) in
  check_bool
    (Printf.sprintf "agree within 2%% (%.1f vs %.1f)" exact sampled)
    true
    (Float.abs (exact -. sampled) /. exact < 0.02);
  Psbox.leave box;
  System.shutdown sys

let suite =
  [
    ("lte rrc machine", `Quick, test_lte_rrc_machine);
    ("lte power levels", `Quick, test_lte_power_levels);
    ("lte traffic holds state", `Quick, test_lte_traffic_holds_state);
    ("lte swing demonstrated", `Quick, test_lte_swing_demonstrated);
    ("report table renders", `Quick, test_report_table_renders);
    ("report chart renders", `Quick, test_report_chart_renders);
    ("report downsamples samples", `Quick, test_report_series_of_samples_downsamples);
    ("read and sample agree", `Quick, test_read_and_sample_agree);
  ]
