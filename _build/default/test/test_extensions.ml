(* Tests for the §7/§8 extensions: OLED display, GPS, sensor hub,
   app-defined power events, and the ablation switches. *)
open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Power_events = Psbox_core.Power_events
module Display = Psbox_hw.Display
module Gps = Psbox_hw.Gps
module Sensor_hub = Psbox_meter.Sensor_hub
module Sample = Psbox_meter.Sample
module W = Psbox_workloads.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float e = Alcotest.(check (float e))

(* ---- Display ------------------------------------------------------- *)

let test_display_attribution_exact () =
  let sim = Sim.create () in
  let d = Display.create sim ~base_w:0.2 ~w_per_mnit_pixel:0.4 () in
  check_float 1e-9 "off" 0.0 (Psbox_hw.Power_rail.power (Display.rail d));
  Display.set_surface d ~app:1 ~pixels:1_000_000 ~luminance:0.5;
  Display.set_surface d ~app:2 ~pixels:1_000_000 ~luminance:1.0;
  (* emission: 0.2 + 0.4; base 0.2 split evenly by pixels *)
  check_float 1e-9 "panel total" 0.8 (Psbox_hw.Power_rail.power (Display.rail d));
  check_float 1e-9 "app1 share" 0.3 (Display.app_power_w d ~app:1);
  check_float 1e-9 "app2 share" 0.5 (Display.app_power_w d ~app:2);
  (* attribution is exact: shares sum to the panel *)
  check_float 1e-9 "conservation" 0.8
    (Display.app_power_w d ~app:1 +. Display.app_power_w d ~app:2);
  Display.remove_surface d ~app:2;
  check_float 1e-9 "app2 gone" 0.0 (Display.app_power_w d ~app:2);
  check_float 1e-9 "app1 now carries the base" 0.4 (Display.app_power_w d ~app:1)

let test_display_no_entanglement () =
  (* app1's attributed power must not change when app2 appears — the §7
     claim that per-pixel attribution needs no balloons *)
  let sim = Sim.create () in
  let d = Display.create sim () in
  Display.set_surface d ~app:1 ~pixels:500_000 ~luminance:0.8;
  let alone = Display.app_power_w d ~app:1 in
  Display.set_surface d ~app:2 ~pixels:800_000 ~luminance:0.3;
  let co = Display.app_power_w d ~app:1 in
  (* the emission term is untouched; only the base share is reapportioned
     by pixels (the attribution policy), and exactly so *)
  let base_change = 0.25 *. (1.0 -. (500_000.0 /. 1_300_000.0)) in
  check_float 1e-9 "only the base share moved" base_change (alone -. co)

let test_display_validation () =
  let sim = Sim.create () in
  let d = Display.create sim ~width:100 ~height:100 () in
  Alcotest.check_raises "too many pixels"
    (Invalid_argument "Display.set_surface: pixels out of range") (fun () ->
      Display.set_surface d ~app:1 ~pixels:10_001 ~luminance:0.5);
  Alcotest.check_raises "bad luminance"
    (Invalid_argument "Display.set_surface: luminance out of range") (fun () ->
      Display.set_surface d ~app:1 ~pixels:10 ~luminance:1.5)

(* ---- GPS ----------------------------------------------------------- *)

let test_gps_lifecycle () =
  let sim = Sim.create () in
  let g = Gps.create sim ~cold_start:(Time.sec 2) () in
  check_bool "off" true (Gps.state g = Gps.Off);
  Gps.subscribe g ~app:1;
  check_bool "acquiring" true (Gps.state g = Gps.Acquiring);
  check_float 1e-9 "acquire power" 0.18 (Psbox_hw.Power_rail.power (Gps.rail g));
  Sim.run_until sim (Time.sec 3);
  check_bool "tracking" true (Gps.has_fix g);
  check_float 1e-9 "track power" 0.09 (Psbox_hw.Power_rail.power (Gps.rail g));
  (* a second subscriber joins the live fix at no extra power *)
  Gps.subscribe g ~app:2;
  check_float 1e-9 "no extra power" 0.09 (Psbox_hw.Power_rail.power (Gps.rail g));
  check_int "two subscribers" 2 (Gps.subscribers g);
  Gps.unsubscribe g ~app:1;
  check_bool "still tracking" true (Gps.has_fix g);
  Gps.unsubscribe g ~app:2;
  check_bool "off after last" true (Gps.state g = Gps.Off)

let test_gps_per_app_view_masks_others () =
  let sim = Sim.create () in
  let g = Gps.create sim ~cold_start:(Time.ms 100) () in
  (* app 2 never subscribes: its view must stay at off power even while
     app 1 drives the receiver hot *)
  let spy = Gps.app_rail g ~app:2 in
  Gps.subscribe g ~app:1;
  Sim.run_until sim (Time.sec 1);
  check_float 1e-9 "spy sees nothing" 0.002 (Psbox_hw.Power_rail.power spy);
  (* and once app 2 subscribes, it sees the live (already tracking) power
     with no cold-start reconstruction *)
  Gps.subscribe g ~app:2;
  check_float 1e-9 "subscriber sees tracking" 0.09 (Psbox_hw.Power_rail.power spy)

let test_gps_psbox_binding () =
  let sys = System.phone () in
  let a = System.new_app sys ~name:"nav" in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.forever (fun () -> [ W.Sleep (Time.ms 50) ])));
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Gps ] in
  Psbox.enter box;
  Psbox_hw.Gps.subscribe (System.gps sys) ~app:a.System.app_id;
  System.run_for sys (Time.sec 10);
  let mj = Psbox.read_mj box in
  (* ~8 s acquiring at 0.18 W + ~2 s tracking at 0.09 W ~ 1.6 J *)
  check_bool (Printf.sprintf "gps energy observed (%.0f mJ)" mj) true
    (mj > 1_300.0 && mj < 1_900.0);
  Psbox.leave box;
  System.shutdown sys

let test_display_psbox_binding () =
  let sys = System.phone () in
  let a = System.new_app sys ~name:"ui" in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.forever (fun () -> [ W.Sleep (Time.ms 50) ])));
  System.start sys;
  let d = System.display sys in
  Display.set_surface d ~app:a.System.app_id ~pixels:2_000_000 ~luminance:0.5;
  (* a second app lights pixels too; it must not show in a's view *)
  Display.set_surface d ~app:999 ~pixels:73_600 ~luminance:1.0;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Display ] in
  Psbox.enter box;
  System.run_for sys (Time.sec 1);
  let mj = Psbox.read_mj box in
  let expect = Display.app_power_w d ~app:a.System.app_id *. 1e3 in
  check_bool
    (Printf.sprintf "display view matches exact share (%.0f vs %.0f mJ)" mj expect)
    true
    (Float.abs (mj -. expect) /. expect < 0.01);
  Psbox.leave box;
  System.shutdown sys

(* ---- Sensor hub ---------------------------------------------------- *)

let test_sensor_hub_processing () =
  let sim = Sim.create () in
  let hub = Sensor_hub.create sim ~samples_per_sec:100_000.0 () in
  let done_ = ref false in
  Sensor_hub.process hub ~samples:50_000 ~on_done:(fun () -> done_ := true);
  check_bool "busy" true (Sensor_hub.busy hub);
  check_float 1e-9 "active power" 0.013
    (Psbox_hw.Power_rail.power (Sensor_hub.rail hub));
  Sim.run_until sim (Time.ms 600);
  check_bool "half a second of work done" true !done_;
  check_int "processed" 50_000 (Sensor_hub.processed hub);
  check_bool "idle again" false (Sensor_hub.busy hub);
  (* energy: 0.5 s at 13 mW = 6.5 mJ (plus idle slivers) *)
  let j = Sensor_hub.energy_j hub ~from:0 ~until:(Time.ms 600) in
  check_bool "energy about 6.5 mJ" true (Float.abs (j -. 0.0065) < 0.0005)

let test_sensor_hub_fifo () =
  let sim = Sim.create () in
  let hub = Sensor_hub.create sim () in
  let order = ref [] in
  Sensor_hub.process hub ~samples:1000 ~on_done:(fun () -> order := 1 :: !order);
  Sensor_hub.process hub ~samples:1000 ~on_done:(fun () -> order := 2 :: !order);
  Sim.run_until sim (Time.sec 1);
  Alcotest.(check (list int)) "fifo" [ 1; 2 ] (List.rev !order)

(* ---- Power events --------------------------------------------------- *)

let mk_samples spec =
  (* spec: (ms, watts) pairs, 1 ms apart implied by consecutive entries *)
  Array.of_list (List.map (fun (ms, w) -> Sample.make (Time.ms ms) w) spec)

let test_evaluate_above () =
  let s = mk_samples [ (0, 0.1); (1, 2.0); (2, 2.0); (3, 2.0); (4, 0.1) ] in
  (match Power_events.evaluate (Above { watts = 1.0; lasting = Time.ms 2 }) s with
  | Some t -> check_int "stretch starts at 1ms" (Time.ms 1) t
  | None -> Alcotest.fail "should fire");
  check_bool "too-short stretch does not fire" true
    (Power_events.evaluate (Above { watts = 1.0; lasting = Time.ms 5 }) s = None)

let test_evaluate_below () =
  let s = mk_samples [ (0, 2.0); (1, 0.1); (2, 0.1); (3, 0.1); (4, 2.0) ] in
  check_bool "below fires" true
    (Power_events.evaluate (Below { watts = 1.0; lasting = Time.ms 2 }) s <> None)

let test_evaluate_spike () =
  let s = mk_samples [ (0, 0.3); (1, 0.32); (2, 1.5); (3, 0.4) ] in
  (match Power_events.evaluate (Spike { delta_w = 1.0; within = Time.ms 3 }) s with
  | Some t -> check_int "spike at 2ms" (Time.ms 2) t
  | None -> Alcotest.fail "spike should fire");
  check_bool "slow ramp is not a spike" true
    (Power_events.evaluate
       (Spike { delta_w = 1.0; within = Time.ms 1 })
       (mk_samples [ (0, 0.0); (2, 0.6); (4, 1.2) ])
    = None)

let test_evaluate_rising () =
  let s = mk_samples [ (0, 0.1); (1, 0.2); (2, 0.3); (3, 0.4); (4, 0.5) ] in
  check_bool "rising fires" true
    (Power_events.evaluate (Rising { lasting = Time.ms 3 }) s <> None);
  let flat = mk_samples [ (0, 0.5); (1, 0.5); (2, 0.5); (3, 0.5); (4, 0.5) ] in
  check_bool "flat is not rising" true
    (Power_events.evaluate (Rising { lasting = Time.ms 3 }) flat = None)

let test_subscription_end_to_end () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  (* bursty app: periodic high-power phases *)
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 20); W.Sleep (Time.ms 30) ])));
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.enter box;
  let hub = Sensor_hub.create (System.sim sys) () in
  let fired_at = ref [] in
  let sub =
    Power_events.subscribe ~hub sys box
      ~predicate:(Above { watts = 0.5; lasting = Time.ms 5 })
      (fun t -> fired_at := t :: !fired_at)
  in
  System.run_for sys (Time.sec 1);
  check_bool
    (Printf.sprintf "events fired (%d)" (Power_events.fired sub))
    true
    (Power_events.fired sub >= 5);
  check_bool "hub did the processing" true (Sensor_hub.processed hub > 500);
  Power_events.cancel sub;
  let n = Power_events.fired sub in
  System.run_for sys (Time.sec 1);
  check_int "no events after cancel" n (Power_events.fired sub);
  Psbox.leave box;
  System.shutdown sys

(* ---- Ablation switches ---------------------------------------------- *)

let test_ablation_confinement_direction () =
  let c = Psbox_experiments.Ablation.cpu_confinement ~seed:31 () in
  let open Psbox_experiments.Ablation in
  check_bool
    (Printf.sprintf "confinement protects the sibling (%.1f%% vs %.1f%%)"
       c.ab_sibling_delta_on c.ab_sibling_delta_off)
    true
    (c.ab_sibling_delta_off < c.ab_sibling_delta_on -. 1.0);
  check_bool "with confinement the sibling is near-unaffected" true
    (Float.abs c.ab_sibling_delta_on < 3.0)

let test_ablation_vstate_direction () =
  let v = Psbox_experiments.Ablation.state_virtualization ~seed:41 () in
  let open Psbox_experiments.Ablation in
  check_bool
    (Printf.sprintf "virtualization removes the lingering gap (%.1f%% vs %.1f%%)"
       v.ab_gap_on_pct v.ab_gap_off_pct)
    true
    (v.ab_gap_on_pct < 5.0 && v.ab_gap_off_pct > 20.0)

let suite =
  [
    ("display attribution exact", `Quick, test_display_attribution_exact);
    ("display no entanglement", `Quick, test_display_no_entanglement);
    ("display validation", `Quick, test_display_validation);
    ("gps lifecycle", `Quick, test_gps_lifecycle);
    ("gps per-app view masks others", `Quick, test_gps_per_app_view_masks_others);
    ("gps psbox binding", `Quick, test_gps_psbox_binding);
    ("display psbox binding", `Quick, test_display_psbox_binding);
    ("sensor hub processing", `Quick, test_sensor_hub_processing);
    ("sensor hub fifo", `Quick, test_sensor_hub_fifo);
    ("evaluate Above", `Quick, test_evaluate_above);
    ("evaluate Below", `Quick, test_evaluate_below);
    ("evaluate Spike", `Quick, test_evaluate_spike);
    ("evaluate Rising", `Quick, test_evaluate_rising);
    ("power events end to end", `Quick, test_subscription_end_to_end);
    ("ablation: confinement direction", `Slow, test_ablation_confinement_direction);
    ("ablation: vstate direction", `Slow, test_ablation_vstate_direction);
  ]
