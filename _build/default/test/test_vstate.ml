(* Tests for power-state virtualization. *)
open Psbox_engine
module Power_vstate = Psbox_kernel.Power_vstate
module Cpu = Psbox_hw.Cpu
module Dvfs = Psbox_hw.Dvfs
module Wifi = Psbox_hw.Wifi

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_cpu_save_restore_roundtrip () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~governor:Dvfs.Userspace ~cores:2 () in
  let v = Power_vstate.create sim (Power_vstate.Cpu_dev cpu) in
  (* the world runs hot *)
  Dvfs.set_opp (Cpu.dvfs cpu) 4;
  Power_vstate.on_balloon_start v;
  (* pristine state restored for the psbox *)
  check_int "pristine low clock" 0 (Dvfs.opp_index (Cpu.dvfs cpu));
  Power_vstate.on_balloon_stop v;
  (* world state back *)
  check_int "world restored" 4 (Dvfs.opp_index (Cpu.dvfs cpu))

let test_private_governor_ramps () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~governor:Dvfs.Userspace ~cores:2 () in
  let v = Power_vstate.create sim (Power_vstate.Cpu_dev cpu) in
  (* accumulate >50 ms of busy balloon time over several short balloons *)
  for _ = 1 to 8 do
    Power_vstate.on_balloon_start v;
    Cpu.set_core_busy cpu ~core:0 true;
    Cpu.set_core_busy cpu ~core:1 true;
    Sim.run_until sim (Sim.now sim + Time.ms 10);
    Cpu.set_core_busy cpu ~core:0 false;
    Cpu.set_core_busy cpu ~core:1 false;
    Power_vstate.on_balloon_stop v;
    Sim.run_until sim (Sim.now sim + Time.ms 5)
  done;
  check_int "private ondemand ramped to top" 4
    (Option.get (Power_vstate.saved_opp v))

let test_private_governor_decays_when_idle () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~governor:Dvfs.Userspace ~cores:2 () in
  let v = Power_vstate.create sim (Power_vstate.Cpu_dev cpu) in
  (* ramp first *)
  Power_vstate.on_balloon_start v;
  Cpu.set_core_busy cpu ~core:0 true;
  Sim.run_until sim (Sim.now sim + Time.ms 60);
  Cpu.set_core_busy cpu ~core:0 false;
  Power_vstate.on_balloon_stop v;
  let hot = Option.get (Power_vstate.saved_opp v) in
  check_int "hot" 4 hot;
  (* then stay idle inside balloons: must decay *)
  Power_vstate.on_balloon_start v;
  Sim.run_until sim (Sim.now sim + Time.ms 60);
  Power_vstate.on_balloon_stop v;
  check_bool "decayed" true (Option.get (Power_vstate.saved_opp v) < hot)

let test_device_governor_frozen_during_balloon () =
  let sim = Sim.create () in
  let cpu =
    Cpu.create sim
      ~governor:(Dvfs.Ondemand { up_threshold = 0.5; sampling = Time.ms 10 })
      ~cores:1 ()
  in
  let v = Power_vstate.create sim (Power_vstate.Cpu_dev cpu) in
  Power_vstate.on_balloon_start v;
  check_bool "frozen inside" true (Dvfs.frozen (Cpu.dvfs cpu));
  Power_vstate.on_balloon_stop v;
  check_bool "thawed outside" false (Dvfs.frozen (Cpu.dvfs cpu));
  Cpu.stop cpu

let test_nic_state_virtualized () =
  let sim = Sim.create () in
  let nic = Wifi.create sim () in
  let v = Power_vstate.create sim (Power_vstate.Wifi_dev nic) in
  (* the world is hot: high mode, awake *)
  Wifi.set_mode_adapt nic false;
  Wifi.set_tx_level nic 2;
  Wifi.restore_power_state nic { Wifi.tx_level = 2; awake = true };
  Power_vstate.on_balloon_start v;
  (* pristine: asleep at the saved (initial) level; the world's hot mode
     must not leak into the psbox *)
  check_bool "psbox does not inherit wakefulness" false (Wifi.awake nic);
  Power_vstate.on_balloon_stop v;
  check_int "world mode restored" 2 (Wifi.tx_level nic);
  check_bool "world wakefulness restored" true (Wifi.awake nic)

let test_nic_private_mode_follows_own_usage () =
  let sim = Sim.create () in
  let nic = Wifi.create sim () in
  let v = Power_vstate.create sim (Power_vstate.Wifi_dev nic) in
  (* heavy traffic inside the balloon: the psbox's saved mode rises *)
  Power_vstate.on_balloon_start v;
  for _ = 1 to 8 do
    Wifi.transmit nic (Wifi.packet ~app:1 ~socket:1 ~bytes:60_000 ())
  done;
  Sim.run_until sim (Sim.now sim + Time.ms 120);
  Power_vstate.on_balloon_stop v;
  let st = Option.get (Power_vstate.saved_nic_state v) in
  check_int "hot private mode" 2 st.Wifi.tx_level;
  check_bool "awake after own activity" true st.Wifi.awake

let suite =
  [
    ("cpu save/restore roundtrip", `Quick, test_cpu_save_restore_roundtrip);
    ("private governor ramps", `Quick, test_private_governor_ramps);
    ("private governor decays", `Quick, test_private_governor_decays_when_idle);
    ("device governor frozen in balloon", `Quick, test_device_governor_frozen_during_balloon);
    ("nic state virtualized", `Quick, test_nic_state_virtualized);
    ("nic private mode follows own usage", `Quick, test_nic_private_mode_follows_own_usage);
  ]
