(* Tests for the fair packet scheduler and its temporal balloons. *)
open Psbox_engine
module Wifi = Psbox_hw.Wifi
module Net_sched = Psbox_kernel.Net_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?virtual_macs () =
  let sim = Sim.create () in
  let nic = Wifi.create sim ?virtual_macs () in
  let d = Net_sched.create sim nic () in
  (sim, nic, d)

(* A saturating sender: resubmits a packet as soon as the last one went
   out. *)
let feeder d ~app ~bytes =
  let rec loop () =
    Net_sched.send d ~app ~socket:app ~bytes ~on_sent:(fun _ -> loop ())
  in
  loop ()

let test_send_completes () =
  let sim, _, d = mk () in
  let sent = ref 0 in
  Net_sched.send d ~app:1 ~socket:1 ~bytes:10_000 ~on_sent:(fun _ -> incr sent);
  Sim.run_until sim (Time.ms 50);
  check_int "sent" 1 !sent;
  check_int "bytes counted" 10_000 (Net_sched.sent_bytes d ~app:1)

let test_byte_fairness () =
  let sim, _, d = mk () in
  (* app 1 sends big frames, app 2 small ones: byte-fair, not frame-fair *)
  feeder d ~app:1 ~bytes:24_000;
  feeder d ~app:2 ~bytes:6_000;
  Sim.run_until sim (Time.sec 4);
  let b1 = Net_sched.sent_bytes d ~app:1 and b2 = Net_sched.sent_bytes d ~app:2 in
  check_bool
    (Printf.sprintf "byte-fair (%d vs %d)" b1 b2)
    true
    (abs (b1 - b2) * 5 < b1 + b2)

let test_balloon_exclusivity () =
  let sim, _, d = mk () in
  feeder d ~app:1 ~bytes:8_000;
  feeder d ~app:2 ~bytes:8_000;
  Sim.run_until sim (Time.ms 200);
  Net_sched.sandbox d ~app:1;
  Sim.run_until sim (Time.sec 2);
  let intervals = Net_sched.balloon_intervals d in
  check_bool "balloons formed" true (intervals <> []);
  let pkts = Net_sched.packet_log d in
  let foreign_inside =
    List.exists
      (fun (b0, b1) ->
        List.exists
          (fun p ->
            p.Wifi.app <> 1
            &&
            match (p.Wifi.air_start, p.Wifi.air_end) with
            | Some s, Some f -> min f b1 > max s b0
            | _ -> false)
          pkts)
      intervals
  in
  check_bool "no foreign frame on air inside a balloon" false foreign_inside

(* On a serialized channel, temporal balloons lose no airtime when both
   apps stay backlogged: the penalty must be (near) zero and the credits
   must track each other — no overcharging of the sandboxed app. *)
let test_lost_bytes_charged () =
  let sim, _, d = mk () in
  feeder d ~app:1 ~bytes:8_000;
  feeder d ~app:2 ~bytes:8_000;
  Net_sched.sandbox d ~app:1;
  Sim.run_until sim (Time.sec 1);
  check_bool "no phantom lost bytes" true
    (Net_sched.lost_bytes_charged d < 16_000);
  check_bool "credits track" true
    (Float.abs (Net_sched.credit d ~app:1 -. Net_sched.credit d ~app:2)
     < 32_000.0)

let test_sandboxed_absorbs_loss () =
  let sim, _, d = mk () in
  feeder d ~app:1 ~bytes:8_000;
  feeder d ~app:2 ~bytes:8_000;
  Sim.run_until sim (Time.sec 1);
  let b2_before = Net_sched.sent_bytes d ~app:2 in
  Net_sched.sandbox d ~app:1;
  Sim.run_until sim (Time.sec 3);
  let b2_rate_after = (Net_sched.sent_bytes d ~app:2 - b2_before) / 2 in
  check_bool
    (Printf.sprintf "unsandboxed keeps its share (%d vs %d)" b2_before b2_rate_after)
    true
    (float_of_int (abs (b2_rate_after - b2_before)) /. float_of_int b2_before < 0.05)

(* Foreign RX is deferred during balloons only with virtual MACs (the
   paper's §4.2/§5 limitation). *)
let test_rx_deferral_with_virtual_macs () =
  let sim, _, d = mk ~virtual_macs:true () in
  feeder d ~app:1 ~bytes:8_000;
  feeder d ~app:2 ~bytes:2_000;
  Net_sched.sandbox d ~app:1;
  Sim.run_until sim (Time.ms 300);
  (* inject a foreign RX while a balloon is open; with vMACs it must not go
     on air before the balloon closes *)
  let rec wait_for_balloon () =
    if not (Net_sched.balloon_open d) then begin
      Sim.run_until sim (Sim.now sim + Time.ms 1);
      wait_for_balloon ()
    end
  in
  wait_for_balloon ();
  let balloon_was_open_at = Sim.now sim in
  let rx_done = ref None in
  Net_sched.deliver_rx d ~app:2 ~socket:2 ~bytes:1500 ~on_rx:(fun p ->
      rx_done := p.Wifi.air_start);
  Sim.run_until sim (Sim.now sim + Time.sec 1);
  (match !rx_done with
  | Some s ->
      let inside_that_balloon =
        List.exists
          (fun (b0, b1) -> balloon_was_open_at >= b0 && s >= b0 && s < b1)
          (Net_sched.balloon_intervals d)
      in
      check_bool "foreign RX deferred out of the balloon" false inside_that_balloon
  | None -> Alcotest.fail "rx never delivered")

let test_rx_pollutes_without_virtual_macs () =
  let sim, _, d = mk ~virtual_macs:false () in
  feeder d ~app:1 ~bytes:8_000;
  Net_sched.sandbox d ~app:1;
  Sim.run_until sim (Time.ms 100);
  let rec wait_for_balloon () =
    if not (Net_sched.balloon_open d) then begin
      Sim.run_until sim (Sim.now sim + Time.ms 1);
      wait_for_balloon ()
    end
  in
  wait_for_balloon ();
  let rx_started = ref None in
  Net_sched.deliver_rx d ~app:2 ~socket:2 ~bytes:200 ~on_rx:(fun p ->
      rx_started := p.Wifi.air_start);
  Sim.run_until sim (Sim.now sim + Time.ms 500);
  check_bool "foreign RX was received (not deferred)" true (!rx_started <> None)

let test_own_rx_metered_in_balloon () =
  let sim, _, d = mk () in
  feeder d ~app:1 ~bytes:8_000;
  feeder d ~app:2 ~bytes:8_000;
  Net_sched.sandbox d ~app:1;
  Sim.run_until sim (Time.ms 100);
  let rx = ref None in
  Net_sched.deliver_rx d ~app:1 ~socket:1 ~bytes:3_000 ~on_rx:(fun p ->
      rx := p.Wifi.air_start);
  Sim.run_until sim (Sim.now sim + Time.sec 1);
  (match !rx with
  | Some s ->
      let inside =
        List.exists
          (fun (b0, b1) -> s >= b0 && s <= b1)
          (Net_sched.balloon_intervals d)
      in
      check_bool "own RX lands inside a balloon" true inside
  | None -> Alcotest.fail "own rx never delivered")

let suite =
  [
    ("send completes", `Quick, test_send_completes);
    ("byte fairness", `Quick, test_byte_fairness);
    ("balloon exclusivity", `Quick, test_balloon_exclusivity);
    ("lost bytes charged", `Quick, test_lost_bytes_charged);
    ("unsandboxed keeps its share", `Quick, test_sandboxed_absorbs_loss);
    ("rx deferral with virtual MACs", `Quick, test_rx_deferral_with_virtual_macs);
    ("rx not deferred without virtual MACs", `Quick, test_rx_pollutes_without_virtual_macs);
    ("own rx metered in balloon", `Quick, test_own_rx_metered_in_balloon);
  ]
