(* Tests for DTW and the side-channel attacker. *)
open Psbox_sidechannel

let check_float e = Alcotest.(check (float e))
let check_bool = Alcotest.(check bool)

let test_dtw_identity () =
  let x = [| 1.0; 2.0; 3.0; 2.0; 1.0 |] in
  check_float 1e-12 "self distance zero" 0.0 (Dtw.distance x x)

let test_dtw_symmetry () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 2.0; 2.0; 4.0; 1.0 |] in
  check_float 1e-12 "symmetric" (Dtw.distance x y) (Dtw.distance y x)

let test_dtw_shift_invariance () =
  (* DTW absorbs a time shift that pointwise distance cannot *)
  let pulse at = Array.init 30 (fun i -> if i >= at && i < at + 5 then 1.0 else 0.0) in
  let a = pulse 5 and b = pulse 12 in
  let pointwise =
    Array.fold_left ( +. ) 0.0 (Array.mapi (fun i x -> Float.abs (x -. b.(i))) a)
  in
  check_bool "dtw much smaller than pointwise" true
    (Dtw.distance a b < 0.25 *. pointwise)

let test_dtw_band_restricts () =
  let pulse at = Array.init 60 (fun i -> if i >= at && i < at + 5 then 1.0 else 0.0) in
  let a = pulse 5 and b = pulse 45 in
  check_bool "narrow band cannot absorb a big shift" true
    (Dtw.distance ~band:3 a b > Dtw.distance a b)

let test_dtw_empty () =
  check_bool "empty is infinite" true (Dtw.distance [||] [| 1.0 |] = Float.infinity)

let test_znormalize () =
  let z = Dtw.znormalize [| 2.0; 4.0; 6.0 |] in
  check_float 1e-9 "mean zero" 0.0 (Array.fold_left ( +. ) 0.0 z /. 3.0);
  let z2 = Dtw.znormalize [| 5.0; 5.0; 5.0 |] in
  check_float 1e-9 "constant maps to zeros" 0.0 z2.(0)

let test_downsample () =
  let d = Dtw.downsample [| 1.0; 3.0; 5.0; 7.0; 9.0 |] ~factor:2 in
  Alcotest.(check int) "length" 2 (Array.length d);
  check_float 1e-9 "means" 2.0 d.(0);
  check_float 1e-9 "means2" 6.0 d.(1)

let prop_dtw_nonneg =
  QCheck.Test.make ~name:"dtw distance is nonnegative" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 20) (float_range (-5.0) 5.0))
        (list_of_size Gen.(1 -- 20) (float_range (-5.0) 5.0)))
    (fun (a, b) ->
      Dtw.distance (Array.of_list a) (Array.of_list b) >= 0.0)

let sine ~freq ~n =
  Array.init n (fun i -> sin (freq *. float_of_int i) +. 1.5)

let test_attack_classifies_distinct_signals () =
  let training =
    [ ("slow", sine ~freq:0.05 ~n:500); ("mid", sine ~freq:0.2 ~n:500);
      ("fast", sine ~freq:0.7 ~n:500) ]
  in
  let model = Attack.train training ~downsample:2 () in
  Alcotest.(check string) "slow" "slow" (Attack.classify model (sine ~freq:0.06 ~n:480));
  Alcotest.(check string) "mid" "mid" (Attack.classify model (sine ~freq:0.22 ~n:520));
  Alcotest.(check string) "fast" "fast" (Attack.classify model (sine ~freq:0.65 ~n:500));
  check_float 1e-9 "success on near-copies" 1.0
    (Attack.success_rate model
       [ ("slow", sine ~freq:0.05 ~n:510); ("fast", sine ~freq:0.72 ~n:490) ])

let suite =
  [
    ("dtw identity", `Quick, test_dtw_identity);
    ("dtw symmetry", `Quick, test_dtw_symmetry);
    ("dtw shift invariance", `Quick, test_dtw_shift_invariance);
    ("dtw band restricts warping", `Quick, test_dtw_band_restricts);
    ("dtw empty input", `Quick, test_dtw_empty);
    ("znormalize", `Quick, test_znormalize);
    ("downsample", `Quick, test_downsample);
    ("attack classifies distinct signals", `Quick, test_attack_classifies_distinct_signals);
    QCheck_alcotest.to_alcotest prop_dtw_nonneg;
  ]
