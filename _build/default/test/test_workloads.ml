(* Tests for the workload DSL and the benchmark app generators. *)
open Psbox_engine
module System = Psbox_kernel.System
module W = Psbox_workloads.Workload
module Cpu_apps = Psbox_workloads.Cpu_apps
module Gpu_apps = Psbox_workloads.Gpu_apps
module Dsp_apps = Psbox_workloads.Dsp_apps
module Wifi_apps = Psbox_workloads.Wifi_apps
module Websites = Psbox_workloads.Websites
module Vr_app = Psbox_workloads.Vr_app
module Psbox = Psbox_core.Psbox

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float_gt msg lo x = check_bool (Printf.sprintf "%s (%.2f)" msg x) true (x > lo)

let test_repeat_exits () =
  let sys = System.create ~cores:1 () in
  let a = System.new_app sys ~name:"a" in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.repeat 5 (fun i -> [ W.Compute (Time.ms 1); W.Count ("i", float_of_int i) ])));
  System.start sys;
  W.run_until_idle sys ~apps:[ a ] ~timeout:(Time.sec 1);
  check_bool "exited" false (W.app_alive sys a);
  Alcotest.(check (float 1e-9)) "counted 0+1+2+3+4" 10.0 (System.counter a "i");
  System.shutdown sys

let test_effect_and_counters () =
  let sys = System.create ~cores:1 () in
  let a = System.new_app sys ~name:"a" in
  let hits = ref 0 in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.repeat 3 (fun _ -> [ W.Effect (fun () -> incr hits); W.Compute (Time.ms 1) ])));
  System.start sys;
  W.run_until_idle sys ~apps:[ a ] ~timeout:(Time.sec 1);
  check_int "effects ran" 3 !hits;
  System.shutdown sys

let test_gpu_batch_blocks_until_done () =
  let sys = System.create ~cores:1 ~gpu:true () in
  let a = System.new_app sys ~name:"a" in
  let t_done = ref Time.zero in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.repeat 1 (fun _ ->
            [
              W.Gpu_batch
                [ W.spec ~kind:"k" ~work_s:0.010 (); W.spec ~kind:"k" ~work_s:0.010 () ];
              W.Effect (fun () -> t_done := System.now sys);
            ])));
  System.start sys;
  W.run_until_idle sys ~apps:[ a ] ~timeout:(Time.sec 2);
  (* both commands (10 ms each, overlapping on 4 units) must complete
     before the effect runs; at the lowest GPU OPP they are slower *)
  check_bool "waited for the batch" true (!t_done >= Time.ms 10);
  System.shutdown sys

(* Async submission: the task proceeds at acceptance, before completion. *)
let test_gpu_async_proceeds () =
  let sys = System.create ~cores:1 ~gpu:true () in
  let a = System.new_app sys ~name:"a" in
  let t_resumed = ref Time.zero in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.repeat 1 (fun _ ->
            [
              W.Gpu_async (W.spec ~kind:"k" ~work_s:0.050 ());
              W.Effect (fun () -> t_resumed := System.now sys);
            ])));
  System.start sys;
  W.run_until_idle sys ~apps:[ a ] ~timeout:(Time.sec 1);
  (* the 50 ms command is still executing when the task resumes *)
  check_bool "resumed well before completion" true (!t_resumed < Time.ms 10);
  System.shutdown sys

let test_request_roundtrip () =
  let sys = System.bbb () in
  let a = System.new_app sys ~name:"a" in
  let t_done = ref Time.zero in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.repeat 1 (fun _ ->
            [
              W.Request { socket = 1; tx_bytes = 1000; rx_bytes = 6000; rtt = Time.ms 40 };
              W.Effect (fun () -> t_done := System.now sys);
            ])));
  System.start sys;
  W.run_until_idle sys ~apps:[ a ] ~timeout:(Time.sec 2);
  check_bool "rtt respected" true (!t_done >= Time.ms 40);
  check_bool "response received" true (!t_done < Time.ms 200);
  System.shutdown sys

let run_app sys apps = W.run_until_idle sys ~apps ~timeout:(Time.sec 30)

let test_cpu_apps_produce_work () =
  let sys = System.create ~cores:2 () in
  let b = System.new_app sys ~name:"b" in
  let c = System.new_app sys ~name:"c" in
  let d = System.new_app sys ~name:"d" in
  ignore (Cpu_apps.bodytrack sys ~frames:10 b);
  ignore (Cpu_apps.calib3d sys ~iterations:10 c);
  ignore (Cpu_apps.dedup sys ~chunks:10 d);
  System.start sys;
  run_app sys [ b; c; d ];
  check_float_gt "frames" 0.0 (System.counter b "frames");
  check_float_gt "kb" 0.0 (System.counter c "kb");
  check_float_gt "mb" 0.0 (System.counter d "mb");
  System.shutdown sys

let test_gpu_apps_produce_commands () =
  let sys = System.create ~cores:2 ~gpu:true () in
  let apps =
    [
      ("browser", fun a -> ignore (Gpu_apps.browser sys ~pages:1 a));
      ("magic", fun a -> ignore (Gpu_apps.magic sys ~frames:5 a));
      ("cube", fun a -> ignore (Gpu_apps.cube sys ~frames:5 a));
      ("triangle", fun a -> ignore (Gpu_apps.triangle sys ~batches:3 a));
    ]
  in
  let spawned = List.map (fun (n, f) -> let a = System.new_app sys ~name:n in f a; a) apps in
  System.start sys;
  run_app sys spawned;
  List.iter (fun a -> check_float_gt a.System.app_name 0.0 (System.counter a "cmds")) spawned;
  System.shutdown sys

let test_dsp_apps_produce_gflops () =
  let sys = System.create ~cores:2 ~dsp:true () in
  let s = System.new_app sys ~name:"sgemm" in
  let d = System.new_app sys ~name:"dgemm" in
  let m = System.new_app sys ~name:"monte" in
  ignore (Dsp_apps.sgemm sys ~kernels:3 s);
  ignore (Dsp_apps.dgemm sys ~kernels:2 d);
  ignore (Dsp_apps.monte sys ~kernels:5 m);
  System.start sys;
  run_app sys [ s; d; m ];
  List.iter (fun a -> check_float_gt a.System.app_name 0.0 (System.counter a "gflops")) [ s; d; m ];
  System.shutdown sys

let test_wifi_apps_move_bytes () =
  let sys = System.bbb () in
  let b = System.new_app sys ~name:"browser" in
  let s = System.new_app sys ~name:"scp" in
  let w = System.new_app sys ~name:"wget" in
  ignore (Wifi_apps.browser sys ~objects:2 b);
  ignore (Wifi_apps.scp sys ~kb:96 s);
  ignore (Wifi_apps.wget sys ~kb:96 w);
  System.start sys;
  run_app sys [ b; s; w ];
  List.iter (fun a -> check_float_gt a.System.app_name 0.0 (System.counter a "kb")) [ b; s; w ];
  System.shutdown sys

let test_websites_signatures_distinct () =
  (* two different sites must produce visibly different GPU busy time *)
  let energy site =
    let sys = System.create ~seed:33 ~cores:2 ~gpu:true () in
    let v = System.new_app sys ~name:"v" in
    let rng = Rng.create ~seed:44 in
    ignore (Websites.load_page sys v ~site ~rng);
    System.start sys;
    run_app sys [ v ];
    let dev = Psbox_kernel.Accel_driver.device (System.gpu sys) in
    let e = Psbox_hw.Accel.busy_unit_seconds dev in
    System.shutdown sys;
    e
  in
  let e_google = energy 0 and e_youtube = energy 1 in
  check_bool "distinct loads" true (e_youtube > 2.0 *. e_google)

let test_vr_adaptation_converges () =
  let sys = System.create ~cores:2 ~cpu_idle_w:0.06 () in
  let g = System.new_app sys ~name:"gesture" in
  ignore (Vr_app.gesture sys ~frames:1_000_000 g);
  let r = System.new_app sys ~name:"render" in
  let box = Psbox.create sys ~app:r.System.app_id ~hw:[ Psbox.Cpu ] in
  let ctl, _ = Vr_app.rendering sys r ~psbox:box ~budget_w:0.3 ~frames:1_000_000 () in
  System.start sys;
  System.run_for sys (Time.sec 6);
  let obs = Vr_app.observations ctl in
  check_bool "observed repeatedly" true (List.length obs >= 8);
  (* the controller must keep late observations at or under ~budget *)
  let late = List.filteri (fun i _ -> i >= List.length obs - 4) obs in
  let ok = List.for_all (fun (_, w, _) -> w < 0.45) late in
  check_bool "converged under budget" true ok;
  System.shutdown sys

let suite =
  [
    ("repeat script exits", `Quick, test_repeat_exits);
    ("effects and counters", `Quick, test_effect_and_counters);
    ("gpu batch blocks until done", `Quick, test_gpu_batch_blocks_until_done);
    ("gpu async proceeds at acceptance", `Quick, test_gpu_async_proceeds);
    ("network request roundtrip", `Quick, test_request_roundtrip);
    ("cpu apps produce work", `Quick, test_cpu_apps_produce_work);
    ("gpu apps produce commands", `Quick, test_gpu_apps_produce_commands);
    ("dsp apps produce gflops", `Quick, test_dsp_apps_produce_gflops);
    ("wifi apps move bytes", `Quick, test_wifi_apps_move_bytes);
    ("website signatures distinct", `Quick, test_websites_signatures_distinct);
    ("vr adaptation converges", `Quick, test_vr_adaptation_converges);
  ]
