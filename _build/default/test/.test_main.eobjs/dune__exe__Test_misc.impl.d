test/test_misc.ml: Alcotest Array Float Format List Printf Psbox_core Psbox_engine Psbox_experiments Psbox_hw Psbox_kernel Psbox_meter Psbox_workloads Sim String Time
