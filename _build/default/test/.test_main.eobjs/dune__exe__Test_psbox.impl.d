test/test_psbox.ml: Alcotest Array Float List Printf Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_meter Psbox_workloads Time
