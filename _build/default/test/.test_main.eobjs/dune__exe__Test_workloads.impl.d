test/test_workloads.ml: Alcotest List Printf Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_workloads Rng Time
