test/test_extensions.ml: Alcotest Array Float List Printf Psbox_core Psbox_engine Psbox_experiments Psbox_hw Psbox_kernel Psbox_meter Psbox_workloads Sim Time
