test/test_engine.ml: Alcotest Array Float Gen Heap List Option Psbox_engine QCheck QCheck_alcotest Rng Sim Stats Time Timeline Trace
