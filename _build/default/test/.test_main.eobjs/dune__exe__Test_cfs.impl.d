test/test_cfs.ml: Alcotest Cfs Entity Option Psbox_kernel Task
