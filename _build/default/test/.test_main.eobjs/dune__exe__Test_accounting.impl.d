test/test_accounting.ml: Alcotest List Psbox_accounting Psbox_engine QCheck QCheck_alcotest Time Timeline
