test/test_system.ml: Alcotest Array List Printf Psbox_core Psbox_engine Psbox_kernel Psbox_workloads Stats Time
