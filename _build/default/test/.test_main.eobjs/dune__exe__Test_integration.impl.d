test/test_integration.ml: Alcotest Float List Printf Psbox_accounting Psbox_core Psbox_engine Psbox_experiments Psbox_kernel Psbox_workloads Time
