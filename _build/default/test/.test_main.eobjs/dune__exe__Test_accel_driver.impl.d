test/test_accel_driver.ml: Alcotest Array Float List Option Printf Psbox_engine Psbox_hw Psbox_kernel Sim Stats Time
