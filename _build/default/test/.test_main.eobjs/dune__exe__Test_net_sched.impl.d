test/test_net_sched.ml: Alcotest Float List Printf Psbox_engine Psbox_hw Psbox_kernel Sim Time
