test/test_smp.ml: Alcotest Array Float List Printf Psbox_engine Psbox_kernel Psbox_workloads Time Trace
