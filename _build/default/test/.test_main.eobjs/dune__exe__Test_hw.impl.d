test/test_hw.ml: Accel Alcotest Cpu Dvfs List Option Power_rail Psbox_engine Psbox_hw Sim Time Wifi
