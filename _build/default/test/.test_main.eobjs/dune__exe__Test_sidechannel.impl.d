test/test_sidechannel.ml: Alcotest Array Attack Dtw Float Gen Psbox_sidechannel QCheck QCheck_alcotest
