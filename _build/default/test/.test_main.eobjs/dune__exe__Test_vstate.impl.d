test/test_vstate.ml: Alcotest Option Psbox_engine Psbox_hw Psbox_kernel Sim Time
