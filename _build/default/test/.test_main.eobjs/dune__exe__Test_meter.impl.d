test/test_meter.ml: Alcotest Array Clock_sync Daq Float List Model_meter Psbox_engine Psbox_hw Psbox_meter Rng Sample Sim Time
