test/test_random.ml: Array Float Lazy List Printf Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_meter Psbox_workloads QCheck QCheck_alcotest Time Trace
