(* Integration tests: the paper's headline claims, end to end, in reduced
   form. These exercise the same code paths as bench/main.exe. *)
open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload
module Split = Psbox_accounting.Split
module Cpu_apps = Psbox_workloads.Cpu_apps

let check_bool = Alcotest.(check bool)

(* Fig 3(a): two instances draw far less than 2x one instance. *)
let test_entanglement_spatial () =
  let a, _ = Psbox_experiments.Fig3.run_a ~seed:5 () in
  check_bool "naive doubling overestimates" true
    (a.Psbox_experiments.Fig3.doubled_w
     > a.Psbox_experiments.Fig3.two_instances_w *. 1.2)

(* Fig 3(b): asynchronous commands overlap. *)
let test_entanglement_async () =
  let b, _ = Psbox_experiments.Fig3.run_b ~seed:6 () in
  check_bool "commands 1 and 2 overlap" true (b.Psbox_experiments.Fig3.overlap_s > 0.001)

(* Fig 3(c): lingering DVFS state changes the same burst's energy. *)
let test_entanglement_lingering () =
  let c, _ = Psbox_experiments.Fig3.run_c ~seed:7 () in
  let open Psbox_experiments.Fig3 in
  check_bool "after-busy differs from after-idle" true
    (Float.abs (c.after_busy_mj -. c.after_idle_mj) /. c.after_idle_mj > 0.03)

(* Fig 6 (CPU row, reduced): psbox observations stay consistent across
   co-runners while usage-based accounting swings. *)
let test_fig6_cpu_shape () =
  let psbox_mj ~co =
    let sys = System.create ~seed:77 ~cores:2 () in
    let main = System.new_app sys ~name:"calib3d" in
    ignore (Cpu_apps.calib3d sys ~iterations:40 ~threads:1 main);
    if co then
      ignore
        (Cpu_apps.dedup sys ~chunks:1_000_000 ~threads:1
           (System.new_app sys ~name:"dedup"));
    let box = Psbox.create sys ~app:main.System.app_id ~hw:[ Psbox.Cpu ] in
    System.start sys;
    Psbox.enter box;
    W.run_until_idle sys ~apps:[ main ] ~timeout:(Time.sec 10);
    let mj = Psbox.read_mj box in
    Psbox.leave box;
    System.shutdown sys;
    mj
  in
  let alone = psbox_mj ~co:false and co = psbox_mj ~co:true in
  check_bool
    (Printf.sprintf "psbox consistent across co-runners (%.0f vs %.0f)" alone co)
    true
    (Float.abs (co -. alone) /. alone < 0.10)

(* Fig 8 (reduced): sandboxing one CPU app leaves siblings' throughput. *)
let test_fig8_cpu_confinement () =
  let r = Psbox_experiments.Fig8.cpu ~seed:3 () in
  let open Psbox_experiments.Fig8 in
  List.iter
    (fun i ->
      if not i.i_sandboxed then
        check_bool
          (Printf.sprintf "%s unaffected (%.1f -> %.1f)" i.i_name i.i_before
             i.i_after)
          true
          (Float.abs (i.i_after -. i.i_before) /. i.i_before < 0.08))
    r.h_instances

(* Side channel (reduced): the shared view classifies far above chance; the
   psbox view does not. *)
let test_sidechannel_closed () =
  let _, r = Psbox_experiments.Sidechan.run ~seed:19 ~trials_per_site:1 () in
  let open Psbox_experiments.Sidechan in
  check_bool
    (Printf.sprintf "attack works without psbox (%.0f%%)" (r.success_no_psbox *. 100.))
    true
    (r.success_no_psbox >= 3.0 *. r.random_guess);
  check_bool
    (Printf.sprintf "psbox closes the channel (%.0f%%)" (r.success_psbox *. 100.))
    true
    (r.success_psbox <= 2.0 *. r.random_guess)

(* Fig 7 (reduced): with psbox, no foreign DSP command overlaps the
   sandboxed app's commands. *)
let test_fig7_dsp_boundaries () =
  let _, r = Psbox_experiments.Fig7.run ~seed:9 () in
  let open Psbox_experiments.Fig7 in
  check_bool "commands overlap freely without psbox" true r.dsp_overlap_wo_psbox;
  check_bool "no overlap with psbox" false r.dsp_overlap_w_psbox;
  check_bool "balloons were used" true (r.dsp_balloon_count > 0)

(* Fig 9 (reduced): the fidelity ladder spans a wide power range. *)
let test_fig9_power_range () =
  let lo = ref infinity and hi = ref 0.0 in
  List.iter
    (fun level ->
      let sys = System.create ~seed:(17 + level) ~cores:2 ~cpu_idle_w:0.06 () in
      let vr = System.new_app sys ~name:"vr" in
      ignore (Psbox_workloads.Vr_app.gesture sys ~frames:1_000_000 vr);
      let r = System.new_app sys ~name:"render" in
      let cost = if level = 0 then 1.0 else 14.0 in
      ignore
        (W.spawn sys ~app:r ~name:"render" ~core:0
           (W.forever (fun () ->
                [
                  W.Compute (Time.of_sec_f (cost /. 1e3));
                  W.Sleep (max (Time.ms 1) (Time.ms 33 - Time.of_sec_f (cost /. 1e3)));
                ])));
      System.start sys;
      System.run_for sys (Time.ms 300);
      let box = Psbox.create sys ~app:r.System.app_id ~hw:[ Psbox.Cpu ] in
      Psbox.enter box;
      let t0 = System.now sys in
      System.run_for sys (Time.sec 2);
      let w = Psbox.read_mj box /. 1e3 /. Time.to_sec_f (System.now sys - t0) in
      lo := Float.min !lo w;
      hi := Float.max !hi w;
      Psbox.leave box;
      System.shutdown sys)
    [ 0; 4 ];
  check_bool
    (Printf.sprintf "wide power range (%.0f..%.0f mW)" (!lo *. 1e3) (!hi *. 1e3))
    true
    (!hi /. !lo > 4.0)

let suite =
  [
    ("fig3a spatial entanglement", `Quick, test_entanglement_spatial);
    ("fig3b async entanglement", `Quick, test_entanglement_async);
    ("fig3c lingering state", `Quick, test_entanglement_lingering);
    ("fig6 cpu consistency shape", `Slow, test_fig6_cpu_shape);
    ("fig8 cpu confinement", `Slow, test_fig8_cpu_confinement);
    ("sidechannel closed by psbox", `Slow, test_sidechannel_closed);
    ("fig7 dsp balloon boundaries", `Slow, test_fig7_dsp_boundaries);
    ("fig9 power range", `Slow, test_fig9_power_range);
  ]
