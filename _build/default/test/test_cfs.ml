(* Tests for the CFS runqueue and scheduling entities. *)
open Psbox_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let task ?(app = 1) ?(weight = 1024.0) name =
  Task.create ~app ~name ~weight ~program:(fun () -> Task.Exit) ()

let test_enqueue_pick_order () =
  let rq = Cfs.create ~core:0 in
  let e1 = Entity.of_task (task "a") in
  let e2 = Entity.of_task (task "b") in
  e1.Entity.vruntime <- 100.0;
  e2.Entity.vruntime <- 50.0;
  Cfs.enqueue rq e1;
  Cfs.enqueue rq e2;
  check_int "leftmost is min vruntime" e2.Entity.eid
    (Option.get (Cfs.leftmost rq)).Entity.eid;
  Cfs.dequeue rq e2;
  check_int "then the next" e1.Entity.eid
    (Option.get (Cfs.leftmost rq)).Entity.eid

let test_enqueue_idempotent () =
  let rq = Cfs.create ~core:0 in
  let e = Entity.of_task (task "a") in
  Cfs.enqueue rq e;
  Cfs.enqueue rq e;
  check_int "once" 1 (Cfs.n_queued rq);
  Cfs.dequeue rq e;
  Cfs.dequeue rq e;
  check_int "zero" 0 (Cfs.n_queued rq)

let test_charge_advances_vruntime () =
  let rq = Cfs.create ~core:0 in
  let t = task "a" in
  let e = Entity.of_task t in
  Cfs.set_curr rq (Some e);
  Cfs.charge rq e 1_000_000;
  check_float "vruntime advanced by wall time at nice0" 1_000_000.0
    e.Entity.vruntime;
  check_float "task mirror" 1_000_000.0 t.Task.vruntime

let test_charge_weighted () =
  let rq = Cfs.create ~core:0 in
  let t = task ~weight:2048.0 "heavy" in
  let e = Entity.of_task t in
  Cfs.set_curr rq (Some e);
  Cfs.charge rq e 1_000_000;
  check_float "half rate for double weight" 500_000.0 e.Entity.vruntime

let test_min_vruntime_monotonic () =
  let rq = Cfs.create ~core:0 in
  let e = Entity.of_task (task "a") in
  e.Entity.vruntime <- 500.0;
  Cfs.enqueue rq e;
  Cfs.update_min_vruntime rq;
  let m1 = Cfs.min_vruntime rq in
  Cfs.dequeue rq e;
  let e2 = Entity.of_task (task "b") in
  e2.Entity.vruntime <- 100.0;
  Cfs.enqueue rq e2;
  Cfs.update_min_vruntime rq;
  check_bool "never decreases" true (Cfs.min_vruntime rq >= m1)

let test_place_new_and_woken () =
  let rq = Cfs.create ~core:0 in
  let e0 = Entity.of_task (task "runner") in
  e0.Entity.vruntime <- 10_000_000.0;
  Cfs.enqueue rq e0;
  Cfs.update_min_vruntime rq;
  let fresh = Entity.of_task (task "fresh") in
  Cfs.place_new rq fresh;
  check_bool "fresh gets no bank" true (fresh.Entity.vruntime >= 10_000_000.0);
  let sleeper = Entity.of_task (task "sleeper") in
  sleeper.Entity.vruntime <- 0.0;
  Cfs.place_woken rq sleeper;
  check_bool "woken pulled near min" true
    (sleeper.Entity.vruntime >= 10_000_000.0 -. 1_000_000.0 -. 1.0);
  let ahead = Entity.of_task (task "ahead") in
  ahead.Entity.vruntime <- 99_000_000.0;
  Cfs.place_woken rq ahead;
  check_float "debtor keeps debt" 99_000_000.0 ahead.Entity.vruntime

let test_group_entity_pick () =
  let ge = Entity.group ~psbox_id:7 ~core:0 () in
  let g = match ge.Entity.kind with Entity.EGroup g -> g | _ -> assert false in
  let t1 = task "t1" and t2 = task "t2" in
  t1.Task.vruntime <- 10.0;
  t2.Task.vruntime <- 5.0;
  g.Entity.gtasks <- [ t1; t2 ];
  check_int "picks min-vruntime member" t2.Task.tid
    (Option.get (Entity.group_pick g)).Task.tid;
  t2.Task.state <- Task.Blocked;
  check_int "skips blocked member" t1.Task.tid
    (Option.get (Entity.group_pick g)).Task.tid;
  t1.Task.state <- Task.Blocked;
  check_bool "no runnable member" true (Entity.group_pick g = None);
  check_bool "group not runnable" false (Entity.runnable ge)

let test_entity_app_of () =
  let e1 = Entity.of_task (task ~app:3 "t") in
  check_int "task app" 3 (Entity.app_of e1);
  let e2 = Entity.group ~psbox_id:9 ~core:1 () in
  check_int "group app" 9 (Entity.app_of e2);
  check_bool "is_group" true (Entity.is_group e2);
  check_bool "task not group" false (Entity.is_group e1)

let test_requeue_after_vruntime_change () =
  let rq = Cfs.create ~core:0 in
  let e1 = Entity.of_task (task "a") and e2 = Entity.of_task (task "b") in
  e1.Entity.vruntime <- 10.0;
  e2.Entity.vruntime <- 20.0;
  Cfs.enqueue rq e1;
  Cfs.enqueue rq e2;
  e1.Entity.vruntime <- 30.0;
  Cfs.requeue rq e1;
  check_int "order follows new vruntime" e2.Entity.eid
    (Option.get (Cfs.leftmost rq)).Entity.eid;
  (* the stale key must not linger *)
  check_int "still two queued" 2 (Cfs.n_queued rq)

let suite =
  [
    ("pick order by vruntime", `Quick, test_enqueue_pick_order);
    ("enqueue idempotent", `Quick, test_enqueue_idempotent);
    ("charge advances vruntime", `Quick, test_charge_advances_vruntime);
    ("charge respects weight", `Quick, test_charge_weighted);
    ("min_vruntime monotonic", `Quick, test_min_vruntime_monotonic);
    ("wake/new placement", `Quick, test_place_new_and_woken);
    ("group entity pick", `Quick, test_group_entity_pick);
    ("entity app_of/is_group", `Quick, test_entity_app_of);
    ("requeue after vruntime change", `Quick, test_requeue_after_vruntime_change);
  ]
