(* Tests for the psbox principal itself: API semantics, insulation, masking,
   power-state virtualization. *)
open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload
module Sample = Psbox_meter.Sample

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spin sys app ~core =
  W.spawn sys ~app ~name:"spin" ~core (W.forever (fun () -> [ W.Compute (Time.ms 5) ]))

let test_api_lifecycle () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  ignore (spin sys a ~core:0);
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  check_bool "outside initially" false (Psbox.inside box);
  Alcotest.check_raises "read outside raises" Psbox.Not_in_psbox (fun () ->
      ignore (Psbox.read_mj box));
  Alcotest.check_raises "sample outside raises" Psbox.Not_in_psbox (fun () ->
      ignore (Psbox.sample box));
  Psbox.enter box;
  Psbox.enter box (* idempotent *);
  check_bool "inside" true (Psbox.inside box);
  System.run_for sys (Time.ms 100);
  check_bool "energy accumulates" true (Psbox.read_mj box > 0.0);
  Psbox.leave box;
  Psbox.leave box (* idempotent *);
  check_bool "outside" false (Psbox.inside box);
  Psbox.destroy box;
  System.shutdown sys

let test_create_validation () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  Alcotest.check_raises "empty hw"
    (Invalid_argument "Psbox.create: empty hardware set") (fun () ->
      ignore (Psbox.create sys ~app:a.System.app_id ~hw:[]));
  Alcotest.check_raises "no gpu" (Invalid_argument "Psbox.create: no GPU")
    (fun () -> ignore (Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Gpu ]));
  let b1 = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  Alcotest.check_raises "duplicate target"
    (Invalid_argument "Psbox.create: app already has a psbox on this target")
    (fun () -> ignore (Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ]));
  Psbox.destroy b1;
  (* after destroy, creation works again *)
  let b2 = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.destroy b2;
  System.shutdown sys

(* Insulation: the psbox view of an app must be (nearly) unchanged by what
   co-runners do — the headline property. *)
let test_insulation () =
  let run ~co =
    let sys = System.create ~seed:21 ~cores:2 () in
    let a = System.new_app sys ~name:"a" in
    ignore
      (W.spawn sys ~app:a ~name:"t" ~core:0
         (W.repeat 50 (fun _ -> [ W.Compute (Time.ms 5); W.Sleep (Time.ms 3) ])));
    if co then begin
      let b = System.new_app sys ~name:"b" in
      ignore (spin sys b ~core:0);
      ignore (spin sys b ~core:1)
    end;
    System.start sys;
    let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
    Psbox.enter box;
    W.run_until_idle sys ~apps:[ a ] ~timeout:(Time.sec 5);
    let mj = Psbox.read_mj box in
    Psbox.leave box;
    System.shutdown sys;
    mj
  in
  let alone = run ~co:false and co_run = run ~co:true in
  check_bool
    (Printf.sprintf "observation insulated (%.0f vs %.0f mJ)" alone co_run)
    true
    (Float.abs (co_run -. alone) /. alone < 0.12)

(* Outside the app's balloons the virtual meter reports idle power only,
   whatever the co-runners burn. *)
let test_masking () =
  let sys = System.create ~cores:2 () in
  let quiet = System.new_app sys ~name:"quiet" in
  (* the sandboxed app sleeps: it should observe pure idle power *)
  ignore
    (W.spawn sys ~app:quiet ~name:"z" ~core:0
       (W.forever (fun () -> [ W.Sleep (Time.ms 50) ])));
  let burner = System.new_app sys ~name:"burner" in
  ignore (spin sys burner ~core:0);
  ignore (spin sys burner ~core:1);
  System.start sys;
  let box = Psbox.create sys ~app:quiet.System.app_id ~hw:[ Psbox.Cpu ] in
  System.run_for sys (Time.ms 100);
  Psbox.enter box;
  System.run_for sys (Time.sec 1);
  let samples = Psbox.sample ~period:(Time.ms 1) box in
  let idle = Psbox_hw.Power_rail.idle_w (Psbox_hw.Cpu.rail (System.cpu sys)) in
  let above_idle =
    Array.exists (fun s -> s.Sample.watts > idle +. 1e-6) samples
  in
  check_bool "burner invisible: only idle power" false above_idle;
  Psbox.leave box;
  System.shutdown sys

let test_sample_timestamps () =
  let sys = System.create ~cores:1 () in
  let a = System.new_app sys ~name:"a" in
  ignore (spin sys a ~core:0);
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.enter box;
  System.run_for sys (Time.ms 10);
  let s = Psbox.sample box in
  (* default 10 us period over 10 ms -> 1001 samples, timestamped *)
  check_int "sample count" 1001 (Array.length s);
  check_bool "monotonic timestamps" true
    (Array.for_all
       (fun i -> s.(i).Sample.time < s.(i + 1).Sample.time)
       (Array.init (Array.length s - 1) (fun i -> i)));
  Psbox.leave box;
  System.shutdown sys

let test_multi_target () =
  let sys = System.am57 () in
  let a = System.new_app sys ~name:"a" in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.forever
          (fun () ->
            [
              W.Compute (Time.ms 2);
              W.Gpu_batch [ W.spec ~kind:"k" ~work_s:0.002 () ];
            ])));
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu; Psbox.Gpu ] in
  Psbox.enter box;
  System.run_for sys (Time.ms 500);
  Alcotest.(check (list bool))
    "both targets bound" [ true; true ]
    (List.map (fun t -> List.mem t (Psbox.targets box)) [ Psbox.Cpu; Psbox.Gpu ]);
  let total = Psbox.read_mj box in
  let cpu_only = Sample.energy_mj (Psbox.sample_target box Psbox.Cpu) in
  let gpu_only = Sample.energy_mj (Psbox.sample_target box Psbox.Gpu) in
  check_bool "total covers both components" true
    (Float.abs (total -. (cpu_only +. gpu_only)) /. total < 0.05);
  Psbox.leave box;
  System.shutdown sys

(* Power-state virtualization: a psbox observes the same initial hardware
   power state at every entry, regardless of what others did in between. *)
let test_no_lingering_state_across_entries () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 2); W.Sleep (Time.ms 30) ])));
  let heater = System.new_app sys ~name:"heater" in
  ignore (spin sys heater ~core:0);
  ignore (spin sys heater ~core:1);
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  (* run hot, then enter: the psbox must start from its own (pristine)
     frequency, not the heater's maxed one *)
  System.run_for sys (Time.sec 1);
  Alcotest.(check int) "heater drove the clock up" 1500
    (Psbox_hw.Cpu.freq_mhz (System.cpu sys));
  Psbox.enter box;
  System.run_for sys (Time.ms 6);
  (* during a's balloon the restored state is the pristine lowest OPP *)
  let samples = Psbox.sample ~period:(Time.ms 1) box in
  let peak = Array.fold_left (fun m s -> Float.max m s.Sample.watts) 0.0 samples in
  (* at 500 MHz one busy core draws ~0.67 W; at 1.5 GHz it would be 2.5 W *)
  check_bool
    (Printf.sprintf "first balloon at pristine clock (peak %.2f W)" peak)
    true (peak < 1.0);
  Psbox.leave box;
  System.shutdown sys

let test_exclusive_intervals_accounting () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  ignore (spin sys a ~core:0);
  System.start sys;
  let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.enter box;
  System.run_for sys (Time.sec 1);
  let excl = Psbox.exclusive_us box in
  let intervals = Psbox.exclusive_intervals box in
  let sum =
    List.fold_left (fun acc (t0, t1) -> acc +. Time.to_us_f (t1 - t0)) 0.0 intervals
  in
  check_bool "exclusive_us consistent with intervals" true
    (Float.abs (excl -. sum) < 1.0);
  check_bool "app ran most of the second" true (excl > 0.9e6);
  Psbox.leave box;
  System.shutdown sys

let suite =
  [
    ("api lifecycle", `Quick, test_api_lifecycle);
    ("create validation", `Quick, test_create_validation);
    ("insulation from co-runners", `Quick, test_insulation);
    ("masking outside balloons", `Quick, test_masking);
    ("sample timestamps at 10us", `Quick, test_sample_timestamps);
    ("multiple hardware targets", `Quick, test_multi_target);
    ("no lingering state across entries", `Quick, test_no_lingering_state_across_entries);
    ("exclusive interval accounting", `Quick, test_exclusive_intervals_accounting);
  ]
