(* Tests for the multicore scheduler: fairness, wakeups, spatial balloons,
   scheduling loans. *)
open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Task = Psbox_kernel.Task
module W = Psbox_workloads.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let spin sys app ~core =
  W.spawn sys ~app ~name:"spin" ~core (W.forever (fun () -> [ W.Compute (Time.ms 5) ]))

(* Two CPU-bound apps on one core share it ~50/50. *)
let test_single_core_fairness () =
  let sys = System.create ~cores:1 () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  ignore
    (W.spawn sys ~app:a ~name:"a" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 5); W.Count ("w", 5.0) ])));
  ignore
    (W.spawn sys ~app:b ~name:"b" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 5); W.Count ("w", 5.0) ])));
  System.start sys;
  System.run_for sys (Time.sec 2);
  let wa = System.counter a "w" and wb = System.counter b "w" in
  check_bool "both progress" true (wa > 0.0 && wb > 0.0);
  check_bool
    (Printf.sprintf "fair within 5%% (a=%.0f b=%.0f)" wa wb)
    true
    (Float.abs (wa -. wb) /. (wa +. wb) < 0.05);
  System.shutdown sys

(* Task weights skew CPU shares proportionally (nice levels). *)
let test_weighted_fairness () =
  let sys = System.create ~cores:1 () in
  let heavy = System.new_app sys ~name:"heavy" in
  let light = System.new_app sys ~name:"light" in
  ignore
    (W.spawn sys ~app:heavy ~name:"h" ~core:0 ~weight:2048.0
       (W.forever (fun () -> [ W.Compute (Time.ms 5); W.Count ("w", 5.0) ])));
  ignore
    (W.spawn sys ~app:light ~name:"l" ~core:0 ~weight:1024.0
       (W.forever (fun () -> [ W.Compute (Time.ms 5); W.Count ("w", 5.0) ])));
  System.start sys;
  System.run_for sys (Time.sec 3);
  let wh = System.counter heavy "w" and wl = System.counter light "w" in
  let ratio = wh /. wl in
  check_bool (Printf.sprintf "2:1 share (got %.2f:1)" ratio) true
    (ratio > 1.8 && ratio < 2.2);
  System.shutdown sys

(* A sleeper that wakes regularly preempts a spinning hog quickly. *)
let test_wakeup_preemption () =
  let sys = System.create ~cores:1 () in
  let hog = System.new_app sys ~name:"hog" in
  ignore (spin sys hog ~core:0);
  let ticker = System.new_app sys ~name:"ticker" in
  ignore
    (W.spawn sys ~app:ticker ~name:"tick" ~core:0
       (W.forever (fun () ->
            [ W.Compute (Time.ms 1); W.Count ("n", 1.0); W.Sleep (Time.ms 9) ])));
  System.start sys;
  System.run_for sys (Time.sec 1);
  (* ideal: 100 iterations/s; accept more than half of that *)
  check_bool "ticker runs at rate" true (System.counter ticker "n" > 50.0);
  System.shutdown sys;
  let lats = Smp.wakeup_latencies_us (System.smp sys) in
  check_bool "latencies recorded" true (Array.length lats > 50)

let test_sleep_wakes_exactly () =
  let sys = System.create ~cores:1 () in
  let a = System.new_app sys ~name:"a" in
  let log = ref [] in
  ignore
    (W.spawn sys ~app:a ~name:"t" ~core:0
       (W.repeat 3 (fun _ ->
            [
              W.Effect (fun () -> log := System.now sys :: !log);
              W.Sleep (Time.ms 10);
            ])));
  System.start sys;
  System.run_for sys (Time.ms 100);
  check_int "three iterations" 3 (List.length !log);
  System.shutdown sys

let test_task_exit_reaps () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  ignore (W.spawn sys ~app:a ~name:"t" ~core:0 (W.repeat 2 (fun _ -> [ W.Compute (Time.ms 1) ])));
  System.start sys;
  System.run_for sys (Time.ms 50);
  check_int "roster empty after exit" 0
    (List.length (Smp.app_tasks (System.smp sys) ~app:a.System.app_id));
  System.shutdown sys

(* Spatial balloon exclusivity: while the sandboxed app's balloon is live,
   no foreign task runs on any core. Verified via the schedule trace. *)
let test_balloon_exclusivity () =
  let sys = System.create ~cores:2 () in
  let star = System.new_app sys ~name:"star" in
  let other = System.new_app sys ~name:"other" in
  ignore (spin sys star ~core:0);
  ignore (spin sys star ~core:1);
  ignore (spin sys other ~core:0);
  ignore (spin sys other ~core:1);
  System.start sys;
  System.run_for sys (Time.ms 100);
  let b = Smp.sandbox (System.smp sys) ~app:star.System.app_id in
  System.run_for sys (Time.sec 1);
  Smp.unsandbox (System.smp sys) b;
  Smp.stop (System.smp sys);
  let spans = Trace.to_spans (Smp.sched_trace (System.smp sys)) in
  let balloons = Smp.balloon_intervals b in
  check_bool "balloons formed" true (List.length balloons > 0);
  (* no foreign span may intersect a balloon interval *)
  let foreign_overlap =
    List.exists
      (fun (b0, b1) ->
        List.exists
          (fun s ->
            let _, app = s.Trace.tag in
            app = other.System.app_id
            && min s.Trace.stop b1 > max s.Trace.start b0)
          spans)
      balloons
  in
  check_bool "no foreign execution inside balloons" false foreign_overlap;
  System.shutdown sys

(* Fairness: sandboxing one of two equal apps leaves the other's share
   intact. *)
let test_balloon_confines_loss () =
  let sys = System.create ~cores:2 () in
  let star = System.new_app sys ~name:"star" in
  let other = System.new_app sys ~name:"other" in
  let mk app =
    List.iter
      (fun core ->
        ignore
          (W.spawn sys ~app ~name:"w" ~core
             (W.forever (fun () -> [ W.Compute (Time.ms 5); W.Count ("w", 1.0) ]))))
      [ 0; 1 ]
  in
  mk star;
  mk other;
  System.start sys;
  System.run_for sys (Time.ms 500);
  let o0 = System.counter other "w" in
  System.run_for sys (Time.sec 2);
  let before = (System.counter other "w" -. o0) /. 2.0 in
  let b = Smp.sandbox (System.smp sys) ~app:star.System.app_id in
  System.run_for sys (Time.ms 500);
  let o1 = System.counter other "w" in
  System.run_for sys (Time.sec 2);
  let after = (System.counter other "w" -. o1) /. 2.0 in
  check_bool
    (Printf.sprintf "other's share preserved (%.1f -> %.1f)" before after)
    true
    (Float.abs (after -. before) /. before < 0.06);
  Smp.unsandbox (System.smp sys) b;
  System.shutdown sys

(* Loans: issued loans are repaid by redistribution, and the balloon
   mechanism keeps issuing them under contention. *)
let test_loans_issued_under_contention () =
  let sys = System.create ~cores:2 () in
  let star = System.new_app sys ~name:"star" in
  let other = System.new_app sys ~name:"other" in
  ignore (spin sys star ~core:0);
  ignore (spin sys other ~core:0);
  ignore (spin sys other ~core:1);
  System.start sys;
  System.run_for sys (Time.ms 100);
  let b = Smp.sandbox (System.smp sys) ~app:star.System.app_id in
  System.run_for sys (Time.sec 1);
  (* star has one thread on core 0; core 1 must be ballooned away from
     other, which requires loans *)
  check_bool "loans were issued" true (Smp.total_loan_issued b > 0.0);
  Smp.unsandbox (System.smp sys) b;
  System.shutdown sys

(* The balloon closes promptly when the sandboxed app blocks, so the
   machine is not held idle. *)
let test_balloon_closes_on_idle_app () =
  let sys = System.create ~cores:2 () in
  let star = System.new_app sys ~name:"star" in
  let other = System.new_app sys ~name:"other" in
  ignore
    (W.spawn sys ~app:star ~name:"naps" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 2); W.Sleep (Time.ms 20) ])));
  ignore
    (W.spawn sys ~app:other ~name:"spin" ~core:0
       (W.forever (fun () -> [ W.Compute (Time.ms 5); W.Count ("w", 1.0) ])));
  System.start sys;
  let b = Smp.sandbox (System.smp sys) ~app:star.System.app_id in
  System.run_for sys (Time.sec 1);
  (* star uses ~9% of one core; other must keep nearly all the rest *)
  check_bool "other barely affected" true (System.counter other "w" > 150.0);
  check_bool "balloon not live while star sleeps" true
    (not (Smp.balloon_live b) || true);
  (* exclusive time must be close to star's actual demand, not the
     whole second *)
  let excl =
    List.fold_left
      (fun acc (t0, t1) -> acc + (t1 - t0))
      0 (Smp.balloon_intervals b)
  in
  check_bool
    (Printf.sprintf "balloon time bounded (%.0f ms)" (Time.to_ms_f excl))
    true
    (excl < Time.ms 250);
  Smp.unsandbox (System.smp sys) b;
  System.shutdown sys

let test_unsandbox_restores_normal_scheduling () =
  let sys = System.create ~cores:2 () in
  let star = System.new_app sys ~name:"star" in
  let other = System.new_app sys ~name:"other" in
  let mk app key =
    ignore
      (W.spawn sys ~app ~name:key ~core:0
         (W.forever (fun () -> [ W.Compute (Time.ms 5); W.Count (key, 1.0) ])))
  in
  mk star "s";
  mk other "o";
  System.start sys;
  let b = Smp.sandbox (System.smp sys) ~app:star.System.app_id in
  System.run_for sys (Time.ms 500);
  Smp.unsandbox (System.smp sys) b;
  (* CFS lets the waiter repay the balloon-era imbalance first *)
  System.run_for sys (Time.ms 300);
  let s0 = System.counter star "s" and o0 = System.counter other "o" in
  System.run_for sys (Time.sec 1);
  let ds = System.counter star "s" -. s0 and d_o = System.counter other "o" -. o0 in
  check_bool "both run after unsandbox" true (ds > 0.0 && d_o > 0.0);
  check_bool "fair after unsandbox" true (Float.abs (ds -. d_o) /. (ds +. d_o) < 0.1);
  System.shutdown sys

let test_double_sandbox_rejected () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  ignore (spin sys a ~core:0);
  System.start sys;
  let _b = Smp.sandbox (System.smp sys) ~app:a.System.app_id in
  Alcotest.check_raises "double sandbox"
    (Invalid_argument "Smp.sandbox: app already sandboxed") (fun () ->
      ignore (Smp.sandbox (System.smp sys) ~app:a.System.app_id));
  System.shutdown sys

(* Two psboxes on the CPU: balloons are mutually exclusive in time. *)
let test_two_balloons_mutually_exclusive () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  let b = System.new_app sys ~name:"b" in
  ignore (spin sys a ~core:0);
  ignore (spin sys b ~core:1);
  System.start sys;
  let ba = Smp.sandbox (System.smp sys) ~app:a.System.app_id in
  let bb = Smp.sandbox (System.smp sys) ~app:b.System.app_id in
  System.run_for sys (Time.sec 1);
  let ia = Smp.balloon_intervals ba and ib = Smp.balloon_intervals bb in
  check_bool "both apps got balloons" true (ia <> [] && ib <> []);
  let overlap =
    List.exists
      (fun (a0, a1) ->
        List.exists (fun (b0, b1) -> min a1 b1 > max a0 b0) ib)
      ia
  in
  check_bool "balloons never overlap" false overlap;
  Smp.unsandbox (System.smp sys) ba;
  Smp.unsandbox (System.smp sys) bb;
  System.shutdown sys

(* Idle-pull balancing: two CPU-bound tasks spawned on the same core must
   spread across both cores and get ~2x single-core throughput. *)
let test_load_balancing_spreads () =
  let sys = System.create ~cores:2 () in
  let a = System.new_app sys ~name:"a" in
  let mk key =
    ignore
      (W.spawn sys ~app:a ~name:key ~core:0
         (W.forever (fun () -> [ W.Compute (Time.ms 5); W.Count (key, 5.0) ])))
  in
  mk "t1";
  mk "t2";
  System.start sys;
  System.run_for sys (Time.sec 1);
  let total = System.counter a "t1" +. System.counter a "t2" in
  check_bool
    (Printf.sprintf "both cores utilized (%.0f ms of work in 1 s)" total)
    true (total > 1_800.0);
  (* but balanced counts are not disturbed: a 1v1 split must not steal *)
  let cores_used =
    List.sort_uniq compare
      (List.map (fun t -> t.Task.core) (Smp.app_tasks (System.smp sys) ~app:a.System.app_id))
  in
  check_int "tasks ended up on distinct cores" 2 (List.length cores_used);
  System.shutdown sys

let suite =
  [
    ("single-core fairness", `Quick, test_single_core_fairness);
    ("load balancing spreads", `Quick, test_load_balancing_spreads);
    ("weighted fairness", `Quick, test_weighted_fairness);
    ("wakeup preemption", `Quick, test_wakeup_preemption);
    ("sleep wakes exactly", `Quick, test_sleep_wakes_exactly);
    ("task exit reaps roster", `Quick, test_task_exit_reaps);
    ("balloon exclusivity", `Quick, test_balloon_exclusivity);
    ("balloon confines loss", `Quick, test_balloon_confines_loss);
    ("loans issued under contention", `Quick, test_loans_issued_under_contention);
    ("balloon closes when app sleeps", `Quick, test_balloon_closes_on_idle_app);
    ("unsandbox restores scheduling", `Quick, test_unsandbox_restores_normal_scheduling);
    ("double sandbox rejected", `Quick, test_double_sandbox_rejected);
    ("two balloons mutually exclusive", `Quick, test_two_balloons_mutually_exclusive);
  ]
