(* Tests for the metering library: samples, DAQ, clock sync, model fit. *)
open Psbox_engine
open Psbox_meter

let check_float e = Alcotest.(check (float e))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_sample_energy () =
  let s =
    [|
      Sample.make 0 1.0;
      Sample.make (Time.sec 1) 3.0;
      Sample.make (Time.sec 2) 3.0;
    |]
  in
  (* rectangle rule: 1 W for 1 s + 3 W for 1 s *)
  check_float 1e-9 "energy J" 4.0 (Sample.energy_j s);
  check_float 1e-9 "energy mJ" 4000.0 (Sample.energy_mj s);
  check_float 1e-9 "mean W" 2.0 (Sample.mean_w s)

let test_sample_between () =
  let s = Array.init 10 (fun i -> Sample.make (i * 100) (float_of_int i)) in
  let w = Sample.between s ~from:250 ~until:650 in
  check_int "window" 4 (Array.length w);
  check_float 1e-9 "first" 3.0 w.(0).Sample.watts

let test_daq_capture () =
  let sim = Sim.create () in
  let rail = Psbox_hw.Power_rail.create sim ~name:"r" ~idle_w:1.0 in
  Sim.run_until sim (Time.ms 5);
  Psbox_hw.Power_rail.set_power rail 2.0;
  Sim.run_until sim (Time.ms 10);
  let daq = Daq.create ~rate_hz:1000 () in
  check_int "period" (Time.ms 1) (Daq.period daq);
  let s = Daq.capture daq rail ~from:0 ~until:(Time.ms 10) in
  check_int "11 samples" 11 (Array.length s);
  check_float 1e-9 "before step" 1.0 s.(4).Sample.watts;
  check_float 1e-9 "after step" 2.0 s.(6).Sample.watts

let test_daq_noise_reproducible () =
  let sim = Sim.create () in
  let rail = Psbox_hw.Power_rail.create sim ~name:"r" ~idle_w:1.0 in
  Sim.run_until sim (Time.ms 10);
  let mk () = Daq.create ~rate_hz:1000 ~noise_w:0.05 ~rng:(Rng.create ~seed:3) () in
  let a = Daq.capture (mk ()) rail ~from:0 ~until:(Time.ms 10) in
  let b = Daq.capture (mk ()) rail ~from:0 ~until:(Time.ms 10) in
  check_bool "noisy" true (Array.exists (fun s -> s.Sample.watts <> 1.0) a);
  check_bool "deterministic given seed" true (a = b);
  check_bool "never negative" true (Array.for_all (fun s -> s.Sample.watts >= 0.0) a)

let test_clock_sync_estimates () =
  let c = Clock_sync.create ~offset:(Time.us 1700) ~skew_ppm:35.0 () in
  let rng = Rng.create ~seed:5 in
  let est = Clock_sync.sync c ~rng ~pulses:64 ~interval:(Time.ms 10) ~jitter:(Time.us 2) in
  check_bool "offset close" true
    (abs (est.Clock_sync.offset - Time.us 1700) < Time.us 10);
  check_bool "skew close" true (Float.abs (est.Clock_sync.skew_ppm -. 35.0) < 5.0);
  let err = Clock_sync.residual_error c est ~at:(Time.sec 1) in
  check_bool "residual under 10us" true (err < Time.us 10)

let test_clock_sync_roundtrip () =
  let c = Clock_sync.create () in
  let t = Time.ms 123 in
  check_bool "roundtrip" true (abs (Clock_sync.to_target c (Clock_sync.to_daq c t) - t) <= 1)

let test_model_meter_fit () =
  (* ground truth: P = 0.3 + 2.0*u1 + 0.5*u2 *)
  let rng = Rng.create ~seed:9 in
  let obs =
    List.init 60 (fun _ ->
        let u1 = Rng.float rng 1.0 and u2 = Rng.float rng 1.0 in
        ([| u1; u2 |], 0.3 +. (2.0 *. u1) +. (0.5 *. u2)))
  in
  let m = Model_meter.fit obs in
  check_float 1e-6 "intercept" 0.3 (Model_meter.intercept m);
  check_float 1e-6 "beta1" 2.0 (Model_meter.coeffs m).(0);
  check_float 1e-6 "beta2" 0.5 (Model_meter.coeffs m).(1);
  check_float 1e-6 "rmse" 0.0 (Model_meter.rmse m obs);
  check_float 1e-6 "predict" 1.55 (Model_meter.predict m [| 0.5; 0.5 |])

let test_model_meter_noisy_fit () =
  let rng = Rng.create ~seed:10 in
  let obs =
    List.init 500 (fun _ ->
        let u = Rng.float rng 1.0 in
        ([| u |], 1.0 +. (3.0 *. u) +. Rng.gaussian rng ~mu:0.0 ~sigma:0.05))
  in
  let m = Model_meter.fit obs in
  check_bool "slope close" true (Float.abs ((Model_meter.coeffs m).(0) -. 3.0) < 0.05);
  check_bool "rmse near noise floor" true (Model_meter.rmse m obs < 0.07)

let test_model_meter_degenerate () =
  Alcotest.check_raises "not enough obs"
    (Invalid_argument "Model_meter.fit: not enough observations") (fun () ->
      ignore (Model_meter.fit [ ([| 1.0 |], 1.0) ]))

let suite =
  [
    ("sample energy", `Quick, test_sample_energy);
    ("sample between", `Quick, test_sample_between);
    ("daq capture", `Quick, test_daq_capture);
    ("daq noise reproducible", `Quick, test_daq_noise_reproducible);
    ("clock sync estimates", `Quick, test_clock_sync_estimates);
    ("clock sync roundtrip", `Quick, test_clock_sync_roundtrip);
    ("model meter exact fit", `Quick, test_model_meter_fit);
    ("model meter noisy fit", `Quick, test_model_meter_noisy_fit);
    ("model meter degenerate input", `Quick, test_model_meter_degenerate);
  ]
