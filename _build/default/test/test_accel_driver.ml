(* Tests for the accelerator driver: fair command scheduling and temporal
   balloons. *)
open Psbox_engine
module Accel = Psbox_hw.Accel
module Accel_driver = Psbox_kernel.Accel_driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(units = 2) ?(window = 2) ?policy () =
  let sim = Sim.create () in
  let dev =
    Accel.create sim ~name:"acc" ~units ~governor:Psbox_hw.Dvfs.Performance
      ~idle_w:0.1 ()
  in
  let d = Accel_driver.create sim dev ?policy ~window () in
  (sim, dev, d)

let submit d ~app ~work_s =
  let cmd = Accel.command ~app ~kind:"k" ~work_s () in
  Accel_driver.submit d ~app cmd ~on_complete:(fun _ -> ());
  cmd

(* A continuous submitter that keeps an app's queue non-empty. *)
let feeder sim d ~app ~work_s =
  let rec loop () =
    let cmd = Accel.command ~app ~kind:"k" ~work_s () in
    Accel_driver.submit d ~app cmd ~on_complete:(fun _ -> loop ())
  in
  ignore sim;
  loop ();
  loop ()

let test_dispatch_and_complete () =
  let sim, _, d = mk () in
  let done_ = ref false in
  let cmd = Accel.command ~app:1 ~kind:"k" ~work_s:0.005 () in
  Accel_driver.submit d ~app:1 cmd ~on_complete:(fun _ -> done_ := true);
  Sim.run_until sim (Time.ms 20);
  check_bool "completed" true !done_;
  check_int "counted" 1 (Accel_driver.completed d ~app:1);
  check_int "log" 1 (List.length (Accel_driver.completed_commands d))

let test_fair_sharing () =
  let sim, _, d = mk () in
  feeder sim d ~app:1 ~work_s:0.004;
  feeder sim d ~app:2 ~work_s:0.004;
  Sim.run_until sim (Time.sec 2);
  let c1 = Accel_driver.completed d ~app:1 in
  let c2 = Accel_driver.completed d ~app:2 in
  check_bool
    (Printf.sprintf "fair split (%d vs %d)" c1 c2)
    true
    (abs (c1 - c2) * 10 < c1 + c2);
  (* vruntimes track each other *)
  let v1 = Accel_driver.vruntime d ~app:1 and v2 = Accel_driver.vruntime d ~app:2 in
  check_bool "vruntimes close" true (Float.abs (v1 -. v2) < 0.1)

let test_round_robin_policy () =
  let sim, _, d = mk ~policy:Accel_driver.Round_robin ~window:1 () in
  feeder sim d ~app:1 ~work_s:0.004;
  feeder sim d ~app:2 ~work_s:0.004;
  Sim.run_until sim (Time.sec 1);
  let c1 = Accel_driver.completed d ~app:1 in
  let c2 = Accel_driver.completed d ~app:2 in
  check_bool "rr alternates" true (abs (c1 - c2) <= 2)

(* Temporal balloon: while the balloon serves the sandboxed app, no foreign
   command is in flight on the device. *)
let test_balloon_exclusivity () =
  let sim, _, d = mk () in
  feeder sim d ~app:1 ~work_s:0.004;
  feeder sim d ~app:2 ~work_s:0.004;
  Sim.run_until sim (Time.ms 100);
  Accel_driver.sandbox d ~app:1;
  Sim.run_until sim (Time.sec 2);
  let intervals = Accel_driver.balloon_intervals d in
  check_bool "balloons formed" true (List.length intervals > 2);
  let cmds = Accel_driver.completed_commands d in
  let foreign_inside =
    List.exists
      (fun (b0, b1) ->
        List.exists
          (fun c ->
            c.Accel.app <> 1
            &&
            match (c.Accel.started_at, c.Accel.finished_at) with
            | Some s, Some f -> min f b1 > max s b0
            | _ -> false)
          cmds)
      intervals
  in
  check_bool "no foreign command inside a balloon" false foreign_inside;
  (* and the sandboxed app's commands execute only inside balloons *)
  let own_outside =
    List.exists
      (fun c ->
        c.Accel.app = 1
        && c.Accel.started_at <> None
        && Option.get c.Accel.started_at > Time.ms 120
        && not
             (List.exists
                (fun (b0, b1) ->
                  Option.get c.Accel.started_at >= b0
                  && Option.get c.Accel.finished_at <= b1)
                intervals))
      cmds
  in
  check_bool "own commands only inside balloons" false own_outside

let test_balloon_billing_disadvantages () =
  let sim, _, d = mk () in
  feeder sim d ~app:1 ~work_s:0.004;
  feeder sim d ~app:2 ~work_s:0.004;
  Accel_driver.sandbox d ~app:1;
  Sim.run_until sim (Time.sec 2);
  (* app 1 is billed the whole device during its serve windows, so it must
     complete fewer commands than the unsandboxed sibling *)
  let c1 = Accel_driver.completed d ~app:1 in
  let c2 = Accel_driver.completed d ~app:2 in
  check_bool (Printf.sprintf "sandboxed does less (%d vs %d)" c1 c2) true (c1 < c2)

let test_unsandbox_releases () =
  let sim, _, d = mk () in
  feeder sim d ~app:1 ~work_s:0.004;
  feeder sim d ~app:2 ~work_s:0.004;
  Accel_driver.sandbox d ~app:1;
  Sim.run_until sim (Time.ms 500);
  Accel_driver.unsandbox d;
  Sim.run_until sim (Time.ms 600);
  check_bool "balloon closed" false (Accel_driver.balloon_open d);
  check_bool "sandbox cleared" true (Accel_driver.sandboxed d = None);
  let n = List.length (Accel_driver.balloon_intervals d) in
  Sim.run_until sim (Time.sec 1);
  check_int "no new balloons after unsandbox" n
    (List.length (Accel_driver.balloon_intervals d))

let test_sandbox_conflict_rejected () =
  let _, _, d = mk () in
  Accel_driver.sandbox d ~app:1;
  Alcotest.check_raises "conflict"
    (Invalid_argument "Accel_driver.sandbox: another app is already sandboxed")
    (fun () -> Accel_driver.sandbox d ~app:2)

let test_drain_preserves_all_commands () =
  let sim, _, d = mk () in
  (* fixed workloads: every submitted command must eventually complete even
     across balloon phase changes *)
  let total = ref 0 in
  for i = 1 to 30 do
    let app = 1 + (i mod 2) in
    let cmd = Accel.command ~app ~kind:"k" ~work_s:0.003 () in
    Accel_driver.submit d ~app cmd ~on_complete:(fun _ -> incr total)
  done;
  Accel_driver.sandbox d ~app:1;
  Sim.run_until sim (Time.ms 50);
  Accel_driver.unsandbox d;
  Sim.run_until sim (Time.sec 2);
  check_int "all commands completed" 30 !total

let test_dispatch_latency_rises_for_sandboxed () =
  let sim, _, d = mk () in
  feeder sim d ~app:1 ~work_s:0.004;
  feeder sim d ~app:2 ~work_s:0.004;
  Sim.run_until sim (Time.ms 500);
  let before =
    Accel_driver.dispatch_latencies_us d
    |> List.filter (fun (a, _) -> a = 1)
    |> List.map snd
  in
  let mark = List.length (Accel_driver.dispatch_latencies_us d) in
  Accel_driver.sandbox d ~app:1;
  Sim.run_until sim (Time.ms 1000);
  let after =
    Accel_driver.dispatch_latencies_us d
    |> List.filteri (fun i _ -> i >= mark)
    |> List.filter (fun (a, _) -> a = 1)
    |> List.map snd
  in
  let mean l = Stats.mean (Array.of_list l) in
  check_bool "drain phases add dispatch latency" true (mean after > mean before)

(* SGX-style Lock_requests: a foreign submission stalls in syscall context
   while a balloon holds the queue; Adreno-style per-process queues accept
   it immediately. *)
let test_lock_requests_blocks_submission () =
  let run buffering =
    let sim = Sim.create () in
    let dev =
      Accel.create sim ~name:"acc" ~units:2 ~governor:Psbox_hw.Dvfs.Performance
        ~idle_w:0.1 ()
    in
    let d = Accel_driver.create sim dev ~buffering ~window:2 () in
    feeder sim d ~app:1 ~work_s:0.004;
    Accel_driver.sandbox d ~app:1;
    Sim.run_until sim (Time.ms 50);
    (* a balloon should now be open more or less permanently (app 1 is the
       only client); inject a foreign submission *)
    check_bool "balloon open" true (Accel_driver.balloon_open d);
    let accepted = ref false in
    Accel_driver.submit d ~on_accepted:(fun () -> accepted := true) ~app:2
      (Accel.command ~app:2 ~kind:"k" ~work_s:0.001 ())
      ~on_complete:(fun _ -> ());
    let immediately = !accepted in
    Sim.run_until sim (Time.ms 300);
    (immediately, !accepted)
  in
  let sgx_now, sgx_later = run Accel_driver.Lock_requests in
  check_bool "sgx: stalled while balloon open" false sgx_now;
  check_bool "sgx: accepted after flush-others" true sgx_later;
  let adreno_now, _ = run Accel_driver.Per_process_queues in
  check_bool "adreno: accepted immediately" true adreno_now

let test_submission_blocks_predicate () =
  let sim, _, d = mk () in
  check_bool "no balloon: never blocks" false (Accel_driver.submission_blocks d ~app:2);
  feeder sim d ~app:1 ~work_s:0.004;
  Accel_driver.sandbox d ~app:1;
  Sim.run_until sim (Time.ms 50);
  (* default buffering is Per_process_queues: still never blocks *)
  check_bool "per-process queues never block" false
    (Accel_driver.submission_blocks d ~app:2)

let suite =
  [
    ("dispatch and complete", `Quick, test_dispatch_and_complete);
    ("lock_requests blocks submission", `Quick, test_lock_requests_blocks_submission);
    ("submission_blocks predicate", `Quick, test_submission_blocks_predicate);
    ("fair sharing", `Quick, test_fair_sharing);
    ("round-robin policy", `Quick, test_round_robin_policy);
    ("temporal balloon exclusivity", `Quick, test_balloon_exclusivity);
    ("balloon billing disadvantages", `Quick, test_balloon_billing_disadvantages);
    ("unsandbox releases", `Quick, test_unsandbox_releases);
    ("sandbox conflict rejected", `Quick, test_sandbox_conflict_rejected);
    ("drain preserves all commands", `Quick, test_drain_preserves_all_commands);
    ("dispatch latency rises for sandboxed", `Quick, test_dispatch_latency_rises_for_sandboxed);
  ]
