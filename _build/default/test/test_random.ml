(* Randomized whole-kernel stress properties: arbitrary workload scripts,
   arbitrary psbox enter/leave points — the invariants must hold for all of
   them. *)
open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload
module Accel = Psbox_hw.Accel
module Accel_driver = Psbox_kernel.Accel_driver

(* A random op stream for one task. *)
let gen_ops ~gpu =
  QCheck.Gen.(
    list_size (1 -- 12)
      (oneof
         ([
            map (fun ms -> `Compute (1 + ms)) (0 -- 8);
            map (fun ms -> `Sleep (1 + ms)) (0 -- 8);
          ]
         @ if gpu then [ map (fun ms -> `Gpu (1 + ms)) (0 -- 4) ] else [])))

let to_script ops =
  let ops =
    List.map
      (function
        | `Compute ms -> W.Compute (Time.ms ms)
        | `Sleep ms -> W.Sleep (Time.ms ms)
        | `Gpu ms -> W.Gpu_batch [ W.spec ~kind:"k" ~work_s:(float_of_int ms /. 1e3) () ])
      ops
  in
  W.forever (fun () -> ops)

let arbitrary_scenario ~gpu =
  QCheck.make
    ~print:(fun (a, b, enter_ms, leave_ms) ->
      Printf.sprintf "tasks=%d/%d enter=%dms leave=%dms" (List.length a)
        (List.length b) enter_ms leave_ms)
    QCheck.Gen.(
      quad (gen_ops ~gpu) (gen_ops ~gpu) (10 -- 200) (210 -- 400))

(* Invariant bundle for the CPU: the simulation terminates, busy core-time
   never exceeds wall capacity, and foreign tasks never run inside the
   sandboxed app's balloons. *)
let prop_cpu_invariants =
  QCheck.Test.make ~name:"random CPU scenarios keep balloon invariants"
    ~count:40 (arbitrary_scenario ~gpu:false)
    (fun (ops_a, ops_b, enter_ms, leave_ms) ->
      let sys = System.create ~cores:2 () in
      let a = System.new_app sys ~name:"a" in
      let b = System.new_app sys ~name:"b" in
      ignore (W.spawn sys ~app:a ~name:"a0" ~core:0 (to_script ops_a));
      ignore (W.spawn sys ~app:a ~name:"a1" ~core:1 (to_script ops_a));
      ignore (W.spawn sys ~app:b ~name:"b0" ~core:0 (to_script ops_b));
      ignore (W.spawn sys ~app:b ~name:"b1" ~core:1 (to_script ops_b));
      System.start sys;
      let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
      System.run_for sys (Time.ms enter_ms);
      Psbox.enter box;
      System.run_for sys (Time.ms (leave_ms - enter_ms));
      let intervals = Psbox.exclusive_intervals box in
      Psbox.leave box;
      System.run_for sys (Time.ms 50);
      let wall = Time.to_sec_f (System.now sys) in
      let busy = Psbox_hw.Cpu.busy_core_seconds (System.cpu sys) in
      Smp.stop (System.smp sys);
      let spans = Trace.to_spans (Smp.sched_trace (System.smp sys)) in
      let foreign_inside =
        List.exists
          (fun (b0, b1) ->
            List.exists
              (fun s ->
                snd s.Trace.tag = b.System.app_id
                && min s.Trace.stop b1 > max s.Trace.start b0)
              spans)
          intervals
      in
      System.shutdown sys;
      busy <= (2.0 *. wall) +. 1e-9 && not foreign_inside)

(* GPU invariant: every submitted command completes exactly once, even
   across sandbox churn, and no foreign command executes inside a balloon. *)
let prop_gpu_invariants =
  QCheck.Test.make ~name:"random GPU scenarios keep temporal-balloon invariants"
    ~count:30 (arbitrary_scenario ~gpu:true)
    (fun (ops_a, ops_b, enter_ms, leave_ms) ->
      let sys = System.create ~cores:2 ~gpu:true () in
      let a = System.new_app sys ~name:"a" in
      let b = System.new_app sys ~name:"b" in
      ignore (W.spawn sys ~app:a ~name:"a0" ~core:0 (to_script ops_a));
      ignore (W.spawn sys ~app:b ~name:"b0" ~core:1 (to_script ops_b));
      System.start sys;
      let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Gpu ] in
      System.run_for sys (Time.ms enter_ms);
      Psbox.enter box;
      System.run_for sys (Time.ms (leave_ms - enter_ms));
      Psbox.leave box;
      System.run_for sys (Time.ms 100);
      let driver = System.gpu sys in
      let cmds = Accel_driver.completed_commands driver in
      let intervals = Accel_driver.balloon_intervals driver in
      let all_complete =
        List.for_all
          (fun c -> c.Accel.started_at <> None && c.Accel.finished_at <> None)
          cmds
      in
      let ids = List.map (fun c -> c.Accel.id) cmds in
      let unique = List.length (List.sort_uniq compare ids) = List.length ids in
      let foreign_inside =
        List.exists
          (fun (b0, b1) ->
            List.exists
              (fun c ->
                c.Accel.app = b.System.app_id
                &&
                match (c.Accel.started_at, c.Accel.finished_at) with
                | Some s, Some f -> min f b1 > max s b0
                | _ -> false)
              cmds)
          intervals
      in
      System.shutdown sys;
      all_complete && unique && not foreign_inside)

(* The virtual meter never reports below the idle floor nor above the
   physical rail's maximum. *)
let prop_meter_bounded =
  QCheck.Test.make ~name:"virtual meter stays within physical bounds" ~count:40
    (arbitrary_scenario ~gpu:false)
    (fun (ops_a, ops_b, enter_ms, leave_ms) ->
      let sys = System.create ~cores:2 () in
      let a = System.new_app sys ~name:"a" in
      let b = System.new_app sys ~name:"b" in
      ignore (W.spawn sys ~app:a ~name:"a0" ~core:0 (to_script ops_a));
      ignore (W.spawn sys ~app:b ~name:"b0" ~core:1 (to_script ops_b));
      System.start sys;
      let box = Psbox.create sys ~app:a.System.app_id ~hw:[ Psbox.Cpu ] in
      System.run_for sys (Time.ms enter_ms);
      Psbox.enter box;
      System.run_for sys (Time.ms (leave_ms - enter_ms));
      let samples = Psbox.sample ~period:(Time.us 500) box in
      Psbox.leave box;
      let idle = Psbox_hw.Power_rail.idle_w (Psbox_hw.Cpu.rail (System.cpu sys)) in
      (* top OPP, both cores: 0.3 + 1.2 + 2x1.0 *)
      let phys_max = 3.5 +. 1e-9 in
      let ok =
        Array.for_all
          (fun s ->
            s.Psbox_meter.Sample.watts >= idle -. 1e-9
            && s.Psbox_meter.Sample.watts <= phys_max)
          samples
      in
      System.shutdown sys;
      ok)

(* The paper's core claim as a property: the psbox observation of a FIXED
   workload stays in a narrow band regardless of what random co-runners do
   on the machine. *)
let fixed_job_mj ~co_ops =
  let sys = System.create ~seed:97 ~cores:2 () in
  let main = System.new_app sys ~name:"fixed" in
  ignore
    (W.spawn sys ~app:main ~name:"job" ~core:0
       (W.repeat 40 (fun _ -> [ W.Compute (Time.ms 6); W.Sleep (Time.ms 2) ])));
  (match co_ops with
  | Some ops ->
      let co = System.new_app sys ~name:"co" in
      ignore (W.spawn sys ~app:co ~name:"co0" ~core:1 (to_script ops));
      ignore (W.spawn sys ~app:co ~name:"co1" ~core:0 (to_script ops))
  | None -> ());
  let box = Psbox.create sys ~app:main.System.app_id ~hw:[ Psbox.Cpu ] in
  System.start sys;
  Psbox.enter box;
  W.run_until_idle sys ~apps:[ main ] ~timeout:(Time.sec 10);
  let mj = Psbox.read_mj box in
  Psbox.leave box;
  System.shutdown sys;
  mj

let reference_mj = lazy (fixed_job_mj ~co_ops:None)

let prop_observation_insulated =
  QCheck.Test.make
    ~name:"psbox observation insulated from arbitrary co-runners" ~count:25
    (QCheck.make
       ~print:(fun ops -> Printf.sprintf "|ops|=%d" (List.length ops))
       (gen_ops ~gpu:false))
    (fun ops ->
      let alone = Lazy.force reference_mj in
      let co = fixed_job_mj ~co_ops:(Some ops) in
      Float.abs (co -. alone) /. alone < 0.15)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cpu_invariants; prop_gpu_invariants; prop_meter_bounded;
      prop_observation_insulated;
    ]
