(** Piecewise-constant time series.

    A timeline records the value of a quantity (e.g. the power drawn on a
    rail, in watts) as a step function of simulated time. Breakpoints must be
    appended in nondecreasing time order, which is what a simulation
    naturally produces. Queries (point value, exact integral, resampling)
    use binary search. *)

type t

val create : ?initial:float -> unit -> t
(** [create ~initial ()] starts at value [initial] (default [0.]) from time
    zero. *)

val set : t -> Time.t -> float -> unit
(** [set tl t v] records that the value becomes [v] at instant [t]. Setting
    at a time earlier than the last breakpoint raises [Invalid_argument];
    setting at exactly the same instant overwrites the previous value for
    that instant. *)

val value_at : t -> Time.t -> float
(** The value in effect at instant [t]. *)

val last_time : t -> Time.t
(** Time of the most recent breakpoint. *)

val breakpoints : t -> (Time.t * float) list
(** All breakpoints, oldest first. *)

val integrate : t -> Time.t -> Time.t -> float
(** [integrate tl t0 t1] is the exact integral of the step function over
    [\[t0, t1\]] in value-seconds (e.g. joules for a watts timeline).
    @raise Invalid_argument if [t1 < t0]. *)

val mean : t -> Time.t -> Time.t -> float
(** Time-weighted mean value over an interval. *)

val samples :
  t -> period:Time.span -> from:Time.t -> until:Time.t -> (Time.t * float) array
(** [samples tl ~period ~from ~until] resamples the timeline at a fixed
    period, like a DAQ would: one sample at [from], [from+period], ... up to
    and including [until] when aligned. *)

val map_intervals :
  t -> from:Time.t -> until:Time.t -> f:(Time.t -> Time.t -> float -> 'a) -> 'a list
(** Apply [f start stop value] to each constant-valued interval intersecting
    [\[from, until\]], clipped to that window, oldest first. *)
