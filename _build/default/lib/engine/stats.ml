let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan else sum xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let min xs = Array.fold_left Float.min Float.infinity xs
let max xs = Array.fold_left Float.max Float.neg_infinity xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    p50 = percentile xs 50.0;
    p95 = percentile xs 95.0;
    p99 = percentile xs 99.0;
    max = max xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

type histogram = { lo : float; hi : float; counts : int array }

let histogram xs ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty input";
  let lo = min xs and hi = max xs in
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i =
        if width = 0.0 then 0
        else Stdlib.min (bins - 1) (int_of_float ((x -. lo) /. width))
      in
      counts.(i) <- counts.(i) + 1)
    xs;
  { lo; hi; counts }
