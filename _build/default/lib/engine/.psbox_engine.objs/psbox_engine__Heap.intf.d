lib/engine/heap.mli:
