lib/engine/trace.mli: Time
