lib/engine/trace.ml: List Time
