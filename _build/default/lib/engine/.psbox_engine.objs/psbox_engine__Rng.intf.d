lib/engine/rng.mli:
