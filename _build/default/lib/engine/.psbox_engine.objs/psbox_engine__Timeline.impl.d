lib/engine/timeline.ml: Array Format List Time
