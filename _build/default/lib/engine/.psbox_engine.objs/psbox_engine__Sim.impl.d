lib/engine/sim.ml: Format Heap Time
