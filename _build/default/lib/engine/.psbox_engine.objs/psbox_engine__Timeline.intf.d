lib/engine/timeline.mli: Time
