(** Discrete-event simulator core.

    A simulator owns a virtual clock and an event queue. Events scheduled for
    the same instant fire in the order they were scheduled (FIFO within an
    instant), which keeps runs fully deterministic. *)

type t

type handle
(** A handle on a scheduled event, usable to cancel it. *)

val create : unit -> t

val now : t -> Time.t
(** The current simulated time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at sim t f] runs [f] when the clock reaches [t].

    @raise Invalid_argument if [t] is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle
(** [schedule_after sim d f] runs [f] after [d] has elapsed. *)

val cancel : handle -> unit
(** Cancel a scheduled event. Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val run_until : t -> Time.t -> unit
(** [run_until sim t] fires every event scheduled strictly before or at [t]
    and advances the clock to [t]. *)

val run : t -> unit
(** Fire events until the queue is empty. *)

val pending : t -> int
(** Number of events still scheduled (including cancelled ones not yet
    reaped). *)
