(** Simulated time.

    All simulation time is kept as an integer number of nanoseconds since the
    start of the simulation. 63-bit integers give a range of roughly 146
    years, far beyond any scenario in this repository. Spans (durations) use
    the same representation. *)

type t = int
(** An instant, in nanoseconds since simulation start. *)

type span = int
(** A duration, in nanoseconds. *)

val zero : t

val ns : int -> span
(** [ns n] is a span of [n] nanoseconds. *)

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val sec : int -> span
(** [sec n] is a span of [n] seconds. *)

val of_sec_f : float -> span
(** [of_sec_f s] converts a duration in (possibly fractional) seconds,
    rounding to the nearest nanosecond. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in seconds. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds. *)

val to_ms_f : t -> float
(** [to_ms_f t] is [t] expressed in milliseconds. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print an instant with an adaptive unit (ns/us/ms/s). *)
