type handle = { time : Time.t; seq : int; fn : unit -> unit; mutable live : bool }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  q : handle Heap.t;
}

let compare_handle a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () = { clock = Time.zero; seq = 0; q = Heap.create ~cmp:compare_handle }

let now sim = sim.clock

let schedule_at sim time fn =
  if time < sim.clock then
    invalid_arg
      (Format.asprintf "Sim.schedule_at: %a is before now (%a)" Time.pp time
         Time.pp sim.clock);
  let h = { time; seq = sim.seq; fn; live = true } in
  sim.seq <- sim.seq + 1;
  Heap.push sim.q h;
  h

let schedule_after sim span fn = schedule_at sim (sim.clock + span) fn
let cancel h = h.live <- false
let cancelled h = not h.live

let run_until sim limit =
  let rec loop () =
    match Heap.peek sim.q with
    | Some h when h.time <= limit ->
        ignore (Heap.pop sim.q);
        if h.live then begin
          sim.clock <- h.time;
          h.fn ()
        end;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if limit > sim.clock then sim.clock <- limit

let run sim =
  let rec loop () =
    match Heap.pop sim.q with
    | Some h ->
        if h.live then begin
          sim.clock <- h.time;
          h.fn ()
        end;
        loop ()
    | None -> ()
  in
  loop ()

let pending sim = Heap.size sim.q
