type t = {
  mutable times : int array;
  mutable values : float array;
  mutable len : int;
}

let create ?(initial = 0.0) () =
  { times = Array.make 16 0; values = Array.make 16 initial; len = 1 }

let ensure_capacity tl =
  if tl.len = Array.length tl.times then begin
    let ncap = tl.len * 2 in
    let times = Array.make ncap 0 and values = Array.make ncap 0.0 in
    Array.blit tl.times 0 times 0 tl.len;
    Array.blit tl.values 0 values 0 tl.len;
    tl.times <- times;
    tl.values <- values
  end

let last_time tl = tl.times.(tl.len - 1)

let set tl t v =
  let last = last_time tl in
  if t < last then
    invalid_arg
      (Format.asprintf "Timeline.set: %a is before last breakpoint %a" Time.pp
         t Time.pp last);
  if t = last then tl.values.(tl.len - 1) <- v
  else if tl.values.(tl.len - 1) <> v then begin
    ensure_capacity tl;
    tl.times.(tl.len) <- t;
    tl.values.(tl.len) <- v;
    tl.len <- tl.len + 1
  end

(* Index of the last breakpoint at or before [t]. *)
let index_at tl t =
  if t >= last_time tl then tl.len - 1
  else begin
    let lo = ref 0 and hi = ref (tl.len - 1) in
    (* invariant: times.(lo) <= t < times.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if tl.times.(mid) <= t then lo := mid else hi := mid
    done;
    !lo
  end

let value_at tl t = if t < tl.times.(0) then tl.values.(0) else tl.values.(index_at tl t)

let breakpoints tl =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((tl.times.(i), tl.values.(i)) :: acc)
  in
  build (tl.len - 1) []

let integrate tl t0 t1 =
  if t1 < t0 then invalid_arg "Timeline.integrate: reversed interval";
  if t1 = t0 then 0.0
  else begin
    let acc = ref 0.0 in
    let i = ref (index_at tl (max t0 tl.times.(0))) in
    let cursor = ref t0 in
    while !cursor < t1 do
      let seg_end =
        if !i + 1 < tl.len then min tl.times.(!i + 1) t1 else t1
      in
      let seg_end = max seg_end !cursor in
      acc := !acc +. (tl.values.(!i) *. Time.to_sec_f (seg_end - !cursor));
      cursor := seg_end;
      if !i + 1 < tl.len && !cursor >= tl.times.(!i + 1) then incr i
    done;
    !acc
  end

let mean tl t0 t1 =
  if t1 <= t0 then value_at tl t0
  else integrate tl t0 t1 /. Time.to_sec_f (t1 - t0)

let samples tl ~period ~from ~until =
  if period <= 0 then invalid_arg "Timeline.samples: period must be positive";
  let n = ((until - from) / period) + 1 in
  let n = max n 0 in
  Array.init n (fun k ->
      let t = from + (k * period) in
      (t, value_at tl t))

let map_intervals tl ~from ~until ~f =
  let acc = ref [] in
  let i = ref (index_at tl (max from tl.times.(0))) in
  let cursor = ref from in
  while !cursor < until do
    let seg_end = if !i + 1 < tl.len then min tl.times.(!i + 1) until else until in
    let seg_end = max seg_end !cursor in
    if seg_end > !cursor then acc := f !cursor seg_end tl.values.(!i) :: !acc;
    cursor := seg_end;
    if !i + 1 < tl.len && !cursor >= tl.times.(!i + 1) then incr i
  done;
  List.rev !acc
