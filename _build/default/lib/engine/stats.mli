(** Descriptive statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean. [nan] on empty input. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); [0.] for fewer than two
    samples. *)

val min : float array -> float
val max : float array -> float
val sum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Does not mutate its input. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

type histogram = { lo : float; hi : float; counts : int array }

val histogram : float array -> bins:int -> histogram
(** Fixed-width histogram between the sample min and max.
    @raise Invalid_argument if [bins <= 0] or the input is empty. *)
