(** Per-core CFS runqueue.

    One instance manages the runnable entities of one core, ordered by
    vruntime (the scheduling credit). The running entity is dequeued while it
    runs, as in Linux. [min_vruntime] advances monotonically and anchors the
    placement of newly woken entities so sleepers neither starve nor bank
    unbounded credit. *)

type t

val create : core:int -> t

val core : t -> int

val nice0_weight : float
(** The weight against which vruntime deltas are normalized (1024.). *)

val enqueue : t -> Entity.t -> unit
(** Put a runnable entity on the queue. No-op if already queued. *)

val dequeue : t -> Entity.t -> unit

val requeue : t -> Entity.t -> unit
(** [dequeue] then [enqueue]; call after changing a queued entity's
    vruntime. *)

val leftmost : t -> Entity.t option
(** The queued entity with the least vruntime (excluding the running one). *)

val queued : t -> Entity.t list
(** All queued entities, least vruntime first. *)

val n_queued : t -> int

val curr : t -> Entity.t option
val set_curr : t -> Entity.t option -> unit

val min_vruntime : t -> float

val place_new : t -> Entity.t -> unit
(** Give a brand-new entity a fair starting vruntime ([max] of its own and
    the queue's [min_vruntime]). *)

val place_woken : t -> Entity.t -> unit
(** Place a woken sleeper: vruntime is pulled up to
    [min_vruntime - wakeup_bonus] so long sleeps do not bank credit. *)

val charge : t -> Entity.t -> Psbox_engine.Time.span -> unit
(** Bill [span] of execution to an entity: advances its vruntime by
    [span * nice0/weight] and updates [min_vruntime]. *)

val update_min_vruntime : t -> unit
