lib/kernel/accel_driver.ml: Float Hashtbl List Psbox_engine Psbox_hw Queue Sim Time
