lib/kernel/entity.ml: Format List Task
