lib/kernel/smp.mli: Psbox_engine Psbox_hw Task
