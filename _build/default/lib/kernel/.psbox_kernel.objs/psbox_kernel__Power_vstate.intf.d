lib/kernel/power_vstate.mli: Psbox_engine Psbox_hw
