lib/kernel/power_vstate.ml: Psbox_engine Psbox_hw Sim Time
