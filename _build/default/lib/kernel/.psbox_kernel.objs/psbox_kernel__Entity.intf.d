lib/kernel/entity.mli: Format Task
