lib/kernel/system.mli: Accel_driver Hashtbl Net_sched Psbox_engine Psbox_hw Smp
