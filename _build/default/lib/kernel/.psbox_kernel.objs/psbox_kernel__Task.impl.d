lib/kernel/task.ml: Format Psbox_engine
