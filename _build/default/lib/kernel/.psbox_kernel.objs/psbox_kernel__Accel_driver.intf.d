lib/kernel/accel_driver.mli: Psbox_engine Psbox_hw
