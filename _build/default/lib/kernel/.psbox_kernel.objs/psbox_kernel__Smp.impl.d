lib/kernel/smp.ml: Array Buffer Cfs Entity Float Hashtbl List Printf Psbox_engine Psbox_hw Sim Task Time Trace
