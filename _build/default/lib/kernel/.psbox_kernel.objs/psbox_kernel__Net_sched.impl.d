lib/kernel/net_sched.ml: Float Hashtbl List Psbox_engine Psbox_hw Queue Sim Time
