lib/kernel/cfs.mli: Entity Psbox_engine
