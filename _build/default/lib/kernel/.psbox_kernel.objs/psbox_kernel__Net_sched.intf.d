lib/kernel/net_sched.mli: Psbox_engine Psbox_hw
