lib/kernel/task.mli: Format Psbox_engine
