lib/kernel/cfs.ml: Entity Float List Set Task
