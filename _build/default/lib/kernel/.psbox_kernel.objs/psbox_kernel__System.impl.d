lib/kernel/system.ml: Accel_driver Hashtbl List Net_sched Psbox_engine Psbox_hw Rng Sim Smp Time
