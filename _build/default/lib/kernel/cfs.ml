module ESet = Set.Make (struct
  type t = float * int * Entity.t

  let compare (v1, id1, _) (v2, id2, _) =
    let c = compare v1 v2 in
    if c <> 0 then c else compare id1 id2
end)

type t = {
  core_id : int;
  mutable set : ESet.t;
  mutable running : Entity.t option;
  mutable min_vrt : float;
}

let nice0_weight = 1024.0
let wakeup_bonus = 1_000_000.0 (* 1 ms of vruntime headroom for wakers *)

let create ~core = { core_id = core; set = ESet.empty; running = None; min_vrt = 0.0 }
let core rq = rq.core_id

let key e = (e.Entity.vruntime, e.Entity.eid, e)

let enqueue rq e =
  if not e.Entity.on_rq then begin
    e.Entity.on_rq <- true;
    rq.set <- ESet.add (key e) rq.set
  end

let dequeue rq e =
  if e.Entity.on_rq then begin
    e.Entity.on_rq <- false;
    rq.set <- ESet.remove (key e) rq.set
  end

let requeue rq e =
  if e.Entity.on_rq then begin
    (* the stored key may carry a stale vruntime; rebuild *)
    rq.set <- ESet.filter (fun (_, id, _) -> id <> e.Entity.eid) rq.set;
    rq.set <- ESet.add (key e) rq.set
  end

let leftmost rq =
  match ESet.min_elt_opt rq.set with Some (_, _, e) -> Some e | None -> None

let queued rq = List.map (fun (_, _, e) -> e) (ESet.elements rq.set)
let n_queued rq = ESet.cardinal rq.set
let curr rq = rq.running
let set_curr rq e = rq.running <- e
let min_vruntime rq = rq.min_vrt

let update_min_vruntime rq =
  let candidates =
    (match rq.running with Some e -> [ e.Entity.vruntime ] | None -> [])
    @ match ESet.min_elt_opt rq.set with Some (v, _, _) -> [ v ] | None -> []
  in
  match candidates with
  | [] -> ()
  | vs -> rq.min_vrt <- Float.max rq.min_vrt (List.fold_left Float.min Float.infinity vs)

let place_new rq e = e.Entity.vruntime <- Float.max e.Entity.vruntime rq.min_vrt

let place_woken rq e =
  e.Entity.vruntime <- Float.max e.Entity.vruntime (rq.min_vrt -. wakeup_bonus)

let charge rq e span =
  let delta = float_of_int span *. nice0_weight /. e.Entity.weight in
  e.Entity.vruntime <- e.Entity.vruntime +. delta;
  (match e.Entity.kind with
  | Entity.EGroup g -> (
      (* bill the inner running task too, for intra-group fairness *)
      match g.Entity.gcurr with
      | Some t ->
          t.Task.vruntime <-
            t.Task.vruntime +. (float_of_int span *. nice0_weight /. t.Task.weight)
      | None -> ())
  | Entity.ETask t -> t.Task.vruntime <- e.Entity.vruntime);
  if e.Entity.on_rq then requeue rq e;
  update_min_vruntime rq
