(** Power-state virtualization (§4.1).

    Each psbox gets a private copy of the operating/idle power state of every
    hardware component it is bound to: CPU and accelerator OPP, NIC TX level
    and power-save state. On balloon entry the world's state is saved and
    the psbox's own saved state restored (pristine base state on first
    entry), so the sandboxed app never observes another app's lingering
    state; on exit the psbox state is saved and the world state restored, so
    the app leaves no residual state behind.

    Because a real ondemand governor samples over windows longer than a
    balloon, the virtualized state also runs a per-psbox governor step at
    each balloon exit: if the device was substantially busy during the
    balloon the psbox's saved OPP jumps to the top, otherwise it decays one
    step — a faithful per-sandbox ondemand at balloon granularity.

    Off/suspended states are {e not} virtualized (reconstructing them per
    psbox would be prohibitively expensive, and revealing them would itself
    be a side channel); the virtual power meter masks them as idle power
    instead (see {!module:Psbox_core} in the core library). *)

type device =
  | Cpu_dev of Psbox_hw.Cpu.t
  | Accel_dev of Psbox_hw.Accel.t
  | Wifi_dev of Psbox_hw.Wifi.t

type t
(** The virtual power state of one device for one psbox. *)

val create : Psbox_engine.Sim.t -> device -> t
(** The psbox's initial saved state is the device's pristine base state
    (lowest OPP; NIC power-save). *)

val on_balloon_start : t -> unit
(** Save the world state, restore the psbox state. *)

val on_balloon_stop : t -> unit
(** Run the per-psbox governor step, save the psbox state, restore the world
    state. *)

val saved_opp : t -> int option
(** The psbox's saved OPP index (CPU/accelerator devices; [None] for NIC). *)

val saved_nic_state : t -> Psbox_hw.Wifi.power_state option
