type state = Runnable | Running | Blocked | Exited

type action =
  | Run of Psbox_engine.Time.span
  | Block
  | Sleep of Psbox_engine.Time.span
  | Yield
  | Exit

type program = unit -> action

type t = {
  tid : int;
  app : int;
  name : string;
  weight : float;
  mutable state : state;
  mutable core : int;
  mutable vruntime : float;
  mutable remaining : Psbox_engine.Time.span;
  mutable program : program;
  mutable wake_pending : bool;
  mutable last_wake : Psbox_engine.Time.t;
}

let next_tid = ref 0

let create ~app ~name ?(weight = 1024.0) ?(core = 0) ~program () =
  incr next_tid;
  {
    tid = !next_tid;
    app;
    name;
    weight;
    state = Runnable;
    core;
    vruntime = 0.0;
    remaining = 0;
    program;
    wake_pending = false;
    last_wake = Psbox_engine.Time.zero;
  }

let is_runnable t = t.state = Runnable || t.state = Running

let pp fmt t =
  Format.fprintf fmt "task%d(%s app%d core%d vrt=%.0f)" t.tid t.name t.app
    t.core t.vruntime
