open Psbox_engine

type opp = { freq_mhz : int; core_w : float; uncore_w : float }

type governor =
  | Ondemand of { up_threshold : float; sampling : Time.span }
  | Performance
  | Userspace

type t = {
  sim : Sim.t;
  opps : opp array;
  governor : governor;
  get_util : unit -> float;
  on_change : unit -> unit;
  mutable index : int;
  mutable tick : Sim.handle option;
  mutable stopped : bool;
  mutable frozen : bool;
}

let set_index d i =
  let i = max 0 (min i (Array.length d.opps - 1)) in
  if i <> d.index then begin
    d.index <- i;
    d.on_change ()
  end

let rec governor_tick d sampling up_threshold () =
  if not d.stopped then begin
    let util = d.get_util () in
    if not d.frozen then begin
      if util >= up_threshold then set_index d (Array.length d.opps - 1)
      else set_index d (d.index - 1)
    end;
    d.tick <- Some (Sim.schedule_after d.sim sampling (governor_tick d sampling up_threshold))
  end

let create sim ~opps ~governor ~get_util ~on_change =
  if Array.length opps = 0 then invalid_arg "Dvfs.create: no OPPs";
  let index = match governor with Performance -> Array.length opps - 1 | Ondemand _ | Userspace -> 0 in
  let d =
    { sim; opps; governor; get_util; on_change; index; tick = None;
      stopped = false; frozen = false }
  in
  (match governor with
  | Ondemand { up_threshold; sampling } ->
      d.tick <- Some (Sim.schedule_after sim sampling (governor_tick d sampling up_threshold))
  | Performance | Userspace -> ());
  d

let opp_index d = d.index
let current d = d.opps.(d.index)
let opps d = d.opps
let set_opp d i = set_index d i
let max_index d = Array.length d.opps - 1

let freeze d = d.frozen <- true
let thaw d = d.frozen <- false
let frozen d = d.frozen

let stop d =
  d.stopped <- true;
  match d.tick with Some h -> Sim.cancel h | None -> ()
