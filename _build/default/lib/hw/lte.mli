(** Cellular (LTE/4G) interface model (§7 extension 3 — the negative case).

    The radio's RRC power states are driven by timers agreed with the
    network, not by the OS: after traffic the radio holds the hot DCH state
    for seconds, demotes to FACH, and only then returns to idle (the
    long-tail behaviour of Huang et al. [41]). Because the OS cannot save or
    restore these states, psbox's power-state virtualization is infeasible
    here — the paper defers cellular psbox to future hardware support. This
    model exists to demonstrate exactly that: an app's observed
    energy-per-transfer swings with whatever its neighbours did to the
    radio state.

    States: [Idle] (20 mW) -> promotion (2 s of signaling at 0.45 W) -> [Dch] (1.0 W
    while active, holds 5 s after traffic) -> [Fach] (0.4 W, holds 12 s) ->
    [Idle]. *)

type state = Idle | Promoting | Dch | Fach

type t

val create :
  Psbox_engine.Sim.t ->
  ?name:string ->
  ?rate_mbps:float ->
  ?idle_w:float ->
  ?fach_w:float ->
  ?dch_w:float ->
  ?promoting_w:float ->
  ?promotion:Psbox_engine.Time.span ->
  ?dch_tail:Psbox_engine.Time.span ->
  ?fach_tail:Psbox_engine.Time.span ->
  unit ->
  t

val rail : t -> Power_rail.t
val state : t -> state

val send : t -> app:int -> bytes:int -> on_sent:(unit -> unit) -> unit
(** Queue a transfer; it transmits (FIFO) once the radio reaches DCH. *)

val sent_bytes : t -> app:int -> int

val tx_log : t -> (int * Psbox_engine.Time.t * Psbox_engine.Time.t) list
(** (app, air start, air end) per transfer, oldest first. *)

(** There is deliberately no [power_state]/[restore_power_state] pair here:
    the RRC machine belongs to the network. *)
