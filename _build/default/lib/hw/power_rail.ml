open Psbox_engine

type t = {
  sim : Sim.t;
  name : string;
  idle_w : float;
  timeline : Timeline.t;
}

let create sim ~name ~idle_w =
  { sim; name; idle_w; timeline = Timeline.create ~initial:idle_w () }

let name rail = rail.name
let idle_w rail = rail.idle_w
let set_power rail w = Timeline.set rail.timeline (Sim.now rail.sim) w
let power rail = Timeline.value_at rail.timeline (Sim.now rail.sim)
let energy_j rail ~from ~until = Timeline.integrate rail.timeline from until
let timeline rail = rail.timeline
