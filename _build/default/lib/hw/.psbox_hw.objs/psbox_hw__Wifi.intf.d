lib/hw/wifi.mli: Power_rail Psbox_engine
