lib/hw/dvfs.ml: Array Psbox_engine Sim Time
