lib/hw/power_rail.ml: Psbox_engine Sim Timeline
