lib/hw/gps.mli: Power_rail Psbox_engine
