lib/hw/lte.ml: Hashtbl List Power_rail Psbox_engine Queue Sim Time
