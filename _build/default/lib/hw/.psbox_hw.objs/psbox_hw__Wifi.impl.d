lib/hw/wifi.ml: Array List Power_rail Psbox_engine Sim Time
