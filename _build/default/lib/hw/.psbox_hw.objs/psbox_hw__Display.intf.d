lib/hw/display.mli: Power_rail Psbox_engine
