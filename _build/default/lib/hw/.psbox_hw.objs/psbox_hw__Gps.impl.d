lib/hw/gps.ml: Hashtbl Power_rail Printf Psbox_engine Sim Time
