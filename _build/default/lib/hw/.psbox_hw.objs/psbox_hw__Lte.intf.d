lib/hw/lte.mli: Power_rail Psbox_engine
