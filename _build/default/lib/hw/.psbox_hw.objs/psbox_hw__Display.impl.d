lib/hw/display.ml: Hashtbl Power_rail Printf Psbox_engine Sim
