lib/hw/power_rail.mli: Psbox_engine
