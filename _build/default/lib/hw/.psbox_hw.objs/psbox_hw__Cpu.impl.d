lib/hw/cpu.ml: Array Dvfs Power_rail Psbox_engine Sim Time
