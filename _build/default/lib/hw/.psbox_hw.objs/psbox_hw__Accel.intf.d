lib/hw/accel.mli: Dvfs Power_rail Psbox_engine
