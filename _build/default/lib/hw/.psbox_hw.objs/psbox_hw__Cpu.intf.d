lib/hw/cpu.mli: Dvfs Power_rail Psbox_engine
