lib/hw/dvfs.mli: Psbox_engine
