lib/hw/accel.ml: Array Dvfs Float List Power_rail Psbox_engine Sim Time
