(** A measurable power rail.

    Each hardware component drives exactly one rail; this mirrors the paper's
    prototype where CPU, GPU, DSP and the WiFi module each sit behind a
    distinct rail of the in-situ power meter. The rail keeps the full
    piecewise-constant power history so energy can be integrated exactly and
    a DAQ can resample it at any rate. *)

type t

val create : Psbox_engine.Sim.t -> name:string -> idle_w:float -> t
(** A rail whose draw starts at [idle_w] watts. *)

val name : t -> string

val idle_w : t -> float
(** The rail's baseline (idle) draw in watts. *)

val set_power : t -> float -> unit
(** Record the rail's instantaneous draw changing to the given watts at the
    current simulated time. *)

val power : t -> float
(** The current draw in watts. *)

val energy_j : t -> from:Psbox_engine.Time.t -> until:Psbox_engine.Time.t -> float
(** Exact energy over a window, in joules. *)

val timeline : t -> Psbox_engine.Timeline.t
(** The underlying power history. *)
