(** DSP benchmark apps (Table 5 / Figure 5), from the TI AM57 SDK examples.

    - [sgemm] — single-precision matrix multiplication kernels.
    - [dgemm] — double-precision kernels (longer, hotter).
    - [monte] — Monte-Carlo simulation: many short kernels.

    Each is a CPU task that prepares buffers and dispatches OpenCL-style
    kernels to the DSP command queue. Counter: [gflops]. *)

val sgemm :
  Psbox_kernel.System.t -> ?kernels:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t

val dgemm :
  Psbox_kernel.System.t -> ?kernels:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t

val monte :
  Psbox_kernel.System.t -> ?kernels:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t
