open Psbox_engine
module System = Psbox_kernel.System

let browser sys ?(objects = 5) app =
  let rng = Rng.split (System.rng sys) in
  Workload.spawn sys ~app ~name:"net-browser"
    (Workload.repeat objects (fun _ ->
         let rx = 8_000 + Rng.int rng 24_000 in
         [
           Workload.Compute (Time.ms (2 + Rng.int rng 4));
           Workload.Request
             {
               socket = 1;
               tx_bytes = 1_200 + Rng.int rng 1_200;
               rx_bytes = rx;
               rtt = Time.ms (25 + Rng.int rng 40);
             };
           Workload.Count ("kb", float_of_int rx /. 1024.0);
           Workload.Sleep (Time.ms (10 + Rng.int rng 40));
         ]))

let bulk_sender sys app ~name ~kb ~chunk_kb ~cpu_ms =
  let chunks = max 1 (kb / chunk_kb) in
  Workload.spawn sys ~app ~name
    (Workload.repeat chunks (fun _ ->
         let ops =
           if cpu_ms > 0 then [ Workload.Compute (Time.ms cpu_ms) ] else []
         in
         ops
         @ [
             Workload.Send { socket = 1; bytes = chunk_kb * 1024 };
             Workload.Count ("kb", float_of_int chunk_kb);
           ]))

let scp sys ?(kb = 2_048) app = bulk_sender sys app ~name:"scp" ~kb ~chunk_kb:24 ~cpu_ms:2

let wget sys ?(kb = 2_048) app =
  bulk_sender sys app ~name:"wget" ~kb ~chunk_kb:32 ~cpu_ms:0
