open Psbox_engine
module System = Psbox_kernel.System

let jitter rng base pct =
  let f = Rng.uniform rng ~lo:(1.0 -. pct) ~hi:(1.0 +. pct) in
  int_of_float (float_of_int base *. f)

let spawn_threads sys ~app ~name ?threads mk =
  let cores = Psbox_kernel.Smp.cores (System.smp sys) in
  let n = match threads with Some n -> max 1 (min n cores) | None -> cores in
  (* spread apps across cores: app k's first thread lands on core k mod n *)
  List.init n (fun i ->
      let core = (app.System.app_id + i) mod cores in
      Workload.spawn sys ~app
        ~name:(Printf.sprintf "%s.%d" name core)
        ~core (mk ~core))

(* Per-thread duty cycles approximate the paper's benchmarks: a
   single-threaded instance demands most of one core, so instance pairs fit
   the two-core machine and co-running reshuffles rather than slows them. *)

let bodytrack sys ?(frames = 1000) ?threads app =
  let period = Time.ms 33 in
  spawn_threads sys ~app ~name:"bodytrack" ?threads (fun ~core ->
      ignore core;
      let rng = Rng.split (System.rng sys) in
      Workload.repeat frames (fun _ ->
          let busy = jitter rng (Time.ms 11) 0.25 in
          let rest = max (Time.ms 2) (period - busy) in
          [ Workload.Compute busy; Workload.Count ("frames", 1.0); Workload.Sleep rest ]))

let calib3d sys ?(iterations = 60) ?threads app =
  spawn_threads sys ~app ~name:"calib3d" ?threads (fun ~core ->
      ignore core;
      let rng = Rng.split (System.rng sys) in
      Workload.repeat iterations (fun _ ->
          let burst = jitter rng (Time.ms 8) 0.3 in
          let stall = jitter rng (Time.ms 2) 0.5 in
          [
            Workload.Compute burst;
            Workload.Count ("kb", 1.5);
            Workload.Sleep stall;
          ]))

let dedup sys ?(chunks = 400) ?threads app =
  spawn_threads sys ~app ~name:"dedup" ?threads (fun ~core ->
      ignore core;
      let rng = Rng.split (System.rng sys) in
      Workload.repeat chunks (fun _ ->
          let burst = jitter rng (Time.ms 5) 0.2 in
          let io = jitter rng (Time.ms 3) 0.4 in
          [
            Workload.Compute burst;
            Workload.Count ("mb", 0.25);
            Workload.Sleep io;
          ]))
