open Psbox_engine
module System = Psbox_kernel.System
module Task = Psbox_kernel.Task
module Smp = Psbox_kernel.Smp
module Accel_driver = Psbox_kernel.Accel_driver
module Net_sched = Psbox_kernel.Net_sched
module Accel = Psbox_hw.Accel

type accel_spec = { kind : string; work_s : float; units : int; intensity : float }

let spec ?(units = 1) ?(intensity = 1.0) ~kind ~work_s () =
  { kind; work_s; units; intensity }

type op =
  | Compute of Time.span
  | Sleep of Time.span
  | Gpu_batch of accel_spec list
  | Dsp_batch of accel_spec list
  | Gpu_async of accel_spec
  | Dsp_async of accel_spec
  | Send of { socket : int; bytes : int }
  | Send_async of { socket : int; bytes : int }
  | Request of { socket : int; tx_bytes : int; rx_bytes : int; rtt : Time.span }
  | Count of string * float
  | Effect of (unit -> unit)

type script = unit -> op list option

let forever f () = Some (f ())

let repeat n f =
  let i = ref 0 in
  fun () ->
    if !i >= n then None
    else begin
      let ops = f !i in
      incr i;
      Some ops
    end

let submit_batch sys ~app ~driver specs ~wake =
  let remaining = ref (List.length specs) in
  List.iter
    (fun s ->
      let cmd =
        Accel.command ~app:app.System.app_id ~kind:s.kind ~work_s:s.work_s
          ~units:s.units ~intensity:s.intensity ()
      in
      Accel_driver.submit driver ~app:app.System.app_id cmd
        ~on_complete:(fun _ ->
          decr remaining;
          if !remaining = 0 then wake ()))
    specs;
  ignore sys

(* Fire-and-forget submission: the task resumes at driver acceptance (which
   an SGX-style driver defers while a foreign balloon holds the queue). *)
let submit_async sys ~app ~driver spec ~wake =
  let cmd =
    Accel.command ~app:app.System.app_id ~kind:spec.kind ~work_s:spec.work_s
      ~units:spec.units ~intensity:spec.intensity ()
  in
  Accel_driver.submit driver ~on_accepted:wake ~app:app.System.app_id cmd
    ~on_complete:(fun _ -> ());
  ignore sys

(* Response frames arrive in MTU-sized chunks after the round trip. *)
let deliver_response sys ~app ~socket ~bytes ~rtt ~wake =
  let netd = System.net sys in
  let chunk = 1500 in
  ignore
    (Sim.schedule_after (System.sim sys) rtt (fun () ->
         let n = max 1 ((bytes + chunk - 1) / chunk) in
         let remaining = ref n in
         for i = 0 to n - 1 do
           let sz = if i = n - 1 then bytes - (chunk * (n - 1)) else chunk in
           Net_sched.deliver_rx netd ~app:app.System.app_id ~socket
             ~bytes:(max 1 sz) ~on_rx:(fun _ ->
               decr remaining;
               if !remaining = 0 then wake ())
         done))

let spawn sys ~app ~name ?(core = 0) ?(weight = 1024.0) script =
  let queue : op Queue.t = Queue.create () in
  let task = ref None in
  let the_task () = match !task with Some t -> t | None -> assert false in
  let wake () = Smp.wake (System.smp sys) (the_task ()) in
  let rec next () : Task.action =
    if Queue.is_empty queue then
      match script () with
      | None -> Task.Exit
      | Some ops ->
          List.iter (fun op -> Queue.push op queue) ops;
          next ()
    else
      match Queue.pop queue with
      | Compute s -> Task.Run s
      | Sleep s -> Task.Sleep s
      | Count (key, v) ->
          System.bump app key v;
          next ()
      | Effect f ->
          f ();
          next ()
      | Gpu_batch specs ->
          submit_batch sys ~app ~driver:(System.gpu sys) specs ~wake;
          Task.Block
      | Dsp_batch specs ->
          submit_batch sys ~app ~driver:(System.dsp sys) specs ~wake;
          Task.Block
      | Gpu_async spec ->
          submit_async sys ~app ~driver:(System.gpu sys) spec ~wake;
          Task.Block
      | Dsp_async spec ->
          submit_async sys ~app ~driver:(System.dsp sys) spec ~wake;
          Task.Block
      | Send { socket; bytes } ->
          Net_sched.send (System.net sys) ~app:app.System.app_id ~socket ~bytes
            ~on_sent:(fun _ -> wake ());
          Task.Block
      | Send_async { socket; bytes } ->
          Net_sched.send (System.net sys) ~app:app.System.app_id ~socket ~bytes
            ~on_sent:(fun _ -> ());
          next ()
      | Request { socket; tx_bytes; rx_bytes; rtt } ->
          Net_sched.send (System.net sys) ~app:app.System.app_id ~socket
            ~bytes:tx_bytes ~on_sent:(fun _ ->
              deliver_response sys ~app ~socket ~bytes:rx_bytes ~rtt ~wake);
          Task.Block
  in
  let t = Task.create ~app:app.System.app_id ~name ~weight ~core ~program:next () in
  task := Some t;
  Smp.spawn (System.smp sys) t;
  t

let spawn_per_core sys ~app ~name mk =
  List.init (Smp.cores (System.smp sys)) (fun core ->
      spawn sys ~app ~name:(Printf.sprintf "%s.%d" name core) ~core (mk ~core))

let app_alive sys app =
  Smp.app_tasks (System.smp sys) ~app:app.System.app_id <> []

let run_until_idle sys ~apps ~timeout =
  let deadline = System.now sys + timeout in
  let rec loop () =
    if System.now sys < deadline && List.exists (app_alive sys) apps then begin
      System.run_for sys (Time.ms 1);
      loop ()
    end
  in
  loop ()
