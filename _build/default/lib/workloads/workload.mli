(** Workload programs.

    Benchmark apps are written as {e scripts}: generators that yield batches
    of high-level operations (compute bursts, accelerator command batches,
    packet sends, sleeps). {!spawn} compiles a script into a kernel task
    program, wiring accelerator completions and packet-sent interrupts to
    task wakeups. *)

type accel_spec = {
  kind : string;
  work_s : float;  (** device-seconds at the highest OPP *)
  units : int;
  intensity : float;
}

val spec : ?units:int -> ?intensity:float -> kind:string -> work_s:float -> unit -> accel_spec

type op =
  | Compute of Psbox_engine.Time.span  (** CPU burst *)
  | Sleep of Psbox_engine.Time.span
  | Gpu_batch of accel_spec list
      (** submit all commands, block until every one completes *)
  | Dsp_batch of accel_spec list
  | Gpu_async of accel_spec
      (** submit one command and continue as soon as the driver {e accepts}
          it (fire-and-forget). Under the SGX-style [Lock_requests] driver,
          acceptance stalls while a foreign balloon holds the queue — the
          submitting task blocks in "syscall context" until flush-others. *)
  | Dsp_async of accel_spec
  | Send of { socket : int; bytes : int }  (** blocking send *)
  | Send_async of { socket : int; bytes : int }
  | Request of { socket : int; tx_bytes : int; rx_bytes : int; rtt : Psbox_engine.Time.span }
      (** send a request, then block until the response (delivered as RX
          frames after [rtt]) fully arrives *)
  | Count of string * float  (** bump an app throughput counter *)
  | Effect of (unit -> unit)  (** arbitrary synchronous effect *)

type script = unit -> op list option
(** Yield the next batch of operations; [None] exits the task. *)

val forever : (unit -> op list) -> script
(** A script that never exits. *)

val repeat : int -> (int -> op list) -> script
(** [repeat n f] yields [f 0 .. f (n-1)] then exits. *)

val spawn :
  Psbox_kernel.System.t ->
  app:Psbox_kernel.System.app ->
  name:string ->
  ?core:int ->
  ?weight:float ->
  script ->
  Psbox_kernel.Task.t
(** Compile and admit a task running the script. *)

val spawn_per_core :
  Psbox_kernel.System.t ->
  app:Psbox_kernel.System.app ->
  name:string ->
  (core:int -> script) ->
  Psbox_kernel.Task.t list
(** One worker thread per CPU core (how the multithreaded PARSEC/OpenCV
    benchmarks use the machine). *)

val app_alive : Psbox_kernel.System.t -> Psbox_kernel.System.app -> bool
(** Whether the app still has non-exited tasks. *)

val run_until_idle :
  Psbox_kernel.System.t ->
  apps:Psbox_kernel.System.app list ->
  timeout:Psbox_engine.Time.span ->
  unit
(** Advance the simulation until every listed app's tasks have exited, or
    the timeout elapses, polling at 1 ms. *)
