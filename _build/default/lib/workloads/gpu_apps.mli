(** GPU benchmark apps (Table 5 / Figure 5).

    - [browser] — webkit browser loading a page: CPU parse/layout bursts,
      batches of render commands, think-time gaps.
    - [magic] — PowerVR "magic lantern" demo rendering at 60 fps.
    - [cube] — Qt rotating-cube demo at 60 fps (lighter frames).
    - [triangle] — synthetic stressor drawing 100k triangles/s offscreen:
      saturates the device with heavy command batches.

    Single-threaded drivers of the GPU command queue. Counter: [cmds]. *)

val browser :
  Psbox_kernel.System.t -> ?pages:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t

val magic :
  Psbox_kernel.System.t -> ?frames:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t

val cube :
  Psbox_kernel.System.t -> ?frames:int -> ?cmds:int -> ?units:int ->
  Psbox_kernel.System.app -> Psbox_kernel.Task.t
(** [cmds] per frame and [units] per command scale the load (the paper's
    Qt cube saturates its GPU; two instances contend). *)

val triangle :
  Psbox_kernel.System.t -> ?batches:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t
