open Psbox_engine
module System = Psbox_kernel.System

let ms_f rng lo hi = Rng.uniform rng ~lo ~hi /. 1e3

(* One page load: parse, then a sequence of layout/paint command bursts
   separated by think-time gaps. *)
let page_ops rng =
  let bursts = 4 + Rng.int rng 4 in
  let parse = [ Workload.Compute (Time.ms (15 + Rng.int rng 10)) ] in
  let burst _ =
    let cmds = 2 + Rng.int rng 2 in
    let specs =
      List.init cmds (fun _ ->
          Workload.spec ~kind:"paint" ~work_s:(ms_f rng 1.0 4.0)
            ~units:(1 + Rng.int rng 2)
            ~intensity:(Rng.uniform rng ~lo:0.8 ~hi:1.2)
            ())
    in
    [
      Workload.Compute (Time.ms (3 + Rng.int rng 6));
      Workload.Gpu_batch specs;
      Workload.Count ("cmds", float_of_int cmds);
      Workload.Sleep (Time.ms (15 + Rng.int rng 30));
    ]
  in
  parse @ List.concat (List.init bursts burst)

let browser sys ?(pages = 1) app =
  let rng = Rng.split (System.rng sys) in
  Workload.spawn sys ~app ~name:"gpu-browser"
    (Workload.repeat pages (fun _ -> page_ops rng))

let frame_app sys app ~name ~frames ~cmds ~work_lo ~work_hi ~units ~intensity =
  let rng = Rng.split (System.rng sys) in
  let period = Time.us 16_667 in
  Workload.spawn sys ~app ~name
    (Workload.repeat frames (fun _ ->
         let specs =
           List.init cmds (fun _ ->
               Workload.spec ~kind:"frame" ~work_s:(ms_f rng work_lo work_hi)
                 ~units ~intensity ())
         in
         let cpu = Time.ms 2 in
         [
           Workload.Compute cpu;
           Workload.Gpu_batch specs;
           Workload.Count ("cmds", float_of_int cmds);
           Workload.Sleep (max (Time.ms 1) (period - cpu - Time.ms 6));
         ]))

let magic sys ?(frames = 600) app =
  frame_app sys app ~name:"magic" ~frames ~cmds:3 ~work_lo:2.0 ~work_hi:4.0
    ~units:2 ~intensity:1.2

let cube sys ?(frames = 600) ?(cmds = 1) ?(units = 1) app =
  frame_app sys app ~name:"cube" ~frames ~cmds ~work_lo:2.0 ~work_hi:3.0
    ~units ~intensity:1.0

let triangle sys ?(batches = 10_000) app =
  let rng = Rng.split (System.rng sys) in
  Workload.spawn sys ~app ~name:"triangle"
    (Workload.repeat batches (fun _ ->
         let specs =
           List.init 6 (fun _ ->
               Workload.spec ~kind:"tri" ~work_s:(ms_f rng 2.5 3.5) ~units:1
                 ~intensity:1.3 ())
         in
         [
           Workload.Compute (Time.us 300);
           Workload.Gpu_batch specs;
           Workload.Count ("cmds", 6.0);
         ]))
