open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox

type ctl = {
  mutable fidelity : int;
  mutable obs : (Time.t * float * int) list; (* newest first *)
}

(* Per-frame render cost (ms of CPU) at each fidelity level, 30 fps. *)
let cost_ms = [| 1.0; 3.5; 6.5; 10.0; 14.0 |]
let min_fidelity_cost_ms = cost_ms.(0)
let max_fidelity_cost_ms = cost_ms.(Array.length cost_ms - 1)

let gesture sys ?(frames = 10_000) app =
  let rng = Rng.split (System.rng sys) in
  (* input-dependent load: the number of contours performs a bounded random
     walk, so the gesture task's power impact varies over time *)
  let contours = ref 4 in
  Workload.spawn sys ~app ~name:"gesture" ~core:0
    (Workload.repeat frames (fun _ ->
         contours := max 1 (min 12 (!contours + Rng.int rng 3 - 1));
         let busy = Time.of_sec_f (float_of_int !contours *. 1.4e-3) in
         let period = Time.ms 33 in
         [ Workload.Compute busy; Workload.Sleep (max (Time.ms 2) (period - busy)) ]))

let rendering sys app ~psbox ?(budget_w = 0.8) ?(frames = 10_000) () =
  let ctl = { fidelity = 2; obs = [] } in
  let sim = System.sim sys in
  let period = Time.ms 33 in
  (* adaptation cycle in frames: free-running, then an observation window
     inside the psbox *)
  let cycle = 15 and observe = 6 in
  let frame_in_cycle = ref 0 in
  let obs_energy0 = ref 0.0 in
  let obs_t0 = ref Time.zero in
  let enter () =
    ignore
      (Sim.schedule_after sim 0 (fun () ->
           Psbox.enter psbox;
           obs_t0 := Sim.now sim;
           obs_energy0 := 0.0))
  in
  let read_and_leave () =
    ignore
      (Sim.schedule_after sim 0 (fun () ->
           if Psbox.inside psbox then begin
             let mj = Psbox.read_mj psbox in
             let dt = Time.to_sec_f (Sim.now sim - !obs_t0) in
             if dt > 0.0 then begin
               let watts = mj /. 1e3 /. dt in
               ctl.obs <- (Sim.now sim, watts, ctl.fidelity) :: ctl.obs;
               (* trade fidelity for power *)
               if watts > budget_w && ctl.fidelity > 0 then
                 ctl.fidelity <- ctl.fidelity - 1
               else if watts < 0.6 *. budget_w && ctl.fidelity < 4 then
                 ctl.fidelity <- ctl.fidelity + 1
             end;
             Psbox.leave psbox
           end))
  in
  let task =
    Workload.spawn sys ~app ~name:"rendering" ~core:0
      (Workload.repeat frames (fun _ ->
           let k = !frame_in_cycle in
           frame_in_cycle := (k + 1) mod cycle;
           let busy = Time.of_sec_f (cost_ms.(ctl.fidelity) /. 1e3) in
           let frame =
             [
               Workload.Compute busy;
               Workload.Count ("frames", 1.0);
               Workload.Sleep (max (Time.ms 1) (period - busy));
             ]
           in
           if k = cycle - observe then Workload.Effect enter :: frame
           else if k = cycle - 1 then frame @ [ Workload.Effect read_and_leave ]
           else frame))
  in
  (ctl, task)

let fidelity ctl = ctl.fidelity
let observations ctl = List.rev ctl.obs
