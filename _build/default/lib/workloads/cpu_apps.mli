(** CPU benchmark apps (Table 5 / Figure 5).

    - [bodytrack] — PARSEC vision pipeline tracking body movement:
      frame-paced bursts.
    - [calib3d] — OpenCV camera calibration / 3D reconstruction: long
      optimization bursts with small stalls.
    - [dedup] — PARSEC streaming compression with deduplication: steady
      chunk pipeline.

    Each spawns [threads] worker threads (default: one per core) doing a
    fixed amount of work each, then exits; pass a large work count to
    approximate an endless run. Throughput counters: [frames] (bodytrack),
    [kb] (calib3d), [mb] (dedup). *)

val bodytrack :
  Psbox_kernel.System.t -> ?frames:int -> ?threads:int ->
  Psbox_kernel.System.app -> Psbox_kernel.Task.t list

val calib3d :
  Psbox_kernel.System.t -> ?iterations:int -> ?threads:int ->
  Psbox_kernel.System.app -> Psbox_kernel.Task.t list

val dedup :
  Psbox_kernel.System.t -> ?chunks:int -> ?threads:int ->
  Psbox_kernel.System.app -> Psbox_kernel.Task.t list
