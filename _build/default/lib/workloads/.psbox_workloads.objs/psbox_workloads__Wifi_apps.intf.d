lib/workloads/wifi_apps.mli: Psbox_kernel
