lib/workloads/cpu_apps.ml: List Printf Psbox_engine Psbox_kernel Rng Time Workload
