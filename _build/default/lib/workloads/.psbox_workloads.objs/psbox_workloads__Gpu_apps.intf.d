lib/workloads/gpu_apps.mli: Psbox_kernel
