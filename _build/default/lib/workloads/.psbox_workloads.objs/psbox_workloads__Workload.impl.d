lib/workloads/workload.ml: List Printf Psbox_engine Psbox_hw Psbox_kernel Queue Sim Time
