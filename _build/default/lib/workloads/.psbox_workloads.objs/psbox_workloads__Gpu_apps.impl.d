lib/workloads/gpu_apps.ml: List Psbox_engine Psbox_kernel Rng Time Workload
