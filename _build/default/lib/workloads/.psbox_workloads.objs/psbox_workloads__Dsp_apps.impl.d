lib/workloads/dsp_apps.ml: Psbox_engine Psbox_kernel Rng Time Workload
