lib/workloads/workload.mli: Psbox_engine Psbox_kernel
