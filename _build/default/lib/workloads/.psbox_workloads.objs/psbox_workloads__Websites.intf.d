lib/workloads/websites.mli: Psbox_engine Psbox_kernel
