lib/workloads/websites.ml: Array List Printf Psbox_engine Psbox_kernel Rng Time Workload
