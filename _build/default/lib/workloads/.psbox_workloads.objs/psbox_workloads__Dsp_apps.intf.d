lib/workloads/dsp_apps.mli: Psbox_kernel
