lib/workloads/cpu_apps.mli: Psbox_kernel
