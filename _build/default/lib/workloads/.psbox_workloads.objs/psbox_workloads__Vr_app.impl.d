lib/workloads/vr_app.ml: Array List Psbox_core Psbox_engine Psbox_kernel Rng Sim Time Workload
