lib/workloads/vr_app.mli: Psbox_core Psbox_engine Psbox_kernel
