(** The end-to-end VR use case of §6.4.

    Two continuously-running CPU tasks: the {e gesture} task processes video
    frames whose cost varies with input (number of hand contours), and the
    {e rendering} task animates water waves at a fidelity level it trades
    for power at run time.

    The rendering task is power-aware through its psbox: periodically it
    enters the box, renders a short observation window, reads the virtual
    power meter, adapts its fidelity toward a power budget, and leaves —
    the "pay as you go" pattern. Without insulation its readings would be
    polluted by the gesture task's input-dependent power. *)

type ctl
(** Handle on the rendering task's adaptation state. *)

val gesture :
  Psbox_kernel.System.t -> ?frames:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t

val rendering :
  Psbox_kernel.System.t ->
  Psbox_kernel.System.app ->
  psbox:Psbox_core.Psbox.t ->
  ?budget_w:float ->
  ?frames:int ->
  unit ->
  ctl * Psbox_kernel.Task.t
(** [budget_w] defaults to 0.8 W. The psbox must enclose the same app and be
    bound to the CPU. *)

val fidelity : ctl -> int
(** Current fidelity level, 0 (lowest) to 4. *)

val observations : ctl -> (Psbox_engine.Time.t * float * int) list
(** (time, observed watts, fidelity then in effect), oldest first. *)

val min_fidelity_cost_ms : float
val max_fidelity_cost_ms : float
