open Psbox_engine
module System = Psbox_kernel.System

let site_names =
  [|
    "google"; "youtube"; "facebook"; "baidu"; "wikipedia";
    "reddit"; "yahoo"; "amazon"; "twitter"; "instagram";
  |]

(* Per-site shape parameters: number of render bursts, commands per burst,
   command weight, inter-burst gap. Chosen to be mutually distinguishable
   under DTW while plausible for page rendering. *)
let shape site =
  match site mod 10 with
  | 0 -> (3, 1, 1.5, 30) (* google: sparse, light *)
  | 1 -> (8, 3, 4.0, 12) (* youtube: heavy, dense *)
  | 2 -> (6, 2, 2.5, 20)
  | 3 -> (4, 2, 1.8, 28)
  | 4 -> (3, 1, 2.8, 45) (* wikipedia: few, medium, long gaps *)
  | 5 -> (7, 2, 1.6, 15)
  | 6 -> (5, 3, 2.2, 22)
  | 7 -> (6, 1, 3.2, 18)
  | 8 -> (9, 1, 1.4, 10) (* twitter: many tiny *)
  | _ -> (5, 2, 3.6, 26)

let load_page sys app ~site ~rng =
  let bursts, cmds, work_ms, gap_ms = shape site in
  let ops _ =
    List.concat
      (List.init bursts (fun k ->
           let specs =
             List.init cmds (fun _ ->
                 Workload.spec ~kind:"render"
                   ~work_s:
                     (Rng.uniform rng ~lo:(work_ms *. 0.85) ~hi:(work_ms *. 1.15)
                     /. 1e3)
                   ~units:(1 + (k mod 2))
                   ~intensity:(Rng.uniform rng ~lo:0.95 ~hi:1.05)
                   ())
           in
           [
             Workload.Compute (Time.ms (2 + Rng.int rng 3));
             Workload.Gpu_batch specs;
             Workload.Sleep (Time.ms (gap_ms + Rng.int rng 6));
           ]))
  in
  Workload.spawn sys ~app ~name:(Printf.sprintf "site-%s" site_names.(site mod 10))
    (Workload.repeat 1 ops)

let camouflage sys app ?(rounds = 100) () =
  let rng = Rng.split (System.rng sys) in
  Workload.spawn sys ~app ~name:"camouflage"
    (Workload.repeat rounds (fun _ ->
         [
           Workload.Gpu_batch
             [ Workload.spec ~kind:"cover" ~work_s:0.0008 ~intensity:0.5 () ];
           Workload.Sleep (Time.ms (8 + Rng.int rng 5));
         ]))
