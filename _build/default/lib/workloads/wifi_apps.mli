(** WiFi benchmark apps (Table 5 / Figure 5).

    - [browser] — a text browser loading a page over the network: small
      requests, response bursts, think time.
    - [scp] — transmitting a file over ssh: per-chunk cipher CPU work plus a
      blocking send.
    - [wget] — transmitting a file over http: back-to-back blocking sends.

    Counter: [kb] (kilobytes moved). *)

val browser :
  Psbox_kernel.System.t -> ?objects:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t

val scp :
  Psbox_kernel.System.t -> ?kb:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t

val wget :
  Psbox_kernel.System.t -> ?kb:int -> Psbox_kernel.System.app -> Psbox_kernel.Task.t
