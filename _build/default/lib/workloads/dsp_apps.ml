open Psbox_engine
module System = Psbox_kernel.System

let kernel_loop sys app ~name ~kernels ~work_ms ~units ~intensity ~prep_ms
    ~gap_ms ~gflops =
  let rng = Rng.split (System.rng sys) in
  Workload.spawn sys ~app ~name
    (Workload.repeat kernels (fun _ ->
         let work =
           Rng.uniform rng ~lo:(work_ms *. 0.9) ~hi:(work_ms *. 1.1) /. 1e3
         in
         [
           Workload.Compute (Time.ms prep_ms);
           Workload.Dsp_batch [ Workload.spec ~kind:name ~work_s:work ~units ~intensity () ];
           Workload.Count ("gflops", gflops);
           Workload.Sleep (Time.ms gap_ms);
         ]))

(* Duty cycles near 50% per app: two co-running kernels fit the DSP's
   capacity even when psbox temporal balloons serialize them, mirroring the
   paper's DSP scenarios where co-running does not starve anyone. *)

let sgemm sys ?(kernels = 40) app =
  kernel_loop sys app ~name:"sgemm" ~kernels ~work_ms:60.0 ~units:1
    ~intensity:1.0 ~prep_ms:2 ~gap_ms:65 ~gflops:4.0

let dgemm sys ?(kernels = 24) app =
  kernel_loop sys app ~name:"dgemm" ~kernels ~work_ms:120.0 ~units:1
    ~intensity:1.15 ~prep_ms:3 ~gap_ms:110 ~gflops:2.0

let monte sys ?(kernels = 200) app =
  kernel_loop sys app ~name:"monte" ~kernels ~work_ms:15.0 ~units:1
    ~intensity:0.9 ~prep_ms:1 ~gap_ms:22 ~gflops:1.0
