(** Synthetic Alexa-top-10 website GPU signatures (for §2.5).

    Different web pages generate different GPU workloads and hence unique
    power signatures; this module provides ten distinguishable per-site
    command patterns with run-to-run jitter, used by the side-channel
    experiment's victim browser. *)

val site_names : string array
(** Ten site labels. *)

val load_page :
  Psbox_kernel.System.t ->
  Psbox_kernel.System.app ->
  site:int ->
  rng:Psbox_engine.Rng.t ->
  Psbox_kernel.Task.t
(** Spawn a task performing one load of site [site mod 10]; the task exits
    when the page is loaded. *)

val camouflage :
  Psbox_kernel.System.t -> Psbox_kernel.System.app -> ?rounds:int -> unit -> Psbox_kernel.Task.t
(** The attacker's light GPU workload (its cover story while it watches the
    power meter). *)
