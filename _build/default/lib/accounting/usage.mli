(** Per-app hardware usage records.

    The raw input of every accounting heuristic: who used which fraction of a
    device, when. Helpers convert the kernel's traces (CPU scheduling spans,
    accelerator command logs, NIC packet airtime) into usage spans. *)

type span = {
  app : int;
  start : Psbox_engine.Time.t;
  stop : Psbox_engine.Time.t;
  share : float;  (** fraction of device capacity, e.g. 1 core of 2 = 0.5 *)
}

val of_sched_trace :
  cores:int -> (int * int) Psbox_engine.Trace.span list -> span list
(** From {!Psbox_kernel.Smp.sched_trace} spans tagged [(core, app)]; idle
    pseudo-apps ([-1], [-2]) are dropped. Each span's share is [1/cores]. *)

val of_commands : units:int -> Psbox_hw.Accel.command list -> span list
(** From an accelerator's completed commands; each command contributes
    [units_used/units] between its device start and finish. *)

val of_packets : Psbox_hw.Wifi.pkt list -> span list
(** From NIC packets; each contributes share 1 during its airtime. *)

(** {1 Share sweep} *)

type segment = {
  t0 : Psbox_engine.Time.t;
  t1 : Psbox_engine.Time.t;
  shares : (int * float) list;  (** app -> summed share, only nonzero *)
}

val segments :
  span list ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  segment list
(** Sweep the spans into maximal segments of constant per-app shares,
    clipped to the window, oldest first, gap segments (nobody active)
    included with empty [shares]. *)
