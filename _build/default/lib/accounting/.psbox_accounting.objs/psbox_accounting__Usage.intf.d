lib/accounting/usage.mli: Psbox_engine Psbox_hw
