lib/accounting/split.mli: Psbox_engine Usage
