lib/accounting/split.ml: Float Hashtbl List Psbox_engine Time Timeline Usage
