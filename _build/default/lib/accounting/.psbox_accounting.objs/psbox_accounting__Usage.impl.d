lib/accounting/usage.ml: Hashtbl List Psbox_engine Psbox_hw Time Trace
