open Psbox_engine

type span = { app : int; start : Time.t; stop : Time.t; share : float }

let of_sched_trace ~cores spans =
  let share = 1.0 /. float_of_int cores in
  List.filter_map
    (fun s ->
      let _, app = s.Trace.tag in
      if app < 0 then None
      else Some { app; start = s.Trace.start; stop = s.Trace.stop; share })
    spans

let of_commands ~units cmds =
  List.filter_map
    (fun c ->
      match (c.Psbox_hw.Accel.started_at, c.Psbox_hw.Accel.finished_at) with
      | Some t0, Some t1 ->
          Some
            {
              app = c.Psbox_hw.Accel.app;
              start = t0;
              stop = t1;
              share = float_of_int c.Psbox_hw.Accel.units /. float_of_int units;
            }
      | _ -> None)
    cmds

let of_packets pkts =
  List.filter_map
    (fun p ->
      match (p.Psbox_hw.Wifi.air_start, p.Psbox_hw.Wifi.air_end) with
      | Some t0, Some t1 ->
          Some { app = p.Psbox_hw.Wifi.app; start = t0; stop = t1; share = 1.0 }
      | _ -> None)
    pkts

type segment = { t0 : Time.t; t1 : Time.t; shares : (int * float) list }

let segments spans ~from ~until =
  (* event sweep: +share at start, -share at stop *)
  let events =
    List.concat_map
      (fun s ->
        let start = max s.start from and stop = min s.stop until in
        if stop <= start then []
        else [ (start, s.app, s.share); (stop, s.app, -.s.share) ])
      spans
  in
  let events = List.sort (fun (t1, _, _) (t2, _, _) -> compare t1 t2) events in
  let shares : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let current () =
    Hashtbl.fold
      (fun app sh acc -> if sh > 1e-9 then (app, sh) :: acc else acc)
      shares []
    |> List.sort compare
  in
  let apply (_, app, delta) =
    let cur = match Hashtbl.find_opt shares app with Some x -> x | None -> 0.0 in
    Hashtbl.replace shares app (cur +. delta)
  in
  let rec sweep t events acc =
    match events with
    | [] -> if until > t then { t0 = t; t1 = until; shares = current () } :: acc else acc
    | _ ->
        let t_next = match events with (te, _, _) :: _ -> te | [] -> until in
        let now_batch, later =
          List.partition (fun (te, _, _) -> te = t_next) events
        in
        let acc =
          if t_next > t then { t0 = t; t1 = t_next; shares = current () } :: acc
          else acc
        in
        List.iter apply now_batch;
        sweep t_next later acc
  in
  List.rev (sweep from events [])
