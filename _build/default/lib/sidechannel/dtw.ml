let znormalize xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
    let var =
      Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs
      /. float_of_int n
    in
    let sd = sqrt var in
    if sd < 1e-12 then Array.map (fun x -> x -. mean) xs
    else Array.map (fun x -> (x -. mean) /. sd) xs
  end

let downsample xs ~factor =
  if factor <= 0 then invalid_arg "Dtw.downsample: factor must be positive";
  let n = Array.length xs / factor in
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for k = 0 to factor - 1 do
        acc := !acc +. xs.((i * factor) + k)
      done;
      !acc /. float_of_int factor)

let distance ?band a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then Float.infinity
  else begin
    (* band width rescaled for unequal lengths, as in Sakoe-Chiba *)
    let w =
      match band with
      | None -> max n m
      | Some w -> max w (abs (n - m))
    in
    let prev = Array.make (m + 1) Float.infinity in
    let curr = Array.make (m + 1) Float.infinity in
    prev.(0) <- 0.0;
    for i = 1 to n do
      Array.fill curr 0 (m + 1) Float.infinity;
      let jlo = max 1 (i - w) and jhi = min m (i + w) in
      for j = jlo to jhi do
        let cost = Float.abs (a.(i - 1) -. b.(j - 1)) in
        let best = Float.min prev.(j) (Float.min curr.(j - 1) prev.(j - 1)) in
        curr.(j) <- cost +. best
      done;
      Array.blit curr 0 prev 0 (m + 1)
    done;
    prev.(m)
  end
