type model = {
  templates : (string * float array) list;
  downsample : int;
  band : int option;
}

let preprocess m trace = Dtw.znormalize (Dtw.downsample trace ~factor:m.downsample)

let train labelled ?(downsample = 50) ?band () =
  let m = { templates = []; downsample; band } in
  let templates =
    List.map (fun (label, trace) -> (label, preprocess m trace)) labelled
  in
  { m with templates }

let classify m trace =
  match m.templates with
  | [] -> invalid_arg "Attack.classify: empty model"
  | (l0, t0) :: rest ->
      let x = preprocess m trace in
      let d0 = Dtw.distance ?band:m.band t0 x in
      let best, _ =
        List.fold_left
          (fun (bl, bd) (l, t) ->
            let d = Dtw.distance ?band:m.band t x in
            if d < bd then (l, d) else (bl, bd))
          (l0, d0) rest
      in
      best

let success_rate m tests =
  match tests with
  | [] -> 0.0
  | _ ->
      let hits =
        List.fold_left
          (fun acc (label, trace) ->
            if classify m trace = label then acc + 1 else acc)
          0 tests
      in
      float_of_int hits /. float_of_int (List.length tests)
