(** The power side-channel attacker of §2.5.

    The attacker trains once on labelled power traces (collected while the
    victim runs alone) and later classifies observed traces by nearest DTW
    distance, inferring which website the victim browser is visiting. Used
    both to demonstrate the vulnerability (attacker observes the shared rail
    or an accounting-derived share) and to show psbox closing it (attacker
    observes only its own sandboxed view). *)

type model

val train : (string * float array) list -> ?downsample:int -> ?band:int -> unit -> model
(** [train labelled] builds a 1-NN model from (label, trace) pairs. Traces
    are mean-pooled by [downsample] (default 50) and z-normalized. *)

val classify : model -> float array -> string
(** Label of the nearest training trace. @raise Invalid_argument on an empty
    model. *)

val success_rate : model -> (string * float array) list -> float
(** Fraction of test traces classified with their true label. *)
