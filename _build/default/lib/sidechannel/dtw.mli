(** Dynamic time warping over power traces.

    The similarity measure the paper's attacker uses (§2.5) to match an
    observed GPU power trace against labelled training traces. Classic
    O(n*m) dynamic program with an optional Sakoe-Chiba band and z-score
    normalization. *)

val distance : ?band:int -> float array -> float array -> float
(** [distance ?band a b] is the DTW alignment cost with absolute-difference
    local cost. [band] constrains |i - j| (after rescaling for unequal
    lengths); omitted = unconstrained. Returns [infinity] when the band
    admits no path; [infinity] if either input is empty. *)

val znormalize : float array -> float array
(** Subtract the mean and divide by the standard deviation (left unscaled
    when the deviation is ~0). *)

val downsample : float array -> factor:int -> float array
(** Mean-pool by [factor]; the usual preprocessing before DTW on long
    100 kHz traces. @raise Invalid_argument if [factor <= 0]. *)
