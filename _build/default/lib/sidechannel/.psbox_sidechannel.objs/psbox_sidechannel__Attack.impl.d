lib/sidechannel/attack.ml: Dtw List
