lib/sidechannel/attack.mli:
