lib/sidechannel/dtw.mli:
