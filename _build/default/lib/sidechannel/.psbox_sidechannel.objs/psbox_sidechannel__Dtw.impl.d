lib/sidechannel/dtw.ml: Array Float
