(** App-defined power events (§8.2).

    Instead of polling its virtual power meter, an app subscribes to
    temporal predicates over the psbox sample stream — "power above 1 W for
    5 ms", "a 0.5 W spike", "power keeps rising" — the way today's apps
    register sensor listeners. Evaluation can be offloaded to a
    {!Psbox_meter.Sensor_hub}, in which case the hub's processing cost and
    latency are modelled and charged to the hub's own rail.

    Predicates are evaluated over the samples of each polling period while
    the app is inside its psbox (there is nothing to observe outside);
    {!evaluate} is the pure core and is usable on any sample train. *)

type predicate =
  | Above of { watts : float; lasting : Psbox_engine.Time.span }
      (** power continuously above [watts] for at least [lasting] *)
  | Below of { watts : float; lasting : Psbox_engine.Time.span }
  | Spike of { delta_w : float; within : Psbox_engine.Time.span }
      (** power rises by at least [delta_w] within [within] *)
  | Rising of { lasting : Psbox_engine.Time.span }
      (** power nondecreasing (and net increasing) for [lasting] *)

val evaluate : predicate -> Psbox_meter.Sample.t array -> Psbox_engine.Time.t option
(** First instant at which the predicate is satisfied, if any. *)

type subscription

val subscribe :
  ?hub:Psbox_meter.Sensor_hub.t ->
  ?period:Psbox_engine.Time.span ->
  ?sample_period:Psbox_engine.Time.span ->
  Psbox_kernel.System.t ->
  Psbox.t ->
  predicate:predicate ->
  (Psbox_engine.Time.t -> unit) ->
  subscription
(** Evaluate the predicate over each polling [period] (default 50 ms) of
    psbox samples (default 1 ms sample period); the callback receives the
    trigger instant, at most once per period. With [hub], evaluation
    completes only after the hub has chewed through the batch (its power
    shows on the hub rail). *)

val cancel : subscription -> unit

val fired : subscription -> int
(** How many times the callback has fired. *)
