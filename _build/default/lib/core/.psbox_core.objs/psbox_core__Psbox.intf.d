lib/core/psbox.mli: Psbox_engine Psbox_kernel Psbox_meter
