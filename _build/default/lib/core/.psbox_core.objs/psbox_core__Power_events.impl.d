lib/core/power_events.ml: Array Float Psbox Psbox_engine Psbox_kernel Psbox_meter Sim Time
