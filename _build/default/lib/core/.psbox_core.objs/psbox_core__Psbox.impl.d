lib/core/psbox.ml: Array Float List Obj Psbox_engine Psbox_hw Psbox_kernel Psbox_meter Sim Time Timeline
