lib/core/power_events.mli: Psbox Psbox_engine Psbox_kernel Psbox_meter
