open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Websites = Psbox_workloads.Websites
module W = Psbox_workloads.Workload
module Attack = Psbox_sidechannel.Attack
module Daq = Psbox_meter.Daq

type result = {
  trials : int;
  success_no_psbox : float;
  success_psbox : float;
  random_guess : float;
}

let window = Time.ms 700
let sample_period = Time.ms 1

let gpu_rail sys =
  Psbox_hw.Accel.rail (Psbox_kernel.Accel_driver.device (System.gpu sys))

(* One victim page load; returns the attacker's observation as raw watts. *)
let observe ~seed ~site ~(view : [ `Rail | `Psbox ]) ~with_attacker () =
  (* the SGX-class GPU runs at a fixed clock (no DVFS), as on the paper's
     test platform; signatures then differ only by the victim's workload *)
  let sys =
    System.create ~seed ~cores:2 ~gpu:true
      ~gpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let victim = System.new_app sys ~name:"victim" in
  let rng = Rng.split (System.rng sys) in
  ignore (Websites.load_page sys victim ~site ~rng);
  let attacker = System.new_app sys ~name:"attacker" in
  if with_attacker then ignore (Websites.camouflage sys attacker ~rounds:1_000_000 ());
  System.start sys;
  let box =
    match view with
    | `Psbox ->
        let b = Psbox.create sys ~app:attacker.System.app_id ~hw:[ Psbox.Gpu ] in
        Psbox.enter b;
        Some b
    | `Rail -> None
  in
  let t0 = System.now sys in
  System.run_for sys window;
  let values =
    match box with
    | Some b ->
        let samples = Psbox.sample ~period:sample_period b in
        Psbox_meter.Sample.values samples
    | None ->
        let daq = Daq.create ~rate_hz:1000 () in
        Psbox_meter.Sample.values
          (Daq.capture daq (gpu_rail sys) ~from:t0 ~until:(t0 + window))
  in
  (match box with Some b -> Psbox.leave b | None -> ());
  System.shutdown sys;
  values

let run ?(seed = 19) ?(trials_per_site = 2) () =
  let sites = Array.length Websites.site_names in
  (* training: victim alone, attacker records the labelled rail traces *)
  let training =
    List.init sites (fun site ->
        ( Websites.site_names.(site),
          observe ~seed:(seed + site) ~site ~view:`Rail ~with_attacker:false ()
        ))
  in
  let model = Attack.train training ~downsample:5 ~band:80 () in
  let tests view =
    List.concat
      (List.init trials_per_site (fun trial ->
           List.init sites (fun site ->
               let seed = seed + 1000 + (trial * 131) + (site * 17) in
               ( Websites.site_names.(site),
                 observe ~seed ~site ~view ~with_attacker:true () ))))
  in
  let success_no_psbox = Attack.success_rate model (tests `Rail) in
  let success_psbox = Attack.success_rate model (tests `Psbox) in
  let trials = trials_per_site * sites in
  let result =
    {
      trials;
      success_no_psbox;
      success_psbox;
      random_guess = 1.0 /. float_of_int sites;
    }
  in
  let report =
    {
      Report.id = "sidechan";
      title = "GPU power side channel (paper Sec. 2.5)";
      items =
        [
          Report.table
            ~headers:[ "attacker's observation"; "success rate"; "vs random (10%)" ]
            [
              [
                "shared GPU power (no psbox)";
                Printf.sprintf "%.0f%%" (success_no_psbox *. 100.0);
                Printf.sprintf "%.1fx" (success_no_psbox /. result.random_guess);
              ];
              [
                "own psbox only";
                Printf.sprintf "%.0f%%" (success_psbox *. 100.0);
                Printf.sprintf "%.1fx" (success_psbox /. result.random_guess);
              ];
            ];
          Report.Text
            (Printf.sprintf
               "%d trials (%d sites x %d loads). DTW 1-NN trained on solo \
                traces. psbox makes the victim's GPU activity \
                indistinguishable from idle."
               trials sites trials_per_site);
        ];
    }
  in
  (report, result)
