open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module W = Psbox_workloads.Workload
module Gpu_apps = Psbox_workloads.Gpu_apps

type result = {
  browser_drop_factor : float;
  triangle_delta_pct : float;
}

(* A browsing loop with pages of sequential render batches and a short gap
   between pages: page progress is bound by per-batch GPU latency, the worst
   case for balloon draining (each batch first waits out triangle's deep
   in-flight pipeline). *)
let busy_browser sys app =
  let rng = Rng.split (System.rng sys) in
  W.spawn sys ~app ~name:"busy-browser"
    (W.forever (fun () ->
         let batch _ =
           [
             W.Compute (Time.us 150);
             W.Gpu_batch
               [ W.spec ~kind:"paint" ~work_s:(Rng.uniform rng ~lo:0.6e-3 ~hi:1.0e-3) () ];
             W.Count ("cmds", 1.0);
           ]
         in
         List.concat (List.init 20 batch)
         @ [ W.Count ("pages", 1.0); W.Sleep (Time.ms 10) ]))

let run ?(seed = 13) () =
  let sys = System.create ~seed ~cores:2 ~gpu:true () in
  let browser = System.new_app sys ~name:"browser" in
  let triangle = System.new_app sys ~name:"triangle" in
  ignore (busy_browser sys browser);
  ignore (Gpu_apps.triangle sys ~batches:1_000_000 triangle);
  System.start sys;
  System.run_for sys (Time.ms 500);
  let rate app span =
    let c0 = System.counter app "cmds" in
    System.run_for sys span;
    (System.counter app "cmds" -. c0) /. Time.to_sec_f span
  in
  let snap span =
    let b0 = System.counter browser "cmds"
    and t0 = System.counter triangle "cmds" in
    System.run_for sys span;
    ( (System.counter browser "cmds" -. b0) /. Time.to_sec_f span,
      (System.counter triangle "cmds" -. t0) /. Time.to_sec_f span )
  in
  ignore rate;
  let b_before, t_before = snap (Time.sec 2) in
  let box = Psbox.create sys ~app:browser.System.app_id ~hw:[ Psbox.Gpu ] in
  Psbox.enter box;
  System.run_for sys (Time.ms 500);
  let b_after, t_after = snap (Time.sec 2) in
  Psbox.leave box;
  System.shutdown sys;
  let result =
    {
      browser_drop_factor = (if b_after > 0.0 then b_before /. b_after else Float.infinity);
      triangle_delta_pct = Common.pct t_before t_after;
    }
  in
  let report =
    {
      Report.id = "contention";
      title = "Fairness under extreme contention (paper Sec. 6.3)";
      items =
        [
          Report.table
            ~headers:[ "app"; "before"; "after (browser in psbox)"; "change" ]
            [
              [
                "browser (sandboxed)";
                Printf.sprintf "%.0f cmds/s" b_before;
                Printf.sprintf "%.0f cmds/s" b_after;
                Printf.sprintf "%.1fx slower" result.browser_drop_factor;
              ];
              [
                "triangle";
                Printf.sprintf "%.0f cmds/s" t_before;
                Printf.sprintf "%.0f cmds/s" t_after;
                Report.fmt_pct result.triangle_delta_pct;
              ];
            ];
          Report.Text
            "The sandboxed app pays for its own draining; the aggressive \
             co-runner keeps its throughput.";
        ];
    }
  in
  (report, result)
