(** Figure 9 / §6.4: the end-to-end VR use case.

    The rendering task periodically enters its psbox, observes its own CPU
    power without the gesture task's input-dependent noise, and trades
    fidelity for power. A fidelity sweep establishes the achievable power
    range; an adaptive run shows the controller honouring a budget. *)

type result = {
  fidelity_power_w : (int * float) list;  (** psbox-observed watts per level *)
  power_range_ratio : float;  (** max/min over the fidelity ladder *)
  adaptive_mean_w : float;  (** mean observed power under the controller *)
  adaptive_budget_w : float;
  adaptive_final_fidelity : int;
  observations : int;  (** number of psbox observation windows *)
}

val run : ?seed:int -> unit -> Report.t * result
