(** Experiment registry: every table and figure of the paper, addressable by
    id from the CLI and the benchmark harness. *)

type entry = {
  e_id : string;
  e_title : string;
  e_run : unit -> Report.t;
}

val all : entry list

val find : string -> entry option

val ids : string list
