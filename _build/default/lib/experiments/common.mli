(** Shared plumbing for the paper's experiments. *)

module System = Psbox_kernel.System

val measure_rate :
  System.t -> System.app -> key:string -> Psbox_engine.Time.span -> float
(** Advance the simulation by a span and return the app's counter rate per
    second over it. *)

type job = {
  t0 : Psbox_engine.Time.t;
  t1 : Psbox_engine.Time.t;
  dur_s : float;
  rail_mj : float;  (** full rail energy over the job *)
  psbox_mj : float option;  (** virtual-meter energy, when a psbox was used *)
}

val run_job :
  System.t ->
  rail:Psbox_hw.Power_rail.t ->
  main:System.app ->
  ?psbox:Psbox_core.Psbox.t ->
  ?timeout:Psbox_engine.Time.span ->
  unit ->
  job
(** Start the system (if needed), enter the psbox (when given), run until
    the main app's tasks exit, read the meters, leave the psbox. *)

(** {1 Prior-approach attribution per hardware class} *)

val cpu_usages : System.t -> Psbox_accounting.Usage.span list
(** Finalizes the scheduler trace — call after the measurement window. *)

val accel_usages : Psbox_kernel.Accel_driver.t -> Psbox_accounting.Usage.span list

val wifi_usages : System.t -> Psbox_accounting.Usage.span list
(** Airtime spans from the NIC driver's dispatch log. *)

val attributed_mj :
  Psbox_accounting.Split.result -> app:System.app -> float

val pct : float -> float -> float
(** [pct reference x] is the signed percentage difference of [x] from
    [reference]. *)
