(** Ablations of the design choices DESIGN.md calls out.

    - {b Cost confinement} (scheduling loans + idle billing on the CPU;
      drain/serve billing on accelerators): with it, sandboxing one app
      leaves its siblings' throughput intact; without it, the sandboxed
      app's exclusive balloons are free and the siblings pay.
    - {b Power-state virtualization}: with it, a psbox observes the same
      power state at every entry; without it, the hardware state left by
      other apps lingers into the observation.
    - {b Dispatch window}: the asynchronous command-queue depth is what
      makes request boundaries blurry (Figure 3(b)); with a window of 1
      there is no overlap to entangle. *)

type confinement = {
  ab_sibling_delta_on : float;  (** sibling throughput change, confinement on (%) *)
  ab_sibling_delta_off : float;  (** same with confinement ablated (%) *)
}

type vstate = {
  ab_gap_on_pct : float;
      (** |cold-entry − hot-entry| observed energy gap with virtualization (%) *)
  ab_gap_off_pct : float;  (** same with virtualization ablated (%) *)
}

type window = (int * float) list
(** (dispatch window, observed command overlap in ms). *)

val cpu_confinement : ?seed:int -> unit -> confinement
val gpu_confinement : ?seed:int -> unit -> confinement
val state_virtualization : ?seed:int -> unit -> vstate
val dispatch_window : ?seed:int -> unit -> window
val run : ?seed:int -> unit -> Report.t * (confinement * confinement * vstate * window)
