(** §6.3 stress test: robustness of the fairness guarantee.

    A GPU-hungry synthetic app (triangle) co-runs with a sandboxed browser
    that loads pages back to back. Draining triangle's deep command pipeline
    before every browser balloon makes the sandboxed browser's GPU
    throughput collapse (the paper saw 4x), while triangle — which absorbs
    none of the balloon cost — barely moves (the paper saw -1%). *)

type result = {
  browser_drop_factor : float;  (** browser throughput before / after *)
  triangle_delta_pct : float;  (** triangle throughput change *)
}

val run : ?seed:int -> unit -> Report.t * result
