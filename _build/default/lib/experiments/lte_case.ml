open Psbox_engine
module Lte = Psbox_hw.Lte

type result = {
  alone_mj_per_xfer : float;
  corun_mj_per_xfer : float;
  swing_pct : float;
}

(* The observed app uploads 50 KB every 20 s; its per-upload energy window
   covers the upload plus 4 s of aftermath (promotion + its share of the
   tail). Optionally a chatter app pings every 3 s and keeps the radio in
   DCH/FACH the whole time. *)
let per_transfer_mj ~chatter =
  let sim = Sim.create () in
  let radio = Lte.create sim () in
  let tl = Psbox_hw.Power_rail.timeline (Lte.rail radio) in
  if chatter then begin
    let rec ping () =
      Lte.send radio ~app:2 ~bytes:2_000 ~on_sent:(fun () -> ());
      ignore (Sim.schedule_after sim (Time.sec 3) ping)
    in
    ping ()
  end;
  let windows = ref [] in
  let rec upload n =
    if n > 0 then begin
      let t0 = Sim.now sim in
      Lte.send radio ~app:1 ~bytes:50_000 ~on_sent:(fun () -> ());
      ignore
        (Sim.schedule_after sim (Time.sec 4) (fun () ->
             windows := Timeline.integrate tl t0 (Sim.now sim) :: !windows));
      ignore (Sim.schedule_after sim (Time.sec 20) (fun () -> upload (n - 1)))
    end
  in
  (* let the radio settle first *)
  ignore (Sim.schedule_after sim (Time.sec 30) (fun () -> upload 5));
  Sim.run_until sim (Time.sec 160);
  Stats.mean (Array.of_list (List.map (fun j -> j *. 1e3) !windows))

let run ?(seed = 71) () =
  ignore seed;
  let alone = per_transfer_mj ~chatter:false in
  let corun = per_transfer_mj ~chatter:true in
  let result =
    {
      alone_mj_per_xfer = alone;
      corun_mj_per_xfer = corun;
      swing_pct = Common.pct alone corun;
    }
  in
  let report =
    {
      Report.id = "lte";
      title = "Cellular interfaces: uncontrollable power states (paper Sec. 7)";
      items =
        [
          Report.table
            ~headers:[ "scenario"; "energy around one 50 KB upload" ]
            [
              [ "radio otherwise idle"; Report.fmt_mj alone ];
              [
                "background chatter keeps the radio hot";
                Printf.sprintf "%s (%s)" (Report.fmt_mj corun)
                  (Report.fmt_pct result.swing_pct);
              ];
            ];
          Report.Text
            "The RRC promotion/demotion timers belong to the network, so \
             the OS cannot virtualize them per sandbox: the same upload's \
             energy swings with the neighbours' traffic, and psbox on \
             cellular must wait for hardware support (the paper's Sec. 7 \
             conclusion).";
        ];
    }
  in
  (report, result)
