open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Model_meter = Psbox_meter.Model_meter
module Smp = Psbox_kernel.Smp
module Usage = Psbox_accounting.Usage
module Split = Psbox_accounting.Split
module W = Psbox_workloads.Workload
module Cpu_apps = Psbox_workloads.Cpu_apps

type result = {
  fit_rmse_w : float;
  solo_rmse_w : float;
  corun_rmse_w : float;
  app_share_error_pct : float;
}

(* Collect (features, watts) observations over 20 ms windows of a run:
   features are [cpu-active fraction; busy core fraction] — what a
   utilization-counter model sees. *)
let observe_run ~seed ~spawn ~duration =
  let sys = System.create ~seed ~cores:2 () in
  spawn sys;
  System.start sys;
  System.run_for sys (Time.ms 100);
  let cpu = System.cpu sys in
  let rail = Psbox_hw.Cpu.rail cpu in
  let window = Time.ms 20 in
  let obs = ref [] in
  let steps = duration / window in
  for _ = 1 to steps do
    let t0 = System.now sys in
    let a0 = Psbox_hw.Cpu.active_seconds cpu in
    let b0 = Psbox_hw.Cpu.busy_core_seconds cpu in
    System.run_for sys window;
    let dt = Time.to_sec_f window in
    let active = (Psbox_hw.Cpu.active_seconds cpu -. a0) /. dt in
    let busy = (Psbox_hw.Cpu.busy_core_seconds cpu -. b0) /. (2.0 *. dt) in
    let watts =
      Timeline.mean (Psbox_hw.Power_rail.timeline rail) t0 (System.now sys)
    in
    obs := ([| active; busy |], watts) :: !obs
  done;
  System.shutdown sys;
  List.rev !obs

let spawn_calib ?(threads = 1) name sys =
  ignore
    (Cpu_apps.calib3d sys ~iterations:1_000_000 ~threads
       (System.new_app sys ~name))

let spawn_body name sys =
  ignore
    (Cpu_apps.bodytrack sys ~frames:1_000_000 ~threads:1
       (System.new_app sys ~name))

(* Per-app share error in the co-run: model-based accounting divides the
   modelled power by usage, and we compare the observed app's share against
   the psbox ground truth measured in an identical run. *)
let share_error ~seed ~model =
  (* ground truth from a psbox run *)
  let psbox_mj =
    let sys = System.create ~seed ~cores:2 () in
    let main = System.new_app sys ~name:"calib" in
    ignore (Cpu_apps.calib3d sys ~iterations:100 ~threads:1 main);
    spawn_body "body" sys;
    let box = Psbox.create sys ~app:main.System.app_id ~hw:[ Psbox.Cpu ] in
    System.start sys;
    Psbox.enter box;
    W.run_until_idle sys ~apps:[ main ] ~timeout:(Time.sec 10);
    let mj = Psbox.read_mj box in
    Psbox.leave box;
    System.shutdown sys;
    mj
  in
  (* model-metered share from an identical run without psbox *)
  let model_mj =
    let sys = System.create ~seed ~cores:2 () in
    let main = System.new_app sys ~name:"calib" in
    ignore (Cpu_apps.calib3d sys ~iterations:100 ~threads:1 main);
    spawn_body "body" sys;
    System.start sys;
    let cpu = System.cpu sys in
    let t0 = System.now sys in
    (* integrate the model's estimate over 20 ms windows *)
    let window = Time.ms 20 in
    let acc = ref 0.0 in
    let rec loop () =
      if W.app_alive sys main && System.now sys - t0 < Time.sec 10 then begin
        let a0 = Psbox_hw.Cpu.active_seconds cpu in
        let b0 = Psbox_hw.Cpu.busy_core_seconds cpu in
        System.run_for sys window;
        let dt = Time.to_sec_f window in
        let active = (Psbox_hw.Cpu.active_seconds cpu -. a0) /. dt in
        let busy = (Psbox_hw.Cpu.busy_core_seconds cpu -. b0) /. (2.0 *. dt) in
        acc := !acc +. (Model_meter.predict model [| active; busy |] *. dt);
        loop ()
      end
    in
    loop ();
    let t1 = System.now sys in
    (* divide the modelled total by usage share, AppScope-style *)
    let usages = Common.cpu_usages sys in
    let segs = Usage.segments usages ~from:t0 ~until:t1 in
    let total_share, app_share =
      List.fold_left
        (fun (tot, app) seg ->
          let dt = Time.to_sec_f (seg.Usage.t1 - seg.Usage.t0) in
          let s_all =
            List.fold_left (fun a (_, s) -> a +. s) 0.0 seg.Usage.shares
          in
          let s_app =
            match List.assoc_opt main.System.app_id seg.Usage.shares with
            | Some s -> s
            | None -> 0.0
          in
          (tot +. (s_all *. dt), app +. (s_app *. dt)))
        (0.0, 0.0) segs
    in
    ignore (Smp.stop (System.smp sys));
    System.shutdown sys;
    if total_share = 0.0 then 0.0
    else !acc *. 1e3 *. (app_share /. total_share)
  in
  (Common.pct psbox_mj model_mj, psbox_mj, model_mj)

let run ?(seed = 61) () =
  (* calibration: two solo workloads at different intensities *)
  let calibration =
    observe_run ~seed ~spawn:(spawn_calib "cal1") ~duration:(Time.sec 2)
    @ observe_run ~seed:(seed + 1) ~spawn:(spawn_calib ~threads:2 "cal2")
        ~duration:(Time.sec 2)
    @ observe_run ~seed:(seed + 2) ~spawn:(spawn_body "body") ~duration:(Time.sec 2)
  in
  let model = Model_meter.fit calibration in
  let fit_rmse = Model_meter.rmse model calibration in
  let solo =
    observe_run ~seed:(seed + 3)
      ~spawn:(fun sys ->
        ignore
          (Cpu_apps.dedup sys ~chunks:1_000_000 ~threads:1
             (System.new_app sys ~name:"dedup")))
      ~duration:(Time.sec 2)
  in
  let corun =
    observe_run ~seed:(seed + 4)
      ~spawn:(fun sys ->
        spawn_calib "calib" sys;
        spawn_body "body" sys)
      ~duration:(Time.sec 2)
  in
  let solo_rmse = Model_meter.rmse model solo in
  let corun_rmse = Model_meter.rmse model corun in
  let share_err, truth_mj, model_mj = share_error ~seed:(seed + 5) ~model in
  let result =
    {
      fit_rmse_w = fit_rmse;
      solo_rmse_w = solo_rmse;
      corun_rmse_w = corun_rmse;
      app_share_error_pct = share_err;
    }
  in
  let report =
    {
      Report.id = "metering";
      title = "Metering methods and their limits (paper Sec. 2.2)";
      items =
        [
          Report.table
            ~headers:[ "quantity"; "value" ]
            [
              [ "model fit RMSE (calibration)"; Printf.sprintf "%.3f W" fit_rmse ];
              [ "model RMSE, unseen solo workload"; Printf.sprintf "%.3f W" solo_rmse ];
              [ "model RMSE, unseen co-run workload"; Printf.sprintf "%.3f W" corun_rmse ];
              [
                "per-app share: model+usage vs psbox truth";
                Printf.sprintf "%.0f mJ vs %.0f mJ (%s)" model_mj truth_mj
                  (Report.fmt_pct share_err);
              ];
            ];
          Report.Text
            "System-level modelling can be decent — but attributing either \
             modelled or measured power to one app still divides entangled \
             totals; the per-app share misses the psbox ground truth by \
             tens of percent. Better metering does not fix accounting \
             (the paper's Sec. 2.2-2.3 argument).";
        ];
    }
  in
  (report, result)
