(** Figure 8: confinement of throughput loss.

    Several instances of the same app co-run on each hardware class; one
    instance then enters its psbox. The sandboxed instance absorbs whatever
    throughput is lost; its siblings stay at their original share. *)

type instance = {
  i_name : string;
  i_sandboxed : bool;
  i_before : float;  (** throughput (counter units/s) before the psbox *)
  i_after : float;
}

type hw_result = {
  h_hw : string;
  h_unit : string;
  h_instances : instance list;
  h_total_loss_pct : float;
}

val cpu : ?seed:int -> unit -> hw_result
val dsp : ?seed:int -> unit -> hw_result
val gpu : ?seed:int -> unit -> hw_result
val wifi : ?seed:int -> unit -> hw_result
val run : ?seed:int -> unit -> Report.t * hw_result list
