open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Vr_app = Psbox_workloads.Vr_app
module W = Psbox_workloads.Workload

type result = {
  fidelity_power_w : (int * float) list;
  power_range_ratio : float;
  adaptive_mean_w : float;
  adaptive_budget_w : float;
  adaptive_final_fidelity : int;
  observations : int;
}

(* Mean psbox-observed power of the rendering task pinned at one fidelity
   level (gesture running alongside). *)
let power_at_level ~seed level =
  let sys = System.create ~seed ~cores:2 ~cpu_idle_w:0.06 () in
  let vr = System.new_app sys ~name:"vr" in
  ignore (Vr_app.gesture sys ~frames:1_000_000 vr);
  let render = System.new_app sys ~name:"render" in
  let cost_ms =
    Vr_app.min_fidelity_cost_ms
    +. (float_of_int level
        *. (Vr_app.max_fidelity_cost_ms -. Vr_app.min_fidelity_cost_ms)
        /. 4.0)
  in
  let period = Time.ms 33 in
  ignore
    (W.spawn sys ~app:render ~name:"render-fixed" ~core:0
       (W.forever (fun () ->
            let busy = Time.of_sec_f (cost_ms /. 1e3) in
            [ W.Compute busy; W.Sleep (max (Time.ms 1) (period - busy)) ])));
  System.start sys;
  System.run_for sys (Time.ms 300);
  let box = Psbox.create sys ~app:render.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.enter box;
  let t0 = System.now sys in
  System.run_for sys (Time.sec 2);
  let mj = Psbox.read_mj box in
  let watts = mj /. 1e3 /. Time.to_sec_f (System.now sys - t0) in
  Psbox.leave box;
  System.shutdown sys;
  watts

let adaptive ~seed ~budget_w =
  let sys = System.create ~seed ~cores:2 ~cpu_idle_w:0.06 () in
  let vr = System.new_app sys ~name:"vr" in
  ignore (Vr_app.gesture sys ~frames:1_000_000 vr);
  let render_app = System.new_app sys ~name:"render" in
  let box = Psbox.create sys ~app:render_app.System.app_id ~hw:[ Psbox.Cpu ] in
  let ctl, _task =
    Vr_app.rendering sys render_app ~psbox:box ~budget_w ~frames:1_000_000 ()
  in
  System.start sys;
  System.run_for sys (Time.sec 8);
  let obs = Vr_app.observations ctl in
  let series =
    {
      Report.s_name = "rendering power (in psbox)";
      s_points = List.map (fun (t, w, _) -> (Time.to_sec_f t, w)) obs;
      s_unit = "W";
    }
  in
  let watts = List.map (fun (_, w, _) -> w) obs in
  let mean_w =
    match watts with [] -> 0.0 | _ -> Stats.mean (Array.of_list watts)
  in
  let fidelity = Vr_app.fidelity ctl in
  System.shutdown sys;
  (mean_w, fidelity, List.length obs, series)

let run ?(seed = 17) () =
  let ladder =
    List.init 5 (fun level -> (level, power_at_level ~seed:(seed + level) level))
  in
  let watts = List.map snd ladder in
  let lo = List.fold_left Float.min Float.infinity watts in
  let hi = List.fold_left Float.max Float.neg_infinity watts in
  let budget = 0.45 in
  let mean_w, fidelity, n_obs, series = adaptive ~seed:(seed + 7) ~budget_w:budget in
  let result =
    {
      fidelity_power_w = ladder;
      power_range_ratio = (if lo > 0.0 then hi /. lo else 0.0);
      adaptive_mean_w = mean_w;
      adaptive_budget_w = budget;
      adaptive_final_fidelity = fidelity;
      observations = n_obs;
    }
  in
  let report =
    {
      Report.id = "fig9";
      title = "VR use case: power-aware fidelity adaptation (paper Fig. 9 / Sec. 6.4)";
      items =
        [
          Report.table
            ~headers:[ "fidelity level"; "psbox-observed power" ]
            (List.map
               (fun (level, w) ->
                 [ string_of_int level; Printf.sprintf "%.0f mW" (w *. 1e3) ])
               ladder);
          Report.Text
            (Printf.sprintf
               "Fidelity trades a %.1fx power range (%.0f..%.0f mW; the \
                paper reports 8.9x, 90..800 mW)."
               result.power_range_ratio (lo *. 1e3) (hi *. 1e3));
          Report.Text
            (Printf.sprintf
               "Adaptive run: budget %.0f mW; mean observed %.0f mW over %d \
                observation windows; settled at fidelity %d. The gesture \
                task's input-dependent power never pollutes the readings."
               (budget *. 1e3) (mean_w *. 1e3) n_obs fidelity);
          Report.chart ~label:"rendering task's psbox observations" [ series ];
        ];
    }
  in
  (report, result)
