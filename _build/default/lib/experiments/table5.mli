(** Figure 5 (Table): the benchmark roster. *)

val run : unit -> Report.t
