(** §2.2: the two metering methods, and why neither fixes entanglement.

    A linear power model [P = b0 + b1*active + b2*busy_cores] is fitted
    offline from solo calibration runs (the way prior work builds models at
    development time). On solo validation traces it predicts the rail well;
    under co-running, system-level prediction still holds (the model sees
    total utilization) — but attributing either the modelled or the
    directly-measured power to one app still requires dividing entangled
    totals, which is the paper's point: metering improved, accounting
    cannot. *)

type result = {
  fit_rmse_w : float;  (** model residual on its calibration data *)
  solo_rmse_w : float;  (** prediction error on an unseen solo workload *)
  corun_rmse_w : float;  (** prediction error on an unseen co-run workload *)
  app_share_error_pct : float;
      (** error of the model-based per-app share for the observed app in the
          co-run, vs its psbox ground truth *)
}

val run : ?seed:int -> unit -> Report.t * result
