(** §6.2: performance impact of psbox.

    Latency: apps may see extra latency on hardware access when it triggers
    a balloon switch (task shootdown on the CPU; drain phases on command
    queues and the NIC). Measured as the change in mean request latency
    between a run without psbox and an identical run with one app sandboxed.

    Throughput: the exclusivity of balloons loses sharing opportunity; the
    total hardware throughput drops by a few percent (the loss itself is
    confined to the sandboxed app — Figure 8). *)

type hw_impact = {
  p_hw : string;
  p_lat_before_us : float;  (** mean request latency without psbox *)
  p_lat_after_us : float;  (** with one app sandboxed *)
  p_total_loss_pct : float;  (** total throughput loss *)
}

val run : ?seed:int -> unit -> Report.t * hw_impact list
