(** ASCII rendering of experiment results.

    Every experiment produces a {!t}: a titled list of tables, power-trace
    sparklines and notes, printed the way the paper's tables and figures
    read. The benchmark harness and the CLI share this renderer. *)

type table = { headers : string list; rows : string list list }

type series = {
  s_name : string;
  s_points : (float * float) list;  (** (seconds, value) *)
  s_unit : string;
}

type item =
  | Table of table
  | Chart of { label : string; series : series list }
  | Text of string

type t = { id : string; title : string; items : item list }

val table : headers:string list -> string list list -> item

val chart : label:string -> series list -> item

val series_of_samples : name:string -> Psbox_meter.Sample.t array -> series
(** Downsamples to at most ~240 points for display. *)

val series_of_timeline :
  name:string ->
  Psbox_engine.Timeline.t ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  series

val render : Format.formatter -> t -> unit

val print : t -> unit
(** [render] on stdout. *)

val fmt_mj : float -> string
val fmt_pct : float -> string
(** Signed percentage with one decimal. *)
