(** §7 extension 3: why psbox is infeasible on cellular interfaces today.

    The LTE radio's RRC states are controlled by network-agreed timers, so
    the OS cannot save/restore them per sandbox. The same fixed upload
    therefore costs wildly different energy depending on what state the
    neighbours left the radio in — and no accounting or balloon can undo
    that, which is exactly why the paper defers cellular psbox to future
    hardware support. *)

type result = {
  alone_mj_per_xfer : float;  (** mean energy window per upload, radio otherwise idle *)
  corun_mj_per_xfer : float;  (** same uploads with background chatter keeping the radio hot *)
  swing_pct : float;  (** relative difference: the uncontrollable-state error *)
}

val run : ?seed:int -> unit -> Report.t * result
