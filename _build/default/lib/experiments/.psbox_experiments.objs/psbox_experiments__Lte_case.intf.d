lib/experiments/lte_case.mli: Report
