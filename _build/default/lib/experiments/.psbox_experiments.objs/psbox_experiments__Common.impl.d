lib/experiments/common.ml: List Psbox_accounting Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_workloads Time Trace
