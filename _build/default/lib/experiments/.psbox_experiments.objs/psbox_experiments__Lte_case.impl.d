lib/experiments/lte_case.ml: Array Common List Printf Psbox_engine Psbox_hw Report Sim Stats Time Timeline
