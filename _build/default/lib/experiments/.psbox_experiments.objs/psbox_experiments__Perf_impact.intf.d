lib/experiments/perf_impact.mli: Report
