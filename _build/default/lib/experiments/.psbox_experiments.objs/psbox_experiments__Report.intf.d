lib/experiments/report.mli: Format Psbox_engine Psbox_meter
