lib/experiments/sidechan.mli: Report
