lib/experiments/sidechan.ml: Array List Printf Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_meter Psbox_sidechannel Psbox_workloads Report Rng Time
