lib/experiments/fig9.ml: Array Float List Printf Psbox_core Psbox_engine Psbox_kernel Psbox_workloads Report Stats Time
