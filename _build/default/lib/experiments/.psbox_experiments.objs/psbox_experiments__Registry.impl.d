lib/experiments/registry.ml: Ablation Contention Fig3 Fig6 Fig7 Fig8 Fig9 List Lte_case Metering Perf_impact Report Sidechan Table5
