lib/experiments/ablation.ml: Common Float List Printf Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_workloads Report Sim Time
