lib/experiments/metering.mli: Report
