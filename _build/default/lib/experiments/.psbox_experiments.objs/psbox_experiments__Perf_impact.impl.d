lib/experiments/perf_impact.ml: Array Common List Printf Psbox_core Psbox_engine Psbox_kernel Psbox_workloads Report Time
