lib/experiments/fig8.ml: Common List Printf Psbox_core Psbox_engine Psbox_kernel Psbox_workloads Report String Time
