lib/experiments/contention.ml: Common Float List Printf Psbox_core Psbox_engine Psbox_kernel Psbox_workloads Report Rng Time
