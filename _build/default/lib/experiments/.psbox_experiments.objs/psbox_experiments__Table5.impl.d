lib/experiments/table5.ml: Report
