lib/experiments/metering.ml: Common List Printf Psbox_accounting Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_meter Psbox_workloads Report Time Timeline
