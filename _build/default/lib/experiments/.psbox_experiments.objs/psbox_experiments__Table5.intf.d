lib/experiments/table5.mli: Report
