lib/experiments/report.ml: Array Buffer Char Float Format List Printf Psbox_engine Psbox_meter String Time Timeline
