lib/experiments/fig6.ml: Common List Option Printf Psbox_accounting Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_workloads Report Time
