lib/experiments/fig3.ml: Common Float List Printf Psbox_engine Psbox_hw Psbox_kernel Psbox_workloads Report Time Timeline
