lib/experiments/fig7.ml: Array Bytes List Printf Psbox_core Psbox_engine Psbox_hw Psbox_kernel Psbox_workloads Report Time Trace
