lib/experiments/common.mli: Psbox_accounting Psbox_core Psbox_engine Psbox_hw Psbox_kernel
