(** Figure 7: resource multiplexing with and without psbox.

    Renders the CPU schedule (which app occupies which core over time) and
    the DSP command stream, in both worlds: without psbox the kernel freely
    interleaves apps; with psbox the sandboxed app's activity happens inside
    exclusive spatial/temporal balloons. *)

type result = {
  cpu_balloon_count : int;  (** coscheduling periods observed *)
  cpu_forced_idle_ms : float;  (** core time kept idle by spatial balloons *)
  dsp_balloon_count : int;
  dsp_overlap_wo_psbox : bool;  (** foreign commands overlapped dgemm's *)
  dsp_overlap_w_psbox : bool;  (** must be false *)
}

val run : ?seed:int -> unit -> Report.t * result
