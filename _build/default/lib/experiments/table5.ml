let run () =
  {
    Report.id = "table5";
    title = "Benchmark apps (paper Fig. 5)";
    items =
      [
        Report.table
          ~headers:[ "HW"; "benchmark"; "description" ]
          [
            [ "CPU"; "bodytrack"; "vision program tracking human body movement (PARSEC-like)" ];
            [ "CPU"; "calib3d"; "camera calibration and 3D reconstruction (OpenCV-like)" ];
            [ "CPU"; "dedup"; "stream compression with deduplication (PARSEC-like)" ];
            [ "GPU"; "browser"; "webkit browser opening a page" ];
            [ "GPU"; "magic"; "'magic lantern' scene at 60 fps (PowerVR SDK-like)" ];
            [ "GPU"; "cube"; "rotating cube scene at 60 fps (Qt SDK-like)" ];
            [ "GPU"; "triangle"; "synthetic app drawing 100k triangles/s offscreen" ];
            [ "DSP"; "sgemm"; "single-precision matrix multiplication (TI SDK-like)" ];
            [ "DSP"; "dgemm"; "double-precision matrix multiplication" ];
            [ "DSP"; "monte"; "Monte Carlo simulation" ];
            [ "WiFi"; "browser"; "text browser loading a page over the network" ];
            [ "WiFi"; "scp"; "transmitting a data file over ssh" ];
            [ "WiFi"; "wget"; "transmitting a data file over http" ];
          ];
        Report.Text
          "All workloads are synthetic generators shaped like the paper's \
           benchmarks (see Psbox_workloads and DESIGN.md).";
      ];
  }
