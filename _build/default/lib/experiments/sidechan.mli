(** §2.5: the GPU power side channel, and psbox closing it.

    A victim browser opens one of ten websites; an attacker app, running a
    light GPU workload as camouflage, watches power and infers the site with
    a DTW nearest-neighbour classifier trained on solo traces.

    Without psbox the attacker observes the shared GPU rail (what per-app
    accounting effectively reveals) and succeeds far above chance. With
    psbox as the only way to observe power, the attacker sees only its own
    sandboxed view — the victim's activity is masked to idle — and falls to
    chance. *)

type result = {
  trials : int;
  success_no_psbox : float;  (** attacker success rate, shared observation *)
  success_psbox : float;  (** attacker success rate, sandboxed observation *)
  random_guess : float;  (** 1/10 *)
}

val run : ?seed:int -> ?trials_per_site:int -> unit -> Report.t * result
