(** Figure 3: the three causes of power entanglement.

    (a) spatial concurrency: total CPU power of two co-running instances is
    far less than 2x one instance (shared idle + uncore);
    (b) blurry request boundary: overlapping asynchronous GPU commands whose
    power impacts cannot be separated;
    (c) lingering power state: the same app draws different power right
    after a busy period than after an idle one (DVFS residue). *)

type a_result = {
  one_instance_w : float;  (** mean power, one busy core *)
  two_instances_w : float;  (** mean power, both cores busy *)
  doubled_w : float;  (** 2x the one-instance power: the naive extrapolation *)
}

type b_result = {
  commands : (int * string * float * float) list;
      (** (id, kind, start s, finish s) for the three commands *)
  overlap_s : float;  (** how long commands 1 and 2 overlap *)
}

type c_result = {
  after_idle_mj : float;
  after_busy_mj : float;
  after_idle_peak_w : float;
  after_busy_peak_w : float;
}

val run_a : ?seed:int -> unit -> a_result * Report.series list
val run_b : ?seed:int -> unit -> b_result * Report.series list
val run_c : ?seed:int -> unit -> c_result * Report.series list
val run : ?seed:int -> unit -> Report.t * (a_result * b_result * c_result)
