(** Figure 6: elimination of power entanglement.

    For each hardware class (CPU, DSP, GPU, WiFi), a designated power-aware
    app runs a fixed job alone and co-running with other apps. psbox's
    virtual-meter energy stays close to the alone-run energy across
    co-runners; the prior usage-based accounting [96]-style attribution
    swings widely. *)

type scenario = {
  sc_label : string;  (** e.g. "w/ body" *)
  sc_psbox_mj : float;  (** psbox observation in the co-run *)
  sc_prior_mj : float;  (** usage-split attribution in an identical co-run *)
}

type row = {
  row_hw : string;
  row_app : string;
  row_alone_mj : float;  (** the app's energy running alone (full rail) *)
  row_scenarios : scenario list;
  row_chart : Report.series list;
}

val cpu_row : ?seed:int -> unit -> row
val dsp_row : ?seed:int -> unit -> row
val gpu_row : ?seed:int -> unit -> row
val wifi_row : ?seed:int -> unit -> row

val run : ?seed:int -> unit -> Report.t * row list
