open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Cpu_apps = Psbox_workloads.Cpu_apps
module Gpu_apps = Psbox_workloads.Gpu_apps
module Dsp_apps = Psbox_workloads.Dsp_apps
module Wifi_apps = Psbox_workloads.Wifi_apps

type instance = {
  i_name : string;
  i_sandboxed : bool;
  i_before : float;
  i_after : float;
}

type hw_result = {
  h_hw : string;
  h_unit : string;
  h_instances : instance list;
  h_total_loss_pct : float;
}

(* Generic before/after harness: spawn instances, warm up, measure rates,
   sandbox the last instance, measure again. *)
let before_after ~hw ~unit ~make_sys ~spawn ~names ~key ~target ~warmup ~window
    ~seed =
  let sys = make_sys ~seed in
  let apps =
    List.map
      (fun name ->
        let app = System.new_app sys ~name in
        spawn sys app;
        app)
      names
  in
  System.start sys;
  System.run_for sys warmup;
  let snap () = List.map (fun a -> System.counter a key) apps in
  let s0 = snap () in
  System.run_for sys window;
  let s1 = snap () in
  let secs = Time.to_sec_f window in
  let before = List.map2 (fun a b -> (b -. a) /. secs) s0 s1 in
  let star = List.nth apps (List.length apps - 1) in
  let box = Psbox.create sys ~app:star.System.app_id ~hw:[ target ] in
  Psbox.enter box;
  System.run_for sys warmup;
  let s2 = snap () in
  System.run_for sys window;
  let s3 = snap () in
  let after = List.map2 (fun a b -> (b -. a) /. secs) s2 s3 in
  Psbox.leave box;
  System.shutdown sys;
  let instances =
    List.mapi
      (fun i ((name, b), a) ->
        {
          i_name = (if i = List.length names - 1 then name ^ "*" else name);
          i_sandboxed = i = List.length names - 1;
          i_before = b;
          i_after = a;
        })
      (List.combine (List.combine names before) after)
  in
  let total l = List.fold_left ( +. ) 0.0 l in
  {
    h_hw = hw;
    h_unit = unit;
    h_instances = instances;
    h_total_loss_pct = -.Common.pct (total before) (total after);
  }

let cpu ?(seed = 3) () =
  before_after ~hw:"CPU" ~unit:"KB/s"
    ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ())
    ~spawn:(fun sys app -> ignore (Cpu_apps.calib3d sys ~iterations:1_000_000 app))
    ~names:[ "calib3d"; "calib3d"; "calib3d" ]
    ~key:"kb" ~target:Psbox.Cpu ~warmup:(Time.ms 500) ~window:(Time.sec 2) ~seed

let dsp ?(seed = 4) () =
  before_after ~hw:"DSP" ~unit:"GFLOPS"
    ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ~dsp:true ())
    ~spawn:(fun sys app -> ignore (Dsp_apps.sgemm sys ~kernels:1_000_000 app))
    ~names:[ "sgemm1"; "sgemm2"; "sgemm3" ]
    ~key:"gflops" ~target:Psbox.Dsp ~warmup:(Time.ms 500) ~window:(Time.sec 4)
    ~seed

let gpu ?(seed = 5) () =
  before_after ~hw:"GPU" ~unit:"cmds/s"
    ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ~gpu:true ())
    ~spawn:(fun sys app ->
      ignore (Gpu_apps.cube sys ~frames:1_000_000 ~cmds:8 ~units:2 app))
    ~names:[ "cube1"; "cube2" ]
    ~key:"cmds" ~target:Psbox.Gpu ~warmup:(Time.ms 500) ~window:(Time.sec 2)
    ~seed

let wifi ?(seed = 6) () =
  before_after ~hw:"WiFi" ~unit:"KB/s"
    ~make_sys:(fun ~seed -> System.bbb ~seed ())
    ~spawn:(fun sys app -> ignore (Wifi_apps.wget sys ~kb:1_000_000 app))
    ~names:[ "wget1"; "wget2" ]
    ~key:"kb" ~target:Psbox.Wifi ~warmup:(Time.ms 500) ~window:(Time.sec 2)
    ~seed

let run ?(seed = 3) () =
  let results =
    [ cpu ~seed (); dsp ~seed:(seed + 1) (); gpu ~seed:(seed + 2) ();
      wifi ~seed:(seed + 3) () ]
  in
  let rows =
    List.concat_map
      (fun r ->
        List.map
          (fun i ->
            [
              r.h_hw;
              i.i_name;
              Printf.sprintf "%.1f %s" i.i_before r.h_unit;
              Printf.sprintf "%.1f %s" i.i_after r.h_unit;
              Report.fmt_pct (Common.pct i.i_before i.i_after);
            ])
          r.h_instances)
      results
  in
  let report =
    {
      Report.id = "fig8";
      title = "Confinement of throughput loss (paper Fig. 8)";
      items =
        [
          Report.Text
            "Co-running instances of the same app; the starred instance \
             enters its psbox between the two measurements. Only it should \
             lose throughput.";
          Report.table
            ~headers:[ "HW"; "instance"; "before"; "after"; "delta" ]
            rows;
          Report.Text
            (String.concat "; "
               (List.map
                  (fun r ->
                    Printf.sprintf "%s total loss %.1f%%" r.h_hw
                      r.h_total_loss_pct)
                  results));
        ];
    }
  in
  (report, results)
