open Psbox_engine

type t = { offset : Time.span; skew : float }

let create ?(offset = Time.us 1700) ?(skew_ppm = 35.0) () =
  { offset; skew = skew_ppm *. 1e-6 }

let to_daq c t =
  t + int_of_float (Float.round (float_of_int t *. c.skew)) + c.offset

let to_target c t =
  let x = float_of_int (t - c.offset) /. (1.0 +. c.skew) in
  int_of_float (Float.round x)

type estimate = { offset : Time.span; skew_ppm : float }

let sync c ~rng ~pulses ~interval ~jitter =
  if pulses < 2 then invalid_arg "Clock_sync.sync: need at least two pulses";
  (* least squares of daq_time = a * target_time + b over the edge pairs *)
  let n = float_of_int pulses in
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  for i = 0 to pulses - 1 do
    let target_t = i * interval in
    let noise =
      if jitter <= 0 then 0
      else Rng.int rng (2 * jitter) - jitter
    in
    let daq_t = to_daq c target_t + noise in
    let x = float_of_int target_t and y = float_of_int daq_t in
    sx := !sx +. x;
    sy := !sy +. y;
    sxx := !sxx +. (x *. x);
    sxy := !sxy +. (x *. y)
  done;
  let denom = (n *. !sxx) -. (!sx *. !sx) in
  let a = if denom = 0.0 then 1.0 else ((n *. !sxy) -. (!sx *. !sy)) /. denom in
  let b = (!sy -. (a *. !sx)) /. n in
  { offset = int_of_float (Float.round b); skew_ppm = (a -. 1.0) *. 1e6 }

let residual_error c est ~at =
  let true_daq = to_daq c at in
  let est_daq =
    at
    + int_of_float (Float.round (float_of_int at *. est.skew_ppm *. 1e-6))
    + est.offset
  in
  abs (true_daq - est_daq)
