open Psbox_engine

type t = { rate_hz : int; period : Time.span; noise_w : float; rng : Rng.t option }

let create ?(rate_hz = 100_000) ?(noise_w = 0.0) ?rng () =
  if rate_hz <= 0 then invalid_arg "Daq.create: rate must be positive";
  if noise_w > 0.0 && rng = None then
    invalid_arg "Daq.create: noise requires an rng";
  { rate_hz; period = 1_000_000_000 / rate_hz; noise_w; rng }

let rate_hz daq = daq.rate_hz
let period daq = daq.period

let noisy daq w =
  match daq.rng with
  | Some rng when daq.noise_w > 0.0 ->
      Float.max 0.0 (w +. Rng.gaussian rng ~mu:0.0 ~sigma:daq.noise_w)
  | Some _ | None -> w

let capture daq rail ~from ~until =
  let raw =
    Timeline.samples (Psbox_hw.Power_rail.timeline rail) ~period:daq.period ~from ~until
  in
  Array.map (fun (t, w) -> Sample.make t (noisy daq w)) raw

let capture_many daq rails ~from ~until =
  List.map
    (fun rail -> (Psbox_hw.Power_rail.name rail, capture daq rail ~from ~until))
    rails
