lib/meter/sample.ml: Array Float Format List Psbox_engine Time
