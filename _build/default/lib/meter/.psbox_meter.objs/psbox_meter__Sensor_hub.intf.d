lib/meter/sensor_hub.mli: Psbox_engine Psbox_hw
