lib/meter/sample.mli: Format Psbox_engine
