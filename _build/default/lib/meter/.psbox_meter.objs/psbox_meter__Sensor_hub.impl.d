lib/meter/sensor_hub.ml: Psbox_engine Psbox_hw Queue Sim Time
