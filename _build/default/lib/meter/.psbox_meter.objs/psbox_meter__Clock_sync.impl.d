lib/meter/clock_sync.ml: Float Psbox_engine Rng Time
