lib/meter/model_meter.mli:
