lib/meter/model_meter.ml: Array Float List
