lib/meter/daq.mli: Psbox_engine Psbox_hw Sample
