lib/meter/clock_sync.mli: Psbox_engine
