lib/meter/daq.ml: Array Float List Psbox_engine Psbox_hw Rng Sample Time Timeline
