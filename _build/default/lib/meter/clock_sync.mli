(** Clock synchronization between the power meter and the target.

    The paper's prototype aligns the DAQ controller's clock with the target
    CPU's clock over a GPIO line so power samples can be matched to software
    activities. We model the DAQ clock as an affine function of target time
    (offset + skew) and the GPIO sync procedure as an estimator that leaves a
    small residual error. *)

type t

val create :
  ?offset:Psbox_engine.Time.span ->
  ?skew_ppm:float ->
  unit ->
  t
(** A DAQ clock reading [target * (1 + skew_ppm*1e-6) + offset]. Defaults:
    1.7 ms offset, 35 ppm skew (plausible for two free-running crystal
    oscillators). *)

val to_daq : t -> Psbox_engine.Time.t -> Psbox_engine.Time.t
(** Convert a target-clock instant into the DAQ clock. *)

val to_target : t -> Psbox_engine.Time.t -> Psbox_engine.Time.t
(** Inverse conversion. *)

type estimate = { offset : Psbox_engine.Time.span; skew_ppm : float }

val sync :
  t -> rng:Psbox_engine.Rng.t -> pulses:int ->
  interval:Psbox_engine.Time.span -> jitter:Psbox_engine.Time.span -> estimate
(** Run the GPIO sync procedure: the target raises [pulses] edges spaced
    [interval] apart; the DAQ records each with uniform timestamping noise of
    up to [jitter]. Least-squares over the edge pairs yields an offset and
    skew estimate. *)

val residual_error :
  t -> estimate -> at:Psbox_engine.Time.t -> Psbox_engine.Time.span
(** Absolute alignment error left by an estimate at a given instant. *)
