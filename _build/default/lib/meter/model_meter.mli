(** Model-based power metering.

    The "other" metering method of §2.2: instead of measuring a rail, infer
    power from software-visible activity with a linear model
    [P = b0 + sum_i (b_i * u_i)] over per-component utilizations. Provided
    both as a baseline to contrast with direct measurement and because the
    paper notes psbox works with either metering method.

    Coefficients can be fitted offline from (utilization, measured power)
    observations by ordinary least squares (normal equations, Gaussian
    elimination) — the way such models are constructed "during development"
    in prior work. *)

type t
(** A fitted or hand-written linear model. *)

val of_coeffs : intercept:float -> float array -> t

val intercept : t -> float

val coeffs : t -> float array

val predict : t -> float array -> float
(** [predict m utils] is the modelled watts for one utilization vector.
    @raise Invalid_argument on dimension mismatch. *)

val fit : (float array * float) list -> t
(** Least-squares fit. All observation vectors must share one dimension;
    needs at least [dim + 1] observations.
    @raise Invalid_argument on degenerate input. *)

val rmse : t -> (float array * float) list -> float
(** Root-mean-square prediction error over a dataset. *)
