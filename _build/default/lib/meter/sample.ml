open Psbox_engine

type t = { time : Time.t; watts : float }

let make time watts = { time; watts }

let energy_j samples =
  let n = Array.length samples in
  if n < 2 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 2 do
      let dt = Time.to_sec_f (samples.(i + 1).time - samples.(i).time) in
      acc := !acc +. (samples.(i).watts *. dt)
    done;
    !acc
  end

let energy_mj samples = energy_j samples *. 1e3

let mean_w samples =
  let n = Array.length samples in
  if n < 2 then if n = 1 then samples.(0).watts else Float.nan
  else begin
    let span = Time.to_sec_f (samples.(n - 1).time - samples.(0).time) in
    if span <= 0.0 then samples.(0).watts else energy_j samples /. span
  end

let between samples ~from ~until =
  Array.of_list
    (List.filter
       (fun s -> s.time >= from && s.time <= until)
       (Array.to_list samples))

let values samples = Array.map (fun s -> s.watts) samples

let pp fmt s = Format.fprintf fmt "%a: %.4f W" Time.pp s.time s.watts
