(** Timestamped power samples.

    Every psbox power reading is timestamped against the standard simulation
    clock (the paper's clock_gettime-aligned timestamps), so apps can map
    power to software activities at fine granularity. *)

type t = { time : Psbox_engine.Time.t; watts : float }

val make : Psbox_engine.Time.t -> float -> t

val energy_j : t array -> float
(** Energy of a uniformly- or non-uniformly-spaced sample train, integrated
    with the rectangle rule (each sample holds until the next). The last
    sample contributes nothing (no known duration). [0.] for fewer than two
    samples. *)

val energy_mj : t array -> float

val mean_w : t array -> float
(** Time-weighted mean power of the train. *)

val between : t array -> from:Psbox_engine.Time.t -> until:Psbox_engine.Time.t -> t array
(** Samples whose timestamp falls in [\[from, until\]]. *)

val values : t array -> float array

val pp : Format.formatter -> t -> unit
