(* psbox-sim: run the paper's experiments from the command line.

   Usage:
     psbox_sim list             enumerate experiment ids
     psbox_sim run <id> ...     run one or more experiments
     psbox_sim all              run everything, in paper order *)

open Cmdliner
module Registry = Psbox_experiments.Registry
module Report = Psbox_experiments.Report

let list_cmd =
  let doc = "List the available experiments (one per paper table/figure)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-12s %s\n" e.Registry.e_id e.Registry.e_title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_ids ids =
  let run_one id =
    match Registry.find id with
    | Some e -> Report.print (e.Registry.e_run ())
    | None ->
        Printf.eprintf "unknown experiment %S; try `psbox_sim list`\n" id;
        exit 2
  in
  List.iter run_one ids

let run_cmd =
  let doc = "Run specific experiments by id." in
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"experiment id")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_ids $ ids)

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run () = run_ids (List.map (fun e -> e.Registry.e_id) Registry.all) in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ const ())

let () =
  let doc = "psbox reproduction: the paper's experiments on the simulator" in
  let info = Cmd.info "psbox_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd ]))
