(** Prior-art power accounting heuristics (§2.3, §9).

    Each heuristic divides a rail's metered power among apps from their
    hardware usage. These are the "existing approach" baselines of Figure 6;
    all of them cope with power entanglement {e after} it has occurred,
    which is exactly what the paper shows cannot work.

    All functions return per-app energy in joules over the window, and the
    total attributed energy never exceeds the rail energy. *)

type result = (int * float) list
(** app id -> attributed energy (J). *)

val usage_split :
  Psbox_engine.Timeline.t ->
  Usage.span list ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  result
(** AppScope-style [96]: each instant's power is divided among apps in
    proportion to their hardware usage at that instant (we integrate exactly
    over constant-share segments, i.e. at even finer granularity than the
    paper's favourable 10 us reimplementation). Power during intervals where
    nobody uses the device is attributed to no one. *)

val even_split :
  Psbox_engine.Timeline.t ->
  Usage.span list ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  result
(** V-edge-style [94]: power is split evenly among the apps active at each
    instant, regardless of how much of the device each uses. *)

val last_entity :
  Psbox_engine.Timeline.t ->
  Usage.span list ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  result
(** Eprof-style [70]: power is attributed to the app that used the hardware
    most recently — including lingering-state (tail) power after the app
    stopped, until another app takes over. *)

val shared_baseline :
  Psbox_engine.Timeline.t ->
  idle_w:float ->
  Usage.span list ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  result
(** Power-Containers-style [81]: power above the idle baseline is divided by
    usage share; the shared baseline is split evenly among active apps. *)

val windowed_by_count :
  ?window:Psbox_engine.Time.span ->
  Psbox_engine.Timeline.t ->
  Usage.span list ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  result
(** AppScope-style [96] kernel-activity accounting: time is cut into model
    windows (default 100 ms); each window's full energy — including wake
    and tail baselines — is divided among apps in proportion to their
    number of hardware requests (packets, commands) in the window. This is
    how activity-count models over-charge chatty apps whose co-runners
    drive the device into hot states. *)

val total_attributed : result -> float

(** {1 Online splitting}

    The live splitter is the bus-era counterpart of {!usage_split}: it
    subscribes to a rail's power transitions and settles
    [power * share / total_share * dt] into per-app accumulators at every
    boundary, so a query is O(apps) instead of a walk over the full usage
    trace and rail history. Share changes are pushed by whoever multiplexes
    the device (scheduler, driver) via {!live_set_share}. Over the same
    window and share trace it attributes exactly what {!usage_split}
    computes offline. *)

type live

val live : Psbox_hw.Power_rail.t -> from:Psbox_engine.Time.t -> live
(** Start splitting [rail]'s energy at time [from] (no app is active until
    shares are reported). *)

val live_set_share : live -> at:Psbox_engine.Time.t -> app:int -> float -> unit
(** Report that [app]'s usage share of the device is [share] from [at]
    onwards; 0 removes the app. Events must be fed in time order.
    @raise Invalid_argument on negative share or time going backwards. *)

val live_read : live -> until:Psbox_engine.Time.t -> result
(** Per-app energy attributed from [from] up to [until], sorted by app. *)

val live_detach : live -> unit
(** Unsubscribe from the rail's bus (and the share bus, for auto-wired
    splitters); totals stay readable. *)

(** {2 Auto-wired splitters}

    The SMP scheduler and the device drivers publish their own share
    changes on per-subsystem buses, so live attribution needs no manual
    {!live_set_share} pushes: each constructor subscribes to the right
    share bus and forwards every change. *)

val live_cpu : Psbox_kernel.Smp.t -> from:Psbox_engine.Time.t -> live
(** Split the CPU rail by running-core counts from
    {!Psbox_kernel.Smp.share_bus}. Shares are seeded from whatever is
    on-core at [from], so mid-run attachment starts correct. *)

val live_accel : Psbox_kernel.Accel_driver.t -> from:Psbox_engine.Time.t -> live
(** Split the accelerator's rail by per-app in-flight command counts from
    {!Psbox_kernel.Accel_driver.share_bus}. Commands already on the device
    at [from] are picked up at their next dispatch/completion event. *)

val live_net : Psbox_kernel.Net_sched.t -> from:Psbox_engine.Time.t -> live
(** Split the NIC's rail by per-app in-flight frame counts from
    {!Psbox_kernel.Net_sched.share_bus}. *)
