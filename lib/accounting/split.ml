open Psbox_engine

type result = (int * float) list

let add acc app e =
  let cur = match List.assoc_opt app acc with Some x -> x | None -> 0.0 in
  (app, cur +. e) :: List.remove_assoc app acc

let fold_segments tl usages ~from ~until ~f =
  let segs = Usage.segments usages ~from ~until in
  List.fold_left
    (fun acc seg ->
      let energy = Timeline.integrate tl seg.Usage.t0 seg.Usage.t1 in
      f acc seg energy)
    [] segs
  |> List.sort compare

let usage_split tl usages ~from ~until =
  fold_segments tl usages ~from ~until ~f:(fun acc seg energy ->
      let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 seg.Usage.shares in
      if total <= 0.0 then acc
      else
        List.fold_left
          (fun acc (app, share) -> add acc app (energy *. share /. total))
          acc seg.Usage.shares)

let even_split tl usages ~from ~until =
  fold_segments tl usages ~from ~until ~f:(fun acc seg energy ->
      match seg.Usage.shares with
      | [] -> acc
      | shares ->
          let n = float_of_int (List.length shares) in
          List.fold_left (fun acc (app, _) -> add acc app (energy /. n)) acc shares)

let last_entity tl usages ~from ~until =
  let segs = Usage.segments usages ~from ~until in
  let last = ref None in
  List.fold_left
    (fun acc seg ->
      let energy = Timeline.integrate tl seg.Usage.t0 seg.Usage.t1 in
      match seg.Usage.shares with
      | [] -> (
          (* tail power goes to the most recent user *)
          match !last with Some app -> add acc app energy | None -> acc)
      | shares ->
          (* the dominant user both gets this segment's split and becomes
             the "last" entity *)
          let dominant, _ =
            List.fold_left
              (fun (ba, bs) (a, s) -> if s > bs then (a, s) else (ba, bs))
              (fst (List.hd shares), -1.0)
              shares
          in
          last := Some dominant;
          let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 shares in
          List.fold_left
            (fun acc (app, share) -> add acc app (energy *. share /. total))
            acc shares)
    [] segs
  |> List.sort compare

let shared_baseline tl ~idle_w usages ~from ~until =
  fold_segments tl usages ~from ~until ~f:(fun acc seg energy ->
      match seg.Usage.shares with
      | [] -> acc
      | shares ->
          let dur = Time.to_sec_f (seg.Usage.t1 - seg.Usage.t0) in
          let baseline = Float.min energy (idle_w *. dur) in
          let dynamic = energy -. baseline in
          let n = float_of_int (List.length shares) in
          let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 shares in
          List.fold_left
            (fun acc (app, share) ->
              add acc app ((baseline /. n) +. (dynamic *. share /. total)))
            acc shares)

let windowed_by_count ?(window = Time.ms 100) tl usages ~from ~until =
  let acc = ref [] in
  let cursor = ref from in
  while !cursor < until do
    let w_end = min until (!cursor + window) in
    let energy = Timeline.integrate tl !cursor w_end in
    (* requests whose service begins in this window *)
    let counts = Hashtbl.create 8 in
    List.iter
      (fun s ->
        if s.Usage.start >= !cursor && s.Usage.start < w_end then begin
          let c =
            match Hashtbl.find_opt counts s.Usage.app with
            | Some c -> c
            | None -> 0
          in
          Hashtbl.replace counts s.Usage.app (c + 1)
        end)
      usages;
    let total = Hashtbl.fold (fun _ c a -> a + c) counts 0 in
    if total > 0 then
      Hashtbl.iter
        (fun app c ->
          acc :=
            add !acc app (energy *. float_of_int c /. float_of_int total))
        counts;
    cursor := w_end
  done;
  List.sort compare !acc

let total_attributed result = List.fold_left (fun a (_, e) -> a +. e) 0.0 result

(* ------------------------------------------------------------------ *)
(* Online usage-proportional splitting, fed by the power bus.

   The offline [usage_split] reconstructs constant-share segments from a
   full usage trace and integrates the rail timeline over each — O(history)
   per query. The live splitter keeps only the current power level and the
   current share table, and settles [w * share/total * dt] into per-app
   accumulators at every boundary (a power transition announced on the bus,
   or a share change reported by the scheduler/driver). Same arithmetic,
   same segment boundaries, O(apps) per event and O(1) state. *)

type live = {
  mutable cur_w : float;
  mutable last_t : Time.t;
  shares : (int, float) Hashtbl.t;
  acc : (int, float) Hashtbl.t;
  mutable lsub : Psbox_engine.Bus.subscription option;
  mutable ssub : Psbox_engine.Bus.subscription option;
      (* share-bus feed, when wired by a live_* constructor *)
}

let live_settle lv ~at =
  let dt = Time.to_sec_f (at - lv.last_t) in
  if dt > 0.0 then begin
    let total = Hashtbl.fold (fun _ s a -> if s > 1e-9 then a +. s else a) lv.shares 0.0 in
    if total > 0.0 then
      Hashtbl.iter
        (fun app s ->
          if s > 1e-9 then begin
            let cur =
              match Hashtbl.find_opt lv.acc app with Some x -> x | None -> 0.0
            in
            Hashtbl.replace lv.acc app (cur +. (lv.cur_w *. dt *. s /. total))
          end)
        lv.shares;
    lv.last_t <- at
  end
  else if dt = 0.0 then ()
  else invalid_arg "Split.live: time went backwards"

let live rail ~from =
  let lv =
    {
      cur_w = Psbox_hw.Power_rail.power rail;
      last_t = from;
      shares = Hashtbl.create 8;
      acc = Hashtbl.create 8;
      lsub = None;
      ssub = None;
    }
  in
  lv.lsub <-
    Some
      (Psbox_engine.Bus.subscribe
         (Psbox_hw.Power_rail.transitions rail)
         (fun tr ->
           let open Psbox_hw.Power_rail in
           live_settle lv ~at:tr.at;
           lv.cur_w <- tr.after_w));
  lv

let live_set_share lv ~at ~app share =
  if share < 0.0 then invalid_arg "Split.live_set_share: negative share";
  live_settle lv ~at;
  if share > 1e-9 then Hashtbl.replace lv.shares app share
  else Hashtbl.remove lv.shares app

let live_read lv ~until =
  live_settle lv ~at:until;
  Hashtbl.fold (fun app e acc -> (app, e) :: acc) lv.acc [] |> List.sort compare

let live_detach lv =
  (match lv.lsub with
  | Some s ->
      Psbox_engine.Bus.unsubscribe s;
      lv.lsub <- None
  | None -> ());
  match lv.ssub with
  | Some s ->
      Psbox_engine.Bus.unsubscribe s;
      lv.ssub <- None
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Auto-wired live splitters: the scheduler and device drivers publish
   their own share changes, so nobody has to call [live_set_share] by
   hand. *)

let live_cpu smp ~from =
  let module Smp = Psbox_kernel.Smp in
  let lv = live (Psbox_hw.Cpu.rail (Smp.cpu smp)) ~from in
  (* seed with whoever is on-core right now; later changes stream in *)
  let counts = Hashtbl.create 4 in
  for core = 0 to Smp.cores smp - 1 do
    match Smp.running_app smp ~core with
    | Some app ->
        let c = match Hashtbl.find_opt counts app with Some c -> c | None -> 0 in
        Hashtbl.replace counts app (c + 1)
    | None -> ()
  done;
  Hashtbl.iter
    (fun app c -> live_set_share lv ~at:from ~app (float_of_int c))
    counts;
  lv.ssub <-
    Some
      (Psbox_engine.Bus.subscribe (Smp.share_bus smp) (fun c ->
           live_set_share lv ~at:c.Smp.at ~app:c.Smp.app c.Smp.share));
  lv

let live_accel d ~from =
  let module Ad = Psbox_kernel.Accel_driver in
  let lv = live (Psbox_hw.Accel.rail (Ad.device d)) ~from in
  lv.ssub <-
    Some
      (Psbox_engine.Bus.subscribe (Ad.share_bus d) (fun c ->
           live_set_share lv ~at:c.Ad.at ~app:c.Ad.app c.Ad.share));
  lv

let live_net n ~from =
  let module Ns = Psbox_kernel.Net_sched in
  let lv = live (Psbox_hw.Wifi.rail (Ns.nic n)) ~from in
  lv.ssub <-
    Some
      (Psbox_engine.Bus.subscribe (Ns.share_bus n) (fun c ->
           live_set_share lv ~at:c.Ns.at ~app:c.Ns.app c.Ns.share));
  lv
