open Psbox_engine

type span = { app : int; start : Time.t; stop : Time.t; share : float }

let of_sched_trace ~cores spans =
  let share = 1.0 /. float_of_int cores in
  List.filter_map
    (fun s ->
      let _, app = s.Trace.tag in
      if app < 0 then None
      else Some { app; start = s.Trace.start; stop = s.Trace.stop; share })
    spans

let of_commands ~units cmds =
  List.filter_map
    (fun c ->
      match (c.Psbox_hw.Accel.started_at, c.Psbox_hw.Accel.finished_at) with
      | Some t0, Some t1 ->
          Some
            {
              app = c.Psbox_hw.Accel.app;
              start = t0;
              stop = t1;
              share = float_of_int c.Psbox_hw.Accel.units /. float_of_int units;
            }
      | _ -> None)
    cmds

let of_packets pkts =
  List.filter_map
    (fun p ->
      match (p.Psbox_hw.Wifi.air_start, p.Psbox_hw.Wifi.air_end) with
      | Some t0, Some t1 ->
          Some { app = p.Psbox_hw.Wifi.app; start = t0; stop = t1; share = 1.0 }
      | _ -> None)
    pkts

type segment = { t0 : Time.t; t1 : Time.t; shares : (int * float) list }

let segments spans ~from ~until =
  (* incremental sweep over one sorted event array: +share at start,
     -share at stop, emitting a segment whenever time advances. One
     O(n log n) sort then a linear pass — the previous version re-split
     the whole remaining event list at every distinct timestamp, which
     was quadratic on traces with many unique times. The sort is
     stabilized with the construction index so simultaneous events apply
     in span order, exactly as the stable list sort used to. *)
  let events =
    List.concat_map
      (fun s ->
        let start = max s.start from and stop = min s.stop until in
        if stop <= start then []
        else [ (start, s.app, s.share); (stop, s.app, -.s.share) ])
      spans
  in
  let ev = Array.of_list (List.mapi (fun i e -> (i, e)) events) in
  Array.sort
    (fun (i1, (t1, _, _)) (i2, (t2, _, _)) ->
      match compare (t1 : Time.t) t2 with 0 -> compare i1 i2 | c -> c)
    ev;
  let shares : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let current () =
    Hashtbl.fold
      (fun app sh acc -> if sh > 1e-9 then (app, sh) :: acc else acc)
      shares []
    |> List.sort compare
  in
  let acc = ref [] in
  let t = ref from in
  Array.iter
    (fun (_, (te, app, delta)) ->
      if te > !t then begin
        acc := { t0 = !t; t1 = te; shares = current () } :: !acc;
        t := te
      end;
      let cur =
        match Hashtbl.find_opt shares app with Some x -> x | None -> 0.0
      in
      Hashtbl.replace shares app (cur +. delta))
    ev;
  if until > !t then acc := { t0 = !t; t1 = until; shares = current () } :: !acc;
  List.rev !acc
