open Psbox_engine

type app = {
  app_id : int;
  app_name : string;
  counters : (string, float) Hashtbl.t;
}

(* Machine-wide energy bookkeeping, maintained as a bus subscriber: O(1)
   per power transition, O(1) to query, regardless of history length. *)
type ledger = {
  mutable total_w : float; (* current draw summed over all metered rails *)
  mutable settled_t : Time.t;
  mutable settled_j : float; (* energy accumulated up to [settled_t] *)
}

(* Per-rail ledger with the same O(1) technique, settled only on that
   rail's own transitions (the draw is constant in between). The audit
   ledger reproduces exactly this accumulation, operand for operand, so
   its per-rail attribution totals can be compared bit-for-bit. *)
type rail_ledger = {
  mutable rl_w : float;
  mutable rl_t : Time.t;
  mutable rl_j : float;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  uid : int;
  cpu : Psbox_hw.Cpu.t;
  smp : Smp.t;
  gpu : Accel_driver.t option;
  dsp : Accel_driver.t option;
  net : Net_sched.t option;
  display : Psbox_hw.Display.t option;
  gps : Psbox_hw.Gps.t option;
  power_bus : Psbox_hw.Power_rail.transition Bus.t;
  ledger : ledger;
  rail_ledgers : (string, rail_ledger) Hashtbl.t;
  mutable apps : app list;
  mutable next_app : int;
  mutable started : bool;
}

(* Domain-local: uids distinguish systems within one domain (the audit
   attach memo keys on them), and hooks installed in one domain must not
   fire for systems booted in another. *)
let next_uid = Domain.DLS.new_key (fun () -> ref 0)

(* Boot hooks run at the end of [create], observing the fully wired
   machine. They let optional observers (the audit ledger) auto-attach to
   every system this domain builds without the kernel depending on them. *)
let boot_hooks : (t -> unit) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let on_boot fn =
  let hooks = Domain.DLS.get boot_hooks in
  hooks := !hooks @ [ fn ]

let gpu_opps =
  [|
    { Psbox_hw.Dvfs.freq_mhz = 200; core_w = 0.10; uncore_w = 0.05 };
    { Psbox_hw.Dvfs.freq_mhz = 300; core_w = 0.16; uncore_w = 0.08 };
    { Psbox_hw.Dvfs.freq_mhz = 400; core_w = 0.24; uncore_w = 0.11 };
    { Psbox_hw.Dvfs.freq_mhz = 532; core_w = 0.34; uncore_w = 0.15 };
  |]

(* The C66x DSP's rail is dominated by shared clocking and on-chip SRAM:
   per-core kernels add comparatively little, which maximally entangles
   co-running apps' power (the paper's worst accounting errors are on the
   DSP, Figure 6 row 2). *)
let dsp_opps =
  [|
    { Psbox_hw.Dvfs.freq_mhz = 600; core_w = 0.12; uncore_w = 0.38 };
    { Psbox_hw.Dvfs.freq_mhz = 750; core_w = 0.18; uncore_w = 0.55 };
  |]

let create ?(seed = 42) ?(cores = 2)
    ?(cpu_governor =
      Psbox_hw.Dvfs.Ondemand { up_threshold = 0.7; sampling = Time.ms 50 })
    ?(cpu_idle_w = 0.3) ?(confine_cost = true) ?(gpu = false)
    ?(gpu_governor =
      Psbox_hw.Dvfs.Ondemand { up_threshold = 0.6; sampling = Time.ms 20 })
    ?(dsp = false) ?(wifi = false) ?(wifi_virtual_macs = false)
    ?(display = false) ?(gps = false)
    ?(rail_retention = Some (Time.sec 120)) () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let retention = rail_retention in
  let cpu =
    Psbox_hw.Cpu.create sim ?retention ~governor:cpu_governor
      ~idle_w:cpu_idle_w ~cores ()
  in
  let smp =
    Smp.create sim cpu
      ~config:{ Smp.default_config with Smp.confine_cost }
      ()
  in
  let gpu =
    if not gpu then None
    else begin
      let dev =
        Psbox_hw.Accel.create sim ?retention ~name:"gpu" ~units:4
          ~opps:gpu_opps ~governor:gpu_governor ~idle_w:0.08
          ~autosuspend:(Time.ms 200) ()
      in
      Some
        (Accel_driver.create sim dev ~buffering:Accel_driver.Lock_requests
           ~window:4 ~confine_cost ())
    end
  in
  let dsp =
    if not dsp then None
    else begin
      let dev =
        Psbox_hw.Accel.create sim ?retention ~name:"dsp" ~units:2
          ~opps:dsp_opps ~idle_w:0.25
          ~governor:(Psbox_hw.Dvfs.Ondemand { up_threshold = 0.5; sampling = Time.ms 50 })
          ()
      in
      Some (Accel_driver.create sim dev ~window:2 ~confine_cost ())
    end
  in
  let net =
    if not wifi then None
    else begin
      let nic =
        Psbox_hw.Wifi.create sim ?retention ~virtual_macs:wifi_virtual_macs ()
      in
      Some (Net_sched.create sim nic ())
    end
  in
  let display =
    if display then Some (Psbox_hw.Display.create sim ?retention ()) else None
  in
  let gps = if gps then Some (Psbox_hw.Gps.create sim ?retention ()) else None in
  (* Composition root for the power bus: every metered rail forwards its
     transitions onto one machine-wide bus, and the energy ledger rides it. *)
  let rails =
    [ Psbox_hw.Cpu.rail cpu ]
    @ (match gpu with
      | Some g -> [ Psbox_hw.Accel.rail (Accel_driver.device g) ]
      | None -> [])
    @ (match dsp with
      | Some d -> [ Psbox_hw.Accel.rail (Accel_driver.device d) ]
      | None -> [])
    @ (match net with
      | Some n -> [ Psbox_hw.Wifi.rail (Net_sched.nic n) ]
      | None -> [])
    @ (match display with Some d -> [ Psbox_hw.Display.rail d ] | None -> [])
    @ (match gps with Some g -> [ Psbox_hw.Gps.rail g ] | None -> [])
  in
  let power_bus = Bus.create () in
  let forward r =
    ignore
      (Bus.subscribe (Psbox_hw.Power_rail.transitions r) (Bus.publish power_bus))
  in
  List.iter forward rails;
  (* Per-app attribution rails (display/GPS) are created lazily, after the
     machine boots: hot-join them onto the bus as they appear. They carry a
     share of their physical rail's power, so the ledger below must not
     count them twice. *)
  (match display with
  | Some d -> Psbox_hw.Display.set_on_app_rail d forward
  | None -> ());
  (match gps with
  | Some g -> Psbox_hw.Gps.set_on_app_rail g forward
  | None -> ());
  let ledger =
    {
      total_w =
        List.fold_left (fun acc r -> acc +. Psbox_hw.Power_rail.power r) 0.0 rails;
      settled_t = Sim.now sim;
      settled_j = 0.0;
    }
  in
  let rail_ledgers = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace rail_ledgers
        (Psbox_hw.Power_rail.name r)
        {
          rl_w = Psbox_hw.Power_rail.power r;
          rl_t = Sim.now sim;
          rl_j = 0.0;
        })
    rails;
  ignore
    (Bus.subscribe power_bus (fun tr ->
         let open Psbox_hw.Power_rail in
         (* attribution rails are named "<physical>.app<id>"; physical rail
            names carry no dot *)
         if not (String.contains tr.rail_name '.') then begin
           ledger.settled_j <-
             ledger.settled_j
             +. (ledger.total_w *. Time.to_sec_f (tr.at - ledger.settled_t));
           ledger.settled_t <- tr.at;
           ledger.total_w <- ledger.total_w +. tr.after_w -. tr.before_w;
           match Hashtbl.find_opt rail_ledgers tr.rail_name with
           | Some rl ->
               rl.rl_j <- rl.rl_j +. (rl.rl_w *. Time.to_sec_f (tr.at - rl.rl_t));
               rl.rl_t <- tr.at;
               rl.rl_w <- tr.after_w
           | None -> ()
         end));
  let uid_ref = Domain.DLS.get next_uid in
  incr uid_ref;
  let sys =
    {
      sim; rng; uid = !uid_ref; cpu; smp; gpu; dsp; net; display; gps;
      power_bus; ledger; rail_ledgers; apps = []; next_app = 1; started = false;
    }
  in
  List.iter (fun fn -> fn sys) !(Domain.DLS.get boot_hooks);
  sys

let am57 ?seed () = create ?seed ~cores:2 ~gpu:true ~dsp:true ()

let bbb ?seed ?wifi_virtual_macs () =
  create ?seed ~cores:1 ~wifi:true ?wifi_virtual_macs ()

let phone ?seed () =
  create ?seed ~cores:2 ~gpu:true ~wifi:true ~wifi_virtual_macs:true
    ~display:true ~gps:true ()

let sim sys = sys.sim
let rng sys = sys.rng
let cpu sys = sys.cpu
let smp sys = sys.smp

let gpu sys =
  match sys.gpu with Some g -> g | None -> invalid_arg "System.gpu: no GPU"

let dsp sys =
  match sys.dsp with Some d -> d | None -> invalid_arg "System.dsp: no DSP"

let net sys =
  match sys.net with Some n -> n | None -> invalid_arg "System.net: no WiFi"

let display sys =
  match sys.display with
  | Some d -> d
  | None -> invalid_arg "System.display: no display"

let gps sys =
  match sys.gps with Some g -> g | None -> invalid_arg "System.gps: no GPS"

let has_gpu sys = sys.gpu <> None
let has_dsp sys = sys.dsp <> None
let has_wifi sys = sys.net <> None
let has_display sys = sys.display <> None
let has_gps sys = sys.gps <> None

let rails sys =
  [ Psbox_hw.Cpu.rail sys.cpu ]
  @ (match sys.gpu with
    | Some g -> [ Psbox_hw.Accel.rail (Accel_driver.device g) ]
    | None -> [])
  @ (match sys.dsp with
    | Some d -> [ Psbox_hw.Accel.rail (Accel_driver.device d) ]
    | None -> [])
  @ (match sys.net with
    | Some n -> [ Psbox_hw.Wifi.rail (Net_sched.nic n) ]
    | None -> [])
  @ (match sys.display with
    | Some d -> [ Psbox_hw.Display.rail d ]
    | None -> [])
  @ match sys.gps with Some g -> [ Psbox_hw.Gps.rail g ] | None -> []

let new_app sys ~name =
  let app = { app_id = sys.next_app; app_name = name; counters = Hashtbl.create 8 } in
  sys.next_app <- sys.next_app + 1;
  sys.apps <- app :: sys.apps;
  app

let apps sys = List.rev sys.apps
let app_by_id sys id = List.find_opt (fun a -> a.app_id = id) sys.apps

let bump app key v =
  let cur = match Hashtbl.find_opt app.counters key with Some x -> x | None -> 0.0 in
  Hashtbl.replace app.counters key (cur +. v)

let counter app key =
  match Hashtbl.find_opt app.counters key with Some x -> x | None -> 0.0

let start sys =
  if not sys.started then begin
    sys.started <- true;
    Smp.start sys.smp
  end

let run_for sys span = Sim.run_until sys.sim (Sim.now sys.sim + span)
let now sys = Sim.now sys.sim

let power_bus sys = sys.power_bus
let live_power_w sys = sys.ledger.total_w

let live_energy_j sys =
  sys.ledger.settled_j
  +. (sys.ledger.total_w *. Time.to_sec_f (Sim.now sys.sim - sys.ledger.settled_t))

let rail_energy_j sys ~name =
  match Hashtbl.find_opt sys.rail_ledgers name with
  | Some rl ->
      rl.rl_j +. (rl.rl_w *. Time.to_sec_f (Sim.now sys.sim - rl.rl_t))
  | None -> invalid_arg ("System.rail_energy_j: unknown rail " ^ name)

let rail_energy_table sys =
  Hashtbl.fold (fun name _ acc -> name :: acc) sys.rail_ledgers []
  |> List.sort compare
  |> List.map (fun name -> (name, rail_energy_j sys ~name))

let uid sys = sys.uid

let every sys span fn = Sim.schedule_every sys.sim span fn

let shutdown sys =
  Smp.stop sys.smp;
  Psbox_hw.Cpu.stop sys.cpu;
  (match sys.gpu with
  | Some g -> Psbox_hw.Accel.stop (Accel_driver.device g)
  | None -> ());
  (match sys.dsp with
  | Some d -> Psbox_hw.Accel.stop (Accel_driver.device d)
  | None -> ())
