(** Multicore CFS scheduler with psbox spatial balloons.

    One {!Cfs.t} instance per core, demand-driven preemption timers (the
    scheduler computes the next quota-refill / vruntime-crossing / balloon
    boundary analytically and arms exactly one event per core), wakeup
    preemption, and the paper's two CPU extensions (§4.2):

    - {b Spatial balloons}: when a sandboxed app's per-core group entity wins
      a core, the scheduler coschedules the app on {e all} cores of the
      balloon via task shootdown (modelled IPIs). Cores the app cannot fill
      are forced idle and billed to the app.
    - {b Scheduling loans}: a remote entity forced in ahead of its credit
      records the loan it needed; loans grow while the entity keeps running
      past its credit; at schedule-out the entities of the psbox evenly split
      the accumulated loans, disadvantaging the app in future competition.

    The scheduler reports coscheduling (balloon) intervals to listeners so a
    psbox virtual power meter can attribute rail power. *)

type config = {
  tick : Psbox_engine.Time.span;
      (** minimum preemption granularity (default 1 ms): a running task is
          never preempted on credit grounds sooner than this after dispatch *)
  wakeup_granularity : float;  (** vruntime headroom before wake preemption *)
  ipi_delay : Psbox_engine.Time.span;  (** shootdown propagation (default 5 us) *)
  max_loan : float;
      (** cap on a core's scheduling loan within one coscheduling period
          (default 20 ms of vruntime): bounds how long a balloon can starve
          a waiter on a core where the balloon never loses the credit race *)
  max_period : Psbox_engine.Time.span;
      (** hard bound on one coscheduling period (default 20 ms); a balloon
          that still holds the best credit re-enters immediately *)
  confine_cost : bool;
      (** bill balloon-forced idle to the sandboxed app and settle loans
          (default true — the paper's design; disable only to reproduce the
          ablation) *)
  quota_period : Psbox_engine.Time.span;
      (** refill period for per-app CPU quotas (default 10 ms); see
          {!set_quota} *)
}

val default_config : config

type t

type balloon
(** Handle on a sandboxed app's CPU balloon. *)

val create : Psbox_engine.Sim.t -> Psbox_hw.Cpu.t -> ?config:config -> unit -> t

val cpu : t -> Psbox_hw.Cpu.t
val cores : t -> int

val start : t -> unit
(** Begin scheduling (plans the first preemption instants). Call once. *)

(** {1 Tasks} *)

val spawn : t -> Task.t -> unit
(** Admit a task on its assigned core (joins its app's balloon group if the
    app is sandboxed). *)

val wake : t -> Task.t -> unit
(** Make a blocked task runnable (no-op with a pending-wake mark if it has
    not blocked yet — the race where completion beats the block). *)

val set_on_task_exit : t -> (Task.t -> unit) -> unit

val app_tasks : t -> app:int -> Task.t list

(** {1 Per-app CPU quotas (power-budget actuation)}

    CFS-bandwidth style throttling: each budgeted app may consume up to
    [quota * quota_period] of runtime per period (so a quota of [1.5] on a
    dual-core machine means one and a half cores' worth of CPU time).
    An app that exhausts its budget is pulled off the runqueues until the
    next refill; its tasks stay runnable but do not compete, so co-runners
    are unaffected. Sandboxed (ballooned) apps are exempt — balloons are
    psbox's own enforcement mechanism. *)

val set_quota : t -> app:int -> float option -> unit
(** [set_quota smp ~app (Some q)] caps the app at [q] core-seconds of
    runtime per second; [None] removes the cap (a throttled app re-enters
    at the next refill boundary). Quotas clamp at 0. The first quota ever
    set arms the refill timer; until then the scheduler's event stream is
    byte-identical to a build without quotas. *)

val quota : t -> app:int -> float option

val quota_throttled : t -> app:int -> bool
(** The app is currently off the runqueues waiting for a refill. *)

(** {1 Share bus (live attribution)} *)

type share_change = { at : Psbox_engine.Time.t; app : int; share : float }
(** The number of cores currently executing [app] changed; [share] is the
    new count. Idle and balloon-forced-idle cores count for nobody. *)

val share_bus : t -> share_change Psbox_engine.Bus.t
(** Published on every running-app transition, synchronously with the
    scheduling decision — {!Psbox_accounting.Split.live_cpu} subscribes to
    drive usage-proportional attribution without manual share pushes. *)

(** {1 Spatial balloons (psbox support)} *)

val sandbox : t -> app:int -> balloon
(** Enclose an app's tasks in per-core group entities {E}. From now on the
    app only runs inside coscheduling periods.
    @raise Invalid_argument if the app is already sandboxed. *)

val unsandbox : t -> balloon -> unit
(** End any live coscheduling period, release the app's tasks back to normal
    scheduling. *)

val set_balloon_listener : balloon -> on_start:(unit -> unit) -> on_stop:(unit -> unit) -> unit
(** Callbacks at the start/end of each coscheduling period (after shootdown
    completes / at schedule-out), used by the psbox virtual meter. *)

val balloon_intervals : balloon -> (Psbox_engine.Time.t * Psbox_engine.Time.t) list
(** Completed coscheduling periods, oldest first. *)

val balloon_live : balloon -> bool

val total_loan_issued : balloon -> float
(** Cumulative vruntime loaned over all completed periods (diagnostics and
    invariant tests). *)

(** {1 Introspection} *)

val sched_trace : t -> (int * int) Psbox_engine.Trace.spans
(** Spans tagged [(core, app)]; [app = -1] is true idle, [-2] is
    balloon-forced idle. *)

val wakeup_latencies_us : t -> float array
(** Wake-to-run latencies observed so far, in microseconds. *)

val wakeup_latencies_of : t -> app:int -> float array
(** Same, restricted to one app's tasks. *)

val running_app : t -> core:int -> int option
(** App of the task actually executing on a core right now (idle = None). *)

val stop : t -> unit
(** Cancel all armed timers (end of simulation). *)

(**/**)

val debug_dump : t -> string
(** Internal diagnostics; subject to change. *)
