(** Fair packet scheduler with psbox temporal balloons for the WiFi NIC.

    Apps deposit packets into per-socket kernel buffers; the scheduler
    dispatches them to the NIC's transmission queue in byte-fair order (least
    cumulative sent bytes first, the credit notion of §4.2). When an app is
    sandboxed, the scheduler runs the same drain/flush/serve/drain/flush
    machine as the accelerator drivers, holding foreign packets back in
    their per-socket buffers.

    Lost-opportunity accounting follows the paper: packets that were buffered
    only because of the balloon — up to what the NIC could actually have
    carried in the balloon's airtime — are identified at balloon exit and
    their bytes are charged against the sandboxed app's credit.

    Packet {e reception} cannot be deferred by a commodity NIC: unless the
    NIC supports virtual MACs, foreign receive traffic lands inside open
    balloons and pollutes the sandboxed app's power view (the limitation of
    §4.2/§5). With [virtual_macs] on the {!Psbox_hw.Wifi.t}, foreign RX is
    held back until the balloon closes. *)

type t

val create : Psbox_engine.Sim.t -> Psbox_hw.Wifi.t -> ?window:int -> unit -> t
(** [window] is how many frames the driver keeps handed off to the NIC at
    once (default 1: the driver paces the uniform transmission queue and
    keeps strict credit order; larger values model in-NIC aggregation at
    the cost of coarser fairness). *)

val nic : t -> Psbox_hw.Wifi.t

val send :
  t ->
  app:int ->
  socket:int ->
  bytes:int ->
  on_sent:(Psbox_hw.Wifi.pkt -> unit) ->
  unit
(** Queue one packet for transmission. *)

val deliver_rx :
  t -> app:int -> socket:int -> bytes:int -> on_rx:(Psbox_hw.Wifi.pkt -> unit) -> unit
(** A packet arrives from the air for [app]. Bypasses the fair scheduler
    (reception is not schedulable), except when the NIC has virtual MACs and
    a foreign balloon is open, in which case it is deferred. *)

val pending : t -> app:int -> int
val sent_bytes : t -> app:int -> int
val credit : t -> app:int -> float

(** {1 Per-app rate gates (power-budget actuation)}

    A leaky-bucket limiter on packet dispatch: an app with a rate of [r]
    may put at most [r] bytes per second on the air, averaged at frame
    granularity. Gated apps keep their queue ordering and byte-fair
    credit; they sit out the pick until the gate reopens (a dedicated
    wakeup re-pumps the scheduler). RX is never gated — reception is not
    schedulable — and the sandboxed app is exempt. *)

val set_rate : t -> app:int -> float option -> unit
(** [set_rate d ~app (Some r)] caps transmission at [r] bytes per second
    (clamped to a tiny positive floor); [None] removes the gate. *)

val rate : t -> app:int -> float option

val gated_until : t -> app:int -> Psbox_engine.Time.t option

(** {1 Share bus (live attribution)} *)

type share_change = { at : Psbox_engine.Time.t; app : int; share : float }
(** The app's in-flight frame count at the NIC changed; [share] is the new
    count. *)

val share_bus : t -> share_change Psbox_engine.Bus.t
(** Published at every dispatch and TX/RX completion, so
    {!Psbox_accounting.Split.live_net} can attribute NIC power without
    manual share pushes. *)

(** {1 Temporal balloons} *)

val sandbox : t -> app:int -> unit
val unsandbox : t -> unit
val sandboxed : t -> int option
val set_balloon_listener : t -> on_start:(unit -> unit) -> on_stop:(unit -> unit) -> unit
val balloon_intervals : t -> (Psbox_engine.Time.t * Psbox_engine.Time.t) list
val balloon_open : t -> bool

val lost_bytes_charged : t -> int
(** Total foreign bytes charged to sandboxed apps as lost opportunities. *)

(** {1 Diagnostics} *)

val dispatch_latencies_us : t -> (int * float) list
(** (app, enqueue-to-NIC latency in microseconds) per packet, oldest
    first. *)

val packet_log : t -> Psbox_hw.Wifi.pkt list
(** Completed frames with airtime timestamps, oldest first. *)
