(** Accelerator driver: fair command scheduling plus psbox temporal balloons.

    The driver owns the CPU side of a GPU/DSP command queue. It keeps
    per-app pending queues and dispatches up to a configurable window of
    commands into the device, picking apps either by fair queueing (least
    virtual device runtime first — a CFS-in-spirit scheduler, as built for
    both test GPUs in §5) or round-robin.

    When an app is sandboxed, the driver runs the paper's five-phase
    temporal-balloon machine (§4.2):

    + {e drain others} — stop dispatching; wait for foreign in-flight
      commands to complete; bill the device's idle capacity to the sandboxed
      app;
    + {e flush psbox} — dispatch the sandboxed app's buffered commands;
    + {e serve psbox} — only the sandboxed app dispatches, everyone else
      buffers; the whole device is billed to the sandboxed app;
    + {e drain psbox} — when the policy decides others deserve access, wait
      for the sandboxed app's in-flight commands;
    + {e flush others} — release buffered foreign commands in queueing
      order.

    The interval from the end of phase 1 to the end of phase 4 is an
    exclusive balloon: only the sandboxed app (plus idle power) touches the
    device, and listeners are notified so the psbox virtual meter and the
    power-state virtualization can act on the boundaries. *)

type policy = Fair | Round_robin

type buffering = Lock_requests | Per_process_queues
(** Where the paper's two GPU stacks buffer during balloons: SGX544 buffers
    app locking requests in syscall context; Adreno buffers per-process
    command queues. Behaviourally equivalent here; recorded for latency
    attribution. *)

type t

val create :
  Psbox_engine.Sim.t ->
  Psbox_hw.Accel.t ->
  ?policy:policy ->
  ?buffering:buffering ->
  ?window:int ->
  ?confine_cost:bool ->
  unit ->
  t
(** [window] is the maximum number of commands outstanding in the device
    (default 2 — enough to create the overlap of Figure 3(b)).
    [confine_cost] (default true) enables the paper's billing of drain
    losses and serve windows to the sandboxed app; disabling it is the
    ablation that lets a sandboxed app hurt its neighbours. *)

val device : t -> Psbox_hw.Accel.t

val submit :
  t ->
  ?on_accepted:(unit -> unit) ->
  app:int ->
  Psbox_hw.Accel.command ->
  on_complete:(Psbox_hw.Accel.command -> unit) ->
  unit
(** Queue a command on behalf of an app; [on_complete] fires when the device
    reports completion. [on_accepted] fires when the driver accepts the
    submission: immediately under [Per_process_queues]; deferred until the
    balloon's flush-others phase under [Lock_requests], where a foreign
    submission stalls in syscall context while a balloon holds the queue
    (the SGX/Adreno structural difference of §5). *)

val submission_blocks : t -> app:int -> bool
(** Whether a submission from [app] would stall right now. *)

val pending : t -> app:int -> int

val completed : t -> app:int -> int
(** Commands completed so far, per app (throughput accounting). *)

val vruntime : t -> app:int -> float
(** Virtual device runtime (unit-seconds) billed to an app so far. *)

(** {1 Per-app rate gates (power-budget actuation)}

    A leaky-bucket limiter on command dispatch: an app with a rate of [r]
    may put at most [r] device unit-seconds of work on the device per
    second, averaged at command granularity. Gated apps keep their queue
    ordering and fair-queueing credit; they simply sit out the pick until
    the gate reopens (a dedicated wakeup re-pumps the driver, so a gated
    app never stalls waiting for unrelated traffic). The sandboxed app is
    exempt — balloons are psbox's own enforcement path. *)

val set_rate : t -> app:int -> float option -> unit
(** [set_rate d ~app (Some r)] caps dispatch at [r] unit-seconds per
    second (clamped to a tiny positive floor); [None] removes the gate.
    Takes effect on the next dispatch decision. *)

val rate : t -> app:int -> float option

val gated_until : t -> app:int -> Psbox_engine.Time.t option
(** When the app's gate reopens, if it is currently closed. *)

(** {1 Share bus (live attribution)} *)

type share_change = { at : Psbox_engine.Time.t; app : int; share : float }
(** The app's in-flight command count on the device changed; [share] is
    the new count. *)

val share_bus : t -> share_change Psbox_engine.Bus.t
(** Published at every dispatch and completion, so
    {!Psbox_accounting.Split.live_accel} can attribute device power without
    manual share pushes. *)

(** {1 Temporal balloons} *)

val sandbox : t -> app:int -> unit
(** @raise Invalid_argument if another app is already sandboxed here. *)

val unsandbox : t -> unit
(** Ends any open balloon (gracefully: the exclusivity interval closes when
    the sandboxed app's in-flight commands drain). *)

val sandboxed : t -> int option

val set_balloon_listener : t -> on_start:(unit -> unit) -> on_stop:(unit -> unit) -> unit

val balloon_intervals : t -> (Psbox_engine.Time.t * Psbox_engine.Time.t) list
(** Completed exclusive intervals, oldest first. *)

val balloon_open : t -> bool

(** {1 Diagnostics} *)

val dispatch_latencies_us : t -> (int * float) list
(** (app, submit-to-device-dispatch latency in microseconds) per command,
    oldest first. *)

val completed_commands : t -> Psbox_hw.Accel.command list
(** Completed commands with their device start/finish timestamps, oldest
    first — the raw material of the paper's Figure 3(b) and 7(c)/(d). *)
