(** CFS scheduling entities.

    An entity is either a bare task or a psbox group entity — the per-core
    container for a sandboxed app's tasks ("similar to a Linux cgroup, a
    psbox has a set of scheduling entities {E}, one entity on each core",
    §4.2). A group entity keeps a collective credit (vruntime) and its own
    loan balance for the scheduling-loan mechanism. *)

type group = {
  psbox_id : int;  (** the sandboxed app's id *)
  gcore : int;
  mutable gtasks : Task.t list;  (** the app's tasks assigned to this core *)
  mutable gcurr : Task.t option;  (** inner task currently running *)
  mutable loan : float;  (** vruntime borrowed during the live balloon *)
}

type kind = ETask of Task.t | EGroup of group

type t = {
  eid : int;
  kind : kind;
  weight : float;
  mutable vruntime : float;
  mutable on_rq : bool;
}

val reset_ids : unit -> unit
(** Restart eid numbering from 1 in the current domain — see
    {!Task.reset_ids}. *)

val of_task : Task.t -> t

val group : psbox_id:int -> core:int -> ?weight:float -> unit -> t

val is_group : t -> bool

val app_of : t -> int
(** The app this entity belongs to (task's app or the group's psbox app). *)

val runnable : t -> bool
(** A task entity is runnable iff its task is; a group entity is runnable
    iff any of its tasks is. (A group inside a live balloon is forced to run
    even when empty — that is the scheduler's decision, not the entity's.) *)

val group_pick : group -> Task.t option
(** The runnable member task with the least vruntime, if any. *)

val pp : Format.formatter -> t -> unit
