open Psbox_engine

type device =
  | Cpu_dev of Psbox_hw.Cpu.t
  | Accel_dev of Psbox_hw.Accel.t
  | Wifi_dev of Psbox_hw.Wifi.t

type snapshot =
  | Opp of int
  | Nic of Psbox_hw.Wifi.power_state

(* The private ondemand decision period: matches the real governors so a
   psbox's frequency trajectory is the same whether its balloons are one
   long stretch (running alone) or many short slices (heavy co-running). *)
let sampling = Time.ms 50

type t = {
  sim : Sim.t;
  device : device;
  mutable psbox_state : snapshot;
  mutable world_state : snapshot option; (* saved while a balloon is open *)
  mutable balloon_started : Time.t;
  mutable busy_mark : float;
  mutable acc : Time.span; (* in-balloon time since the last private decision *)
  mutable busy_acc : float; (* busy device-seconds over the same window *)
  mutable in_balloon : bool;
  mutable timer : Sim.handle; (* mid-balloon private governor tick *)
}

let pristine device =
  match device with
  | Cpu_dev _ | Accel_dev _ -> Opp 0
  | Wifi_dev nic ->
      Nic { Psbox_hw.Wifi.tx_level = Psbox_hw.Wifi.tx_level nic; awake = false }

let capture device =
  match device with
  | Cpu_dev cpu -> Opp (Psbox_hw.Dvfs.opp_index (Psbox_hw.Cpu.dvfs cpu))
  | Accel_dev dev -> Opp (Psbox_hw.Dvfs.opp_index (Psbox_hw.Accel.dvfs dev))
  | Wifi_dev nic -> Nic (Psbox_hw.Wifi.power_state nic)

let restore device snap =
  match (device, snap) with
  | Cpu_dev cpu, Opp i -> Psbox_hw.Dvfs.set_opp (Psbox_hw.Cpu.dvfs cpu) i
  | Accel_dev dev, Opp i -> Psbox_hw.Dvfs.set_opp (Psbox_hw.Accel.dvfs dev) i
  | Wifi_dev nic, Nic st -> Psbox_hw.Wifi.restore_power_state nic st
  | (Cpu_dev _ | Accel_dev _), Nic _ | Wifi_dev _, Opp _ ->
      invalid_arg "Power_vstate: snapshot/device mismatch"

(* The governor's load notion: device non-idle time (not weighted
   occupancy), as for the real ondemand. *)
let busy_seconds device =
  match device with
  | Cpu_dev cpu -> Psbox_hw.Cpu.active_seconds cpu
  | Accel_dev dev -> Psbox_hw.Accel.active_seconds dev
  | Wifi_dev nic -> Psbox_hw.Wifi.airtime_seconds nic

let capacity _device = 1.0

let create sim device =
  {
    sim;
    device;
    psbox_state = pristine device;
    world_state = None;
    balloon_started = Time.zero;
    busy_mark = 0.0;
    acc = 0;
    busy_acc = 0.0;
    in_balloon = false;
    timer = Sim.none;
  }

let dvfs_of device =
  match device with
  | Cpu_dev cpu -> Some (Psbox_hw.Cpu.dvfs cpu)
  | Accel_dev dev -> Some (Psbox_hw.Accel.dvfs dev)
  | Wifi_dev _ -> None

let cancel_timer v =
  Sim.cancel v.sim v.timer;
  v.timer <- Sim.none

(* One ondemand decision over the accumulated in-balloon window. *)
let rec governor_step v =
  let dur = Time.to_sec_f v.acc in
  if dur > 0.0 then begin
    let util = v.busy_acc /. (dur *. capacity v.device) in
    let top =
      match v.device with
      | Cpu_dev cpu -> Psbox_hw.Dvfs.max_index (Psbox_hw.Cpu.dvfs cpu)
      | Accel_dev dev -> Psbox_hw.Dvfs.max_index (Psbox_hw.Accel.dvfs dev)
      | Wifi_dev _ -> 0
    in
    match (v.device, v.psbox_state) with
    | (Cpu_dev _ | Accel_dev _), Opp i ->
        let next = if util >= 0.6 then top else max 0 (i - 1) in
        v.psbox_state <- Opp next
    | Wifi_dev _, Nic _ ->
        (* private NIC state: transmission mode follows the app's own
           channel utilization (mirroring the chip's adaptation), and the
           tail/awake state follows its own recent activity *)
        let level =
          if util > 0.5 then 2 else if util > 0.15 then 1 else 0
        in
        v.psbox_state <-
          Nic { Psbox_hw.Wifi.tx_level = level; awake = util > 0.0 }
    | (Cpu_dev _ | Accel_dev _), Nic _ | Wifi_dev _, Opp _ -> ()
  end;
  v.acc <- 0;
  v.busy_acc <- 0.0

(* While a balloon stays open longer than a sampling period, the private
   governor must act mid-balloon (the device governor is frozen). *)
and arm_timer v =
  cancel_timer v;
  if v.in_balloon then begin
    let wait = max (Time.us 1) (sampling - v.acc) in
    v.timer <-
      Sim.schedule_after v.sim wait (fun () ->
          v.timer <- Sim.none;
          if v.in_balloon then begin
            let now = Sim.now v.sim in
            v.acc <- v.acc + (now - v.balloon_started);
            v.busy_acc <- v.busy_acc +. (busy_seconds v.device -. v.busy_mark);
            v.balloon_started <- now;
            v.busy_mark <- busy_seconds v.device;
            (* decide from the live state, apply to the live device *)
            v.psbox_state <- capture v.device;
            governor_step v;
            restore v.device v.psbox_state;
            arm_timer v
          end)
  end

let on_balloon_start v =
  v.in_balloon <- true;
  v.world_state <- Some (capture v.device);
  v.balloon_started <- Sim.now v.sim;
  v.busy_mark <- busy_seconds v.device;
  (match dvfs_of v.device with Some d -> Psbox_hw.Dvfs.freeze d | None -> ());
  (match v.device with
  | Wifi_dev nic -> Psbox_hw.Wifi.freeze_mode nic
  | Cpu_dev _ | Accel_dev _ -> ());
  restore v.device v.psbox_state;
  arm_timer v

let on_balloon_stop v =
  v.in_balloon <- false;
  cancel_timer v;
  (* save what the psbox's own activity left the device at (the real
     governor may have moved it during a long balloon) *)
  v.psbox_state <- capture v.device;
  v.acc <- v.acc + (Sim.now v.sim - v.balloon_started);
  v.busy_acc <- v.busy_acc +. (busy_seconds v.device -. v.busy_mark);
  if v.acc >= sampling then governor_step v;
  (match dvfs_of v.device with Some d -> Psbox_hw.Dvfs.thaw d | None -> ());
  (match v.device with
  | Wifi_dev nic -> Psbox_hw.Wifi.thaw_mode nic
  | Cpu_dev _ | Accel_dev _ -> ());
  match v.world_state with
  | Some snap ->
      restore v.device snap;
      v.world_state <- None
  | None -> ()

let saved_opp v = match v.psbox_state with Opp i -> Some i | Nic _ -> None
let saved_nic_state v = match v.psbox_state with Nic st -> Some st | Opp _ -> None
