(** Kernel tasks (processes/threads).

    A task's behaviour is a pull-based program: whenever the previous action
    finishes, the scheduler calls the program for the next one. Programs may
    call kernel services (submit an accelerator command, queue a packet, ...)
    before returning [Block]; whoever completes the service wakes the task. *)

type state = Runnable | Running | Blocked | Exited

type action =
  | Run of Psbox_engine.Time.span
      (** Execute on the CPU for this long (subject to preemption). *)
  | Block  (** Wait for an external wake (the program arranged one). *)
  | Sleep of Psbox_engine.Time.span  (** Block, wake after the given span. *)
  | Yield  (** Give up the CPU but stay runnable. *)
  | Exit

type program = unit -> action

type t = {
  tid : int;
  app : int;
  name : string;
  weight : float;
  mutable state : state;
  mutable core : int;
  mutable vruntime : float;  (** weighted runtime, nanoseconds *)
  mutable remaining : Psbox_engine.Time.span;  (** left of the current [Run] *)
  mutable program : program;
  mutable wake_pending : bool;
      (** a wake arrived while the task was still [Running]/[Runnable];
          consume it instead of blocking *)
  mutable last_wake : Psbox_engine.Time.t;  (** for latency statistics *)
}

val create :
  app:int -> name:string -> ?weight:float -> ?core:int -> program:program ->
  unit -> t

val reset_ids : unit -> unit
(** Restart tid numbering from 1 in the current domain. Tids are
    domain-local; a fleet device calls this at boot so its tids depend only
    on its own spawn order, never on sibling devices or prior runs. *)

val is_runnable : t -> bool

val pp : Format.formatter -> t -> unit
