open Psbox_engine
module Accel = Psbox_hw.Accel
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing

type policy = Fair | Round_robin
type buffering = Lock_requests | Per_process_queues
type phase = Normal | Drain_others | Serve | Drain_psbox

type pending = {
  p_cmd : Accel.command;
  p_cb : Accel.command -> unit;
  p_enqueued : Time.t;
}

type share_change = { at : Time.t; app : int; share : float }

(* Leaky-bucket rate gate: [g_next] is the earliest instant the app may
   dispatch again; each dispatch pushes it out by cost/rate. *)
type gate = { mutable g_rate : float; mutable g_next : Time.t }

type t = {
  sim : Sim.t;
  dev : Accel.t;
  policy : policy;
  buffering : buffering;
  window : int;
  confine_cost : bool;
  queues : (int, pending Queue.t) Hashtbl.t;
  callbacks : (int, pending) Hashtbl.t; (* command id -> pending *)
  vrt : (int, float) Hashtbl.t;
  done_count : (int, int) Hashtbl.t;
  mutable vtime : float; (* fair-queueing virtual time *)
  mutable rr_order : int list;
  mutable sandboxed : int option;
  mutable unsandboxing : bool;
  mutable phase : phase;
  mutable drain_started : Time.t;
  mutable drain_busy_mark : float;
  mutable serve_started : Time.t;
  mutable intervals : (Time.t * Time.t) list; (* newest first *)
  mutable interval_open : Time.t option;
  mutable on_start : unit -> unit;
  mutable on_stop : unit -> unit;
  mutable latencies : (int * float) list; (* newest first *)
  mutable log : Accel.command list; (* completed, newest first *)
  mutable blocked_submitters : (unit -> unit) list;
      (* SGX-style [Lock_requests] stacks: submissions that arrived while a
         foreign balloon held the queue, to be accepted at flush-others *)
  share_bus : share_change Bus.t;
  gates : (int, gate) Hashtbl.t;
  mutable gate_pump : Sim.handle; (* armed wakeup, Sim.none when idle *)
  mutable gate_at : Time.t; (* instant gate_pump is aimed at *)
      (* pending wakeup for the earliest gated backlogged app *)
  (* telemetry: per-device handles resolved once at create; the trace
     track is "kernel.accel.<device>" with one lane per app *)
  tm_track : string;
  tm_dispatched : Tm.counter;
  tm_completed : Tm.counter;
  tm_lat : Tm.histogram;
  tm_gate_wakeups : Tm.counter;
}

let device d = d.dev
let sandboxed d = d.sandboxed

let queue_of d app =
  match Hashtbl.find_opt d.queues app with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add d.queues app q;
      if not (List.mem app d.rr_order) then d.rr_order <- d.rr_order @ [ app ];
      q

let vrt_of d app =
  match Hashtbl.find_opt d.vrt app with
  | Some v -> v
  | None ->
      Hashtbl.add d.vrt app d.vtime;
      d.vtime

let add_vrt d app delta = Hashtbl.replace d.vrt app (vrt_of d app +. delta)
let vruntime d ~app = vrt_of d app
let pending d ~app = Queue.length (queue_of d app)

let completed d ~app =
  match Hashtbl.find_opt d.done_count app with Some n -> n | None -> 0

let units_f d = float_of_int (Accel.units d.dev)

(* Apps with at least one buffered command. *)
let backlogged d =
  Hashtbl.fold (fun app q acc -> if Queue.is_empty q then acc else app :: acc) d.queues []

let pick_fair d apps =
  match apps with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun best app -> if vrt_of d app < vrt_of d best then app else best)
           (List.hd apps) (List.tl apps))

let pick_rr d apps =
  let rec find = function
    | [] -> None
    | app :: rest -> if List.mem app apps then Some app else find rest
  in
  match find d.rr_order with
  | Some app ->
      (* rotate past the chosen app *)
      d.rr_order <-
        (List.filter (fun a -> a <> app) d.rr_order) @ [ app ];
      Some app
  | None -> None

let eligible d app =
  match Hashtbl.find_opt d.gates app with
  | Some g -> g.g_next <= Sim.now d.sim
  | None -> true

let charge_gate d app cmd =
  match Hashtbl.find_opt d.gates app with
  | Some g ->
      let cost = cmd.Accel.work_s *. float_of_int cmd.Accel.units in
      let now = Sim.now d.sim in
      let base = if g.g_next > now then g.g_next else now in
      g.g_next <- base + Time.of_sec_f (cost /. g.g_rate)
  | None -> ()

(* Rate-gated apps sit out the pick until their gate reopens; the sandboxed
   app is exempt (balloons are psbox's own enforcement path). *)
let pick_app d =
  let apps =
    List.filter
      (fun a -> d.sandboxed = Some a || eligible d a)
      (backlogged d)
  in
  match d.policy with Fair -> pick_fair d apps | Round_robin -> pick_rr d apps

let publish_share d app =
  Bus.publish d.share_bus
    {
      at = Sim.now d.sim;
      app;
      share = float_of_int (Accel.in_flight_of d.dev ~app);
    }

(* Effective credit of the sandboxed app while a balloon is open: its billed
   vruntime plus the whole-device time accrued so far this serve window. *)
let effective_sandbox_vrt d app =
  let base = vrt_of d app in
  match d.phase with
  | Serve | Drain_psbox ->
      base +. (Time.to_sec_f (Sim.now d.sim - d.serve_started) *. units_f d)
  | Normal | Drain_others -> base

let should_yield d app =
  let others = List.filter (fun a -> a <> app) (backlogged d) in
  match others with
  | [] -> false
  | _ -> (
      d.unsandboxing
      || Queue.is_empty (queue_of d app)
         && Accel.in_flight_of d.dev ~app = 0
      ||
      match d.policy with
      | Round_robin -> Queue.is_empty (queue_of d app)
      | Fair -> (
          match pick_fair d others with
          | Some best -> vrt_of d best < effective_sandbox_vrt d app
          | None -> false))

(* The virtual-time frontier: the least vruntime among apps still competing
   (queued in the driver or with commands in flight on the device). *)
let active_floor d =
  let floor = ref None in
  Hashtbl.iter
    (fun app q ->
      if (not (Queue.is_empty q)) || Accel.in_flight_of d.dev ~app > 0 then begin
        let v = vrt_of d app in
        match !floor with
        | Some f when f <= v -> ()
        | _ -> floor := Some v
      end)
    d.queues;
  !floor

let dispatch d app =
  (* advance the frontier before popping, while the dispatched app still
     counts as active; serve-phase dispatches are billed wholesale and
     would distort it *)
  (if d.phase <> Serve then
     match active_floor d with
     | Some f -> d.vtime <- Float.max d.vtime f
     | None -> ());
  let q = queue_of d app in
  let p = Queue.pop q in
  let lat = Time.to_us_f (Sim.now d.sim - p.p_enqueued) in
  d.latencies <- (app, lat) :: d.latencies;
  Tm.incr d.tm_dispatched;
  Tm.observe d.tm_lat lat;
  Hashtbl.replace d.callbacks p.p_cmd.Accel.id p;
  charge_gate d app p.p_cmd;
  Accel.submit d.dev p.p_cmd;
  publish_share d app

let rec pump d =
  match d.phase with
  | Drain_others | Drain_psbox -> ()
  | Serve -> (
      match d.sandboxed with
      | None ->
          d.phase <- Normal;
          pump d
      | Some app ->
          if should_yield d app then begin
            d.phase <- Drain_psbox;
            check_drain d
          end
          else if
            Accel.in_flight d.dev < d.window
            && not (Queue.is_empty (queue_of d app))
          then begin
            dispatch d app;
            pump d
          end)
  | Normal ->
      if Accel.in_flight d.dev < d.window then begin
        match pick_app d with
        | Some app when d.sandboxed = Some app ->
            d.phase <- Drain_others;
            d.drain_started <- Sim.now d.sim;
            d.drain_busy_mark <- Accel.busy_unit_seconds d.dev;
            check_drain d
        | Some app ->
            dispatch d app;
            pump d
        | None -> arm_gate_pump d
      end

(* Nothing is dispatchable right now, but a gated backlogged app may become
   eligible later: keep exactly one wakeup armed at the earliest gate
   reopening, else a rate-capped app whose co-runners go quiet would stall
   until the next unrelated driver event. *)
and arm_gate_pump d =
  let next =
    List.fold_left
      (fun acc app ->
        match Hashtbl.find_opt d.gates app with
        | Some g when g.g_next > Sim.now d.sim -> (
            match acc with
            | Some t when t <= g.g_next -> acc
            | Some _ | None -> Some g.g_next)
        | Some _ | None -> acc)
      None (backlogged d)
  in
  match next with
  | None -> ()
  | Some t ->
      if Sim.is_none d.gate_pump || d.gate_at > t then begin
        Sim.cancel d.sim d.gate_pump;
        d.gate_at <- t;
        d.gate_pump <-
          Sim.schedule_at d.sim t (fun () ->
              d.gate_pump <- Sim.none;
              Tm.incr d.tm_gate_wakeups;
              pump d)
      end

and check_drain d =
  match d.phase with
  | Drain_others -> if Accel.in_flight d.dev = 0 then enter_serve d
  | Drain_psbox -> if Accel.in_flight d.dev = 0 then exit_serve d
  | Normal | Serve -> ()

and enter_serve d =
  (match d.sandboxed with
  | Some app when d.confine_cost ->
      (* bill the capacity lost while draining others to the sandboxed app *)
      let dur = Time.to_sec_f (Sim.now d.sim - d.drain_started) in
      let busy = Accel.busy_unit_seconds d.dev -. d.drain_busy_mark in
      add_vrt d app (Float.max 0.0 ((dur *. units_f d) -. busy))
  | Some _ | None -> ());
  d.phase <- Serve;
  d.serve_started <- Sim.now d.sim;
  d.interval_open <- Some (Sim.now d.sim);
  d.on_start ();
  pump d

and exit_serve d =
  (match d.sandboxed with
  | Some app when d.confine_cost ->
      let dur = Time.to_sec_f (Sim.now d.sim - d.serve_started) in
      add_vrt d app (dur *. units_f d)
  | Some _ | None -> ());
  (match d.interval_open with
  | Some t0 ->
      d.intervals <- (t0, Sim.now d.sim) :: d.intervals;
      (if Tt.recording () then
         let name =
           match d.sandboxed with
           | Some a -> "serve app" ^ string_of_int a
           | None -> "serve"
         in
         Tt.span ~track:d.tm_track ~lane:"balloon" ~name ~start:t0
           ~stop:(Sim.now d.sim) ());
      d.interval_open <- None
  | None -> ());
  d.on_stop ();
  d.phase <- Normal;
  if d.unsandboxing then begin
    d.sandboxed <- None;
    d.unsandboxing <- false
  end;
  (* flush-others also releases SGX-style blocked submitters *)
  let blocked = List.rev d.blocked_submitters in
  d.blocked_submitters <- [];
  List.iter (fun release -> release ()) blocked;
  pump d

let on_device_complete d cmd =
  publish_share d cmd.Accel.app;
  (match Hashtbl.find_opt d.callbacks cmd.Accel.id with
  | Some p ->
      Hashtbl.remove d.callbacks cmd.Accel.id;
      d.log <- cmd :: d.log;
      Tm.incr d.tm_completed;
      (* guard keeps the lane-string allocation off the untraced path *)
      (if Tt.recording () then
         match (cmd.Accel.started_at, cmd.Accel.finished_at) with
         | Some t0, Some t1 ->
             Tt.span ~track:d.tm_track
               ~lane:("app" ^ string_of_int cmd.Accel.app)
               ~name:cmd.Accel.kind ~start:t0 ~stop:t1 ()
         | _ -> ());
      Hashtbl.replace d.done_count cmd.Accel.app (completed d ~app:cmd.Accel.app + 1);
      (* per-command billing, except for the sandboxed app whose serve
         windows are billed wholesale *)
      let sandbox_billed =
        d.confine_cost
        && d.sandboxed = Some cmd.Accel.app
        && (d.phase = Serve || d.phase = Drain_psbox)
      in
      if not sandbox_billed then begin
        let occupancy =
          match (cmd.Accel.started_at, cmd.Accel.finished_at) with
          | Some t0, Some t1 ->
              Time.to_sec_f (t1 - t0) *. float_of_int cmd.Accel.units
          | _ -> cmd.Accel.work_s *. float_of_int cmd.Accel.units
        in
        add_vrt d cmd.Accel.app occupancy
      end;
      p.p_cb cmd
  | None -> ());
  check_drain d;
  pump d

let create sim dev ?(policy = Fair) ?(buffering = Per_process_queues)
    ?(window = 2) ?(confine_cost = true) () =
  if window <= 0 then invalid_arg "Accel_driver.create: window must be positive";
  let d =
    {
      sim;
      dev;
      policy;
      buffering;
      window;
      confine_cost;
      queues = Hashtbl.create 8;
      callbacks = Hashtbl.create 32;
      vrt = Hashtbl.create 8;
      done_count = Hashtbl.create 8;
      vtime = 0.0;
      rr_order = [];
      sandboxed = None;
      unsandboxing = false;
      phase = Normal;
      drain_started = Time.zero;
      drain_busy_mark = 0.0;
      serve_started = Time.zero;
      intervals = [];
      interval_open = None;
      on_start = (fun () -> ());
      on_stop = (fun () -> ());
      latencies = [];
      log = [];
      blocked_submitters = [];
      share_bus = Bus.create ();
      gates = Hashtbl.create 4;
      gate_pump = Sim.none;
      gate_at = Time.zero;
      tm_track = "kernel.accel." ^ Accel.name dev;
      tm_dispatched =
        Tm.counter (Printf.sprintf "accel.%s.dispatched" (Accel.name dev));
      tm_completed =
        Tm.counter (Printf.sprintf "accel.%s.completed" (Accel.name dev));
      tm_lat =
        Tm.histogram
          (Printf.sprintf "accel.%s.dispatch_latency_us" (Accel.name dev))
          ~edges:[| 10.; 100.; 1_000.; 10_000.; 100_000. |];
      tm_gate_wakeups =
        Tm.counter (Printf.sprintf "accel.%s.gate_wakeups" (Accel.name dev));
    }
  in
  Accel.set_on_complete dev (fun cmd -> on_device_complete d cmd);
  d

let share_bus d = d.share_bus

let set_rate d ~app limit =
  (match limit with
  | None -> Hashtbl.remove d.gates app
  | Some r ->
      let r = Float.max r 1e-9 in
      (match Hashtbl.find_opt d.gates app with
      | Some g -> g.g_rate <- r
      | None -> Hashtbl.add d.gates app { g_rate = r; g_next = Time.zero }));
  (if Tt.recording () then
     let now = Sim.now d.sim in
     match limit with
     | Some r ->
         Tt.instant ~track:d.tm_track ~lane:"gate"
           ~name:("set-rate app" ^ string_of_int app)
           ~args:[ ("units_per_s", r) ]
           now
     | None ->
         Tt.instant ~track:d.tm_track ~lane:"gate"
           ~name:("clear-rate app" ^ string_of_int app)
           now);
  pump d

let rate d ~app =
  match Hashtbl.find_opt d.gates app with
  | Some g -> Some g.g_rate
  | None -> None

let gated_until d ~app =
  match Hashtbl.find_opt d.gates app with
  | Some g when g.g_next > Sim.now d.sim -> Some g.g_next
  | Some _ | None -> None

(* Whether a submission from [app] would block in the driver right now:
   with SGX-style syscall-context dispatch ([Lock_requests]), a foreign
   app's submission cannot be accepted while a balloon holds the queue for
   someone else — the locking request itself is buffered, stalling the
   submitting task (§5). Adreno-style per-process queues accept it
   asynchronously. *)
let submission_blocks d ~app =
  d.buffering = Lock_requests
  &&
  match d.sandboxed with
  | Some star -> star <> app && (d.phase = Serve || d.phase = Drain_others)
  | None -> false

let submit d ?(on_accepted = fun () -> ()) ~app cmd ~on_complete =
  if submission_blocks d ~app then
    d.blocked_submitters <-
      (fun () -> on_accepted ()) :: d.blocked_submitters;
  let p = { p_cmd = cmd; p_cb = on_complete; p_enqueued = Sim.now d.sim } in
  (* CFS-style wake placement: an app returning from idle does not bank
     credit — it resumes just below the virtual-time frontier (the wake
     bonus gives light, interactive apps dispatch priority over device
     hogs). An app billed ahead of the frontier — e.g. a sandboxed one that
     paid for balloon exclusivity — keeps its debt. *)
  let was_idle =
    Queue.is_empty (queue_of d app) && Accel.in_flight_of d.dev ~app = 0
  in
  if was_idle then begin
    let bonus = 0.002 *. units_f d in
    Hashtbl.replace d.vrt app (Float.max (vrt_of d app) (d.vtime -. bonus))
  end;
  Queue.push p (queue_of d app);
  if not (submission_blocks d ~app) then on_accepted ();
  pump d

let sandbox d ~app =
  (match d.sandboxed with
  | Some a when a <> app ->
      invalid_arg "Accel_driver.sandbox: another app is already sandboxed"
  | Some _ | None -> ());
  d.sandboxed <- Some app;
  d.unsandboxing <- false;
  pump d

let unsandbox d =
  match d.sandboxed with
  | None -> ()
  | Some _ -> (
      match d.phase with
      | Normal ->
          d.sandboxed <- None;
          pump d
      | Drain_others ->
          (* no balloon opened yet; fall back to normal dispatch *)
          d.sandboxed <- None;
          d.phase <- Normal;
          pump d
      | Serve ->
          d.unsandboxing <- true;
          d.phase <- Drain_psbox;
          check_drain d
      | Drain_psbox ->
          d.unsandboxing <- true;
          check_drain d)

let set_balloon_listener d ~on_start ~on_stop =
  d.on_start <- on_start;
  d.on_stop <- on_stop

let balloon_intervals d = List.rev d.intervals
let balloon_open d = d.interval_open <> None
let dispatch_latencies_us d = List.rev d.latencies
let completed_commands d = List.rev d.log
