type state = Runnable | Running | Blocked | Exited

type action =
  | Run of Psbox_engine.Time.span
  | Block
  | Sleep of Psbox_engine.Time.span
  | Yield
  | Exit

type program = unit -> action

type t = {
  tid : int;
  app : int;
  name : string;
  weight : float;
  mutable state : state;
  mutable core : int;
  mutable vruntime : float;
  mutable remaining : Psbox_engine.Time.span;
  mutable program : program;
  mutable wake_pending : bool;
  mutable last_wake : Psbox_engine.Time.t;
}

(* Domain-local so concurrent device simulations number their tasks
   independently; reset per device so tids depend only on that device's own
   spawn order. *)
let next_tid = Domain.DLS.new_key (fun () -> ref 0)
let reset_ids () = Domain.DLS.get next_tid := 0

let create ~app ~name ?(weight = 1024.0) ?(core = 0) ~program () =
  let next = Domain.DLS.get next_tid in
  incr next;
  {
    tid = !next;
    app;
    name;
    weight;
    state = Runnable;
    core;
    vruntime = 0.0;
    remaining = 0;
    program;
    wake_pending = false;
    last_wake = Psbox_engine.Time.zero;
  }

let is_runnable t = t.state = Runnable || t.state = Running

let pp fmt t =
  Format.fprintf fmt "task%d(%s app%d core%d vrt=%.0f)" t.tid t.name t.app
    t.core t.vruntime
