type group = {
  psbox_id : int;
  gcore : int;
  mutable gtasks : Task.t list;
  mutable gcurr : Task.t option;
  mutable loan : float;
}

type kind = ETask of Task.t | EGroup of group

type t = {
  eid : int;
  kind : kind;
  weight : float;
  mutable vruntime : float;
  mutable on_rq : bool;
}

(* Domain-local, reset per device — see Task.next_tid. *)
let next_eid = Domain.DLS.new_key (fun () -> ref 0)
let reset_ids () = Domain.DLS.get next_eid := 0

let fresh_eid () =
  let next = Domain.DLS.get next_eid in
  incr next;
  !next

let of_task task =
  {
    eid = fresh_eid ();
    kind = ETask task;
    weight = task.Task.weight;
    vruntime = task.Task.vruntime;
    on_rq = false;
  }

let group ~psbox_id ~core ?(weight = 1024.0) () =
  {
    eid = fresh_eid ();
    kind = EGroup { psbox_id; gcore = core; gtasks = []; gcurr = None; loan = 0.0 };
    weight;
    vruntime = 0.0;
    on_rq = false;
  }

let is_group e = match e.kind with EGroup _ -> true | ETask _ -> false

let app_of e =
  match e.kind with ETask t -> t.Task.app | EGroup g -> g.psbox_id

let runnable e =
  match e.kind with
  | ETask t -> Task.is_runnable t
  | EGroup g -> List.exists Task.is_runnable g.gtasks

let group_pick g =
  let best acc t =
    if not (Task.is_runnable t) then acc
    else
      match acc with
      | None -> Some t
      | Some b -> if t.Task.vruntime < b.Task.vruntime then Some t else acc
  in
  List.fold_left best None g.gtasks

let pp fmt e =
  match e.kind with
  | ETask t -> Format.fprintf fmt "E[%a]" Task.pp t
  | EGroup g ->
      Format.fprintf fmt "E[psbox%d core%d vrt=%.0f loan=%.0f |tasks|=%d]"
        g.psbox_id g.gcore e.vruntime g.loan (List.length g.gtasks)
