open Psbox_engine
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing

(* Telemetry track/lane naming: each per-core scheduling timeline is a lane
   of the "kernel.cfs" track; span names are the paper's app identities. *)
let cfs_track = "kernel.cfs"

let app_label = function
  | -1 -> "idle"
  | -2 -> "forced-idle"
  | a -> "app" ^ string_of_int a

let pp_span_tag fmt (core, app) =
  Format.fprintf fmt "(core %d, %s)" core (app_label app)

type config = {
  tick : Time.span;
  wakeup_granularity : float;
  ipi_delay : Time.span;
  max_loan : float;
      (* a single coscheduling period ends once any core's loan exceeds
         this much vruntime: a balloon whose entity keeps the best credit
         on one core must still not starve waiters on the others *)
  max_period : Time.span;
      (* hard bound on one coscheduling period; re-entry is immediate if
         the balloon still holds the best credit, so this only bounds how
         stale the loan bookkeeping can get *)
  confine_cost : bool;
      (* the paper's key design: bill balloon-forced idle to the sandboxed
         app and settle scheduling loans. Disable only for the ablation
         bench, which shows unsandboxed apps losing their share without
         it. *)
  quota_period : Time.span;
      (* CFS-bandwidth style refill period for per-app CPU quotas; a
         throttled app stays off the runqueues until the next refill *)
}

let default_config =
  {
    tick = Time.ms 1;
    wakeup_granularity = 1e6;
    ipi_delay = Time.us 5;
    max_loan = 2e7;
    max_period = Time.ms 20;
    confine_cost = true;
    quota_period = Time.ms 10;
  }

type share_change = { at : Time.t; app : int; share : float }

type quota_state = {
  mutable q_limit : float; (* core-seconds of runtime per second, >= 0 *)
  mutable q_used : Time.span; (* runtime consumed in the current period *)
  mutable q_throttled : bool;
  mutable q_event : Sim.handle; (* analytic quota-crossing wakeup *)
}

type balloon = {
  b_app : int;
  b_entities : Entity.t array;
  mutable b_live : bool;
  mutable b_started : Time.t;
  mutable b_joined : int;
  mutable b_metering : bool;
  mutable b_intervals : (Time.t * Time.t) list; (* newest first *)
  mutable b_on_start : unit -> unit;
  mutable b_on_stop : unit -> unit;
  mutable b_total_loan : float;
}

type t = {
  sim : Sim.t;
  cpu : Psbox_hw.Cpu.t;
  cfg : config;
  rqs : Cfs.t array;
  curr_started : Time.t array;
  dispatched : Time.t array;
      (* when the core's current entity won the CPU (unlike [curr_started]
         this does not advance on accounting updates); dispatched + tick is
         the minimum quantum before a planned preemption/rotation, which is
         the role the tick grid played in the polling scheduler *)
  work_events : Sim.handle array;
  plan_events : Sim.handle array;
      (* per-core demand wakeup: the analytically-computed next interesting
         instant (vruntime crossing / idle pickup / balloon inner rotation)
         replaces the seed's blind per-core 1 ms tick *)
  mutable balloon_event : Sim.handle;
      (* single machine-wide wakeup at the live balloon's next boundary:
         min(max_period expiry, earliest loan-cap crossing, the instant the
         balloon loses the credit race on its last winning core) *)
  span_tag : int option array; (* app code of the open trace span per core *)
  task_entities : (int, Entity.t) Hashtbl.t; (* tid -> entity when unsandboxed *)
  apps : (int, Task.t list ref) Hashtbl.t;
  mutable balloons : balloon list;
  mutable live : balloon option;
  trace : (int * int) Trace.spans;
  mutable latencies : (int * float) list; (* (app, wake-to-run us), newest first *)
  mutable on_task_exit : Task.t -> unit;
  mutable stopped : bool;
  share_bus : share_change Bus.t;
  share_counts : (int, int) Hashtbl.t; (* app -> cores currently running it *)
  quotas : (int, quota_state) Hashtbl.t;
  mutable quota_epoch : Time.t option;
      (* grid anchor for refill boundaries (epoch + k * quota_period), fixed
         by the first quota ever set so demand-armed refills land on the
         same instants a periodic timer would have *)
  mutable quota_next : Sim.handle; (* armed refill boundary, if any *)
  (* telemetry handles, resolved once at create; lanes precomputed so the
     tracing hot path allocates nothing when recording is off *)
  tm_switch : Tm.counter;
  tm_core_switch : Tm.counter array;
  tm_throttles : Tm.counter;
  tm_unthrottles : Tm.counter;
  tm_wake_lat : Tm.histogram;
  tm_lanes : string array;
  (* demand-wakeup fire counters, pre-resolved (these are hot one-shots,
     so the per-call ?label lookup of Sim.schedule_at is avoided) *)
  tm_ev_preempt : Tm.counter;
  tm_ev_rotate : Tm.counter;
  tm_ev_balloon : Tm.counter;
  tm_ev_quota : Tm.counter;
  tm_ev_refill : Tm.counter;
}

let create sim cpu ?(config = default_config) () =
  let n = Psbox_hw.Cpu.cores cpu in
  {
    sim;
    cpu;
    cfg = config;
    rqs = Array.init n (fun core -> Cfs.create ~core);
    curr_started = Array.make n Time.zero;
    dispatched = Array.make n Time.zero;
    work_events = Array.make n Sim.none;
    plan_events = Array.make n Sim.none;
    balloon_event = Sim.none;
    span_tag = Array.make n None;
    task_entities = Hashtbl.create 64;
    apps = Hashtbl.create 16;
    balloons = [];
    live = None;
    trace = Trace.spans ();
    latencies = [];
    on_task_exit = (fun _ -> ());
    stopped = false;
    share_bus = Bus.create ();
    share_counts = Hashtbl.create 16;
    quotas = Hashtbl.create 8;
    quota_epoch = None;
    quota_next = Sim.none;
    tm_switch = Tm.counter "smp.ctx_switches";
    tm_core_switch =
      Array.init n (fun core ->
          Tm.counter (Printf.sprintf "smp.core%d.ctx_switches" core));
    tm_throttles = Tm.counter "smp.throttles";
    tm_unthrottles = Tm.counter "smp.unthrottles";
    tm_wake_lat =
      Tm.histogram "smp.wakeup_latency_us"
        ~edges:[| 1.; 10.; 100.; 1_000.; 10_000. |];
    tm_lanes = Array.init n (Printf.sprintf "core%d");
    tm_ev_preempt = Tm.counter "sim.events.smp.preempt";
    tm_ev_rotate = Tm.counter "sim.events.smp.rotate";
    tm_ev_balloon = Tm.counter "sim.events.smp.balloon_boundary";
    tm_ev_quota = Tm.counter "sim.events.smp.quota_enforce";
    tm_ev_refill = Tm.counter "sim.events.smp.quota_refill";
  }

let cpu smp = smp.cpu
let cores smp = Array.length smp.rqs
let set_on_task_exit smp f = smp.on_task_exit <- f

let app_tasks smp ~app =
  match Hashtbl.find_opt smp.apps app with Some l -> !l | None -> []

let sched_trace smp = smp.trace
let wakeup_latencies_us smp = Array.of_list (List.rev_map snd smp.latencies)

let wakeup_latencies_of smp ~app =
  List.rev smp.latencies
  |> List.filter_map (fun (a, l) -> if a = app then Some l else None)
  |> Array.of_list

let balloon_of_app smp app =
  List.find_opt (fun b -> b.b_app = app) smp.balloons

(* The task actually executing inside an entity, if any. *)
let running_task_of e =
  match e.Entity.kind with
  | Entity.ETask t -> if t.Task.state = Task.Running then Some t else None
  | Entity.EGroup g -> g.Entity.gcurr

let running_app smp ~core =
  match Cfs.curr smp.rqs.(core) with
  | None -> None
  | Some e -> (
      match running_task_of e with Some t -> Some t.Task.app | None -> None)

(* ------------------------------------------------------------------ *)
(* Trace spans                                                          *)

let share_bus smp = smp.share_bus

(* Forward hook into the quota planner (defined at the end of the module):
   an app's running-core count is the rate at which its quota drains, so
   every share change must re-aim the app's quota-crossing wakeup. *)
let quota_share_hook : (t -> int -> unit) ref = ref (fun _ _ -> ())

(* Running-core counts feed the share bus (live attribution): the idle
   tags (-1 / -2) never count, so a balloon-forced-idle core contributes
   no CPU share. Publishing is near-free when nothing subscribes. *)
let note_share smp app delta =
  if app >= 0 then begin
    let cur =
      match Hashtbl.find_opt smp.share_counts app with Some c -> c | None -> 0
    in
    let nw = cur + delta in
    Hashtbl.replace smp.share_counts app nw;
    Bus.publish smp.share_bus
      { at = Sim.now smp.sim; app; share = float_of_int nw };
    if Hashtbl.mem smp.quotas app then !quota_share_hook smp app
  end

let shares_of smp app =
  match Hashtbl.find_opt smp.share_counts app with Some c -> c | None -> 0

let set_span smp core tag =
  let now = Sim.now smp.sim in
  match (smp.span_tag.(core), tag) with
  | Some a, Some b when a = b -> ()
  | old, _ ->
      (match old with
      | Some a ->
          (if Tt.recording () then
             match Trace.open_since smp.trace (core, a) with
             | Some t0 ->
                 Tt.span ~track:cfs_track ~lane:smp.tm_lanes.(core)
                   ~name:(app_label a) ~start:t0 ~stop:now ()
             | None -> ());
          Trace.close_span ~pp:pp_span_tag smp.trace now (core, a);
          note_share smp a (-1)
      | None -> ());
      (match tag with
      | Some b ->
          Trace.open_span smp.trace now (core, b);
          note_share smp b 1
      | None -> ());
      Tm.incr smp.tm_switch;
      Tm.incr smp.tm_core_switch.(core);
      smp.span_tag.(core) <- tag

(* ------------------------------------------------------------------ *)
(* Core scheduling machinery                                           *)

(* Physical identity between the rq's current entity and [e]. *)
let curr_is rq e =
  match Cfs.curr rq with Some c -> c == e | None -> false

let cancel_work smp core =
  Sim.cancel smp.sim smp.work_events.(core);
  smp.work_events.(core) <- Sim.none

(* Per-app CPU quota (CFS-bandwidth style). Only plain task entities are
   throttled: balloon groups answer to the psbox coscheduling machinery,
   not to the budget controller. *)
let throttled_app smp app =
  match Hashtbl.find_opt smp.quotas app with
  | Some q -> q.q_throttled
  | None -> false

let entity_throttled smp e =
  match e.Entity.kind with
  | Entity.ETask t -> throttled_app smp t.Task.app
  | Entity.EGroup _ -> false

let update_curr smp core =
  let rq = smp.rqs.(core) in
  match Cfs.curr rq with
  | None -> ()
  | Some e ->
      let now = Sim.now smp.sim in
      let delta = now - smp.curr_started.(core) in
      if delta > 0 then begin
        let forced_idle =
          match e.Entity.kind with
          | Entity.EGroup g -> g.Entity.gcurr = None
          | Entity.ETask _ -> false
        in
        if smp.cfg.confine_cost || not forced_idle then Cfs.charge rq e delta;
        (match running_task_of e with
        | Some t -> (
            t.Task.remaining <- t.Task.remaining - delta;
            match Hashtbl.find_opt smp.quotas t.Task.app with
            | Some q -> q.q_used <- q.q_used + delta
            | None -> ())
        | None -> ());
        smp.curr_started.(core) <- now
      end

(* ------------------------------------------------------------------ *)
(* Demand-driven wakeup planning                                        *)

(* Analytic plans aim a wakeup at a vruntime crossing computed in floats;
   anything projected further out than this horizon is re-checked at the
   horizon instead (the fire handler verifies against live state and
   re-arms, so a clamped plan is never wrong, only re-derived). *)
let plan_horizon = Time.sec 60

let cancel_plan smp core =
  Sim.cancel smp.sim smp.plan_events.(core);
  smp.plan_events.(core) <- Sim.none

let cancel_balloon_event smp =
  Sim.cancel smp.sim smp.balloon_event;
  smp.balloon_event <- Sim.none

(* Projected vruntime of the core's current entity at the present instant,
   without touching the accounting ([update_curr] materialises the same
   quantity when the wakeup actually fires). *)
let curr_vruntime_now smp core e =
  let delta = Sim.now smp.sim - smp.curr_started.(core) in
  let charging =
    match e.Entity.kind with
    | Entity.EGroup g -> smp.cfg.confine_cost || g.Entity.gcurr <> None
    | Entity.ETask _ -> true
  in
  if delta <= 0 || not charging then e.Entity.vruntime
  else
    e.Entity.vruntime
    +. (float_of_int delta *. Cfs.nice0_weight /. e.Entity.weight)

(* Nanoseconds until a charged entity's vruntime grows by [dv], clamped to
   the planning horizon. *)
let ns_until_dv ~weight dv =
  if dv <= 0.0 then 0
  else
    let dt = dv *. weight /. Cfs.nice0_weight in
    if Float.is_finite dt && dt < float_of_int plan_horizon then
      int_of_float dt + 1
    else plan_horizon

let put_prev smp core =
  let rq = smp.rqs.(core) in
  match Cfs.curr rq with
  | None -> ()
  | Some e ->
      cancel_work smp core;
      (match running_task_of e with
      | Some t -> if t.Task.state = Task.Running then t.Task.state <- Task.Runnable
      | None -> ());
      (match e.Entity.kind with
      | Entity.EGroup g -> g.Entity.gcurr <- None
      | Entity.ETask _ -> ());
      Cfs.set_curr rq None;
      if Entity.runnable e && not (entity_throttled smp e) then Cfs.enqueue rq e;
      Psbox_hw.Cpu.set_core_busy smp.cpu ~core false;
      set_span smp core None

(* Program advancement: drive a task's program until it yields an action
   that leaves the CPU or new work to run. Returns [`Runs] if the task has
   fresh work and should keep the CPU. *)
let rec advance smp t fuel =
  if fuel <= 0 then failwith "Smp: task program made no progress (10k steps)";
  match t.Task.program () with
  | Task.Run s -> if s <= 0 then advance smp t (fuel - 1) else (t.Task.remaining <- s; `Runs)
  | Task.Yield ->
      t.Task.remaining <- 0;
      `Off
  | Task.Block ->
      if t.Task.wake_pending then begin
        t.Task.wake_pending <- false;
        advance smp t (fuel - 1)
      end
      else begin
        t.Task.state <- Task.Blocked;
        `Off
      end
  | Task.Sleep s ->
      t.Task.state <- Task.Blocked;
      let smp' = smp in
      ignore (Sim.schedule_after smp.sim s (fun () -> wake_ref smp' t));
      `Off
  | Task.Exit ->
      t.Task.state <- Task.Exited;
      `Off

and wake_ref smp t = !wake_impl smp t
and wake_impl : (t -> Task.t -> unit) ref = ref (fun _ _ -> assert false)

let record_latency smp t =
  if t.Task.last_wake >= 0 then begin
    let lat = Time.to_us_f (Sim.now smp.sim - t.Task.last_wake) in
    smp.latencies <- (t.Task.app, lat) :: smp.latencies;
    Tm.observe smp.tm_wake_lat lat;
    t.Task.last_wake <- -1
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)

let rec schedule_work smp core t =
  cancel_work smp core;
  let span = max 0 t.Task.remaining in
  smp.work_events.(core) <- Sim.schedule_after smp.sim span (fun () -> work_fired smp core)

and work_fired smp core =
  smp.work_events.(core) <- Sim.none;
  update_curr smp core;
  let rq = smp.rqs.(core) in
  match Cfs.curr rq with
  | None -> ()
  | Some e -> (
      match running_task_of e with
      | Some t when t.Task.remaining <= 0 -> (
          match advance smp t 10_000 with
          | `Runs -> schedule_work smp core t
          | `Off ->
              if t.Task.state = Task.Exited then reap smp t;
              resched smp core)
      | Some _ | None -> ())

and reap smp t =
  (* Remove an exited task from its app roster and any group. *)
  (match Hashtbl.find_opt smp.apps t.Task.app with
  | Some l -> l := List.filter (fun t' -> t'.Task.tid <> t.Task.tid) !l
  | None -> ());
  (match balloon_of_app smp t.Task.app with
  | Some b ->
      Array.iter
        (fun e ->
          match e.Entity.kind with
          | Entity.EGroup g ->
              g.Entity.gtasks <-
                List.filter (fun t' -> t'.Task.tid <> t.Task.tid) g.Entity.gtasks
          | Entity.ETask _ -> ())
        b.b_entities
  | None -> Hashtbl.remove smp.task_entities t.Task.tid);
  smp.on_task_exit t

and start_task smp core t =
  t.Task.state <- Task.Running;
  t.Task.core <- core;
  record_latency smp t;
  Psbox_hw.Cpu.set_core_busy smp.cpu ~core true;
  set_span smp core (Some t.Task.app);
  schedule_work smp core t

and run smp core next =
  do_run smp core next;
  (* every dispatch decision changes what the next interesting instant is *)
  replan smp core

and do_run smp core next =
  let rq = smp.rqs.(core) in
  match next with
  | None ->
      Psbox_hw.Cpu.set_core_busy smp.cpu ~core false;
      set_span smp core (Some (-1))
  | Some e -> (
      Cfs.dequeue rq e;
      Cfs.set_curr rq (Some e);
      smp.curr_started.(core) <- Sim.now smp.sim;
      smp.dispatched.(core) <- Sim.now smp.sim;
      match e.Entity.kind with
      | Entity.ETask t -> start_task smp core t
      | Entity.EGroup g -> (
          match Entity.group_pick g with
          | Some t ->
              g.Entity.gcurr <- Some t;
              start_task smp core t
          | None ->
              g.Entity.gcurr <- None;
              Psbox_hw.Cpu.set_core_busy smp.cpu ~core false;
              set_span smp core (Some (-2));
              (* a balloon whose app has nothing runnable anywhere should
                 not hold the machine idle until the next tick *)
              (match smp.live with
              | Some b when not (Array.exists Entity.runnable b.b_entities) ->
                  ignore
                    (Sim.schedule_after smp.sim 0 (fun () ->
                         if
                           b.b_live
                           && not (Array.exists Entity.runnable b.b_entities)
                         then cosched_out smp b))
              | _ -> ())))

and pick_next smp core =
  match smp.live with
  | Some b -> Some b.b_entities.(core)
  | None -> Cfs.leftmost smp.rqs.(core)

(* Idle-pull load balancing: an idling core steals a waiting task entity
   from a core that is already running something else. Balloon groups are
   never migrated (their cores are fixed by construction). Migration
   re-bases the vruntime on the destination queue, as CFS does. *)
and assigned_load smp core =
  Hashtbl.fold
    (fun _ roster acc ->
      List.fold_left
        (fun acc t ->
          if t.Task.core = core && t.Task.state <> Task.Exited then acc + 1
          else acc)
        acc !roster)
    smp.apps 0

and try_steal smp core =
  match smp.live with
  | Some _ -> None
  | None when smp.balloons <> [] ->
      (* while any app is sandboxed, migrations would scramble the per-core
         loan bookkeeping that keeps coscheduling fair *)
      None
  | None -> (
      let found = ref None in
      let my_load = assigned_load smp core in
      for j = 0 to cores smp - 1 do
        if j <> core && !found = None then begin
          let rqj = smp.rqs.(j) in
          let victim_busy =
            match Cfs.curr rqj with Some _ -> true | None -> false
          in
          (* steal only when it moves the assigned-task counts toward
             balance — a core full of briefly-sleeping tasks is not idle
             capacity, and count drift would clump apps onto one core *)
          if victim_busy && assigned_load smp j >= my_load + 2 then
            List.iter
              (fun e ->
                match e.Entity.kind with
                | Entity.ETask t when Task.is_runnable t && !found = None ->
                    found := Some (j, e, t)
                | Entity.ETask _ | Entity.EGroup _ -> ())
              (Cfs.queued rqj)
        end
      done;
      match !found with
      | Some (j, e, t) ->
          let rqj = smp.rqs.(j) in
          Cfs.dequeue rqj e;
          t.Task.core <- core;
          e.Entity.vruntime <-
            e.Entity.vruntime -. Cfs.min_vruntime rqj
            +. Cfs.min_vruntime smp.rqs.(core);
          t.Task.vruntime <- e.Entity.vruntime;
          Some e
      | None -> None)

and resched smp core =
  update_curr smp core;
  put_prev smp core;
  let next =
    match pick_next smp core with
    | Some e -> Some e
    | None -> try_steal smp core
  in
  (match (next, smp.live) with
  | Some e, None when Entity.is_group e -> (
      match balloon_of_app smp (Entity.app_of e) with
      | Some b -> start_balloon smp core b
      | None -> ())
  | _ -> ());
  run smp core next

(* ------------------------------------------------------------------ *)
(* Spatial balloons                                                     *)

and start_balloon smp core b =
  b.b_live <- true;
  b.b_joined <- 1;
  b.b_metering <- false;
  Array.iter
    (fun e ->
      match e.Entity.kind with
      | Entity.EGroup g -> g.Entity.loan <- 0.0
      | Entity.ETask _ -> ())
    b.b_entities;
  smp.live <- Some b;
  if cores smp = 1 then begin
    b.b_started <- Sim.now smp.sim;
    b.b_metering <- true;
    b.b_on_start ();
    replan_balloon smp b
  end
  else
    for j = 0 to cores smp - 1 do
      if j <> core then
        ignore
          (Sim.schedule_after smp.sim smp.cfg.ipi_delay (fun () ->
               join_balloon smp b j))
    done

and join_balloon smp b j =
  if b.b_live then begin
    update_curr smp j;
    put_prev smp j;
    let e = b.b_entities.(j) in
    (* initial loan: what E_j must borrow to beat the core's best runnable *)
    let best =
      List.find_opt
        (fun e' -> e'.Entity.eid <> e.Entity.eid)
        (Cfs.queued smp.rqs.(j))
    in
    (match (e.Entity.kind, best) with
    | Entity.EGroup g, Some best ->
        g.Entity.loan <-
          Float.max g.Entity.loan
            (Float.max 0.0 (e.Entity.vruntime -. best.Entity.vruntime))
    | _ -> ());
    run smp j (Some e);
    b.b_joined <- b.b_joined + 1;
    if b.b_joined = cores smp then begin
      b.b_started <- Sim.now smp.sim;
      b.b_metering <- true;
      b.b_on_start ();
      replan_balloon smp b
    end
  end

and cosched_out smp ?(local = 0) b =
  cancel_balloon_event smp;
  for i = 0 to cores smp - 1 do
    update_curr smp i
  done;
  (* settle every loan to its exact supremum before redistribution (the
     tick-driven scheduler sampled this at most a tick late) *)
  for i = 0 to cores smp - 1 do
    let e = b.b_entities.(i) in
    let best =
      List.find_opt
        (fun e' -> e'.Entity.eid <> e.Entity.eid)
        (Cfs.queued smp.rqs.(i))
    in
    match (e.Entity.kind, best) with
    | Entity.EGroup g, Some best ->
        g.Entity.loan <-
          Float.max g.Entity.loan (e.Entity.vruntime -. best.Entity.vruntime)
    | _ -> ()
  done;
  b.b_live <- false;
  smp.live <- None;
  if b.b_metering then begin
    b.b_metering <- false;
    b.b_intervals <- (b.b_started, Sim.now smp.sim) :: b.b_intervals;
    if Tt.recording () then
      Tt.span ~track:cfs_track ~lane:"balloon" ~name:(app_label b.b_app)
        ~start:b.b_started ~stop:(Sim.now smp.sim) ();
    b.b_on_stop ()
  end;
  (* loan redistribution: entities evenly split the period's total loan *)
  let groups =
    Array.to_list b.b_entities
    |> List.filter_map (fun e ->
           match e.Entity.kind with
           | Entity.EGroup g -> Some (e, g)
           | Entity.ETask _ -> None)
  in
  let total = List.fold_left (fun acc (_, g) -> acc +. g.Entity.loan) 0.0 groups in
  b.b_total_loan <- b.b_total_loan +. total;
  let n = float_of_int (List.length groups) in
  List.iter
    (fun (e, g) ->
      if smp.cfg.confine_cost then
        e.Entity.vruntime <- e.Entity.vruntime +. ((total /. n) -. g.Entity.loan);
      g.Entity.loan <- 0.0)
    groups;
  (* schedule out everywhere: local core now, remote cores after the IPI *)
  resched smp local;
  for j = 0 to cores smp - 1 do
    if j <> local then
      ignore (Sim.schedule_after smp.sim smp.cfg.ipi_delay (fun () -> resched smp j))
  done

(* Balloon bookkeeping on the designated tick: loan growth and the
   schedule-out condition ("none of {E} has the best credit"). *)
and balloon_tick smp ~local b =
  let n = cores smp in
  let wins = ref 0 in
  for i = 0 to n - 1 do
    let e = b.b_entities.(i) in
    let best =
      List.find_opt (fun e' -> e'.Entity.eid <> e.Entity.eid) (Cfs.queued smp.rqs.(i))
    in
    match best with
    | None -> incr wins
    | Some best ->
        if e.Entity.vruntime <= best.Entity.vruntime then incr wins
        else begin
          match e.Entity.kind with
          | Entity.EGroup g ->
              g.Entity.loan <-
                Float.max g.Entity.loan (e.Entity.vruntime -. best.Entity.vruntime)
          | Entity.ETask _ -> ()
        end
  done;
  let any_runnable = Array.exists Entity.runnable b.b_entities in
  let loan_capped =
    Array.exists
      (fun e ->
        match e.Entity.kind with
        | Entity.EGroup g -> g.Entity.loan > smp.cfg.max_loan
        | Entity.ETask _ -> false)
      b.b_entities
  in
  let over_period = Sim.now smp.sim - b.b_started > smp.cfg.max_period in
  if !wins = 0 || loan_capped || over_period || not any_runnable then
    cosched_out smp ~local b

(* Rotate the inner task of a balloon group when a sibling has less
   vruntime, or start one if the core sits idle with runnable members. *)
and inner_rotate smp core =
  let rq = smp.rqs.(core) in
  match Cfs.curr rq with
  | Some e -> (
      match e.Entity.kind with
      | Entity.EGroup g -> (
          match (g.Entity.gcurr, Entity.group_pick g) with
          | None, Some _ -> resched smp core
          | Some curr_t, Some best when best.Task.tid <> curr_t.Task.tid ->
              resched smp core
          | _ -> ())
      | Entity.ETask _ -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Demand wakeups (replacing the periodic tick)

   Instead of polling every core every tick, the scheduler computes the
   next instant at which a tick would have acted — a waiter's vruntime
   undercutting the runner's, a balloon boundary, an idle pickup — and
   schedules exactly one event there. Every fire handler re-derives the
   decision from live state before acting (verify-and-re-arm), so a plan
   built from slightly stale projections is never wrong, only re-aimed. *)

and replan smp core =
  match smp.live with
  | Some b when b.b_live ->
      replan_rotate smp core;
      replan_balloon smp b
  | Some _ | None -> replan_core smp core

and replan_core smp core =
  cancel_plan smp core;
  if not smp.stopped then begin
    let rq = smp.rqs.(core) in
    let now = Sim.now smp.sim in
    match (Cfs.curr rq, Cfs.leftmost rq) with
    | None, Some _ ->
        (* idle core with queued work: pick it up this instant (the
           polling scheduler waited for the next tick) *)
        smp.plan_events.(core) <-
          Sim.schedule_at smp.sim now (fun () -> plan_fired smp core)
    | Some c, Some l ->
        (* the instant the waiter's static vruntime undercuts the runner's
           growing one, floored by one tick as the minimum quantum. The
           preemption test is strict, so a tie must re-check >= 1 ns later
           (same-instant re-arms would loop), and a non-charging runner
           (confined group sitting idle) never crosses at all — chain at
           the horizon instead. *)
        let v = curr_vruntime_now smp core c in
        let dv = l.Entity.vruntime -. v in
        let charging =
          match c.Entity.kind with
          | Entity.EGroup g -> smp.cfg.confine_cost || g.Entity.gcurr <> None
          | Entity.ETask _ -> true
        in
        let at =
          if dv < 0.0 then now
          else if not charging then now + plan_horizon
          else now + max 1 (ns_until_dv ~weight:c.Entity.weight dv)
        in
        let at = max at (smp.dispatched.(core) + smp.cfg.tick) in
        smp.plan_events.(core) <-
          Sim.schedule_at smp.sim at (fun () -> plan_fired smp core)
    | (Some _ | None), None -> ()
  end

(* Next inner-rotation instant of a live balloon's group on [core]: the
   earliest crossing between the inner runner's growing vruntime and a
   runnable sibling's static one, floored by one tick. *)
and replan_rotate smp core =
  cancel_plan smp core;
  if not smp.stopped then begin
    let rq = smp.rqs.(core) in
    match Cfs.curr rq with
    | Some { Entity.kind = Entity.EGroup g; _ } -> (
        let now = Sim.now smp.sim in
        match g.Entity.gcurr with
        | None -> (
            match Entity.group_pick g with
            | Some _ ->
                smp.plan_events.(core) <-
                  Sim.schedule_at smp.sim now (fun () -> plan_fired smp core)
            | None -> ())
        | Some t ->
            let delta = now - smp.curr_started.(core) in
            let v =
              if delta <= 0 then t.Task.vruntime
              else
                t.Task.vruntime
                +. (float_of_int delta *. Cfs.nice0_weight /. t.Task.weight)
            in
            let next =
              List.fold_left
                (fun acc t' ->
                  if t'.Task.tid <> t.Task.tid && Task.is_runnable t' then
                    (* [group_pick] breaks vruntime ties by list order, so a
                       tie may keep the current task — re-check >= 1 ns
                       later, never at the same instant *)
                    let dv = t'.Task.vruntime -. v in
                    let at =
                      if dv < 0.0 then now
                      else now + max 1 (ns_until_dv ~weight:t.Task.weight dv)
                    in
                    match acc with
                    | None -> Some at
                    | Some a -> Some (min a at)
                  else acc)
                None g.Entity.gtasks
            in
            (match next with
            | Some at ->
                let at = max at (smp.dispatched.(core) + smp.cfg.tick) in
                smp.plan_events.(core) <-
                  Sim.schedule_at smp.sim at (fun () -> plan_fired smp core)
            | None -> ()))
    | Some _ | None -> ()
  end

and plan_fired smp core =
  smp.plan_events.(core) <- Sim.none;
  if not smp.stopped then begin
    update_curr smp core;
    match smp.live with
    | Some b when b.b_live ->
        Tm.incr smp.tm_ev_rotate;
        inner_rotate smp core;
        (* inner_rotate re-plans through resched/run if it acted *)
        if Sim.is_none smp.plan_events.(core) then replan smp core
    | Some _ | None -> (
        Tm.incr smp.tm_ev_preempt;
        let rq = smp.rqs.(core) in
        match (Cfs.curr rq, Cfs.leftmost rq) with
        | Some c, Some l when l.Entity.vruntime < c.Entity.vruntime ->
            resched smp core
        | None, Some _ -> resched smp core
        | _ -> replan_core smp core)
  end

(* One machine-wide wakeup at the live balloon's next boundary:
   min over (max_period expiry; the earliest loan-cap crossing on any
   core; the latest instant at which the balloon still wins some core's
   credit race — after it, wins = 0). All three are exact projections of
   the conditions [balloon_tick] checks; the fire handler re-evaluates
   them on materialised accounting. *)
and replan_balloon smp b =
  cancel_balloon_event smp;
  if (not smp.stopped) && b.b_live && b.b_metering then begin
    let now = Sim.now smp.sim in
    let at = ref (b.b_started + smp.cfg.max_period + 1) in
    (* running max of per-core win-loss instants; None = some core has no
       waiter, so wins can never reach zero *)
    let lose_all = ref (Some now) in
    for i = 0 to cores smp - 1 do
      let e = b.b_entities.(i) in
      let rq = smp.rqs.(i) in
      let best =
        List.find_opt
          (fun e' -> e'.Entity.eid <> e.Entity.eid)
          (Cfs.queued rq)
      in
      let charging =
        curr_is rq e
        &&
        match e.Entity.kind with
        | Entity.EGroup g -> smp.cfg.confine_cost || g.Entity.gcurr <> None
        | Entity.ETask _ -> true
      in
      let v =
        if curr_is rq e then curr_vruntime_now smp i e else e.Entity.vruntime
      in
      match best with
      | None -> lose_all := None
      | Some best ->
          let dv = best.Entity.vruntime -. v in
          let t_lose =
            if dv < 0.0 then now
            else if charging then
              now + max 1 (ns_until_dv ~weight:e.Entity.weight dv)
            else now + plan_horizon
          in
          (match !lose_all with
          | Some acc -> lose_all := Some (max acc t_lose)
          | None -> ());
          (match e.Entity.kind with
          | Entity.EGroup g ->
              if g.Entity.loan > smp.cfg.max_loan then at := min !at now
              else if charging then begin
                let dv_cap = smp.cfg.max_loan +. best.Entity.vruntime -. v in
                at :=
                  min !at
                    (now + max 1 (ns_until_dv ~weight:e.Entity.weight dv_cap))
              end
          | Entity.ETask _ -> ())
    done;
    (match !lose_all with
    | Some t -> at := min !at (max t now)
    | None -> ());
    let at = min !at (now + plan_horizon) in
    smp.balloon_event <-
      Sim.schedule_at smp.sim (max at now) (fun () -> balloon_fired smp)
  end

and balloon_fired smp =
  smp.balloon_event <- Sim.none;
  if not smp.stopped then
    match smp.live with
    | Some b when b.b_live ->
        Tm.incr smp.tm_ev_balloon;
        for i = 0 to cores smp - 1 do
          update_curr smp i
        done;
        (* If this boundary schedules the balloon out, the [local] core
           rescheds this instant and the rest after the IPI — so hand
           "local" to the core whose waiting competitor has the best
           claim. (The tick-driven scheduler got an equivalent rotation
           for free from its staggered per-core ticks; without this,
           core 0 would always repick first and could restart the same
           balloon forever, starving a competing sandbox.) *)
        let local = ref 0 and best_v = ref infinity in
        for i = 0 to cores smp - 1 do
          let e = b.b_entities.(i) in
          match
            List.find_opt
              (fun e' -> e'.Entity.eid <> e.Entity.eid)
              (Cfs.queued smp.rqs.(i))
          with
          | Some w when w.Entity.vruntime < !best_v ->
              best_v := w.Entity.vruntime;
              local := i
          | Some _ | None -> ()
        done;
        balloon_tick smp ~local:!local b;
        if b.b_live then replan_balloon smp b
    | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Quota enforcement                                                    *)

(* Take an over-quota app off the CPUs: queued entities are removed, cores
   running it reschedule (put_prev's throttle guard keeps them off the
   queue). Sandboxed apps are exempt (see [entity_throttled]). *)
let throttle smp app q =
  Sim.cancel smp.sim q.q_event;
  q.q_event <- Sim.none;
  q.q_throttled <- true;
  Tm.incr smp.tm_throttles;
  if Tt.recording () then
    Tt.instant ~track:cfs_track ~lane:"quota"
      ~name:("throttle " ^ app_label app)
      (Sim.now smp.sim);
  for core = 0 to cores smp - 1 do
    let rq = smp.rqs.(core) in
    List.iter
      (fun e ->
        match e.Entity.kind with
        | Entity.ETask t when t.Task.app = app -> Cfs.dequeue rq e
        | Entity.ETask _ | Entity.EGroup _ -> ())
      (Cfs.queued rq)
  done;
  for core = 0 to cores smp - 1 do
    match running_app smp ~core with
    | Some a when a = app -> resched smp core
    | Some _ | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Start / stop                                                         *)

let start smp =
  (* no periodic ticks: each core's resched ends in a demand re-plan *)
  for core = 0 to cores smp - 1 do
    resched smp core
  done

let stop smp =
  smp.stopped <- true;
  Array.iter (fun h -> Sim.cancel smp.sim h) smp.plan_events;
  Array.iter (fun h -> Sim.cancel smp.sim h) smp.work_events;
  cancel_balloon_event smp;
  Hashtbl.iter
    (fun _ q ->
      Sim.cancel smp.sim q.q_event;
      q.q_event <- Sim.none)
    smp.quotas;
  Sim.cancel smp.sim smp.quota_next;
  smp.quota_next <- Sim.none;
  (match smp.live with Some b -> cosched_out smp b | None -> ());
  Trace.close_all smp.trace (Sim.now smp.sim)

(* ------------------------------------------------------------------ *)
(* Wakeups and spawning                                                 *)

let preempt_check smp core e =
  match smp.live with
  | Some b when b.b_live ->
      (* the enqueue changed some core's best waiter: re-aim the balloon
         boundary at the new credit-race geometry *)
      replan_balloon smp b
  | Some _ -> ()
  | None -> (
      let rq = smp.rqs.(core) in
      match Cfs.curr rq with
      | None -> resched smp core
      | Some c ->
          if e.Entity.vruntime +. smp.cfg.wakeup_granularity < c.Entity.vruntime
          then resched smp core
          else
            (* no immediate preemption; the crossing with the new waiter
               still needs a planned wakeup *)
            replan_core smp core)

let wake smp t =
  match t.Task.state with
  | Task.Blocked -> (
      t.Task.state <- Task.Runnable;
      t.Task.last_wake <- Sim.now smp.sim;
      let core = t.Task.core in
      let rq = smp.rqs.(core) in
      match balloon_of_app smp t.Task.app with
      | Some b -> (
          let e = b.b_entities.(core) in
          match smp.live with
          | Some b' when b' == b ->
              (* already forced in; make sure the core picks the waker up,
                 or re-aim the rotation plan at the new runnable member *)
              if curr_is rq e then
                (match e.Entity.kind with
                | Entity.EGroup g ->
                    if g.Entity.gcurr = None then resched smp core
                    else replan smp core
                | Entity.ETask _ -> ())
          | _ ->
              if (not e.Entity.on_rq) && not (curr_is rq e) then begin
                Cfs.place_woken rq e;
                Cfs.enqueue rq e
              end;
              preempt_check smp core e)
      | None ->
          let e = Hashtbl.find smp.task_entities t.Task.tid in
          if throttled_app smp t.Task.app then
            (* stays runnable but off the queue; the next quota refill
               enqueues it *)
            ()
          else begin
            if (not e.Entity.on_rq) && not (curr_is rq e) then begin
              Cfs.place_woken rq e;
              t.Task.vruntime <- e.Entity.vruntime;
              Cfs.enqueue rq e
            end;
            preempt_check smp core e
          end)
  | Task.Running | Task.Runnable -> t.Task.wake_pending <- true
  | Task.Exited -> ()

let () = wake_impl := wake

let spawn smp t =
  let roster =
    match Hashtbl.find_opt smp.apps t.Task.app with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add smp.apps t.Task.app l;
        l
  in
  roster := t :: !roster;
  t.Task.last_wake <- Sim.now smp.sim;
  let core = t.Task.core in
  let rq = smp.rqs.(core) in
  match balloon_of_app smp t.Task.app with
  | Some b -> (
      let e = b.b_entities.(core) in
      (match e.Entity.kind with
      | Entity.EGroup g -> g.Entity.gtasks <- t :: g.Entity.gtasks
      | Entity.ETask _ -> ());
      match smp.live with
      | Some b' when b' == b ->
          (match e.Entity.kind with
          | Entity.EGroup g ->
              if g.Entity.gcurr = None then resched smp core
              else replan smp core
          | Entity.ETask _ -> ())
      | _ ->
          if (not e.Entity.on_rq) && not (curr_is rq e) then begin
            Cfs.place_woken rq e;
            Cfs.enqueue rq e
          end;
          preempt_check smp core e)
  | None ->
      let e = Entity.of_task t in
      Hashtbl.replace smp.task_entities t.Task.tid e;
      Cfs.place_new rq e;
      t.Task.vruntime <- e.Entity.vruntime;
      if not (throttled_app smp t.Task.app) then begin
        Cfs.enqueue rq e;
        preempt_check smp core e
      end

(* ------------------------------------------------------------------ *)
(* Quota API                                                            *)

let unthrottle smp app q =
  q.q_throttled <- false;
  Tm.incr smp.tm_unthrottles;
  if Tt.recording () then
    Tt.instant ~track:cfs_track ~lane:"quota"
      ~name:("unthrottle " ^ app_label app)
      (Sim.now smp.sim);
  List.iter
    (fun t ->
      if Task.is_runnable t then
        match Hashtbl.find_opt smp.task_entities t.Task.tid with
        | Some e ->
            let rq = smp.rqs.(t.Task.core) in
            if (not e.Entity.on_rq) && not (curr_is rq e) then begin
              Cfs.place_woken rq e;
              t.Task.vruntime <- e.Entity.vruntime;
              Cfs.enqueue rq e;
              preempt_check smp t.Task.core e
            end
        | None -> ())
    (app_tasks smp ~app)

let quota_refill smp () =
  if not smp.stopped then
    Hashtbl.iter
      (fun app q ->
        q.q_used <- 0;
        if q.q_throttled then unthrottle smp app q)
      smp.quotas

(* The app's quota drains at [running-core-count] core-ns per ns, so the
   projected balance pins the enforcement instant exactly; consumed time
   still inside the cores' accounting windows is folded into the
   projection without materialising it. *)
let quota_used_now smp app q =
  let now = Sim.now smp.sim in
  let extra = ref 0 in
  for core = 0 to cores smp - 1 do
    match running_app smp ~core with
    | Some a when a = app -> extra := !extra + (now - smp.curr_started.(core))
    | Some _ | None -> ()
  done;
  q.q_used + !extra

let rec replan_quota smp app =
  match Hashtbl.find_opt smp.quotas app with
  | None -> ()
  | Some q ->
      Sim.cancel smp.sim q.q_event;
      q.q_event <- Sim.none;
      if
        (not smp.stopped) && (not q.q_throttled)
        && balloon_of_app smp app = None
      then begin
        let ncores = shares_of smp app in
        if ncores > 0 then begin
          let limit_ns = q.q_limit *. float_of_int smp.cfg.quota_period in
          let used_ns = float_of_int (quota_used_now smp app q) in
          let dt =
            if used_ns >= limit_ns then 1
            else begin
              let d = (limit_ns -. used_ns) /. float_of_int ncores in
              if Float.is_finite d && d < float_of_int plan_horizon then
                int_of_float d + 1
              else plan_horizon
            end
          in
          q.q_event <-
            Sim.schedule_after smp.sim dt (fun () -> quota_fired smp app)
        end
      end

and quota_fired smp app =
  match Hashtbl.find_opt smp.quotas app with
  | None -> ()
  | Some q ->
      q.q_event <- Sim.none;
      if not smp.stopped then begin
        Tm.incr smp.tm_ev_quota;
        for core = 0 to cores smp - 1 do
          match running_app smp ~core with
          | Some a when a = app -> update_curr smp core
          | Some _ | None -> ()
        done;
        let in_balloon =
          match smp.live with Some _ -> true | None -> false
        in
        if
          (not in_balloon) && (not q.q_throttled)
          && balloon_of_app smp app = None
          && shares_of smp app > 0
          && Time.to_sec_f q.q_used
             >= q.q_limit *. Time.to_sec_f smp.cfg.quota_period
        then throttle smp app q
        else replan_quota smp app
      end

(* Refill boundaries stay on the epoch grid the first quota pinned, but a
   boundary is only armed while some budgeted app is consuming (or
   throttled); skipped boundaries are exact no-ops — every balance is
   already zero and nothing is waiting. *)
let rec arm_refill smp =
  match smp.quota_epoch with
  | Some epoch when Sim.is_none smp.quota_next && not smp.stopped ->
      let period = smp.cfg.quota_period in
      let k = ((Sim.now smp.sim - epoch) / period) + 1 in
      smp.quota_next <-
        Sim.schedule_at smp.sim
          (epoch + (k * period))
          (fun () -> refill_fired smp)
  | _ -> ()

and refill_fired smp =
  smp.quota_next <- Sim.none;
  if not smp.stopped then begin
    Tm.incr smp.tm_ev_refill;
    quota_refill smp ();
    Hashtbl.iter (fun app _ -> replan_quota smp app) smp.quotas;
    let active =
      Hashtbl.fold
        (fun app _ acc -> acc || shares_of smp app > 0)
        smp.quotas false
    in
    if active then arm_refill smp
  end

(* The grid starts lazily with the first quota, so an unbudgeted machine
   schedules exactly the same events as before this feature. *)
let ensure_quota_tick smp =
  (match smp.quota_epoch with
  | Some _ -> ()
  | None -> smp.quota_epoch <- Some (Sim.now smp.sim));
  arm_refill smp

let () =
  quota_share_hook :=
    fun smp app ->
      replan_quota smp app;
      arm_refill smp

let set_quota smp ~app limit =
  match limit with
  | None -> (
      match Hashtbl.find_opt smp.quotas app with
      | Some q ->
          Sim.cancel smp.sim q.q_event;
          q.q_event <- Sim.none;
          if q.q_throttled then unthrottle smp app q;
          Hashtbl.remove smp.quotas app
      | None -> ())
  | Some l ->
      let l = Float.max 0.0 l in
      (match Hashtbl.find_opt smp.quotas app with
      | Some q -> q.q_limit <- l
      | None ->
          Hashtbl.replace smp.quotas app
            { q_limit = l; q_used = 0; q_throttled = false; q_event = Sim.none });
      ensure_quota_tick smp;
      replan_quota smp app

let quota smp ~app =
  match Hashtbl.find_opt smp.quotas app with
  | Some q -> Some q.q_limit
  | None -> None

let quota_throttled smp ~app = throttled_app smp app

(* ------------------------------------------------------------------ *)
(* Sandbox / unsandbox                                                  *)

let sandbox smp ~app =
  if balloon_of_app smp app <> None then
    invalid_arg "Smp.sandbox: app already sandboxed";
  let n = cores smp in
  let entities = Array.init n (fun core -> Entity.group ~psbox_id:app ~core ()) in
  let b =
    {
      b_app = app;
      b_entities = entities;
      b_live = false;
      b_started = Time.zero;
      b_joined = 0;
      b_metering = false;
      b_intervals = [];
      b_on_start = (fun () -> ());
      b_on_stop = (fun () -> ());
      b_total_loan = 0.0;
    }
  in
  let tasks = app_tasks smp ~app in
  (* pull tasks out of normal scheduling *)
  let touched_cores = ref [] in
  List.iter
    (fun t ->
      let core = t.Task.core in
      (match Hashtbl.find_opt smp.task_entities t.Task.tid with
      | Some e ->
          let rq = smp.rqs.(core) in
          if curr_is rq e then begin
            (* detach the running task's old entity so it cannot be
               requeued alongside the new group entity *)
            touched_cores := core :: !touched_cores;
            cancel_work smp core;
            if t.Task.state = Task.Running then t.Task.state <- Task.Runnable;
            Cfs.set_curr rq None;
            Psbox_hw.Cpu.set_core_busy smp.cpu ~core false;
            set_span smp core None
          end
          else Cfs.dequeue rq e;
          Hashtbl.remove smp.task_entities t.Task.tid
      | None -> ());
      match entities.(core).Entity.kind with
      | Entity.EGroup g -> g.Entity.gtasks <- t :: g.Entity.gtasks
      | Entity.ETask _ -> ())
    tasks;
  smp.balloons <- b :: smp.balloons;
  (* fair starting credit: at least the core's min_vruntime, at least the
     average credit of the enclosed tasks *)
  Array.iteri
    (fun core e ->
      let rq = smp.rqs.(core) in
      (match e.Entity.kind with
      | Entity.EGroup g ->
          let ts = g.Entity.gtasks in
          let avg =
            match ts with
            | [] -> 0.0
            | _ ->
                List.fold_left (fun a t -> a +. t.Task.vruntime) 0.0 ts
                /. float_of_int (List.length ts)
          in
          e.Entity.vruntime <- Float.max avg (Cfs.min_vruntime rq)
      | Entity.ETask _ -> ());
      if Entity.runnable e then Cfs.enqueue rq e)
    entities;
  (* cores whose curr was one of the app's tasks must reschedule *)
  List.iter (fun core -> resched smp core) (List.sort_uniq compare !touched_cores);
  (* the group entities just enqueued change every core's next crossing *)
  for core = 0 to cores smp - 1 do
    replan smp core
  done;
  b

let unsandbox smp b =
  if b.b_live then cosched_out smp b;
  smp.balloons <- List.filter (fun b' -> not (b' == b)) smp.balloons;
  let touched = ref [] in
  Array.iteri
    (fun core e ->
      let rq = smp.rqs.(core) in
      if curr_is rq e then begin
        touched := core :: !touched;
        (* detach without requeueing the group *)
        (match running_task_of e with
        | Some t -> if t.Task.state = Task.Running then t.Task.state <- Task.Runnable
        | None -> ());
        (match e.Entity.kind with
        | Entity.EGroup g -> g.Entity.gcurr <- None
        | Entity.ETask _ -> ());
        cancel_work smp core;
        Cfs.set_curr rq None;
        Psbox_hw.Cpu.set_core_busy smp.cpu ~core false;
        set_span smp core None
      end
      else Cfs.dequeue rq e;
      match e.Entity.kind with
      | Entity.EGroup g ->
          List.iter
            (fun t ->
              let te = Entity.of_task t in
              te.Entity.vruntime <- t.Task.vruntime;
              Hashtbl.replace smp.task_entities t.Task.tid te;
              if Task.is_runnable t then begin
                Cfs.place_woken rq te;
                t.Task.vruntime <- te.Entity.vruntime;
                Cfs.enqueue rq te
              end)
            g.Entity.gtasks;
          g.Entity.gtasks <- []
      | Entity.ETask _ -> ())
    b.b_entities;
  List.iter (fun core -> resched smp core) (List.sort_uniq compare !touched);
  for core = 0 to cores smp - 1 do
    replan smp core
  done

let set_balloon_listener b ~on_start ~on_stop =
  b.b_on_start <- on_start;
  b.b_on_stop <- on_stop

let balloon_intervals b = List.rev b.b_intervals
let balloon_live b = b.b_live
let total_loan_issued b = b.b_total_loan

let debug_dump smp =
  let buf = Buffer.create 256 in
  for core = 0 to cores smp - 1 do
    let rq = smp.rqs.(core) in
    Buffer.add_string buf (Printf.sprintf "core%d curr=" core);
    (match Cfs.curr rq with
    | Some e ->
        Buffer.add_string buf
          (Printf.sprintf "eid%d(%s,vrt=%.0f,onrq=%b) " e.Entity.eid
             (match e.Entity.kind with
             | Entity.ETask t -> "task" ^ string_of_int t.Task.tid
             | Entity.EGroup g -> "grp" ^ string_of_int g.Entity.psbox_id)
             e.Entity.vruntime e.Entity.on_rq)
    | None -> Buffer.add_string buf "none ");
    Buffer.add_string buf "q=[";
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "eid%d(%s,vrt=%.0f,onrq=%b);" e.Entity.eid
             (match e.Entity.kind with
             | Entity.ETask t -> "task" ^ string_of_int t.Task.tid
             | Entity.EGroup g -> "grp" ^ string_of_int g.Entity.psbox_id)
             e.Entity.vruntime e.Entity.on_rq))
      (Cfs.queued rq);
    Buffer.add_string buf "]\n"
  done;
  Buffer.contents buf
