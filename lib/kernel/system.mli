(** A whole simulated machine: hardware, kernel subsystems, apps.

    Two presets mirror the paper's evaluation platforms (Figure 4):
    {!am57} — dual-core CPU + GPU + DSP behind separate rails — and
    {!bbb} — single-core CPU + WiFi module. Arbitrary combinations can be
    assembled with {!create}. *)

type app = {
  app_id : int;
  app_name : string;
  counters : (string, float) Hashtbl.t;  (** throughput/work counters *)
}

type t

val create :
  ?seed:int ->
  ?cores:int ->
  ?cpu_governor:Psbox_hw.Dvfs.governor ->
  ?cpu_idle_w:float ->
  ?confine_cost:bool ->
  ?gpu:bool ->
  ?gpu_governor:Psbox_hw.Dvfs.governor ->
  ?dsp:bool ->
  ?wifi:bool ->
  ?wifi_virtual_macs:bool ->
  ?display:bool ->
  ?gps:bool ->
  ?rail_retention:Psbox_engine.Time.span option ->
  unit ->
  t
(** Defaults: seed 42, 2 cores, ondemand CPU governor, no devices.
    [confine_cost] (default true) is the paper's lost-sharing billing; it
    exists as a switch only for the ablation bench.

    [rail_retention] bounds every rail's power-transition history (default
    [Some 120 s]): long-running experiments stop accumulating unbounded
    timeline memory, while anything shorter than the retention window —
    including every experiment shipped in this repo — sees byte-identical
    behaviour because compaction only triggers beyond it. Pass [None] to
    keep full history (e.g. when a test inspects old transitions). *)

val am57 : ?seed:int -> unit -> t
(** Dual Cortex-A15-like CPU + SGX544-like GPU + C66x-like DSP. *)

val bbb : ?seed:int -> ?wifi_virtual_macs:bool -> unit -> t
(** Single-core CPU + WiLink8-like WiFi. *)

val phone : ?seed:int -> unit -> t
(** A smartphone-flavoured machine beyond the paper's prototypes: dual-core
    CPU + GPU + WiFi (with virtual MACs) + OLED display + GPS — the §7
    extension hardware. *)

val sim : t -> Psbox_engine.Sim.t
val rng : t -> Psbox_engine.Rng.t
val cpu : t -> Psbox_hw.Cpu.t
val smp : t -> Smp.t

val gpu : t -> Accel_driver.t
(** @raise Invalid_argument if the machine has no GPU. *)

val dsp : t -> Accel_driver.t
(** @raise Invalid_argument if the machine has no DSP. *)

val net : t -> Net_sched.t
(** @raise Invalid_argument if the machine has no WiFi. *)

val display : t -> Psbox_hw.Display.t
(** @raise Invalid_argument if the machine has no display. *)

val gps : t -> Psbox_hw.Gps.t
(** @raise Invalid_argument if the machine has no GPS. *)

val has_gpu : t -> bool
val has_dsp : t -> bool
val has_wifi : t -> bool
val has_display : t -> bool
val has_gps : t -> bool

val rails : t -> Psbox_hw.Power_rail.t list
(** All metered rails (CPU first, then GPU/DSP/WiFi as present). *)

(** {1 Power bus}

    The machine's instrumentation spine: every metered rail forwards its
    power transitions onto one shared bus, wired up at {!create} (the
    composition root). Meters, accountants and debugging tools subscribe
    here instead of polling rail histories. *)

val power_bus : t -> Psbox_hw.Power_rail.transition Psbox_engine.Bus.t
(** The machine-wide power-transition bus. Carries the physical rails plus
    the lazily-created per-app attribution rails of the display and GPS
    (hot-joined at creation); attribution rails are recognizable by the
    ["<physical>.app<id>"] naming convention and are excluded from the
    energy ledger, which would otherwise double-count them. *)

val live_power_w : t -> float
(** Current draw summed over all metered rails, maintained O(1) by a bus
    subscriber. *)

val live_energy_j : t -> float
(** Total energy drawn by all metered rails since boot, in joules —
    answered from the bus-fed ledger in O(1), independent of how much rail
    history exists. *)

val rail_energy_j : t -> name:string -> float
(** Energy drawn by one physical rail since boot, in joules, from a per-rail
    O(1) ledger settled on that rail's own transitions. This is the reference
    value the audit ledger ({!Psbox_audit.Audit}) must reproduce bit-for-bit.
    @raise Invalid_argument on an unknown rail name. *)

val rail_energy_table : t -> (string * float) list
(** [rail_energy_j] for every physical rail, sorted by rail name. *)

val uid : t -> int
(** Process-unique id of this machine instance (boot order, from 1). *)

val on_boot : (t -> unit) -> unit
(** Register a hook run at the end of every subsequent {!create}, observing
    the fully wired machine. This is how optional cross-cutting observers
    (e.g. the audit ledger) attach to every system a process builds without
    the kernel depending on them. Hooks run in registration order and are
    never unregistered — make them cheap no-ops when disabled. *)

val every :
  t -> Psbox_engine.Time.span -> (unit -> unit) -> Psbox_engine.Sim.periodic
(** [every sys span f] arms a periodic timer on the machine's simulator
    (first firing one period from now); stop it with
    {!Psbox_engine.Sim.cancel_every}. *)

(** {1 Apps} *)

val new_app : t -> name:string -> app
val apps : t -> app list
val app_by_id : t -> int -> app option

val bump : app -> string -> float -> unit
(** Add to a named counter (e.g. frames, bytes, commands). *)

val counter : app -> string -> float

(** {1 Running} *)

val start : t -> unit
(** Start the scheduler. Call once, before or after spawning tasks. *)

val run_for : t -> Psbox_engine.Time.span -> unit
(** Advance the simulation by a span. *)

val now : t -> Psbox_engine.Time.t

val shutdown : t -> unit
(** Stop ticks and governors so the event queue can drain. *)
