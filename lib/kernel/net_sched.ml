open Psbox_engine
module Wifi = Psbox_hw.Wifi
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing

let net_track = "kernel.net"

type phase = Normal | Drain_others | Serve | Drain_psbox

type pending = {
  p_pkt : Wifi.pkt;
  p_cb : Wifi.pkt -> unit;
  p_enqueued : Time.t;
}

type share_change = { at : Time.t; app : int; share : float }

(* Leaky-bucket rate gate in bytes/s: [g_next] is the earliest instant the
   app may put another frame on the air. *)
type gate = { mutable g_rate : float; mutable g_next : Time.t }

type t = {
  sim : Sim.t;
  nic : Wifi.t;
  queues : (int, pending Queue.t) Hashtbl.t;
  callbacks : (int, pending) Hashtbl.t; (* pkt id -> pending *)
  credit : (int, float) Hashtbl.t;
  sent : (int, int) Hashtbl.t;
  mutable vtime : float;
  window : int;
  mutable sandboxed : int option;
  mutable unsandboxing : bool;
  mutable phase : phase;
  mutable serve_started : Time.t;
  mutable serve_air_mark : float; (* NIC airtime at serve start *)
  mutable intervals : (Time.t * Time.t) list;
  mutable interval_open : Time.t option;
  mutable on_start : unit -> unit;
  mutable on_stop : unit -> unit;
  mutable lost_charged : int;
  mutable rx_held : pending list; (* deferred foreign RX, oldest last *)
  mutable latencies : (int * float) list;
  mutable pkt_log : Wifi.pkt list; (* completed frames, newest first *)
  share_bus : share_change Bus.t;
  gates : (int, gate) Hashtbl.t;
  mutable gate_pump : Sim.handle; (* armed wakeup, Sim.none when idle *)
  mutable gate_at : Time.t; (* instant gate_pump is aimed at *)
  (* telemetry handles, resolved once at create *)
  tm_tx : Tm.counter;
  tm_rx : Tm.counter;
  tm_tx_bytes : Tm.counter;
  tm_rx_bytes : Tm.counter;
  tm_lat : Tm.histogram;
  tm_gate_wakeups : Tm.counter;
}

let nic d = d.nic

let queue_of d app =
  match Hashtbl.find_opt d.queues app with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add d.queues app q;
      q

let credit_of d app =
  match Hashtbl.find_opt d.credit app with
  | Some c -> c
  | None ->
      Hashtbl.add d.credit app d.vtime;
      d.vtime

let add_credit d app delta = Hashtbl.replace d.credit app (credit_of d app +. delta)
let credit d ~app = credit_of d app
let pending d ~app = Queue.length (queue_of d app)

let sent_bytes d ~app =
  match Hashtbl.find_opt d.sent app with Some n -> n | None -> 0

let backlogged d =
  Hashtbl.fold (fun app q acc -> if Queue.is_empty q then acc else app :: acc) d.queues []

let eligible d app =
  match Hashtbl.find_opt d.gates app with
  | Some g -> g.g_next <= Sim.now d.sim
  | None -> true

let charge_gate d app (pkt : Wifi.pkt) =
  match Hashtbl.find_opt d.gates app with
  | Some g when pkt.Wifi.dir = `Tx ->
      let now = Sim.now d.sim in
      let base = if g.g_next > now then g.g_next else now in
      g.g_next <- base + Time.of_sec_f (float_of_int pkt.Wifi.bytes /. g.g_rate)
  | Some _ | None -> ()

(* Rate-gated apps keep their queue and credit but sit out the pick until
   the gate reopens; the sandboxed app is exempt (balloons are psbox's own
   enforcement path). *)
let pick_app d =
  match
    List.filter (fun a -> d.sandboxed = Some a || eligible d a) (backlogged d)
  with
  | [] -> None
  | apps ->
      Some
        (List.fold_left
           (fun best app -> if credit_of d app < credit_of d best then app else best)
           (List.hd apps) (List.tl apps))

let publish_share d app =
  Bus.publish d.share_bus
    {
      at = Sim.now d.sim;
      app;
      share = float_of_int (Wifi.in_flight_of d.nic ~app);
    }

let should_yield d app =
  let others = List.filter (fun a -> a <> app) (backlogged d) in
  match others with
  | [] -> false
  | _ ->
      d.unsandboxing
      || (Queue.is_empty (queue_of d app) && Wifi.in_flight_of d.nic ~app = 0)
      || List.exists (fun a -> credit_of d a < credit_of d app) others

(* The virtual-time frontier: the least credit among apps that are still
   competing (backlogged in the driver or with frames in flight at the
   NIC). Wake placement uses it so idle periods don't bank credit, without
   robbing a backlogged-but-in-flight app of its entitlement. *)
let active_floor d =
  let floor = ref None in
  Hashtbl.iter
    (fun app q ->
      if (not (Queue.is_empty q)) || Wifi.in_flight_of d.nic ~app > 0 then begin
        let c = credit_of d app in
        match !floor with
        | Some f when f <= c -> ()
        | _ -> floor := Some c
      end)
    d.queues;
  !floor

let dispatch d app =
  (* advance the frontier before popping, while the dispatched app still
     counts as active *)
  (if d.phase <> Serve then
     match active_floor d with
     | Some f -> d.vtime <- Float.max d.vtime f
     | None -> ());
  let q = queue_of d app in
  let p = Queue.pop q in
  let lat = Time.to_us_f (Sim.now d.sim - p.p_enqueued) in
  d.latencies <- (app, lat) :: d.latencies;
  Tm.observe d.tm_lat lat;
  Hashtbl.replace d.callbacks p.p_pkt.Wifi.id p;
  charge_gate d app p.p_pkt;
  Wifi.transmit d.nic p.p_pkt;
  publish_share d app

let rec pump d =
  match d.phase with
  | Drain_others | Drain_psbox -> ()
  | Serve -> (
      match d.sandboxed with
      | None ->
          d.phase <- Normal;
          pump d
      | Some app ->
          if should_yield d app then begin
            d.phase <- Drain_psbox;
            check_drain d
          end
          else if
            Wifi.in_flight d.nic < d.window
            && not (Queue.is_empty (queue_of d app))
          then begin
            dispatch d app;
            pump d
          end)
  | Normal ->
      if Wifi.in_flight d.nic < d.window then begin
        match pick_app d with
        | Some app when d.sandboxed = Some app ->
            d.phase <- Drain_others;
            check_drain d
        | Some app ->
            dispatch d app;
            pump d
        | None -> arm_gate_pump d
      end

(* Keep exactly one wakeup armed at the earliest gate reopening among
   gated backlogged apps, so a rate-capped app with quiet co-runners does
   not stall until the next unrelated NIC event. *)
and arm_gate_pump d =
  let next =
    List.fold_left
      (fun acc app ->
        match Hashtbl.find_opt d.gates app with
        | Some g when g.g_next > Sim.now d.sim -> (
            match acc with
            | Some t when t <= g.g_next -> acc
            | Some _ | None -> Some g.g_next)
        | Some _ | None -> acc)
      None (backlogged d)
  in
  match next with
  | None -> ()
  | Some t ->
      if Sim.is_none d.gate_pump || d.gate_at > t then begin
        Sim.cancel d.sim d.gate_pump;
        d.gate_at <- t;
        d.gate_pump <-
          Sim.schedule_at d.sim t (fun () ->
              d.gate_pump <- Sim.none;
              Tm.incr d.tm_gate_wakeups;
              pump d)
      end

and check_drain d =
  match d.phase with
  | Drain_others -> if Wifi.in_flight d.nic = 0 then enter_serve d
  | Drain_psbox -> if Wifi.in_flight d.nic = 0 then exit_serve d
  | Normal | Serve -> ()

and enter_serve d =
  d.phase <- Serve;
  d.serve_started <- Sim.now d.sim;
  d.serve_air_mark <- Wifi.airtime_seconds d.nic;
  d.interval_open <- Some (Sim.now d.sim);
  d.on_start ();
  pump d

and exit_serve d =
  let now = Sim.now d.sim in
  (match d.sandboxed with
  | Some app ->
      (* lost-opportunity penalty: airtime the balloon held exclusive but
         did not use, expressed in bytes — but only up to what the buffered
         foreign packets could actually have filled *)
      let queued_foreign =
        Hashtbl.fold
          (fun a q acc ->
            if a = app then acc
            else Queue.fold (fun acc p -> acc + p.p_pkt.Wifi.bytes) acc q)
          d.queues 0
      in
      let dur = Time.to_sec_f (now - d.serve_started) in
      let used = Wifi.airtime_seconds d.nic -. d.serve_air_mark in
      let wasted_bytes =
        int_of_float (Float.max 0.0 (dur -. used) *. Wifi.rate_bps d.nic /. 8.0)
      in
      let lost = min queued_foreign wasted_bytes in
      d.lost_charged <- d.lost_charged + lost;
      add_credit d app (float_of_int lost)
  | None -> ());
  (match d.interval_open with
  | Some t0 ->
      d.intervals <- (t0, now) :: d.intervals;
      (if Tt.recording () then
         let name =
           match d.sandboxed with
           | Some a -> "serve app" ^ string_of_int a
           | None -> "serve"
         in
         Tt.span ~track:net_track ~lane:"balloon" ~name ~start:t0 ~stop:now ());
      d.interval_open <- None
  | None -> ());
  d.on_stop ();
  d.phase <- Normal;
  if d.unsandboxing then begin
    d.sandboxed <- None;
    d.unsandboxing <- false
  end;
  (* release any deferred foreign RX *)
  let held = List.rev d.rx_held in
  d.rx_held <- [];
  List.iter
    (fun p ->
      Hashtbl.replace d.callbacks p.p_pkt.Wifi.id p;
      Wifi.transmit d.nic p.p_pkt)
    held;
  pump d

let on_nic_sent d pkt =
  d.pkt_log <- pkt :: d.pkt_log;
  (if pkt.Wifi.dir = `Tx then begin
     Tm.incr d.tm_tx;
     Tm.add d.tm_tx_bytes (float_of_int pkt.Wifi.bytes)
   end
   else begin
     Tm.incr d.tm_rx;
     Tm.add d.tm_rx_bytes (float_of_int pkt.Wifi.bytes)
   end);
  (if Tt.recording () then
     let name = if pkt.Wifi.dir = `Tx then "tx" else "rx" in
     let lane = "app" ^ string_of_int pkt.Wifi.app in
     let args = [ ("bytes", float_of_int pkt.Wifi.bytes) ] in
     match (pkt.Wifi.air_start, pkt.Wifi.air_end) with
     | Some t0, Some t1 ->
         Tt.span ~track:net_track ~lane ~name ~args ~start:t0 ~stop:t1 ()
     | _ -> Tt.instant ~track:net_track ~lane ~name ~args (Sim.now d.sim));
  publish_share d pkt.Wifi.app;
  (match Hashtbl.find_opt d.callbacks pkt.Wifi.id with
  | Some p ->
      Hashtbl.remove d.callbacks pkt.Wifi.id;
      if pkt.Wifi.dir = `Tx then begin
        add_credit d pkt.Wifi.app (float_of_int pkt.Wifi.bytes);
        Hashtbl.replace d.sent pkt.Wifi.app
          (sent_bytes d ~app:pkt.Wifi.app + pkt.Wifi.bytes)
      end;
      p.p_cb pkt
  | None -> ());
  check_drain d;
  pump d

let create sim nic ?(window = 1) () =
  let d =
    {
      sim;
      nic;
      queues = Hashtbl.create 8;
      callbacks = Hashtbl.create 32;
      credit = Hashtbl.create 8;
      sent = Hashtbl.create 8;
      vtime = 0.0;
      window;
      sandboxed = None;
      unsandboxing = false;
      phase = Normal;
      serve_started = Time.zero;
      serve_air_mark = 0.0;
      intervals = [];
      interval_open = None;
      on_start = (fun () -> ());
      on_stop = (fun () -> ());
      lost_charged = 0;
      rx_held = [];
      latencies = [];
      pkt_log = [];
      share_bus = Bus.create ();
      gates = Hashtbl.create 4;
      gate_pump = Sim.none;
      gate_at = Time.zero;
      tm_tx = Tm.counter "net.tx_packets";
      tm_rx = Tm.counter "net.rx_packets";
      tm_tx_bytes = Tm.counter "net.tx_bytes";
      tm_rx_bytes = Tm.counter "net.rx_bytes";
      tm_lat =
        Tm.histogram "net.dispatch_latency_us"
          ~edges:[| 10.; 100.; 1_000.; 10_000.; 100_000. |];
      tm_gate_wakeups = Tm.counter "net.gate_wakeups";
    }
  in
  Wifi.set_on_sent nic (fun pkt -> on_nic_sent d pkt);
  d

let share_bus d = d.share_bus

let set_rate d ~app limit =
  (match limit with
  | None -> Hashtbl.remove d.gates app
  | Some r ->
      let r = Float.max r 1e-9 in
      (match Hashtbl.find_opt d.gates app with
      | Some g -> g.g_rate <- r
      | None -> Hashtbl.add d.gates app { g_rate = r; g_next = Time.zero }));
  (if Tt.recording () then
     let now = Sim.now d.sim in
     match limit with
     | Some r ->
         Tt.instant ~track:net_track ~lane:"gate"
           ~name:("set-rate app" ^ string_of_int app)
           ~args:[ ("bytes_per_s", r) ]
           now
     | None ->
         Tt.instant ~track:net_track ~lane:"gate"
           ~name:("clear-rate app" ^ string_of_int app)
           now);
  pump d

let rate d ~app =
  match Hashtbl.find_opt d.gates app with
  | Some g -> Some g.g_rate
  | None -> None

let gated_until d ~app =
  match Hashtbl.find_opt d.gates app with
  | Some g when g.g_next > Sim.now d.sim -> Some g.g_next
  | Some _ | None -> None

let send d ~app ~socket ~bytes ~on_sent =
  let pkt = Wifi.packet ~app ~socket ~bytes ~dir:`Tx () in
  let p = { p_pkt = pkt; p_cb = on_sent; p_enqueued = Sim.now d.sim } in
  (* wake placement: no credit banking across idle periods *)
  let was_idle =
    Queue.is_empty (queue_of d app) && Wifi.in_flight_of d.nic ~app = 0
  in
  if was_idle then Hashtbl.replace d.credit app (Float.max (credit_of d app) d.vtime);
  Queue.push p (queue_of d app);
  pump d

let deliver_rx d ~app ~socket ~bytes ~on_rx =
  let pkt = Wifi.packet ~app ~socket ~bytes ~dir:`Rx () in
  let p = { p_pkt = pkt; p_cb = on_rx; p_enqueued = Sim.now d.sim } in
  if d.sandboxed = Some app then begin
    (* the sandboxed app's own reception: the NIC recognizes the balloon's
       (virtual) MAC, so the frame is handled inside the app's balloon and
       its power is metered for the psbox *)
    Queue.push p (queue_of d app);
    pump d
  end
  else begin
    let foreign_balloon =
      match d.sandboxed with
      | Some a -> d.interval_open <> None && a <> app
      | None -> false
    in
    if foreign_balloon && Wifi.virtual_macs d.nic then
      (* the NIC filters on the balloon's virtual MAC; hold the frame *)
      d.rx_held <- p :: d.rx_held
    else begin
      Hashtbl.replace d.callbacks pkt.Wifi.id p;
      Wifi.transmit d.nic pkt
    end
  end

let sandbox d ~app =
  (match d.sandboxed with
  | Some a when a <> app ->
      invalid_arg "Net_sched.sandbox: another app is already sandboxed"
  | Some _ | None -> ());
  d.sandboxed <- Some app;
  d.unsandboxing <- false;
  pump d

let unsandbox d =
  match d.sandboxed with
  | None -> ()
  | Some _ -> (
      match d.phase with
      | Normal ->
          d.sandboxed <- None;
          pump d
      | Drain_others ->
          d.sandboxed <- None;
          d.phase <- Normal;
          pump d
      | Serve ->
          d.unsandboxing <- true;
          d.phase <- Drain_psbox;
          check_drain d
      | Drain_psbox ->
          d.unsandboxing <- true;
          check_drain d)

let sandboxed d = d.sandboxed

let set_balloon_listener d ~on_start ~on_stop =
  d.on_start <- on_start;
  d.on_stop <- on_stop

let balloon_intervals d = List.rev d.intervals
let balloon_open d = d.interval_open <> None
let lost_bytes_charged d = d.lost_charged
let dispatch_latencies_us d = List.rev d.latencies
let packet_log d = List.rev d.pkt_log
