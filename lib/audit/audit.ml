open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Accel_driver = Psbox_kernel.Accel_driver
module Net_sched = Psbox_kernel.Net_sched
module Power_rail = Psbox_hw.Power_rail
module Dvfs = Psbox_hw.Dvfs
module Tm = Psbox_telemetry.Metrics

type cause = Active | Shared_rail | Lingering | Dvfs_transition | Idle_floor

let cause_label = function
  | Active -> "active"
  | Shared_rail -> "shared-rail"
  | Lingering -> "lingering"
  | Dvfs_transition -> "dvfs-transition"
  | Idle_floor -> "idle-floor"

let cause_of_label = function
  | "active" -> Some Active
  | "shared-rail" -> Some Shared_rail
  | "lingering" -> Some Lingering
  | "dvfs-transition" -> Some Dvfs_transition
  | "idle-floor" -> Some Idle_floor
  | _ -> None

let cause_rank = function
  | Active -> 0
  | Shared_rail -> 1
  | Lingering -> 2
  | Dvfs_transition -> 3
  | Idle_floor -> 4

let all_causes = [ Active; Shared_rail; Lingering; Dvfs_transition; Idle_floor ]

(* Per-rail attribution state. Within one constant-power segment of the
   rail (between two of its transitions), the classification inputs —
   shares, last active app, DVFS index — may change several times; each
   change closes a sub-interval whose energy is billed under the state
   that held *during* it. *)
type rstate = {
  rs_rail : string;
  rs_subsystem : string;
  rs_floor_w : float;
  mutable rs_cur_w : float; (* draw over the current segment *)
  mutable rs_seg_start : Time.t; (* segment start: mirrors the kernel ledger *)
  mutable rs_mark : Time.t; (* start of the open sub-interval *)
  mutable rs_total_j : float; (* settled, bit-identical to the kernel ledger *)
  rs_shares : (int, float) Hashtbl.t; (* app -> current share, > 0 *)
  mutable rs_last_active : int; (* lingering blame; 0 until anyone runs *)
  mutable rs_dvfs_index : int; (* as of the open sub-interval *)
  rs_cells : (int * cause, float) Hashtbl.t; (* (app, cause) -> joules *)
  rs_m_rail : Tm.counter;
}

type t = { a_sys : System.t; a_rails : (string, rstate) Hashtbl.t }

(* All five cause counters resolved at load — no lazily-populated shared
   memo for concurrent devices to race on. *)
let m_cause =
  let cells =
    List.map
      (fun c -> (c, Tm.counter ("audit.cause." ^ cause_label c ^ "_j")))
      all_causes
  in
  fun cause -> List.assq cause cells

(* Split the rail's current draw into (app, cause, watts) parts. The
   parts need not sum to the draw bit-exactly: read-time rows re-derive
   the idle-floor remainder against the exact rail total. *)
let classify rs =
  let w = rs.rs_cur_w in
  if w <= 0.0 then []
  else begin
    let idle = Float.min w rs.rs_floor_w in
    let dyn = w -. idle in
    let base = if idle > 0.0 then [ (0, Idle_floor, idle) ] else [] in
    if dyn <= 0.0 then base
    else begin
      let total_share, napps, an_app =
        Hashtbl.fold
          (fun app s (ts, n, _) ->
            if s > 0.0 then (ts +. s, n + 1, app) else (ts, n, app))
          rs.rs_shares (0.0, 0, 0)
      in
      if napps = 0 then begin
        (* nobody is using the device yet it draws above its floor: a
           lingering power state, split out further when the DVFS state is
           still elevated (the governor has not stepped down) *)
        let cause = if rs.rs_dvfs_index > 0 then Dvfs_transition else Lingering in
        (rs.rs_last_active, cause, dyn) :: base
      end
      else if napps = 1 then (an_app, Active, dyn) :: base
      else
        Hashtbl.fold
          (fun app s acc ->
            if s > 0.0 then (app, Shared_rail, dyn *. (s /. total_share)) :: acc
            else acc)
          rs.rs_shares base
    end
  end

let flush rs at =
  if at > rs.rs_mark then begin
    let dt = Time.to_sec_f (at - rs.rs_mark) in
    List.iter
      (fun (app, cause, w) ->
        let j = w *. dt in
        let key = (app, cause) in
        let cur =
          match Hashtbl.find_opt rs.rs_cells key with Some x -> x | None -> 0.0
        in
        Hashtbl.replace rs.rs_cells key (cur +. j);
        Tm.add rs.rs_m_rail j;
        Tm.add (m_cause cause) j)
      (classify rs);
    rs.rs_mark <- at
  end

let set_share rs at app share =
  flush rs at;
  if share > 0.0 then begin
    Hashtbl.replace rs.rs_shares app share;
    rs.rs_last_active <- app
  end
  else Hashtbl.remove rs.rs_shares app

(* ---- per-domain switchboard ---------------------------------------- *)

(* Domain-local, like the boot hooks it piggybacks on: a fleet worker
   enabling or attaching audits never touches the main domain's report
   registry or lookup table. *)
type switchboard = {
  mutable sw_on : bool;
  mutable sw_hook : bool;
  mutable sw_report : bool;
  mutable sw_registry : t list; (* strong, newest first *)
  (* uid -> weak instance: live machines resolve deterministically, dead
     ones stay collectable (the instance is kept alive by the machine's own
     bus subscriptions, not by this table). *)
  sw_live : (int, t Weak.t) Hashtbl.t;
}

let sw_key : switchboard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        sw_on = false;
        sw_hook = false;
        sw_report = false;
        sw_registry = [];
        sw_live = Hashtbl.create 8;
      })

let sw () = Domain.DLS.get sw_key

let lookup sys =
  match Hashtbl.find_opt (sw ()).sw_live (System.uid sys) with
  | Some w -> Weak.get w 0
  | None -> None

let attach sys =
  match lookup sys with
  | Some a -> a
  | None ->
      let a = { a_sys = sys; a_rails = Hashtbl.create 8 } in
      let now = System.now sys in
      let add rail subsystem dvfs =
        let name = Power_rail.name rail in
        let rs =
          {
            rs_rail = name;
            rs_subsystem = subsystem;
            rs_floor_w = Power_rail.floor_w rail;
            rs_cur_w = Power_rail.power rail;
            rs_seg_start = now;
            rs_mark = now;
            rs_total_j = 0.0;
            rs_shares = Hashtbl.create 4;
            rs_last_active = 0;
            rs_dvfs_index = 0;
            rs_cells = Hashtbl.create 16;
            rs_m_rail = Tm.counter ("audit.rail." ^ name ^ "_j");
          }
        in
        Hashtbl.replace a.a_rails name rs;
        (match dvfs with
        | Some d ->
            rs.rs_dvfs_index <- Dvfs.opp_index d;
            ignore
              (Bus.subscribe (Dvfs.changes d) (fun (ch : Dvfs.change) ->
                   flush rs ch.at;
                   rs.rs_dvfs_index <- ch.index_after))
        | None -> ());
        rs
      in
      let cpu = System.cpu sys in
      let cpu_rs =
        add (Psbox_hw.Cpu.rail cpu) "cpu" (Some (Psbox_hw.Cpu.dvfs cpu))
      in
      ignore
        (Bus.subscribe (Smp.share_bus (System.smp sys))
           (fun (c : Smp.share_change) -> set_share cpu_rs c.at c.app c.share));
      (if System.has_gpu sys then begin
         let drv = System.gpu sys in
         let dev = Accel_driver.device drv in
         let rs =
           add (Psbox_hw.Accel.rail dev) "accel.gpu"
             (Some (Psbox_hw.Accel.dvfs dev))
         in
         ignore
           (Bus.subscribe (Accel_driver.share_bus drv)
              (fun (c : Accel_driver.share_change) ->
                set_share rs c.at c.app c.share))
       end);
      (if System.has_dsp sys then begin
         let drv = System.dsp sys in
         let dev = Accel_driver.device drv in
         let rs =
           add (Psbox_hw.Accel.rail dev) "accel.dsp"
             (Some (Psbox_hw.Accel.dvfs dev))
         in
         ignore
           (Bus.subscribe (Accel_driver.share_bus drv)
              (fun (c : Accel_driver.share_change) ->
                set_share rs c.at c.app c.share))
       end);
      (if System.has_wifi sys then begin
         let netd = System.net sys in
         let rs = add (Psbox_hw.Wifi.rail (Net_sched.nic netd)) "net" None in
         ignore
           (Bus.subscribe (Net_sched.share_bus netd)
              (fun (c : Net_sched.share_change) ->
                set_share rs c.at c.app c.share))
       end);
      if System.has_display sys then
        ignore (add (Psbox_hw.Display.rail (System.display sys)) "display" None);
      if System.has_gps sys then
        ignore (add (Psbox_hw.Gps.rail (System.gps sys)) "gps" None);
      ignore
        (Bus.subscribe (System.power_bus sys)
           (fun (tr : Power_rail.transition) ->
             match Hashtbl.find_opt a.a_rails tr.rail_name with
             | Some rs ->
                 flush rs tr.at;
                 (* the kernel rail ledger's expression, operand for
                    operand, so the totals stay bit-identical *)
                 rs.rs_total_j <-
                   rs.rs_total_j
                   +. (rs.rs_cur_w *. Time.to_sec_f (tr.at - rs.rs_seg_start));
                 rs.rs_seg_start <- tr.at;
                 rs.rs_cur_w <- tr.after_w
             | None -> (
                 (* "<physical>.app<id>" attribution rails (display, GPS)
                    double as share feeds: the app rail's draw is its
                    share of the physical rail *)
                 match String.index_opt tr.rail_name '.' with
                 | None -> ()
                 | Some i -> (
                     let phys = String.sub tr.rail_name 0 i in
                     let rest =
                       String.sub tr.rail_name (i + 1)
                         (String.length tr.rail_name - i - 1)
                     in
                     match Hashtbl.find_opt a.a_rails phys with
                     | Some rs
                       when String.length rest > 3
                            && String.sub rest 0 3 = "app" -> (
                         match
                           int_of_string_opt
                             (String.sub rest 3 (String.length rest - 3))
                         with
                         | Some app -> set_share rs tr.at app tr.after_w
                         | None -> ())
                     | _ -> ()))));
      let w = Weak.create 1 in
      Weak.set w 0 (Some a);
      let s = sw () in
      Hashtbl.replace s.sw_live (System.uid sys) w;
      if s.sw_report then s.sw_registry <- a :: s.sw_registry;
      a

let enable () =
  let s = sw () in
  s.sw_on <- true;
  if not s.sw_hook then begin
    s.sw_hook <- true;
    System.on_boot (fun sys -> if (sw ()).sw_on then ignore (attach sys : t))
  end

let disable () = (sw ()).sw_on <- false
let enabled () = (sw ()).sw_on

let reset () =
  let s = sw () in
  Hashtbl.reset s.sw_live;
  s.sw_registry <- []

let set_report_mode b = (sw ()).sw_report <- b
let report_mode () = (sw ()).sw_report
let instances () = List.rev (sw ()).sw_registry
let system a = a.a_sys

(* ---- reading the blame matrix ------------------------------------- *)

type row = { r_app : int; r_cause : cause; r_j : float; r_residual : bool }

let rails a =
  Hashtbl.fold (fun name _ acc -> name :: acc) a.a_rails []
  |> List.sort String.compare

let rail_state a ~rail =
  match Hashtbl.find_opt a.a_rails rail with
  | Some rs -> rs
  | None -> invalid_arg ("Audit: unknown rail " ^ rail)

let subsystem a ~rail = (rail_state a ~rail).rs_subsystem

let rail_total a ~rail =
  let rs = rail_state a ~rail in
  let now = System.now a.a_sys in
  rs.rs_total_j +. (rs.rs_cur_w *. Time.to_sec_f (now - rs.rs_seg_start))

let rows a ~rail =
  let rs = rail_state a ~rail in
  let now = System.now a.a_sys in
  flush rs now;
  let total = rs.rs_total_j +. (rs.rs_cur_w *. Time.to_sec_f (now - rs.rs_seg_start)) in
  let others =
    Hashtbl.fold
      (fun (app, cause) j acc ->
        if app = 0 && cause = Idle_floor then acc else (app, cause, j) :: acc)
      rs.rs_cells []
    |> List.sort (fun (a1, c1, _) (a2, c2, _) ->
           compare (a1, cause_rank c1) (a2, cause_rank c2))
  in
  let folded = List.fold_left (fun acc (_, _, j) -> acc +. j) 0.0 others in
  (* The closing idle-floor rows are the exact remainder: folding the rows
     left-to-right then lands on [total] bit-for-bit. One subtraction is
     not always enough — when [folded +. (total -. folded)] falls exactly
     half-way between [total] and a neighbour, round-to-even can send it
     one ulp away and no single double closes the gap. The second-order
     term always does: [s = folded +. r1] is within one ulp of [total], so
     [total -. s] is exact (Sterbenz) and [s +. dust = total] exactly. The
     dust row is omitted when it is zero, which is the common case. *)
  let r1 = total -. folded in
  let dust = total -. (folded +. r1) in
  List.map
    (fun (app, cause, j) ->
      { r_app = app; r_cause = cause; r_j = j; r_residual = false })
    others
  @ { r_app = 0; r_cause = Idle_floor; r_j = r1; r_residual = true }
    :: (if dust = 0.0 then []
        else [ { r_app = 0; r_cause = Idle_floor; r_j = dust; r_residual = true } ])

let residue a ~rail =
  let rs = rail_state a ~rail in
  let rws = rows a ~rail in
  let res =
    List.fold_left
      (fun acc r -> if r.r_residual then acc +. r.r_j else acc)
      0.0 rws
  in
  let acc =
    match Hashtbl.find_opt rs.rs_cells (0, Idle_floor) with
    | Some x -> x
    | None -> 0.0
  in
  res -. acc

let app_blame a ~app =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun rail ->
      List.iter
        (fun r ->
          if r.r_app = app then begin
            let cur =
              match Hashtbl.find_opt tbl r.r_cause with Some x -> x | None -> 0.0
            in
            Hashtbl.replace tbl r.r_cause (cur +. r.r_j)
          end)
        (rows a ~rail))
    (rails a);
  List.filter_map
    (fun c ->
      match Hashtbl.find_opt tbl c with
      | Some j when j <> 0.0 -> Some (c, j)
      | _ -> None)
    all_causes

let bits = Int64.bits_of_float

let check a =
  List.fold_left
    (fun acc rail ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          let folded =
            List.fold_left (fun s r -> s +. r.r_j) 0.0 (rows a ~rail)
          in
          let attributed = rail_total a ~rail in
          let ledger = System.rail_energy_j a.a_sys ~name:rail in
          if bits folded <> bits attributed then
            Error
              (Printf.sprintf
                 "rail %s: folded rows %.17g <> attributed total %.17g" rail
                 folded attributed)
          else if bits attributed <> bits ledger then
            Error
              (Printf.sprintf
                 "rail %s: attributed total %.17g <> kernel ledger %.17g" rail
                 attributed ledger)
          else Ok ())
    (Ok ()) (rails a)

(* ---- reports ------------------------------------------------------- *)

let sanitize s =
  String.map (fun c -> match c with ';' | ' ' | '\t' -> '_' | c -> c) s

let app_label sys app =
  if app = 0 then "system"
  else
    match System.app_by_id sys app with
    | Some a -> Printf.sprintf "app%d_%s" app (sanitize a.System.app_name)
    | None -> Printf.sprintf "app%d" app

let write_report fmt =
  Format.fprintf fmt "# psbox joule audit: per-app per-cause attribution@\n";
  Format.fprintf fmt
    "# rows fold top to bottom per rail; audit-check verifies@\n";
  Format.fprintf fmt "# fold(rows) == attributed == ledger, bit-for-bit.@\n";
  List.iter
    (fun a ->
      let sys = a.a_sys in
      Format.fprintf fmt "system %d t=%d@\n" (System.uid sys) (System.now sys);
      List.iter
        (fun rail ->
          let sub = subsystem a ~rail in
          Format.fprintf fmt "rail %s subsystem %s@\n" rail sub;
          List.iter
            (fun r ->
              Format.fprintf fmt "row %s %d %s %s %.17g%s@\n" rail r.r_app sub
                (cause_label r.r_cause) r.r_j
                (if r.r_residual then " residual" else ""))
            (rows a ~rail);
          Format.fprintf fmt
            "railsum %s attributed=%.17g ledger=%.17g residue=%g@\n" rail
            (rail_total a ~rail)
            (System.rail_energy_j sys ~name:rail)
            (residue a ~rail))
        (rails a);
      List.iter
        (fun (app : System.app) ->
          match app_blame a ~app:app.System.app_id with
          | [] -> ()
          | blame ->
              Format.fprintf fmt "# app %d (%s):" app.System.app_id
                app.System.app_name;
              List.iter
                (fun (c, j) ->
                  Format.fprintf fmt " %s=%.4gJ" (cause_label c) j)
                blame;
              Format.fprintf fmt "@\n")
        (System.apps sys))
    (instances ())

let write_flame fmt =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun a ->
      List.iter
        (fun rail ->
          let sub = subsystem a ~rail in
          List.iter
            (fun r ->
              let key =
                Printf.sprintf "%s;%s;%s;%s" rail
                  (app_label a.a_sys r.r_app)
                  sub
                  (cause_label r.r_cause)
              in
              let cur =
                match Hashtbl.find_opt tbl key with Some x -> x | None -> 0.0
              in
              Hashtbl.replace tbl key (cur +. r.r_j))
            (rows a ~rail))
        (rails a))
    (instances ());
  Hashtbl.fold (fun k j acc -> (k, j) :: acc) tbl []
  |> List.sort compare
  |> List.iter (fun (k, j) ->
         let uj = Float.round (j *. 1e6) in
         if uj > 0.0 then Format.fprintf fmt "%s %.0f@\n" k uj)
