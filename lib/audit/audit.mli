(** Joule audit: per-cause energy attribution.

    An attribution ledger that rides the machine's existing instrumentation
    buses — the {!Psbox_kernel.System.power_bus}, the kernel subsystems'
    share buses and every {!Psbox_hw.Dvfs.changes} bus — and attributes
    every watt-second on every physical rail to a key of
    (app × subsystem × cause). The causes are the paper's entanglement
    taxonomy made first-class: power misbehaves because of spatial
    concurrency on a shared rail, blurry asynchronous request boundaries,
    and lingering power states; everything else is either directly caused
    active draw or the device's idle floor.

    {2 Conservation, bit-for-bit}

    The load-bearing invariant ({!check}, the CLI [audit-check]):
    attributed joules per rail sum {e exactly} — bit-for-bit, not
    approximately — to the kernel's O(1) energy ledger
    ({!Psbox_kernel.System.rail_energy_j}). Three mechanisms make an exact
    float identity possible:

    - the audit settles its per-rail total on the same transitions with
      the very same expression and operand sequence as the kernel ledger,
      so the two totals are bit-identical by construction;
    - per-(app, cause) cells accumulate independently and are allowed to
      carry ordinary rounding dust;
    - at read time the rail's idle-floor remainder is emitted {e last},
      valued [total -. fold(other rows)] plus, when round-to-even leaves
      the fold one ulp short, a second-order dust term that is exact by
      Sterbenz's lemma — so a left-to-right fold over the printed rows
      reproduces the total exactly. The dust the remainder absorbs is
      exposed as {!residue} and is itself asserted tiny in tests, so the
      invariant is not vacuous.

    The audit is a pure observer: subscribing it changes no simulation
    decision and no experiment output. *)

type cause =
  | Active  (** the app's own requests were executing on the device *)
  | Shared_rail
      (** several apps' requests were in flight on one rail; the draw is
          split in proportion to their shares (spatial entanglement) *)
  | Lingering
      (** nobody was using the device but it had not yet fallen back to
          its floor state (autosuspend countdown, NIC tail, ...) *)
  | Dvfs_transition
      (** lingering draw while the DVFS state was still elevated above the
          lowest OPP — the governor had not yet stepped down *)
  | Idle_floor  (** the device's deepest reachable draw; nobody's fault *)

val cause_label : cause -> string
(** Stable lower-case label: ["active"], ["shared-rail"], ["lingering"],
    ["dvfs-transition"], ["idle-floor"]. *)

val cause_of_label : string -> cause option

val all_causes : cause list
(** Every cause, canonical order — the row order of fleet cause tables. *)

type t

(** {1 Per-domain switchboard}

    The switchboard (enable flag, report registry, attach memo) is
    domain-local: a fleet worker domain auditing its devices never touches
    the main domain's registry, and vice versa. *)

val enable : unit -> unit
(** Attach an audit ledger to every machine built from now on (installs a
    {!Psbox_kernel.System.on_boot} hook once). Idempotent. Already-built
    machines are unaffected. *)

val disable : unit -> unit
(** Stop auditing machines built from now on. Ledgers already attached
    keep running with their machines. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Forget all bookkeeping of past machines (both the strong report
    registry and the weak lookup table). Ledgers attached to live machines
    keep running; they are merely no longer reachable from here. *)

val set_report_mode : bool -> unit
(** In report mode every subsequently attached ledger is also retained in
    a strong registry (creation order) so a one-shot CLI can render a
    report covering every machine the run built. Off by default: without
    it, dead machines and their ledgers are garbage-collected. *)

val report_mode : unit -> bool
(** Current report-mode setting of this domain — save/restore it around a
    scope that must not pollute the report registry (fleet devices). *)

val attach : Psbox_kernel.System.t -> t
(** Attach an audit ledger to one machine explicitly (tests; {!enable} is
    the normal route). At most one ledger per machine — attaching twice
    returns the existing one. *)

val lookup : Psbox_kernel.System.t -> t option
(** The ledger attached to this machine, if any. *)

val instances : unit -> t list
(** Report-mode registry, creation order. *)

val system : t -> Psbox_kernel.System.t

(** {1 Reading the blame matrix} *)

type row = {
  r_app : int;  (** 0 = the system itself (nobody) *)
  r_cause : cause;
  r_j : float;
  r_residual : bool;
      (** a closing idle-floor remainder row, valued so the fold lands
          bit-exactly on the rail total; usually one such row, plus a
          one-ulp dust row when a single subtraction cannot close the
          fold under round-to-even *)
}

val rails : t -> string list
(** Audited physical rails, sorted by name. *)

val subsystem : t -> rail:string -> string
(** The kernel subsystem label this rail is billed under (e.g. ["cpu"],
    ["accel.gpu"], ["net"]). *)

val rows : t -> rail:string -> row list
(** The rail's blame rows at the current instant, in canonical order:
    non-residual rows sorted by (app, cause), then the residual idle-floor
    row(s) last. Folding [r_j] left-to-right over this list yields
    {!rail_total} bit-for-bit. *)

val rail_total : t -> rail:string -> float
(** The audit's own per-rail energy total — bit-identical to
    {!Psbox_kernel.System.rail_energy_j} by construction. *)

val residue : t -> rail:string -> float
(** [sum of residual rows -. independently accumulated idle-floor cell]:
    the rounding dust the remainder rows absorbed. Diagnostic only; tests
    assert it stays negligible relative to the rail total. *)

val app_blame : t -> app:int -> (cause * float) list
(** The app's attributed joules per cause, summed over all rails, in
    canonical cause order (causes with zero blame omitted). Uses the same
    read-time rows as {!rows}, so residual idle-floor dust lands on app 0,
    never on a tenant. *)

val check : t -> (unit, string) result
(** Verify the conservation invariant on every rail: fold of {!rows} =
    {!rail_total} = {!Psbox_kernel.System.rail_energy_j}, compared
    bit-for-bit ([Int64.bits_of_float]). *)

(** {1 Reports} *)

val write_report : Format.formatter -> unit
(** Render every report-mode instance as the machine-parseable audit
    report ([--audit-out]); floats are printed [%.17g] so [audit-check]
    can re-fold the rows and compare bit-for-bit after a round-trip. *)

val write_flame : Format.formatter -> unit
(** Render every report-mode instance as folded stacks
    ([rail;app;subsystem;cause microjoules], one per line), aggregated
    across machines — the input format of standard flamegraph tools. *)
