open Psbox_engine

type t = {
  sim : Sim.t;
  cores : int;
  busy : bool array;
  (* cumulative busy time per core, updated lazily on transitions *)
  busy_accum : Time.span array;
  busy_since : Time.t array;
  mutable active_accum : Time.span; (* time with >=1 core busy *)
  mutable active_since : Time.t;
  mutable util_mark : Time.t; (* governor window start *)
  mutable util_mark_accum : Time.span; (* active time at window start *)
  rail : Power_rail.t;
  activity : unit Bus.t; (* published on each idle-to-busy edge *)
  mutable dvfs : Dvfs.t option;
}

(* The uncore (shared clock tree, interconnect, L2) draws comparably to one
   core: that shared term is what entangles concurrent apps' power on a
   single rail (Figure 3(a) of the paper). *)
let default_opps =
  [|
    { Dvfs.freq_mhz = 500; core_w = 0.17; uncore_w = 0.20 };
    { Dvfs.freq_mhz = 800; core_w = 0.33; uncore_w = 0.36 };
    { Dvfs.freq_mhz = 1000; core_w = 0.50; uncore_w = 0.55 };
    { Dvfs.freq_mhz = 1200; core_w = 0.70; uncore_w = 0.80 };
    { Dvfs.freq_mhz = 1500; core_w = 1.00; uncore_w = 1.20 };
  |]

let busy_cores cpu =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 cpu.busy

let dvfs_exn cpu =
  match cpu.dvfs with Some d -> d | None -> assert false

let update_power cpu =
  let opp = Dvfs.current (dvfs_exn cpu) in
  let n = busy_cores cpu in
  let w =
    Power_rail.idle_w cpu.rail
    +. (if n > 0 then opp.uncore_w else 0.0)
    +. (float_of_int n *. opp.core_w)
  in
  Power_rail.set_power cpu.rail w

(* Total busy core-time accumulated up to now, across all cores. *)
let total_busy_time cpu =
  let now = Sim.now cpu.sim in
  let acc = ref 0 in
  for c = 0 to cpu.cores - 1 do
    acc := !acc + cpu.busy_accum.(c);
    if cpu.busy.(c) then acc := !acc + (now - cpu.busy_since.(c))
  done;
  !acc

(* Time during which the CPU was non-idle (any core busy) — the ondemand
   governor's notion of load. *)
let total_active_time cpu =
  let now = Sim.now cpu.sim in
  cpu.active_accum + (if busy_cores cpu > 0 then now - cpu.active_since else 0)

let create sim ?retention ?(name = "cpu") ?(opps = default_opps)
    ?(governor = Dvfs.Ondemand { up_threshold = 0.7; sampling = Time.ms 50 })
    ?(idle_w = 0.3) ~cores () =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  let cpu =
    {
      sim;
      cores;
      busy = Array.make cores false;
      busy_accum = Array.make cores 0;
      busy_since = Array.make cores Time.zero;
      active_accum = 0;
      active_since = Time.zero;
      util_mark = Sim.now sim;
      util_mark_accum = 0;
      rail = Power_rail.create ?retention sim ~name ~idle_w;
      activity = Bus.create ();
      dvfs = None;
    }
  in
  let get_util () =
    let now = Sim.now sim in
    let total = total_active_time cpu in
    let window = now - cpu.util_mark in
    let util =
      if window <= 0 then 0.0
      else float_of_int (total - cpu.util_mark_accum) /. float_of_int window
    in
    cpu.util_mark <- now;
    cpu.util_mark_accum <- total;
    util
  in
  let d =
    Dvfs.create sim ~name:"cpu" ~activity:cpu.activity ~opps ~governor
      ~get_util ()
  in
  cpu.dvfs <- Some d;
  ignore (Bus.subscribe (Dvfs.changes d) (fun _ -> update_power cpu));
  update_power cpu;
  cpu

let cores cpu = cpu.cores
let rail cpu = cpu.rail
let dvfs cpu = dvfs_exn cpu

let set_core_busy cpu ~core busy =
  if core < 0 || core >= cpu.cores then invalid_arg "Cpu.set_core_busy: bad core";
  if cpu.busy.(core) <> busy then begin
    let now = Sim.now cpu.sim in
    let was_active = busy_cores cpu > 0 in
    if busy then cpu.busy_since.(core) <- now
    else cpu.busy_accum.(core) <- cpu.busy_accum.(core) + (now - cpu.busy_since.(core));
    cpu.busy.(core) <- busy;
    let is_active = busy_cores cpu > 0 in
    if (not was_active) && is_active then cpu.active_since <- now
    else if was_active && not is_active then
      cpu.active_accum <- cpu.active_accum + (now - cpu.active_since);
    update_power cpu;
    (* after the accounting so a woken governor reads a fresh window *)
    if (not was_active) && is_active then Bus.publish cpu.activity ()
  end

let core_busy cpu ~core = cpu.busy.(core)
let freq_mhz cpu = (Dvfs.current (dvfs_exn cpu)).Dvfs.freq_mhz

let busy_core_seconds cpu = Time.to_sec_f (total_busy_time cpu)
let active_seconds cpu = Time.to_sec_f (total_active_time cpu)

let stop cpu = Dvfs.stop (dvfs_exn cpu)
