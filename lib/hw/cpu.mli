(** Multicore CPU model with a single shared power rail.

    Modelled after the dual-core Cortex-A15 of the paper's AM57EVM platform:
    all cores share one measurable rail, so their power impacts entangle
    (Figure 3(a)) — total power is [idle + uncore + n_busy * core], not
    [n_busy * (single-instance power)], because the idle and uncore terms are
    shared. The DVFS governor supplies the lingering-state effect of
    Figure 3(c). *)

type t

val default_opps : Dvfs.opp array
(** Five OPPs from 500 MHz to 1.5 GHz with Cortex-A15-like per-core and
    uncore draws. *)

val create :
  Psbox_engine.Sim.t ->
  ?retention:Psbox_engine.Time.span ->
  ?name:string ->
  ?opps:Dvfs.opp array ->
  ?governor:Dvfs.governor ->
  ?idle_w:float ->
  cores:int ->
  unit ->
  t
(** Default governor is ondemand with an 80% up-threshold and 50 ms sampling
    period; default idle draw 0.3 W. [retention] bounds the rail's power
    history (see {!Power_rail.create}). *)

val cores : t -> int
val rail : t -> Power_rail.t
val dvfs : t -> Dvfs.t

val set_core_busy : t -> core:int -> bool -> unit
(** Mark a core as executing (or idle). Drives rail power and governor
    utilization. Idempotent. *)

val core_busy : t -> core:int -> bool
val busy_cores : t -> int
val freq_mhz : t -> int

val busy_core_seconds : t -> float
(** Cumulative busy core-time in seconds since simulation start. Callers
    (e.g. model-based metering) diff two readings to get utilization over a
    window. *)

val active_seconds : t -> float
(** Cumulative non-idle (any core busy) time in seconds — the load notion
    the ondemand governor samples. *)

val stop : t -> unit
(** Stop the governor (end of simulation). *)
