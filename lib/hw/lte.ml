open Psbox_engine

type state = Idle | Promoting | Dch | Fach

type pending = { p_app : int; p_bytes : int; p_done : unit -> unit }

type t = {
  sim : Sim.t;
  rate_bps : float;
  idle_w : float;
  fach_w : float;
  dch_w : float;
  promoting_w : float;
  promotion : Time.span;
  dch_tail : Time.span;
  fach_tail : Time.span;
  rail : Power_rail.t;
  mutable st : state;
  mutable on_air : bool;
  queue : pending Queue.t;
  mutable demote : Sim.handle;
  sent : (int, int) Hashtbl.t;
  mutable log : (int * Time.t * Time.t) list; (* newest first *)
}

let create sim ?(name = "lte") ?(rate_mbps = 20.0) ?(idle_w = 0.02)
    ?(fach_w = 0.4) ?(dch_w = 1.0) ?(promoting_w = 0.45)
    ?(promotion = Time.sec 2) ?(dch_tail = Time.sec 5)
    ?(fach_tail = Time.sec 12) () =
  {
    sim;
    rate_bps = rate_mbps *. 1e6;
    idle_w;
    fach_w;
    dch_w;
    promoting_w;
    promotion;
    dch_tail;
    fach_tail;
    rail = Power_rail.create sim ~name ~idle_w;
    st = Idle;
    on_air = false;
    queue = Queue.create ();
    demote = Sim.none;
    sent = Hashtbl.create 4;
    log = [];
  }

let rail r = r.rail
let state r = r.st

let update_power r =
  let w =
    match r.st with
    | Idle -> r.idle_w
    | Promoting -> r.promoting_w
    | Dch -> r.dch_w
    | Fach -> r.fach_w
  in
  Power_rail.set_power r.rail w

let cancel_demote r =
  Sim.cancel r.sim r.demote;
  r.demote <- Sim.none

(* The network's demotion timers: DCH -> FACH -> Idle. The OS has no say. *)
let rec arm_demotion r =
  cancel_demote r;
  match r.st with
  | Dch ->
      r.demote <-
        Sim.schedule_after r.sim r.dch_tail (fun () ->
            if r.st = Dch && not r.on_air && Queue.is_empty r.queue then begin
              r.st <- Fach;
              update_power r;
              arm_demotion r
            end)
  | Fach ->
      r.demote <-
        Sim.schedule_after r.sim r.fach_tail (fun () ->
            if r.st = Fach then begin
              r.st <- Idle;
              update_power r
            end)
  | Idle | Promoting -> ()

let rec transmit_next r =
  if (not r.on_air) && r.st = Dch then
    match Queue.take_opt r.queue with
    | None -> arm_demotion r
    | Some p ->
        r.on_air <- true;
        let t0 = Sim.now r.sim in
        let airtime =
          Time.of_sec_f (float_of_int (p.p_bytes * 8) /. r.rate_bps)
        in
        ignore
          (Sim.schedule_after r.sim (max 1 airtime) (fun () ->
               r.on_air <- false;
               let cur =
                 match Hashtbl.find_opt r.sent p.p_app with
                 | Some n -> n
                 | None -> 0
               in
               Hashtbl.replace r.sent p.p_app (cur + p.p_bytes);
               r.log <- (p.p_app, t0, Sim.now r.sim) :: r.log;
               p.p_done ();
               transmit_next r))

let promote r =
  match r.st with
  | Dch -> transmit_next r
  | Promoting -> ()
  | Fach | Idle ->
      (* FACH promotes faster in reality; one promotion delay keeps the
         model simple and conservative *)
      cancel_demote r;
      r.st <- Promoting;
      update_power r;
      ignore
        (Sim.schedule_after r.sim r.promotion (fun () ->
             if r.st = Promoting then begin
               r.st <- Dch;
               update_power r;
               transmit_next r
             end))

let send r ~app ~bytes ~on_sent =
  Queue.push { p_app = app; p_bytes = bytes; p_done = on_sent } r.queue;
  promote r

let sent_bytes r ~app =
  match Hashtbl.find_opt r.sent app with Some n -> n | None -> 0

let tx_log r = List.rev r.log
