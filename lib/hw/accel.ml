open Psbox_engine

type command = {
  id : int;
  app : int;
  kind : string;
  work_s : float;
  units : int;
  intensity : float;
  mutable submitted_at : Time.t;
  mutable started_at : Time.t option;
  mutable finished_at : Time.t option;
}

let next_cmd_id = ref 0

let command ~app ~kind ~work_s ?(units = 1) ?(intensity = 1.0) () =
  incr next_cmd_id;
  {
    id = !next_cmd_id;
    app;
    kind;
    work_s;
    units;
    intensity;
    submitted_at = Time.zero;
    started_at = None;
    finished_at = None;
  }

type running = {
  cmd : command;
  mutable remaining_s : float; (* device-seconds at the highest OPP *)
  mutable last_update : Time.t;
  mutable completion : Sim.handle;
}

type t = {
  sim : Sim.t;
  name : string;
  units : int;
  rail : Power_rail.t;
  activity : unit Bus.t; (* published on each idle-to-busy edge *)
  mutable dvfs : Dvfs.t option;
  mutable factor : float; (* cached speed factor of the current OPP *)
  mutable waiting : command list; (* FIFO, head = oldest *)
  mutable running : running list;
  mutable on_complete : command -> unit;
  mutable busy_accum : Time.span;
  mutable busy_units_now : int;
  mutable busy_mark : Time.t;
  mutable active_accum : Time.span; (* time with any unit busy *)
  mutable active_since : Time.t;
  suspend_w : float;
  autosuspend : Time.span option;
  resume_delay : Time.span;
  mutable suspended : bool;
  mutable resuming : bool;
  mutable suspend_timer : Sim.handle;
  (* cumulative suspended residency (for counter-driven power models) *)
  mutable suspended_accum : Time.span;
  mutable suspended_since : Time.t;
  mutable util_mark : Time.t;
  mutable util_mark_accum : Time.span;
}

let default_opps =
  [|
    { Dvfs.freq_mhz = 200; core_w = 0.10; uncore_w = 0.05 };
    { Dvfs.freq_mhz = 300; core_w = 0.18; uncore_w = 0.08 };
    { Dvfs.freq_mhz = 400; core_w = 0.28; uncore_w = 0.12 };
    { Dvfs.freq_mhz = 532; core_w = 0.40; uncore_w = 0.18 };
  |]

let dvfs_exn dev = match dev.dvfs with Some d -> d | None -> assert false

let compute_factor dvfs =
  let top = (Dvfs.opps dvfs).(Dvfs.max_index dvfs).Dvfs.freq_mhz in
  float_of_int (Dvfs.current dvfs).Dvfs.freq_mhz /. float_of_int top

let accumulate_busy dev =
  let now = Sim.now dev.sim in
  dev.busy_accum <- dev.busy_accum + ((now - dev.busy_mark) * dev.busy_units_now);
  if dev.busy_units_now > 0 then
    dev.active_accum <- dev.active_accum + (now - dev.active_since);
  dev.active_since <- now;
  dev.busy_mark <- now

let update_power dev =
  let opp = Dvfs.current (dvfs_exn dev) in
  let w =
    if dev.suspended then dev.suspend_w
    else begin
      let active =
        List.fold_left
          (fun acc r ->
            acc +. (float_of_int r.cmd.units *. r.cmd.intensity *. opp.Dvfs.core_w))
          0.0 dev.running
      in
      Power_rail.idle_w dev.rail
      +. (if dev.running <> [] then opp.Dvfs.uncore_w else 0.0)
      +. active
    end
  in
  Power_rail.set_power dev.rail w

(* Bring a running command's remaining work up to date at the cached speed
   factor, without rescheduling. *)
let sync_progress dev r =
  let now = Sim.now dev.sim in
  let elapsed = Time.to_sec_f (now - r.last_update) in
  r.remaining_s <- Float.max 0.0 (r.remaining_s -. (elapsed *. dev.factor));
  r.last_update <- now

let rec complete dev r () =
  let now = Sim.now dev.sim in
  accumulate_busy dev;
  dev.running <- List.filter (fun r' -> r'.cmd.id <> r.cmd.id) dev.running;
  dev.busy_units_now <- dev.busy_units_now - r.cmd.units;
  r.cmd.finished_at <- Some now;
  update_power dev;
  start_waiting dev;
  if dev.running = [] && dev.waiting = [] then arm_autosuspend dev;
  dev.on_complete r.cmd

and schedule_completion dev r =
  Sim.cancel dev.sim r.completion;
  let duration = Time.of_sec_f (r.remaining_s /. dev.factor) in
  r.completion <- Sim.schedule_after dev.sim (max 1 duration) (complete dev r)

and start_cmd dev cmd =
  let now = Sim.now dev.sim in
  accumulate_busy dev;
  cmd.started_at <- Some now;
  let was_idle = dev.busy_units_now = 0 in
  dev.busy_units_now <- dev.busy_units_now + cmd.units;
  let r = { cmd; remaining_s = cmd.work_s; last_update = now; completion = Sim.none } in
  schedule_completion dev r;
  dev.running <- r :: dev.running;
  update_power dev;
  if was_idle then Bus.publish dev.activity ()

and start_waiting dev =
  if not dev.suspended && not dev.resuming then
    match dev.waiting with
    | cmd :: rest when dev.busy_units_now + cmd.units <= dev.units ->
        dev.waiting <- rest;
        start_cmd dev cmd;
        start_waiting dev
    | _ -> ()

and arm_autosuspend dev =
  match dev.autosuspend with
  | None -> ()
  | Some span ->
      Sim.cancel dev.sim dev.suspend_timer;
      dev.suspend_timer <-
        Sim.schedule_after dev.sim span (fun () ->
            if dev.running = [] && dev.waiting = [] then begin
              dev.suspended <- true;
              dev.suspended_since <- Sim.now dev.sim;
              update_power dev
            end)

let create sim ?retention ~name ~units ?(opps = default_opps)
    ?(governor = Dvfs.Ondemand { up_threshold = 0.6; sampling = Time.ms 20 })
    ?(idle_w = 0.1) ?(suspend_w = 0.01) ?autosuspend
    ?(resume_delay = Time.ms 5) () =
  if units <= 0 then invalid_arg "Accel.create: units must be positive";
  let dev =
    {
      sim;
      name;
      units;
      (* With autosuspend, the suspended draw is the true floor; the gap
         between it and [idle_w] is a lingering power state. *)
      rail =
        Power_rail.create ?retention
          ?floor_w:(match autosuspend with Some _ -> Some suspend_w | None -> None)
          sim ~name ~idle_w;
      activity = Bus.create ();
      dvfs = None;
      factor = 1.0;
      waiting = [];
      running = [];
      on_complete = (fun _ -> ());
      busy_accum = 0;
      busy_units_now = 0;
      busy_mark = Sim.now sim;
      active_accum = 0;
      active_since = Sim.now sim;
      suspend_w;
      autosuspend;
      resume_delay;
      suspended = false;
      resuming = false;
      suspend_timer = Sim.none;
      suspended_accum = 0;
      suspended_since = Time.zero;
      util_mark = Sim.now sim;
      util_mark_accum = 0;
    }
  in
  let get_util () =
    accumulate_busy dev;
    let now = Sim.now sim in
    let window = now - dev.util_mark in
    let util =
      if window <= 0 then 0.0
      else
        float_of_int (dev.active_accum - dev.util_mark_accum)
        /. float_of_int window
    in
    dev.util_mark <- now;
    dev.util_mark_accum <- dev.active_accum;
    util
  in
  let d =
    Dvfs.create sim ~name:dev.name ~activity:dev.activity ~opps ~governor
      ~get_util ()
  in
  dev.dvfs <- Some d;
  ignore
    (Bus.subscribe (Dvfs.changes d) (fun _ ->
         (* Account progress at the old speed, then re-time completions. *)
         List.iter (fun r -> sync_progress dev r) dev.running;
         dev.factor <- compute_factor (dvfs_exn dev);
         List.iter (fun r -> schedule_completion dev r) dev.running;
         update_power dev));
  dev.factor <- compute_factor (dvfs_exn dev);
  update_power dev;
  dev

let name dev = dev.name
let rail dev = dev.rail
let dvfs dev = dvfs_exn dev
let units dev = dev.units

let submit dev cmd =
  cmd.submitted_at <- Sim.now dev.sim;
  Sim.cancel dev.sim dev.suspend_timer;
  dev.waiting <- dev.waiting @ [ cmd ];
  if dev.suspended then begin
    dev.suspended <- false;
    dev.suspended_accum <-
      dev.suspended_accum + (Sim.now dev.sim - dev.suspended_since);
    dev.resuming <- true;
    update_power dev;
    ignore
      (Sim.schedule_after dev.sim dev.resume_delay (fun () ->
           dev.resuming <- false;
           start_waiting dev))
  end
  else start_waiting dev

let set_on_complete dev f = dev.on_complete <- f
let in_flight dev = List.length dev.waiting + List.length dev.running

let in_flight_of dev ~app =
  List.length (List.filter (fun c -> c.app = app) dev.waiting)
  + List.length (List.filter (fun r -> r.cmd.app = app) dev.running)

let busy_units dev = dev.busy_units_now

let busy_unit_seconds dev =
  let now = Sim.now dev.sim in
  Time.to_sec_f (dev.busy_accum + ((now - dev.busy_mark) * dev.busy_units_now))

let active_seconds dev =
  let now = Sim.now dev.sim in
  let extra = if dev.busy_units_now > 0 then now - dev.active_since else 0 in
  Time.to_sec_f (dev.active_accum + extra)

let suspended dev = dev.suspended

let suspended_seconds dev =
  let extra =
    if dev.suspended then Sim.now dev.sim - dev.suspended_since else 0
  in
  Time.to_sec_f (dev.suspended_accum + extra)

let suspend_w dev = dev.suspend_w
let idle_w dev = Power_rail.idle_w dev.rail
let stop dev = Dvfs.stop (dvfs_exn dev)
