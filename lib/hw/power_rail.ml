open Psbox_engine

type transition = {
  rail_name : string;
  at : Time.t;
  before_w : float;
  after_w : float;
}

type t = {
  sim : Sim.t;
  name : string;
  idle_w : float;
  floor_w : float;
  timeline : Timeline.t;
  bus : transition Bus.t;
  mutable cur_w : float;
}

let create ?retention ?floor_w sim ~name ~idle_w =
  let floor_w = match floor_w with Some f -> f | None -> idle_w in
  if floor_w > idle_w then invalid_arg "Power_rail.create: floor above idle";
  {
    sim;
    name;
    idle_w;
    floor_w;
    timeline = Timeline.create ~initial:idle_w ?retention ();
    bus = Bus.create ();
    cur_w = idle_w;
  }

let name rail = rail.name
let idle_w rail = rail.idle_w
let floor_w rail = rail.floor_w

let set_power rail w =
  let before = rail.cur_w in
  Timeline.set rail.timeline (Sim.now rail.sim) w;
  rail.cur_w <- w;
  if w <> before then
    Bus.publish rail.bus
      { rail_name = rail.name; at = Sim.now rail.sim; before_w = before; after_w = w }

let power rail = rail.cur_w
let energy_j rail ~from ~until = Timeline.integrate rail.timeline from until
let timeline rail = rail.timeline
let transitions rail = rail.bus
