open Psbox_engine

type state = Off | Acquiring | Tracking

type t = {
  sim : Sim.t;
  name : string;
  retention : Time.span option;
  cold_start : Time.span;
  acquire_w : float;
  track_w : float;
  off_w : float;
  rail : Power_rail.t;
  mutable st : state;
  mutable fix_timer : Sim.handle;
  subs : (int, unit) Hashtbl.t;
  app_rails : (int, Power_rail.t) Hashtbl.t;
  mutable on_app_rail : Power_rail.t -> unit;
}

let create sim ?retention ?(name = "gps") ?(cold_start = Time.sec 8)
    ?(acquire_w = 0.18) ?(track_w = 0.09) ?(off_w = 0.002) () =
  {
    sim;
    name;
    retention;
    cold_start;
    acquire_w;
    track_w;
    off_w;
    rail = Power_rail.create ?retention sim ~name ~idle_w:off_w;
    st = Off;
    fix_timer = Sim.none;
    subs = Hashtbl.create 4;
    app_rails = Hashtbl.create 4;
    on_app_rail = (fun _ -> ());
  }

let rail g = g.rail
let state g = g.st
let subscribed g ~app = Hashtbl.mem g.subs app
let subscribers g = Hashtbl.length g.subs
let has_fix g = g.st = Tracking

let device_w g =
  match g.st with Off -> g.off_w | Acquiring -> g.acquire_w | Tracking -> g.track_w

let app_rail g ~app =
  match Hashtbl.find_opt g.app_rails app with
  | Some r -> r
  | None ->
      let r =
        Power_rail.create ?retention:g.retention g.sim
          ~name:(Printf.sprintf "%s.app%d" g.name app)
          ~idle_w:g.off_w
      in
      Hashtbl.add g.app_rails app r;
      g.on_app_rail r;
      r

let set_on_app_rail g f =
  g.on_app_rail <- f;
  Hashtbl.iter (fun _ r -> f r) g.app_rails

let update g =
  Power_rail.set_power g.rail (device_w g);
  Hashtbl.iter
    (fun app r ->
      let w = if subscribed g ~app then device_w g else g.off_w in
      Power_rail.set_power r w)
    g.app_rails

let subscribe g ~app =
  if not (subscribed g ~app) then begin
    Hashtbl.replace g.subs app ();
    ignore (app_rail g ~app);
    (if g.st = Off then begin
       g.st <- Acquiring;
       g.fix_timer <-
         Sim.schedule_after g.sim g.cold_start (fun () ->
             g.fix_timer <- Sim.none;
             if g.st = Acquiring then begin
               g.st <- Tracking;
               update g
             end)
     end);
    update g
  end

let unsubscribe g ~app =
  if subscribed g ~app then begin
    Hashtbl.remove g.subs app;
    if Hashtbl.length g.subs = 0 then begin
      Sim.cancel g.sim g.fix_timer;
      g.fix_timer <- Sim.none;
      g.st <- Off
    end;
    update g
  end
