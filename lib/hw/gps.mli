(** GPS receiver model (§7 extension 2).

    The GPS draws the same power however many apps use it: once operating,
    concurrent use does not entangle. Its one problematic state is the
    off/suspended one — cold-starting the receiver per psbox would be
    prohibitively expensive, and *revealing* off/on transitions would leak
    other apps' localization activity. So, per the paper: the kernel reveals
    the device's operating power directly to the psbox of any app holding a
    subscription, and feeds idle (off) power otherwise.

    States: off -> acquiring (cold start, hot) -> tracking (steady). The
    device turns off when the last subscriber leaves. *)

type state = Off | Acquiring | Tracking

type t

val create :
  Psbox_engine.Sim.t ->
  ?retention:Psbox_engine.Time.span ->
  ?name:string ->
  ?cold_start:Psbox_engine.Time.span ->
  ?acquire_w:float ->
  ?track_w:float ->
  ?off_w:float ->
  unit ->
  t
(** Defaults: 8 s cold start at 0.18 W, 0.09 W tracking, 2 mW off.
    [retention] bounds the power history of the device rail and every
    per-app rail (see {!Power_rail.create}). *)

val rail : t -> Power_rail.t
val state : t -> state

val subscribe : t -> app:int -> unit
(** Idempotent. The first subscriber cold-starts the receiver; later ones
    join the live fix at no extra power. *)

val unsubscribe : t -> app:int -> unit
(** The last unsubscribe powers the receiver off immediately. *)

val subscribed : t -> app:int -> bool
val subscribers : t -> int

val app_rail : t -> app:int -> Power_rail.t
(** The per-app view a psbox exposes: the device's power while this app is
    subscribed, [off_w] otherwise — other apps' fixes never show. *)

val set_on_app_rail : t -> (Power_rail.t -> unit) -> unit
(** Install a hook fired for every lazily-created per-app rail, so machine
    composition can forward attribution rails created after boot onto the
    machine bus. Rails that already exist are passed to the hook
    immediately; only one hook is kept. *)

val has_fix : t -> bool
