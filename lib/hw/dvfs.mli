(** Dynamic voltage/frequency scaling.

    A device exposes a table of operating performance points (OPPs) and a
    governor that moves among them. The ondemand governor jumps to the top
    OPP under load and steps down one OPP per idle sampling period — this
    produces the "lingering power state" of the paper's Figure 3(c): a
    workload that starts right after a busy period runs at a higher clock
    (and power) than one that starts from idle.

    The DVFS state is exactly what psbox's power-state virtualization saves
    and restores per sandbox (an operating/idle state in the paper's
    taxonomy). *)

type opp = {
  freq_mhz : int;
  core_w : float;  (** dynamic watts per busy execution unit at this OPP *)
  uncore_w : float;  (** shared (uncore/clock-tree) watts while any unit is busy *)
}

type governor =
  | Ondemand of { up_threshold : float; sampling : Psbox_engine.Time.span }
      (** Jump to the highest OPP when utilization over the last sampling
          period is at least [up_threshold]; otherwise step down one OPP. *)
  | Performance  (** Pin to the highest OPP. *)
  | Userspace  (** Never move on its own; only {!set_opp} changes it. *)

type change = {
  at : Psbox_engine.Time.t;
  index_before : int;
  index_after : int;
  opp : opp;  (** the OPP now in effect *)
}
(** One OPP move, published on {!changes}. *)

type t

val create :
  Psbox_engine.Sim.t ->
  ?name:string ->
  ?activity:unit Psbox_engine.Bus.t ->
  opps:opp array ->
  governor:governor ->
  get_util:(unit -> float) ->
  unit ->
  t
(** [get_util] must return the device utilization (0..1) accumulated since
    the previous call; the ondemand governor samples it on the fixed grid
    [creation + k*sampling]. Whenever the OPP index moves, a {!change} is
    published on {!changes} (the owner subscribes to update its rail). The
    initial OPP is the lowest (or highest for [Performance]); setting it
    publishes nothing.

    Sampling is demand-armed: a sample that reads zero utilization with the
    device already at the bottom OPP {e parks} the governor instead of
    re-arming, so an idle device costs no simulator events. [?activity] is
    the un-parking signal — the owner publishes on it at each idle-to-busy
    edge; {!set_opp} raising the OPP and {!thaw} also unpark. An unpark
    discards the idle stretch from the utilization window and resumes on
    the original sampling grid.

    [?name] (default ["dvfs"]) labels the instance in telemetry: OPP moves
    count under [dvfs.<name>.transitions], governor samples under
    [sim.events.dvfs.<name>], and traced transitions appear as a lane
    of the ["hw.dvfs"] track with a [<name>.freq_mhz] counter timeline. *)

val parked : t -> bool
(** An ondemand governor with no armed sample (idle device at the bottom
    OPP, waiting for activity). Always [false] for other governors. *)

val name : t -> string

val changes : t -> change Psbox_engine.Bus.t
(** The OPP-change bus. Subscribers run synchronously, in subscription
    order, after the index has moved. *)

val opp_index : t -> int
val current : t -> opp
val opps : t -> opp array

val set_opp : t -> int -> unit
(** Force an OPP (power-state virtualization and [Userspace] control). Also
    resets the ondemand decay so the state lingers from this point. *)

val max_index : t -> int

val set_ceiling : t -> int -> unit
(** Clamp the reachable OPP range to [0..i] (power-budget bias): the
    governor's top jump and {!set_opp} both saturate at the ceiling, and a
    current OPP above it is stepped down immediately. Defaults to
    {!max_index}, which changes nothing. *)

val ceiling : t -> int

val freeze : t -> unit
(** Suspend the governor's own decisions (e.g. while a psbox balloon holds
    the device and drives a private frequency trajectory). {!set_opp} still
    works. Nested freezes are not counted; one {!thaw} re-enables. *)

val thaw : t -> unit

val frozen : t -> bool

val stop : t -> unit
(** Cancel the periodic governor event (end of simulation). *)
