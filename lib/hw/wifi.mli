(** WiFi network interface model (TI WiLink8-like).

    The NIC serializes frames on the air: one packet transmits at a time,
    taking [bytes * 8 / rate + overhead]. Power behaviour follows the classic
    WiFi state machine: a deep power-save state, an awake-idle state, and a
    transmit (or receive) draw on top; after the last frame, the NIC lingers
    awake for a tail period before dropping back to power-save — the classic
    lingering power state that entangles the energy of consecutive
    transmissions from different apps.

    Power states that the paper's psbox virtualizes per sandbox — the TX
    power level and the power-save (tail) state — are exposed as a snapshot
    via {!power_state} / {!restore_power_state}.

    Virtual MAC support mirrors §4.2/§5: when [virtual_macs] is false
    (the WiLink8 case), {!switch_mac} resets the NIC's association with the
    base station and transmission stalls for the reassociation delay, which
    defeats RX insulation; when true, switching is free. *)

type pkt = {
  id : int;
  app : int;  (** owning app id *)
  socket : int;
  bytes : int;
  dir : [ `Tx | `Rx ];
  mutable queued_at : Psbox_engine.Time.t;
  mutable air_start : Psbox_engine.Time.t option;
  mutable air_end : Psbox_engine.Time.t option;
}

val packet : app:int -> socket:int -> bytes:int -> ?dir:[ `Tx | `Rx ] -> unit -> pkt
(** Fresh packet with a unique id; [dir] defaults to [`Tx]. *)

type t

val create :
  Psbox_engine.Sim.t ->
  ?retention:Psbox_engine.Time.span ->
  ?name:string ->
  ?rate_mbps:float ->
  ?overhead:Psbox_engine.Time.span ->
  ?tail:Psbox_engine.Time.span ->
  ?ps_w:float ->
  ?awake_w:float ->
  ?tx_levels:float array ->
  ?rx_w:float ->
  ?virtual_macs:bool ->
  ?reassoc_delay:Psbox_engine.Time.span ->
  unit ->
  t
(** Defaults: 40 Mbit/s, 200 us per-frame overhead, 80 ms tail, 0.03 W
    power-save, 0.25 W awake, TX levels [0.5; 0.7; 0.9] W (level 2 initial),
    0.45 W RX, no virtual MACs, 150 ms reassociation. *)

val rail : t -> Power_rail.t

val rate_bps : t -> float
(** The modelled link rate in bits per second. *)

val tail : t -> Psbox_engine.Time.span
(** The power-save tail span. *)

val awake_w : t -> float
val ps_w : t -> float

(** {1 Transmission-mode adaptation}

    Like real rate/aggregation adaptation, the chip raises its transmission
    mode (and with it the TX/RX draw) under sustained channel utilization
    and decays back when traffic quiets. This is a lingering power state: a
    bulk transfer leaves the NIC in a hot mode that inflates the measured
    power of an innocent app's packets — one of the entanglements psbox's
    power-state virtualization removes. *)

val set_mode_adapt : t -> bool -> unit
(** Enable/disable automatic mode (TX level) adaptation (on by default). *)

val freeze_mode : t -> unit
(** Suspend adaptation (while a psbox balloon drives a private state). *)

val thaw_mode : t -> unit

val transmit : t -> pkt -> unit
(** Hand a frame to the NIC; it goes on the air when the channel frees up
    (FIFO) and the NIC is associated. *)

val set_on_sent : t -> (pkt -> unit) -> unit
(** Completion callback (TX-done interrupt), fired per frame. *)

val in_flight : t -> int
(** Frames handed to the NIC and not yet fully sent. *)

val in_flight_of : t -> app:int -> int

val airtime_seconds : t -> float
(** Cumulative on-air seconds since simulation start. *)

val awake : t -> bool

(** {1 Power-state residency counters}

    Cumulative time the chip spent in each power-relevant state, the kind
    of counter a real NIC driver exports ([rx]/[tx] airtime, doze time).
    These are the observables that counter-driven power models
    ({!Psbox_model}) fit against the energy ledger; each includes the
    in-progress state at the current instant. *)

val awake_seconds : t -> float
(** Cumulative seconds out of power-save (awake-idle, TX or RX). *)

val tx_airtime_by_level_seconds : t -> float array
(** Cumulative TX on-air seconds per transmission level (length
    {!tx_level_count}). A frame's airtime is billed to the level in effect
    when it went on the air. *)

val rx_airtime_seconds : t -> float
(** Cumulative RX on-air seconds. *)

val tx_level_count : t -> int

val tx_level_w : t -> int -> float
(** The extra on-air draw of TX level [i] (ground truth, for tests). *)

val rx_w : t -> float

(** {1 Power-state virtualization support} *)

type power_state = { tx_level : int; awake : bool }

val tx_level : t -> int
val set_tx_level : t -> int -> unit
val power_state : t -> power_state
val restore_power_state : t -> power_state -> unit
(** Restoring [awake = false] forces power-save immediately (cancels any
    running tail); [awake = true] wakes the NIC and re-arms the tail. *)

(** {1 Virtual MACs} *)

val virtual_macs : t -> bool
val current_mac : t -> int

val switch_mac : t -> mac:int -> unit
(** No-op if already on [mac]. Without virtual-MAC support this resets the
    association (transmission stalls for the reassociation delay). *)

val associated : t -> bool
