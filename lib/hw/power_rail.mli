(** A measurable power rail.

    Each hardware component drives exactly one rail; this mirrors the paper's
    prototype where CPU, GPU, DSP and the WiFi module each sit behind a
    distinct rail of the in-situ power meter. The rail keeps the full
    piecewise-constant power history so energy can be integrated exactly and
    a DAQ can resample it at any rate, and it announces every power
    transition on a {!Psbox_engine.Bus}, so meters, accountants and
    governors can subscribe instead of polling the history. *)

type transition = {
  rail_name : string;
  at : Psbox_engine.Time.t;
  before_w : float;
  after_w : float;
}
(** One power transition: at instant [at] the draw changed from [before_w]
    to [after_w] watts. *)

type t

val create :
  ?retention:Psbox_engine.Time.span ->
  ?floor_w:float ->
  Psbox_engine.Sim.t ->
  name:string ->
  idle_w:float ->
  t
(** A rail whose draw starts at [idle_w] watts. [retention] bounds how much
    power history the rail keeps (see {!Psbox_engine.Timeline.create});
    omitted, the full history is retained.

    [floor_w] (default [idle_w]) is the rail's {e deepest} reachable draw —
    the power of the device's lowest power state (e.g. an accelerator's
    runtime-suspended draw, below its clocked-but-idle [idle_w]). Anything
    between [floor_w] and [idle_w] with nobody using the device is a
    {e lingering} power state in the paper's sense, and the audit ledger
    classifies it as such. @raise Invalid_argument if above [idle_w]. *)

val name : t -> string

val idle_w : t -> float
(** The rail's baseline (idle) draw in watts. *)

val floor_w : t -> float
(** The rail's deep-idle floor (see {!create}); equals {!idle_w} for
    devices without a deeper power state. *)

val set_power : t -> float -> unit
(** Record the rail's instantaneous draw changing to the given watts at the
    current simulated time. If the draw actually changes, a {!transition} is
    published on {!transitions} after the history is updated. *)

val power : t -> float
(** The current draw in watts (O(1)). *)

val energy_j : t -> from:Psbox_engine.Time.t -> until:Psbox_engine.Time.t -> float
(** Exact energy over a window, in joules. *)

val timeline : t -> Psbox_engine.Timeline.t
(** The underlying power history. *)

val transitions : t -> transition Psbox_engine.Bus.t
(** The rail's transition bus. Subscribers are invoked synchronously, in
    subscription order, every time the draw changes. *)
