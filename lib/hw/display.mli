(** OLED display model (§7 extension 1).

    Modern OLED panels are free of power entanglement: each pixel draws
    power independently of the others and leaves no lingering state, so the
    OS can attribute display power to apps directly from the pixels each one
    produces (the paper cites Chameleon [24] / Eprof [70]). No balloons are
    needed — the display keeps one exact per-app power rail alongside the
    physical panel rail.

    Power model: [base_w] while the panel is on, attributed to apps in
    proportion to their lit pixels, plus a per-pixel emission term
    proportional to the surface's mean luminance. *)

type t

val create :
  Psbox_engine.Sim.t ->
  ?retention:Psbox_engine.Time.span ->
  ?name:string ->
  ?width:int ->
  ?height:int ->
  ?base_w:float ->
  ?w_per_mnit_pixel:float ->
  unit ->
  t
(** Defaults: 1920x1080, 0.25 W panel base, 0.35 W per megapixel at full
    luminance. The panel starts off (0 W). [retention] bounds the power
    history of the panel rail and every per-app rail (see
    {!Power_rail.create}). *)

val rail : t -> Power_rail.t
(** The physical panel rail (all apps' surfaces combined). *)

val set_surface : t -> app:int -> pixels:int -> luminance:float -> unit
(** Declare the app's current surface: how many pixels it lights and their
    mean luminance in [0, 1]. Replaces the app's previous surface.
    @raise Invalid_argument if [pixels] exceeds the panel or [luminance] is
    outside [0, 1]. *)

val remove_surface : t -> app:int -> unit

val lit_pixels : t -> int

val on : t -> bool
(** The panel is on while any surface is lit. *)

val app_rail : t -> app:int -> Power_rail.t
(** The app's exact attributed power: its emission term plus its pixel
    share of the base — the per-app view a psbox exposes. Created on first
    use. *)

val app_power_w : t -> app:int -> float

val set_on_app_rail : t -> (Power_rail.t -> unit) -> unit
(** Install a hook fired for every lazily-created per-app rail, so machine
    composition can forward attribution rails created after boot onto the
    machine bus. Rails that already exist are passed to the hook
    immediately; only one hook is kept. *)
