open Psbox_engine
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing

type opp = { freq_mhz : int; core_w : float; uncore_w : float }

type governor =
  | Ondemand of { up_threshold : float; sampling : Time.span }
  | Performance
  | Userspace

type change = { at : Time.t; index_before : int; index_after : int; opp : opp }

type t = {
  sim : Sim.t;
  opps : opp array;
  governor : governor;
  get_util : unit -> float;
  changes : change Bus.t;
  name : string;
  tm_transitions : Tm.counter;
  lbl_sample : Sim.label; (* interned: samples are hot one-shot events *)
  epoch : Time.t; (* anchor of the sampling grid (creation time) *)
  mutable index : int;
  mutable ceiling : int;
  mutable next : Sim.handle; (* armed sample; Sim.none while parked *)
  mutable stopped : bool;
  mutable frozen : bool;
}

let set_index d i =
  let i = max 0 (min i (min d.ceiling (Array.length d.opps - 1))) in
  if i <> d.index then begin
    let before = d.index in
    d.index <- i;
    Tm.incr d.tm_transitions;
    (if Tt.recording () then begin
       let now = Sim.now d.sim in
       let freq = float_of_int d.opps.(i).freq_mhz in
       Tt.instant ~track:"hw.dvfs" ~lane:d.name
         ~name:(Printf.sprintf "%d MHz" d.opps.(i).freq_mhz)
         ~args:[ ("freq_mhz", freq); ("index", float_of_int i) ]
         now;
       Tt.sample ~track:"hw.dvfs" ~name:(d.name ^ ".freq_mhz") now freq
     end);
    Bus.publish d.changes
      { at = Sim.now d.sim; index_before = before; index_after = i; opp = d.opps.(i) }
  end

(* Demand-armed governor sampling. Samples stay on the creation-epoch grid
   (epoch + k*sampling) so an active device behaves exactly like the old
   periodic timer; a device that reads zero utilization while already at
   the bottom OPP parks instead of re-arming, and an activity edge (or an
   externally raised OPP, or a thaw) unparks it. *)
let rec arm d ~up_threshold ~sampling =
  let k = ((Sim.now d.sim - d.epoch) / sampling) + 1 in
  d.next <-
    Sim.schedule_at d.sim ~label:d.lbl_sample (d.epoch + (k * sampling))
      (fun () -> sample d ~up_threshold ~sampling)

and sample d ~up_threshold ~sampling =
  d.next <- Sim.none;
  if not d.stopped then begin
    let util = d.get_util () in
    if not d.frozen then begin
      if util >= up_threshold then set_index d (Array.length d.opps - 1)
      else set_index d (d.index - 1)
    end;
    (* a frozen governor keeps sampling: each read resets the utilization
       window, so the first decision after a thaw sees one period of load,
       not the whole frozen stretch *)
    if not (util = 0.0 && d.index = 0 && not d.frozen) then
      arm d ~up_threshold ~sampling
  end

let parked d =
  match d.governor with
  | Ondemand _ -> Sim.is_none d.next && not d.stopped
  | _ -> false

let unpark d =
  match d.governor with
  | Ondemand { up_threshold; sampling } ->
      if Sim.is_none d.next && not d.stopped then begin
        (* discard the idle stretch, as the periodic governor's regular
           reads would have, so the next sample's window starts here *)
        ignore (d.get_util ());
        arm d ~up_threshold ~sampling
      end
  | Performance | Userspace -> ()

let create sim ?(name = "dvfs") ?activity ~opps ~governor ~get_util () =
  if Array.length opps = 0 then invalid_arg "Dvfs.create: no OPPs";
  let index = match governor with Performance -> Array.length opps - 1 | Ondemand _ | Userspace -> 0 in
  let d =
    { sim; opps; governor; get_util; changes = Bus.create (); name;
      tm_transitions = Tm.counter (Printf.sprintf "dvfs.%s.transitions" name);
      lbl_sample = Sim.label ("dvfs." ^ name);
      epoch = Sim.now sim; index; ceiling = Array.length opps - 1;
      next = Sim.none; stopped = false; frozen = false }
  in
  (match governor with
  | Ondemand { up_threshold; sampling } -> arm d ~up_threshold ~sampling
  | Performance | Userspace -> ());
  (match activity with
  | Some bus -> ignore (Bus.subscribe bus (fun () -> unpark d))
  | None -> ());
  d

let name d = d.name

let opp_index d = d.index
let current d = d.opps.(d.index)
let opps d = d.opps

let set_opp d i =
  set_index d i;
  (* an externally raised OPP must decay again even on an idle device *)
  if d.index > 0 then unpark d

let max_index d = Array.length d.opps - 1
let changes d = d.changes

let ceiling d = d.ceiling

let set_ceiling d i =
  let i = max 0 (min i (Array.length d.opps - 1)) in
  d.ceiling <- i;
  if d.index > i then set_index d i

let freeze d = d.frozen <- true

let thaw d =
  d.frozen <- false;
  (* a freeze taken while parked suppressed unparks; catch up if the
     device meanwhile sits above the bottom OPP *)
  if d.index > 0 then unpark d

let frozen d = d.frozen

let stop d =
  d.stopped <- true;
  Sim.cancel d.sim d.next;
  d.next <- Sim.none
