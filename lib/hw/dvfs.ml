open Psbox_engine
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing

type opp = { freq_mhz : int; core_w : float; uncore_w : float }

type governor =
  | Ondemand of { up_threshold : float; sampling : Time.span }
  | Performance
  | Userspace

type change = { at : Time.t; index_before : int; index_after : int; opp : opp }

type t = {
  sim : Sim.t;
  opps : opp array;
  governor : governor;
  get_util : unit -> float;
  changes : change Bus.t;
  name : string;
  tm_transitions : Tm.counter;
  mutable index : int;
  mutable ceiling : int;
  mutable tick : Sim.periodic option;
  mutable stopped : bool;
  mutable frozen : bool;
}

let set_index d i =
  let i = max 0 (min i (min d.ceiling (Array.length d.opps - 1))) in
  if i <> d.index then begin
    let before = d.index in
    d.index <- i;
    Tm.incr d.tm_transitions;
    (if Tt.recording () then begin
       let now = Sim.now d.sim in
       let freq = float_of_int d.opps.(i).freq_mhz in
       Tt.instant ~track:"hw.dvfs" ~lane:d.name
         ~name:(Printf.sprintf "%d MHz" d.opps.(i).freq_mhz)
         ~args:[ ("freq_mhz", freq); ("index", float_of_int i) ]
         now;
       Tt.sample ~track:"hw.dvfs" ~name:(d.name ^ ".freq_mhz") now freq
     end);
    Bus.publish d.changes
      { at = Sim.now d.sim; index_before = before; index_after = i; opp = d.opps.(i) }
  end

let governor_tick d up_threshold () =
  if not d.stopped then begin
    let util = d.get_util () in
    if not d.frozen then begin
      if util >= up_threshold then set_index d (Array.length d.opps - 1)
      else set_index d (d.index - 1)
    end
  end

let create sim ?(name = "dvfs") ~opps ~governor ~get_util () =
  if Array.length opps = 0 then invalid_arg "Dvfs.create: no OPPs";
  let index = match governor with Performance -> Array.length opps - 1 | Ondemand _ | Userspace -> 0 in
  let d =
    { sim; opps; governor; get_util; changes = Bus.create (); name;
      tm_transitions = Tm.counter (Printf.sprintf "dvfs.%s.transitions" name);
      index; ceiling = Array.length opps - 1; tick = None;
      stopped = false; frozen = false }
  in
  (match governor with
  | Ondemand { up_threshold; sampling } ->
      d.tick <-
        Some
          (Sim.schedule_every sim ~label:("dvfs." ^ name) sampling
             (governor_tick d up_threshold))
  | Performance | Userspace -> ());
  d

let name d = d.name

let opp_index d = d.index
let current d = d.opps.(d.index)
let opps d = d.opps
let set_opp d i = set_index d i
let max_index d = Array.length d.opps - 1
let changes d = d.changes

let ceiling d = d.ceiling

let set_ceiling d i =
  let i = max 0 (min i (Array.length d.opps - 1)) in
  d.ceiling <- i;
  if d.index > i then set_index d i

let freeze d = d.frozen <- true
let thaw d = d.frozen <- false
let frozen d = d.frozen

let stop d =
  d.stopped <- true;
  match d.tick with Some p -> Sim.cancel_every p | None -> ()
