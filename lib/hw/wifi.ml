open Psbox_engine

type pkt = {
  id : int;
  app : int;
  socket : int;
  bytes : int;
  dir : [ `Tx | `Rx ];
  mutable queued_at : Time.t;
  mutable air_start : Time.t option;
  mutable air_end : Time.t option;
}

let next_pkt_id = ref 0

let packet ~app ~socket ~bytes ?(dir = `Tx) () =
  incr next_pkt_id;
  {
    id = !next_pkt_id;
    app;
    socket;
    bytes;
    dir;
    queued_at = Time.zero;
    air_start = None;
    air_end = None;
  }

type power_state = { tx_level : int; awake : bool }

type t = {
  sim : Sim.t;
  rail : Power_rail.t;
  rate_bps : float;
  overhead : Time.span;
  tail : Time.span;
  ps_w : float;
  awake_w : float;
  tx_levels : float array;
  rx_w : float;
  vmacs : bool;
  reassoc_delay : Time.span;
  mutable level : int;
  mutable awake : bool;
  mutable on_air : pkt option;
  mutable queue : pkt list; (* FIFO, head oldest *)
  mutable on_sent : pkt -> unit;
  mutable tail_timer : Sim.handle;
  mutable airtime_accum : Time.span;
  mutable air_since : Time.t;
  (* power-state residency counters (for counter-driven power models):
     time awake, on-air time per TX level, on-air RX time *)
  mutable awake_accum : Time.span;
  mutable awake_since : Time.t;
  tx_air_by_level : Time.span array;
  mutable rx_air_accum : Time.span;
  mutable on_air_level : int; (* TX level when the on-air frame started *)
  mutable mac : int;
  mutable associated : bool;
  mutable mode_adapt : bool;
  mutable mode_frozen : bool;
  mutable recent_air : (Time.t * Time.span) list; (* (packet end, airtime) *)
}

let update_power nic =
  let w =
    if not nic.awake then nic.ps_w
    else
      match nic.on_air with
      | None -> nic.awake_w
      | Some p -> (
          match p.dir with
          | `Tx -> nic.awake_w +. nic.tx_levels.(nic.level)
          | `Rx -> nic.awake_w +. nic.rx_w)
  in
  Power_rail.set_power nic.rail w

let set_awake_state nic b =
  if nic.awake <> b then begin
    let now = Sim.now nic.sim in
    if b then nic.awake_since <- now
    else nic.awake_accum <- nic.awake_accum + (now - nic.awake_since);
    nic.awake <- b
  end

let cancel_tail nic =
  Sim.cancel nic.sim nic.tail_timer;
  nic.tail_timer <- Sim.none

let arm_tail nic =
  cancel_tail nic;
  nic.tail_timer <-
    Sim.schedule_after nic.sim nic.tail (fun () ->
        nic.tail_timer <- Sim.none;
        if nic.on_air = None && nic.queue = [] then begin
          set_awake_state nic false;
          update_power nic
        end)

let wake nic =
  cancel_tail nic;
  if not nic.awake then begin
    set_awake_state nic true;
    update_power nic
  end

(* Mode adaptation: utilization of the channel over the trailing window
   decides the transmission mode (TX level). *)
let adapt_mode nic =
  if nic.mode_adapt && not nic.mode_frozen then begin
    let now = Sim.now nic.sim in
    let window = Time.ms 200 in
    nic.recent_air <-
      List.filter (fun (t_end, _) -> now - t_end < window) nic.recent_air;
    let air =
      List.fold_left (fun acc (_, a) -> acc + a) 0 nic.recent_air
    in
    let util = float_of_int air /. float_of_int window in
    let top = Array.length nic.tx_levels - 1 in
    let level =
      if util > 0.5 then top
      else if util > 0.15 then min 1 top
      else 0
    in
    if level <> nic.level then begin
      nic.level <- level;
      update_power nic
    end
  end

let rec send_next nic =
  if nic.on_air = None && nic.associated then
    match nic.queue with
    | [] -> ()
    | p :: rest ->
        nic.queue <- rest;
        wake nic;
        let now = Sim.now nic.sim in
        p.air_start <- Some now;
        nic.on_air <- Some p;
        nic.air_since <- now;
        adapt_mode nic;
        nic.on_air_level <- nic.level;
        update_power nic;
        let airtime =
          Time.of_sec_f (float_of_int (p.bytes * 8) /. nic.rate_bps) + nic.overhead
        in
        ignore
          (Sim.schedule_after nic.sim (max 1 airtime) (fun () ->
               let now = Sim.now nic.sim in
               p.air_end <- Some now;
               nic.on_air <- None;
               let air = now - nic.air_since in
               nic.airtime_accum <- nic.airtime_accum + air;
               (match p.dir with
               | `Tx ->
                   nic.tx_air_by_level.(nic.on_air_level) <-
                     nic.tx_air_by_level.(nic.on_air_level) + air
               | `Rx -> nic.rx_air_accum <- nic.rx_air_accum + air);
               nic.recent_air <- (now, air) :: nic.recent_air;
               update_power nic;
               arm_tail nic;
               nic.on_sent p;
               send_next nic))

let create sim ?retention ?(name = "wifi") ?(rate_mbps = 40.0)
    ?(overhead = Time.us 200) ?(tail = Time.ms 80) ?(ps_w = 0.03)
    ?(awake_w = 0.25) ?(tx_levels = [| 0.5; 0.7; 0.9 |]) ?(rx_w = 0.45)
    ?(virtual_macs = false) ?(reassoc_delay = Time.ms 150) () =
  if Array.length tx_levels = 0 then invalid_arg "Wifi.create: no TX levels";
  let nic =
    {
      sim;
      rail = Power_rail.create ?retention sim ~name ~idle_w:ps_w;
      rate_bps = rate_mbps *. 1e6;
      overhead;
      tail;
      ps_w;
      awake_w;
      tx_levels;
      rx_w;
      vmacs = virtual_macs;
      reassoc_delay;
      level = Array.length tx_levels - 1;
      awake = false;
      on_air = None;
      queue = [];
      on_sent = (fun _ -> ());
      tail_timer = Sim.none;
      airtime_accum = 0;
      air_since = Time.zero;
      awake_accum = 0;
      awake_since = Time.zero;
      tx_air_by_level = Array.make (Array.length tx_levels) 0;
      rx_air_accum = 0;
      on_air_level = 0;
      mac = 0;
      associated = true;
      mode_adapt = true;
      mode_frozen = false;
      recent_air = [];
    }
  in
  update_power nic;
  nic

let rail nic = nic.rail
let rate_bps nic = nic.rate_bps
let tail nic = nic.tail
let awake_w nic = nic.awake_w
let ps_w nic = nic.ps_w
let set_mode_adapt nic b = nic.mode_adapt <- b
let freeze_mode nic = nic.mode_frozen <- true
let thaw_mode nic = nic.mode_frozen <- false

let transmit nic p =
  p.queued_at <- Sim.now nic.sim;
  nic.queue <- nic.queue @ [ p ];
  send_next nic

let set_on_sent nic f = nic.on_sent <- f

let in_flight nic =
  List.length nic.queue + match nic.on_air with Some _ -> 1 | None -> 0

let in_flight_of nic ~app =
  List.length (List.filter (fun p -> p.app = app) nic.queue)
  + match nic.on_air with Some p when p.app = app -> 1 | Some _ | None -> 0

let airtime_seconds nic =
  let extra =
    match nic.on_air with
    | Some _ -> Sim.now nic.sim - nic.air_since
    | None -> 0
  in
  Time.to_sec_f (nic.airtime_accum + extra)

let awake nic = nic.awake

let awake_seconds nic =
  let extra = if nic.awake then Sim.now nic.sim - nic.awake_since else 0 in
  Time.to_sec_f (nic.awake_accum + extra)

let tx_level_count nic = Array.length nic.tx_levels
let tx_level_w nic i = nic.tx_levels.(i)
let rx_w nic = nic.rx_w

let tx_airtime_by_level_seconds nic =
  Array.init (Array.length nic.tx_levels) (fun i ->
      let extra =
        match nic.on_air with
        | Some p when p.dir = `Tx && nic.on_air_level = i ->
            Sim.now nic.sim - nic.air_since
        | _ -> 0
      in
      Time.to_sec_f (nic.tx_air_by_level.(i) + extra))

let rx_airtime_seconds nic =
  let extra =
    match nic.on_air with
    | Some p when p.dir = `Rx -> Sim.now nic.sim - nic.air_since
    | _ -> 0
  in
  Time.to_sec_f (nic.rx_air_accum + extra)

let tx_level nic = nic.level

let set_tx_level nic level =
  if level < 0 || level >= Array.length nic.tx_levels then
    invalid_arg "Wifi.set_tx_level: bad level";
  nic.level <- level;
  update_power nic

let power_state nic = { tx_level = nic.level; awake = nic.awake }

let restore_power_state nic st =
  set_tx_level nic st.tx_level;
  if st.awake then begin
    wake nic;
    if nic.on_air = None then arm_tail nic
  end
  else if nic.on_air = None && nic.queue = [] then begin
    cancel_tail nic;
    set_awake_state nic false;
    update_power nic
  end

let virtual_macs nic = nic.vmacs
let current_mac nic = nic.mac

let switch_mac nic ~mac =
  if mac <> nic.mac then begin
    nic.mac <- mac;
    if not nic.vmacs then begin
      (* MAC switch resets the chip's association with the base station. *)
      nic.associated <- false;
      ignore
        (Sim.schedule_after nic.sim nic.reassoc_delay (fun () ->
             nic.associated <- true;
             send_next nic))
    end
  end

let associated nic = nic.associated
