open Psbox_engine

type surface = { pixels : int; luminance : float }

type t = {
  sim : Sim.t;
  name : string;
  retention : Time.span option;
  width : int;
  height : int;
  base_w : float;
  w_per_mnit_pixel : float;
  rail : Power_rail.t;
  surfaces : (int, surface) Hashtbl.t;
  app_rails : (int, Power_rail.t) Hashtbl.t;
  mutable on_app_rail : Power_rail.t -> unit;
}

let create sim ?retention ?(name = "display") ?(width = 1920) ?(height = 1080)
    ?(base_w = 0.25) ?(w_per_mnit_pixel = 0.35) () =
  {
    sim;
    name;
    retention;
    width;
    height;
    base_w;
    w_per_mnit_pixel;
    rail = Power_rail.create ?retention sim ~name ~idle_w:0.0;
    surfaces = Hashtbl.create 8;
    app_rails = Hashtbl.create 8;
    on_app_rail = (fun _ -> ());
  }

let rail d = d.rail
let lit_pixels d = Hashtbl.fold (fun _ s acc -> acc + s.pixels) d.surfaces 0
let on d = lit_pixels d > 0

(* Emission power of one surface. *)
let emission d s =
  d.w_per_mnit_pixel *. (float_of_int s.pixels /. 1e6) *. s.luminance

let app_rail d ~app =
  match Hashtbl.find_opt d.app_rails app with
  | Some r -> r
  | None ->
      let r =
        Power_rail.create ?retention:d.retention d.sim
          ~name:(Printf.sprintf "%s.app%d" d.name app)
          ~idle_w:0.0
      in
      Hashtbl.add d.app_rails app r;
      d.on_app_rail r;
      r

let set_on_app_rail d f =
  d.on_app_rail <- f;
  Hashtbl.iter (fun _ r -> f r) d.app_rails

(* Recompute the panel rail and every app rail: each pixel contributes
   independently, so attribution is exact. *)
let update d =
  let total_lit = lit_pixels d in
  let total =
    if total_lit = 0 then 0.0
    else
      Hashtbl.fold (fun _ s acc -> acc +. emission d s) d.surfaces d.base_w
  in
  Power_rail.set_power d.rail total;
  Hashtbl.iter
    (fun app r ->
      let w =
        match Hashtbl.find_opt d.surfaces app with
        | Some s when total_lit > 0 ->
            emission d s
            +. (d.base_w *. float_of_int s.pixels /. float_of_int total_lit)
        | Some _ | None -> 0.0
      in
      Power_rail.set_power r w)
    d.app_rails

let set_surface d ~app ~pixels ~luminance =
  if pixels < 0 || pixels > d.width * d.height then
    invalid_arg "Display.set_surface: pixels out of range";
  if luminance < 0.0 || luminance > 1.0 then
    invalid_arg "Display.set_surface: luminance out of range";
  Hashtbl.replace d.surfaces app { pixels; luminance };
  ignore (app_rail d ~app);
  update d

let remove_surface d ~app =
  Hashtbl.remove d.surfaces app;
  update d

let app_power_w d ~app = Power_rail.power (app_rail d ~app)
