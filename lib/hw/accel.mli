(** Generic accelerator (GPU / DSP) with an asynchronous command interface.

    The CPU-side driver dispatches commands into the device; the device
    executes them, possibly overlapping in time when execution units are
    available, and raises a completion interrupt per command. Overlap is what
    makes request boundaries blurry (the paper's Figure 3(b)): the CPU knows
    when a command entered the device and when its completion interrupt
    arrived, but concurrent commands' power impacts entangle in between.

    Frequency is governed by {!Dvfs}; command durations scale with the
    current OPP. An optional autosuspend models the off/suspended state:
    after the device has been idle for the configured span it drops below
    idle power, and the next command pays a resume delay. *)

type command = {
  id : int;
  app : int;  (** owning app id (for billing and balloon enforcement) *)
  kind : string;
  work_s : float;  (** device-seconds of execution at the highest OPP *)
  units : int;  (** execution units occupied while running *)
  intensity : float;  (** power multiplier applied to the per-unit draw *)
  mutable submitted_at : Psbox_engine.Time.t;
  mutable started_at : Psbox_engine.Time.t option;
  mutable finished_at : Psbox_engine.Time.t option;
}

val command :
  app:int -> kind:string -> work_s:float -> ?units:int -> ?intensity:float ->
  unit -> command
(** Fresh command with a unique id; [units] defaults to 1, [intensity] to
    [1.0]. *)

type t

val create :
  Psbox_engine.Sim.t ->
  ?retention:Psbox_engine.Time.span ->
  name:string ->
  units:int ->
  ?opps:Dvfs.opp array ->
  ?governor:Dvfs.governor ->
  ?idle_w:float ->
  ?suspend_w:float ->
  ?autosuspend:Psbox_engine.Time.span ->
  ?resume_delay:Psbox_engine.Time.span ->
  unit ->
  t
(** Defaults: a 4-OPP table, ondemand governor (20 ms sampling), 0.1 W idle.
    Autosuspend is disabled unless a span is given. [retention] bounds the
    rail's power history (see {!Power_rail.create}). *)

val name : t -> string
val rail : t -> Power_rail.t
val dvfs : t -> Dvfs.t
val units : t -> int

val submit : t -> command -> unit
(** Dispatch a command to the device. It starts as soon as enough execution
    units are free (FIFO among waiting commands) and completes after its
    scaled duration; {!set_on_complete}'s callback then fires (the completion
    interrupt). *)

val set_on_complete : t -> (command -> unit) -> unit

val in_flight : t -> int
(** Commands dispatched to the device and not yet completed (running or
    waiting for units). *)

val in_flight_of : t -> app:int -> int

val busy_units : t -> int

val busy_unit_seconds : t -> float
(** Cumulative busy unit-time in seconds since simulation start. *)

val active_seconds : t -> float
(** Cumulative non-idle (any unit busy) time in seconds — the governor's
    load notion. *)

val suspended : t -> bool

val suspended_seconds : t -> float
(** Cumulative seconds in the suspended (below-idle) state, including the
    current stretch — a power-state residency counter, like a real driver's
    runtime-PM [suspended_time]. Counter-driven power models
    ({!Psbox_model}) fit the idle/suspend floor split from it. *)

val suspend_w : t -> float
(** The suspended-state draw (ground truth, for tests). *)

val idle_w : t -> float
(** The idle (powered, no command) draw of the device's rail. *)

val stop : t -> unit
