(** Streaming health engine.

    The paper's thesis is that power must be observable {e and actionable}
    per principal. The rest of the tree provides the observable half — the
    metrics registry, the audit ledger, the model estimators; this module
    is the actionable half: a rule engine that watches those signals
    continuously on a deterministic evaluation grid, turns breaches into an
    incident lifecycle, and dispatches firing incidents to responders that
    change the machine (recalibrate a drifted model, tighten a violated
    budget).

    Determinism contract: evaluations land on the fixed grid
    [epoch + k*period] riding the simulator's timing wheel, demand-armed
    like {!Psbox_budget.Budget}'s control tick (an engine with no rules
    schedules nothing). The incident log is a pure function of the run's
    event history — same seed, same bytes — and rule evaluation is a pure
    observer; only registered responders act. *)

(** {1 Signals}

    What a rule watches: a registered metric's current value, a counter's
    windowed per-second rate ({!Psbox_telemetry.Metrics.rate_sample}
    bookkeeping handled internally), or an arbitrary named probe — the
    escape hatch for invariants that are not a single metric, e.g. the
    audit-vs-ledger conservation comparison. *)
type signal =
  | Metric of string
  | Rate of string
  | Probe of string * (unit -> float option)

(** {1 Rules}

    Each combinator carries hysteresis re-arm borrowed from the model drift
    latch: once an incident fires, the rule re-arms (resolving the
    incident) only when the signal has cleared the threshold by a 20%
    margin — below [0.8 * limit] for over-rules, above [1.2 * limit] for
    under-rules — so one sustained excursion yields exactly one incident. *)

type rule

val rule_name : rule -> string
val rule_subject : rule -> string

val threshold :
  name:string ->
  ?subject:string ->
  ?below:bool ->
  ?for_windows:int ->
  signal ->
  float ->
  rule
(** [threshold ~name signal limit] breaches when the signal exceeds
    [limit] ([below:true] inverts) on [for_windows] consecutive
    evaluations (default 1). [subject] defaults to the signal's label;
    incidents are deduplicated per rule x subject. *)

val rate_of_change :
  name:string ->
  ?subject:string ->
  ?for_windows:int ->
  signal ->
  per_second:float ->
  rule
(** Breaches when the signal's absolute per-second derivative (between
    consecutive evaluations) exceeds [per_second]. *)

val absence : name:string -> ?subject:string -> ?stale_windows:int -> string -> rule
(** [absence ~name metric] breaches when [metric] has been unregistered or
    unchanged for [stale_windows] consecutive evaluations (default 4) — a
    dead-man switch for instrumentation that should always move. Resolves
    as soon as the metric moves again. *)

val burn_rate : bad:float -> total:float -> slo:float -> float
(** [(bad / total) / slo] with zero-guarding: how many times faster than
    the error budget allows the bad events are arriving. 1.0 = burning
    exactly at budget; 14.4 = a 30-day budget gone in 50 hours. *)

val slo_burn :
  name:string ->
  ?subject:string ->
  bad:string ->
  total:string ->
  slo:float ->
  ?short_windows:int ->
  ?long_windows:int ->
  ?factor:float ->
  unit ->
  rule
(** Multi-window SLO burn rule over two cumulative counters: breaches when
    the {!burn_rate} over the last [short_windows] (default 4) {e and} the
    last [long_windows] (default 16) evaluations both exceed [factor]
    (default 2.0) — the short window gives fast detection, the long window
    suppresses blips. Needs [long_windows + 1] samples before it can
    breach. *)

(** {1 Incidents}

    One incident per rule x subject excursion: [pending] when the raw
    condition first breaches, [firing] once it has held for the rule's
    for-duration (responders dispatch here), [resolved] when the
    hysteresis margin clears (or the condition retreats before firing).
    Every transition is counted under [health.*] self-metrics and traced
    as an instant on the ["health"] track. *)
type incident = private {
  i_id : int;  (** 1-based, in open order *)
  i_rule : string;
  i_subject : string;
  i_opened_s : float;
  mutable i_fired_s : float option;  (** [None]: retreated while pending *)
  mutable i_resolved_s : float option;  (** [None]: still open *)
  mutable i_peak : float;  (** worst signal value observed while open *)
  mutable i_evals : int;
}

(** {1 The engine} *)

type t

val create : Psbox_engine.Sim.t -> ?period:Psbox_engine.Time.span -> unit -> t
(** A fresh engine on [sim]'s clock, evaluating every [period] (default
    50 ms) from the grid epoch [Sim.now sim]. Schedules nothing until the
    first rule is added. *)

val add_rule : t -> rule -> unit
val add_rules : t -> rule list -> unit
val rules : t -> rule list

val on_firing : t -> rule:string -> (incident -> unit) -> unit
(** Register a responder for incidents of the named rule. Responders run
    inside the evaluation event, in registration order, counted under
    [health.responder.actions]. *)

val eval_now : t -> unit
(** Evaluate every rule once at the current sim time, off the grid — a
    hook for tests and end-of-run flushes. Grid evaluations are unaffected
    (streak counting is per-evaluation, not per-wall-time). *)

val stop : t -> unit
(** Cancel the pending evaluation; the engine never evaluates again.
    Incident history stays readable. *)

val period : t -> Psbox_engine.Time.span
val evals : t -> int

val incidents : t -> incident list
(** All incidents ever opened, oldest first. *)

val open_incidents : t -> incident list

val incident_counts : t -> (string * int) list
(** Fired (not merely pending) incidents per rule name, sorted by name —
    the fleet-reduction record. *)

val json : t -> string
(** Deterministic incident-log JSON: fixed field order, [%.6f] floats, no
    wall clock. *)

(** {1 Default rule pack}

    The rules [psbox_sim] wires in: per-rail model drift (threshold on the
    estimator's [model.rail.<r>.mape_pct] gauges, for-duration
    [drift_for_windows]), cap-violation SLO burn
    ([budget.cap_violations] / [budget.ticks]), a dead-metric absence
    watchdog on [sim.events_fired], and — when an audit ledger is attached
    to [sys] — an audit-vs-kernel-ledger conservation probe that must
    never fire. *)
val default_pack :
  ?drift_threshold_pct:float ->
  ?drift_for_windows:int ->
  ?cap_slo:float ->
  ?cap_factor:float ->
  Psbox_kernel.System.t ->
  rule list

(** {1 Shipped responders} *)

module Responder : sig
  val tighten_budget :
    ?factor:float -> Psbox_budget.Budget.t -> app:int -> incident -> unit
  (** On each firing incident, ratchet [app]'s cap or envelope down one
      step ({!Psbox_budget.Budget.tighten}, default factor 0.9). *)

  val recalibrate :
    recorder:Psbox_model.Model.Recorder.t ->
    estimator:Psbox_model.Model.Estimator.t ->
    ?seed:int ->
    ?rounds:int ->
    ?samples:int ->
    ?margin:float ->
    unit ->
    incident ->
    unit
  (** Self-healing estimation: on a fired drift incident whose subject is
      a rail the estimator observes, recalibrate that rail online with
      {!Psbox_model.Model.Calibrate.calibrate_trace} — searching around
      the incumbent (drifted) model within [margin] (default 0.3) — on
      the recorder's windows so far, then hot-swap the refit under the
      estimator ({!Psbox_model.Model.Estimator.swap_model}). Deterministic:
      the calibration seed is [seed + incident id]. *)
end

(** {1 Self-healing estimation check}

    The end-to-end drift-injection demo behind [psbox_sim health-check]
    and [model-check --self-heal]: fit ground-truth models on one seed,
    perturb them, run a fresh seed under the perturbed estimator with the
    default rule pack and the recalibration responder, and measure the
    held-out MAPE of the hot-swapped model on the windows after the
    incident fired. *)
module Self_heal : sig
  type rail_heal = {
    rh_rail : string;
    rh_pre_mape_pct : float;  (** drifted model, full validation trace *)
    rh_post_mape_pct : float;  (** live model, windows after the fire *)
    rh_fired_s : float option;
    rh_swapped : bool;
  }

  type report = {
    sh_fit_seed : int;
    sh_val_seed : int;
    sh_window_ms : float;
    sh_windows : int;
    sh_perturb_pct : float;
    sh_drift_threshold_pct : float;
    sh_rails : rail_heal list;
    sh_incidents_fired : int;
    sh_swaps : int;
    sh_post_max_mape_pct : float;  (** the [--max-mape] gate value *)
  }

  val run :
    ?fit_seed:int ->
    ?val_seed:int ->
    ?window:Psbox_engine.Time.span ->
    ?windows:int ->
    ?perturb_pct:float ->
    ?drift_threshold_pct:float ->
    ?drift_for_windows:int ->
    ?calib_seed:int ->
    ?calib_rounds:int ->
    ?calib_samples:int ->
    unit ->
    report * t
  (** Returns the report and the (stopped) engine whose {!json} is the
      incident log. Defaults: seeds 11/23 (as [model-check]), 60 windows
      of 50 ms, no perturbation. *)

  val json : report -> string
  (** Deterministic JSON, same conventions as the incident log. *)
end
