(* Streaming health engine: watch the live metrics registry on a
   deterministic evaluation grid, turn rule breaches into an incident
   lifecycle, and dispatch firing incidents to responders that act — the
   step from observable power to actionable power.

   Everything here is driven by the sim clock and the metric store, so a
   run's incident log is a pure function of the event history: same seed,
   same bytes. Evaluation itself is a pure observer; only responders
   (explicitly registered) change simulation behavior. *)

open Psbox_engine
module System = Psbox_kernel.System
module Power_rail = Psbox_hw.Power_rail
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing
module Model = Psbox_model.Model
module Budget = Psbox_budget.Budget
module Audit = Psbox_audit.Audit

let health_track = "health"

(* Self-metrics: the engine watches everything else, these let everything
   else watch the engine. *)
let m_evals = Tm.counter "health.evals"
let m_pending = Tm.counter "health.incidents.pending"
let m_firing = Tm.counter "health.incidents.firing"
let m_resolved = Tm.counter "health.incidents.resolved"
let m_actions = Tm.counter "health.responder.actions"

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

type signal =
  | Metric of string
  | Rate of string
  | Probe of string * (unit -> float option)

let signal_label = function
  | Metric n -> n
  | Rate n -> n ^ ".rate"
  | Probe (n, _) -> n

type cmp = Over | Under

type kind =
  | Threshold of {
      t_signal : signal;
      t_cmp : cmp;
      t_limit : float;
      t_for : int;
    }
  | Rate_of_change of { rc_signal : signal; rc_per_s : float; rc_for : int }
  | Absence of { a_metric : string; a_stale : int }
  | Slo_burn of {
      b_bad : string;
      b_total : string;
      b_slo : float;
      b_short : int;
      b_long : int;
      b_factor : float;
    }

type rule = { r_name : string; r_subject : string; r_kind : kind }

let rule_name r = r.r_name
let rule_subject r = r.r_subject

let threshold ~name ?subject ?(below = false) ?(for_windows = 1) signal limit =
  if for_windows < 1 then invalid_arg "Health.threshold: for_windows < 1";
  {
    r_name = name;
    r_subject = (match subject with Some s -> s | None -> signal_label signal);
    r_kind =
      Threshold
        {
          t_signal = signal;
          t_cmp = (if below then Under else Over);
          t_limit = limit;
          t_for = for_windows;
        };
  }

let rate_of_change ~name ?subject ?(for_windows = 1) signal ~per_second =
  if for_windows < 1 then invalid_arg "Health.rate_of_change: for_windows < 1";
  if per_second <= 0.0 then
    invalid_arg "Health.rate_of_change: per_second must be positive";
  {
    r_name = name;
    r_subject = (match subject with Some s -> s | None -> signal_label signal);
    r_kind =
      Rate_of_change
        { rc_signal = signal; rc_per_s = per_second; rc_for = for_windows };
  }

let absence ~name ?subject ?(stale_windows = 4) metric =
  if stale_windows < 1 then invalid_arg "Health.absence: stale_windows < 1";
  {
    r_name = name;
    r_subject = (match subject with Some s -> s | None -> metric);
    r_kind = Absence { a_metric = metric; a_stale = stale_windows };
  }

let burn_rate ~bad ~total ~slo =
  if total <= 0.0 || slo <= 0.0 then 0.0 else bad /. total /. slo

let slo_burn ~name ?subject ~bad ~total ~slo ?(short_windows = 4)
    ?(long_windows = 16) ?(factor = 2.0) () =
  if slo <= 0.0 then invalid_arg "Health.slo_burn: slo must be positive";
  if short_windows < 1 || long_windows < short_windows then
    invalid_arg "Health.slo_burn: need 1 <= short_windows <= long_windows";
  if factor <= 0.0 then invalid_arg "Health.slo_burn: factor must be positive";
  {
    r_name = name;
    r_subject = (match subject with Some s -> s | None -> bad);
    r_kind =
      Slo_burn
        {
          b_bad = bad;
          b_total = total;
          b_slo = slo;
          b_short = short_windows;
          b_long = long_windows;
          b_factor = factor;
        };
  }

(* ------------------------------------------------------------------ *)
(* Incidents                                                           *)

type incident = {
  i_id : int;
  i_rule : string;
  i_subject : string;
  i_opened_s : float;
  mutable i_fired_s : float option;
  mutable i_resolved_s : float option;
  mutable i_peak : float;  (** worst signal value seen while open *)
  mutable i_evals : int;  (** evaluations spent open *)
}

type phase = P_ok | P_pending | P_firing

type live = {
  lv_rule : rule;
  lv_m_fired : Tm.counter;  (* health.fired.<rule> *)
  mutable lv_phase : phase;
  mutable lv_streak : int;  (* consecutive breaching evals *)
  lv_rate : Tm.rate option;  (* tracker behind a [Rate] signal *)
  mutable lv_roc_prev : (float * float) option;  (* (t_s, value) *)
  mutable lv_abs_prev : float option;  (* last value the metric showed *)
  mutable lv_abs_streak : int;  (* evals without movement *)
  lv_burn : (float * float) array;  (* (bad, total) cumulative ring *)
  mutable lv_burn_i : int;
  mutable lv_burn_n : int;
  mutable lv_incident : incident option;
}

type t = {
  h_sim : Sim.t;
  h_period : Time.span;
  h_epoch : Time.t;
  mutable h_rules : live list;  (* evaluation (= add) order *)
  mutable h_responders : (string * (incident -> unit)) list;  (* add order *)
  mutable h_incidents : incident list;  (* newest first *)
  mutable h_next_id : int;
  mutable h_tick : Sim.handle;
  h_lbl_tick : Sim.label; (* counts under sim.events.health.tick *)
  mutable h_evals : int;
  mutable h_stopped : bool;
}

let period t = t.h_period
let evals t = t.h_evals
let incidents t = List.rev t.h_incidents

let open_incidents t =
  List.filter (fun i -> i.i_resolved_s = None) (incidents t)

let incident_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun i ->
      if i.i_fired_s <> None then
        Hashtbl.replace tbl i.i_rule
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl i.i_rule)))
    t.h_incidents;
  Hashtbl.fold (fun r n acc -> (r, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- signal reading ------------------------------------------------ *)

let read_signal lv ~now_s = function
  | Metric n -> Tm.find n
  | Rate _ -> Tm.rate_sample (Option.get lv.lv_rate) ~now_s
  | Probe (_, f) -> f ()

(* One evaluation of one rule: did the raw condition breach this eval, has
   the hysteresis margin cleared, and what value do we record as evidence.
   A missing signal is no evidence either way: it neither breaches nor
   clears, so an open incident rides out a gap in the data. *)
let judge lv ~now_s =
  match lv.lv_rule.r_kind with
  | Threshold { t_signal; t_cmp; t_limit; _ } -> (
      match read_signal lv ~now_s t_signal with
      | None -> (false, false, None)
      | Some v ->
          let breach, clear =
            match t_cmp with
            | Over -> (v > t_limit, v < 0.8 *. t_limit)
            | Under -> (v < t_limit, v > 1.2 *. t_limit)
          in
          (breach, clear, Some v))
  | Rate_of_change { rc_signal; rc_per_s; _ } -> (
      match read_signal lv ~now_s rc_signal with
      | None -> (false, false, None)
      | Some v -> (
          let prev = lv.lv_roc_prev in
          lv.lv_roc_prev <- Some (now_s, v);
          match prev with
          | Some (t0, v0) when now_s > t0 ->
              let dv = Float.abs ((v -. v0) /. (now_s -. t0)) in
              (dv > rc_per_s, dv < 0.8 *. rc_per_s, Some dv)
          | Some _ | None -> (false, false, None)))
  | Absence { a_metric; a_stale } ->
      (match Tm.find a_metric with
      | None ->
          (* never registered counts as stale *)
          lv.lv_abs_streak <- lv.lv_abs_streak + 1
      | Some v ->
          (match lv.lv_abs_prev with
          | Some p when v <> p -> lv.lv_abs_streak <- 0
          | Some _ -> lv.lv_abs_streak <- lv.lv_abs_streak + 1
          | None -> lv.lv_abs_streak <- lv.lv_abs_streak + 1);
          lv.lv_abs_prev <- Some v);
      ( lv.lv_abs_streak >= a_stale,
        lv.lv_abs_streak = 0,
        Some (float_of_int lv.lv_abs_streak) )
  | Slo_burn { b_bad; b_total; b_slo; b_short; b_long; b_factor } ->
      let bad = Option.value ~default:0.0 (Tm.find b_bad) in
      let total = Option.value ~default:0.0 (Tm.find b_total) in
      let len = Array.length lv.lv_burn in
      lv.lv_burn.(lv.lv_burn_i) <- (bad, total);
      lv.lv_burn_i <- (lv.lv_burn_i + 1) mod len;
      if lv.lv_burn_n < len then lv.lv_burn_n <- lv.lv_burn_n + 1;
      let ago k =
        (* the sample recorded k evals before this one; requires k < n *)
        let idx = ((lv.lv_burn_i - 1 - k) + (2 * len)) mod len in
        lv.lv_burn.(idx)
      in
      let burn_over k =
        let b0, t0 = ago k in
        burn_rate ~bad:(bad -. b0) ~total:(total -. t0) ~slo:b_slo
      in
      if lv.lv_burn_n <= b_long then (false, false, None)
      else begin
        let short = burn_over b_short and long = burn_over b_long in
        ( short > b_factor && long > b_factor,
          short < 0.8 *. b_factor && long < 0.8 *. b_factor,
          Some (Float.max short long) )
      end

(* ---- lifecycle ----------------------------------------------------- *)

let transition lv inc ~now_s name counter =
  Tm.incr counter;
  if Tt.recording () then
    Tt.instant ~track:health_track ~lane:lv.lv_rule.r_subject ~name
      ~args:[ ("id", float_of_int inc.i_id); ("peak", inc.i_peak) ]
      (Time.of_sec_f now_s)

let dispatch t lv inc =
  List.iter
    (fun (rule, fn) ->
      if rule = lv.lv_rule.r_name then begin
        Tm.incr m_actions;
        fn inc
      end)
    t.h_responders

let for_windows_of = function
  | Threshold { t_for; _ } -> t_for
  | Rate_of_change { rc_for; _ } -> rc_for
  | Absence _ | Slo_burn _ -> 1

let maybe_fire t lv ~now_s =
  if lv.lv_streak >= for_windows_of lv.lv_rule.r_kind then begin
    let inc = Option.get lv.lv_incident in
    lv.lv_phase <- P_firing;
    inc.i_fired_s <- Some now_s;
    Tm.incr lv.lv_m_fired;
    transition lv inc ~now_s "firing" m_firing;
    dispatch t lv inc
  end

let resolve lv ~now_s =
  let inc = Option.get lv.lv_incident in
  inc.i_resolved_s <- Some now_s;
  transition lv inc ~now_s "resolved" m_resolved;
  lv.lv_incident <- None;
  lv.lv_phase <- P_ok;
  lv.lv_streak <- 0

let eval_rule t lv ~now_s =
  let breach, clear, value = judge lv ~now_s in
  (match lv.lv_incident with
  | Some inc ->
      inc.i_evals <- inc.i_evals + 1;
      (match value with
      | Some v when v > inc.i_peak -> inc.i_peak <- v
      | Some _ | None -> ())
  | None -> ());
  match lv.lv_phase with
  | P_ok ->
      if breach then begin
        let inc =
          {
            i_id = t.h_next_id;
            i_rule = lv.lv_rule.r_name;
            i_subject = lv.lv_rule.r_subject;
            i_opened_s = now_s;
            i_fired_s = None;
            i_resolved_s = None;
            i_peak = Option.value ~default:0.0 value;
            i_evals = 1;
          }
        in
        t.h_next_id <- t.h_next_id + 1;
        t.h_incidents <- inc :: t.h_incidents;
        lv.lv_incident <- Some inc;
        lv.lv_phase <- P_pending;
        lv.lv_streak <- 1;
        transition lv inc ~now_s "pending" m_pending;
        maybe_fire t lv ~now_s
      end
  | P_pending ->
      if breach then begin
        lv.lv_streak <- lv.lv_streak + 1;
        maybe_fire t lv ~now_s
      end
      else resolve lv ~now_s
  | P_firing -> if clear then resolve lv ~now_s

let eval_now t =
  t.h_evals <- t.h_evals + 1;
  Tm.incr m_evals;
  let now_s = Time.to_sec_f (Sim.now t.h_sim) in
  List.iter (fun lv -> eval_rule t lv ~now_s) t.h_rules

(* ---- the evaluation grid ------------------------------------------- *)

(* Same demand-armed pattern as Budget's control tick: evaluations land on
   the fixed grid [epoch + k*period], and the engine schedules exactly one
   pending event — none at all while it has no rules. Skipped periods
   would have evaluated an empty rule list, so they are exact no-ops. *)
let tick_needed t = (not t.h_stopped) && t.h_rules <> []

let rec arm_tick t =
  if Sim.is_none t.h_tick && tick_needed t then begin
    let k = ((Sim.now t.h_sim - t.h_epoch) / t.h_period) + 1 in
    t.h_tick <-
      Sim.schedule_at t.h_sim ~label:t.h_lbl_tick
        (t.h_epoch + (k * t.h_period))
        (fun () -> tick_fired t)
  end

and tick_fired t =
  t.h_tick <- Sim.none;
  if not t.h_stopped then begin
    eval_now t;
    arm_tick t
  end

let create sim ?(period = Time.ms 50) () =
  if period <= 0 then invalid_arg "Health.create: period must be positive";
  {
    h_sim = sim;
    h_period = period;
    h_epoch = Sim.now sim;
    h_rules = [];
    h_responders = [];
    h_incidents = [];
    h_next_id = 1;
    h_tick = Sim.none;
    h_lbl_tick = Sim.label "health.tick";
    h_evals = 0;
    h_stopped = false;
  }

let add_rule t r =
  if t.h_stopped then invalid_arg "Health.add_rule: engine stopped";
  let needs_rate =
    match r.r_kind with
    | Threshold { t_signal = Rate n; _ } | Rate_of_change { rc_signal = Rate n; _ }
      ->
        Some (Tm.rate n)
    | _ -> None
  in
  let burn_len =
    match r.r_kind with Slo_burn { b_long; _ } -> b_long + 1 | _ -> 1
  in
  let lv =
    {
      lv_rule = r;
      lv_m_fired = Tm.counter ("health.fired." ^ r.r_name);
      lv_phase = P_ok;
      lv_streak = 0;
      lv_rate = needs_rate;
      lv_roc_prev = None;
      lv_abs_prev = None;
      lv_abs_streak = 0;
      lv_burn = Array.make burn_len (0.0, 0.0);
      lv_burn_i = 0;
      lv_burn_n = 0;
      lv_incident = None;
    }
  in
  t.h_rules <- t.h_rules @ [ lv ];
  arm_tick t

let add_rules t rs = List.iter (add_rule t) rs
let rules t = List.map (fun lv -> lv.lv_rule) t.h_rules

let on_firing t ~rule fn = t.h_responders <- t.h_responders @ [ (rule, fn) ]

let stop t =
  if not t.h_stopped then begin
    t.h_stopped <- true;
    Sim.cancel t.h_sim t.h_tick;
    t.h_tick <- Sim.none
  end

(* ---- incident-log JSON --------------------------------------------- *)

let json t =
  let b = Buffer.create 1024 in
  let opt_s = function
    | None -> "null"
    | Some s -> Printf.sprintf "%.6f" s
  in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"period_ms\": %.3f,\n"
    (Time.to_sec_f t.h_period *. 1000.0);
  Printf.bprintf b "  \"evals\": %d,\n" t.h_evals;
  Printf.bprintf b "  \"rules\": %d,\n" (List.length t.h_rules);
  Buffer.add_string b "  \"incidents\": [\n";
  let incs = incidents t in
  let n = List.length incs in
  List.iteri
    (fun k i ->
      Printf.bprintf b
        "    { \"id\": %d, \"rule\": \"%s\", \"subject\": \"%s\", \
         \"opened_s\": %.6f, \"fired_s\": %s, \"resolved_s\": %s, \"peak\": \
         %.6f, \"evals\": %d }%s\n"
        i.i_id i.i_rule i.i_subject i.i_opened_s (opt_s i.i_fired_s)
        (opt_s i.i_resolved_s) i.i_peak i.i_evals
        (if k = n - 1 then "" else ","))
    incs;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"fired\": { ";
  let counts = incident_counts t in
  List.iteri
    (fun k (r, c) ->
      Printf.bprintf b "\"%s\": %d%s" r c
        (if k = List.length counts - 1 then "" else ", "))
    counts;
  Buffer.add_string b " }\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Default rule pack                                                   *)

let default_pack ?(drift_threshold_pct = 5.0) ?(drift_for_windows = 8)
    ?(cap_slo = 0.05) ?(cap_factor = 2.0) sys =
  let rails = List.map Power_rail.name (System.rails sys) in
  let drift =
    List.map
      (fun r ->
        threshold ~name:"model.drift" ~subject:r
          ~for_windows:drift_for_windows
          (Metric (Printf.sprintf "model.rail.%s.mape_pct" r))
          drift_threshold_pct)
      rails
  in
  let cap =
    slo_burn ~name:"cap.violation" ~subject:"budget"
      ~bad:"budget.cap_violations" ~total:"budget.ticks" ~slo:cap_slo
      ~factor:cap_factor ()
  in
  let dead = absence ~name:"telemetry.dead" ~subject:"sim" "sim.events_fired" in
  let conservation =
    match Audit.lookup sys with
    | None -> []
    | Some a ->
        [
          threshold ~name:"audit.conservation" ~subject:"audit"
            (Probe
               ( "audit.mismatch_j",
                 fun () ->
                   Some
                     (List.fold_left
                        (fun acc rail ->
                          let lhs = Audit.rail_total a ~rail in
                          let rhs = System.rail_energy_j sys ~name:rail in
                          Float.max acc (Float.abs (lhs -. rhs)))
                        0.0 (Audit.rails a)) ))
            1e-9;
        ]
  in
  drift @ [ cap; dead ] @ conservation

(* ------------------------------------------------------------------ *)
(* Shipped responders                                                  *)

module Responder = struct
  let tighten_budget ?factor ctl ~app (_ : incident) =
    Budget.tighten ?factor ctl ~app

  let recalibrate ~recorder ~estimator ?(seed = 77) ?(rounds = 12)
      ?(samples = 48) ?(margin = 0.3) () (inc : incident) =
    let rail = inc.i_subject in
    match Model.Estimator.model estimator ~rail with
    | None -> ()
    | Some current -> (
        let traces = Model.Recorder.current recorder in
        match
          List.find_opt (fun tr -> tr.Model.Trace.tr_rail = rail) traces
        with
        | None -> ()
        | Some tr when tr.Model.Trace.tr_windows = [] -> ()
        | Some tr ->
            let m, _rmse =
              Model.Calibrate.calibrate_trace ~seed:(seed + inc.i_id) ~rounds
                ~samples ~around:current ~margin tr
            in
            ignore (Model.Estimator.swap_model estimator m : bool))
end

(* ------------------------------------------------------------------ *)
(* Self-healing estimation check                                       *)

module Self_heal = struct
  type rail_heal = {
    rh_rail : string;
    rh_pre_mape_pct : float;
    rh_post_mape_pct : float;
    rh_fired_s : float option;
    rh_swapped : bool;
  }

  type report = {
    sh_fit_seed : int;
    sh_val_seed : int;
    sh_window_ms : float;
    sh_windows : int;
    sh_perturb_pct : float;
    sh_drift_threshold_pct : float;
    sh_rails : rail_heal list;
    sh_incidents_fired : int;
    sh_swaps : int;
    sh_post_max_mape_pct : float;
  }

  let sub_trace_after (tr : Model.Trace.t) t_s =
    {
      tr with
      Model.Trace.tr_windows =
        List.filter
          (fun (w : Model.Trace.window) -> w.Model.Trace.w_t_s > t_s)
          tr.Model.Trace.tr_windows;
    }

  let run ?(fit_seed = 11) ?(val_seed = 23) ?(window = Time.ms 50)
      ?(windows = 60) ?(perturb_pct = 0.0) ?(drift_threshold_pct = 5.0)
      ?(drift_for_windows = 8) ?(calib_seed = 77) ?(calib_rounds = 12)
      ?(calib_samples = 48) () =
    if windows <= 0 then
      invalid_arg "Health.Self_heal.run: windows must be positive";
    (* reference run: record and fit the ground-truth models, then inject
       the drift by perturbing every coefficient *)
    let sys = Model.Check.scenario_sys ~seed:fit_seed in
    ignore (Model.Check.install_workload sys);
    System.start sys;
    let rc = Model.Recorder.start sys ~window () in
    System.run_for sys (window * windows);
    let fit_traces = Model.Recorder.stop rc in
    System.shutdown sys;
    let models =
      List.map
        (fun tr ->
          Model.Fit.perturb (Model.Fit.fit ~kind:Model.Fit.Per_opp tr)
            perturb_pct)
        fit_traces
    in
    (* validation run: live estimator under the drifted models, the default
       rule pack watching its mape gauges, and the recalibration responder
       closing the loop *)
    let sys = Model.Check.scenario_sys ~seed:val_seed in
    ignore (Model.Check.install_workload sys);
    System.start sys;
    let rc = Model.Recorder.start sys ~window () in
    let est = Model.Estimator.start sys ~models ~window ~drift_threshold_pct () in
    let eng = create (System.sim sys) ~period:window () in
    add_rules eng
      (default_pack ~drift_threshold_pct ~drift_for_windows sys);
    on_firing eng ~rule:"model.drift"
      (Responder.recalibrate ~recorder:rc ~estimator:est ~seed:calib_seed
         ~rounds:calib_rounds ~samples:calib_samples ());
    System.run_for sys (window * windows);
    let val_traces = Model.Recorder.stop rc in
    Model.Estimator.stop est;
    stop eng;
    System.shutdown sys;
    let fired_at rail =
      List.find_map
        (fun i ->
          if i.i_rule = "model.drift" && i.i_subject = rail then i.i_fired_s
          else None)
        (incidents eng)
    in
    let sh_rails =
      List.map
        (fun (tr : Model.Trace.t) ->
          let rail = tr.Model.Trace.tr_rail in
          let drifted =
            List.find (fun m -> m.Model.Fit.f_rail = rail) models
          in
          let pre = (Model.Fit.validate drifted tr).Model.Fit.e_mape_pct in
          let live_model = Model.Estimator.model est ~rail in
          let swapped =
            match live_model with
            | Some m -> m != drifted
            | None -> false
          in
          let post =
            match (live_model, fired_at rail) with
            | Some m, Some t_s ->
                (Model.Fit.validate m (sub_trace_after tr t_s))
                  .Model.Fit.e_mape_pct
            | Some m, None -> (Model.Fit.validate m tr).Model.Fit.e_mape_pct
            | None, _ -> pre
          in
          {
            rh_rail = rail;
            rh_pre_mape_pct = pre;
            rh_post_mape_pct = post;
            rh_fired_s = fired_at rail;
            rh_swapped = swapped;
          })
        val_traces
    in
    let report =
      {
        sh_fit_seed = fit_seed;
        sh_val_seed = val_seed;
        sh_window_ms = Time.to_sec_f window *. 1000.0;
        sh_windows = windows;
        sh_perturb_pct = perturb_pct;
        sh_drift_threshold_pct = drift_threshold_pct;
        sh_rails;
        sh_incidents_fired =
          List.fold_left (fun acc (_, n) -> acc + n) 0 (incident_counts eng);
        sh_swaps = Model.Estimator.swaps est;
        sh_post_max_mape_pct =
          List.fold_left
            (fun acc r -> Float.max acc r.rh_post_mape_pct)
            0.0 sh_rails;
      }
    in
    (report, eng)

  let json r =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Printf.bprintf b "  \"fit_seed\": %d,\n" r.sh_fit_seed;
    Printf.bprintf b "  \"val_seed\": %d,\n" r.sh_val_seed;
    Printf.bprintf b "  \"window_ms\": %.3f,\n" r.sh_window_ms;
    Printf.bprintf b "  \"windows\": %d,\n" r.sh_windows;
    Printf.bprintf b "  \"perturb_pct\": %.6f,\n" r.sh_perturb_pct;
    Printf.bprintf b "  \"drift_threshold_pct\": %.6f,\n"
      r.sh_drift_threshold_pct;
    Buffer.add_string b "  \"rails\": [\n";
    let n = List.length r.sh_rails in
    List.iteri
      (fun k rh ->
        Printf.bprintf b
          "    { \"name\": \"%s\", \"pre_mape_pct\": %.6f, \"post_mape_pct\": \
           %.6f, \"fired_s\": %s, \"swapped\": %b }%s\n"
          rh.rh_rail rh.rh_pre_mape_pct rh.rh_post_mape_pct
          (match rh.rh_fired_s with
          | None -> "null"
          | Some s -> Printf.sprintf "%.6f" s)
          rh.rh_swapped
          (if k = n - 1 then "" else ","))
      r.sh_rails;
    Buffer.add_string b "  ],\n";
    Printf.bprintf b "  \"incidents_fired\": %d,\n" r.sh_incidents_fired;
    Printf.bprintf b "  \"swaps\": %d,\n" r.sh_swaps;
    Printf.bprintf b "  \"post_max_mape_pct\": %.6f\n" r.sh_post_max_mape_pct;
    Buffer.add_string b "}\n";
    Buffer.contents b
end
