(** Shared plumbing for the paper's experiments. *)

module System = Psbox_kernel.System

val measure_rate :
  System.t -> System.app -> key:string -> Psbox_engine.Time.span -> float
(** Advance the simulation by a span and return the app's counter rate per
    second over it. *)

type job = {
  t0 : Psbox_engine.Time.t;
  t1 : Psbox_engine.Time.t;
  dur_s : float;
  rail_mj : float;  (** full rail energy over the job *)
  psbox_mj : float option;  (** virtual-meter energy, when a psbox was used *)
}

val run_job :
  System.t ->
  rail:Psbox_hw.Power_rail.t ->
  main:System.app ->
  ?psbox:Psbox_core.Psbox.t ->
  ?timeout:Psbox_engine.Time.span ->
  unit ->
  job
(** Start the system (if needed), enter the psbox (when given), run until
    the main app's tasks exit, read the meters, leave the psbox. *)

(** {1 Prior-approach attribution per hardware class} *)

val cpu_usages : System.t -> Psbox_accounting.Usage.span list
(** Finalizes the scheduler trace — call after the measurement window. *)

val accel_usages : Psbox_kernel.Accel_driver.t -> Psbox_accounting.Usage.span list

val wifi_usages : System.t -> Psbox_accounting.Usage.span list
(** Airtime spans from the NIC driver's dispatch log. *)

val attributed_mj :
  Psbox_accounting.Split.result -> app:System.app -> float

val pct : float -> float -> float
(** [pct reference x] is the signed percentage difference of [x] from
    [reference]. *)

(** {1 Value formatters}

    Every experiment renders quantities through these so the reports agree
    on precision and unit spelling. They exist for consistency, not
    abstraction: each one is a fixed [Printf] format. *)

val fmt_w : ?dp:int -> float -> string
(** Watts, [dp] decimals (default 2): ["1.40 W"]. *)

val fmt_s : float -> string
(** Seconds, 3 decimals: ["3.142 s"]. *)

val fmt_ms : ?dp:int -> ?tight:bool -> float -> string
(** Milliseconds, [dp] decimals (default 1); [tight] drops the space
    before the unit (["8.0ms"] vs ["8.0 ms"]). *)

val fmt_us : float -> string
(** Microseconds, no decimals: ["250 us"]. *)

val fmt_us_delta : float -> string
(** Signed microsecond difference: ["+250 us"]. *)

val fmt_mj : float -> string
(** Millijoules with a spaced unit: ["120 mJ"]. (Table cells use the tight
    {!Report.fmt_mj} instead.) *)

val fmt_pct1 : float -> string
(** Unsigned percentage, 1 decimal: ["3.5%"]. *)

val fmt_pct0_signed : float -> string
(** Signed percentage, no decimals: ["+42%"]. *)

val fmt_ratio : float -> string
(** Dimensionless ratio, 2 decimals: ["0.25"]. *)

val fmt_rate : unit:string -> float -> string
(** Per-second rate with a named unit: [fmt_rate ~unit:"units" 310.0] is
    ["310 units/s"]. *)

val fmt_attributed : alone:float -> float -> string
(** An attributed energy next to its delta vs the alone run:
    ["118mJ (+1.7%)"] — the fig6 table-cell shape. *)
