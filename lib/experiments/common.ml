open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Accel_driver = Psbox_kernel.Accel_driver
module Net_sched = Psbox_kernel.Net_sched
module Psbox = Psbox_core.Psbox
module Usage = Psbox_accounting.Usage
module W = Psbox_workloads.Workload

let measure_rate sys app ~key span =
  let c0 = System.counter app key in
  System.run_for sys span;
  (System.counter app key -. c0) /. Time.to_sec_f span

type job = {
  t0 : Time.t;
  t1 : Time.t;
  dur_s : float;
  rail_mj : float;
  psbox_mj : float option;
}

let run_job sys ~rail ~main ?psbox ?(timeout = Time.sec 30) () =
  System.start sys;
  (match psbox with Some b -> Psbox.enter b | None -> ());
  let t0 = System.now sys in
  W.run_until_idle sys ~apps:[ main ] ~timeout;
  let t1 = System.now sys in
  let psbox_mj =
    match psbox with
    | Some b ->
        let mj = Psbox.read_mj b in
        Psbox.leave b;
        Some mj
    | None -> None
  in
  {
    t0;
    t1;
    dur_s = Time.to_sec_f (t1 - t0);
    rail_mj = Psbox_hw.Power_rail.energy_j rail ~from:t0 ~until:t1 *. 1e3;
    psbox_mj;
  }

let cpu_usages sys =
  let smp = System.smp sys in
  Smp.stop smp;
  Usage.of_sched_trace
    ~cores:(Smp.cores smp)
    (Trace.to_spans (Smp.sched_trace smp))

let accel_usages driver =
  Usage.of_commands
    ~units:(Psbox_hw.Accel.units (Accel_driver.device driver))
    (Accel_driver.completed_commands driver)

let wifi_usages sys =
  Usage.of_packets (Net_sched.packet_log (System.net sys))

let attributed_mj result ~app =
  match List.assoc_opt app.System.app_id result with
  | Some j -> j *. 1e3
  | None -> 0.0

let pct reference x =
  if reference = 0.0 then 0.0 else 100.0 *. (x -. reference) /. reference

(* Value formatters shared by every experiment, so the reports agree on
   precision and unit spelling. *)

let fmt_w ?(dp = 2) w = Printf.sprintf "%.*f W" dp w
let fmt_s s = Printf.sprintf "%.3f s" s

let fmt_ms ?(dp = 1) ?(tight = false) ms =
  Printf.sprintf "%.*f" dp ms ^ if tight then "ms" else " ms"

let fmt_us us = Printf.sprintf "%.0f us" us
let fmt_us_delta us = Printf.sprintf "%+.0f us" us
let fmt_mj mj = Printf.sprintf "%.0f mJ" mj
let fmt_pct1 p = Printf.sprintf "%.1f%%" p
let fmt_pct0_signed p = Printf.sprintf "%+.0f%%" p
let fmt_ratio r = Printf.sprintf "%.2f" r
let fmt_rate ~unit r = Printf.sprintf "%.0f %s/s" r unit

let fmt_attributed ~alone mj =
  Printf.sprintf "%s (%s)" (Report.fmt_mj mj) (Report.fmt_pct (pct alone mj))
