(** Power-budget enforcement: convergence, isolation, graceful degradation
    and admission control for {!Psbox_budget.Budget} (a §6 extension — the
    control plane the paper's trustworthy accounting makes possible). *)

type result = {
  converge_err_pct : float;
      (** capped tenant's windowed mean vs its cap, percent *)
  neighbor_delta_pct : float;
      (** uncapped co-runner's completion-time change, percent *)
  sweep : (float * float * float) list;  (** cap W, measured W, units/s *)
  multi_rail : (float option * float * float * float) list;
      (** cap W ([None] = uncapped), measured W, units/s, throttle — the
          CPU+GPU+WiFi co-run where one cap drives all three subsystem
          actuators *)
}

val run : ?seed:int -> unit -> Report.t * result
