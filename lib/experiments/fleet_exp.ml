module Fleet = Psbox_fleet.Fleet

(* A population study small enough for `run all`: 64 heterogeneous devices
   through the budget scenario, sequentially (the CLI's `fleet` subcommand
   is the scaled, sharded entry point). *)
let devices = 64

let fmt_j v = Printf.sprintf "%.3f J" v
let fmt_share v = Printf.sprintf "%.1f%%" (v *. 100.0)

let dist_row label (d : Fleet.dist) =
  [ label; fmt_j d.p50; fmt_j d.p95; fmt_j d.p99; fmt_j d.mean ]

let run ?(seed = 42) () =
  let s = Fleet.run ~scenario:"budget" ~devices ~seed () in
  let energy_rows =
    List.map (fun (cls, d) -> dist_row cls d) s.Fleet.s_energy
    @ [ dist_row "whole machine" s.Fleet.s_total ]
  in
  let cause_rows =
    List.map (fun (c, share) -> [ c; fmt_share share ]) s.Fleet.s_cause_share
  in
  let viol = s.Fleet.s_violations in
  {
    Report.id = "fleet";
    title =
      Printf.sprintf
        "Fleet: %d heterogeneous devices, budget scenario (seed %d)" devices
        seed;
    items =
      [
        Report.Text
          "Per-device seeds and heterogeneity (rail idle floor, core count, \
           governor trip point, workload intensity, cap) derive from the \
           fleet seed by splitmix, so this population re-runs bit-for-bit \
           at any --jobs value.";
        Report.table
          ~headers:[ "energy per device"; "p50"; "p95"; "p99"; "mean" ]
          energy_rows;
        Report.table ~headers:[ "cause"; "share of fleet energy" ] cause_rows;
        Report.table
          ~headers:[ "cap violations"; "value" ]
          [
            [
              "devices with any violation";
              fmt_share s.Fleet.s_violation_rate;
            ];
            [ "violations per device p50"; Printf.sprintf "%.0f" viol.p50 ];
            [ "violations per device p99"; Printf.sprintf "%.0f" viol.p99 ];
            [ "violations per device max"; Printf.sprintf "%.0f" viol.max ];
          ];
      ];
  }
