open Psbox_engine
module System = Psbox_kernel.System
module W = Psbox_workloads.Workload
module Accel_driver = Psbox_kernel.Accel_driver
module Accel = Psbox_hw.Accel

type a_result = {
  one_instance_w : float;
  two_instances_w : float;
  doubled_w : float;
}

type b_result = {
  commands : (int * string * float * float) list;
  overlap_s : float;
}

type c_result = {
  after_idle_mj : float;
  after_busy_mj : float;
  after_idle_peak_w : float;
  after_busy_peak_w : float;
}

let busy_loop n = W.repeat n (fun _ -> [ W.Compute (Time.ms 10) ])

(* (a) one CPU-bound instance on core 0, then additionally a second instance
   on core 1, on a dual-core CPU with a single rail. *)
let run_a ?(seed = 5) () =
  let run instances =
    let sys = System.create ~seed ~cores:2 () in
    for i = 0 to instances - 1 do
      let app = System.new_app sys ~name:(Printf.sprintf "inst%d" i) in
      ignore (W.spawn sys ~app ~name:"loop" ~core:i (busy_loop 1_000_000))
    done;
    System.start sys;
    (* settle past the DVFS ramp, then measure *)
    System.run_for sys (Time.ms 300);
    let t0 = System.now sys in
    System.run_for sys (Time.sec 1);
    let t1 = System.now sys in
    let rail = Psbox_hw.Cpu.rail (System.cpu sys) in
    let w = Timeline.mean (Psbox_hw.Power_rail.timeline rail) t0 t1 in
    let series =
      Report.series_of_timeline
        ~name:(Printf.sprintf "%d instance(s)" instances)
        (Psbox_hw.Power_rail.timeline rail)
        ~from:t0 ~until:t1
    in
    System.shutdown sys;
    (w, series)
  in
  let one_w, s1 = run 1 in
  let two_w, s2 = run 2 in
  let doubled =
    { s1 with Report.s_name = "1 instance (doubled)";
      s_points = List.map (fun (t, v) -> (t, 2.0 *. v)) s1.Report.s_points }
  in
  ( { one_instance_w = one_w; two_instances_w = two_w; doubled_w = 2.0 *. one_w },
    [ s2; doubled ] )

(* (b) three GPU commands: command 1 is long; commands 2 and 3 are of the
   same type, but 2 overlaps 1 in time. *)
let run_b ?(seed = 6) () =
  let sys = System.create ~seed ~cores:2 ~gpu:true () in
  let app = System.new_app sys ~name:"gpu-app" in
  let script =
    W.repeat 1 (fun _ ->
        [
          W.Gpu_batch
            [
              W.spec ~kind:"cmd1" ~work_s:0.012 ~units:2 ~intensity:1.3 ();
              W.spec ~kind:"cmd2" ~work_s:0.006 ~units:2 ~intensity:0.9 ();
            ];
          W.Gpu_batch [ W.spec ~kind:"cmd3" ~work_s:0.006 ~units:2 ~intensity:0.9 () ];
        ])
  in
  ignore (W.spawn sys ~app ~name:"submitter" script);
  System.start sys;
  let t0 = System.now sys in
  W.run_until_idle sys ~apps:[ app ] ~timeout:(Time.sec 2);
  let t1 = System.now sys in
  let driver = System.gpu sys in
  let cmds =
    Accel_driver.completed_commands driver
    |> List.filter_map (fun c ->
           match (c.Accel.started_at, c.Accel.finished_at) with
           | Some s, Some f ->
               Some (c.Accel.id, c.Accel.kind, Time.to_sec_f s, Time.to_sec_f f)
           | _ -> None)
  in
  let overlap =
    match cmds with
    | (_, _, s1, f1) :: (_, _, s2, f2) :: _ ->
        Float.max 0.0 (Float.min f1 f2 -. Float.max s1 s2)
    | _ -> 0.0
  in
  let rail = Psbox_hw.Accel.rail (Accel_driver.device driver) in
  let series =
    Report.series_of_timeline ~name:"GPU power"
      (Psbox_hw.Power_rail.timeline rail)
      ~from:t0 ~until:t1
  in
  System.shutdown sys;
  ({ commands = cmds; overlap_s = overlap }, [ series ])

(* (c) the same burst executed after an idle period vs right after another
   busy workload: the DVFS residue changes its power. *)
let run_c ?(seed = 7) () =
  let run ~warm =
    let sys = System.create ~seed ~cores:2 () in
    let app = System.new_app sys ~name:"probe" in
    System.start sys;
    if warm then begin
      (* a heavy workload that ends right before the probe starts *)
      let heater = System.new_app sys ~name:"heater" in
      ignore (W.spawn sys ~app:heater ~name:"heat" ~core:0 (busy_loop 80));
      W.run_until_idle sys ~apps:[ heater ] ~timeout:(Time.sec 3)
    end
    else System.run_for sys (Time.sec 1);
    let t0 = System.now sys in
    ignore
      (W.spawn sys ~app ~name:"probe" ~core:0
         (W.repeat 40 (fun _ -> [ W.Compute (Time.ms 8); W.Sleep (Time.ms 2) ])));
    W.run_until_idle sys ~apps:[ app ] ~timeout:(Time.sec 3);
    let t1 = System.now sys in
    let rail = Psbox_hw.Cpu.rail (System.cpu sys) in
    let tl = Psbox_hw.Power_rail.timeline rail in
    let mj = Timeline.integrate tl t0 t1 *. 1e3 in
    let peak =
      List.fold_left
        (fun acc (_, _, v) -> Float.max acc v)
        0.0
        (Timeline.map_intervals tl ~from:t0 ~until:t1 ~f:(fun a b v -> (a, b, v)))
    in
    let label = if warm then "exec after busy" else "exec after idle" in
    let series =
      { (Report.series_of_timeline ~name:label tl ~from:t0 ~until:t1) with
        Report.s_points =
          (Report.series_of_timeline ~name:label tl ~from:t0 ~until:t1)
            .Report.s_points
          |> List.map (fun (t, v) -> (t -. Time.to_sec_f t0, v)) }
    in
    System.shutdown sys;
    (mj, peak, series)
  in
  let idle_mj, idle_peak, s_idle = run ~warm:false in
  let busy_mj, busy_peak, s_busy = run ~warm:true in
  ( {
      after_idle_mj = idle_mj;
      after_busy_mj = busy_mj;
      after_idle_peak_w = idle_peak;
      after_busy_peak_w = busy_peak;
    },
    [ s_busy; s_idle ] )

let run ?(seed = 5) () =
  let a, sa = run_a ~seed ()
  and b, sb = run_b ~seed:(seed + 1) ()
  and c, sc = run_c ~seed:(seed + 2) () in
  let report =
    {
      Report.id = "fig3";
      title = "Examples of power entanglement (paper Fig. 3)";
      items =
        [
          Report.Text
            (Printf.sprintf
               "(a) spatial concurrency: 1 instance %s; 2 instances %s; \
                naive 2x extrapolation %s (off by %s)"
               (Common.fmt_w a.one_instance_w)
               (Common.fmt_w a.two_instances_w)
               (Common.fmt_w a.doubled_w)
               (Common.fmt_pct0_signed (Common.pct a.two_instances_w a.doubled_w)));
          Report.chart ~label:"(a) total CPU power" sa;
          Report.Text
            (Printf.sprintf
               "(b) blurry request boundary: commands 2 and 3 are the same \
                type, but command 2 overlaps command 1 for %s — their \
                power impacts entangle" (Common.fmt_ms (b.overlap_s *. 1e3)));
          Report.table
            ~headers:[ "cmd"; "kind"; "start"; "finish" ]
            (List.map
               (fun (id, kind, s, f) ->
                 [ string_of_int id; kind;
                   Common.fmt_ms ~dp:2 ~tight:true (s *. 1e3);
                   Common.fmt_ms ~dp:2 ~tight:true (f *. 1e3) ])
               b.commands);
          Report.chart ~label:"(b) GPU power" sb;
          Report.Text
            (Printf.sprintf
               "(c) lingering power state: the same burst costs %s after \
                idle vs %s right after a busy period (peaks %s vs %s)"
               (Common.fmt_mj c.after_idle_mj)
               (Common.fmt_mj c.after_busy_mj)
               (Common.fmt_ratio c.after_idle_peak_w)
               (Common.fmt_w c.after_busy_peak_w));
          Report.chart ~label:"(c) CPU power of the probe burst" sc;
        ];
    }
  in
  (report, (a, b, c))
