open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Accel_driver = Psbox_kernel.Accel_driver
module Net_sched = Psbox_kernel.Net_sched
module Psbox = Psbox_core.Psbox
module Cpu_apps = Psbox_workloads.Cpu_apps
module Gpu_apps = Psbox_workloads.Gpu_apps
module Dsp_apps = Psbox_workloads.Dsp_apps
module Wifi_apps = Psbox_workloads.Wifi_apps

type hw_impact = {
  p_hw : string;
  p_lat_before_us : float;
  p_lat_after_us : float;
  p_total_loss_pct : float;
}

let mean_of = function [] -> 0.0 | l -> Psbox_engine.Stats.mean (Array.of_list l)

(* Run a co-run scenario for [window], optionally with the first app
   sandboxed; return (mean request latency of the observed app in us, total
   work rate). The latency metric follows the app that the psbox encloses —
   balloon switches are what it pays for. *)
let scenario ~make_sys ~spawn_all ~target ~latencies_of ~total_of ~sandbox
    ~window ~seed =
  let sys = make_sys ~seed in
  let apps = spawn_all sys in
  let star = List.hd apps in
  System.start sys;
  let box =
    if sandbox then begin
      let b = Psbox.create sys ~app:star.System.app_id ~hw:[ target ] in
      Psbox.enter b;
      Some b
    end
    else None
  in
  System.run_for sys (Time.ms 500);
  let mark = total_of sys apps in
  let lat_mark = List.length (latencies_of sys star) in
  System.run_for sys window;
  let total = (total_of sys apps -. mark) /. Time.to_sec_f window in
  let lats = latencies_of sys star in
  let fresh = List.filteri (fun i _ -> i >= lat_mark) lats in
  (match box with Some b -> Psbox.leave b | None -> ());
  System.shutdown sys;
  (mean_of fresh, total)

let impact ~hw ~make_sys ~spawn_all ~target ~latencies_of ~total_of ~window
    ~seed =
  let go sandbox =
    scenario ~make_sys ~spawn_all ~target ~latencies_of ~total_of ~sandbox
      ~window ~seed
  in
  let lat0, tot0 = go false in
  let lat1, tot1 = go true in
  {
    p_hw = hw;
    p_lat_before_us = lat0;
    p_lat_after_us = lat1;
    p_total_loss_pct = -.Common.pct tot0 tot1;
  }

let counters key sys apps =
  ignore sys;
  List.fold_left (fun acc a -> acc +. System.counter a key) 0.0 apps

let run ?(seed = 2) () =
  let cpu =
    impact ~hw:"CPU" ~seed
      ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ())
      ~spawn_all:(fun sys ->
        List.map
          (fun name ->
            let app = System.new_app sys ~name in
            ignore (Cpu_apps.calib3d sys ~iterations:1_000_000 app);
            app)
          [ "calib1"; "calib2"; "calib3" ])
      ~target:Psbox.Cpu
      ~latencies_of:(fun sys star ->
        Array.to_list
          (Smp.wakeup_latencies_of (System.smp sys) ~app:star.System.app_id))
      ~total_of:(counters "kb") ~window:(Time.sec 2)
  in
  let gpu =
    impact ~hw:"GPU" ~seed:(seed + 1)
      ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ~gpu:true ())
      ~spawn_all:(fun sys ->
        List.map
          (fun name ->
            let app = System.new_app sys ~name in
            ignore (Gpu_apps.cube sys ~frames:1_000_000 ~cmds:8 ~units:2 app);
            app)
          [ "cube1"; "cube2" ])
      ~target:Psbox.Gpu
      ~latencies_of:(fun sys star ->
        Accel_driver.dispatch_latencies_us (System.gpu sys)
        |> List.filter_map (fun (a, l) ->
               if a = star.System.app_id then Some l else None))
      ~total_of:(counters "cmds") ~window:(Time.sec 2)
  in
  let dsp =
    impact ~hw:"DSP" ~seed:(seed + 2)
      ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ~dsp:true ())
      ~spawn_all:(fun sys ->
        List.map
          (fun name ->
            let app = System.new_app sys ~name in
            ignore (Dsp_apps.sgemm sys ~kernels:1_000_000 app);
            app)
          [ "sgemm1"; "sgemm2"; "sgemm3" ])
      ~target:Psbox.Dsp
      ~latencies_of:(fun sys star ->
        Accel_driver.dispatch_latencies_us (System.dsp sys)
        |> List.filter_map (fun (a, l) ->
               if a = star.System.app_id then Some l else None))
      ~total_of:(counters "gflops") ~window:(Time.sec 4)
  in
  let wifi =
    impact ~hw:"WiFi" ~seed:(seed + 3)
      ~make_sys:(fun ~seed -> System.bbb ~seed ())
      ~spawn_all:(fun sys ->
        List.map
          (fun name ->
            let app = System.new_app sys ~name in
            ignore (Wifi_apps.wget sys ~kb:1_000_000 app);
            app)
          [ "wget1"; "wget2" ])
      ~target:Psbox.Wifi
      ~latencies_of:(fun sys star ->
        Net_sched.dispatch_latencies_us (System.net sys)
        |> List.filter_map (fun (a, l) ->
               if a = star.System.app_id then Some l else None))
      ~total_of:(counters "kb") ~window:(Time.sec 2)
  in
  let results = [ cpu; gpu; dsp; wifi ] in
  let rows =
    List.map
      (fun r ->
        [
          r.p_hw;
          Common.fmt_us r.p_lat_before_us;
          Common.fmt_us r.p_lat_after_us;
          Common.fmt_us_delta (r.p_lat_after_us -. r.p_lat_before_us);
          Common.fmt_pct1 r.p_total_loss_pct;
        ])
      results
  in
  let report =
    {
      Report.id = "sec62";
      title = "Performance impact (paper Sec. 6.2)";
      items =
        [
          Report.table
            ~headers:
              [ "HW"; "latency w/o psbox"; "latency w/ psbox"; "increase";
                "total throughput loss" ]
            rows;
        ];
    }
  in
  (report, results)
