(** Experiment registry: every table and figure of the paper, addressable by
    id from the CLI and the benchmark harness. *)

type entry = {
  e_id : string;
  e_title : string;
  e_run : ?seed:int -> unit -> Report.t;
      (** [?seed] overrides the experiment's built-in default seed (the
          CLI's [--seed] flag lands here); experiments without a seeded
          simulation (table5) ignore it. *)
}

val all : entry list

val find : string -> entry option

val ids : string list
