open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Accel = Psbox_hw.Accel
module Accel_driver = Psbox_kernel.Accel_driver
module W = Psbox_workloads.Workload
module Cpu_apps = Psbox_workloads.Cpu_apps
module Gpu_apps = Psbox_workloads.Gpu_apps

type confinement = {
  ab_sibling_delta_on : float;
  ab_sibling_delta_off : float;
}

type vstate = {
  ab_gap_on_pct : float;
  ab_gap_off_pct : float;
}

type window = (int * float) list

(* ---- cost confinement on the CPU ---------------------------------- *)

(* Three equal instances; sandbox one; how much does an unsandboxed
   sibling's throughput move? *)
let cpu_sibling_delta ~seed ~confine_cost =
  let sys = System.create ~seed ~cores:2 ~confine_cost () in
  let apps =
    List.init 3 (fun i ->
        let app = System.new_app sys ~name:(Printf.sprintf "calib%d" i) in
        ignore (Cpu_apps.calib3d sys ~iterations:1_000_000 app);
        app)
  in
  System.start sys;
  System.run_for sys (Time.ms 500);
  let sibling = List.hd apps and star = List.nth apps 2 in
  let rate app span =
    let c0 = System.counter app "kb" in
    System.run_for sys span;
    (System.counter app "kb" -. c0) /. Time.to_sec_f span
  in
  let before = rate sibling (Time.sec 2) in
  let box = Psbox.create sys ~app:star.System.app_id ~hw:[ Psbox.Cpu ] in
  Psbox.enter box;
  System.run_for sys (Time.ms 500);
  let after = rate sibling (Time.sec 2) in
  Psbox.leave box;
  System.shutdown sys;
  Common.pct before after

let cpu_confinement ?(seed = 31) () =
  {
    ab_sibling_delta_on = cpu_sibling_delta ~seed ~confine_cost:true;
    ab_sibling_delta_off = cpu_sibling_delta ~seed ~confine_cost:false;
  }

(* ---- cost confinement on the GPU ---------------------------------- *)

let gpu_sibling_delta ~seed ~confine_cost =
  let sys = System.create ~seed ~cores:2 ~confine_cost ~gpu:true () in
  let tri = System.new_app sys ~name:"triangle" in
  ignore (Gpu_apps.triangle sys ~batches:1_000_000 tri);
  let star = System.new_app sys ~name:"cube" in
  ignore (Gpu_apps.cube sys ~frames:1_000_000 ~cmds:8 ~units:2 star);
  System.start sys;
  System.run_for sys (Time.ms 500);
  let rate span =
    let c0 = System.counter tri "cmds" in
    System.run_for sys span;
    (System.counter tri "cmds" -. c0) /. Time.to_sec_f span
  in
  let before = rate (Time.sec 2) in
  let box = Psbox.create sys ~app:star.System.app_id ~hw:[ Psbox.Gpu ] in
  Psbox.enter box;
  System.run_for sys (Time.ms 500);
  let after = rate (Time.sec 2) in
  Psbox.leave box;
  System.shutdown sys;
  Common.pct before after

let gpu_confinement ?(seed = 37) () =
  {
    ab_sibling_delta_on = gpu_sibling_delta ~seed ~confine_cost:true;
    ab_sibling_delta_off = gpu_sibling_delta ~seed ~confine_cost:false;
  }

(* ---- power-state virtualization ------------------------------------ *)

(* An app observes a short burst of its own right after entering its psbox,
   either from a cold machine or right after a heater maxed the clock. With
   virtualization the two observations agree; without it, the heater's
   frequency lingers into the hot-entry one. *)
let observed_burst ~seed ~virtualize ~hot =
  let sys = System.create ~seed ~cores:2 () in
  let app = System.new_app sys ~name:"probe" in
  System.start sys;
  if hot then begin
    let heater = System.new_app sys ~name:"heater" in
    ignore
      (W.spawn sys ~app:heater ~name:"heat" ~core:0
         (W.repeat 60 (fun _ -> [ W.Compute (Time.ms 10) ])));
    ignore
      (W.spawn sys ~app:heater ~name:"heat2" ~core:1
         (W.repeat 60 (fun _ -> [ W.Compute (Time.ms 10) ])));
    W.run_until_idle sys ~apps:[ heater ] ~timeout:(Time.sec 3)
  end
  else System.run_for sys (Time.ms 600);
  ignore
    (W.spawn sys ~app ~name:"burst" ~core:0
       (W.repeat 10 (fun _ -> [ W.Compute (Time.ms 8); W.Sleep (Time.ms 2) ])));
  let box =
    Psbox.create ~virtualize_power_state:virtualize sys ~app:app.System.app_id
      ~hw:[ Psbox.Cpu ]
  in
  Psbox.enter box;
  W.run_until_idle sys ~apps:[ app ] ~timeout:(Time.sec 2);
  let mj = Psbox.read_mj box in
  Psbox.leave box;
  System.shutdown sys;
  mj

let state_virtualization ?(seed = 41) () =
  let gap ~virtualize =
    let cold = observed_burst ~seed ~virtualize ~hot:false in
    let hot = observed_burst ~seed ~virtualize ~hot:true in
    Float.abs (Common.pct cold hot)
  in
  { ab_gap_on_pct = gap ~virtualize:true; ab_gap_off_pct = gap ~virtualize:false }

(* ---- dispatch window vs request-boundary blur ---------------------- *)

let overlap_at_window ~seed w =
  ignore seed;
  let sim = Sim.create () in
  let dev =
    Accel.create sim ~name:"gpu" ~units:4 ~governor:Psbox_hw.Dvfs.Performance
      ~idle_w:0.08 ()
  in
  let d = Accel_driver.create sim dev ~window:w () in
  let submit work =
    Accel_driver.submit d ~app:1
      (Accel.command ~app:1 ~kind:"k" ~work_s:work ~units:2 ())
      ~on_complete:(fun _ -> ())
  in
  submit 0.012;
  submit 0.006;
  Sim.run_until sim (Time.ms 100);
  match Accel_driver.completed_commands d with
  | c1 :: c2 :: _ -> (
      match (c1.Accel.started_at, c1.Accel.finished_at,
             c2.Accel.started_at, c2.Accel.finished_at) with
      | Some s1, Some f1, Some s2, Some f2 ->
          Time.to_ms_f (max 0 (min f1 f2 - max s1 s2))
      | _ -> 0.0)
  | _ -> 0.0

let dispatch_window ?(seed = 43) () =
  List.map (fun w -> (w, overlap_at_window ~seed w)) [ 1; 2; 4 ]

let run ?(seed = 31) () =
  let cpu = cpu_confinement ~seed () in
  let gpu = gpu_confinement ~seed:(seed + 6) () in
  let vs = state_virtualization ~seed:(seed + 10) () in
  let win = dispatch_window ~seed:(seed + 12) () in
  let report =
    {
      Report.id = "ablation";
      title = "Ablations of the psbox design choices";
      items =
        [
          Report.Text
            "1. Cost confinement (loans + balloon billing): sibling \
             throughput change when another app enters its psbox.";
          Report.table
            ~headers:[ "hw"; "confinement ON"; "confinement OFF (ablated)" ]
            [
              [ "CPU (calib3d x3)"; Report.fmt_pct cpu.ab_sibling_delta_on;
                Report.fmt_pct cpu.ab_sibling_delta_off ];
              [ "GPU (triangle bystander)"; Report.fmt_pct gpu.ab_sibling_delta_on;
                Report.fmt_pct gpu.ab_sibling_delta_off ];
            ];
          Report.Text
            "2. Power-state virtualization: gap between cold-entry and \
             hot-entry psbox observations of the same burst.";
          Report.table
            ~headers:[ "virtualization"; "observation gap" ]
            [
              [ "ON"; Common.fmt_pct1 vs.ab_gap_on_pct ];
              [ "OFF (ablated)"; Common.fmt_pct1 vs.ab_gap_off_pct ];
            ];
          Report.Text
            "3. Dispatch window: command overlap (the Fig 3b blur) needs an \
             asynchronous queue deeper than 1.";
          Report.table
            ~headers:[ "window"; "overlap of cmd1/cmd2" ]
            (List.map
               (fun (w, ms) -> [ string_of_int w; Common.fmt_ms ms ])
               win);
        ];
    }
  in
  (report, (cpu, gpu, vs, win))
