open Psbox_engine
module System = Psbox_kernel.System
module W = Psbox_workloads.Workload
module Budget = Psbox_budget.Budget
module Model = Psbox_model.Model

type result = {
  converge_err_pct : float;  (** |measured - cap| / cap at convergence *)
  neighbor_delta_pct : float;  (** co-runner completion-time change *)
  sweep : (float * float * float) list;  (** cap W, measured W, units/s *)
  multi_rail : (float option * float * float * float) list;
      (** cap W, measured W, units/s, throttle *)
}

(* Two co-run tenants on a dual-core machine. Tenant A spins forever;
   tenant B has a fixed amount of work so its completion time is the
   isolation metric. The Performance governor keeps B's clock independent
   of how hard A is throttled. *)
let mk_corun_sys ~seed =
  let sys =
    System.create ~seed ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let a = System.new_app sys ~name:"tenant-a" in
  let b = System.new_app sys ~name:"tenant-b" in
  ignore
    (W.spawn sys ~app:a ~name:"spin-a"
       (W.forever (fun () -> [ W.Compute (Time.ms 2); W.Count ("units", 1.0) ])));
  ignore
    (W.spawn sys ~app:b ~name:"work-b"
       (W.repeat 1500 (fun _ -> [ W.Compute (Time.ms 2); W.Count ("units", 1.0) ])));
  (sys, a, b)

(* Fit the co-run machine's counter-driven power model on a twin run of
   the same seed, so the capped run can price admission against modeled
   draw without perturbing its own timeline. *)
let corun_models ~seed =
  let sys, _, _ = mk_corun_sys ~seed in
  System.start sys;
  let rc = Model.Recorder.start sys () in
  System.run_for sys (Time.sec 1);
  let traces = Model.Recorder.stop rc in
  System.shutdown sys;
  List.map (Model.Fit.fit ~kind:Model.Fit.Per_opp) traces

(* With [model_admission], the capped run also runs the online estimator
   (a pure observer: B's completion time is untouched) and, at 600 ms,
   books tenant A's declared 2 W reservation against its modeled draw —
   the overdeclaration shows up as budget.admission.overdeclared_w. *)
let co_run ?cap ?(model_admission = false) ~seed () =
  let models = if model_admission then corun_models ~seed else [] in
  let sys, a, b = mk_corun_sys ~seed in
  System.start sys;
  let ctl =
    match cap with
    | None -> None
    | Some watts ->
        let ctl = Budget.create sys ~machine_budget_w:3.0 () in
        Budget.set_cap ctl ~app:a.System.app_id ~watts;
        Some ctl
  in
  let est =
    match ctl with
    | Some ctl when model_admission ->
        let est = Model.Estimator.start sys ~models () in
        Budget.set_admission_estimate ctl
          (Some (fun app -> Model.Estimator.app_est_w est ~app));
        ignore
          (Sim.schedule_at (System.sim sys) (Time.ms 600) (fun () ->
               ignore (Budget.admit ctl ~app:a.System.app_id ~watts:2.0 ())));
        Some est
    | _ -> None
  in
  W.run_until_idle sys ~apps:[ b ] ~timeout:(Time.sec 20);
  let done_t = Time.to_sec_f (System.now sys) in
  let measured =
    match ctl with
    | Some c -> Budget.measured_w c ~app:a.System.app_id
    | None -> 0.0
  in
  let hist =
    match ctl with
    | Some c -> Budget.history c ~app:a.System.app_id
    | None -> []
  in
  let resv =
    match ctl with
    | Some c -> Budget.reservation c ~app:a.System.app_id
    | None -> None
  in
  Option.iter Model.Estimator.stop est;
  Option.iter Budget.stop ctl;
  System.shutdown sys;
  (done_t, measured, hist, resv)

(* Cap sweep: same tenants, but B also spins forever; after a settling
   second, measure A's draw and throughput over a 2 s window. *)
let sweep_point ~seed cap =
  let sys =
    System.create ~seed ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance ()
  in
  let a = System.new_app sys ~name:"tenant-a" in
  let b = System.new_app sys ~name:"tenant-b" in
  let spin = W.forever (fun () -> [ W.Compute (Time.ms 2); W.Count ("units", 1.0) ]) in
  ignore (W.spawn sys ~app:a ~name:"spin-a" spin);
  ignore (W.spawn sys ~app:b ~name:"spin-b" spin);
  System.start sys;
  let ctl = Budget.create sys () in
  (match cap with
  | Some watts -> Budget.set_cap ctl ~app:a.System.app_id ~watts
  | None -> ());
  System.run_for sys (Time.sec 2);
  let u0 = System.counter a "units" in
  System.run_for sys (Time.sec 2);
  let rate = (System.counter a "units" -. u0) /. 2.0 in
  let measured = Budget.measured_w ctl ~app:a.System.app_id in
  let thr = Budget.throttle ctl ~app:a.System.app_id in
  Budget.stop ctl;
  System.shutdown sys;
  (measured, rate, thr)

(* Multi-rail enforcement: each tenant burns CPU, GPU and WiFi in every
   iteration, so one cap on tenant A must reach through all three kernel
   subsystems at once — the CFS runtime quota, the accelerator submission
   rate and the TX byte rate. A throttle below 1.0 means every actuator is
   armed. (This is also the section that makes `psbox_sim --trace-out`
   record spans from all instrumented subsystems in one run.) *)
let multi_rail_point ~seed cap =
  let sys =
    System.create ~seed ~cores:2 ~cpu_governor:Psbox_hw.Dvfs.Performance
      ~gpu:true ~wifi:true ()
  in
  let a = System.new_app sys ~name:"tenant-a" in
  let b = System.new_app sys ~name:"tenant-b" in
  let burn =
    W.forever (fun () ->
        [
          W.Compute (Time.ms 2);
          W.Gpu_batch [ W.spec ~kind:"frame" ~work_s:0.003 () ];
          W.Send { socket = 1; bytes = 12_000 };
          W.Count ("units", 1.0);
        ])
  in
  ignore (W.spawn sys ~app:a ~name:"burn-a" burn);
  ignore (W.spawn sys ~app:b ~name:"burn-b" burn);
  System.start sys;
  let ctl = Budget.create sys () in
  (* With no cap requested, an unreachable one still makes the controller
     measure A's attributed draw without ever throttling. *)
  let watts = match cap with Some w -> w | None -> 1000.0 in
  Budget.set_cap ctl ~app:a.System.app_id ~watts;
  System.run_for sys (Time.sec 2);
  let u0 = System.counter a "units" in
  System.run_for sys (Time.sec 2);
  let rate = (System.counter a "units" -. u0) /. 2.0 in
  let measured = Budget.measured_w ctl ~app:a.System.app_id in
  let thr = Budget.throttle ctl ~app:a.System.app_id in
  Budget.stop ctl;
  System.shutdown sys;
  (measured, rate, thr)

(* Admission control needs no simulation time: it is bookkeeping over
   declared demand. *)
let admission_demo () =
  let sys = System.create () in
  let ctl = Budget.create sys ~machine_budget_w:3.0 () in
  let verdict = function
    | Budget.Admitted -> "admitted"
    | Budget.Queued -> "queued"
    | Budget.Rejected -> "rejected"
  in
  let row name app watts queue =
    let v = Budget.admit ctl ~app ~watts ~queue () in
    [ name; Common.fmt_w ~dp:1 watts; verdict v ]
  in
  (* sequenced lets: list elements would be evaluated right-to-left *)
  let ra = row "A" 1 2.0 false in
  let rb = row "B" 2 0.9 false in
  let rc = row "C" 3 1.5 true in
  let rd = row "D" 4 0.2 true in
  let re = row "E" 5 5.0 false in
  let initial = [ ra; rb; rc; rd; re ] in
  (* Releasing B frees 0.9 W -- not enough for C at the head, and D (which
     would fit) must not sneak past it. Releasing A then drains both. *)
  Budget.release ctl ~app:2;
  let after_b = (Budget.admitted ctl ~app:3, Budget.admitted ctl ~app:4) in
  Budget.release ctl ~app:1;
  let after_a = (Budget.admitted ctl ~app:3, Budget.admitted ctl ~app:4) in
  Budget.stop ctl;
  System.shutdown sys;
  (initial, after_b, after_a)

let run ?(seed = 17) () =
  let cap = 0.9 in
  (* the bookkeeping demo first: the model-informed capped run below is
     then the last writer of budget.admission.overdeclared_w, so the
     metrics snapshot reports its (non-zero) overdeclaration *)
  let initial, (c_after_b, d_after_b), (c_after_a, d_after_a) =
    admission_demo ()
  in
  let t_base, _, _, _ = co_run ~seed () in
  let t_capped, measured, hist, resv =
    co_run ~cap ~model_admission:true ~seed ()
  in
  let converge_err_pct = Float.abs (measured -. cap) /. cap *. 100.0 in
  let neighbor_delta_pct = Common.pct t_base t_capped in
  let caps = [ None; Some 1.4; Some 1.0; Some 0.6; Some 0.02 ] in
  let sweep_rows =
    List.map
      (fun c ->
        let m, r, thr = sweep_point ~seed c in
        (c, m, r, thr))
      caps
  in
  let sweep =
    List.filter_map
      (function Some c, m, r, _ -> Some (c, m, r) | None, _, _, _ -> None)
      sweep_rows
  in
  let mr_rows =
    List.map
      (fun c ->
        let m, r, thr = multi_rail_point ~seed c in
        (c, m, r, thr))
      [ None; Some 1.0 ]
  in
  let result =
    { converge_err_pct; neighbor_delta_pct; sweep; multi_rail = mr_rows }
  in
  let trace =
    let pts f = List.map (fun (t, m, c) -> (Time.to_sec_f t, f m c)) hist in
    [
      { Report.s_name = "tenant-a attributed"; s_points = pts (fun m _ -> m); s_unit = "W" };
      { Report.s_name = "cap"; s_points = pts (fun _ c -> c); s_unit = "W" };
    ]
  in
  let report =
    {
      Report.id = "budget";
      title = "Power budgets: caps enforced through the kernel (Sec. 6 extension)";
      items =
        [
          Report.table
            ~headers:[ "metric"; "value" ]
            [
              [ "cap on tenant-a"; Common.fmt_w cap ];
              [ "converged windowed mean"; Common.fmt_w ~dp:3 measured ];
              [ "convergence error"; Common.fmt_pct1 converge_err_pct ];
              [ "tenant-b completion (uncapped run)"; Common.fmt_s t_base ];
              [
                "tenant-b completion (tenant-a capped)";
                Common.fmt_s t_capped;
              ];
              [ "neighbor impact"; Report.fmt_pct neighbor_delta_pct ];
            ];
          Report.chart ~label:"control-loop convergence" trace;
          Report.table
            ~headers:[ "cap"; "measured"; "throttle"; "throughput" ]
            (List.map
               (fun (c, m, r, thr) ->
                 [
                   (match c with
                   | Some c -> Common.fmt_w c
                   | None -> "none");
                   Common.fmt_w ~dp:3 m;
                   Common.fmt_ratio thr;
                   Common.fmt_rate ~unit:"units" r;
                 ])
               sweep_rows);
          Report.Text
            "Multi-rail: each tenant burns CPU, GPU and WiFi per iteration; \
             one cap on tenant-a reaches through the CFS quota, the GPU \
             submission rate and the TX byte rate at once (throttle < 1.00 \
             means all three actuators are armed).";
          Report.table
            ~headers:[ "cap"; "measured"; "throttle"; "throughput" ]
            (List.map
               (fun (c, m, r, thr) ->
                 [
                   (match c with
                   | Some c -> Common.fmt_w c
                   | None -> "none");
                   Common.fmt_w ~dp:3 m;
                   Common.fmt_ratio thr;
                   Common.fmt_rate ~unit:"units" r;
                 ])
               mr_rows);
          Report.Text
            "Model-informed admission: the capped run fits a counter-driven \
             power model (twin run, same seed), estimates tenant-a's draw \
             online, and books its 2.0 W declaration at \
             min(declared, modeled) — the gap is the overdeclaration the \
             budget.admission.overdeclared_w gauge reports.";
          Report.table
            ~headers:[ "tenant-a reservation"; "watts" ]
            (match resv with
            | Some (declared, effective) ->
                [
                  [ "declared"; Common.fmt_w ~dp:3 declared ];
                  [ "modeled (effective)"; Common.fmt_w ~dp:3 effective ];
                  [ "overdeclared"; Common.fmt_w ~dp:3 (declared -. effective) ];
                ]
            | None -> [ [ "declared"; "none" ] ]);
          Report.table
            ~headers:[ "request"; "declared"; "verdict (3.0 W machine budget)" ]
            initial;
          Report.table
            ~headers:[ "event"; "C (1.5 W, head)"; "D (0.2 W, behind C)" ]
            [
              [
                "release B (0.9 W free)";
                (if c_after_b then "admitted" else "still queued");
                (if d_after_b then "admitted" else "still queued");
              ];
              [
                "release A (2.9 W free)";
                (if c_after_a then "admitted" else "still queued");
                (if d_after_a then "admitted" else "still queued");
              ];
            ];
          Report.Text
            "The controller squeezes only the capped tenant: its windowed \
             mean settles onto the cap while the co-runner's completion \
             time is unchanged. Infeasible caps pin the throttle at its \
             floor instead of starving the app, and the admission queue \
             drains strictly head-first.";
        ];
    }
  in
  (report, result)
