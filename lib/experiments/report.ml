open Psbox_engine

type table = { headers : string list; rows : string list list }

type series = {
  s_name : string;
  s_points : (float * float) list;
  s_unit : string;
}

type item =
  | Table of table
  | Chart of { label : string; series : series list }
  | Text of string

type t = { id : string; title : string; items : item list }

let table ~headers rows = Table { headers; rows }
let chart ~label series = Chart { label; series }

let downsample_points points limit =
  let n = List.length points in
  if n <= limit then points
  else begin
    let arr = Array.of_list points in
    let step = float_of_int n /. float_of_int limit in
    List.init limit (fun i -> arr.(int_of_float (float_of_int i *. step)))
  end

let series_of_samples ~name samples =
  let points =
    Array.to_list samples
    |> List.map (fun s ->
           (Time.to_sec_f s.Psbox_meter.Sample.time, s.Psbox_meter.Sample.watts))
  in
  { s_name = name; s_points = downsample_points points 240; s_unit = "W" }

let series_of_timeline ~name tl ~from ~until =
  let period = max (Time.us 100) ((until - from) / 240) in
  let points = ref [] in
  Timeline.iter_samples tl ~period ~from ~until ~f:(fun t v ->
      points := (Time.to_sec_f t, v) :: !points);
  { s_name = name; s_points = List.rev !points; s_unit = "W" }

(* --- rendering ---------------------------------------------------- *)

let bars = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
              "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values lo hi =
  let buf = Buffer.create 128 in
  List.iter
    (fun v ->
      let frac = if hi > lo then (v -. lo) /. (hi -. lo) else 0.0 in
      let idx = max 0 (min 8 (int_of_float (frac *. 8.0 +. 0.5))) in
      Buffer.add_string buf bars.(idx))
    values;
  Buffer.contents buf

let render_series fmt s =
  match s.s_points with
  | [] -> Format.fprintf fmt "    %-24s (no data)@," s.s_name
  | points ->
      let values = List.map snd points in
      let lo = List.fold_left Float.min Float.infinity values in
      let hi = List.fold_left Float.max Float.neg_infinity values in
      let t0 = fst (List.hd points) in
      let t1 = fst (List.nth points (List.length points - 1)) in
      let display = downsample_points points 72 in
      Format.fprintf fmt "    %-24s [%s]@,    %-24s %.3g..%.3g %s over %.3g..%.3gs@,"
        s.s_name
        (sparkline (List.map snd display) lo hi)
        "" lo hi s.s_unit t0 t1

let pad n s =
  let len = String.length s in
  (* crude utf8-aware padding: count display chars, not bytes *)
  let display_len =
    let count = ref 0 in
    String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr count) s;
    !count
  in
  ignore len;
  if display_len >= n then s else s ^ String.make (n - display_len) ' '

let render_table fmt { headers; rows } =
  let ncols = List.length headers in
  let width col =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row col with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      (String.length (List.nth headers col))
      rows
  in
  let widths = List.init ncols width in
  let render_row cells =
    let padded =
      List.mapi
        (fun i w ->
          let cell = match List.nth_opt cells i with Some c -> c | None -> "" in
          pad w cell)
        widths
    in
    Format.fprintf fmt "    | %s |@," (String.concat " | " padded)
  in
  render_row headers;
  Format.fprintf fmt "    |%s|@,"
    (String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter render_row rows

let render fmt t =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "== %s: %s ==@," t.id t.title;
  List.iter
    (fun item ->
      match item with
      | Text s -> Format.fprintf fmt "  %s@," s
      | Table tbl -> render_table fmt tbl
      | Chart { label; series } ->
          Format.fprintf fmt "  %s@," label;
          List.iter (render_series fmt) series)
    t.items;
  Format.fprintf fmt "@]@."

let print t = render Format.std_formatter t
let fmt_mj mj = Printf.sprintf "%.0fmJ" mj
let fmt_pct p = Printf.sprintf "%+.1f%%" p
