open Psbox_engine
module System = Psbox_kernel.System
module Psbox = Psbox_core.Psbox
module Split = Psbox_accounting.Split
module Cpu_apps = Psbox_workloads.Cpu_apps
module Gpu_apps = Psbox_workloads.Gpu_apps
module Dsp_apps = Psbox_workloads.Dsp_apps
module Wifi_apps = Psbox_workloads.Wifi_apps

type scenario = {
  sc_label : string;
  sc_psbox_mj : float;
  sc_prior_mj : float;
}

type row = {
  row_hw : string;
  row_app : string;
  row_alone_mj : float;
  row_scenarios : scenario list;
  row_chart : Report.series list;
}

(* One measurement: build a fresh system, spawn the main app's fixed job and
   optional co-runners, run to completion; return the meters. [mode] selects
   what to observe: the raw rail (`Alone), a psbox (`Psbox) or the prior
   accounting's share (`Prior). *)
type measurement = { m_mj : float; m_series : Report.series option }

let measure ~seed ~make_sys ~rail_of ~spawn_main ~spawn_co ~psbox_target
    ~usages_of ~split_fn ~(mode : [ `Alone | `Prior | `Psbox ]) ~label () =
  let sys = make_sys ~seed in
  let main = System.new_app sys ~name:"main" in
  spawn_main sys main;
  spawn_co sys;
  let rail = rail_of sys in
  match mode with
  | `Alone | `Prior ->
      let job = Common.run_job sys ~rail ~main () in
      let mj =
        match mode with
        | `Psbox -> assert false
        | `Alone -> job.Common.rail_mj
        | `Prior ->
            let usages = usages_of sys in
            let split =
              split_fn
                (Psbox_hw.Power_rail.timeline rail)
                usages ~from:job.Common.t0 ~until:job.Common.t1
            in
            Common.attributed_mj split ~app:main
      in
      let series =
        if mode = `Alone then
          Some
            (Report.series_of_timeline ~name:label
               (Psbox_hw.Power_rail.timeline rail)
               ~from:job.Common.t0 ~until:job.Common.t1)
        else None
      in
      System.shutdown sys;
      { m_mj = mj; m_series = series }
  | `Psbox ->
      let box = Psbox.create sys ~app:main.System.app_id ~hw:[ psbox_target ] in
      System.start sys;
      Psbox.enter box;
      let t0 = System.now sys in
      Psbox_workloads.Workload.run_until_idle sys ~apps:[ main ]
        ~timeout:(Time.sec 30);
      ignore t0;
      let mj = Psbox.read_mj box in
      let series =
        Some
          (Report.series_of_samples ~name:label
             (Psbox.sample ~period:(Time.ms 1) box))
      in
      Psbox.leave box;
      System.shutdown sys;
      { m_mj = mj; m_series = series }

let build_row ~seed ~hw ~app_name ~make_sys ~rail_of ~spawn_main ~co_list
    ~psbox_target ~usages_of ?(split_fn = Split.usage_split) () =
  let measure =
    measure ~make_sys ~rail_of ~spawn_main ~psbox_target ~usages_of ~split_fn
  in
  let nobody _ = () in
  let alone =
    measure ~seed ~spawn_co:nobody ~mode:`Alone ~label:(app_name ^ " alone") ()
  in
  let charts = ref (Option.to_list alone.m_series) in
  let scenarios =
    List.mapi
      (fun i (label, spawn_co) ->
        let seed_i = seed + ((i + 1) * 101) in
        let pb =
          measure ~seed:seed_i ~spawn_co ~mode:`Psbox
            ~label:(Printf.sprintf "%s [%s] psbox" app_name label)
            ()
        in
        (match pb.m_series with Some s -> charts := !charts @ [ s ] | None -> ());
        let prior = measure ~seed:seed_i ~spawn_co ~mode:`Prior ~label () in
        { sc_label = label; sc_psbox_mj = pb.m_mj; sc_prior_mj = prior.m_mj })
      co_list
  in
  {
    row_hw = hw;
    row_app = app_name;
    row_alone_mj = alone.m_mj;
    row_scenarios = scenarios;
    row_chart = !charts;
  }

(* ---- the four rows ------------------------------------------------ *)

let cpu_row ?(seed = 11) () =
  build_row ~seed ~hw:"CPU" ~app_name:"calib3d"
    ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ())
    ~rail_of:(fun sys -> Psbox_hw.Cpu.rail (System.cpu sys))
    ~spawn_main:(fun sys main ->
      ignore (Cpu_apps.calib3d sys ~iterations:100 ~threads:1 main))
    ~co_list:
      [
        ( "w/ body",
          fun sys ->
            ignore
              (Cpu_apps.bodytrack sys ~frames:1_000_000 ~threads:1
                 (System.new_app sys ~name:"body")) );
        ( "w/ dedup",
          fun sys ->
            ignore
              (Cpu_apps.dedup sys ~chunks:1_000_000 ~threads:1
                 (System.new_app sys ~name:"dedup")) );
      ]
    ~psbox_target:Psbox.Cpu ~usages_of:Common.cpu_usages ()

let dsp_row ?(seed = 23) () =
  build_row ~seed ~hw:"DSP" ~app_name:"dgemm"
    ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ~dsp:true ())
    ~rail_of:(fun sys ->
      Psbox_hw.Accel.rail (Psbox_kernel.Accel_driver.device (System.dsp sys)))
    ~spawn_main:(fun sys main -> ignore (Dsp_apps.dgemm sys ~kernels:16 main))
    ~co_list:
      [
        ( "w/ sgemm",
          fun sys ->
            ignore (Dsp_apps.sgemm sys ~kernels:1_000_000 (System.new_app sys ~name:"sgemm")) );
        ( "w/ monte+sgemm",
          fun sys ->
            ignore (Dsp_apps.monte sys ~kernels:1_000_000 (System.new_app sys ~name:"monte"));
            ignore (Dsp_apps.sgemm sys ~kernels:1_000_000 (System.new_app sys ~name:"sgemm")) );
      ]
    ~psbox_target:Psbox.Dsp
    ~usages_of:(fun sys -> Common.accel_usages (System.dsp sys))
    ()

let gpu_row ?(seed = 37) () =
  build_row ~seed ~hw:"GPU" ~app_name:"browser"
    ~make_sys:(fun ~seed -> System.create ~seed ~cores:2 ~gpu:true ())
    ~rail_of:(fun sys ->
      Psbox_hw.Accel.rail (Psbox_kernel.Accel_driver.device (System.gpu sys)))
    ~spawn_main:(fun sys main -> ignore (Gpu_apps.browser sys ~pages:2 main))
    ~co_list:
      [
        ( "w/ magic",
          fun sys ->
            ignore (Gpu_apps.magic sys ~frames:1_000_000 (System.new_app sys ~name:"magic")) );
        ( "w/ triangle",
          fun sys ->
            ignore
              (Gpu_apps.triangle sys ~batches:1_000_000 (System.new_app sys ~name:"triangle")) );
      ]
    ~psbox_target:Psbox.Gpu
    ~usages_of:(fun sys -> Common.accel_usages (System.gpu sys))
    ()

let wifi_row ?(seed = 53) () =
  build_row ~seed ~hw:"WiFi" ~app_name:"browser"
    ~make_sys:(fun ~seed -> System.bbb ~seed ())
    ~rail_of:(fun sys ->
      Psbox_hw.Wifi.rail (Psbox_kernel.Net_sched.nic (System.net sys)))
    ~spawn_main:(fun sys main -> ignore (Wifi_apps.browser sys ~objects:6 main))
    ~co_list:
      [
        ( "w/ scp",
          fun sys ->
            ignore (Wifi_apps.scp sys ~kb:1_000_000 (System.new_app sys ~name:"scp")) );
        ( "w/ wget",
          fun sys ->
            ignore (Wifi_apps.wget sys ~kb:1_000_000 (System.new_app sys ~name:"wget")) );
      ]
    ~psbox_target:Psbox.Wifi ~usages_of:Common.wifi_usages
    ~split_fn:(Split.windowed_by_count ?window:None) ()

let run ?(seed = 1) () =
  let rows =
    [
      cpu_row ~seed:(seed + 10) ();
      dsp_row ~seed:(seed + 20) ();
      gpu_row ~seed:(seed + 30) ();
      wifi_row ~seed:(seed + 40) ();
    ]
  in
  let table_rows =
    List.concat_map
      (fun row ->
        List.map
          (fun sc ->
            [
              row.row_hw;
              Printf.sprintf "%s %s" row.row_app sc.sc_label;
              Report.fmt_mj row.row_alone_mj;
              Common.fmt_attributed ~alone:row.row_alone_mj sc.sc_psbox_mj;
              Common.fmt_attributed ~alone:row.row_alone_mj sc.sc_prior_mj;
            ])
          row.row_scenarios)
      rows
  in
  let charts =
    List.map
      (fun row ->
        Report.chart
          ~label:(Printf.sprintf "%s power traces (%s)" row.row_hw row.row_app)
          row.row_chart)
      rows
  in
  let report =
    {
      Report.id = "fig6";
      title = "Elimination of power entanglement (paper Fig. 6)";
      items =
        [
          Report.Text
            "Energy of the power-aware app per fixed job; deltas vs the \
             app running alone. psbox stays consistent; the prior \
             usage-based accounting swings.";
          Report.table
            ~headers:[ "HW"; "scenario"; "alone"; "psbox"; "prior approach" ]
            table_rows;
        ]
        @ charts;
    }
  in
  (report, rows)
