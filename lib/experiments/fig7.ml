open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Psbox = Psbox_core.Psbox
module Accel_driver = Psbox_kernel.Accel_driver
module Accel = Psbox_hw.Accel
module Cpu_apps = Psbox_workloads.Cpu_apps
module Dsp_apps = Psbox_workloads.Dsp_apps
module W = Psbox_workloads.Workload

type result = {
  cpu_balloon_count : int;
  cpu_forced_idle_ms : float;
  dsp_balloon_count : int;
  dsp_overlap_wo_psbox : bool;
  dsp_overlap_w_psbox : bool;
}

(* Render a per-core occupancy strip: one character per time slot, the
   symbol of the app running there ('.' idle, '#' balloon-forced idle). *)
let schedule_strips ~cores ~symbols spans ~from ~until ~slots =
  let slot_span = max 1 ((until - from) / slots) in
  let strips = Array.make cores (Bytes.make slots '.') in
  for core = 0 to cores - 1 do
    strips.(core) <- Bytes.make slots '.'
  done;
  List.iter
    (fun s ->
      let core, app = s.Trace.tag in
      let symbol =
        if app = -1 then '.'
        else if app = -2 then '#'
        else
          match List.assoc_opt app symbols with Some c -> c | None -> '?'
      in
      if core >= 0 && core < cores then begin
        let k0 = max 0 ((s.Trace.start - from) / slot_span) in
        let k1 = min (slots - 1) ((s.Trace.stop - from) / slot_span) in
        for k = k0 to k1 do
          Bytes.set strips.(core) k symbol
        done
      end)
    spans;
  Array.to_list (Array.mapi (fun core b ->
      Printf.sprintf "core%d [%s]" core (Bytes.to_string b)) strips)

let cpu_part ~seed ~with_psbox =
  let sys = System.create ~seed ~cores:2 () in
  let calib = System.new_app sys ~name:"calib3d" in
  let body = System.new_app sys ~name:"body" in
  let others = System.new_app sys ~name:"others" in
  ignore (Cpu_apps.calib3d sys ~iterations:1_000_000 calib);
  ignore (Cpu_apps.bodytrack sys ~frames:1_000_000 ~threads:1 body);
  ignore (Cpu_apps.dedup sys ~chunks:1_000_000 ~threads:1 others);
  System.start sys;
  let box =
    if with_psbox then begin
      let b = Psbox.create sys ~app:calib.System.app_id ~hw:[ Psbox.Cpu ] in
      Psbox.enter b;
      Some b
    end
    else None
  in
  System.run_for sys (Time.ms 100);
  let t0 = System.now sys in
  System.run_for sys (Time.ms 150);
  let t1 = System.now sys in
  let excl_ms, balloon_count =
    match box with
    | Some b ->
        (Psbox.exclusive_us b /. 1e3, List.length (Psbox.exclusive_intervals b))
    | None -> (0.0, 0)
  in
  (match box with Some b -> Psbox.leave b | None -> ());
  Smp.stop (System.smp sys);
  let spans = Trace.to_spans (Smp.sched_trace (System.smp sys)) in
  let forced_idle_ms =
    List.fold_left
      (fun acc s ->
        let _, app = s.Trace.tag in
        if app = -2 then
          acc
          +. Time.to_ms_f (min s.Trace.stop t1 - max s.Trace.start t0)
        else acc)
      0.0
      (List.filter (fun s -> s.Trace.stop > t0 && s.Trace.start < t1) spans)
  in
  let strips =
    schedule_strips ~cores:2
      ~symbols:
        [ (calib.System.app_id, 'C'); (body.System.app_id, 'b');
          (others.System.app_id, 'o') ]
      spans ~from:t0 ~until:t1 ~slots:72
  in
  let rail_series =
    Report.series_of_timeline
      ~name:(if with_psbox then "CPU power w/ psbox" else "CPU power w/o psbox")
      (Psbox_hw.Power_rail.timeline (Psbox_hw.Cpu.rail (System.cpu sys)))
      ~from:t0 ~until:t1
  in
  ignore excl_ms;
  System.shutdown sys;
  (strips, rail_series, forced_idle_ms, balloon_count)

let commands_overlap cmds ~main_app =
  List.exists
    (fun c ->
      c.Accel.app = main_app
      && List.exists
           (fun c' ->
             c'.Accel.app <> main_app
             &&
             match (c.Accel.started_at, c.Accel.finished_at,
                    c'.Accel.started_at, c'.Accel.finished_at) with
             | Some s, Some f, Some s', Some f' -> min f f' > max s s'
             | _ -> false)
           cmds)
    cmds

let dsp_part ~seed ~with_psbox =
  let sys = System.create ~seed ~cores:2 ~dsp:true () in
  let dgemm = System.new_app sys ~name:"dgemm" in
  let sgemm = System.new_app sys ~name:"sgemm" in
  let monte = System.new_app sys ~name:"monte" in
  ignore (Dsp_apps.dgemm sys ~kernels:1_000_000 dgemm);
  ignore (Dsp_apps.sgemm sys ~kernels:1_000_000 sgemm);
  ignore (Dsp_apps.monte sys ~kernels:1_000_000 monte);
  System.start sys;
  let box =
    if with_psbox then begin
      let b = Psbox.create sys ~app:dgemm.System.app_id ~hw:[ Psbox.Dsp ] in
      Psbox.enter b;
      Some b
    end
    else None
  in
  System.run_for sys (Time.ms 200);
  let t0 = System.now sys in
  System.run_for sys (Time.sec 3);
  let t1 = System.now sys in
  let driver = System.dsp sys in
  let cmds =
    Accel_driver.completed_commands driver
    |> List.filter (fun c ->
           match c.Accel.started_at with
           | Some s -> s >= t0 && s <= t1
           | None -> false)
  in
  let balloon_count =
    List.length
      (List.filter
         (fun (s, _) -> s >= t0 && s <= t1)
         (Accel_driver.balloon_intervals driver))
  in
  let rows =
    List.filteri (fun i _ -> i < 18) cmds
    |> List.map (fun c ->
           let s = match c.Accel.started_at with Some s -> s | None -> 0 in
           let f = match c.Accel.finished_at with Some f -> f | None -> 0 in
           [
             string_of_int c.Accel.id;
             (if c.Accel.app = dgemm.System.app_id then "dgemm*"
              else if c.Accel.app = sgemm.System.app_id then "sgemm"
              else "monte");
             Common.fmt_ms ~tight:true (Time.to_ms_f (s - t0));
             Common.fmt_ms ~tight:true (Time.to_ms_f (f - t0));
           ])
  in
  let overlap = commands_overlap cmds ~main_app:dgemm.System.app_id in
  let series =
    Report.series_of_timeline
      ~name:(if with_psbox then "DSP power w/ psbox" else "DSP power w/o psbox")
      (Psbox_hw.Power_rail.timeline
         (Psbox_hw.Accel.rail (Accel_driver.device driver)))
      ~from:t0 ~until:t1
  in
  (match box with Some b -> Psbox.leave b | None -> ());
  System.shutdown sys;
  (rows, series, overlap, balloon_count)

let run ?(seed = 9) () =
  let strips_wo, cpu_series_wo, _, _ = cpu_part ~seed ~with_psbox:false in
  let strips_w, cpu_series_w, forced_idle, cpu_balloons =
    cpu_part ~seed ~with_psbox:true
  in
  let rows_wo, dsp_series_wo, overlap_wo, _ = dsp_part ~seed ~with_psbox:false in
  let rows_w, dsp_series_w, overlap_w, balloons_w = dsp_part ~seed ~with_psbox:true in
  let result =
    {
      cpu_balloon_count = cpu_balloons;
      cpu_forced_idle_ms = forced_idle;
      dsp_balloon_count = balloons_w;
      dsp_overlap_wo_psbox = overlap_wo;
      dsp_overlap_w_psbox = overlap_w;
    }
  in
  let txt s = Report.Text s in
  let report =
    {
      Report.id = "fig7";
      title = "Resource multiplexing before/after psbox (paper Fig. 7)";
      items =
        [
          txt "(a) dual-core CPU schedule w/o psbox (C=calib3d b=bodytrack o=others .=idle)";
        ]
        @ List.map txt strips_wo
        @ [ Report.chart ~label:"" [ cpu_series_wo ] ]
        @ [
            txt
              (Printf.sprintf
                 "(b) w/ psbox: calib3d* runs in spatial balloons (#=forced \
                  idle, %s of core time)" (Common.fmt_ms forced_idle));
          ]
        @ List.map txt strips_w
        @ [ Report.chart ~label:"" [ cpu_series_w ] ]
        @ [
            txt "(c) DSP commands w/o psbox: commands overlap freely";
            Report.table ~headers:[ "cmd"; "app"; "start"; "finish" ] rows_wo;
            Report.chart ~label:"" [ dsp_series_wo ];
            txt
              (Printf.sprintf
                 "(d) DSP commands w/ psbox: dgemm*'s commands execute in \
                  temporal balloons (%d balloons; foreign overlap: %b)"
                 balloons_w overlap_w);
            Report.table ~headers:[ "cmd"; "app"; "start"; "finish" ] rows_w;
            Report.chart ~label:"" [ dsp_series_w ];
          ];
    }
  in
  (report, result)
