(** Registry wrapper for the fleet subsystem: renders a small sequential
    fleet (64 devices, budget scenario) as a report so `run all` exercises
    the population path. The scaled, sharded entry point is the CLI's
    [fleet] subcommand. *)

val run : ?seed:int -> unit -> Report.t
