type entry = {
  e_id : string;
  e_title : string;
  e_run : unit -> Report.t;
}

let all =
  [
    {
      e_id = "fig3";
      e_title = "Examples of power entanglement";
      e_run = (fun () -> fst (Fig3.run ()));
    };
    {
      e_id = "sidechan";
      e_title = "GPU power side channel (Sec. 2.5)";
      e_run = (fun () -> fst (Sidechan.run ()));
    };
    {
      e_id = "table5";
      e_title = "Benchmark roster (Fig. 5)";
      e_run = (fun () -> Table5.run ());
    };
    {
      e_id = "fig6";
      e_title = "Elimination of power entanglement";
      e_run = (fun () -> fst (Fig6.run ()));
    };
    {
      e_id = "fig7";
      e_title = "Resource multiplexing before/after psbox";
      e_run = (fun () -> fst (Fig7.run ()));
    };
    {
      e_id = "sec62";
      e_title = "Performance impact";
      e_run = (fun () -> fst (Perf_impact.run ()));
    };
    {
      e_id = "fig8";
      e_title = "Confinement of throughput loss";
      e_run = (fun () -> fst (Fig8.run ()));
    };
    {
      e_id = "contention";
      e_title = "Fairness under extreme contention (Sec. 6.3)";
      e_run = (fun () -> fst (Contention.run ()));
    };
    {
      e_id = "fig9";
      e_title = "VR use case (Fig. 9 / Sec. 6.4)";
      e_run = (fun () -> fst (Fig9.run ()));
    };
    {
      e_id = "metering";
      e_title = "Metering methods and their limits (Sec. 2.2)";
      e_run = (fun () -> fst (Metering.run ()));
    };
    {
      e_id = "lte";
      e_title = "Cellular: uncontrollable power states (Sec. 7)";
      e_run = (fun () -> fst (Lte_case.run ()));
    };
    {
      e_id = "ablation";
      e_title = "Ablations of the psbox design choices";
      e_run = (fun () -> fst (Ablation.run ()));
    };
    {
      e_id = "budget";
      e_title = "Power budgets enforced through the kernel";
      e_run = (fun () -> fst (Budget_exp.run ()));
    };
  ]

let find id = List.find_opt (fun e -> e.e_id = id) all
let ids = List.map (fun e -> e.e_id) all
