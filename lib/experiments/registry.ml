type entry = {
  e_id : string;
  e_title : string;
  e_run : ?seed:int -> unit -> Report.t;
}

(* Every entry threads the CLI's --seed straight into the experiment's own
   ?seed parameter (each has a distinct default, so `run all` still varies
   seeds across experiments when no override is given). *)
let all =
  [
    {
      e_id = "fig3";
      e_title = "Examples of power entanglement";
      e_run = (fun ?seed () -> fst (Fig3.run ?seed ()));
    };
    {
      e_id = "sidechan";
      e_title = "GPU power side channel (Sec. 2.5)";
      e_run = (fun ?seed () -> fst (Sidechan.run ?seed ()));
    };
    {
      e_id = "table5";
      e_title = "Benchmark roster (Fig. 5)";
      e_run = (fun ?seed () -> ignore seed; Table5.run ());
    };
    {
      e_id = "fig6";
      e_title = "Elimination of power entanglement";
      e_run = (fun ?seed () -> fst (Fig6.run ?seed ()));
    };
    {
      e_id = "fig7";
      e_title = "Resource multiplexing before/after psbox";
      e_run = (fun ?seed () -> fst (Fig7.run ?seed ()));
    };
    {
      e_id = "sec62";
      e_title = "Performance impact";
      e_run = (fun ?seed () -> fst (Perf_impact.run ?seed ()));
    };
    {
      e_id = "fig8";
      e_title = "Confinement of throughput loss";
      e_run = (fun ?seed () -> fst (Fig8.run ?seed ()));
    };
    {
      e_id = "contention";
      e_title = "Fairness under extreme contention (Sec. 6.3)";
      e_run = (fun ?seed () -> fst (Contention.run ?seed ()));
    };
    {
      e_id = "fig9";
      e_title = "VR use case (Fig. 9 / Sec. 6.4)";
      e_run = (fun ?seed () -> fst (Fig9.run ?seed ()));
    };
    {
      e_id = "metering";
      e_title = "Metering methods and their limits (Sec. 2.2)";
      e_run = (fun ?seed () -> fst (Metering.run ?seed ()));
    };
    {
      e_id = "lte";
      e_title = "Cellular: uncontrollable power states (Sec. 7)";
      e_run = (fun ?seed () -> fst (Lte_case.run ?seed ()));
    };
    {
      e_id = "ablation";
      e_title = "Ablations of the psbox design choices";
      e_run = (fun ?seed () -> fst (Ablation.run ?seed ()));
    };
    {
      e_id = "budget";
      e_title = "Power budgets enforced through the kernel";
      e_run = (fun ?seed () -> fst (Budget_exp.run ?seed ()));
    };
    {
      e_id = "fleet";
      e_title = "Fleet: population study over heterogeneous devices";
      e_run = (fun ?seed () -> Fleet_exp.run ?seed ());
    };
  ]

let find id = List.find_opt (fun e -> e.e_id = id) all
let ids = List.map (fun e -> e.e_id) all
