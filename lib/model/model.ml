(* Counter-driven power models: fit per-rail power models from power-state
   residency counters against the kernel energy ledger, estimate live, and
   report how wrong the model is as a first-class metric.

   The feature vectors are exactly the residencies that determine each
   rail's draw (per-OPP busy/active time, suspend/awake residency, per-level
   airtime), so a per-OPP least-squares fit recovers the hardware's power
   parameters and the only residual is float noise; the aggregate Linear
   model is the realistic degraded baseline. Everything here is a pure
   observer: attaching a sampler, recorder or estimator changes no
   simulation decision. *)

open Psbox_engine
module System = Psbox_kernel.System
module Accel_driver = Psbox_kernel.Accel_driver
module Split = Psbox_accounting.Split
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing
module Cpu = Psbox_hw.Cpu
module Accel = Psbox_hw.Accel
module Wifi = Psbox_hw.Wifi
module Dvfs = Psbox_hw.Dvfs
module Power_rail = Psbox_hw.Power_rail
module W = Psbox_workloads.Workload

let model_track = "model"
let m_drift_alarms = Tm.counter "model.drift.alarms"
let m_swaps = Tm.counter "model.swaps"

(* ------------------------------------------------------------------ *)
(* Traces: windowed (feature delta, joule delta) observations per rail  *)

module Trace = struct
  type window = {
    w_t_s : float;  (** window end, seconds since sim start *)
    w_feat : float array;  (** per-feature residency deltas; [0] is dt_s *)
    w_j : float;  (** ledger joules drawn in the window *)
  }

  type t = {
    tr_rail : string;
    tr_names : string array;  (** per-OPP feature names, [0] = "dt_s" *)
    tr_linear_names : string array;  (** collapsed (aggregate) schema *)
    tr_linear_map : int array;  (** per-OPP index -> collapsed index *)
    tr_windows : window list;  (** oldest first *)
  }
end

(* ------------------------------------------------------------------ *)
(* Samplers: cumulative residency feature vectors per rail              *)

type sampler = {
  s_rail : string;
  s_names : string array;
  s_linear_names : string array;
  s_linear_map : int array;
  s_read : unit -> float array;
  s_detach : unit -> unit;
}

(* Per-OPP busy/active residency: settle the cumulative busy/active time
   into the OPP in effect since the last settle, on every OPP change and on
   every read. Exact because the OPP is constant between changes. *)
let per_opp_residency sim dvfs ~busy ~active =
  ignore sim;
  let opps = Dvfs.opps dvfs in
  let n = Array.length opps in
  let busy_at = Array.make n 0.0 and active_at = Array.make n 0.0 in
  let last_busy = ref (busy ()) and last_active = ref (active ()) in
  let cur = ref (Dvfs.opp_index dvfs) in
  let settle idx_now =
    let b = busy () and a = active () in
    busy_at.(!cur) <- busy_at.(!cur) +. (b -. !last_busy);
    active_at.(!cur) <- active_at.(!cur) +. (a -. !last_active);
    last_busy := b;
    last_active := a;
    cur := idx_now
  in
  let sub =
    Bus.subscribe (Dvfs.changes dvfs) (fun ch ->
        settle ch.Dvfs.index_after)
  in
  let read () =
    settle !cur;
    (Array.copy busy_at, Array.copy active_at)
  in
  (read, fun () -> Bus.unsubscribe sub)

let cpu_sampler sys =
  let cpu = System.cpu sys in
  let sim = System.sim sys in
  let dvfs = Cpu.dvfs cpu in
  let opps = Dvfs.opps dvfs in
  let t0 = Sim.now sim in
  let read_opp, detach =
    per_opp_residency sim dvfs
      ~busy:(fun () -> Cpu.busy_core_seconds cpu)
      ~active:(fun () -> Cpu.active_seconds cpu)
  in
  let names =
    Array.concat
      [
        [| "dt_s" |];
        Array.map (fun o -> Printf.sprintf "busy@%dmhz_s" o.Dvfs.freq_mhz) opps;
        Array.map
          (fun o -> Printf.sprintf "active@%dmhz_s" o.Dvfs.freq_mhz)
          opps;
      ]
  in
  let n = Array.length opps in
  let linear_map =
    Array.init (Array.length names) (fun i ->
        if i = 0 then 0 else if i <= n then 1 else 2)
  in
  {
    s_rail = Power_rail.name (Cpu.rail cpu);
    s_names = names;
    s_linear_names = [| "dt_s"; "busy_s"; "active_s" |];
    s_linear_map = linear_map;
    s_read =
      (fun () ->
        let busy_at, active_at = read_opp () in
        Array.concat
          [ [| Time.to_sec_f (Sim.now sim - t0) |]; busy_at; active_at ]);
    s_detach = detach;
  }

let accel_sampler sys drv =
  let dev = Accel_driver.device drv in
  let sim = System.sim sys in
  let dvfs = Accel.dvfs dev in
  let opps = Dvfs.opps dvfs in
  let t0 = Sim.now sim in
  let read_opp, detach =
    per_opp_residency sim dvfs
      ~busy:(fun () -> Accel.busy_unit_seconds dev)
      ~active:(fun () -> Accel.active_seconds dev)
  in
  let names =
    Array.concat
      [
        [| "dt_s"; "suspended_s" |];
        Array.map (fun o -> Printf.sprintf "busy@%dmhz_s" o.Dvfs.freq_mhz) opps;
        Array.map
          (fun o -> Printf.sprintf "active@%dmhz_s" o.Dvfs.freq_mhz)
          opps;
      ]
  in
  let n = Array.length opps in
  let linear_map =
    Array.init (Array.length names) (fun i ->
        if i <= 1 then i else if i <= n + 1 then 2 else 3)
  in
  {
    s_rail = Power_rail.name (Accel.rail dev);
    s_names = names;
    s_linear_names = [| "dt_s"; "suspended_s"; "busy_s"; "active_s" |];
    s_linear_map = linear_map;
    s_read =
      (fun () ->
        let busy_at, active_at = read_opp () in
        Array.concat
          [
            [|
              Time.to_sec_f (Sim.now sim - t0); Accel.suspended_seconds dev;
            |];
            busy_at;
            active_at;
          ]);
    s_detach = detach;
  }

let wifi_sampler sys =
  let nic = Psbox_kernel.Net_sched.nic (System.net sys) in
  let sim = System.sim sys in
  let t0 = Sim.now sim in
  let levels = Wifi.tx_level_count nic in
  let names =
    Array.concat
      [
        [| "dt_s"; "awake_s" |];
        Array.init levels (fun i -> Printf.sprintf "txair.l%d_s" i);
        [| "rxair_s" |];
      ]
  in
  let linear_map =
    Array.init (Array.length names) (fun i ->
        if i <= 1 then i else if i <= levels + 1 then 2 else 3)
  in
  {
    s_rail = Power_rail.name (Wifi.rail nic);
    s_names = names;
    s_linear_names = [| "dt_s"; "awake_s"; "txair_s"; "rxair_s" |];
    s_linear_map = linear_map;
    s_read =
      (fun () ->
        Array.concat
          [
            [| Time.to_sec_f (Sim.now sim - t0); Wifi.awake_seconds nic |];
            Wifi.tx_airtime_by_level_seconds nic;
            [| Wifi.rx_airtime_seconds nic |];
          ]);
    s_detach = (fun () -> ());
  }

let samplers sys =
  [ cpu_sampler sys ]
  @ (if System.has_gpu sys then [ accel_sampler sys (System.gpu sys) ] else [])
  @ (if System.has_dsp sys then [ accel_sampler sys (System.dsp sys) ] else [])
  @ if System.has_wifi sys then [ wifi_sampler sys ] else []

(* ------------------------------------------------------------------ *)
(* Offline fitter                                                       *)

module Fit = struct
  type kind = Linear | Per_opp

  let kind_label = function Linear -> "linear" | Per_opp -> "per_opp"

  type fitted = {
    f_rail : string;
    f_kind : kind;
    f_names : string array;
    f_coeffs : float array;
  }

  (* Gaussian elimination with partial pivoting; mutates its arguments. *)
  let solve a b =
    let n = Array.length b in
    for col = 0 to n - 1 do
      let pivot = ref col in
      for row = col + 1 to n - 1 do
        if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then
          pivot := row
      done;
      if Float.abs a.(!pivot).(col) < 1e-30 then
        invalid_arg "Model.Fit: singular system";
      if !pivot <> col then begin
        let tmp = a.(col) in
        a.(col) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tmp = b.(col) in
        b.(col) <- b.(!pivot);
        b.(!pivot) <- tmp
      end;
      for row = col + 1 to n - 1 do
        let f = a.(row).(col) /. a.(col).(col) in
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (f *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (f *. b.(col))
      done
    done;
    let x = Array.make n 0.0 in
    for row = n - 1 downto 0 do
      let acc = ref b.(row) in
      for k = row + 1 to n - 1 do
        acc := !acc -. (a.(row).(k) *. x.(k))
      done;
      x.(row) <- !acc /. a.(row).(row)
    done;
    x

  (* Ridge least squares without an intercept (dt is an explicit feature,
     so an intercept would be collinear with it). The tiny ridge keeps the
     normal equations solvable when a residency column is all zero — an
     OPP never visited, a device never suspended — and pins that
     coefficient to 0 instead of failing. *)
  let lstsq ?(ridge = 1e-9) rows =
    match rows with
    | [] -> invalid_arg "Model.Fit.lstsq: no observations"
    | (f0, _) :: _ ->
        let d = Array.length f0 in
        let xtx = Array.make_matrix d d 0.0 in
        let xty = Array.make d 0.0 in
        List.iter
          (fun (f, y) ->
            if Array.length f <> d then
              invalid_arg "Model.Fit.lstsq: inconsistent dimensions";
            for i = 0 to d - 1 do
              xty.(i) <- xty.(i) +. (f.(i) *. y);
              for j = 0 to d - 1 do
                xtx.(i).(j) <- xtx.(i).(j) +. (f.(i) *. f.(j))
              done
            done)
          rows;
        for i = 0 to d - 1 do
          xtx.(i).(i) <- xtx.(i).(i) +. ridge
        done;
        solve xtx xty

  let project ~kind (trace : Trace.t) feat =
    match kind with
    | Per_opp -> feat
    | Linear ->
        let out = Array.make (Array.length trace.Trace.tr_linear_names) 0.0 in
        Array.iteri
          (fun i v ->
            let j = trace.Trace.tr_linear_map.(i) in
            out.(j) <- out.(j) +. v)
          feat;
        out

  let fit ?ridge ~kind (trace : Trace.t) =
    let rows =
      List.map
        (fun w -> (project ~kind trace w.Trace.w_feat, w.Trace.w_j))
        trace.Trace.tr_windows
    in
    let names =
      match kind with
      | Per_opp -> trace.Trace.tr_names
      | Linear -> trace.Trace.tr_linear_names
    in
    {
      f_rail = trace.Trace.tr_rail;
      f_kind = kind;
      f_names = names;
      f_coeffs = lstsq ?ridge rows;
    }

  let predict_j m feat =
    if Array.length feat <> Array.length m.f_coeffs then
      invalid_arg "Model.Fit.predict_j: dimension mismatch";
    let acc = ref 0.0 in
    Array.iteri (fun i v -> acc := !acc +. (m.f_coeffs.(i) *. v)) feat;
    !acc

  type errors = { e_mape_pct : float; e_rmse_w : float; e_max_ape_pct : float }

  let validate m (trace : Trace.t) =
    let n = ref 0 and ape = ref 0.0 and se = ref 0.0 and mx = ref 0.0 in
    List.iter
      (fun w ->
        let feat = project ~kind:m.f_kind trace w.Trace.w_feat in
        let pred = predict_j m feat in
        let dt = w.Trace.w_feat.(0) in
        if dt > 0.0 && w.Trace.w_j > 0.0 then begin
          incr n;
          let a = Float.abs (pred -. w.Trace.w_j) /. w.Trace.w_j *. 100.0 in
          ape := !ape +. a;
          if a > !mx then mx := a;
          let ew = (pred -. w.Trace.w_j) /. dt in
          se := !se +. (ew *. ew)
        end)
      trace.Trace.tr_windows;
    if !n = 0 then { e_mape_pct = 0.0; e_rmse_w = 0.0; e_max_ape_pct = 0.0 }
    else
      {
        e_mape_pct = !ape /. float_of_int !n;
        e_rmse_w = sqrt (!se /. float_of_int !n);
        e_max_ape_pct = !mx;
      }

  let perturb m pct =
    if pct = 0.0 then m
    else
      {
        m with
        f_coeffs = Array.map (fun c -> c *. (1.0 +. (pct /. 100.0))) m.f_coeffs;
      }
end

(* ------------------------------------------------------------------ *)
(* Recorder: windowed traces from a live machine                        *)

module Recorder = struct
  type rail_rec = {
    rr_s : sampler;
    mutable rr_prev_f : float array;
    mutable rr_prev_j : float;
    mutable rr_windows : Trace.window list; (* newest first *)
  }

  type t = {
    rc_sys : System.t;
    rc_rails : rail_rec list;
    rc_periodic : Sim.periodic;
    mutable rc_stopped : bool;
  }

  let tick sys rails () =
    let t_s = Time.to_sec_f (System.now sys) in
    List.iter
      (fun rr ->
        let f = rr.rr_s.s_read () in
        let j = System.rail_energy_j sys ~name:rr.rr_s.s_rail in
        let df = Array.mapi (fun i v -> v -. rr.rr_prev_f.(i)) f in
        rr.rr_windows <-
          { Trace.w_t_s = t_s; w_feat = df; w_j = j -. rr.rr_prev_j }
          :: rr.rr_windows;
        rr.rr_prev_f <- f;
        rr.rr_prev_j <- j)
      rails

  let start sys ?(window = Time.ms 50) () =
    let rails =
      List.map
        (fun s ->
          {
            rr_s = s;
            rr_prev_f = s.s_read ();
            rr_prev_j = System.rail_energy_j sys ~name:s.s_rail;
            rr_windows = [];
          })
        (samplers sys)
    in
    {
      rc_sys = sys;
      rc_rails = rails;
      rc_periodic = System.every sys window (tick sys rails);
      rc_stopped = false;
    }

  let traces_of t =
    List.map
      (fun rr ->
        {
          Trace.tr_rail = rr.rr_s.s_rail;
          tr_names = rr.rr_s.s_names;
          tr_linear_names = rr.rr_s.s_linear_names;
          tr_linear_map = rr.rr_s.s_linear_map;
          tr_windows = List.rev rr.rr_windows;
        })
      t.rc_rails

  let current t = traces_of t

  let stop t =
    if not t.rc_stopped then begin
      t.rc_stopped <- true;
      Sim.cancel_every t.rc_periodic;
      List.iter (fun rr -> rr.rr_s.s_detach ()) t.rc_rails
    end;
    traces_of t
end

(* ------------------------------------------------------------------ *)
(* Online estimator with drift detection                                *)

module Estimator = struct
  type est_rail = {
    mutable er_model : Fit.fitted;
    er_s : sampler;
    mutable er_prev_f : float array;
    mutable er_prev_j : float;
    er_ring : float array; (* recent per-window APE%, circular *)
    mutable er_ring_i : int;
    mutable er_ring_n : int;
    mutable er_latched : bool;
    er_g_est : Tm.gauge;
    er_g_mape : Tm.gauge;
    er_h_resid : Tm.histogram;
  }

  type t = {
    e_sys : System.t;
    e_window : Time.span;
    e_threshold_pct : float;
    e_rails : est_rail list;
    mutable e_periodic : Sim.periodic option;
    e_splitters : Split.live list;
    e_t0 : Time.t;
    mutable e_cum_pred_j : float;
    mutable e_cum_ledger_j : float;
    mutable e_ticks : int;
    mutable e_alarms : int;
    mutable e_swaps : int;
    mutable e_stopped : bool;
  }

  let windowed_mape er =
    if er.er_ring_n = 0 then 0.0
    else begin
      let acc = ref 0.0 in
      for i = 0 to er.er_ring_n - 1 do
        acc := !acc +. er.er_ring.(i)
      done;
      !acc /. float_of_int er.er_ring_n
    end

  let tick t () =
    t.e_ticks <- t.e_ticks + 1;
    let dt = Time.to_sec_f t.e_window in
    List.iter
      (fun er ->
        let f = er.er_s.s_read () in
        let j = System.rail_energy_j t.e_sys ~name:er.er_s.s_rail in
        let df = Array.mapi (fun i v -> v -. er.er_prev_f.(i)) f in
        let dj = j -. er.er_prev_j in
        er.er_prev_f <- f;
        er.er_prev_j <- j;
        let pred =
          Fit.predict_j er.er_model
            (Fit.project ~kind:er.er_model.Fit.f_kind
               {
                 Trace.tr_rail = er.er_s.s_rail;
                 tr_names = er.er_s.s_names;
                 tr_linear_names = er.er_s.s_linear_names;
                 tr_linear_map = er.er_s.s_linear_map;
                 tr_windows = [];
               }
               df)
        in
        t.e_cum_pred_j <- t.e_cum_pred_j +. pred;
        t.e_cum_ledger_j <- t.e_cum_ledger_j +. dj;
        Tm.set er.er_g_est (pred /. dt);
        if dj > 0.0 then begin
          let ape = Float.abs (pred -. dj) /. dj *. 100.0 in
          Tm.observe er.er_h_resid ape;
          er.er_ring.(er.er_ring_i) <- ape;
          er.er_ring_i <- (er.er_ring_i + 1) mod Array.length er.er_ring;
          if er.er_ring_n < Array.length er.er_ring then
            er.er_ring_n <- er.er_ring_n + 1
        end;
        let mape = windowed_mape er in
        Tm.set er.er_g_mape mape;
        (* drift latch: one alarm per excursion, released with hysteresis *)
        if er.er_ring_n = Array.length er.er_ring then
          if (not er.er_latched) && mape > t.e_threshold_pct then begin
            er.er_latched <- true;
            t.e_alarms <- t.e_alarms + 1;
            Tm.incr m_drift_alarms;
            if Tt.recording () then
              Tt.instant ~track:model_track ~lane:er.er_s.s_rail ~name:"drift"
                ~args:
                  [ ("mape_pct", mape); ("threshold_pct", t.e_threshold_pct) ]
                (Sim.now (System.sim t.e_sys))
          end
          else if er.er_latched && mape < 0.8 *. t.e_threshold_pct then
            er.er_latched <- false)
      t.e_rails

  let start sys ~models ?(window = Time.ms 50) ?(mape_window = 8)
      ?(drift_threshold_pct = 5.0) () =
    let from = Sim.now (System.sim sys) in
    let rails =
      List.filter_map
        (fun s ->
          match
            List.find_opt (fun m -> m.Fit.f_rail = s.s_rail) models
          with
          | None ->
              s.s_detach ();
              None
          | Some m ->
              Some
                {
                  er_model = m;
                  er_s = s;
                  er_prev_f = s.s_read ();
                  er_prev_j = System.rail_energy_j sys ~name:s.s_rail;
                  er_ring = Array.make (max 1 mape_window) 0.0;
                  er_ring_i = 0;
                  er_ring_n = 0;
                  er_latched = false;
                  er_g_est =
                    Tm.gauge (Printf.sprintf "model.rail.%s.est_w" s.s_rail);
                  er_g_mape =
                    Tm.gauge (Printf.sprintf "model.rail.%s.mape_pct" s.s_rail);
                  er_h_resid =
                    Tm.histogram
                      (Printf.sprintf "model.rail.%s.resid_pct" s.s_rail)
                      ~edges:[| 0.5; 1.0; 2.0; 5.0; 10.0; 25.0; 100.0 |];
                })
        (samplers sys)
    in
    let splitters =
      [ Split.live_cpu (System.smp sys) ~from ]
      @ (if System.has_gpu sys then [ Split.live_accel (System.gpu sys) ~from ]
         else [])
      @ (if System.has_dsp sys then [ Split.live_accel (System.dsp sys) ~from ]
         else [])
      @
      if System.has_wifi sys then [ Split.live_net (System.net sys) ~from ]
      else []
    in
    let t =
      {
        e_sys = sys;
        e_window = window;
        e_threshold_pct = drift_threshold_pct;
        e_rails = rails;
        e_periodic = None;
        e_splitters = splitters;
        e_t0 = from;
        e_cum_pred_j = 0.0;
        e_cum_ledger_j = 0.0;
        e_ticks = 0;
        e_alarms = 0;
        e_swaps = 0;
        e_stopped = false;
      }
    in
    t.e_periodic <- Some (System.every sys window (fun () -> tick t ()));
    t

  let stop t =
    if not t.e_stopped then begin
      t.e_stopped <- true;
      (match t.e_periodic with
      | Some p -> Sim.cancel_every p
      | None -> ());
      List.iter (fun er -> er.er_s.s_detach ()) t.e_rails;
      List.iter Split.live_detach t.e_splitters
    end

  let alarms t = t.e_alarms
  let ticks t = t.e_ticks
  let swaps t = t.e_swaps

  let model t ~rail =
    List.find_opt (fun er -> er.er_s.s_rail = rail) t.e_rails
    |> Option.map (fun er -> er.er_model)

  (* Hot-swap a rail's model under the live estimator: the MAPE ring and
     drift latch restart from scratch so the published mape_pct reflects
     only the new model, while the counter cursors (er_prev_f/er_prev_j)
     carry over — residency is a property of the machine, not the model. *)
  let swap_model t m =
    match
      List.find_opt (fun er -> er.er_s.s_rail = m.Fit.f_rail) t.e_rails
    with
    | None -> false
    | Some er ->
        er.er_model <- m;
        Array.fill er.er_ring 0 (Array.length er.er_ring) 0.0;
        er.er_ring_i <- 0;
        er.er_ring_n <- 0;
        er.er_latched <- false;
        t.e_swaps <- t.e_swaps + 1;
        Tm.incr m_swaps;
        if Tt.recording () then
          Tt.instant ~track:model_track ~lane:er.er_s.s_rail ~name:"swap"
            ~args:[ ("swaps", float_of_int t.e_swaps) ]
            (Sim.now (System.sim t.e_sys));
        true

  let est_w t ~rail =
    List.find_opt (fun er -> er.er_s.s_rail = rail) t.e_rails
    |> Option.map (fun er ->
           Tm.gauge_value er.er_g_est)

  (* Modeled history for one app: its attributed draw since the estimator
     started, scaled by the model's cumulative modeled/ledger ratio — the
     admission-control cross-check signal. None until the first window has
     settled, so callers fall back to declared watts. *)
  let app_est_w t ~app =
    if t.e_ticks = 0 || t.e_cum_ledger_j <= 0.0 then None
    else begin
      let until = Sim.now (System.sim t.e_sys) in
      let elapsed = Time.to_sec_f (until - t.e_t0) in
      if elapsed <= 0.0 then None
      else begin
        let cum =
          List.fold_left
            (fun acc lv ->
              match List.assoc_opt app (Split.live_read lv ~until) with
              | Some j -> acc +. j
              | None -> acc)
            0.0 t.e_splitters
        in
        let scale = t.e_cum_pred_j /. t.e_cum_ledger_j in
        Some (cum /. elapsed *. scale)
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Calibration: deterministic random search over hw parameters          *)

module Calibrate = struct
  type dim = { d_name : string; d_lo : float; d_hi : float }

  (* Shrinking-radius random search around the incumbent. Round [r] draws
     all its candidates from [Rng.derive ~seed r], so the search is a pure
     function of (seed, rounds, samples, dims, objective) — derivation
     order cannot leak in. *)
  let search ~seed ?(rounds = 10) ?(samples = 32) ~dims ~objective () =
    (match dims with [] -> invalid_arg "Model.Calibrate.search: no dims" | _ -> ());
    let dims = Array.of_list dims in
    let center = Array.map (fun d -> 0.5 *. (d.d_lo +. d.d_hi)) dims in
    let best = ref center and best_err = ref (objective center) in
    for r = 0 to rounds - 1 do
      let rng = Rng.create ~seed:(Rng.derive ~seed r) in
      let radius = 0.7 ** float_of_int r in
      for _ = 1 to samples do
        let cand =
          Array.mapi
            (fun i c ->
              let span = (dims.(i).d_hi -. dims.(i).d_lo) *. radius in
              let v = c +. Rng.uniform rng ~lo:(-.span) ~hi:span in
              Float.min dims.(i).d_hi (Float.max dims.(i).d_lo v))
            !best
        in
        let e = objective cand in
        if e < !best_err then begin
          best := cand;
          best_err := e
        end
      done
    done;
    (!best, !best_err)

  (* Calibrate a rail's hw parameters against a reference trace: the
     searched vector IS the parameter set (the "dt_s" coefficient is the
     idle floor, "busy@<f>mhz_s" the per-OPP active watts, "suspended_s"
     the suspend_w - idle_w delta, ...), and the objective is the RMSE of
     the induced model on the reference windows. *)
  let calibrate_trace ?(kind = Fit.Per_opp) ~seed ?rounds ?samples ?around
      ?(margin = 0.3) (trace : Trace.t) =
    let names =
      match kind with
      | Fit.Per_opp -> trace.Trace.tr_names
      | Fit.Linear -> trace.Trace.tr_linear_names
    in
    let rows =
      List.map
        (fun w -> (Fit.project ~kind trace w.Trace.w_feat, w.Trace.w_j))
        trace.Trace.tr_windows
    in
    let dims =
      match around with
      | Some (m : Fit.fitted) ->
          (* Recalibration: the incumbent model is wrong but not arbitrary,
             so search a tight box centered on it — the first round's center
             IS the incumbent — instead of the blind full-range box. *)
          if m.Fit.f_kind <> kind || Array.length m.Fit.f_coeffs <> Array.length names
          then
            invalid_arg "Model.Calibrate.calibrate_trace: around schema mismatch";
          Array.to_list
            (Array.mapi
               (fun i n ->
                 let c = m.Fit.f_coeffs.(i) in
                 let half = Float.max (margin *. Float.abs c) 0.05 in
                 let lo = c -. half and hi = c +. half in
                 let lo = if n = "dt_s" then Float.max 0.0 lo else lo in
                 { d_name = n; d_lo = lo; d_hi = hi })
               names)
      | None ->
          Array.to_list
            (Array.map
               (fun n ->
                 (* idle floors are non-negative; state deltas (suspend,
                    awake) may run below the idle coefficient *)
                 if n = "dt_s" then { d_name = n; d_lo = 0.0; d_hi = 3.0 }
                 else { d_name = n; d_lo = -2.0; d_hi = 6.0 })
               names)
    in
    let objective coeffs =
      let n = ref 0 and se = ref 0.0 in
      List.iter
        (fun (f, y) ->
          let acc = ref 0.0 in
          Array.iteri (fun i v -> acc := !acc +. (coeffs.(i) *. v)) f;
          let dt = f.(0) in
          if dt > 0.0 then begin
            incr n;
            let ew = (!acc -. y) /. dt in
            se := !se +. (ew *. ew)
          end)
        rows;
      if !n = 0 then 0.0 else sqrt (!se /. float_of_int !n)
    in
    let best, err = search ~seed ?rounds ?samples ~dims ~objective () in
    ( {
        Fit.f_rail = trace.Trace.tr_rail;
        f_kind = kind;
        f_names = names;
        f_coeffs = best;
      },
      err )
end

(* ------------------------------------------------------------------ *)
(* model-check: fit on one seed, validate on another                    *)

module Check = struct
  type rail_report = {
    rr_rail : string;
    rr_mape_pct : float;
    rr_rmse_w : float;
    rr_max_ape_pct : float;
    rr_linear_mape_pct : float;
    rr_coeffs : (string * float) list;
  }

  type report = {
    c_fit_seed : int;
    c_val_seed : int;
    c_window_ms : float;
    c_windows : int;
    c_perturb_pct : float;
    c_drift_threshold_pct : float;
    c_rails : rail_report list;
    c_max_mape_pct : float;
    c_drift_alarms : int;
  }

  (* The reference scenario: a dual-core machine with GPU and WiFi, one
     phased mixed app (CPU + GPU frames + bidirectional request/response
     traffic — the RX path) and one phased CPU-bursty app. The phases move
     the governors across OPPs, let the GPU autosuspend and walk the NIC
     through TX levels, tail and power-save, so every residency feature
     carries signal. *)
  let scenario_sys ~seed = System.create ~seed ~cores:2 ~gpu:true ~wifi:true ()

  let install_workload sys =
    let a = System.new_app sys ~name:"mix" in
    let b = System.new_app sys ~name:"bursty" in
    let i = ref 0 in
    ignore
      (W.spawn sys ~app:a ~name:"mix" ~core:0
         (W.forever (fun () ->
              incr i;
              match !i / 12 mod 3 with
              | 0 ->
                  [
                    W.Compute (Time.ms 4);
                    W.Gpu_batch [ W.spec ~kind:"frame" ~work_s:0.002 () ];
                    W.Request
                      {
                        socket = 1;
                        tx_bytes = 3_000;
                        rx_bytes = 16_000;
                        rtt = Time.ms 2;
                      };
                  ]
              | 1 ->
                  [
                    W.Compute (Time.ms 1);
                    W.Sleep (Time.ms 6);
                    W.Send { socket = 1; bytes = 6_000 };
                  ]
              | _ -> [ W.Sleep (Time.ms 9); W.Compute (Time.us 500) ])));
    let j = ref 0 in
    ignore
      (W.spawn sys ~app:b ~name:"bursty" ~core:1
         (W.forever (fun () ->
              incr j;
              match !j / 40 mod 2 with
              | 0 -> [ W.Compute (Time.ms 3) ]
              | _ -> [ W.Compute (Time.us 800); W.Sleep (Time.ms 7) ])));
    (a.System.app_id, b.System.app_id)

  let record_run ~seed ~window ~windows ~models ~drift_threshold_pct =
    let sys = scenario_sys ~seed in
    ignore (install_workload sys);
    System.start sys;
    let rc = Recorder.start sys ~window () in
    let est =
      match models with
      | [] -> None
      | ms -> Some (Estimator.start sys ~models:ms ~window ~drift_threshold_pct ())
    in
    System.run_for sys (window * windows);
    let traces = Recorder.stop rc in
    let alarms =
      match est with
      | None -> 0
      | Some e ->
          Estimator.stop e;
          Estimator.alarms e
    in
    System.shutdown sys;
    (traces, alarms)

  let run ?(fit_seed = 11) ?(val_seed = 23) ?(window = Time.ms 50)
      ?(windows = 40) ?(perturb_pct = 0.0) ?(drift_threshold_pct = 5.0) () =
    if windows <= 0 then invalid_arg "Model.Check.run: windows must be positive";
    let fit_traces, _ =
      record_run ~seed:fit_seed ~window ~windows ~models:[]
        ~drift_threshold_pct
    in
    let models =
      List.map
        (fun tr -> Fit.perturb (Fit.fit ~kind:Fit.Per_opp tr) perturb_pct)
        fit_traces
    in
    let linear_models =
      List.map
        (fun tr -> Fit.perturb (Fit.fit ~kind:Fit.Linear tr) perturb_pct)
        fit_traces
    in
    let val_traces, alarms =
      record_run ~seed:val_seed ~window ~windows ~models ~drift_threshold_pct
    in
    let rails =
      List.map
        (fun (tr : Trace.t) ->
          let m =
            List.find (fun m -> m.Fit.f_rail = tr.Trace.tr_rail) models
          in
          let lm =
            List.find
              (fun m -> m.Fit.f_rail = tr.Trace.tr_rail)
              linear_models
          in
          let e = Fit.validate m tr in
          let le = Fit.validate lm tr in
          {
            rr_rail = tr.Trace.tr_rail;
            rr_mape_pct = e.Fit.e_mape_pct;
            rr_rmse_w = e.Fit.e_rmse_w;
            rr_max_ape_pct = e.Fit.e_max_ape_pct;
            rr_linear_mape_pct = le.Fit.e_mape_pct;
            rr_coeffs =
              Array.to_list
                (Array.mapi
                   (fun i n -> (n, m.Fit.f_coeffs.(i)))
                   m.Fit.f_names);
          })
        val_traces
    in
    {
      c_fit_seed = fit_seed;
      c_val_seed = val_seed;
      c_window_ms = Time.to_sec_f window *. 1000.0;
      c_windows = windows;
      c_perturb_pct = perturb_pct;
      c_drift_threshold_pct = drift_threshold_pct;
      c_rails = rails;
      c_max_mape_pct =
        List.fold_left (fun acc r -> Float.max acc r.rr_mape_pct) 0.0 rails;
      c_drift_alarms = alarms;
    }

  (* Deterministic JSON: fixed field order, %.6f floats, no wall clock. *)
  let json r =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Printf.bprintf b "  \"fit_seed\": %d,\n" r.c_fit_seed;
    Printf.bprintf b "  \"val_seed\": %d,\n" r.c_val_seed;
    Printf.bprintf b "  \"window_ms\": %.3f,\n" r.c_window_ms;
    Printf.bprintf b "  \"windows\": %d,\n" r.c_windows;
    Printf.bprintf b "  \"perturb_pct\": %.6f,\n" r.c_perturb_pct;
    Printf.bprintf b "  \"drift_threshold_pct\": %.6f,\n"
      r.c_drift_threshold_pct;
    Buffer.add_string b "  \"rails\": [\n";
    let nrails = List.length r.c_rails in
    List.iteri
      (fun i rr ->
        Printf.bprintf b
          "    { \"name\": \"%s\", \"mape_pct\": %.6f, \"rmse_w\": %.6f, \
           \"max_ape_pct\": %.6f, \"linear_mape_pct\": %.6f,\n"
          rr.rr_rail rr.rr_mape_pct rr.rr_rmse_w rr.rr_max_ape_pct
          rr.rr_linear_mape_pct;
        Buffer.add_string b "      \"coeffs\": { ";
        List.iteri
          (fun j (n, c) ->
            Printf.bprintf b "\"%s\": %.6f%s" n c
              (if j = List.length rr.rr_coeffs - 1 then "" else ", "))
          rr.rr_coeffs;
        Printf.bprintf b " } }%s\n" (if i = nrails - 1 then "" else ",")
      )
      r.c_rails;
    Buffer.add_string b "  ],\n";
    Printf.bprintf b "  \"max_mape_pct\": %.6f,\n" r.c_max_mape_pct;
    Printf.bprintf b "  \"drift_alarms\": %d\n" r.c_drift_alarms;
    Buffer.add_string b "}\n";
    Buffer.contents b
end
