(** Counter-driven power models.

    Real power-aware systems rarely get to measure per-rail power directly;
    they estimate it from power-state residency counters (per-OPP busy time,
    suspend residency, airtime). This library closes that loop inside the
    simulator: {!Recorder} captures windowed counter/joule traces from a live
    machine, {!Fit} learns per-rail linear or per-OPP models by least
    squares, {!Estimator} publishes live model estimates plus residual
    telemetry and raises drift alarms when the model and the energy ledger
    part ways, {!Calibrate} recovers hardware parameters by deterministic
    random search, and {!Check} packages a fit-on-seed-A /
    validate-on-seed-B cross-check with deterministic JSON output.

    Every component is a pure observer: attaching one never changes a
    simulation decision, so experiment outputs stay byte-identical with the
    estimator enabled. *)

module System = Psbox_kernel.System

(** {1 Traces} *)

module Trace : sig
  type window = {
    w_t_s : float;  (** window end, seconds since sim start *)
    w_feat : float array;  (** per-feature residency deltas; [0] is dt_s *)
    w_j : float;  (** ledger joules drawn in the window *)
  }

  type t = {
    tr_rail : string;
    tr_names : string array;  (** per-OPP feature names, [0] = ["dt_s"] *)
    tr_linear_names : string array;  (** collapsed (aggregate) schema *)
    tr_linear_map : int array;  (** per-OPP index -> collapsed index *)
    tr_windows : window list;  (** oldest first *)
  }
end

(** {1 Offline fitting} *)

module Fit : sig
  type kind =
    | Linear  (** aggregate features (busy time regardless of OPP) *)
    | Per_opp  (** per-OPP residency features — exact for this hardware *)

  val kind_label : kind -> string

  type fitted = {
    f_rail : string;
    f_kind : kind;
    f_names : string array;
    f_coeffs : float array;  (** watts per unit of each feature *)
  }

  val lstsq : ?ridge:float -> (float array * float) list -> float array
  (** Least squares without intercept over [(features, target)] rows, with
      a tiny ridge (default [1e-9]) so all-zero columns (an OPP never
      visited) solve to ~0 instead of failing. *)

  val project : kind:kind -> Trace.t -> float array -> float array
  (** Collapse a per-OPP feature vector to the trace's aggregate schema
      ([Linear]); identity for [Per_opp]. *)

  val fit : ?ridge:float -> kind:kind -> Trace.t -> fitted

  val predict_j : fitted -> float array -> float
  (** Predicted joules for one window's (projected) feature deltas. *)

  type errors = {
    e_mape_pct : float;  (** mean absolute percentage error per window *)
    e_rmse_w : float;  (** RMSE of the implied mean power per window *)
    e_max_ape_pct : float;
  }

  val validate : fitted -> Trace.t -> errors
  (** Evaluate a model on a (held-out) trace. *)

  val perturb : fitted -> float -> fitted
  (** Scale every coefficient by [1 + pct/100] — an injected model error
      for drift-alarm and sensitivity tests. *)
end

(** {1 Recording traces from a live machine} *)

module Recorder : sig
  type t

  val start : System.t -> ?window:Psbox_engine.Time.span -> unit -> t
  (** Attach residency samplers to every rail of [sys] and snapshot
      (features, ledger joules) every [window] (default 50 ms). Pure
      observer. *)

  val current : t -> Trace.t list
  (** The windows recorded so far, one trace per rail, without detaching —
      the recorder keeps accumulating. This is what an online responder
      reads to recalibrate mid-run. *)

  val stop : t -> Trace.t list
  (** Detach and return one trace per rail. Idempotent. *)
end

(** {1 Online estimation and drift detection} *)

module Estimator : sig
  type t

  val start :
    System.t ->
    models:Fit.fitted list ->
    ?window:Psbox_engine.Time.span ->
    ?mape_window:int ->
    ?drift_threshold_pct:float ->
    unit ->
    t
  (** Every [window] (default 50 ms), predict each modelled rail's window
      energy from its counters and publish:
      [model.rail.<r>.est_w] (gauge), [model.rail.<r>.mape_pct] (gauge,
      mean over the last [mape_window] windows, default 8) and
      [model.rail.<r>.resid_pct] (histogram of per-window absolute
      percentage error). When a rail's windowed MAPE exceeds
      [drift_threshold_pct] (default 5) the estimator raises one alarm for
      the whole excursion — [model.drift.alarms] counter plus a trace
      instant on the ["model"] track — and re-arms only after the MAPE
      falls below 80% of the threshold. Rails without a model in [models]
      are left unobserved. *)

  val stop : t -> unit

  val alarms : t -> int
  (** Drift alarms raised by this estimator so far. *)

  val ticks : t -> int

  val swaps : t -> int
  (** Model hot-swaps performed on this estimator so far. *)

  val model : t -> rail:string -> Fit.fitted option
  (** The model currently estimating [rail]. *)

  val swap_model : t -> Fit.fitted -> bool
  (** Hot-swap the model for the rail named by [f_rail]: the MAPE window
      and drift latch restart from scratch (so [mape_pct] reflects only
      the new model) while the residency cursors carry over. Counts under
      [model.swaps] and emits a ["swap"] trace instant. [false] if the
      estimator observes no such rail. *)

  val est_w : t -> rail:string -> float option
  (** Latest per-window model estimate for a rail, in watts. *)

  val app_est_w : t -> app:int -> float option
  (** Modeled mean draw attributed to [app] since the estimator started:
      the app's split-attributed joules scaled by the model's cumulative
      modeled/ledger energy ratio. [None] until the first window settles.
      This is the admission-control cross-check signal
      ({!Psbox_budget.Budget.set_admission_estimate}). *)
end

(** {1 Calibration of hardware parameters} *)

module Calibrate : sig
  type dim = { d_name : string; d_lo : float; d_hi : float }

  val search :
    seed:int ->
    ?rounds:int ->
    ?samples:int ->
    dims:dim list ->
    objective:(float array -> float) ->
    unit ->
    float array * float
  (** Deterministic shrinking-radius random search: round [r] draws
      [samples] candidates around the incumbent from
      [Rng.derive ~seed r], radius [0.7^r] of each dimension's box.
      Returns the best parameter vector and its objective value. Pure in
      [(seed, rounds, samples, dims, objective)]. *)

  val calibrate_trace :
    ?kind:Fit.kind ->
    seed:int ->
    ?rounds:int ->
    ?samples:int ->
    ?around:Fit.fitted ->
    ?margin:float ->
    Trace.t ->
    Fit.fitted * float
  (** Recover a rail's power parameters from a reference trace by
      searching coefficient space directly (the coefficients {e are} the
      hardware parameters: the ["dt_s"] coefficient is the idle floor,
      ["busy@<f>mhz_s"] the per-OPP active watts, ...). Returns the
      calibrated model and its RMSE in watts.

      With [around], the box is centered on an incumbent model's
      coefficients with half-width [max (margin * |c|) 0.05] per dimension
      (default [margin] 0.3) — the online-recalibration mode: a drifted
      model is wrong but not arbitrary, and the tight box makes the
      search converge where the blind full-range box would not. *)
end

(** {1 model-check: fit/validate cross-check} *)

module Check : sig
  type rail_report = {
    rr_rail : string;
    rr_mape_pct : float;  (** per-OPP model, held-out seed *)
    rr_rmse_w : float;
    rr_max_ape_pct : float;
    rr_linear_mape_pct : float;  (** aggregate-model baseline *)
    rr_coeffs : (string * float) list;
  }

  type report = {
    c_fit_seed : int;
    c_val_seed : int;
    c_window_ms : float;
    c_windows : int;
    c_perturb_pct : float;
    c_drift_threshold_pct : float;
    c_rails : rail_report list;
    c_max_mape_pct : float;  (** worst per-OPP rail MAPE *)
    c_drift_alarms : int;
  }

  val scenario_sys : seed:int -> System.t
  (** The reference machine: 2 cores, GPU, WiFi. *)

  val install_workload : System.t -> int * int
  (** Install the phased mixed + bursty apps (returns their app ids). The
      phases sweep DVFS OPPs, GPU autosuspend, NIC TX levels and the RX
      path so every residency feature carries signal. *)

  val run :
    ?fit_seed:int ->
    ?val_seed:int ->
    ?window:Psbox_engine.Time.span ->
    ?windows:int ->
    ?perturb_pct:float ->
    ?drift_threshold_pct:float ->
    unit ->
    report
  (** Record the scenario under [fit_seed], fit per-OPP and linear models,
      optionally perturb them by [perturb_pct], then validate offline and
      online (estimator + drift detection) on a fresh [val_seed] run. *)

  val json : report -> string
  (** Deterministic JSON (fixed field order, fixed precision). *)
end
