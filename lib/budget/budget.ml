open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Accel_driver = Psbox_kernel.Accel_driver
module Net_sched = Psbox_kernel.Net_sched
module Split = Psbox_accounting.Split
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing

let budget_track = "budget"
let m_ticks = Tm.counter "budget.ticks"

(* Machine-wide cap-violation count: one per (entry, tick) whose windowed
   mean overshoots its effective cap by >5% — the "bad events" numerator
   the health engine's SLO burn-rate rules consume (budget.ticks being the
   denominator). *)
let m_violations = Tm.counter "budget.cap_violations"

(* pre-resolved: control ticks are one-shot events, re-armed on demand *)
let l_tick = Sim.label "budget.tick" (* counts under sim.events.budget.tick *)

type demand =
  | Cap of float
  | Envelope of { joules : float; horizon : Time.span }

type admission = Admitted | Queued | Rejected

(* Throttle floor: even a hopeless cap (below the app's attributed idle
   share) leaves the app a sliver of every period, so it degrades
   gracefully instead of starving. *)
let throttle_floor = 0.02

type entry = {
  e_app : int;
  mutable e_demand : demand;
  mutable e_env_set_t : Time.t; (* when the envelope started *)
  mutable e_env_base_j : float; (* app's attributed joules at that point *)
  mutable e_throttle : float; (* multiplicative actuation level, floor..1 *)
  mutable e_prev_j : float; (* attributed joules at last control tick *)
  e_ring : float array; (* per-period joules, circular *)
  mutable e_ring_i : int;
  mutable e_ring_n : int;
  mutable e_history : (Time.t * float * float) list;
      (* (tick time, windowed mean W, effective cap W), newest first *)
  (* telemetry handles (per app, resolved once) *)
  e_lane : string; (* "app<id>" *)
  e_g_throttle : Tm.gauge; (* budget.app<id>.throttle_level *)
  e_g_measured : Tm.gauge; (* budget.app<id>.measured_w *)
  e_c_viol : Tm.counter; (* budget.app<id>.violations *)
}

type t = {
  sys : System.t;
  period : Time.span;
  window_periods : int;
  hysteresis : float;
  dvfs_bias : bool;
  entries : (int, entry) Hashtbl.t;
  splitters : Split.live list; (* one per actuated rail, auto-wired *)
  epoch : Time.t; (* anchor of the control-period grid (creation time) *)
  mutable tick : Sim.handle; (* armed control tick; Sim.none while idle *)
  mutable stopped : bool;
  (* admission *)
  mutable machine_budget_w : float option;
  reserved : (int, float * float) Hashtbl.t;
      (* app -> (declared watts, effective watts charged to the budget) *)
  wait_q : (int * float * (unit -> unit)) Queue.t; (* FIFO, head next *)
  mutable admission_estimate : (int -> float option) option;
      (* modeled-draw oracle (e.g. Model.Estimator.app_est_w): when set,
         reservations are charged min(declared, modeled) — declared watts
         stay the contract, modeled history the price *)
}

let m_overdeclared = Tm.gauge "budget.admission.overdeclared_w"

let sim ctl = System.sim ctl.sys
let now ctl = Sim.now (sim ctl)

(* ------------------------------------------------------------------ *)
(* Measurement: per-app attributed draw, summed over the machine's
   actuated rails via the auto-wired live splitters.                    *)

let app_total_j ctl ~app =
  let until = now ctl in
  List.fold_left
    (fun acc lv ->
      match List.assoc_opt app (Split.live_read lv ~until) with
      | Some j -> acc +. j
      | None -> acc)
    0.0 ctl.splitters

let windowed_mean_w ctl e =
  let n = e.e_ring_n in
  if n = 0 then 0.0
  else begin
    let j = ref 0.0 in
    for i = 0 to n - 1 do
      j := !j +. e.e_ring.(i)
    done;
    !j /. (float_of_int n *. Time.to_sec_f ctl.period)
  end

let effective_cap_of ctl e =
  match e.e_demand with
  | Cap w -> w
  | Envelope { joules; horizon } ->
      let used = app_total_j ctl ~app:e.e_app -. e.e_env_base_j in
      let left_j = Float.max 0.0 (joules -. used) in
      let left_s =
        Time.to_sec_f (e.e_env_set_t + horizon - now ctl)
      in
      if left_s <= 0.0 then 0.0 else left_j /. left_s

(* ------------------------------------------------------------------ *)
(* Actuation: one throttle level per app, mapped onto every subsystem's
   knob. At 1.0 all knobs are released, so an un-throttled machine runs
   the exact event sequence it would without a controller.              *)

let actuate ctl e =
  let t_ = e.e_throttle in
  let full = t_ >= 0.999 in
  let smp = System.smp ctl.sys in
  Smp.set_quota smp ~app:e.e_app
    (if full then None
     else Some (t_ *. float_of_int (Smp.cores smp)));
  let accel_rate d =
    let units = Psbox_hw.Accel.units (Accel_driver.device d) in
    if full then Accel_driver.set_rate d ~app:e.e_app None
    else Accel_driver.set_rate d ~app:e.e_app (Some (t_ *. float_of_int units))
  in
  if System.has_gpu ctl.sys then accel_rate (System.gpu ctl.sys);
  if System.has_dsp ctl.sys then accel_rate (System.dsp ctl.sys);
  if System.has_wifi ctl.sys then begin
    let net = System.net ctl.sys in
    if full then Net_sched.set_rate net ~app:e.e_app None
    else
      Net_sched.set_rate net ~app:e.e_app
        (Some (t_ *. Psbox_hw.Wifi.rate_bps (Net_sched.nic net) /. 8.0))
  end

let release_actuation ctl app =
  let smp = System.smp ctl.sys in
  Smp.set_quota smp ~app None;
  if System.has_gpu ctl.sys then
    Accel_driver.set_rate (System.gpu ctl.sys) ~app None;
  if System.has_dsp ctl.sys then
    Accel_driver.set_rate (System.dsp ctl.sys) ~app None;
  if System.has_wifi ctl.sys then
    Net_sched.set_rate (System.net ctl.sys) ~app None

(* ------------------------------------------------------------------ *)
(* Control loop                                                         *)

let control_entry ctl e =
  (* settle this period's attributed energy into the window *)
  let total = app_total_j ctl ~app:e.e_app in
  let period_j = Float.max 0.0 (total -. e.e_prev_j) in
  e.e_prev_j <- total;
  e.e_ring.(e.e_ring_i) <- period_j;
  e.e_ring_i <- (e.e_ring_i + 1) mod Array.length e.e_ring;
  if e.e_ring_n < Array.length e.e_ring then e.e_ring_n <- e.e_ring_n + 1;
  let meas = windowed_mean_w ctl e in
  let cap = effective_cap_of ctl e in
  e.e_history <- (now ctl, meas, cap) :: e.e_history;
  Tm.set e.e_g_measured meas;
  (* the fleet layer's violation criterion, counted live so SLO burn-rate
     rules can watch it stream *)
  if Float.is_finite cap && meas > cap *. 1.05 then begin
    Tm.incr m_violations;
    Tm.incr e.e_c_viol
  end;
  if Tt.recording () then
    Tt.span ~track:budget_track ~lane:e.e_lane ~name:"control"
      ~args:
        [
          ("measured_w", meas);
          ("cap_w", (if Float.is_finite cap then cap else -1.0));
          ("throttle", e.e_throttle);
        ]
      ~start:(max 0 (now ctl - ctl.period))
      ~stop:(now ctl) ();
  (* multiplicative-proportional law with a deadband, steered by the
     {e last period's} draw (the windowed mean above is what we report and
     judge convergence on, but steering on it adds 'window' periods of
     lag and turns the loop into a limit cycle): over the cap, scale the
     throttle down by the overshoot ratio (at most halving per period);
     under it, relax back up by the same ratio (at most 10% per period).
     Inside the hysteresis band the throttle holds. *)
  let meas_p = period_j /. Time.to_sec_f ctl.period in
  let over = cap *. (1.0 +. ctl.hysteresis) in
  let under = cap *. (1.0 -. ctl.hysteresis) in
  let t0 = e.e_throttle in
  if meas_p > over && meas_p > 0.0 then
    e.e_throttle <-
      Float.max throttle_floor (t0 *. Float.max 0.5 (cap /. meas_p))
  else if meas_p < under && t0 < 1.0 then
    e.e_throttle <-
      Float.min 1.0 (t0 *. Float.min 1.1 (cap /. Float.max meas_p 1e-9));
  Tm.set e.e_g_throttle e.e_throttle;
  if e.e_throttle <> t0 then actuate ctl e

let bias_dvfs ctl =
  if ctl.dvfs_bias then begin
    let dvfs = Psbox_hw.Cpu.dvfs (System.cpu ctl.sys) in
    (* lower the machine's OPP ceiling only when per-app throttling has hit
       its floor and an app still overshoots — i.e. the shared uncore draw
       itself is the problem; creep back up while everyone fits *)
    let stuck_over = ref false and all_within = ref true in
    Hashtbl.iter
      (fun _ e ->
        let meas = windowed_mean_w ctl e in
        let cap = effective_cap_of ctl e in
        if meas > cap *. (1.0 +. ctl.hysteresis) then begin
          all_within := false;
          if e.e_throttle <= throttle_floor +. 1e-9 then stuck_over := true
        end)
      ctl.entries;
    let c = Psbox_hw.Dvfs.ceiling dvfs in
    if !stuck_over && c > 0 then Psbox_hw.Dvfs.set_ceiling dvfs (c - 1)
    else if !all_within && c < Psbox_hw.Dvfs.max_index dvfs then
      Psbox_hw.Dvfs.set_ceiling dvfs (c + 1)
  end

(* The control tick is demand-armed on the fixed grid [epoch + k*period]:
   it runs only while there is something to control — a registered entry,
   or a biased-down DVFS ceiling that still has to creep back to the top.
   An idle controller costs no simulator events, and because skipped
   periods would have iterated zero entries they are exact no-ops. *)
let tick_needed ctl =
  Hashtbl.length ctl.entries > 0
  || ctl.dvfs_bias
     &&
     let d = Psbox_hw.Cpu.dvfs (System.cpu ctl.sys) in
     Psbox_hw.Dvfs.ceiling d < Psbox_hw.Dvfs.max_index d

let rec arm_tick ctl =
  if Sim.is_none ctl.tick && (not ctl.stopped) && tick_needed ctl then begin
    let k = ((now ctl - ctl.epoch) / ctl.period) + 1 in
    ctl.tick <-
      Sim.schedule_at (sim ctl) ~label:l_tick
        (ctl.epoch + (k * ctl.period))
        (fun () -> tick_fired ctl)
  end

and tick_fired ctl =
  ctl.tick <- Sim.none;
  if not ctl.stopped then begin
    Tm.incr m_ticks;
    Hashtbl.iter (fun _ e -> control_entry ctl e) ctl.entries;
    bias_dvfs ctl;
    arm_tick ctl
  end

let cancel_tick ctl =
  Sim.cancel (sim ctl) ctl.tick;
  ctl.tick <- Sim.none

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

let create sys ?(period = Time.ms 50) ?(window_periods = 4)
    ?(hysteresis = 0.05) ?(dvfs_bias = false) ?machine_budget_w () =
  if window_periods <= 0 then
    invalid_arg "Budget.create: window_periods must be positive";
  if hysteresis < 0.0 then invalid_arg "Budget.create: negative hysteresis";
  let from = Sim.now (System.sim sys) in
  let splitters =
    [ Split.live_cpu (System.smp sys) ~from ]
    @ (if System.has_gpu sys then [ Split.live_accel (System.gpu sys) ~from ]
       else [])
    @ (if System.has_dsp sys then [ Split.live_accel (System.dsp sys) ~from ]
       else [])
    @
    if System.has_wifi sys then [ Split.live_net (System.net sys) ~from ]
    else []
  in
  let ctl =
    {
      sys;
      period;
      window_periods;
      hysteresis;
      dvfs_bias;
      entries = Hashtbl.create 8;
      splitters;
      epoch = from;
      tick = Sim.none;
      stopped = false;
      machine_budget_w;
      reserved = Hashtbl.create 8;
      wait_q = Queue.create ();
      admission_estimate = None;
    }
  in
  (* no periodic timer: the first entry arms the control loop *)
  ctl

let period ctl = ctl.period

let entry ctl app =
  match Hashtbl.find_opt ctl.entries app with
  | Some e -> e
  | None ->
      let e =
        {
          e_app = app;
          e_demand = Cap infinity;
          e_env_set_t = now ctl;
          e_env_base_j = 0.0;
          e_throttle = 1.0;
          e_prev_j = app_total_j ctl ~app;
          e_ring = Array.make ctl.window_periods 0.0;
          e_ring_i = 0;
          e_ring_n = 0;
          e_history = [];
          e_lane = "app" ^ string_of_int app;
          e_g_throttle =
            Tm.gauge (Printf.sprintf "budget.app%d.throttle_level" app);
          e_g_measured =
            Tm.gauge (Printf.sprintf "budget.app%d.measured_w" app);
          e_c_viol =
            Tm.counter (Printf.sprintf "budget.app%d.violations" app);
        }
      in
      Tm.set e.e_g_throttle e.e_throttle;
      Hashtbl.replace ctl.entries app e;
      arm_tick ctl;
      e

let set_cap ctl ~app ~watts =
  if watts < 0.0 then invalid_arg "Budget.set_cap: negative cap";
  let e = entry ctl app in
  e.e_demand <- Cap watts

let set_envelope ctl ~app ~joules ~horizon =
  if joules < 0.0 then invalid_arg "Budget.set_envelope: negative joules";
  if horizon <= 0 then invalid_arg "Budget.set_envelope: empty horizon";
  let e = entry ctl app in
  e.e_demand <- Envelope { joules; horizon };
  e.e_env_set_t <- now ctl;
  e.e_env_base_j <- app_total_j ctl ~app

let tighten ?(factor = 0.9) ctl ~app =
  if not (Float.is_finite factor) || factor <= 0.0 || factor >= 1.0 then
    invalid_arg "Budget.tighten: factor must be in (0, 1)";
  match Hashtbl.find_opt ctl.entries app with
  | None -> ()
  | Some e -> (
      match e.e_demand with
      | Cap w when Float.is_finite w -> e.e_demand <- Cap (w *. factor)
      | Cap _ -> () (* an uncapped entry has nothing to ratchet *)
      | Envelope { joules; horizon } ->
          e.e_demand <- Envelope { joules = joules *. factor; horizon })

let clear ctl ~app =
  match Hashtbl.find_opt ctl.entries app with
  | Some _ ->
      Hashtbl.remove ctl.entries app;
      release_actuation ctl app;
      if not (tick_needed ctl) then cancel_tick ctl
  | None -> ()

let measured_w ctl ~app =
  match Hashtbl.find_opt ctl.entries app with
  | Some e -> windowed_mean_w ctl e
  | None -> 0.0

let effective_cap_w ctl ~app =
  match Hashtbl.find_opt ctl.entries app with
  | Some e -> effective_cap_of ctl e
  | None -> infinity

let throttle ctl ~app =
  match Hashtbl.find_opt ctl.entries app with
  | Some e -> e.e_throttle
  | None -> 1.0

let history ctl ~app =
  match Hashtbl.find_opt ctl.entries app with
  | Some e -> List.rev e.e_history
  | None -> []

let stop ctl =
  if not ctl.stopped then begin
    ctl.stopped <- true;
    cancel_tick ctl;
    Hashtbl.iter (fun app _ -> release_actuation ctl app) ctl.entries;
    List.iter Split.live_detach ctl.splitters
  end

(* ------------------------------------------------------------------ *)
(* Admission control                                                    *)

let reserved_w ctl =
  Hashtbl.fold (fun _ (_, eff) acc -> acc +. eff) ctl.reserved 0.0

let remaining_w ctl =
  match ctl.machine_budget_w with
  | None -> infinity
  | Some b -> b -. reserved_w ctl

let set_machine_budget ctl w =
  (match w with
  | Some b when b < 0.0 -> invalid_arg "Budget.set_machine_budget: negative"
  | Some _ | None -> ());
  ctl.machine_budget_w <- w

let set_admission_estimate ctl f = ctl.admission_estimate <- f

(* Effective reservation: the declared watts, cross-checked against the
   modeled draw when an estimate oracle is wired in. Over-declaring apps
   are charged what the model says they actually draw; under-declaring
   apps still pay their full declaration (the cap they asked for). *)
let effective_reservation ctl ~app ~declared =
  match ctl.admission_estimate with
  | None -> declared
  | Some f -> (
      match f app with
      | Some est when est >= 0.0 -> Float.min declared est
      | Some _ | None -> declared)

let update_overdeclared ctl =
  Tm.set m_overdeclared
    (Hashtbl.fold
       (fun _ (decl, eff) acc -> acc +. (decl -. eff))
       ctl.reserved 0.0)

let admitted ctl ~app = Hashtbl.mem ctl.reserved app
let queued ctl = Queue.length ctl.wait_q

let reservation ctl ~app = Hashtbl.find_opt ctl.reserved app

let admit ctl ~app ~watts ?(on_admit = fun () -> ()) ?(queue = false) () =
  if watts < 0.0 then invalid_arg "Budget.admit: negative demand";
  if Hashtbl.mem ctl.reserved app then invalid_arg "Budget.admit: already admitted";
  let eff = effective_reservation ctl ~app ~declared:watts in
  if eff <= remaining_w ctl then begin
    Hashtbl.replace ctl.reserved app (watts, eff);
    update_overdeclared ctl;
    Admitted
  end
  else if queue then begin
    Queue.push (app, watts, on_admit) ctl.wait_q;
    Queued
  end
  else Rejected

let release ctl ~app =
  if Hashtbl.mem ctl.reserved app then begin
    Hashtbl.remove ctl.reserved app;
    (* head-first drain: strict FIFO, so a large waiter at the head blocks
       smaller ones behind it (no sneak-past starvation of big requests).
       The head's effective charge is re-evaluated at drain time — the
       model has seen the waiter's history since it queued. *)
    let continue = ref true in
    while !continue && not (Queue.is_empty ctl.wait_q) do
      let w_app, w_watts, w_cb = Queue.peek ctl.wait_q in
      let w_eff = effective_reservation ctl ~app:w_app ~declared:w_watts in
      if w_eff <= remaining_w ctl then begin
        ignore (Queue.pop ctl.wait_q);
        Hashtbl.replace ctl.reserved w_app (w_watts, w_eff);
        w_cb ()
      end
      else continue := false
    done;
    update_overdeclared ctl
  end
