(** Power-budget control plane (§6 "power-centric resource management").

    The paper's sandboxed accounting makes per-app draw a trustworthy
    signal; this module closes the loop on it. A controller subscribes to
    the machine's attributed power — via the auto-wired
    {!Psbox_accounting.Split.live_cpu}/[live_accel]/[live_net] splitters —
    and enforces per-app {e caps} (watts) or {e envelopes} (joules over a
    horizon) by actuating every subsystem the app draws through:

    - CPU: a CFS-bandwidth-style runtime quota
      ({!Psbox_kernel.Smp.set_quota}),
    - accelerators: a leaky-bucket command-submission rate
      ({!Psbox_kernel.Accel_driver.set_rate}),
    - network: a TX byte rate ({!Psbox_kernel.Net_sched.set_rate}),
    - optionally the DVFS ceiling ({!Psbox_hw.Dvfs.set_ceiling}) when
      per-app throttling alone cannot reach a cap.

    The control law is a deterministic, sim-clock-periodic
    multiplicative-proportional loop with a hysteresis deadband: each
    period the app's windowed mean draw is compared against its effective
    cap; overshoot scales one throttle level (in [0.02, 1.0]) down by the
    overshoot ratio, comfortable undershoot relaxes it back up by 25%.
    At a throttle of 1.0 every knob is released ([None]), so a machine
    with no budgets configured replays the exact event sequence it would
    without a controller.

    Admission control ({!admit}) tracks declared demand against an
    optional machine budget, with a strict-FIFO wait queue drained
    head-first on {!release}. *)

type t

type demand =
  | Cap of float  (** steady-state limit, watts *)
  | Envelope of { joules : float; horizon : Psbox_engine.Time.span }
      (** energy allowance over a horizon; the effective cap each period
          is [remaining_joules / remaining_horizon], so an app that burns
          early is squeezed harder later — graceful degradation, not a
          cliff *)

type admission = Admitted | Queued | Rejected

val create :
  Psbox_kernel.System.t ->
  ?period:Psbox_engine.Time.span ->
  ?window_periods:int ->
  ?hysteresis:float ->
  ?dvfs_bias:bool ->
  ?machine_budget_w:float ->
  unit ->
  t
(** Attach a controller to a machine. Defaults: 50 ms control period, a
    4-period measurement window, 5% hysteresis band, no DVFS biasing, no
    machine budget (admission always admits). Splitters are wired to
    whatever rails the machine has; the control tick is armed immediately
    on the machine's simulator. *)

val period : t -> Psbox_engine.Time.span

val set_cap : t -> app:int -> watts:float -> unit
(** Cap [app]'s windowed mean attributed draw at [watts]. Takes effect at
    the next control tick. *)

val set_envelope :
  t -> app:int -> joules:float -> horizon:Psbox_engine.Time.span -> unit
(** Give [app] an energy allowance of [joules] over [horizon] starting
    now. After the horizon expires the effective cap is 0 (throttle
    floor). *)

val tighten : ?factor:float -> t -> app:int -> unit
(** Ratchet [app]'s demand down one step: a finite {!Cap} becomes
    [watts *. factor], an {!Envelope}'s remaining allowance becomes
    [joules *. factor] (horizon unchanged). Default [factor] is [0.9].
    No-op on an unbudgeted app or an [infinity] cap — there is nothing
    to ratchet. This is the knob health responders pull on sustained
    cap-violation incidents. @raise Invalid_argument unless
    [factor] is in (0, 1). *)

val clear : t -> app:int -> unit
(** Drop [app]'s budget and release all of its actuators. *)

val measured_w : t -> app:int -> float
(** [app]'s windowed mean attributed draw, watts (0 before the first
    control tick, or if the app has no budget). *)

val effective_cap_w : t -> app:int -> float
(** The cap the controller is currently steering to: the configured watts
    for a {!Cap}, the remaining-joules rate for an {!Envelope}, [infinity]
    for an unbudgeted app. *)

val throttle : t -> app:int -> float
(** Current actuation level in [0.02, 1.0]; 1.0 means unthrottled. *)

val history : t -> app:int -> (Psbox_engine.Time.t * float * float) list
(** Per-tick trace [(time, measured_w, effective_cap_w)] in time order —
    the convergence record the [budget] experiment plots. *)

val stop : t -> unit
(** Cancel the control tick, release every actuator and detach the
    splitters. Idempotent. *)

(** {1 Admission control}

    Declared-demand bookkeeping against an optional machine budget.
    Reservations are watts promised, not watts measured; the control loop
    above enforces that promises hold. *)

val set_machine_budget : t -> float option -> unit

val set_admission_estimate : t -> (int -> float option) option -> unit
(** Wire in a modeled-draw oracle (typically
    [Psbox_model.Model.Estimator.app_est_w]): while set, each reservation
    is charged [min declared (oracle app)] watts against the machine
    budget instead of the bare declaration — admission against modeled
    history, not claims. The declaration stays recorded as the contract;
    the gap is published as the [budget.admission.overdeclared_w] gauge.
    An oracle returning [None] (no history yet) falls back to the
    declared watts. Queued requests are re-priced when the drain
    re-examines them. *)

val remaining_w : t -> float
(** Machine budget minus all effective reservations; [infinity] when no
    budget is set. *)

val admit :
  t ->
  app:int ->
  watts:float ->
  ?on_admit:(unit -> unit) ->
  ?queue:bool ->
  unit ->
  admission
(** Reserve [watts] for [app]. Fits the remaining budget → [Admitted]
    (reservation recorded; [on_admit] is {e not} called — the caller is
    already running). Doesn't fit and [queue] (default false) → [Queued]:
    the request waits in FIFO order and [on_admit] fires when a later
    {!release} makes room. Otherwise [Rejected].
    @raise Invalid_argument if [app] already holds a reservation. *)

val release : t -> app:int -> unit
(** Drop [app]'s reservation and drain the wait queue head-first: queued
    requests are admitted in arrival order, stopping at the first one
    that still doesn't fit (no sneaking past a large waiter). *)

val admitted : t -> app:int -> bool

val reservation : t -> app:int -> (float * float) option
(** [app]'s current reservation as [(declared_w, effective_w)], if any.
    The two differ only when an admission estimate is wired in and the
    modeled draw undercuts the declaration. *)

val queued : t -> int
(** Requests currently waiting. *)
