(** Model-based power metering.

    The "other" metering method of §2.2: instead of measuring a rail, infer
    power from software-visible activity with a linear model
    [P = b0 + sum_i (b_i * u_i)] over per-component utilizations. Provided
    both as a baseline to contrast with direct measurement and because the
    paper notes psbox works with either metering method.

    Coefficients can be fitted offline from (utilization, measured power)
    observations by ordinary least squares (normal equations, Gaussian
    elimination) — the way such models are constructed "during development"
    in prior work. *)

type t
(** A fitted or hand-written linear model. *)

val of_coeffs : intercept:float -> float array -> t

val intercept : t -> float

val coeffs : t -> float array

val predict : t -> float array -> float
(** [predict m utils] is the modelled watts for one utilization vector.
    @raise Invalid_argument on dimension mismatch. *)

val fit : (float array * float) list -> t
(** Least-squares fit. All observation vectors must share one dimension;
    needs at least [dim + 1] observations.
    @raise Invalid_argument on degenerate input. *)

val rmse : t -> (float array * float) list -> float
(** Root-mean-square prediction error over a dataset. *)

(** {1 Bus-fed training collection}

    A collector subscribes to a power-transition bus and snapshots the
    utilization vector at every transition, paired with the total draw after
    the change — the training pairs arrive exactly when power actually
    moved, instead of being polled on a timer and aligned by timestamp. *)

type collector

val collector :
  Psbox_hw.Power_rail.transition Psbox_engine.Bus.t ->
  initial_w:float ->
  utils:(unit -> float array) ->
  collector
(** [collector bus ~initial_w ~utils] starts recording. [initial_w] is the
    current total draw of the rails feeding [bus] (e.g.
    [System.live_power_w]); the collector maintains the running total from
    transition deltas. *)

val observations : collector -> (float array * float) list
(** Pairs in arrival order, ready for {!fit} / {!rmse}. *)

val observation_count : collector -> int

val fit_collected : collector -> t
(** Least-squares fit over everything collected so far.
    @raise Invalid_argument if there are too few observations. *)

val collector_detach : collector -> unit
