open Psbox_engine

type t = { intercept : float; coeffs : float array }

let of_coeffs ~intercept coeffs = { intercept; coeffs }
let intercept m = m.intercept
let coeffs m = m.coeffs

let predict m utils =
  if Array.length utils <> Array.length m.coeffs then
    invalid_arg "Model_meter.predict: dimension mismatch";
  let acc = ref m.intercept in
  Array.iteri (fun i u -> acc := !acc +. (m.coeffs.(i) *. u)) utils;
  !acc

(* Solve the square system [a] x = [b] by Gaussian elimination with partial
   pivoting; mutates its arguments. *)
let solve a b =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-12 then
      invalid_arg "Model_meter.fit: singular system (collinear inputs)";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tmp = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tmp
    end;
    for row = col + 1 to n - 1 do
      let f = a.(row).(col) /. a.(col).(col) in
      for k = col to n - 1 do
        a.(row).(k) <- a.(row).(k) -. (f *. a.(col).(k))
      done;
      b.(row) <- b.(row) -. (f *. b.(col))
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let acc = ref b.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. a.(row).(row)
  done;
  x

let fit observations =
  match observations with
  | [] -> invalid_arg "Model_meter.fit: no observations"
  | (u0, _) :: _ ->
      let dim = Array.length u0 in
      if List.length observations < dim + 1 then
        invalid_arg "Model_meter.fit: not enough observations";
      List.iter
        (fun (u, _) ->
          if Array.length u <> dim then
            invalid_arg "Model_meter.fit: inconsistent dimensions")
        observations;
      (* Augment with a constant regressor for the intercept:
         normal equations (X'X) beta = X'y with X rows [1; u...]. *)
      let d = dim + 1 in
      let xtx = Array.make_matrix d d 0.0 in
      let xty = Array.make d 0.0 in
      List.iter
        (fun (u, y) ->
          let row = Array.make d 1.0 in
          Array.blit u 0 row 1 dim;
          for i = 0 to d - 1 do
            xty.(i) <- xty.(i) +. (row.(i) *. y);
            for j = 0 to d - 1 do
              xtx.(i).(j) <- xtx.(i).(j) +. (row.(i) *. row.(j))
            done
          done)
        observations;
      let beta = solve xtx xty in
      { intercept = beta.(0); coeffs = Array.sub beta 1 dim }

(* ------------------------------------------------------------------ *)
(* Bus-fed training-set collection: snapshot the utilization vector at
   every announced power transition, paired with the new total draw.
   Replaces the old style of polling utilizations on a timer and lining
   them up with captured samples by timestamp. *)

type collector = {
  utils : unit -> float array;
  mutable total_w : float;
  mutable obs : (float array * float) list; (* newest first *)
  mutable sub : Bus.subscription option;
}

let collector bus ~initial_w ~utils =
  let c = { utils; total_w = initial_w; obs = []; sub = None } in
  c.sub <-
    Some
      (Bus.subscribe bus (fun tr ->
           let open Psbox_hw.Power_rail in
           c.total_w <- c.total_w +. tr.after_w -. tr.before_w;
           c.obs <- (c.utils (), c.total_w) :: c.obs));
  c

let observations c = List.rev c.obs
let observation_count c = List.length c.obs

let collector_detach c =
  match c.sub with
  | Some s ->
      Bus.unsubscribe s;
      c.sub <- None
  | None -> ()

let fit_collected c = fit (List.rev c.obs)

let rmse m observations =
  match observations with
  | [] -> 0.0
  | _ ->
      let acc =
        List.fold_left
          (fun acc (u, y) ->
            let e = predict m u -. y in
            acc +. (e *. e))
          0.0 observations
      in
      sqrt (acc /. float_of_int (List.length observations))
