open Psbox_engine

type batch = { size : int; on_done : unit -> unit }

type t = {
  sim : Sim.t;
  active_w : float;
  samples_per_sec : float;
  rail : Psbox_hw.Power_rail.t;
  queue : batch Queue.t;
  mutable running : bool;
  mutable backlog : int;
  mutable processed : int;
  mutable tap : Bus.subscription option;
}

let create sim ?(name = "sensor-hub") ?(active_w = 0.013) ?(idle_w = 0.0002)
    ?(samples_per_sec = 250_000.0) () =
  {
    sim;
    active_w;
    samples_per_sec;
    rail = Psbox_hw.Power_rail.create sim ~name ~idle_w;
    queue = Queue.create ();
    running = false;
    backlog = 0;
    processed = 0;
    tap = None;
  }

let rail hub = hub.rail
let busy hub = hub.running
let backlog hub = hub.backlog
let processed hub = hub.processed

let rec start_next hub =
  match Queue.take_opt hub.queue with
  | None ->
      hub.running <- false;
      Psbox_hw.Power_rail.set_power hub.rail (Psbox_hw.Power_rail.idle_w hub.rail)
  | Some batch ->
      hub.running <- true;
      Psbox_hw.Power_rail.set_power hub.rail hub.active_w;
      let dur = Time.of_sec_f (float_of_int batch.size /. hub.samples_per_sec) in
      ignore
        (Sim.schedule_after hub.sim (max 1 dur) (fun () ->
             hub.backlog <- hub.backlog - batch.size;
             hub.processed <- hub.processed + batch.size;
             batch.on_done ();
             start_next hub))

let process hub ~samples ~on_done =
  if samples < 0 then invalid_arg "Sensor_hub.process: negative batch";
  hub.backlog <- hub.backlog + samples;
  Queue.push { size = samples; on_done } hub.queue;
  if not hub.running then start_next hub

let energy_j hub ~from ~until = Psbox_hw.Power_rail.energy_j hub.rail ~from ~until

(* Event-driven intake: instead of the application processor pushing batches
   on a timer, the hub rides a power-transition bus and ingests a batch per
   transition. Transitions of the hub's own rail are ignored — processing a
   batch toggles our rail, and reacting to that would feed the hub its own
   activity forever. *)
let attach hub bus ~samples_per_event ?(on_done = fun () -> ()) () =
  if samples_per_event < 0 then
    invalid_arg "Sensor_hub.attach: negative batch size";
  (match hub.tap with Some s -> Bus.unsubscribe s | None -> ());
  hub.tap <-
    Some
      (Bus.subscribe bus (fun tr ->
           if
             tr.Psbox_hw.Power_rail.rail_name
             <> Psbox_hw.Power_rail.name hub.rail
           then process hub ~samples:samples_per_event ~on_done))

let detach hub =
  match hub.tap with
  | Some s ->
      Bus.unsubscribe s;
      hub.tap <- None
  | None -> ()

let attached hub = hub.tap <> None
