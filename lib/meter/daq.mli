(** Simulated data-acquisition unit (MCCDAQ USB1608G-like).

    The DAQ samples one or more power rails at a fixed rate (100 kHz in the
    paper's prototype) and timestamps each sample. Because the simulator
    keeps exact piecewise-constant rail histories, sampling is synthesized on
    demand from the history rather than by scheduling one event per sample;
    optional Gaussian measurement noise models the ADC front end. Timestamps
    are reported in the target clock (after clock synchronization), which is
    the simulation clock. *)

type t

val create :
  ?rate_hz:int ->
  ?noise_w:float ->
  ?rng:Psbox_engine.Rng.t ->
  unit ->
  t
(** Defaults: 100 kHz, no noise. [noise_w] is the standard deviation of
    additive Gaussian noise per sample; it requires [rng]. *)

val rate_hz : t -> int

val period : t -> Psbox_engine.Time.span

val capture :
  t ->
  Psbox_hw.Power_rail.t ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  Sample.t array
(** Timestamped samples of a rail over a window. *)

val capture_many :
  t ->
  Psbox_hw.Power_rail.t list ->
  from:Psbox_engine.Time.t ->
  until:Psbox_engine.Time.t ->
  (string * Sample.t array) list
(** Capture several rails simultaneously (same timestamps), keyed by rail
    name. *)

(** {1 Live monitoring}

    A monitor subscribes to a rail's transition bus and integrates energy
    incrementally as the rail announces power changes — O(1) state, no
    history walk, and it keeps working after the rail's timeline has been
    compacted away. *)

type monitor

val monitor : from:Psbox_engine.Time.t -> Psbox_hw.Power_rail.t -> monitor
(** Start watching a rail now. [from] is the accounting epoch; it must not
    precede the current simulation time (the monitor sees only future
    transitions). *)

val monitor_energy_j : monitor -> until:Psbox_engine.Time.t -> float
(** Energy accumulated from the epoch up to [until] (normally the current
    time), including the partially elapsed current level. *)

val monitor_transitions : monitor -> int
(** Number of power transitions observed. *)

val monitor_peak_w : monitor -> float
(** Highest rail power seen since the epoch (including the initial level). *)

val monitor_detach : monitor -> unit
(** Unsubscribe from the rail; the accumulated totals stay readable. *)
