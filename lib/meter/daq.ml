open Psbox_engine

type t = { rate_hz : int; period : Time.span; noise_w : float; rng : Rng.t option }

let create ?(rate_hz = 100_000) ?(noise_w = 0.0) ?rng () =
  if rate_hz <= 0 then invalid_arg "Daq.create: rate must be positive";
  if noise_w > 0.0 && rng = None then
    invalid_arg "Daq.create: noise requires an rng";
  { rate_hz; period = 1_000_000_000 / rate_hz; noise_w; rng }

let rate_hz daq = daq.rate_hz
let period daq = daq.period

let noisy daq w =
  match daq.rng with
  | Some rng when daq.noise_w > 0.0 ->
      Float.max 0.0 (w +. Rng.gaussian rng ~mu:0.0 ~sigma:daq.noise_w)
  | Some _ | None -> w

let capture daq rail ~from ~until =
  let tl = Psbox_hw.Power_rail.timeline rail in
  let n = max (((until - from) / daq.period) + 1) 0 in
  let out = Array.make n (Sample.make from 0.0) in
  let k = ref 0 in
  Timeline.iter_samples tl ~period:daq.period ~from ~until ~f:(fun t w ->
      out.(!k) <- Sample.make t (noisy daq w);
      incr k);
  out

let capture_many daq rails ~from ~until =
  List.map
    (fun rail -> (Psbox_hw.Power_rail.name rail, capture daq rail ~from ~until))
    rails

(* ------------------------------------------------------------------ *)
(* Live monitoring: a bus subscriber instead of a poller.               *)

type monitor = {
  mutable last_w : float;
  mutable last_t : Time.t;
  mutable acc_j : float;
  mutable transitions : int;
  mutable peak_w : float;
  mutable sub : Bus.subscription option;
}

let monitor ~from rail =
  let w0 = Psbox_hw.Power_rail.power rail in
  let m =
    { last_w = w0; last_t = from; acc_j = 0.0; transitions = 0; peak_w = w0; sub = None }
  in
  m.sub <-
    Some
      (Bus.subscribe (Psbox_hw.Power_rail.transitions rail) (fun tr ->
           let open Psbox_hw.Power_rail in
           m.acc_j <- m.acc_j +. (m.last_w *. Time.to_sec_f (tr.at - m.last_t));
           m.last_t <- tr.at;
           m.last_w <- tr.after_w;
           m.transitions <- m.transitions + 1;
           if tr.after_w > m.peak_w then m.peak_w <- tr.after_w));
  m

let monitor_energy_j m ~until =
  m.acc_j +. (m.last_w *. Time.to_sec_f (until - m.last_t))

let monitor_transitions m = m.transitions
let monitor_peak_w m = m.peak_w

let monitor_detach m =
  match m.sub with
  | Some s ->
      Bus.unsubscribe s;
      m.sub <- None
  | None -> ()
