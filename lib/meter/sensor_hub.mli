(** Sensor-hub model (§8.1).

    A Cortex-M0-class microcontroller that pre-processes power samples so
    the application processor does not have to wake for them. Processing a
    batch occupies the hub for [samples / throughput] and draws its active
    power; it idles at micro-watts otherwise. The paper's argument is that a
    13 mW hub at 32 MHz comfortably handles kilohertz power streams — the
    numbers here default to that envelope. *)

type t

val create :
  Psbox_engine.Sim.t ->
  ?name:string ->
  ?active_w:float ->
  ?idle_w:float ->
  ?samples_per_sec:float ->
  unit ->
  t
(** Defaults: 13 mW active, 0.2 mW idle, 250k samples/s processing
    throughput. *)

val rail : t -> Psbox_hw.Power_rail.t

val process : t -> samples:int -> on_done:(unit -> unit) -> unit
(** Queue a batch; the hub works through its backlog in FIFO order and
    calls [on_done] when this batch completes. *)

val busy : t -> bool

val backlog : t -> int
(** Samples queued or being processed. *)

val processed : t -> int
(** Total samples processed so far. *)

val energy_j : t -> from:Psbox_engine.Time.t -> until:Psbox_engine.Time.t -> float

(** {1 Bus-driven intake}

    Instead of an application-processor timer pushing batches, the hub can
    subscribe to a power-transition bus (a single rail's, or the machine-wide
    one) and ingest a fixed batch per announced transition. Transitions of
    the hub's own rail are filtered out so its own processing activity does
    not re-trigger it. *)

val attach :
  t ->
  Psbox_hw.Power_rail.transition Psbox_engine.Bus.t ->
  samples_per_event:int ->
  ?on_done:(unit -> unit) ->
  unit ->
  unit
(** Subscribe the hub to [bus]; replaces any previous attachment. *)

val detach : t -> unit
(** Stop listening. Already-queued batches still drain. *)

val attached : t -> bool
