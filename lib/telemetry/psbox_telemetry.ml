let on = ref true
let enabled () = !on
let set_enabled b = on := b

(* Values render as integers when they are integers, [%g] otherwise, so
   snapshots never depend on accumulated floating-point noise in the
   formatting path itself. *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

module Metrics = struct
  (* Mutable metric state (cells) lives in a per-domain store; handles are
     process-global, memoized by name, and carry a dense per-kind index
     into cell-cache arrays held by the store itself. A hot-path update is
     one DLS read, one array load and a float store — and because the
     caches live {e inside} the store, switching stores (a fresh domain,
     or a {!with_fresh_store} scope) atomically starts from a cold cache
     with no per-operation validation. The same handle transparently
     accumulates into whichever store its domain currently owns; that is
     what lets N concurrent device simulations share instrumented code
     without ever interleaving their metrics. *)

  type ccell = { mutable c : float }
  type gcell = { mutable g : float }

  type hcell = {
    h_edges : float array; (* strictly increasing upper bounds; shared *)
    h_counts : int array; (* length = edges + 1; last is overflow *)
    mutable h_sum : float;
  }

  type cell = CCounter of ccell | CGauge of gcell | CHist of hcell

  type store = {
    cells : (string, cell) Hashtbl.t;
    mutable ccache : ccell option array; (* indexed by counter handle idx *)
    mutable gcache : gcell option array;
    mutable hcache : hcell option array;
  }

  let new_store () =
    { cells = Hashtbl.create 64; ccache = [||]; gcache = [||]; hcache = [||] }

  let store_key : store Domain.DLS.key = Domain.DLS.new_key new_store

  type counter = { c_name : string; c_idx : int }
  type gauge = { g_name : string; g_idx : int }
  type histogram = { hm_name : string; hm_edges : float array; hm_idx : int }
  type handle = HCounter of counter | HGauge of gauge | HHist of histogram

  (* Name -> handle memo: the only mutable structure shared across domains,
     guarded by a mutex (which also guards the per-kind index counters).
     Registration is cold; hot paths never touch it. *)
  let handles : (string, handle) Hashtbl.t = Hashtbl.create 64
  let handles_mu = Mutex.create ()
  let n_counters = ref 0
  let n_gauges = ref 0
  let n_hists = ref 0

  let grown (cache : 'a option array) idx =
    let len = Array.length cache in
    if idx < len then cache
    else begin
      let a = Array.make (max 8 (2 * (idx + 1))) None in
      Array.blit cache 0 a 0 len;
      a
    end

  let kind_name = function
    | HCounter _ -> "counter"
    | HGauge _ -> "gauge"
    | HHist _ -> "histogram"

  let clash name h =
    invalid_arg
      (Printf.sprintf "Telemetry.Metrics: %S is already a %s" name
         (kind_name h))

  (* Slow paths: first touch of a handle in a given store. Find (or create)
     the named cell in the store's hashtable and publish it in the store's
     cache array at the handle's index. *)
  let materialize_c store (h : counter) =
    let cell =
      match Hashtbl.find_opt store.cells h.c_name with
      | Some (CCounter c) -> c
      | Some _ -> assert false (* kind is fixed by the handle memo *)
      | None ->
          let c = { c = 0.0 } in
          Hashtbl.replace store.cells h.c_name (CCounter c);
          c
    in
    store.ccache <- grown store.ccache h.c_idx;
    store.ccache.(h.c_idx) <- Some cell;
    cell

  let ccell_of (h : counter) =
    let store = Domain.DLS.get store_key in
    let cache = store.ccache in
    if h.c_idx < Array.length cache then
      match Array.unsafe_get cache h.c_idx with
      | Some c -> c
      | None -> materialize_c store h
    else materialize_c store h

  let materialize_g store (h : gauge) =
    let cell =
      match Hashtbl.find_opt store.cells h.g_name with
      | Some (CGauge g) -> g
      | Some _ -> assert false
      | None ->
          let g = { g = 0.0 } in
          Hashtbl.replace store.cells h.g_name (CGauge g);
          g
    in
    store.gcache <- grown store.gcache h.g_idx;
    store.gcache.(h.g_idx) <- Some cell;
    cell

  let gcell_of (h : gauge) =
    let store = Domain.DLS.get store_key in
    let cache = store.gcache in
    if h.g_idx < Array.length cache then
      match Array.unsafe_get cache h.g_idx with
      | Some g -> g
      | None -> materialize_g store h
    else materialize_g store h

  let materialize_h store (h : histogram) =
    let cell =
      match Hashtbl.find_opt store.cells h.hm_name with
      | Some (CHist c) -> c
      | Some _ -> assert false
      | None ->
          let c =
            {
              h_edges = h.hm_edges;
              h_counts = Array.make (Array.length h.hm_edges + 1) 0;
              h_sum = 0.0;
            }
          in
          Hashtbl.replace store.cells h.hm_name (CHist c);
          c
    in
    store.hcache <- grown store.hcache h.hm_idx;
    store.hcache.(h.hm_idx) <- Some cell;
    cell

  let hcell_of (h : histogram) =
    let store = Domain.DLS.get store_key in
    let cache = store.hcache in
    if h.hm_idx < Array.length cache then
      match Array.unsafe_get cache h.hm_idx with
      | Some c -> c
      | None -> materialize_h store h
    else materialize_h store h

  let counter name =
    let h =
      Mutex.protect handles_mu (fun () ->
          match Hashtbl.find_opt handles name with
          | Some (HCounter c) -> c
          | Some h -> clash name h
          | None ->
              let c = { c_name = name; c_idx = !n_counters } in
              Stdlib.incr n_counters;
              Hashtbl.replace handles name (HCounter c);
              c)
    in
    (* materialize in the registering domain so never-touched metrics still
       show up in its snapshots *)
    ignore (ccell_of h : ccell);
    h

  let incr h =
    if !on then begin
      let c = ccell_of h in
      c.c <- c.c +. 1.0
    end

  let add h v =
    if !on then begin
      let c = ccell_of h in
      c.c <- c.c +. v
    end

  let counter_value h = (ccell_of h).c

  let gauge name =
    let h =
      Mutex.protect handles_mu (fun () ->
          match Hashtbl.find_opt handles name with
          | Some (HGauge g) -> g
          | Some h -> clash name h
          | None ->
              let g = { g_name = name; g_idx = !n_gauges } in
              Stdlib.incr n_gauges;
              Hashtbl.replace handles name (HGauge g);
              g)
    in
    ignore (gcell_of h : gcell);
    h

  let set h v =
    if !on then begin
      let g = gcell_of h in
      g.g <- v
    end

  let set_max h v =
    if !on then begin
      let g = gcell_of h in
      if v > g.g then g.g <- v
    end

  let gauge_value h = (gcell_of h).g

  let histogram name ~edges =
    if Array.length edges = 0 then
      invalid_arg "Telemetry.Metrics.histogram: no bucket edges";
    for i = 1 to Array.length edges - 1 do
      if edges.(i) <= edges.(i - 1) then
        invalid_arg "Telemetry.Metrics.histogram: edges must increase"
    done;
    let h =
      Mutex.protect handles_mu (fun () ->
          match Hashtbl.find_opt handles name with
          | Some (HHist h) ->
              if h.hm_edges <> edges then
                invalid_arg
                  (Printf.sprintf
                     "Telemetry.Metrics.histogram: %S exists with different \
                      edges"
                     name);
              h
          | Some h -> clash name h
          | None ->
              let h =
                { hm_name = name; hm_edges = Array.copy edges; hm_idx = !n_hists }
              in
              Stdlib.incr n_hists;
              Hashtbl.replace handles name (HHist h);
              h)
    in
    ignore (hcell_of h : hcell);
    h

  let observe h v =
    if !on then begin
      let cell = hcell_of h in
      let n = Array.length h.hm_edges in
      let i = ref 0 in
      while !i < n && v > h.hm_edges.(!i) do
        Stdlib.incr i
      done;
      cell.h_counts.(!i) <- cell.h_counts.(!i) + 1;
      cell.h_sum <- cell.h_sum +. v
    end

  let bucket_counts h = Array.copy (hcell_of h).h_counts

  (* Prometheus-style quantile estimate: find the bucket holding the
     rank, interpolate linearly inside it; observations in the overflow
     bucket report the last finite edge. A histogram whose observations
     were all exactly zero ([sum = 0] with a non-negative value domain)
     reports 0 instead of interpolating phantom mass into the first
     bucket. *)
  let quantile_ec edges counts ~sum q =
    let n = Array.fold_left ( + ) 0 counts in
    if n = 0 then None
    else if sum = 0.0 && edges.(0) >= 0.0 then Some 0.0
    else begin
      let rank = q *. float_of_int n in
      let nedges = Array.length edges in
      let rec go i cum =
        if i >= nedges then Some edges.(nedges - 1)
        else begin
          let cum' = cum + counts.(i) in
          if float_of_int cum' >= rank && counts.(i) > 0 then begin
            let lo = if i = 0 then Float.min 0.0 edges.(0) else edges.(i - 1) in
            let hi = edges.(i) in
            let frac = (rank -. float_of_int cum) /. float_of_int counts.(i) in
            Some (lo +. ((hi -. lo) *. frac))
          end
          else go (i + 1) cum'
        end
      in
      go 0 0
    end

  let quantile h q =
    let cell = hcell_of h in
    quantile_ec h.hm_edges cell.h_counts ~sum:cell.h_sum q

  (* ---- mergeable exports ------------------------------------------- *)

  type value =
    | Counter_v of float
    | Gauge_v of float
    | Histogram_v of { edges : float array; counts : int array; sum : float }

  type export = (string * value) list

  let export () =
    let store = Domain.DLS.get store_key in
    Hashtbl.fold
      (fun name cell acc ->
        let v =
          match cell with
          | CCounter c -> Counter_v c.c
          | CGauge g -> Gauge_v g.g
          | CHist h ->
              Histogram_v
                {
                  edges = Array.copy h.h_edges;
                  counts = Array.copy h.h_counts;
                  sum = h.h_sum;
                }
        in
        (name, v) :: acc)
      store.cells []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let merge_value name a b =
    match (a, b) with
    | Counter_v x, Counter_v y -> Counter_v (x +. y)
    | Gauge_v x, Gauge_v y -> Gauge_v (Float.max x y)
    | Histogram_v ha, Histogram_v hb ->
        if ha.edges <> hb.edges then
          invalid_arg
            (Printf.sprintf
               "Telemetry.Metrics.merge: %S has mismatched histogram edges"
               name);
        Histogram_v
          {
            edges = ha.edges;
            counts =
              Array.init (Array.length ha.counts) (fun i ->
                  ha.counts.(i) + hb.counts.(i));
            sum = ha.sum +. hb.sum;
          }
    | _ ->
        invalid_arg
          (Printf.sprintf "Telemetry.Metrics.merge: %S has mismatched kinds"
             name)

  let rec merge a b =
    match (a, b) with
    | [], e | e, [] -> e
    | (na, va) :: ta, (nb, vb) :: tb ->
        let c = String.compare na nb in
        if c < 0 then (na, va) :: merge ta b
        else if c > 0 then (nb, vb) :: merge a tb
        else (na, merge_value na va vb) :: merge ta tb

  let rows_of name = function
    | Counter_v c -> [ (name, fmt_value c) ]
    | Gauge_v g -> [ (name, fmt_value g) ]
    | Histogram_v { edges; counts; sum } ->
        let n = Array.length edges in
        let cum = ref 0 in
        let buckets =
          List.init (n + 1) (fun i ->
              cum := !cum + counts.(i);
              let le = if i = n then "+inf" else Printf.sprintf "%g" edges.(i) in
              (Printf.sprintf "%s{le=%s}" name le, string_of_int !cum))
        in
        let percentiles =
          List.filter_map
            (fun (label, q) ->
              match quantile_ec edges counts ~sum q with
              | Some v -> Some (name ^ "." ^ label, fmt_value v)
              | None -> None)
            [ ("p50", 0.50); ("p95", 0.95); ("p99", 0.99) ]
        in
        buckets @ [ (name ^ ".sum", fmt_value sum) ] @ percentiles

  let export_rows e = List.concat_map (fun (name, v) -> rows_of name v) e
  let snapshot () = export_rows (export ())

  let values () =
    export ()
    |> List.filter_map (fun (name, v) ->
           match v with
           | Counter_v c -> Some (name, c)
           | Gauge_v g -> Some (name, g)
           | Histogram_v _ -> None)

  let find name =
    let store = Domain.DLS.get store_key in
    match Hashtbl.find_opt store.cells name with
    | Some (CCounter c) -> Some c.c
    | Some (CGauge g) -> Some g.g
    | Some (CHist _) | None -> None

  (* ---- windowed counter rates --------------------------------------- *)

  (* A rate tracker holds the delta bookkeeping health rules would
     otherwise each re-implement: sample the named counter (or gauge) on a
     caller-chosen grid and get back the per-second delta since the last
     sample. The previous observation lives in the tracker itself, so two
     trackers on one metric never interfere. *)
  type rate = {
    r_name : string;
    mutable r_prev : (float * float) option; (* (t_s, value) at last sample *)
  }

  let rate name = { r_name = name; r_prev = None }
  let rate_name r = r.r_name

  let rate_sample r ~now_s =
    match find r.r_name with
    | None ->
        r.r_prev <- None;
        None
    | Some v -> (
        let prev = r.r_prev in
        r.r_prev <- Some (now_s, v);
        match prev with
        | Some (t0, v0) when now_s > t0 -> Some ((v -. v0) /. (now_s -. t0))
        | Some _ | None -> None)

  let dump fmt () =
    List.iter
      (fun (name, v) -> Format.fprintf fmt "%s %s@\n" name v)
      (snapshot ())

  let dump_string () = Format.asprintf "%a" dump ()

  let reset () =
    let store = Domain.DLS.get store_key in
    Hashtbl.iter
      (fun _ cell ->
        match cell with
        | CCounter c -> c.c <- 0.0
        | CGauge g -> g.g <- 0.0
        | CHist h ->
            Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
            h.h_sum <- 0.0)
      store.cells

  let with_fresh_store f =
    let prev = Domain.DLS.get store_key in
    Domain.DLS.set store_key (new_store ());
    Fun.protect ~finally:(fun () -> Domain.DLS.set store_key prev) f
end

module Openmetrics = struct
  (* Prometheus/OpenMetrics text exposition of a metric export. Names map
     dots to underscores (the only character in our hierarchical names
     that the format forbids); rows keep the export's sorted-by-name order
     and histograms expand to cumulative _bucket rows (closed by the +Inf
     bucket), _sum and _count — so the output is byte-deterministic for a
     given update history, just like Metrics.snapshot. *)

  let sanitize name =
    String.map (fun c -> if c = '.' then '_' else c) name

  let pp fmt (e : Metrics.export) =
    List.iter
      (fun (name, v) ->
        let n = sanitize name in
        match v with
        | Metrics.Counter_v c ->
            Format.fprintf fmt "# TYPE %s counter@\n%s %s@\n" n n (fmt_value c)
        | Metrics.Gauge_v g ->
            Format.fprintf fmt "# TYPE %s gauge@\n%s %s@\n" n n (fmt_value g)
        | Metrics.Histogram_v { edges; counts; sum } ->
            Format.fprintf fmt "# TYPE %s histogram@\n" n;
            let cum = ref 0 in
            Array.iteri
              (fun i c ->
                cum := !cum + c;
                Format.fprintf fmt "%s_bucket{le=\"%g\"} %d@\n" n edges.(i)
                  !cum)
              (Array.sub counts 0 (Array.length edges));
            cum := !cum + counts.(Array.length edges);
            Format.fprintf fmt "%s_bucket{le=\"+Inf\"} %d@\n" n !cum;
            Format.fprintf fmt "%s_sum %s@\n" n (fmt_value sum);
            Format.fprintf fmt "%s_count %d@\n" n !cum)
      e;
    Format.fprintf fmt "# EOF@\n"

  let of_export e = Format.asprintf "%a" pp e
  let to_string () = of_export (Metrics.export ())

  let write path e =
    let oc = open_out path in
    let fmt = Format.formatter_of_out_channel oc in
    pp fmt e;
    Format.pp_print_flush fmt ();
    close_out oc
end

module Tracing = struct
  type kind = Span | Instant | Sample

  type event = {
    track : string;
    lane : string;
    kind : kind;
    name : string;
    ts : int;
    dur : int;
    args : (string * float) list;
  }

  (* Recording state is domain-local for the same reason metric stores are:
     a worker domain running a device never interleaves its events into the
     main domain's trace buffer. *)
  type tstate = {
    mutable armed : bool;
    mutable buf : event list; (* newest first *)
    mutable n : int;
    mutable n_dropped : int;
    mutable limit : int;
  }

  let tkey : tstate Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { armed = false; buf = []; n = 0; n_dropped = 0; limit = 2_000_000 })

  let start () = (Domain.DLS.get tkey).armed <- true
  let stop () = (Domain.DLS.get tkey).armed <- false
  let recording () = (Domain.DLS.get tkey).armed && !on

  let clear () =
    let t = Domain.DLS.get tkey in
    t.buf <- [];
    t.n <- 0;
    t.n_dropped <- 0

  let record ev =
    let t = Domain.DLS.get tkey in
    if t.n >= t.limit then t.n_dropped <- t.n_dropped + 1
    else begin
      t.buf <- ev :: t.buf;
      t.n <- t.n + 1
    end

  let span ~track ~lane ~name ?(args = []) ~start ~stop () =
    if recording () then
      record
        { track; lane; kind = Span; name; ts = start; dur = stop - start; args }

  let instant ~track ~lane ~name ?(args = []) ts =
    if recording () then
      record { track; lane; kind = Instant; name; ts; dur = 0; args }

  let sample ~track ~name ts v =
    if recording () then
      record
        {
          track;
          lane = "";
          kind = Sample;
          name;
          ts;
          dur = 0;
          args = [ ("value", v) ];
        }

  let events () = List.rev (Domain.DLS.get tkey).buf
  let length () = (Domain.DLS.get tkey).n
  let dropped () = (Domain.DLS.get tkey).n_dropped

  let set_limit l =
    if l < 0 then invalid_arg "Telemetry.Tracing.set_limit";
    (Domain.DLS.get tkey).limit <- l
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Err of string

  let parse s =
    let len = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Err (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let n = String.length word in
      if !pos + n <= len && String.sub s !pos n = word then begin
        pos := !pos + n;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= len then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let cp =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* UTF-8 encode the BMP code point *)
              if cp < 0x80 then Buffer.add_char b (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
              end
          | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < len && is_num_char s.[!pos] do
        advance ()
      done;
      let slice = String.sub s start (!pos - start) in
      match float_of_string_opt slice with
      | Some f -> Num f
      | None -> fail (Printf.sprintf "bad number %S" slice)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> len then Error (Printf.sprintf "trailing data at offset %d" !pos)
      else Ok v
    with Err msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Chrome_trace = struct
  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* ns -> us with ns precision; chrome accepts fractional microseconds *)
  let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.)

  let pp_args fmt args =
    match args with
    | [] -> ()
    | args ->
        Format.fprintf fmt ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Format.fprintf fmt ",";
            Format.fprintf fmt "\"%s\":%s" (escape k) (fmt_value v))
          args;
        Format.fprintf fmt "}"

  let pp fmt (events : Tracing.event list) =
    (* pids/tids by first appearance: deterministic for a given event list *)
    let pids : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let tids : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
    let next_tid : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let pid_order = ref [] and tid_order = ref [] in
    let pid_of track =
      match Hashtbl.find_opt pids track with
      | Some p -> p
      | None ->
          let p = Hashtbl.length pids + 1 in
          Hashtbl.replace pids track p;
          pid_order := track :: !pid_order;
          p
    in
    let tid_of track lane =
      if lane = "" then 0
      else
        match Hashtbl.find_opt tids (track, lane) with
        | Some t -> t
        | None ->
            let t =
              match Hashtbl.find_opt next_tid track with Some n -> n | None -> 1
            in
            Hashtbl.replace next_tid track (t + 1);
            Hashtbl.replace tids (track, lane) t;
            tid_order := (track, lane) :: !tid_order;
            t
    in
    List.iter
      (fun (e : Tracing.event) -> ignore (tid_of e.track e.lane : int); ignore (pid_of e.track : int))
      events;
    Format.fprintf fmt "{\"traceEvents\":[";
    let first = ref true in
    let sep () =
      if !first then first := false else Format.fprintf fmt ",";
      Format.fprintf fmt "@\n"
    in
    List.iter
      (fun track ->
        sep ();
        Format.fprintf fmt
          "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
          (pid_of track) (escape track))
      (List.rev !pid_order);
    List.iter
      (fun (track, lane) ->
        sep ();
        Format.fprintf fmt
          "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
          (pid_of track) (tid_of track lane) (escape lane))
      (List.rev !tid_order);
    List.iter
      (fun (e : Tracing.event) ->
        sep ();
        let pid = pid_of e.track and tid = tid_of e.track e.lane in
        match e.kind with
        | Tracing.Span ->
            Format.fprintf fmt
              "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%s,\"dur\":%s%a}"
              pid tid (escape e.name) (escape e.track) (us e.ts) (us e.dur)
              pp_args e.args
        | Tracing.Instant ->
            Format.fprintf fmt
              "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%s,\"s\":\"t\"%a}"
              pid tid (escape e.name) (escape e.track) (us e.ts) pp_args e.args
        | Tracing.Sample ->
            Format.fprintf fmt
              "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"ts\":%s%a}"
              pid tid (escape e.name) (us e.ts) pp_args e.args)
      events;
    Format.fprintf fmt "@\n]}@\n"

  let to_string events = Format.asprintf "%a" pp events

  let write path events =
    let oc = open_out path in
    let fmt = Format.formatter_of_out_channel oc in
    pp fmt events;
    Format.pp_print_flush fmt ();
    close_out oc

  let validate text =
    match Json.parse text with
    | Error msg -> Error ("invalid JSON: " ^ msg)
    | Ok json -> (
        match Json.member "traceEvents" json with
        | None -> Error "missing \"traceEvents\" key"
        | Some (Json.Arr evs) ->
            let count = ref 0 in
            let bad = ref None in
            List.iteri
              (fun i ev ->
                match Json.member "ph" ev with
                | Some (Json.Str "M") -> ()
                | Some (Json.Str _) -> Stdlib.incr count
                | _ ->
                    if !bad = None then
                      bad := Some (Printf.sprintf "event %d has no \"ph\"" i))
              evs;
            (match !bad with Some msg -> Error msg | None -> Ok !count)
        | Some _ -> Error "\"traceEvents\" is not an array")
end
