let on = ref true
let enabled () = !on
let set_enabled b = on := b

(* Values render as integers when they are integers, [%g] otherwise, so
   snapshots never depend on accumulated floating-point noise in the
   formatting path itself. *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

module Metrics = struct
  type counter = { mutable c : float }
  type gauge = { mutable g : float }

  type histogram = {
    edges : float array; (* strictly increasing upper bounds *)
    counts : int array; (* length = edges + 1; last is overflow *)
    mutable sum : float;
  }

  type metric = Counter of counter | Gauge of gauge | Histogram of histogram

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  let kind_name = function
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Histogram _ -> "histogram"

  let clash name m =
    invalid_arg
      (Printf.sprintf "Telemetry.Metrics: %S is already a %s" name
         (kind_name m))

  let counter name =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> c
    | Some m -> clash name m
    | None ->
        let c = { c = 0.0 } in
        Hashtbl.replace registry name (Counter c);
        c

  let incr c = if !on then c.c <- c.c +. 1.0
  let add c v = if !on then c.c <- c.c +. v
  let counter_value c = c.c

  let gauge name =
    match Hashtbl.find_opt registry name with
    | Some (Gauge g) -> g
    | Some m -> clash name m
    | None ->
        let g = { g = 0.0 } in
        Hashtbl.replace registry name (Gauge g);
        g

  let set g v = if !on then g.g <- v
  let set_max g v = if !on && v > g.g then g.g <- v
  let gauge_value g = g.g

  let histogram name ~edges =
    if Array.length edges = 0 then
      invalid_arg "Telemetry.Metrics.histogram: no bucket edges";
    for i = 1 to Array.length edges - 1 do
      if edges.(i) <= edges.(i - 1) then
        invalid_arg "Telemetry.Metrics.histogram: edges must increase"
    done;
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) ->
        if h.edges <> edges then
          invalid_arg
            (Printf.sprintf
               "Telemetry.Metrics.histogram: %S exists with different edges"
               name);
        h
    | Some m -> clash name m
    | None ->
        let h =
          {
            edges = Array.copy edges;
            counts = Array.make (Array.length edges + 1) 0;
            sum = 0.0;
          }
        in
        Hashtbl.replace registry name (Histogram h);
        h

  let observe h v =
    if !on then begin
      let n = Array.length h.edges in
      let i = ref 0 in
      while !i < n && v > h.edges.(!i) do
        Stdlib.incr i
      done;
      h.counts.(!i) <- h.counts.(!i) + 1;
      h.sum <- h.sum +. v
    end

  let bucket_counts h = Array.copy h.counts

  (* Prometheus-style quantile estimate: find the bucket holding the
     rank, interpolate linearly inside it; observations in the overflow
     bucket report the last finite edge. *)
  let quantile h q =
    let n = Array.fold_left ( + ) 0 h.counts in
    if n = 0 then None
    else begin
      let rank = q *. float_of_int n in
      let nedges = Array.length h.edges in
      let rec go i cum =
        if i >= nedges then Some h.edges.(nedges - 1)
        else begin
          let cum' = cum + h.counts.(i) in
          if float_of_int cum' >= rank && h.counts.(i) > 0 then begin
            let lo =
              if i = 0 then Float.min 0.0 h.edges.(0) else h.edges.(i - 1)
            in
            let hi = h.edges.(i) in
            let frac = (rank -. float_of_int cum) /. float_of_int h.counts.(i) in
            Some (lo +. ((hi -. lo) *. frac))
          end
          else go (i + 1) cum'
        end
      in
      go 0 0
    end

  let sorted_metrics () =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let rows_of name = function
    | Counter c -> [ (name, fmt_value c.c) ]
    | Gauge g -> [ (name, fmt_value g.g) ]
    | Histogram h ->
        let n = Array.length h.edges in
        let cum = ref 0 in
        let buckets =
          List.init (n + 1) (fun i ->
              cum := !cum + h.counts.(i);
              let le = if i = n then "+inf" else Printf.sprintf "%g" h.edges.(i) in
              (Printf.sprintf "%s{le=%s}" name le, string_of_int !cum))
        in
        let percentiles =
          List.filter_map
            (fun (label, q) ->
              match quantile h q with
              | Some v -> Some (name ^ "." ^ label, fmt_value v)
              | None -> None)
            [ ("p50", 0.50); ("p95", 0.95); ("p99", 0.99) ]
        in
        buckets @ [ (name ^ ".sum", fmt_value h.sum) ] @ percentiles

  let snapshot () =
    sorted_metrics () |> List.concat_map (fun (name, m) -> rows_of name m)

  let values () =
    sorted_metrics ()
    |> List.filter_map (fun (name, m) ->
           match m with
           | Counter c -> Some (name, c.c)
           | Gauge g -> Some (name, g.g)
           | Histogram _ -> None)

  let find name =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> Some c.c
    | Some (Gauge g) -> Some g.g
    | Some (Histogram _) | None -> None

  let dump fmt () =
    List.iter
      (fun (name, v) -> Format.fprintf fmt "%s %s@\n" name v)
      (snapshot ())

  let dump_string () = Format.asprintf "%a" dump ()

  let reset () =
    Hashtbl.iter
      (fun _ m ->
        match m with
        | Counter c -> c.c <- 0.0
        | Gauge g -> g.g <- 0.0
        | Histogram h ->
            Array.fill h.counts 0 (Array.length h.counts) 0;
            h.sum <- 0.0)
      registry
end

module Tracing = struct
  type kind = Span | Instant | Sample

  type event = {
    track : string;
    lane : string;
    kind : kind;
    name : string;
    ts : int;
    dur : int;
    args : (string * float) list;
  }

  let armed = ref false
  let buf = ref [] (* newest first *)
  let n = ref 0
  let n_dropped = ref 0
  let limit = ref 2_000_000

  let start () = armed := true
  let stop () = armed := false
  let recording () = !armed && !on

  let clear () =
    buf := [];
    n := 0;
    n_dropped := 0

  let record ev =
    if !n >= !limit then Stdlib.incr n_dropped
    else begin
      buf := ev :: !buf;
      Stdlib.incr n
    end

  let span ~track ~lane ~name ?(args = []) ~start ~stop () =
    if recording () then
      record { track; lane; kind = Span; name; ts = start; dur = stop - start; args }

  let instant ~track ~lane ~name ?(args = []) ts =
    if recording () then
      record { track; lane; kind = Instant; name; ts; dur = 0; args }

  let sample ~track ~name ts v =
    if recording () then
      record
        {
          track;
          lane = "";
          kind = Sample;
          name;
          ts;
          dur = 0;
          args = [ ("value", v) ];
        }

  let events () = List.rev !buf
  let length () = !n
  let dropped () = !n_dropped

  let set_limit l =
    if l < 0 then invalid_arg "Telemetry.Tracing.set_limit";
    limit := l
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Err of string

  let parse s =
    let len = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Err (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let n = String.length word in
      if !pos + n <= len && String.sub s !pos n = word then begin
        pos := !pos + n;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= len then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let cp =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* UTF-8 encode the BMP code point *)
              if cp < 0x80 then Buffer.add_char b (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
              end
          | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < len && is_num_char s.[!pos] do
        advance ()
      done;
      let slice = String.sub s start (!pos - start) in
      match float_of_string_opt slice with
      | Some f -> Num f
      | None -> fail (Printf.sprintf "bad number %S" slice)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> len then Error (Printf.sprintf "trailing data at offset %d" !pos)
      else Ok v
    with Err msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Chrome_trace = struct
  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* ns -> us with ns precision; chrome accepts fractional microseconds *)
  let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.)

  let pp_args fmt args =
    match args with
    | [] -> ()
    | args ->
        Format.fprintf fmt ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Format.fprintf fmt ",";
            Format.fprintf fmt "\"%s\":%s" (escape k) (fmt_value v))
          args;
        Format.fprintf fmt "}"

  let pp fmt (events : Tracing.event list) =
    (* pids/tids by first appearance: deterministic for a given event list *)
    let pids : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let tids : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
    let next_tid : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let pid_order = ref [] and tid_order = ref [] in
    let pid_of track =
      match Hashtbl.find_opt pids track with
      | Some p -> p
      | None ->
          let p = Hashtbl.length pids + 1 in
          Hashtbl.replace pids track p;
          pid_order := track :: !pid_order;
          p
    in
    let tid_of track lane =
      if lane = "" then 0
      else
        match Hashtbl.find_opt tids (track, lane) with
        | Some t -> t
        | None ->
            let t =
              match Hashtbl.find_opt next_tid track with Some n -> n | None -> 1
            in
            Hashtbl.replace next_tid track (t + 1);
            Hashtbl.replace tids (track, lane) t;
            tid_order := (track, lane) :: !tid_order;
            t
    in
    List.iter
      (fun (e : Tracing.event) -> ignore (tid_of e.track e.lane : int); ignore (pid_of e.track : int))
      events;
    Format.fprintf fmt "{\"traceEvents\":[";
    let first = ref true in
    let sep () =
      if !first then first := false else Format.fprintf fmt ",";
      Format.fprintf fmt "@\n"
    in
    List.iter
      (fun track ->
        sep ();
        Format.fprintf fmt
          "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
          (pid_of track) (escape track))
      (List.rev !pid_order);
    List.iter
      (fun (track, lane) ->
        sep ();
        Format.fprintf fmt
          "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
          (pid_of track) (tid_of track lane) (escape lane))
      (List.rev !tid_order);
    List.iter
      (fun (e : Tracing.event) ->
        sep ();
        let pid = pid_of e.track and tid = tid_of e.track e.lane in
        match e.kind with
        | Tracing.Span ->
            Format.fprintf fmt
              "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%s,\"dur\":%s%a}"
              pid tid (escape e.name) (escape e.track) (us e.ts) (us e.dur)
              pp_args e.args
        | Tracing.Instant ->
            Format.fprintf fmt
              "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%s,\"s\":\"t\"%a}"
              pid tid (escape e.name) (escape e.track) (us e.ts) pp_args e.args
        | Tracing.Sample ->
            Format.fprintf fmt
              "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"ts\":%s%a}"
              pid tid (escape e.name) (us e.ts) pp_args e.args)
      events;
    Format.fprintf fmt "@\n]}@\n"

  let to_string events = Format.asprintf "%a" pp events

  let write path events =
    let oc = open_out path in
    let fmt = Format.formatter_of_out_channel oc in
    pp fmt events;
    Format.pp_print_flush fmt ();
    close_out oc

  let validate text =
    match Json.parse text with
    | Error msg -> Error ("invalid JSON: " ^ msg)
    | Ok json -> (
        match Json.member "traceEvents" json with
        | None -> Error "missing \"traceEvents\" key"
        | Some (Json.Arr evs) ->
            let count = ref 0 in
            let bad = ref None in
            List.iteri
              (fun i ev ->
                match Json.member "ph" ev with
                | Some (Json.Str "M") -> ()
                | Some (Json.Str _) -> Stdlib.incr count
                | _ ->
                    if !bad = None then
                      bad := Some (Printf.sprintf "event %d has no \"ph\"" i))
              evs;
            (match !bad with Some msg -> Error msg | None -> Ok !count)
        | Some _ -> Error "\"traceEvents\" is not an array")
end
