(** Kernel-wide telemetry: a metrics registry, a structured trace recorder
    with a process/track model, and a Chrome trace-event (catapult) JSON
    exporter.

    The library is a leaf: it depends on nothing and never reads the wall
    clock, so every snapshot and exported trace is byte-reproducible for a
    given sequence of updates. Timestamps are plain integers — the simulator
    passes nanoseconds since sim start ([Time.t]).

    Two switches control cost:

    - {!enabled} (default [true]) gates {e all} recording. Metric updates
      against pre-resolved handles are a single branch + float store when
      enabled and a single branch when disabled, so instrumented hot paths
      stay within noise of uninstrumented ones.
    - {!Tracing.start} additionally arms event recording. Until armed (for
      instance by [psbox_sim --trace-out]), {!Tracing.span} and friends are
      a branch and nothing else — no allocation, no buffering. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Master switch. When [false], metric updates and trace recording are
    no-ops; registration ({!Metrics.counter} etc.) still works so handles
    can be created unconditionally. *)

(** {1 Metrics registry}

    Named counters, gauges and fixed-bucket histograms. Names are
    hierarchical, dot-separated, lower-case:
    [subsystem[.instance].quantity] — e.g. [smp.core0.ctx_switches],
    [budget.app3.throttle_level], [sim.events_fired].

    Handles are found-or-created by name in a process-global memo (guarded
    by a mutex, so registration is safe from any domain): calling
    {!Metrics.counter} twice with the same name returns the same handle, so
    several simulator instances share (and sum into) the same metric. The
    mutable state behind a handle, however, is {e domain-local}: each
    domain — and each {!Metrics.with_fresh_store} scope — accumulates into
    its own store, so concurrent device simulations never interleave
    metrics, and a shard's totals are collected with {!Metrics.export} and
    combined with {!Metrics.merge}. Resolve handles once, at subsystem
    creation; hot-path updates on a handle are O(1) and allocation-free. *)
module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Find or create. @raise Invalid_argument if [name] is already
      registered as a different kind of metric. *)

  val incr : counter -> unit
  val add : counter -> float -> unit
  val counter_value : counter -> float

  val gauge : string -> gauge
  val set : gauge -> float -> unit

  val set_max : gauge -> float -> unit
  (** Keep the running maximum of the observed values. *)

  val gauge_value : gauge -> float

  val histogram : string -> edges:float array -> histogram
  (** Fixed upper-bound bucket edges, strictly increasing. A value [v]
      lands in the first bucket with [v <= edge], or in the implicit
      [+inf] overflow bucket. @raise Invalid_argument on empty or
      non-increasing edges, or if [name] exists with different edges. *)

  val observe : histogram -> float -> unit

  val bucket_counts : histogram -> int array
  (** Per-bucket (non-cumulative) counts; last entry is the overflow
      bucket. Length = [Array.length edges + 1]. *)

  val quantile : histogram -> float -> float option
  (** Prometheus-style quantile estimate from the bucket counts: locate
      the bucket holding the rank, interpolate linearly inside it;
      observations in the [+inf] overflow bucket report the last finite
      edge. [None] on an empty histogram; exactly [0] (no interpolation)
      when every recorded observation was zero, so all-zero histograms
      never report phantom mass from the first bucket. *)

  (** {2 Windowed counter rates}

      The delta bookkeeping behind "events per second over the last
      window", packaged once so streaming consumers (health rules) don't
      each re-implement it. A tracker is an independent cursor over one
      named metric: it remembers the value it saw at the previous sample
      and answers the per-second delta. *)

  type rate

  val rate : string -> rate
  (** A fresh tracker over the named counter or gauge. The metric does not
      have to exist yet. *)

  val rate_name : rate -> string

  val rate_sample : rate -> now_s:float -> float option
  (** Record the metric's current value at [now_s] and return
      [(value - previous) / (now_s - previous_t)]. [None] on the first
      sample after creation, whenever the metric is unregistered in the
      current store (the tracker then restarts from scratch), or if no
      time has passed. *)

  val snapshot : unit -> (string * string) list
  (** Every registered metric as [(row_name, value)] pairs, metrics sorted
      by name, histogram bucket rows ([name{le=...}], cumulative, then
      [name.sum], then [name.p50]/[name.p95]/[name.p99] estimated with
      {!quantile} when non-empty) kept in bucket order. Deterministic:
      same update history, same bytes. *)

  val values : unit -> (string * float) list
  (** Counters and gauges only (no histogram rows), sorted by name. *)

  val find : string -> float option
  (** Current value of a counter or gauge by name; [None] if unregistered
      or a histogram. *)

  val dump : Format.formatter -> unit -> unit
  (** Print {!snapshot} one [name value] row per line. *)

  val dump_string : unit -> string

  val reset : unit -> unit
  (** Zero every metric in the current domain's store (registrations
      survive). Intended for tests and for isolating per-run counts in
      long-lived processes. *)

  (** {2 Mergeable exports}

      A snapshot of the current domain's store as data rather than
      formatted rows, mergeable across devices/shards: counters sum,
      gauges keep the max, histograms merge bucket-wise. This is the fleet
      reduction primitive — each device exports at end of run, and the
      exports fold into one fleet-level export whose {!export_rows} look
      exactly like a single device's {!snapshot}. *)

  type value =
    | Counter_v of float
    | Gauge_v of float
    | Histogram_v of { edges : float array; counts : int array; sum : float }
        (** [counts] has [Array.length edges + 1] entries; last is the
            [+inf] overflow bucket. *)

  type export = (string * value) list
  (** Sorted by name, each name at most once. *)

  val export : unit -> export
  (** Every metric in the current domain's store, values copied (later
      updates don't mutate the export). *)

  val merge : export -> export -> export
  (** Union by name: counters sum, gauges take the maximum, histograms add
      bucket counts and sums. Associative and commutative, so a fleet
      reduction is order-insensitive up to float addition order — merge in
      a fixed order for byte-determinism. @raise Invalid_argument if a
      name appears in both with different kinds or histogram edges. *)

  val export_rows : export -> (string * string) list
  (** Render an export in the exact row format of {!snapshot} —
      [snapshot () = export_rows (export ())]. *)

  val with_fresh_store : (unit -> 'a) -> 'a
  (** [with_fresh_store f] runs [f] with the current domain switched to a
      brand-new empty metric store, then restores the previous store
      (also on exception). Handles created before, during or after remain
      valid in both scopes. This is how one device simulation is isolated
      from the next when devices run sequentially in a single domain. *)
end

(** {1 OpenMetrics / Prometheus text exposition}

    Renders a metric export in the Prometheus text exposition format
    ([# TYPE] lines; histograms as cumulative [_bucket] rows closed by
    [+Inf], plus [_sum] and [_count]). Dots in metric names become
    underscores; rows keep the export's sorted-by-name order, so output is
    byte-deterministic for a given update history — the [--metrics-out]
    file format. *)
module Openmetrics : sig
  val pp : Format.formatter -> Metrics.export -> unit
  val of_export : Metrics.export -> string

  val to_string : unit -> string
  (** The current domain's store, exported and rendered. *)

  val write : string -> Metrics.export -> unit
  (** [write path e] — render to a file. *)
end

(** {1 Structured tracing}

    Events carry a [track] (Chrome "process", e.g. a subsystem such as
    ["kernel.cfs"] or ["kernel.accel.gpu"]) and a [lane] (Chrome "thread"
    within the track, e.g. ["core0"] or ["app3"]). Recording is buffered
    in memory, capped (default 2M events, see {!Tracing.set_limit}) with a
    deterministic drop count, and only active when both {!enabled} and
    {!Tracing.start} have been set. The recorder state (armed flag, buffer,
    cap) is domain-local: a worker domain never interleaves events into
    another domain's trace. *)
module Tracing : sig
  type kind = Span | Instant | Sample

  type event = {
    track : string;
    lane : string;
    kind : kind;
    name : string;
    ts : int;  (** nanoseconds *)
    dur : int;  (** nanoseconds; 0 unless [kind = Span] *)
    args : (string * float) list;
  }

  val start : unit -> unit
  (** Arm recording (subject to {!enabled}). *)

  val stop : unit -> unit

  val recording : unit -> bool

  val clear : unit -> unit
  (** Drop all buffered events and reset the drop counter. *)

  val span :
    track:string ->
    lane:string ->
    name:string ->
    ?args:(string * float) list ->
    start:int ->
    stop:int ->
    unit ->
    unit

  val instant :
    track:string ->
    lane:string ->
    name:string ->
    ?args:(string * float) list ->
    int ->
    unit

  val sample : track:string -> name:string -> int -> float -> unit
  (** A counter-timeline sample (Chrome ["C"] event). *)

  val events : unit -> event list
  (** Recorded events, oldest first. *)

  val length : unit -> int

  val dropped : unit -> int
  (** Events discarded after the buffer cap was reached. *)

  val set_limit : int -> unit
end

(** {1 Minimal JSON}

    A tiny parser used to validate exported traces ([psbox_sim trace-check],
    [make trace-smoke]) and for round-trip tests — no external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  val member : string -> t -> t option
end

(** {1 Chrome trace-event exporter}

    Serialises {!Tracing.event}s to the catapult JSON format accepted by
    [chrome://tracing] and [https://ui.perfetto.dev]. Tracks map to pids and
    lanes to tids (assigned by first appearance, so output is deterministic),
    announced with [process_name]/[thread_name] metadata events. Spans
    become ["X"] complete events, instants ["i"], samples ["C"]; timestamps
    are microseconds with nanosecond precision. *)
module Chrome_trace : sig
  val pp : Format.formatter -> Tracing.event list -> unit
  val to_string : Tracing.event list -> string

  val write : string -> Tracing.event list -> unit
  (** [write path events] — export to a file. *)

  val validate : string -> (int, string) result
  (** Parse trace JSON text and return the number of non-metadata events,
      or a description of what is malformed. *)
end
