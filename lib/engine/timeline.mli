(** Piecewise-constant time series with prefix-sum energy.

    A timeline records the value of a quantity (e.g. the power drawn on a
    rail, in watts) as a step function of simulated time. Breakpoints must be
    appended in nondecreasing time order, which is what a simulation
    naturally produces. Alongside each breakpoint the timeline maintains the
    cumulative integral since the first retained breakpoint, so exact window
    integrals ({!integrate}, {!mean}) cost two binary searches plus O(1)
    arithmetic instead of a walk over every breakpoint in the window. *)

type t

val create : ?initial:float -> ?retention:Time.span -> unit -> t
(** [create ~initial ()] starts at value [initial] (default [0.]) from time
    zero. When [retention] is given, history older than roughly that span is
    compacted away automatically as new breakpoints arrive (see {!compact}),
    bounding memory on multi-hour runs; integrals across still-retained
    windows stay exact. Without [retention] the full history is kept.
    @raise Invalid_argument if [retention] is not positive. *)

val set : t -> Time.t -> float -> unit
(** [set tl t v] records that the value becomes [v] at instant [t]. Setting
    at a time earlier than the last breakpoint raises [Invalid_argument];
    setting at exactly the same instant overwrites the previous value for
    that instant. *)

val value_at : t -> Time.t -> float
(** The value in effect at instant [t]. *)

val last_time : t -> Time.t
(** Time of the most recent breakpoint. *)

val length : t -> int
(** Number of retained breakpoints. *)

val breakpoints : t -> (Time.t * float) list
(** All retained breakpoints, oldest first. *)

val iter_breakpoints : t -> f:(Time.t -> float -> unit) -> unit
(** Apply [f time value] to each retained breakpoint, oldest first, without
    materializing the tuple list {!breakpoints} builds. *)

val energy_at : t -> Time.t -> float
(** [energy_at tl t] is the cumulative integral of the step function from
    the origin up to [t], in value-seconds. Stable across {!compact}: the
    energy of discarded breakpoints is folded into a base term, so
    differences of [energy_at] remain exact for any window inside the
    retained horizon. *)

val integrate : t -> Time.t -> Time.t -> float
(** [integrate tl t0 t1] is the exact integral of the step function over
    [\[t0, t1\]] in value-seconds (e.g. joules for a watts timeline),
    computed as [energy_at t1 -. energy_at t0].
    @raise Invalid_argument if [t1 < t0]. *)

val mean : t -> Time.t -> Time.t -> float
(** Time-weighted mean value over an interval. *)

val compact : t -> before:Time.t -> int
(** [compact tl ~before:t] discards breakpoints strictly older than the one
    governing [t], folding their energy into the {!energy_at} base. Returns
    the number of breakpoints dropped. Point queries and integrals earlier
    than the new horizon degrade to the oldest retained value; queries at or
    after it are unaffected. *)

val dropped : t -> int
(** Total breakpoints discarded by compaction so far. *)

val samples :
  t -> period:Time.span -> from:Time.t -> until:Time.t -> (Time.t * float) array
(** [samples tl ~period ~from ~until] resamples the timeline at a fixed
    period, like a DAQ would: one sample at [from], [from+period], ... up to
    and including [until] when aligned. *)

val iter_samples :
  t ->
  period:Time.span ->
  from:Time.t ->
  until:Time.t ->
  f:(Time.t -> float -> unit) ->
  unit
(** Like {!samples} but applies [f time value] to each sample instead of
    building the tuple array, and walks the breakpoint index incrementally
    instead of binary-searching per sample.
    @raise Invalid_argument if [period] is not positive. *)

val fold_intervals :
  t ->
  from:Time.t ->
  until:Time.t ->
  init:'a ->
  f:('a -> Time.t -> Time.t -> float -> 'a) ->
  'a
(** [fold_intervals tl ~from ~until ~init ~f] folds [f acc start stop value]
    over each constant-valued interval intersecting [\[from, until\]],
    clipped to that window, oldest first — {!map_intervals} without the
    intermediate list, for accumulating callers (window energy sums). *)

val map_intervals :
  t -> from:Time.t -> until:Time.t -> f:(Time.t -> Time.t -> float -> 'a) -> 'a list
(** Apply [f start stop value] to each constant-valued interval intersecting
    [\[from, until\]], clipped to that window, oldest first. *)
