type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
}

let create ~cmp = { cmp; data = [||]; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let grow h x =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let data = Array.make ncap x in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    if l < h.len && h.cmp h.data.(l) h.data.(i) < 0 then l else i
  in
  let smallest =
    if r < h.len && h.cmp h.data.(r) h.data.(smallest) < 0 then r
    else smallest
  in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let push h x =
  grow h x;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some h.data.(0)

(* Allocation-free hot-loop primitives: callers must check [size] first. *)
let top h = h.data.(0)

let drop h =
  h.len <- h.len - 1;
  h.data.(0) <- h.data.(h.len);
  if h.len > 0 then sift_down h 0

let pop h =
  if h.len = 0 then None
  else begin
    let min = h.data.(0) in
    drop h;
    Some min
  end

let clear h =
  h.data <- [||];
  h.len <- 0

let filter_in_place h ~keep =
  let n = ref 0 in
  for i = 0 to h.len - 1 do
    if keep h.data.(i) then begin
      if !n <> i then h.data.(!n) <- h.data.(i);
      incr n
    end
  done;
  h.len <- !n;
  (* bottom-up heapify: O(n) *)
  for i = (h.len / 2) - 1 downto 0 do
    sift_down h i
  done
