(** Deterministic pseudo-random numbers.

    A small splittable generator (SplitMix64 core) so every scenario is
    reproducible from a single seed and independent subsystems can draw from
    independent streams. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split rng] derives an independent stream; the parent stream advances. *)

val derive : seed:int -> int -> int
(** [derive ~seed i] is the [i]-th child seed of [seed], computed purely
    from [(seed, i)] (SplitMix jump + remix) — no parent state advances, so
    children can be derived in any order, from any domain, and always
    agree. This is how a fleet seed fans out into per-device seeds.
    @raise Invalid_argument if [i < 0]. *)

val bits64 : t -> int64
(** The next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli rng ~p] is [true] with probability [p]. *)

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed (Box-Muller). *)

val pick : t -> 'a array -> 'a
(** Uniformly pick an array element. @raise Invalid_argument on [[||]]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
