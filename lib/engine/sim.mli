(** Discrete-event simulator core.

    A simulator owns a virtual clock and an event queue. Events scheduled for
    the same instant fire in the order they were scheduled (FIFO within an
    instant), which keeps runs fully deterministic. Cancelled events are
    tracked exactly ({!pending} reports only live events) and their
    tombstones are reaped in bulk once they outnumber live events, so
    periodic-timer churn does not bloat the queue.

    The steady-state schedule/fire cycle is allocation-free: events live in
    pooled slots recycled through a free list, handles are immediate ints
    stamped with the slot's generation (so a stale handle to a recycled
    slot is detected and {!cancel} on it is a no-op), labels are interned
    ids backed by pre-resolved counters, and queue-depth gauge updates
    batch behind a dirty flag. See DESIGN.md, "Allocation discipline".

    The event loop feeds the process-global telemetry registry
    ({!Psbox_telemetry.Metrics}): [sim.events_fired], [sim.events_scheduled],
    [sim.events_cancelled], [sim.queue_depth]/[sim.queue_depth_max] and the
    tombstone-reap counters [sim.reap_passes]/[sim.tombstones_reaped].
    Scheduling calls accept an optional [?label] that additionally counts
    fires of that source under [sim.events.<label>]. While a trace is being
    recorded, the loop also emits a decimated queue-depth timeline on the
    ["engine.sim"] track. *)

type t

type handle
(** A handle on a scheduled event, usable to cancel it. Handles are
    immediate ints (no allocation per event): a generation stamp plus a
    pool index. Once the event fires, is reaped, or the simulator is
    {!retire}d, the handle goes stale and every operation on it is a
    harmless no-op. *)

val none : handle
(** A handle on no event: {!cancel} and {!cancelled} treat it as already
    done. The idle value for "armed timer" fields — cheaper than
    [handle option] because re-arming stores an immediate int instead of
    allocating a [Some]. *)

val is_none : handle -> bool

type backend = [ `Heap | `Wheel ]
(** Event-queue implementation: the reference binary heap, or the
    hierarchical timing wheel ({!Wheel}). Both realise the exact
    [(time, seq)] total order, so every run is byte-identical under
    either; the wheel makes insert O(1) and pop cost proportional to the
    current granule's population. *)

val create : ?backend:backend -> ?pooling:bool -> unit -> t
(** [create ()] uses the domain's default backend (initially [`Wheel];
    see {!set_default_backend}) and pooling mode (initially on; see
    {!set_default_pooling}). Reuses a {!retire}d simulator of the same
    configuration when one is available on this domain. *)

val set_default_backend : backend -> unit
(** Set the backend used by subsequent {!create} calls without an explicit
    [?backend] — the hook for a [--sched heap|wheel] CLI flag. The setting
    is domain-local: each domain picks its own default (fresh domains start
    on [`Wheel]), so concurrent fleet shards never race on it. *)

val default_backend : unit -> backend

val set_default_pooling : bool -> unit
(** Set whether subsequent {!create} calls recycle event-slot records
    (default [true]) — the hook for the [--pool on|off] A/B toggle. With
    pooling off every event allocates a fresh record (the pre-pool
    behavior); fire order and experiment output are identical either way
    (a qcheck property and the pool leg of [make sched-smoke] prove it).
    Domain-local, like {!set_default_backend}. *)

val default_pooling : unit -> bool

val backend : t -> backend
(** The queue implementation this simulator is running on. *)

val pooling : t -> bool
(** Whether this simulator recycles event-slot records. *)

val now : t -> Time.t
(** The current simulated time. *)

type label
(** An interned event label: an id resolved once via {!label}, counted
    under [sim.events.<name>] when a so-labelled event fires. The fire
    path is a branch plus an array-indexed counter bump — no string,
    hashtable, or closure per event. *)

val label : string -> label
(** Intern [name], resolving its [sim.events.<name>] counter. Idempotent;
    safe from any domain. Resolve once at subsystem creation, not per
    schedule call. *)

val label_name : label -> string
(** The name [l] was interned from (diagnostics). *)

val schedule_at : t -> ?label:label -> Time.t -> (unit -> unit) -> handle
(** [schedule_at sim t f] runs [f] when the clock reaches [t]. [?label]
    counts the fire under the label's [sim.events.<name>] counter.

    @raise Invalid_argument if [t] is in the past. *)

val schedule_after : t -> ?label:label -> Time.span -> (unit -> unit) -> handle
(** [schedule_after sim d f] runs [f] after [d] has elapsed. *)

val cancel : t -> handle -> unit
(** Cancel a scheduled event. Cancelling an already-fired, already-
    cancelled, stale (recycled slot) or {!none} handle is a no-op. *)

val cancelled : t -> handle -> bool
(** Whether the event behind [h] is a cancelled tombstone still awaiting
    its bulk reap. Stale handles (fired, reaped, or [none]) read as
    [false]: the pool cannot distinguish a reaped cancellation from a
    fired event. *)

val run_until : t -> Time.t -> unit
(** [run_until sim t] fires every event scheduled strictly before or at [t]
    and advances the clock to [t]. *)

val run : t -> unit
(** Fire events until the queue is empty. *)

val retire : t -> unit
(** Return [sim]'s scratch storage (queue arrays, slot pool) to a small
    domain-local cache for reuse by the next {!create} of the same
    configuration, invalidating every outstanding handle. The simulator
    must not be used afterwards. Fleet shards retire each device's
    simulator so per-device warm-up allocation happens once per worker. *)

val pending : t -> int
(** Number of live events still scheduled. Cancelled events are excluded,
    whether or not their tombstones have been reaped from the queue yet. *)

val queue_length : t -> int
(** Physical queue length, including cancelled tombstones awaiting the next
    bulk reap — a diagnostic; use {!pending} for the live count. *)

(** {1 Periodic events}

    The common self-rescheduling-timer pattern (scheduler ticks, DVFS
    governor sampling, housekeeping) packaged once: the timer re-arms itself
    {e before} running its body, so events the body schedules for the same
    future instant keep firing after the tick, and cancellation removes the
    in-flight event immediately. *)

type periodic
(** A recurring event, usable to stop the recurrence. *)

val schedule_every :
  t -> ?start:Time.t -> ?label:label -> Time.span -> (unit -> unit) -> periodic
(** [schedule_every sim ~start span f] runs [f] at [start] (default: one
    period from now) and every [span] thereafter until {!cancel_every}.
    [?label] counts fires under the label's [sim.events.<name>] counter;
    re-arming stores the interned id, so labelling periodics is free on
    the hot path.
    @raise Invalid_argument if [span] is not positive. *)

val cancel_every : periodic -> unit
(** Stop the recurrence and cancel the in-flight occurrence. Idempotent. *)

val periodic_stopped : periodic -> bool
