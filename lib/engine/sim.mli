(** Discrete-event simulator core.

    A simulator owns a virtual clock and an event queue. Events scheduled for
    the same instant fire in the order they were scheduled (FIFO within an
    instant), which keeps runs fully deterministic. Cancelled events are
    tracked exactly ({!pending} reports only live events) and their
    tombstones are reaped in bulk once they outnumber live events, so
    periodic-timer churn does not bloat the queue.

    The event loop feeds the process-global telemetry registry
    ({!Psbox_telemetry.Metrics}): [sim.events_fired], [sim.events_scheduled],
    [sim.events_cancelled], [sim.queue_depth]/[sim.queue_depth_max] and the
    tombstone-reap counters [sim.reap_passes]/[sim.tombstones_reaped].
    Scheduling calls accept an optional [?label] that additionally counts
    fires of that source under [sim.events.<label>]. While a trace is being
    recorded, the loop also emits a decimated queue-depth timeline on the
    ["engine.sim"] track. *)

type t

type handle
(** A handle on a scheduled event, usable to cancel it. *)

type backend = [ `Heap | `Wheel ]
(** Event-queue implementation: the reference binary heap, or the
    hierarchical timing wheel ({!Wheel}). Both realise the exact
    [(time, seq)] total order, so every run is byte-identical under
    either; the wheel makes insert O(1) and pop cost proportional to the
    current granule's population. *)

val create : ?backend:backend -> unit -> t
(** [create ()] uses the process default backend (initially [`Wheel];
    see {!set_default_backend}). *)

val set_default_backend : backend -> unit
(** Set the backend used by subsequent {!create} calls without an explicit
    [?backend] — the hook for a [--sched heap|wheel] CLI flag. The setting
    is domain-local: each domain picks its own default (fresh domains start
    on [`Wheel]), so concurrent fleet shards never race on it. *)

val default_backend : unit -> backend

val backend : t -> backend
(** The queue implementation this simulator is running on. *)

val now : t -> Time.t
(** The current simulated time. *)

val schedule_at : t -> ?label:string -> Time.t -> (unit -> unit) -> handle
(** [schedule_at sim t f] runs [f] when the clock reaches [t]. [?label]
    counts the fire under the telemetry counter [sim.events.<label>]; the
    counter is resolved per call, so label cold paths only.

    @raise Invalid_argument if [t] is in the past. *)

val schedule_after : t -> ?label:string -> Time.span -> (unit -> unit) -> handle
(** [schedule_after sim d f] runs [f] after [d] has elapsed. *)

val cancel : handle -> unit
(** Cancel a scheduled event. Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val run_until : t -> Time.t -> unit
(** [run_until sim t] fires every event scheduled strictly before or at [t]
    and advances the clock to [t]. *)

val run : t -> unit
(** Fire events until the queue is empty. *)

val pending : t -> int
(** Number of live events still scheduled. Cancelled events are excluded,
    whether or not their tombstones have been reaped from the queue yet. *)

val queue_length : t -> int
(** Physical queue length, including cancelled tombstones awaiting the next
    bulk reap — a diagnostic; use {!pending} for the live count. *)

(** {1 Periodic events}

    The common self-rescheduling-timer pattern (scheduler ticks, DVFS
    governor sampling, housekeeping) packaged once: the timer re-arms itself
    {e before} running its body, so events the body schedules for the same
    future instant keep firing after the tick, and cancellation removes the
    in-flight event immediately. *)

type periodic
(** A recurring event, usable to stop the recurrence. *)

val schedule_every :
  t -> ?start:Time.t -> ?label:string -> Time.span -> (unit -> unit) -> periodic
(** [schedule_every sim ~start span f] runs [f] at [start] (default: one
    period from now) and every [span] thereafter until {!cancel_every}.
    [?label] counts fires under [sim.events.<label>]; the counter is
    resolved once for the whole recurrence, so labelling periodics is free
    on the hot path.
    @raise Invalid_argument if [span] is not positive. *)

val cancel_every : periodic -> unit
(** Stop the recurrence and cancel the in-flight occurrence. Idempotent. *)

val periodic_stopped : periodic -> bool
