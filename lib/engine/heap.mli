(** A mutable binary min-heap.

    Used as the backing store of the event queue. Elements are ordered by a
    user-supplied comparison fixed at creation time. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val top : 'a t -> 'a
(** Allocation-free {!peek}: the minimum element. Undefined (may raise or
    return garbage) on an empty heap — callers must check {!size} first. *)

val drop : 'a t -> unit
(** Allocation-free {!pop} that discards the minimum element. Must only be
    called on a non-empty heap. *)

val clear : 'a t -> unit

val filter_in_place : 'a t -> keep:('a -> bool) -> unit
(** [filter_in_place h ~keep] drops every element for which [keep] is false
    and restores the heap property, in O(n). Used by the event queue to reap
    cancelled-event tombstones in bulk. *)
