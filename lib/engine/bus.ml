type subscription = { mutable active : bool; mutable detach : unit -> unit }

type 'a t = { mutable subs : (subscription * ('a -> unit)) list }

let create () = { subs = [] }

let subscribe bus fn =
  let s = { active = true; detach = (fun () -> ()) } in
  s.detach <-
    (fun () -> bus.subs <- List.filter (fun (s', _) -> not (s' == s)) bus.subs);
  bus.subs <- bus.subs @ [ (s, fn) ];
  s

let unsubscribe s =
  if s.active then begin
    s.active <- false;
    s.detach ();
    s.detach <- (fun () -> ())
  end

let active s = s.active

let publish bus ev =
  (* Iterate the list as it was when publication started: subscribers added
     mid-publish only see later events; unsubscribed ones are skipped via
     their [active] flag. *)
  List.iter (fun (s, fn) -> if s.active then fn ev) bus.subs

let subscriber_count bus = List.length bus.subs
