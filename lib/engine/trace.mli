(** Trace recording.

    Two recorders are provided: a point-event trace (timestamped values) and
    an interval trace (labelled spans with a start and an end), used for
    scheduling and command-dispatch timelines like the ones shown in Figure 7
    of the paper. *)

(** {1 Point events} *)

type 'a events

val events : unit -> 'a events
val emit : 'a events -> Time.t -> 'a -> unit
val to_list : 'a events -> (Time.t * 'a) list
(** Oldest first. *)

val count : 'a events -> int

(** {1 Interval spans} *)

type 'a span = { start : Time.t; stop : Time.t; tag : 'a }

type 'a spans

val spans : unit -> 'a spans

val open_span : 'a spans -> Time.t -> 'a -> unit
(** Begin a span with tag ['a]. Multiple spans with distinct tags may be open
    simultaneously; opening a tag that is already open is an error. *)

val close_span :
  ?pp:(Format.formatter -> 'a -> unit) -> 'a spans -> Time.t -> 'a -> unit
(** Close the open span carrying this tag.

    @raise Invalid_argument if no span with this tag is open. The message
    names the offending tag when a [?pp] printer is supplied (and says so
    when one is not), plus how many spans are currently open — pass [?pp]
    wherever a mismatched close would otherwise be hard to attribute. *)

val is_open : 'a spans -> 'a -> bool

val open_since : 'a spans -> 'a -> Time.t option
(** Start time of the live span carrying this tag, if one is open. *)

val close_all : 'a spans -> Time.t -> unit
(** Close every still-open span at the given instant. *)

val to_spans : 'a spans -> 'a span list
(** Completed spans, ordered by start time. *)

val total_duration : 'a spans -> ('a -> bool) -> Time.span
(** Summed duration of completed spans whose tag satisfies the predicate. *)

val overlaps : 'a span -> 'a span -> bool
(** Whether two spans intersect for a strictly positive duration. *)
