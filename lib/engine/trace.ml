type 'a events = { mutable items : (Time.t * 'a) list; mutable n : int }

let events () = { items = []; n = 0 }

let emit tr t v =
  tr.items <- (t, v) :: tr.items;
  tr.n <- tr.n + 1

let to_list tr = List.rev tr.items
let count tr = tr.n

type 'a span = { start : Time.t; stop : Time.t; tag : 'a }

type 'a spans = {
  mutable completed : 'a span list;
  mutable live : (Time.t * 'a) list;
}

let spans () = { completed = []; live = [] }

let open_span tr t tag =
  if List.exists (fun (_, tag') -> tag' = tag) tr.live then
    invalid_arg "Trace.open_span: tag already open";
  tr.live <- (t, tag) :: tr.live

let close_span ?pp tr t tag =
  let rec take acc = function
    | [] ->
        let shown =
          match pp with
          | Some pp -> Format.asprintf "%a" pp tag
          | None -> "<no printer given>"
        in
        invalid_arg
          (Printf.sprintf
             "Trace.close_span: no open span with tag %s (%d span(s) open)"
             shown (List.length tr.live))
    | (start, tag') :: rest when tag' = tag ->
        tr.completed <- { start; stop = t; tag } :: tr.completed;
        tr.live <- List.rev_append acc rest
    | entry :: rest -> take (entry :: acc) rest
  in
  take [] tr.live

let is_open tr tag = List.exists (fun (_, tag') -> tag' = tag) tr.live

let open_since tr tag =
  List.find_map (fun (t, tag') -> if tag' = tag then Some t else None) tr.live

let close_all tr t =
  List.iter
    (fun (start, tag) -> tr.completed <- { start; stop = t; tag } :: tr.completed)
    tr.live;
  tr.live <- []

let to_spans tr =
  List.sort (fun a b -> compare (a.start, a.stop) (b.start, b.stop)) tr.completed

let total_duration tr pred =
  List.fold_left
    (fun acc s -> if pred s.tag then acc + (s.stop - s.start) else acc)
    0 tr.completed

let overlaps a b = min a.stop b.stop > max a.start b.start
