(* Hashed hierarchical timing wheel (Varghese & Lauck) with an exact-order
   front-end.

   Layout: [levels] wheels of [2^wheel_bits] slots each. Level 0 slots are
   [2^granularity_bits] ns wide (the granule); each higher level's slots are
   [2^wheel_bits] times wider, so level [l] spans
   [2^(granularity_bits + (l+1)*wheel_bits)] ns. Events beyond the top
   level's horizon sit in an unordered [overflow] list.

   Slot lists are unordered (O(1) insert). Exact [(time, seq)] FIFO order is
   recovered by a small "ready" heap holding only the events of the current
   granule: everything outside the ready heap provably fires at
   [cursor + granule] or later, so heap order within the granule is the
   global order. When the ready heap drains, [refill] advances the cursor to
   the next non-empty slot — cascading higher-level slots (and finally the
   overflow list) down through re-insertion, each event dropping at least
   one level per cascade. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  time : 'a -> int;
  g_bits : int; (* log2 of the level-0 slot width, ns *)
  w_bits : int; (* log2 of the slot count per level *)
  nlevels : int;
  slot_mask : int; (* 2^w_bits - 1 *)
  ready : 'a Heap.t; (* events of the current granule, exact order *)
  levels : 'a list array array; (* levels.(l).(i): unordered *)
  mutable overflow : 'a list; (* beyond the top level's horizon *)
  mutable cursor : int; (* granule floor of the current position *)
  mutable size : int;
}

let granule t = 1 lsl t.g_bits

(* Width of one slot at level [l]. *)
let slot_width t l = 1 lsl (t.g_bits + (l * t.w_bits))

(* Total span covered by levels 0..l. *)
let level_span t l = 1 lsl (t.g_bits + ((l + 1) * t.w_bits))
let wheel_span t = level_span t (t.nlevels - 1)

let create ?(granularity_bits = 16) ?(wheel_bits = 5) ?(levels = 6) ~cmp
    ~time () =
  if granularity_bits < 1 || wheel_bits < 1 || levels < 1 then
    invalid_arg "Wheel.create: bits/levels must be positive";
  if granularity_bits + (levels * wheel_bits) > 60 then
    invalid_arg "Wheel.create: span exceeds the integer time domain";
  {
    cmp;
    time;
    g_bits = granularity_bits;
    w_bits = wheel_bits;
    nlevels = levels;
    slot_mask = (1 lsl wheel_bits) - 1;
    ready = Heap.create ~cmp;
    levels =
      Array.init levels (fun _ -> Array.make (1 lsl wheel_bits) []);
    overflow = [];
    cursor = 0;
    size = 0;
  }

let size t = t.size
let is_empty t = t.size = 0
let cursor t = t.cursor
let overflow_count t = List.length t.overflow
let ready_count t = Heap.size t.ready

let slot_index t l time = (time lsr (t.g_bits + (l * t.w_bits))) land t.slot_mask

(* Does [time] fall inside the current rotation of level [l]? True iff it
   shares the cursor's super-slot at level [l+1] — i.e. the bits above
   level [l]'s index agree. *)
let in_rotation t l time =
  let shift = t.g_bits + ((l + 1) * t.w_bits) in
  time lsr shift = t.cursor lsr shift

(* Place one event (no size accounting). Events inside the current granule
   go straight to the ready heap; later events go in the lowest level whose
   current rotation covers them; events beyond every horizon overflow. *)
let place t x =
  let time = t.time x in
  if time < t.cursor + granule t then Heap.push t.ready x
  else begin
    let rec find l =
      if l >= t.nlevels then t.overflow <- x :: t.overflow
      else if in_rotation t l time then
        t.levels.(l).(slot_index t l time) <- x :: t.levels.(l).(slot_index t l time)
      else find (l + 1)
    in
    find 0
  end

let push t x =
  if t.time x < 0 then invalid_arg "Wheel.push: negative time";
  place t x;
  t.size <- t.size + 1

(* Advance the cursor to the next non-empty slot and repopulate the ready
   heap. Invariants relied on: every event outside the ready heap is at
   [cursor + granule] or later; the cursor's own slot at every level is
   empty (placement always finds a strictly lower level for such times). *)
let rec refill t =
  if Heap.size t.ready = 0 && t.size > 0 then begin
    (* lowest level with a non-empty slot later in its current rotation *)
    let rec scan_levels l =
      if l >= t.nlevels then cascade_overflow t
      else begin
        let wheel = t.levels.(l) in
        let cur = slot_index t l t.cursor in
        let rec scan i =
          if i > t.slot_mask then scan_levels (l + 1)
          else
            match wheel.(i) with
            | [] -> scan (i + 1)
            | events ->
                wheel.(i) <- [];
                (* rotation base: cursor with the bits at and below this
                   level's index cleared, then the found index written in *)
                let low_mask = level_span t l - 1 in
                t.cursor <-
                  t.cursor land lnot low_mask lor (i * slot_width t l);
                if l = 0 then List.iter (Heap.push t.ready) events
                else begin
                  (* cascade: each event re-places at least one level down *)
                  List.iter (place t) events;
                  refill t
                end
        in
        scan (cur + 1)
      end
    in
    scan_levels 0
  end

and cascade_overflow t =
  match t.overflow with
  | [] -> () (* size > 0 but nothing anywhere: impossible; keep total order *)
  | first :: rest ->
      let min_time =
        List.fold_left
          (fun acc x -> min acc (t.time x))
          (t.time first) rest
      in
      let events = t.overflow in
      t.overflow <- [];
      (* jump to the granule holding the earliest far-future event; events
         still beyond the new horizon simply overflow again *)
      t.cursor <- min_time land lnot (granule t - 1);
      List.iter (place t) events;
      refill t

let peek t =
  refill t;
  Heap.peek t.ready

let pop t =
  refill t;
  match Heap.pop t.ready with
  | None -> None
  | Some x ->
      t.size <- t.size - 1;
      Some x

let filter_in_place t ~keep =
  Heap.filter_in_place t.ready ~keep;
  let kept = ref (Heap.size t.ready) in
  for l = 0 to t.nlevels - 1 do
    let wheel = t.levels.(l) in
    for i = 0 to t.slot_mask do
      match wheel.(i) with
      | [] -> ()
      | events ->
          let events = List.filter keep events in
          wheel.(i) <- events;
          kept := !kept + List.length events
    done
  done;
  t.overflow <- List.filter keep t.overflow;
  kept := !kept + List.length t.overflow;
  t.size <- !kept

let clear t =
  Heap.clear t.ready;
  Array.iter (fun wheel -> Array.fill wheel 0 (Array.length wheel) []) t.levels;
  t.overflow <- [];
  t.size <- 0
