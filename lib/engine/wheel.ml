(* Hashed hierarchical timing wheel (Varghese & Lauck) with an exact-order
   front-end.

   Layout: [levels] wheels of [2^wheel_bits] slots each. Level 0 slots are
   [2^granularity_bits] ns wide (the granule); each higher level's slots are
   [2^wheel_bits] times wider, so level [l] spans
   [2^(granularity_bits + (l+1)*wheel_bits)] ns. Events beyond the top
   level's horizon sit in an unordered [overflow] list.

   Slots are unordered growable arrays (O(1) amortized insert, and — unlike
   cons lists — zero steady-state allocation: a slot's backing array is
   retained across rotations, so a churning workload reuses the same
   storage instead of generating a cons cell per event per cascade level).
   The [dummy] element passed to {!create} backs the unused tail of every
   slot array, so consumed entries never pin dead elements against the GC.

   Exact [(time, seq)] FIFO order is recovered by a small "ready" heap
   holding only the events of the current granule: everything outside the
   ready heap provably fires at [cursor + granule] or later, so heap order
   within the granule is the global order. When the ready heap drains,
   [refill] advances the cursor to the next non-empty slot — cascading
   higher-level slots (and finally the overflow list) down through
   re-insertion, each event dropping at least one level per cascade. *)

(* Growable unordered bag. The backing array only ever grows, so in steady
   state [bag_add]/[bag_drain] never allocate. *)
type 'a bag = { mutable data : 'a array; mutable len : int }

let bag_make () = { data = [||]; len = 0 }

let bag_add b dummy x =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let data = Array.make (max 4 (2 * cap)) dummy in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let bag_reset b dummy n =
  (* callers have already consumed entries [0..n-1]; drop the references *)
  Array.fill b.data 0 n dummy

type 'a t = {
  cmp : 'a -> 'a -> int;
  time : 'a -> int;
  dummy : 'a; (* backs unused slot-array entries *)
  g_bits : int; (* log2 of the level-0 slot width, ns *)
  w_bits : int; (* log2 of the slot count per level *)
  nlevels : int;
  slot_mask : int; (* 2^w_bits - 1 *)
  ready : 'a Heap.t; (* events of the current granule, exact order *)
  levels : 'a bag array array; (* levels.(l).(i): unordered *)
  mutable overflow : 'a list; (* beyond the top level's horizon (rare) *)
  mutable cursor : int; (* granule floor of the current position *)
  mutable size : int;
}

let granule t = 1 lsl t.g_bits

(* Width of one slot at level [l]. *)
let slot_width t l = 1 lsl (t.g_bits + (l * t.w_bits))

(* Total span covered by levels 0..l. *)
let level_span t l = 1 lsl (t.g_bits + ((l + 1) * t.w_bits))
let wheel_span t = level_span t (t.nlevels - 1)

let create ?(granularity_bits = 16) ?(wheel_bits = 5) ?(levels = 6) ~dummy
    ~cmp ~time () =
  if granularity_bits < 1 || wheel_bits < 1 || levels < 1 then
    invalid_arg "Wheel.create: bits/levels must be positive";
  if granularity_bits + (levels * wheel_bits) > 60 then
    invalid_arg "Wheel.create: span exceeds the integer time domain";
  {
    cmp;
    time;
    dummy;
    g_bits = granularity_bits;
    w_bits = wheel_bits;
    nlevels = levels;
    slot_mask = (1 lsl wheel_bits) - 1;
    ready = Heap.create ~cmp;
    levels =
      Array.init levels (fun _ ->
          Array.init (1 lsl wheel_bits) (fun _ -> bag_make ()));
    overflow = [];
    cursor = 0;
    size = 0;
  }

let size t = t.size
let is_empty t = t.size = 0
let cursor t = t.cursor
let overflow_count t = List.length t.overflow
let ready_count t = Heap.size t.ready

let slot_index t l time = (time lsr (t.g_bits + (l * t.w_bits))) land t.slot_mask

(* Does [time] fall inside the current rotation of level [l]? True iff it
   shares the cursor's super-slot at level [l+1] — i.e. the bits above
   level [l]'s index agree. *)
let in_rotation t l time =
  let shift = t.g_bits + ((l + 1) * t.w_bits) in
  time lsr shift = t.cursor lsr shift

(* Place one event (no size accounting). Events inside the current granule
   go straight to the ready heap; later events go in the lowest level whose
   current rotation covers them; events beyond every horizon overflow.
   [find_level] is a top-level function, not an inner [let rec]: an inner
   recursive helper closing over [t]/[x] is a closure allocated per call,
   which alone costs tens of words per event on the hot path. *)
let rec find_level t x time l =
  if l >= t.nlevels then t.overflow <- x :: t.overflow
  else if in_rotation t l time then
    bag_add t.levels.(l).(slot_index t l time) t.dummy x
  else find_level t x time (l + 1)

let place t x =
  let time = t.time x in
  if time < t.cursor + granule t then Heap.push t.ready x
  else find_level t x time 0

let push t x =
  if t.time x < 0 then invalid_arg "Wheel.push: negative time";
  place t x;
  t.size <- t.size + 1

(* Advance the cursor to the next non-empty slot and repopulate the ready
   heap. Invariants relied on: every event outside the ready heap is at
   [cursor + granule] or later; the cursor's own slot at every level is
   empty (placement always finds a strictly lower level for such times);
   cascading a level-[l] slot re-places each event strictly below level
   [l], so draining a slot in place never re-enters it.

   All helpers are top-level mutual recursion, not inner [let rec]s: this
   runs on every pop past a granule boundary, and inner helpers closing
   over the scan state would be closures allocated per refill. *)
let rec refill t =
  if Heap.size t.ready = 0 && t.size > 0 then scan_levels t 0

(* lowest level with a non-empty slot later in its current rotation *)
and scan_levels t l =
  if l >= t.nlevels then cascade_overflow t
  else scan_slots t l t.levels.(l) (slot_index t l t.cursor + 1)

and scan_slots t l wheel i =
  if i > t.slot_mask then scan_levels t (l + 1)
  else begin
    let bag = wheel.(i) in
    if bag.len = 0 then scan_slots t l wheel (i + 1)
    else begin
      let n = bag.len in
      bag.len <- 0;
      (* rotation base: cursor with the bits at and below this
         level's index cleared, then the found index written in *)
      let low_mask = level_span t l - 1 in
      t.cursor <- t.cursor land lnot low_mask lor (i * slot_width t l);
      if l = 0 then
        for k = 0 to n - 1 do
          Heap.push t.ready bag.data.(k)
        done
      else
        (* cascade: each event re-places at least one level down *)
        for k = 0 to n - 1 do
          place t bag.data.(k)
        done;
      bag_reset bag t.dummy n;
      if l > 0 then refill t
    end
  end

and cascade_overflow t =
  match t.overflow with
  | [] -> () (* size > 0 but nothing anywhere: impossible; keep total order *)
  | first :: rest ->
      let min_time =
        List.fold_left
          (fun acc x -> min acc (t.time x))
          (t.time first) rest
      in
      let events = t.overflow in
      t.overflow <- [];
      (* jump to the granule holding the earliest far-future event; events
         still beyond the new horizon simply overflow again *)
      t.cursor <- min_time land lnot (granule t - 1);
      List.iter (place t) events;
      refill t

let peek t =
  refill t;
  Heap.peek t.ready

let pop t =
  refill t;
  match Heap.pop t.ready with
  | None -> None
  | Some x ->
      t.size <- t.size - 1;
      Some x

(* Allocation-free hot-loop primitives: callers must check [size] first. *)
let top t =
  refill t;
  Heap.top t.ready

let drop t =
  refill t;
  Heap.drop t.ready;
  t.size <- t.size - 1

let filter_in_place t ~keep =
  Heap.filter_in_place t.ready ~keep;
  let kept = ref (Heap.size t.ready) in
  for l = 0 to t.nlevels - 1 do
    let wheel = t.levels.(l) in
    for i = 0 to t.slot_mask do
      let bag = wheel.(i) in
      if bag.len > 0 then begin
        let j = ref 0 in
        for k = 0 to bag.len - 1 do
          let x = bag.data.(k) in
          if keep x then begin
            bag.data.(!j) <- x;
            incr j
          end
        done;
        Array.fill bag.data !j (bag.len - !j) t.dummy;
        bag.len <- !j;
        kept := !kept + !j
      end
    done
  done;
  t.overflow <- List.filter keep t.overflow;
  kept := !kept + List.length t.overflow;
  t.size <- !kept

(* Also rewinds the cursor, so a cleared wheel is reusable from time zero
   (scratch reuse across fleet devices). Slot backing arrays are kept. *)
let clear t =
  Heap.clear t.ready;
  Array.iter
    (fun wheel ->
      Array.iter
        (fun bag ->
          if bag.len > 0 then begin
            Array.fill bag.data 0 bag.len t.dummy;
            bag.len <- 0
          end)
        wheel)
    t.levels;
  t.overflow <- [];
  t.cursor <- 0;
  t.size <- 0
