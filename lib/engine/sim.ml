module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing

(* Event-loop profiling: process-global metrics, handles resolved once at
   load so the per-event cost is a branch and a float store. *)
let m_fired = Tm.counter "sim.events_fired"
let m_scheduled = Tm.counter "sim.events_scheduled"
let m_cancelled = Tm.counter "sim.events_cancelled"
let m_reap_passes = Tm.counter "sim.reap_passes"
let m_reaped = Tm.counter "sim.tombstones_reaped"
let g_depth = Tm.gauge "sim.queue_depth"
let g_depth_max = Tm.gauge "sim.queue_depth_max"

type state = Pending | Fired | Cancelled

type backend = [ `Heap | `Wheel ]

type handle = int
(* (generation lsl idx_bits) lor idx, or [none] *)

(* ------------------------------------------------------------------ *)
(* Interned event labels                                                *)

(* A label is an index into a process-global table of pre-resolved
   [sim.events.<name>] counters. Interning happens once (under a mutex, so
   any domain may register); the fire path is then a branch plus an array
   load plus a counter bump — no string, closure, or hashtable traffic per
   event. The counter array is copy-on-grow behind an [Atomic], so readers
   never lock. *)
type label = int

let no_label = -1
let label_mu = Mutex.create ()
let label_ids : (string, int) Hashtbl.t = Hashtbl.create 16
let label_cells : Tm.counter array Atomic.t = Atomic.make [||]
let label_names : string array Atomic.t = Atomic.make [||]

let label name =
  Mutex.protect label_mu (fun () ->
      match Hashtbl.find_opt label_ids name with
      | Some id -> id
      | None ->
          let cells = Atomic.get label_cells in
          let id = Array.length cells in
          let c = Tm.counter ("sim.events." ^ name) in
          Atomic.set label_cells (Array.append cells [| c |]);
          Atomic.set label_names
            (Array.append (Atomic.get label_names) [| name |]);
          Hashtbl.add label_ids name id;
          id)

let label_name l = (Atomic.get label_names).(l)
let count_label l = Tm.incr (Atomic.get label_cells).(l)

(* ------------------------------------------------------------------ *)
(* Pooled event slots                                                   *)

(* A scheduled event lives in a [slot] record owned by the simulator's
   pool; the queue backends store slot pointers. The public [handle] is an
   immediate int packing (generation, pool index): when a slot physically
   leaves the queue (fire, head-discard, bulk reap) it is released — its
   generation bumps and its index returns to the free stack — so a stale
   handle to a recycled slot no longer matches and [cancel]/[cancelled]
   on it are no-ops. With pooling on (the default) the released record
   itself is reused by the next [schedule_at], making the steady-state
   schedule/fire cycle allocation-free; with pooling off only the index is
   reused and every event gets a fresh record (the pre-pool behavior, kept
   as an A/B baseline for the qcheck equivalence property and
   bench/probe.exe). *)
type slot = {
  mutable s_time : Time.t;
  mutable s_seq : int;
  mutable s_fn : unit -> unit;
  mutable s_state : state;
  mutable s_label : label;
  s_idx : int;
}

(* Two interchangeable queue implementations behind one total order: the
   classic binary heap (O(log n) everywhere, the reference) and the
   hierarchical timing wheel (O(1) insert, cursor-advance pops). Both yield
   the exact (time, seq) order, so a run's output is byte-identical under
   either — enforced by `make sched-smoke` and bench/diff.exe. *)
and queue = QHeap of slot Heap.t | QWheel of slot Wheel.t

and t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  q : queue;
  mutable dead : int; (* cancelled slots still buried in the queue *)
  pool : bool; (* recycle slot records (not just indices)? *)
  mutable slots : slot array; (* idx -> live record (dummy if pool off) *)
  mutable gens : int array; (* idx -> current generation *)
  mutable free : int array; (* free-index stack, [0 .. n_free-1] live *)
  mutable n_free : int;
  mutable hi : int; (* indices [0 .. hi-1] have been handed out *)
  mutable fired_n : int; (* int fired count (trace decimation) *)
  mutable depth_max : int;
  mutable gauges_dirty : bool; (* queue-depth gauges need a flush *)
}

let noop () = ()

let dummy_slot =
  { s_time = 0; s_seq = 0; s_fn = noop; s_state = Fired; s_label = no_label;
    s_idx = -1 }

let compare_slot a b =
  let c = compare a.s_time b.s_time in
  if c <> 0 then c else compare a.s_seq b.s_seq

(* Handles pack (generation lsl idx_bits) lor idx. 20 index bits bound the
   pool at ~1M simultaneously-live events; generations take the rest of
   the word (a given index must be recycled 2^42 times to wrap). *)
let idx_bits = 20
let idx_mask = (1 lsl idx_bits) - 1
let none = -1
let is_none h = h < 0

(* The default backend is domain-local: a worker domain (fleet shard)
   choosing its backend never races with, or leaks into, any other domain.
   Fresh domains start on the wheel; a CLI --sched choice must be re-applied
   inside each spawned domain (the fleet pool does). Pooling follows the
   same pattern for the --pool A/B toggle. *)
let default_key = Domain.DLS.new_key (fun () -> (`Wheel : backend))
let set_default_backend b = Domain.DLS.set default_key b
let default_backend () = Domain.DLS.get default_key
let pooling_key = Domain.DLS.new_key (fun () -> true)
let set_default_pooling b = Domain.DLS.set pooling_key b
let default_pooling () = Domain.DLS.get pooling_key

(* Retired simulators waiting for reuse (scratch-buffer recycling across
   fleet devices): domain-local, so shards never share one. *)
let retired_key = Domain.DLS.new_key (fun () -> ([] : t list))
let max_retired = 4

let make ~backend ~pool =
  let q =
    match backend with
    | `Heap -> QHeap (Heap.create ~cmp:compare_slot)
    | `Wheel ->
        QWheel
          (Wheel.create ~dummy:dummy_slot ~cmp:compare_slot
             ~time:(fun s -> s.s_time) ())
  in
  {
    clock = Time.zero;
    next_seq = 0;
    q;
    dead = 0;
    pool;
    slots = [||];
    gens = [||];
    free = [||];
    n_free = 0;
    hi = 0;
    fired_n = 0;
    depth_max = 0;
    gauges_dirty = false;
  }

let backend sim = match sim.q with QHeap _ -> `Heap | QWheel _ -> `Wheel
let pooling sim = sim.pool

let create ?backend ?pooling () =
  let backend =
    match backend with Some b -> b | None -> default_backend ()
  in
  let pool =
    match pooling with Some p -> p | None -> default_pooling ()
  in
  let retired = Domain.DLS.get retired_key in
  let rec take acc = function
    | [] -> make ~backend ~pool
    | sim :: rest ->
        if
          sim.pool = pool
          && (match sim.q with QHeap _ -> `Heap | QWheel _ -> `Wheel)
             = backend
        then begin
          Domain.DLS.set retired_key (List.rev_append acc rest);
          sim
        end
        else take (sim :: acc) rest
  in
  take [] retired

(* Invalidate every outstanding handle, empty the queue, rewind the clock,
   and hand the carcass (queue storage, slot pool, free stack) to the next
   [create] on this domain. Fleet shards retire each device's simulator so
   the per-device warm-up allocations happen once per worker, not once per
   device. *)
let retire sim =
  (match sim.q with QHeap q -> Heap.clear q | QWheel w -> Wheel.clear w);
  for i = 0 to sim.hi - 1 do
    sim.gens.(i) <- sim.gens.(i) + 1;
    (if sim.pool then
       let s = sim.slots.(i) in
       s.s_fn <- noop (* drop closures so retired pools pin no user state *)
     else sim.slots.(i) <- dummy_slot);
    sim.free.(i) <- sim.hi - 1 - i
  done;
  sim.n_free <- sim.hi;
  sim.clock <- Time.zero;
  sim.next_seq <- 0;
  sim.dead <- 0;
  sim.fired_n <- 0;
  sim.depth_max <- 0;
  sim.gauges_dirty <- false;
  let retired = Domain.DLS.get retired_key in
  if List.length retired < max_retired then
    Domain.DLS.set retired_key (sim :: retired)

let q_push sim s =
  match sim.q with QHeap q -> Heap.push q s | QWheel w -> Wheel.push w s

let q_size sim =
  match sim.q with QHeap q -> Heap.size q | QWheel w -> Wheel.size w

let q_top sim =
  match sim.q with QHeap q -> Heap.top q | QWheel w -> Wheel.top w

let q_drop sim =
  match sim.q with QHeap q -> Heap.drop q | QWheel w -> Wheel.drop w

let q_filter sim ~keep =
  match sim.q with
  | QHeap q -> Heap.filter_in_place q ~keep
  | QWheel w -> Wheel.filter_in_place w ~keep

let now sim = sim.clock

(* -- pool plumbing -------------------------------------------------- *)

let grow_pool sim =
  if sim.hi > idx_mask then
    failwith "Sim: more than 2^20 simultaneously-live events";
  let cap = Array.length sim.slots in
  if sim.hi >= cap then begin
    let ncap = max 64 (2 * cap) in
    let slots = Array.make ncap dummy_slot in
    Array.blit sim.slots 0 slots 0 cap;
    sim.slots <- slots;
    let gens = Array.make ncap 0 in
    Array.blit sim.gens 0 gens 0 cap;
    sim.gens <- gens;
    let free = Array.make ncap 0 in
    Array.blit sim.free 0 free 0 sim.n_free;
    sim.free <- free
  end

(* Take a slot for a new event. With pooling on, a recycled index reuses
   its record in place (no allocation); a fresh index allocates its record
   once, at pool high-water growth. With pooling off, every event gets a
   fresh record. *)
let alloc_slot sim =
  if sim.n_free > 0 then begin
    sim.n_free <- sim.n_free - 1;
    let idx = sim.free.(sim.n_free) in
    if sim.pool then sim.slots.(idx)
    else begin
      let s =
        { s_time = 0; s_seq = 0; s_fn = noop; s_state = Pending;
          s_label = no_label; s_idx = idx }
      in
      sim.slots.(idx) <- s;
      s
    end
  end
  else begin
    grow_pool sim;
    let idx = sim.hi in
    sim.hi <- idx + 1;
    let s =
      { s_time = 0; s_seq = 0; s_fn = noop; s_state = Pending;
        s_label = no_label; s_idx = idx }
    in
    sim.slots.(idx) <- s;
    s
  end

(* Called exactly once per event, when its slot physically leaves the
   queue: on fire, on head tombstone discard, and on bulk reap. Bumps the
   generation (staling every outstanding handle) and returns the index to
   the free stack. *)
let release sim s =
  let idx = s.s_idx in
  sim.gens.(idx) <- sim.gens.(idx) + 1;
  s.s_fn <- noop;
  if not sim.pool then sim.slots.(idx) <- dummy_slot;
  sim.free.(sim.n_free) <- idx;
  sim.n_free <- sim.n_free + 1

let handle_of_slot sim s = (sim.gens.(s.s_idx) lsl idx_bits) lor s.s_idx

(* The slot behind [h], or [dummy_slot] if the handle is stale ([Fired]
   dummy state makes every stale query read as "already done"). *)
let deref sim h =
  if h < 0 then dummy_slot
  else begin
    let idx = h land idx_mask in
    if idx < sim.hi && sim.gens.(idx) = h lsr idx_bits then sim.slots.(idx)
    else dummy_slot
  end

(* -- scheduling ----------------------------------------------------- *)

let schedule_at sim ?(label = no_label) time fn =
  if time < sim.clock then
    invalid_arg
      (Format.asprintf "Sim.schedule_at: %a is before now (%a)" Time.pp time
         Time.pp sim.clock);
  let s = alloc_slot sim in
  s.s_time <- time;
  s.s_seq <- sim.next_seq;
  s.s_fn <- fn;
  s.s_state <- Pending;
  s.s_label <- label;
  sim.next_seq <- sim.next_seq + 1;
  q_push sim s;
  Tm.incr m_scheduled;
  handle_of_slot sim s

let schedule_after sim ?label span fn =
  schedule_at sim ?label (sim.clock + span) fn

(* Periodic-timer churn (governor sampling, re-armed demand wakeups) cancels
   events constantly; reap the tombstones in bulk once they outnumber live
   events, so the queue tracks the live population instead of growing with
   churn. *)
let maybe_reap sim =
  if sim.dead > 64 && sim.dead * 2 > q_size sim then begin
    Tm.incr m_reap_passes;
    Tm.add m_reaped (float_of_int sim.dead);
    q_filter sim ~keep:(fun s ->
        if s.s_state = Pending then true
        else begin
          release sim s;
          false
        end);
    sim.dead <- 0
  end

let cancel sim h =
  let s = deref sim h in
  if s.s_state = Pending then begin
    s.s_state <- Cancelled;
    Tm.incr m_cancelled;
    sim.dead <- sim.dead + 1;
    maybe_reap sim
  end

let cancelled sim h = (deref sim h).s_state = Cancelled

(* Advance past tombstones at the head of the queue, releasing each one.
   Every discarded tombstone goes through the same reap accounting, so a
   run dominated by either {!run} or {!run_until} still reaps in bulk.
   Returns whether a live head event exists (allocation-free — no option). *)
let rec has_live_top sim =
  q_size sim > 0
  &&
  let s = q_top sim in
  if s.s_state = Cancelled then begin
    q_drop sim;
    sim.dead <- sim.dead - 1;
    release sim s;
    maybe_reap sim;
    has_live_top sim
  end
  else true

(* Per-fire bookkeeping: the global fired counter, a dirty flag batching
   the queue-depth gauges (flushed on run exit and every 4096 fires), and
   (only while a trace is being recorded) a decimated queue-depth timeline
   sample so huge runs stay exportable. The decimation check is a plain
   int field — no counter read, no float round-trip. *)
let flush_gauges sim =
  if sim.gauges_dirty then begin
    sim.gauges_dirty <- false;
    Tm.set g_depth (float_of_int (q_size sim));
    Tm.set_max g_depth_max (float_of_int sim.depth_max)
  end

let note_fired sim =
  Tm.incr m_fired;
  sim.fired_n <- sim.fired_n + 1;
  let depth = q_size sim in
  if depth > sim.depth_max then sim.depth_max <- depth;
  sim.gauges_dirty <- true;
  if sim.fired_n land 4095 = 0 then begin
    flush_gauges sim;
    if Tt.recording () then
      Tt.sample ~track:"engine.sim" ~name:"sim.queue_depth" sim.clock
        (float_of_int depth)
  end

(* Fire the head event. The slot is released *before* the callback runs:
   the queue no longer references it, every outstanding handle is already
   stale (cancel-during-fire is a no-op by generation mismatch), and the
   callback may immediately reuse the slot for what it schedules. The
   fields the fire needs are read out first. *)
let fire_top sim =
  let s = q_top sim in
  q_drop sim;
  sim.clock <- s.s_time;
  let fn = s.s_fn in
  let lbl = s.s_label in
  s.s_state <- Fired;
  release sim s;
  note_fired sim;
  if lbl >= 0 then count_label lbl;
  fn ()

let run_until sim limit =
  let rec loop () =
    if has_live_top sim && (q_top sim).s_time <= limit then begin
      fire_top sim;
      loop ()
    end
  in
  loop ();
  flush_gauges sim;
  if limit > sim.clock then sim.clock <- limit

let run sim =
  let rec loop () =
    if has_live_top sim then begin
      fire_top sim;
      loop ()
    end
  in
  loop ();
  flush_gauges sim

let pending sim = q_size sim - sim.dead
let queue_length sim = q_size sim

(* ------------------------------------------------------------------ *)
(* Periodic events                                                      *)

type periodic = { p_sim : t; mutable current : handle; mutable stopped : bool }

let schedule_every sim ?start ?label span fn =
  if span <= 0 then invalid_arg "Sim.schedule_every: period must be positive";
  let p = { p_sim = sim; current = none; stopped = false } in
  let rec fire () =
    if not p.stopped then begin
      (* re-arm before running the body, so events the body schedules for
         the same future instant fire after the next tick (FIFO order) *)
      p.current <- schedule_after sim ?label span fire;
      fn ()
    end
  in
  let first = match start with Some t -> t | None -> sim.clock + span in
  p.current <- schedule_at sim ?label first fire;
  p

let cancel_every p =
  p.stopped <- true;
  cancel p.p_sim p.current;
  p.current <- none

let periodic_stopped p = p.stopped
