module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing

(* Event-loop profiling: process-global metrics, handles resolved once at
   load so the per-event cost is a branch and a float store. *)
let m_fired = Tm.counter "sim.events_fired"
let m_scheduled = Tm.counter "sim.events_scheduled"
let m_cancelled = Tm.counter "sim.events_cancelled"
let m_reap_passes = Tm.counter "sim.reap_passes"
let m_reaped = Tm.counter "sim.tombstones_reaped"
let g_depth = Tm.gauge "sim.queue_depth"
let g_depth_max = Tm.gauge "sim.queue_depth_max"

type state = Pending | Fired | Cancelled

type backend = [ `Heap | `Wheel ]

type handle = {
  time : Time.t;
  seq : int;
  fn : unit -> unit;
  mutable state : state;
  owner : t;
}

(* Two interchangeable queue implementations behind one total order: the
   classic binary heap (O(log n) everywhere, the reference) and the
   hierarchical timing wheel (O(1) insert, cursor-advance pops). Both yield
   the exact (time, seq) order, so a run's output is byte-identical under
   either — enforced by `make sched-smoke` and bench/diff.exe. *)
and queue = QHeap of handle Heap.t | QWheel of handle Wheel.t

and t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  q : queue;
  mutable dead : int; (* cancelled handles still buried in the queue *)
}

let compare_handle a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

(* The default backend is domain-local: a worker domain (fleet shard)
   choosing its backend never races with, or leaks into, any other domain.
   Fresh domains start on the wheel; a CLI --sched choice must be re-applied
   inside each spawned domain (the fleet pool does). *)
let default_key = Domain.DLS.new_key (fun () -> (`Wheel : backend))
let set_default_backend b = Domain.DLS.set default_key b
let default_backend () = Domain.DLS.get default_key

let create ?backend () =
  let backend =
    match backend with Some b -> b | None -> default_backend ()
  in
  let q =
    match backend with
    | `Heap -> QHeap (Heap.create ~cmp:compare_handle)
    | `Wheel ->
        QWheel
          (Wheel.create ~cmp:compare_handle ~time:(fun h -> h.time) ())
  in
  { clock = Time.zero; next_seq = 0; q; dead = 0 }

let backend sim = match sim.q with QHeap _ -> `Heap | QWheel _ -> `Wheel

let q_push sim h =
  match sim.q with QHeap q -> Heap.push q h | QWheel w -> Wheel.push w h

let q_pop sim =
  match sim.q with QHeap q -> Heap.pop q | QWheel w -> Wheel.pop w

let q_peek sim =
  match sim.q with QHeap q -> Heap.peek q | QWheel w -> Wheel.peek w

let q_size sim =
  match sim.q with QHeap q -> Heap.size q | QWheel w -> Wheel.size w

let q_filter sim ~keep =
  match sim.q with
  | QHeap q -> Heap.filter_in_place q ~keep
  | QWheel w -> Wheel.filter_in_place w ~keep

let now sim = sim.clock

(* [?label] tags the event with a per-source counter
   ([sim.events.<label>], bumped when it fires). The counter is resolved
   here, once per call — label hot one-shot events from a pre-resolved
   subsystem counter instead. *)
let schedule_at sim ?label time fn =
  if time < sim.clock then
    invalid_arg
      (Format.asprintf "Sim.schedule_at: %a is before now (%a)" Time.pp time
         Time.pp sim.clock);
  let fn =
    match label with
    | None -> fn
    | Some l ->
        let c = Tm.counter ("sim.events." ^ l) in
        fun () ->
          Tm.incr c;
          fn ()
  in
  let h = { time; seq = sim.next_seq; fn; state = Pending; owner = sim } in
  sim.next_seq <- sim.next_seq + 1;
  q_push sim h;
  Tm.incr m_scheduled;
  h

let schedule_after sim ?label span fn =
  schedule_at sim ?label (sim.clock + span) fn

(* Periodic-timer churn (governor sampling, re-armed demand wakeups) cancels
   events constantly; reap the tombstones in bulk once they outnumber live
   events, so the queue tracks the live population instead of growing with
   churn. *)
let maybe_reap sim =
  if sim.dead > 64 && sim.dead * 2 > q_size sim then begin
    Tm.incr m_reap_passes;
    Tm.add m_reaped (float_of_int sim.dead);
    q_filter sim ~keep:(fun h -> h.state = Pending);
    sim.dead <- 0
  end

let cancel h =
  match h.state with
  | Pending ->
      h.state <- Cancelled;
      Tm.incr m_cancelled;
      h.owner.dead <- h.owner.dead + 1;
      maybe_reap h.owner
  | Fired | Cancelled -> ()

let cancelled h = h.state = Cancelled

(* Advance past tombstones at the head of the queue. Every discarded
   tombstone goes through the same reap accounting, so a run dominated by
   either {!run} or {!run_until} still reaps in bulk. *)
let rec peek_live sim =
  match q_peek sim with
  | Some h when h.state = Cancelled ->
      ignore (q_pop sim);
      sim.dead <- sim.dead - 1;
      maybe_reap sim;
      peek_live sim
  | other -> other

let pop_live sim =
  match peek_live sim with None -> None | Some _ -> q_pop sim

(* Per-fire bookkeeping: the global fired counter, queue-depth gauges, and
   (only while a trace is being recorded) a decimated queue-depth timeline
   sample so huge runs stay exportable. *)
let note_fired sim =
  Tm.incr m_fired;
  let depth = float_of_int (q_size sim) in
  Tm.set g_depth depth;
  Tm.set_max g_depth_max depth;
  if
    Tt.recording ()
    && int_of_float (Tm.counter_value m_fired) land 4095 = 0
  then Tt.sample ~track:"engine.sim" ~name:"sim.queue_depth" sim.clock depth

let run_until sim limit =
  let rec loop () =
    match peek_live sim with
    | Some h when h.time <= limit ->
        ignore (q_pop sim);
        h.state <- Fired;
        sim.clock <- h.time;
        note_fired sim;
        h.fn ();
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if limit > sim.clock then sim.clock <- limit

let run sim =
  let rec loop () =
    match pop_live sim with
    | Some h ->
        h.state <- Fired;
        sim.clock <- h.time;
        note_fired sim;
        h.fn ();
        loop ()
    | None -> ()
  in
  loop ()

let pending sim = q_size sim - sim.dead
let queue_length sim = q_size sim

(* ------------------------------------------------------------------ *)
(* Periodic events                                                      *)

type periodic = { mutable current : handle option; mutable stopped : bool }

let schedule_every sim ?start ?label span fn =
  if span <= 0 then invalid_arg "Sim.schedule_every: period must be positive";
  let fn =
    match label with
    | None -> fn
    | Some l ->
        (* resolved once for the whole recurrence *)
        let c = Tm.counter ("sim.events." ^ l) in
        fun () ->
          Tm.incr c;
          fn ()
  in
  let p = { current = None; stopped = false } in
  let rec fire () =
    if not p.stopped then begin
      (* re-arm before running the body, so events the body schedules for
         the same future instant fire after the next tick (FIFO order) *)
      p.current <- Some (schedule_after sim span fire);
      fn ()
    end
  in
  let first = match start with Some t -> t | None -> sim.clock + span in
  p.current <- Some (schedule_at sim first fire);
  p

let cancel_every p =
  p.stopped <- true;
  (match p.current with Some h -> cancel h | None -> ());
  p.current <- None

let periodic_stopped p = p.stopped
